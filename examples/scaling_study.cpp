// Complexity demonstration: factorization time versus N, compared with
// ideal N log N and N log^2 N curves (the laptop-scale analogue of
// Figure 4 left).
//
//   ./scaling_study [Nmax]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/solver.hpp"
#include "data/generators.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  using namespace fdks;
  const la::index_t nmax = examples::arg_n(argc, argv, 1, 16384);

  std::printf("%8s %12s %14s %14s\n", "N", "factor(s)", "t/(NlogN)",
              "t/(Nlog^2N)");
  double t0 = 0.0;
  for (la::index_t n = 2048; n <= nmax; n *= 2) {
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::Normal, n, 31);
    askit::AskitConfig acfg;
    acfg.leaf_size = 256;
    acfg.max_rank = 64;
    acfg.tol = 0.0;  // Fixed rank, as experiment #17 does (s = 256 there).
    acfg.num_neighbors = 0;
    askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.8), acfg);
    core::SolverOptions scfg;
    scfg.lambda = 1.0;
    core::FastDirectSolver solver(h, scfg);
    const double t = solver.factor_seconds();
    if (t0 == 0.0) t0 = t;
    const double nd = double(n);
    std::printf("%8td %12.3f %14.4e %14.4e\n", n, t, t / (nd * std::log2(nd)),
                t / (nd * std::pow(std::log2(nd), 2)));
  }
  std::printf("\nA flat t/(N log N) column and a decaying t/(N log^2 N)\n"
              "column indicate the telescoped factorization scales as\n"
              "O(N log N), matching Figure 4 (#17).\n");
  return 0;
}
