// fdks_tool — command-line driver for the library.
//
//   fdks_tool solve  [--data KIND] [--n N] [--h H] [--lambda L]
//                    [--tau T] [--leaf M] [--rank S] [--restrict LVL]
//                    [--hybrid] [--compact-w] [--scheme gemv|gemm|gsks]
//                    [--checkpoint-dir DIR] [--ranks P]
//   fdks_tool krr    [--data KIND] [--n N] [--h H] [--lambda L] ...
//   fdks_tool info   [--data KIND] [--n N] [--h H] [--tau T] ...
//   fdks_tool gen    [--data KIND] [--n N] [--out PATH]
//                    (format from extension: .svm | .csv | .bin)
//
// KIND: covtype | susy | mnist | higgs | mri | normal.
// `solve` factorizes lambda I + K~ and solves a random system, printing
// timings/residuals; `krr` trains and evaluates a classifier; `info`
// prints compression statistics (ranks, frontier, memory); `gen` writes
// a synthetic dataset to disk for external tooling.
//
// --checkpoint-dir DIR makes `solve` restartable: each pipeline stage
// (compress -> factorize -> solve) persists its result into DIR
// (atomic, checksummed; see src/ckpt) and a re-run resumes from the
// last completed stage. Corrupt or stale checkpoints are skipped with a
// diagnostic and the stage re-runs.
//
// Observability flags (any command):
//   --profile              aggregate timer tree + counters on exit.
//   --trace FILE.json      event trace in Chrome trace-event format
//                          (open in https://ui.perfetto.dev). With
//                          --ranks P the combined file keeps the
//                          cross-rank flow arrows and per-rank files
//                          FILE.rank<k>.json are written alongside; the
//                          critical-path report prints after the run.
//   --metrics-interval MS  periodic RSS / trace-volume sampler line on
//                          stderr while the command runs.
//   --ranks P              run `solve` distributed over P mpisim ranks
//                          (P a power of 2); with --hybrid the level
//                          restriction is raised to log2(P) so the
//                          frontier does not span ranks.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "askit/serialize.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/dist_hybrid.hpp"
#include "core/dist_solver.hpp"
#include "core/hybrid.hpp"
#include "core/solver.hpp"
#include "data/io.hpp"
#include "data/preprocess.hpp"
#include "krr/krr.hpp"
#include "mpisim/runtime.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace {

using namespace fdks;
using la::index_t;

struct Args {
  std::string cmd;
  data::SyntheticKind kind = data::SyntheticKind::Normal;
  index_t n = 4096;
  double h = 1.0;
  double lambda = 1.0;
  double tau = 1e-5;
  index_t leaf = 128;
  index_t rank = 128;
  index_t restrict_level = 0;
  bool hybrid = false;
  bool compact_w = false;
  bool spd_leaves = false;
  kernel::Scheme scheme = kernel::Scheme::StoredGemv;
  uint64_t seed = 42;
  std::string out;
  std::string checkpoint_dir;
  bool profile = false;
  int ranks = 1;
  std::string trace;
  int metrics_interval_ms = 0;
  bool verify = false;  ///< Certify the answer (solve command only).
};

int usage() {
  std::fprintf(stderr,
               "usage: fdks_tool <solve|krr|info|gen> [--data "
               "covtype|susy|mnist|higgs|mri|normal]\n"
               "       [--n N] [--h H] [--lambda L] [--tau T] [--leaf M] "
               "[--rank S]\n"
               "       [--restrict LVL] [--hybrid] [--compact-w] "
               "[--spd-leaves]\n"
               "       [--scheme gemv|gemm|gsks] [--seed X] [--profile]\n"
               "       [--checkpoint-dir DIR] [--ranks P] [--verify]\n"
               "       [--trace FILE.json] [--metrics-interval MS]\n");
  return 2;
}

/// Checked numeric flag parsing: reports the offending flag and value
/// instead of silently producing zero (lint rule BAN-PARSE).
bool parse_num(const char* flag, const char* v, long long& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: not a whole number: '%s'\n", flag, v);
    return false;
  }
  return true;
}

bool parse_real(const char* flag, const char* v, double& out) {
  errno = 0;
  char* end = nullptr;
  out = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr, "%s: not a number: '%s'\n", flag, v);
    return false;
  }
  return true;
}

bool parse(int argc, char** argv, Args& a) {
  if (argc < 2) return false;
  a.cmd = argv[1];
  if (a.cmd != "solve" && a.cmd != "krr" && a.cmd != "info" &&
      a.cmd != "gen")
    return false;
  const std::map<std::string, data::SyntheticKind> kinds = {
      {"covtype", data::SyntheticKind::CovtypeLike},
      {"susy", data::SyntheticKind::SusyLike},
      {"mnist", data::SyntheticKind::MnistLike},
      {"higgs", data::SyntheticKind::HiggsLike},
      {"mri", data::SyntheticKind::MriLike},
      {"normal", data::SyntheticKind::Normal},
  };
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", what);
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--hybrid") {
      a.hybrid = true;
    } else if (flag == "--compact-w") {
      a.compact_w = true;
    } else if (flag == "--spd-leaves") {
      a.spd_leaves = true;
    } else if (flag == "--profile") {
      a.profile = true;
    } else if (flag == "--verify") {
      a.verify = true;
    } else if (flag == "--data") {
      const char* v = need("--data");
      if (!v || !kinds.count(v)) return false;
      a.kind = kinds.at(v);
    } else if (flag == "--scheme") {
      const char* v = need("--scheme");
      if (!v) return false;
      if (!std::strcmp(v, "gemv")) a.scheme = kernel::Scheme::StoredGemv;
      else if (!std::strcmp(v, "gemm")) a.scheme = kernel::Scheme::ReevalGemm;
      else if (!std::strcmp(v, "gsks")) a.scheme = kernel::Scheme::Gsks;
      else return false;
    } else if (flag == "--n") {
      const char* v = need("--n");
      if (!v) return false;
      long long t = 0;
      if (!parse_num("--n", v, t)) return false;
      a.n = static_cast<index_t>(t);
    } else if (flag == "--h") {
      const char* v = need("--h");
      if (!v) return false;
      if (!parse_real("--h", v, a.h)) return false;
    } else if (flag == "--lambda") {
      const char* v = need("--lambda");
      if (!v) return false;
      if (!parse_real("--lambda", v, a.lambda)) return false;
    } else if (flag == "--tau") {
      const char* v = need("--tau");
      if (!v) return false;
      if (!parse_real("--tau", v, a.tau)) return false;
    } else if (flag == "--leaf") {
      const char* v = need("--leaf");
      if (!v) return false;
      long long t = 0;
      if (!parse_num("--leaf", v, t)) return false;
      a.leaf = static_cast<index_t>(t);
    } else if (flag == "--rank") {
      const char* v = need("--rank");
      if (!v) return false;
      long long t = 0;
      if (!parse_num("--rank", v, t)) return false;
      a.rank = static_cast<index_t>(t);
    } else if (flag == "--restrict") {
      const char* v = need("--restrict");
      if (!v) return false;
      long long t = 0;
      if (!parse_num("--restrict", v, t)) return false;
      a.restrict_level = static_cast<index_t>(t);
    } else if (flag == "--seed") {
      const char* v = need("--seed");
      if (!v) return false;
      long long t = 0;
      if (!parse_num("--seed", v, t)) return false;
      a.seed = static_cast<uint64_t>(t);
    } else if (flag == "--out") {
      const char* v = need("--out");
      if (!v) return false;
      a.out = v;
    } else if (flag == "--checkpoint-dir") {
      const char* v = need("--checkpoint-dir");
      if (!v) return false;
      a.checkpoint_dir = v;
    } else if (flag == "--ranks") {
      const char* v = need("--ranks");
      if (!v) return false;
      long long t = 0;
      if (!parse_num("--ranks", v, t)) return false;
      a.ranks = static_cast<int>(t);
      if (a.ranks < 1 || (a.ranks & (a.ranks - 1)) != 0) {
        std::fprintf(stderr, "--ranks must be a power of 2 (got %s)\n", v);
        return false;
      }
    } else if (flag == "--trace") {
      const char* v = need("--trace");
      if (!v) return false;
      a.trace = v;
    } else if (flag == "--metrics-interval") {
      const char* v = need("--metrics-interval");
      if (!v) return false;
      long long t = 0;
      if (!parse_num("--metrics-interval", v, t)) return false;
      a.metrics_interval_ms = static_cast<int>(t);
      if (a.metrics_interval_ms <= 0) {
        std::fprintf(stderr, "--metrics-interval needs a positive ms value\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

askit::AskitConfig askit_config(const Args& a) {
  askit::AskitConfig cfg;
  cfg.leaf_size = a.leaf;
  cfg.max_rank = a.rank;
  cfg.tol = a.tau;
  cfg.num_neighbors = 0;
  cfg.level_restriction = a.restrict_level;
  cfg.seed = a.seed;
  return cfg;
}

/// Compress stage with checkpoint resume: reload the serialized HMatrix
/// when a valid "compress" marker exists, else build and persist it.
askit::HMatrix build_or_resume_hmatrix(const Args& a,
                                       const data::Dataset& ds) {
  if (!a.checkpoint_dir.empty()) {
    ckpt::ensure_dir(a.checkpoint_dir);
    const std::string hpath = ckpt::join(a.checkpoint_dir, "hmatrix.bin");
    std::string diag;
    if (ckpt::stage_done(a.checkpoint_dir, "compress", nullptr, &diag) &&
        ckpt::file_exists(hpath)) {
      std::printf("checkpoint: compress stage done, loading %s\n",
                  hpath.c_str());
      return askit::load_hmatrix(hpath);
    }
    if (!diag.empty())
      std::printf("checkpoint: compress stage re-runs (%s)\n", diag.c_str());
    askit::HMatrix h(ds.points, kernel::Kernel::gaussian(a.h),
                     askit_config(a));
    askit::save_hmatrix(hpath, h);
    ckpt::mark_stage(a.checkpoint_dir, "compress", hpath);
    return h;
  }
  return askit::HMatrix(ds.points, kernel::Kernel::gaussian(a.h),
                        askit_config(a));
}

/// FactorStatus / SolveStatus are [[nodiscard]]: surface any recorded
/// degradation (diagonal shifts, escalation, non-convergence) instead
/// of silently printing a residual that looks fine.
void warn_if_degraded(const core::FactorStatus& fs) {
  if (fs.degraded())
    std::fprintf(stderr, "warning: %s\n", fs.message().c_str());
}

void warn_if_degraded(const core::SolveStatus& ss) {
  if (ss.degraded())
    std::fprintf(stderr, "warning: %s\n", ss.message().c_str());
}

/// Distributed solve over a.ranks mpisim ranks. The HMatrix is shared
/// read-only across the rank threads (as real MPI would replicate the
/// compressed operator here); each rank owns its subtree's factors.
int run_solve_dist(const Args& a, const askit::HMatrix& h,
                   const std::vector<double>& u) {
  std::vector<double> x;
  double factor_seconds = 0.0;
  index_t reduced = 0;
  int ksp = 0;
  core::SolveStatus vstat;
  mpisim::run(a.ranks, [&](mpisim::Comm& comm) {
    if (a.hybrid) {
      core::HybridOptions ho;
      ho.direct.lambda = a.lambda;
      ho.direct.compact_w = a.compact_w;
      ho.direct.scheme = a.scheme;
      ho.direct.checkpoint_dir = a.checkpoint_dir;
      if (a.verify) ho.direct.verify.mode = core::VerifyMode::Always;
      core::DistributedHybridSolver solver(h, ho, comm);
      auto xi = solver.solve(u);
      if (comm.rank() == 0) {
        x = std::move(xi);
        factor_seconds = solver.factor_seconds();
        reduced = solver.reduced_size();
        ksp = solver.last_gmres().iterations;
        vstat = solver.last_status();
        warn_if_degraded(solver.factor_status());
        warn_if_degraded(solver.last_status());
      }
    } else {
      core::SolverOptions so;
      so.lambda = a.lambda;
      so.compact_w = a.compact_w;
      so.spd_leaves = a.spd_leaves;
      so.scheme = a.scheme;
      so.checkpoint_dir = a.checkpoint_dir;
      if (a.verify) so.verify.mode = core::VerifyMode::Always;
      core::DistributedSolver solver(h, so, comm);
      auto xi = solver.solve(u);
      if (comm.rank() == 0) {
        x = std::move(xi);
        factor_seconds = solver.factor_seconds();
        vstat = solver.last_status();
        warn_if_degraded(solver.factor_status());
        warn_if_degraded(solver.last_status());
      }
    }
  });
  if (a.hybrid) {
    std::printf("dist-hybrid p=%d: factor %.3fs, reduced %td, ksp %d, "
                "residual %.2e\n",
                a.ranks, factor_seconds, reduced, ksp,
                h.relative_residual(x, u, a.lambda));
  } else {
    std::printf("dist-direct p=%d: factor %.3fs, residual %.2e\n", a.ranks,
                factor_seconds, h.relative_residual(x, u, a.lambda));
  }
  if (a.verify)
    std::printf("verify: certified residual %.2e (%s), %d escalations\n",
                vstat.residual, core::to_string(vstat.code),
                vstat.escalations);
  return 0;
}

int run_solve(const Args& a) {
  data::Dataset ds = data::make_synthetic(a.kind, a.n, a.seed);
  std::printf("dataset %s: N=%td d=%td\n", ds.name.c_str(), ds.n(), ds.dim());

  const bool ck = !a.checkpoint_dir.empty();
  std::string solved_detail;
  if (ck && ckpt::stage_done(a.checkpoint_dir, "solve", &solved_detail)) {
    std::printf("checkpoint: pipeline already complete — %s\n",
                solved_detail.c_str());
    return 0;
  }

  obs::ScopedTimer t_setup("setup");
  askit::HMatrix h = build_or_resume_hmatrix(a, ds);
  t_setup.stop();
  std::printf("hmatrix: %td nodes skeletonized, max rank %td, frontier %zu\n",
              h.stats().skeletonized_nodes, h.stats().max_rank_used,
              h.frontier().size());
  std::mt19937_64 rng(a.seed + 1);
  std::vector<double> u(static_cast<size_t>(a.n));
  std::normal_distribution<double> g(0.0, 1.0);
  for (auto& v : u) v = g(rng);

  if (a.ranks > 1) return run_solve_dist(a, h, u);

  char summary[160];
  if (a.hybrid) {
    core::HybridOptions ho;
    ho.direct.lambda = a.lambda;
    ho.direct.compact_w = a.compact_w;
    ho.direct.scheme = a.scheme;
    ho.direct.checkpoint_dir = a.checkpoint_dir;
    // --verify: the guarded solve measures the true residual and walks
    // the refinement/escalation ladder against this target.
    if (a.verify && ho.escalate_residual_tol <= 0.0)
      ho.escalate_residual_tol = 1e-6;
    core::HybridSolver solver(h, ho);
    if (ck) ckpt::mark_stage(a.checkpoint_dir, "factorize");
    warn_if_degraded(solver.factor_status());
    std::vector<double> x(u.size(), 0.0);
    if (a.verify) {
      const core::SolveStatus st = solver.solve_with_status(u, x);
      std::printf("verify: certified residual %.2e (%s), %d escalations\n",
                  st.residual, core::to_string(st.code), st.escalations);
    } else {
      x = solver.solve(u);
    }
    std::snprintf(summary, sizeof summary,
                  "hybrid: factor %.3fs, reduced %td, ksp %d, residual "
                  "%.2e, mem %.1f MB, %s",
                  solver.factor_seconds(), solver.reduced_size(),
                  solver.last_gmres().iterations,
                  h.relative_residual(x, u, a.lambda),
                  double(solver.factor_bytes()) / 1048576.0,
                  solver.stability().stable() ? "stable" : "UNSTABLE");
  } else {
    core::SolverOptions so;
    so.lambda = a.lambda;
    so.compact_w = a.compact_w;
    so.spd_leaves = a.spd_leaves;
    so.scheme = a.scheme;
    so.checkpoint_dir = a.checkpoint_dir;
    if (a.verify) so.verify.mode = core::VerifyMode::Always;
    core::FastDirectSolver solver(h, so);
    if (ck) ckpt::mark_stage(a.checkpoint_dir, "factorize");
    warn_if_degraded(solver.factor_status());
    std::vector<double> x(u.size(), 0.0);
    if (a.verify) {
      const core::VerifyOutcome vo = solver.solve_verified(u, x);
      std::printf(
          "verify: certified residual %.2e (%s), %d refine steps, "
          "%d escalations\n",
          vo.residual, vo.certified ? "certified" : "MISSED TARGET",
          vo.refine_steps, vo.escalations);
    } else {
      x = solver.solve(u);
    }
    std::snprintf(summary, sizeof summary,
                  "direct: factor %.3fs, residual %.2e, mem %.1f MB, %s",
                  solver.factor_seconds(),
                  h.relative_residual(x, u, a.lambda),
                  double(solver.factor_bytes()) / 1048576.0,
                  solver.stability().stable() ? "stable" : "UNSTABLE");
  }
  std::printf("%s\n", summary);
  if (ck) ckpt::mark_stage(a.checkpoint_dir, "solve", summary);
  return 0;
}

int run_krr(const Args& a) {
  data::Dataset ds = data::make_synthetic(a.kind, a.n, a.seed);
  if (!ds.labeled()) {
    std::fprintf(stderr, "dataset %s has no labels; pick covtype/susy/"
                         "mnist/higgs\n",
                 ds.name.c_str());
    return 1;
  }
  auto [train, test] = data::train_test_split(ds, 0.2, a.seed + 1);
  krr::KrrConfig cfg;
  cfg.bandwidth = a.h;
  cfg.lambda = a.lambda;
  cfg.askit = askit_config(a);
  cfg.use_hybrid = a.hybrid;
  // "train" rather than "setup": KernelRidge factorizes internally, so
  // the factorize/solve timers nest under this scope.
  obs::ScopedTimer t_train("train");
  krr::KernelRidge model(train, cfg);
  t_train.stop();
  std::printf("%s: train N=%td, test N=%td, h=%.3f lambda=%.4f\n",
              ds.name.c_str(), train.n(), test.n(), a.h, a.lambda);
  std::printf("train residual %.2e, factor %.3fs, %s\n",
              model.train_residual(), model.factor_seconds(),
              model.stable() ? "stable" : "UNSTABLE");
  std::printf("test accuracy: %.2f%%\n", 100.0 * model.accuracy(test));
  return 0;
}

int run_info(const Args& a) {
  data::Dataset ds = data::make_synthetic(a.kind, a.n, a.seed);
  obs::ScopedTimer t_setup("setup");
  askit::HMatrix h(ds.points, kernel::Kernel::gaussian(a.h),
                   askit_config(a));
  t_setup.stop();
  std::printf("dataset %s: N=%td d=%td intrinsic=%td\n", ds.name.c_str(),
              ds.n(), ds.dim(), ds.intrinsic_dim);
  std::printf("tree: depth %d, %zu nodes, leaf size <= %td\n",
              h.tree().depth(), h.tree().nodes().size(),
              h.config().leaf_size);
  std::printf("skeletons: %td nodes, max rank %td, frontier %zu, "
              "knn %.2fs + skel %.2fs\n",
              h.stats().skeletonized_nodes, h.stats().max_rank_used,
              h.frontier().size(), h.stats().knn_seconds,
              h.stats().skeleton_seconds);
  // Rank profile per level.
  for (size_t l = 0; l < h.tree().levels().size(); ++l) {
    index_t maxr = 0, count = 0;
    double sum = 0.0;
    for (index_t id : h.tree().levels()[l]) {
      if (!h.is_skeletonized(id)) continue;
      const index_t r = h.skeleton(id).rank();
      maxr = std::max(maxr, r);
      sum += double(r);
      ++count;
    }
    if (count > 0)
      std::printf("  level %2zu: %td skeletonized, rank avg %.1f max %td\n",
                  l, count, sum / double(count), maxr);
  }
  return 0;
}

int run_gen(const Args& a) {
  if (a.out.empty()) {
    std::fprintf(stderr, "gen: --out PATH required (.svm/.csv/.bin)\n");
    return 2;
  }
  data::Dataset ds = data::make_synthetic(a.kind, a.n, a.seed);
  const auto ends_with = [&](const char* suffix) {
    const std::string s = suffix;
    return a.out.size() >= s.size() &&
           a.out.compare(a.out.size() - s.size(), s.size(), s) == 0;
  };
  if (ends_with(".svm")) {
    data::write_libsvm(a.out, ds);
  } else if (ends_with(".csv")) {
    data::write_csv(a.out, ds);
  } else if (ends_with(".bin")) {
    data::write_binary(a.out, ds);
  } else {
    std::fprintf(stderr, "gen: unknown extension on %s\n", a.out.c_str());
    return 2;
  }
  std::printf("wrote %s: N=%td d=%td labeled=%s\n", a.out.c_str(), ds.n(),
              ds.dim(), ds.labeled() ? "yes" : "no");
  return 0;
}

}  // namespace

namespace {

/// "x.json" -> "x.rank3.json"; no-extension paths get ".rank3" appended.
std::string rank_suffixed(const std::string& path, int rank) {
  const std::string suffix = ".rank" + std::to_string(rank);
  const size_t dot = path.rfind(".json");
  if (dot != std::string::npos && dot == path.size() - 5)
    return path.substr(0, dot) + suffix + ".json";
  return path + suffix;
}

void export_trace(const Args& a) {
  const obs::trace::TraceData data = obs::trace::collect();
  size_t events = 0;
  for (const auto& t : data.threads) events += t.events.size();
  if (obs::trace::write_chrome_trace(a.trace, data))
    std::printf("trace: wrote %s (%zu threads, %zu events)\n",
                a.trace.c_str(), data.threads.size(), events);
  if (a.ranks > 1) {
    // Per-rank files alongside the combined one. Cross-rank flow arrows
    // only render in the combined file, where both endpoints exist.
    for (int r = 0; r < a.ranks; ++r) {
      obs::trace::TraceData one;
      for (const auto& t : data.threads)
        if (t.rank == r) one.threads.push_back(t);
      if (one.threads.empty()) continue;
      obs::trace::write_chrome_trace(rank_suffixed(a.trace, r), one);
    }
    std::printf("trace: per-rank files %s\n",
                rank_suffixed(a.trace, 0).c_str());
  }
  const obs::trace::CriticalPath cp = obs::trace::critical_path(data);
  if (!cp.segments.empty())
    std::fputs(obs::trace::critical_path_report(cp).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return usage();
  if (a.cmd == "solve" && a.ranks > 1 && a.hybrid) {
    // The distributed hybrid requires every frontier node to live on one
    // rank: raise the adaptive-rank frontier to at least level log2(p).
    index_t logp = 0;
    while ((index_t{1} << logp) < a.ranks) ++logp;
    if (a.restrict_level < logp) {
      std::printf("note: raising --restrict to %td for --ranks %d\n", logp,
                  a.ranks);
      a.restrict_level = logp;
    }
  }
  if (a.profile) {
    obs::set_enabled(true);
    obs::reset();
  }
  if (!a.trace.empty()) {
    obs::trace::set_enabled(true);
    obs::trace::reset();
  }

  // Periodic metrics sampler (obs::Sampler): each tick prints the RSS /
  // trace-volume line plus the interval's counter-delta count. The
  // sampler's own snapshot diffs are safe concurrently with emission.
  std::unique_ptr<obs::Sampler> sampler;
  if (a.metrics_interval_ms > 0) {
    obs::SamplerOptions sopts;
    sopts.interval = std::chrono::milliseconds(a.metrics_interval_ms);
    sopts.on_sample = [](const obs::Sample& s) {
      size_t events = 0, dropped = 0;
      for (const auto& t : obs::trace::collect().threads) {
        events += t.events.size();
        dropped += t.dropped;
      }
      std::fprintf(stderr,
                   "[metrics] rss=%.1fMB peak=%.1fMB trace_events=%zu "
                   "dropped=%zu counters_active=%zu\n",
                   double(s.rss_bytes) / 1048576.0,
                   double(s.peak_rss_bytes) / 1048576.0, events, dropped,
                   s.counter_deltas.size());
    };
    sampler = std::make_unique<obs::Sampler>(std::move(sopts));
  }

  int rc = 0;
  try {
    if (a.cmd == "solve") rc = run_solve(a);
    else if (a.cmd == "krr") rc = run_krr(a);
    else if (a.cmd == "gen") rc = run_gen(a);
    else rc = run_info(a);
  } catch (...) {
    sampler.reset();  // Join the sampler before the exception escapes.
    throw;
  }
  sampler.reset();
  if (a.profile) obs::print_tree(stdout, obs::snapshot());
  if (!a.trace.empty()) export_trace(a);
  return rc;
}
