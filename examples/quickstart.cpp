// Quickstart: compress a Gaussian kernel matrix hierarchically,
// factorize (lambda I + K~) in O(N log N), and solve a linear system.
//
//   ./quickstart [N]
//
// This is the minimal end-to-end use of the public API:
//   1. data::make_synthetic      — get points (or bring your own d-by-N).
//   2. askit::HMatrix            — build the hierarchical representation.
//   3. core::FastDirectSolver    — factorize lambda I + K~.
//   4. solve() and check the residual.
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "askit/hmatrix.hpp"
#include "core/solver.hpp"
#include "data/generators.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  using namespace fdks;
  const la::index_t n = examples::arg_n(argc, argv, 1, 4096);

  // Points on a low-intrinsic-dimension manifold in 64-D (the paper's
  // NORMAL dataset recipe).
  data::Dataset ds = data::make_synthetic(data::SyntheticKind::Normal, n, 42);
  std::printf("dataset  : %s, N=%td, d=%td (intrinsic %td)\n",
              ds.name.c_str(), ds.n(), ds.dim(), ds.intrinsic_dim);

  // Hierarchical compression (ASKIT-style skeletonization).
  askit::AskitConfig acfg;
  acfg.leaf_size = 128;
  acfg.max_rank = 128;
  acfg.tol = 1e-5;
  acfg.num_neighbors = 0;  // Uniform skeleton sampling.
  askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.8), acfg);
  std::printf("hmatrix  : %td skeletonized nodes, max rank %td, "
              "build %.3fs\n",
              h.stats().skeletonized_nodes, h.stats().max_rank_used,
              h.stats().skeleton_seconds);

  // Factorize lambda I + K~ (Algorithm II.2, telescoped O(N log N)).
  core::SolverOptions scfg;
  scfg.lambda = 1.0;
  core::FastDirectSolver solver(h, scfg);
  std::printf("factor   : %.3fs, %.1f MB, stable=%s\n",
              solver.factor_seconds(),
              double(solver.factor_bytes()) / 1048576.0,
              solver.stability().stable() ? "yes" : "NO");

  // Solve (lambda I + K~) x = u and verify.
  std::mt19937_64 rng(7);
  std::vector<double> u(static_cast<size_t>(n));
  std::normal_distribution<double> g(0.0, 1.0);
  for (auto& v : u) v = g(rng);
  auto x = solver.solve(u);
  std::printf("residual : ||u-(lI+K~)x||/||u|| = %.3e\n",
              h.relative_residual(x, u, scfg.lambda));
  return 0;
}
