// Level restriction and the hybrid direct/iterative solver (§II-C).
//
//   ./hybrid_solver [N] [L]
//
// Builds a level-restricted hierarchical representation (skeletonization
// stops at level L), then solves the same system three ways:
//   (a) unpreconditioned GMRES on the treecode matvec (Figure 5 blue),
//   (b) the hybrid solver: direct up to the frontier + GMRES on the
//       reduced system (Figure 5 orange),
//   (c) the level-restricted direct factorization (Table V baseline),
// and reports time, residual, and Krylov iteration counts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/hybrid.hpp"
#include "core/solver.hpp"
#include "data/generators.hpp"
#include "iterative/gmres.hpp"
#include "example_util.hpp"

namespace {
double now_minus(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main(int argc, char** argv) {
  using namespace fdks;
  const la::index_t n = examples::arg_n(argc, argv, 1, 4096);
  const la::index_t level = examples::arg_n(argc, argv, 2, 3);
  const double lambda = 1.0;

  data::Dataset ds = data::make_synthetic(data::SyntheticKind::Normal, n, 5);
  askit::AskitConfig acfg;
  acfg.leaf_size = 128;
  acfg.max_rank = 96;
  acfg.tol = 1e-5;
  acfg.num_neighbors = 0;
  acfg.level_restriction = level;
  askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.5), acfg);
  std::printf("N=%td d=%td L=%td frontier=%zu\n", n, ds.dim(), level,
              h.frontier().size());

  std::mt19937_64 rng(9);
  std::vector<double> u(static_cast<size_t>(n));
  std::normal_distribution<double> g(0.0, 1.0);
  for (auto& v : u) v = g(rng);

  // (a) Unpreconditioned GMRES on (lambda I + K~) via the treecode.
  {
    auto t0 = std::chrono::steady_clock::now();
    iter::GmresOptions go;
    go.rtol = 1e-8;
    go.max_iters = 150;
    auto r = iter::gmres(
        n,
        [&](std::span<const double> x, std::span<double> y) {
          h.apply_source(x, y, lambda);
        },
        u, go);
    std::printf("[gmres ] T=%7.3fs iters=%3d r=%.2e converged=%s\n",
                now_minus(t0), r.iterations, r.relative_residual,
                r.converged ? "yes" : "no");
  }

  // (b) Hybrid: factorize up to the frontier, GMRES on (I + VW).
  {
    auto t0 = std::chrono::steady_clock::now();
    core::HybridOptions ho;
    ho.direct.lambda = lambda;
    ho.gmres.rtol = 1e-10;
    ho.escalate_residual_tol = 1e-6;  // Guardrail: auto-escalate if missed.
    core::HybridSolver hy(h, ho);
    const double tf = now_minus(t0);
    std::vector<double> x(static_cast<size_t>(n));
    core::SolveStatus st = hy.solve_with_status(u, x);
    std::printf(
        "[hybrid] T=%7.3fs (factor %.3fs) reduced=%td ksp=%d r=%.2e "
        "mem=%.1fMB\n",
        now_minus(t0), tf, hy.reduced_size(), st.gmres_iterations,
        h.relative_residual(x, u, lambda),
        double(hy.factor_bytes()) / 1048576.0);
    std::printf("[hybrid] status: %s\n", st.message().c_str());
  }

  // (c) Level-restricted direct factorization (expanded above frontier).
  {
    auto t0 = std::chrono::steady_clock::now();
    core::SolverOptions so;
    so.lambda = lambda;
    core::FastDirectSolver solver(h, so);
    const double tf = now_minus(t0);
    auto x = solver.solve(u);
    std::printf("[direct] T=%7.3fs (factor %.3fs) r=%.2e mem=%.1fMB\n",
                now_minus(t0), tf, h.relative_residual(x, u, lambda),
                double(solver.factor_bytes()) / 1048576.0);
  }
  return 0;
}
