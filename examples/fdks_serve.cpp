// Long-lived serving front end: factor cache + batched admission queue.
//
//   ./fdks_serve [N] [requests] [batch_max] [lambdas] [deadline_ms]
//               [--verify-sample K] [--metrics-port P]
//               [--metrics-interval MS] [--event-log FILE]
//               [--slo-p99-ms MS] [--trace-tail K]
//
// Simulates a serving process: `lambdas` distinct regularization values
// arrive as interleaved solve requests. Each lambda's factorization is
// built once through the FactorCache (keyed by the checkpoint identity
// fingerprint) and reused for every later request; each lambda's
// ServeEngine coalesces its concurrent requests into blocked multi-RHS
// solves of width up to batch_max. With deadline_ms > 0 every request
// carries that per-request deadline, so slow batches surface as
// structured DeadlineExceeded failures instead of unbounded waits.
// Shutdown is graceful: drain with a timeout, then shutdown() fails any
// stragglers with ServeError(ShuttingDown). With --verify-sample K,
// every K-th batch per engine is certified a posteriori (K = 1 means
// every batch): measured residuals land in ServeResult::residual and
// failing answers are refined/escalated before being returned. Prints
// the cache hit/miss/evict tallies, per-engine request-outcome
// statistics (shed/expired/degraded/poisoned/failed plus the
// verified/refined/escalated certification tallies), and the worst
// residual across all successfully served requests.
//
// Live telemetry (obs/export.hpp, obs/eventlog.hpp, serve/slo.hpp,
// serve/tail_trace.hpp):
//   --metrics-port P       Prometheus scrape endpoint on 127.0.0.1:P
//                          (P = 0 picks an ephemeral port, printed at
//                          startup): curl http://127.0.0.1:P/metrics
//   --metrics-interval MS  background obs::Sampler printing interval
//                          counter rates to stderr (and feeding
//                          fdks_counter_rate in the scrape).
//   --event-log FILE       request-lifecycle events, one JSON per line.
//   --slo-p99-ms MS        rolling-window SLO objective; an exhausted
//                          error budget triggers degraded batches.
//   --trace-tail K         keep the trace slices of the K slowest (or
//                          failed) requests; written per request to
//                          serve_trace_req<id>.json on exit.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "data/generators.hpp"
#include "example_util.hpp"
#include "obs/eventlog.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/factor_cache.hpp"
#include "serve/slo.hpp"
#include "serve/tail_trace.hpp"

int main(int argc, char** argv) {
  using namespace fdks;
  // Strip the long options before the positional arguments are read.
  long verify_sample = 0;      // 0 = certification off.
  long metrics_port = -1;      // -1 = exporter off; 0 = ephemeral port.
  long metrics_interval_ms = 0;
  long slo_p99_ms = 0;
  long trace_tail = 0;
  std::string event_log_path;
  std::vector<char*> args(argv, argv + argc);
  for (size_t i = 1; i < args.size();) {
    const std::string flag(args[i]);
    const bool has_value = i + 1 < args.size();
    long* num = nullptr;
    long minv = 1;
    if (flag == "--verify-sample") {
      num = &verify_sample;
    } else if (flag == "--metrics-port") {
      num = &metrics_port;
      minv = 0;
    } else if (flag == "--metrics-interval") {
      num = &metrics_interval_ms;
    } else if (flag == "--slo-p99-ms") {
      num = &slo_p99_ms;
    } else if (flag == "--trace-tail") {
      num = &trace_tail;
    } else if (flag == "--event-log") {
      if (!has_value) {
        std::printf("--event-log: needs a file path\n");
        return 2;
      }
      event_log_path = args[i + 1];
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      continue;
    } else {
      ++i;
      continue;
    }
    errno = 0;
    char* end = nullptr;
    const long v = has_value ? std::strtol(args[i + 1], &end, 10) : 0;
    if (!has_value || end == args[i + 1] || *end != '\0' ||
        errno == ERANGE || v < minv) {
      std::printf("%s: needs a whole number >= %ld%s%s\n", flag.c_str(),
                  minv, has_value ? ", got " : "",
                  has_value ? args[i + 1] : "");
      return 2;
    }
    *num = v;
    args.erase(args.begin() + static_cast<long>(i),
               args.begin() + static_cast<long>(i) + 2);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();

  const la::index_t n = examples::arg_n(argc, argv, 1, 4096);
  const la::index_t requests = examples::arg_n(argc, argv, 2, 256);
  const la::index_t batch_max = examples::arg_n(argc, argv, 3, 64);
  const la::index_t lambdas = examples::arg_n(argc, argv, 4, 2);
  const la::index_t deadline_ms = examples::arg_n(argc, argv, 5, 0);

  // Live telemetry. Any telemetry flag flips the obs registry on (the
  // exporter and sampler would otherwise scrape an empty registry).
  const bool telemetry = metrics_port >= 0 || metrics_interval_ms > 0 ||
                         !event_log_path.empty() || slo_p99_ms > 0 ||
                         trace_tail > 0;
  if (telemetry) {
    obs::set_enabled(true);
    obs::reset();
  }
  if (trace_tail > 0) {
    obs::trace::set_enabled(true);
    obs::trace::reset();
  }
  std::shared_ptr<obs::EventLog> event_log;
  if (!event_log_path.empty()) {
    event_log = obs::EventLog::to_file(event_log_path);
  }
  std::shared_ptr<serve::SloTracker> slo;
  if (slo_p99_ms > 0) {
    serve::SloOptions so;
    so.p99_target_seconds = static_cast<double>(slo_p99_ms) / 1000.0;
    so.window = 256;
    slo = std::make_shared<serve::SloTracker>(so);
  }
  std::shared_ptr<serve::TailTraceSampler> tail;
  if (trace_tail > 0) {
    serve::TailTraceOptions to;
    to.keep = static_cast<size_t>(trace_tail);
    tail = std::make_shared<serve::TailTraceSampler>(to);
  }
  std::unique_ptr<obs::Sampler> sampler;
  if (metrics_interval_ms > 0) {
    obs::SamplerOptions so;
    so.interval = std::chrono::milliseconds(metrics_interval_ms);
    so.on_sample = [](const obs::Sample& s) {
      double reqs = 0.0;
      const auto it = s.counter_deltas.find("serve.requests");
      if (it != s.counter_deltas.end() && s.interval_seconds > 0.0)
        reqs = it->second / s.interval_seconds;
      std::fprintf(stderr, "[metrics] rss=%.1fMB requests/s=%.1f\n",
                   double(s.rss_bytes) / 1048576.0, reqs);
    };
    sampler = std::make_unique<obs::Sampler>(std::move(so));
  }
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (metrics_port >= 0) {
    obs::MetricsExporterOptions mo;
    mo.port = static_cast<std::uint16_t>(metrics_port);
    mo.render.sampler = sampler.get();
    exporter = std::make_unique<obs::MetricsExporter>(mo);
    std::printf("metrics    : http://127.0.0.1:%u/metrics\n",
                unsigned{exporter->port()});
  }

  data::Dataset ds = data::make_synthetic(data::SyntheticKind::Normal, n, 17);
  askit::AskitConfig acfg;
  acfg.leaf_size = 128;
  acfg.max_rank = 64;
  acfg.tol = 1e-5;
  acfg.num_neighbors = 0;
  askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.8), acfg);

  serve::FactorCache cache(static_cast<size_t>(lambdas));
  std::vector<std::unique_ptr<serve::ServeEngine>> engines;
  std::vector<core::SolverOptions> opts(static_cast<size_t>(lambdas));
  for (la::index_t li = 0; li < lambdas; ++li) {
    opts[static_cast<size_t>(li)].lambda = 1.0 + static_cast<double>(li);
    serve::ServeOptions so;
    so.batch_max = batch_max;
    so.start_paused = true;  // Coalesce the whole burst deterministically.
    if (deadline_ms > 0)
      so.default_deadline =
          std::chrono::milliseconds(static_cast<long>(deadline_ms));
    if (verify_sample > 0) {
      so.verify.mode = verify_sample == 1 ? core::VerifyMode::Always
                                          : core::VerifyMode::Sample;
      so.verify.sample_every = static_cast<int>(verify_sample);
    }
    // All engines feed the same telemetry objects: request_ids are
    // process-global, so one event stream / SLO / tail budget covers
    // the whole process.
    so.event_log = event_log;
    so.slo = slo;
    so.tail_trace = tail;
    engines.push_back(std::make_unique<serve::ServeEngine>(
        cache.get(h, opts[static_cast<size_t>(li)]), so));
  }

  // A second cache pass for each lambda must hit, not refactorize.
  for (la::index_t li = 0; li < lambdas; ++li)
    cache.get(h, opts[static_cast<size_t>(li)]);

  std::mt19937_64 rng(3);
  std::normal_distribution<double> g(0.0, 1.0);
  struct Pending {
    la::index_t engine;
    std::vector<double> rhs;
    std::future<serve::ServeResult> fut;
  };
  std::vector<Pending> pending;
  pending.reserve(static_cast<size_t>(requests));
  for (la::index_t r = 0; r < requests; ++r) {
    Pending p;
    p.engine = r % lambdas;
    p.rhs.resize(static_cast<size_t>(n));
    for (auto& v : p.rhs) v = g(rng);
    p.fut = engines[static_cast<size_t>(p.engine)]->submit(
        std::vector<double>(p.rhs));
    pending.push_back(std::move(p));
  }
  for (auto& e : engines) e->resume();

  double worst = 0.0;
  la::index_t served = 0, degraded = 0, rejected = 0;
  bool unstructured = false;
  for (Pending& p : pending) {
    try {
      const serve::ServeResult res = p.fut.get();
      if (res.degraded()) ++degraded;
      const double r = h.relative_residual(
          res.x, p.rhs, opts[static_cast<size_t>(p.engine)].lambda);
      if (r > worst) worst = r;
      ++served;
    } catch (const serve::ServeError& e) {
      // Structured rejection (deadline, shed, poison): expected under a
      // tight deadline_ms; anything unstructured fails the run.
      std::printf("rejected   : %s (%s)\n", e.what(),
                  serve::to_string(e.code()));
      ++rejected;
    } catch (const std::exception& e) {
      std::printf("UNSTRUCTURED failure: %s\n", e.what());
      unstructured = true;
    }
  }

  // Graceful shutdown: bounded drain first, explicit shutdown() after.
  // Any request still queued past the timeout resolves with
  // ServeError(ShuttingDown) rather than hanging a client forever.
  for (auto& e : engines) {
    if (!e->drain_for(std::chrono::seconds(5)))
      std::printf("drain      : timed out; shutting down with work queued\n");
    e->shutdown();
  }

  const serve::FactorCache::Stats cs = cache.stats();
  std::printf("cache      : %llu hits, %llu misses, %llu evictions, "
              "%zu bytes resident\n",
              static_cast<unsigned long long>(cs.hits),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.evictions), cache.bytes());
  for (la::index_t li = 0; li < lambdas; ++li) {
    const serve::ServeEngine::Stats es =
        engines[static_cast<size_t>(li)]->stats();
    std::printf(
        "engine %td  : %llu requests in %llu batches (max width %td) | "
        "shed %llu expired %llu degraded %llu poisoned %llu failed %llu | "
        "verified %llu refined %llu escalated %llu\n",
        li, static_cast<unsigned long long>(es.requests),
        static_cast<unsigned long long>(es.batches), es.max_batch,
        static_cast<unsigned long long>(es.shed),
        static_cast<unsigned long long>(es.expired),
        static_cast<unsigned long long>(es.degraded),
        static_cast<unsigned long long>(es.poisoned),
        static_cast<unsigned long long>(es.failed),
        static_cast<unsigned long long>(es.verified),
        static_cast<unsigned long long>(es.refined),
        static_cast<unsigned long long>(es.escalated));
  }
  std::printf("residual   : worst %.2e over %td served "
              "(%td degraded, %td rejected)\n",
              worst, served, degraded, rejected);
  if (slo) {
    const serve::SloTracker::Status st = slo->status();
    std::printf("slo        : p99 %.1fms (target %ldms), error rate %.3f, "
                "budget %.2f%s\n",
                st.p99_seconds * 1e3, slo_p99_ms, st.error_rate,
                st.budget_remaining, st.breached ? " [BREACHED]" : "");
  }
  if (event_log) {
    std::printf("event log  : %llu lines -> %s\n",
                static_cast<unsigned long long>(event_log->lines()),
                event_log_path.c_str());
  }
  if (tail) {
    const size_t wrote = tail->write_all("serve_trace_");
    std::printf("tail trace : kept %zu request traces, wrote %zu files "
                "(serve_trace_req<id>.json)\n",
                tail->kept_count(), wrote);
  }
  if (exporter) {
    std::printf("metrics    : served %llu scrapes\n",
                static_cast<unsigned long long>(exporter->scrapes()));
  }
  return (worst < 1e-4 && !unstructured) ? 0 : 1;
}
