// Multi-class kernel ridge classification and kernel regression.
//
//   ./digit_classification [N]
//
// Trains a 10-class one-vs-all classifier on the MNIST-like set (one
// factorization, ten right-hand sides — the amortization a direct
// solver buys) and a kernel regressor on a smooth function over the
// NORMAL set. Also demonstrates saving/loading the compressed
// representation.
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "askit/serialize.hpp"
#include "data/preprocess.hpp"
#include "krr/krr.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  using namespace fdks;
  const la::index_t n = examples::arg_n(argc, argv, 1, 2000);

  // ---- 10-class digits --------------------------------------------------
  {
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::MnistLike, n, 21);
    auto [train, test] = data::train_test_split(ds, 0.2, 22);
    krr::KrrConfig cfg;
    cfg.bandwidth = 8.0;
    cfg.lambda = 0.5;
    cfg.askit.leaf_size = 128;
    cfg.askit.max_rank = 96;
    cfg.askit.tol = 1e-5;
    cfg.askit.num_neighbors = 0;
    krr::KernelRidgeMulticlass model(train, 10, cfg);
    std::printf("digits : train=%td test=%td d=%td, one factorization + 10 "
                "RHS in %.2fs\n",
                train.n(), test.n(), ds.dim(), model.factor_seconds());
    std::printf("digits : 10-class accuracy %.1f%%\n",
                100.0 * model.accuracy(test));
  }

  // ---- Kernel regression -------------------------------------------------
  {
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::Normal, n, 23);
    auto [train, test] = data::train_test_split(ds, 0.2, 24);
    krr::KrrConfig cfg;
    cfg.bandwidth = 8.0;
    cfg.lambda = 0.1;
    cfg.askit.leaf_size = 128;
    cfg.askit.max_rank = 96;
    cfg.askit.tol = 1e-5;
    cfg.askit.num_neighbors = 0;
    krr::KernelRidgeRegressor model(train, cfg);
    std::printf("regress: RMSE %.3f on held-out targets (train residual "
                "%.1e)\n",
                model.rmse(test), model.train_residual());
  }

  // ---- Save / load the compressed representation -------------------------
  {
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::CovtypeLike, n, 25);
    askit::AskitConfig acfg;
    acfg.leaf_size = 128;
    acfg.max_rank = 96;
    acfg.tol = 1e-5;
    acfg.num_neighbors = 0;
    askit::HMatrix h(ds.points, kernel::Kernel::gaussian(3.0), acfg);
    const auto path = std::filesystem::temp_directory_path() /
                      "fdks_example_hmatrix.bin";
    askit::save_hmatrix(path.string(), h);
    askit::HMatrix back = askit::load_hmatrix(path.string());
    std::printf("io     : HMatrix round trip: N=%td, %zu frontier nodes, "
                "%.1f MB on disk\n",
                back.n(), back.frontier().size(),
                double(std::filesystem::file_size(path)) / 1048576.0);
    std::filesystem::remove(path);
  }
  return 0;
}
