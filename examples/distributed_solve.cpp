// Distributed factorization and solve (Algorithms II.4/II.5) over the
// in-process message-passing runtime.
//
//   ./distributed_solve [N] [p]
//
// p ranks (a power of two) each own one subtree; the top log2(p) levels
// are factorized cooperatively with skeleton exchanges, reductions onto
// the group roots, and telescoping broadcasts. The result is compared
// against the sequential solver.
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/dist_solver.hpp"
#include "core/solver.hpp"
#include "data/generators.hpp"
#include "la/blas1.hpp"
#include "mpisim/runtime.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  using namespace fdks;
  const la::index_t n = examples::arg_n(argc, argv, 1, 4096);
  const int p = static_cast<int>(examples::arg_n(argc, argv, 2, 4));

  data::Dataset ds = data::make_synthetic(data::SyntheticKind::Normal, n, 17);
  askit::AskitConfig acfg;
  acfg.leaf_size = 128;
  acfg.max_rank = 64;
  acfg.tol = 1e-5;
  acfg.num_neighbors = 0;
  askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.8), acfg);

  core::SolverOptions scfg;
  scfg.lambda = 1.0;

  std::mt19937_64 rng(3);
  std::vector<double> u(static_cast<size_t>(n));
  std::normal_distribution<double> g(0.0, 1.0);
  for (auto& v : u) v = g(rng);

  core::FastDirectSolver seq(h, scfg);
  auto x_seq = seq.solve(u);
  std::printf("sequential : factor %.3fs, residual %.2e\n",
              seq.factor_seconds(), h.relative_residual(x_seq, u, 1.0));

  std::vector<double> x_dist;
  std::string dist_status;
  std::mutex mu;
  mpisim::run(p, [&](mpisim::Comm& comm) {
    core::DistributedSolver dsolver(h, scfg, comm);
    auto x = dsolver.solve(u);
    std::lock_guard<std::mutex> lock(mu);
    if (comm.rank() == 0) {
      std::printf("rank %d     : local subtree [%td), factor %.3fs\n",
                  comm.rank(), dsolver.local_root(),
                  dsolver.factor_seconds());
      x_dist = std::move(x);
      dist_status = dsolver.last_status().message();
    }
  });
  std::printf("status     : %s\n", dist_status.c_str());

  const double diff =
      la::nrm2(la::vsub(x_dist, x_seq)) / la::nrm2(x_seq);
  std::printf("distributed: p=%d, residual %.2e, ||x_p - x_1||/||x|| = "
              "%.2e\n",
              p, h.relative_residual(x_dist, u, 1.0), diff);
  return diff < 1e-8 ? 0 : 1;
}
