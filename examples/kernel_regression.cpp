// Kernel ridge regression for binary classification — the learning task
// of §IV, with the cross-validation sweep over (h, lambda) that makes
// fast refactorization matter.
//
//   ./kernel_regression [N]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "data/preprocess.hpp"
#include "krr/krr.hpp"
#include "example_util.hpp"

int main(int argc, char** argv) {
  using namespace fdks;
  const la::index_t n = examples::arg_n(argc, argv, 1, 3000);

  data::Dataset ds =
      data::make_synthetic(data::SyntheticKind::CovtypeLike, n, 11);
  auto [train, test] = data::train_test_split(ds, 0.2, 12);
  std::printf("dataset: %s  train=%td test=%td d=%td\n", ds.name.c_str(),
              train.n(), test.n(), ds.dim());

  krr::KrrConfig base;
  base.askit.leaf_size = 128;
  base.askit.max_rank = 96;
  base.askit.tol = 1e-5;
  base.askit.num_neighbors = 0;
  base.askit.seed = 3;

  // Holdout cross-validation over a small (h, lambda) grid. Every cell
  // refactorizes lambda I + K~ — the workload the paper optimizes.
  std::vector<double> hs = {1.0, 3.0, 6.0};
  std::vector<double> lambdas = {0.01, 0.3, 10.0};
  krr::CvResult cv = krr::cross_validate(train, hs, lambdas, base, 0.2, 5);

  std::printf("\n%8s %10s %10s %12s %10s\n", "h", "lambda", "holdout",
              "residual", "factor(s)");
  for (const auto& c : cv.cells)
    std::printf("%8.2f %10.3f %9.1f%% %12.2e %10.3f\n", c.bandwidth,
                c.lambda, 100.0 * c.accuracy, c.train_residual,
                c.factor_seconds);
  std::printf("\nbest: h=%.2f lambda=%.3f (holdout %.1f%%)\n",
              cv.best.bandwidth, cv.best.lambda, 100.0 * cv.best.accuracy);

  // Retrain on the full training set with the selected parameters and
  // report test accuracy (the Table II "Acc" column).
  krr::KrrConfig cfg = base;
  cfg.bandwidth = cv.best.bandwidth;
  cfg.lambda = cv.best.lambda;
  krr::KernelRidge model(train, cfg);
  std::printf("test accuracy: %.1f%%  (train residual %.2e)\n",
              100.0 * model.accuracy(test), model.train_residual());
  return 0;
}
