// Checked command-line parsing shared by the example programs.
//
// atoi/atof silently turn typos into zeros ("40g6" -> 40, "x" -> 0),
// which for a solver demo means a nonsense problem size instead of an
// error. These helpers wrap strtol/strtod with an end-pointer check
// and throw std::invalid_argument naming the offending argument, per
// the project error-style convention (lint rule BAN-PARSE).
#pragma once

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fdks::examples {

/// Parse a whole decimal number; throws naming `what` on garbage,
/// trailing junk, or out-of-range values.
inline long long parse_ll(const char* s, const char* what) {
  if (s == nullptr || *s == '\0') {
    throw std::invalid_argument(std::string("parse_ll: ") + what +
                                ": empty value");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument(std::string("parse_ll: ") + what +
                                ": not a whole number: '" + s + "'");
  }
  return v;
}

inline int parse_int(const char* s, const char* what) {
  const long long v = parse_ll(s, what);
  if (v < INT_MIN || v > INT_MAX) {
    throw std::invalid_argument(std::string("parse_int: ") + what +
                                ": out of int range: '" + s + "'");
  }
  return static_cast<int>(v);
}

/// Parse a floating-point value with the same checking.
inline double parse_double(const char* s, const char* what) {
  if (s == nullptr || *s == '\0') {
    throw std::invalid_argument(std::string("parse_double: ") + what +
                                ": empty value");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument(std::string("parse_double: ") + what +
                                ": not a number: '" + s + "'");
  }
  return v;
}

/// Positional size argument: argv[pos] if present (validated, must be
/// >= 1), else `fallback`.
inline long long arg_n(int argc, char** argv, int pos, long long fallback) {
  if (argc <= pos) return fallback;
  const long long v = parse_ll(argv[pos], "size argument");
  if (v < 1) {
    throw std::invalid_argument(
        std::string("arg_n: size argument must be >= 1, got '") +
        argv[pos] + "'");
  }
  return v;
}

}  // namespace fdks::examples
