#include "ckpt/checkpoint.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "askit/wire.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace fdks::ckpt {

namespace {

namespace wire = askit::wire;
namespace fs = std::filesystem;

constexpr std::uint64_t kMagic = 0x46444b53434b5031ull;  // "FDKSCKP1".
constexpr std::uint32_t kVersion = 1;

// v2 appends the factor-content checksum (FactorTree::content_checksum)
// after the accumulators; v1 checkpoints are rejected by kind mismatch
// and simply refactorized.
constexpr const char* kKindFactorTree = "fdks.factor_tree.v2";
constexpr const char* kKindStage = "fdks.stage.v1";

[[noreturn]] void reject(const std::string& path, const std::string& why) {
  obs::add("ckpt.rejected");
  obs::trace::instant("ckpt.rejected");
  throw CheckpointError("checkpoint " + path + ": " + why);
}

// -- LU / Cholesky / kernel-block field groups -------------------------

void put_lu(std::ostream& out, const la::LuFactor& f) {
  wire::put_matrix(out, f.lu);
  wire::put_ids(out, f.piv);
  wire::put(out, f.min_pivot);
  wire::put(out, f.max_pivot);
  wire::put<std::uint8_t>(out, f.singular ? 1 : 0);
}

la::LuFactor get_lu(std::istream& in) {
  la::LuFactor f;
  f.lu = wire::get_matrix(in);
  f.piv = wire::get_ids(in);
  f.min_pivot = wire::get<double>(in);
  f.max_pivot = wire::get<double>(in);
  f.singular = wire::get<std::uint8_t>(in) != 0;
  return f;
}

void put_chol(std::ostream& out, const la::CholFactor& f) {
  wire::put_matrix(out, f.l);
  wire::put<std::uint8_t>(out, f.spd ? 1 : 0);
  wire::put(out, f.min_diag);
}

la::CholFactor get_chol(std::istream& in) {
  la::CholFactor f;
  f.l = wire::get_matrix(in);
  f.spd = wire::get<std::uint8_t>(in) != 0;
  f.min_diag = wire::get<double>(in);
  return f;
}

void put_block(std::ostream& out, const kernel::KernelBlockOp& op) {
  const bool present = !op.row_ids().empty() || !op.col_ids().empty();
  wire::put<std::uint8_t>(out, present ? 1 : 0);
  if (!present) return;
  wire::put<std::int32_t>(out, static_cast<std::int32_t>(op.scheme()));
  wire::put_ids(out, op.row_ids());
  wire::put_ids(out, op.col_ids());
  wire::put_matrix(out, op.stored_block());
}

kernel::KernelBlockOp get_block(std::istream& in,
                                const kernel::KernelMatrix* km) {
  if (wire::get<std::uint8_t>(in) == 0) return {};
  const auto scheme =
      static_cast<kernel::Scheme>(wire::get<std::int32_t>(in));
  auto rows = wire::get_ids(in);
  auto cols = wire::get_ids(in);
  auto stored = wire::get_matrix(in);
  return kernel::KernelBlockOp(km, std::move(rows), std::move(cols), scheme,
                               std::move(stored));
}

void put_node_factor(std::ostream& out, const core::NodeFactor& f) {
  wire::put<std::uint8_t>(out, f.factored ? 1 : 0);
  wire::put(out, f.diag_shift);
  wire::put<std::uint8_t>(out, f.leaf_uses_chol ? 1 : 0);
  put_lu(out, f.leaf_lu);
  put_chol(out, f.leaf_chol);
  put_block(out, f.v_lr);
  put_block(out, f.v_rl);
  put_lu(out, f.z_lu);
  wire::put(out, f.z_norm1);
  wire::put_matrix(out, f.phat);
  wire::put_matrix(out, f.tmat);
}

core::NodeFactor get_node_factor(std::istream& in,
                                 const kernel::KernelMatrix* km) {
  core::NodeFactor f;
  f.factored = wire::get<std::uint8_t>(in) != 0;
  f.diag_shift = wire::get<double>(in);
  f.leaf_uses_chol = wire::get<std::uint8_t>(in) != 0;
  f.leaf_lu = get_lu(in);
  f.leaf_chol = get_chol(in);
  f.v_lr = get_block(in, km);
  f.v_rl = get_block(in, km);
  f.z_lu = get_lu(in);
  f.z_norm1 = wire::get<double>(in);
  f.phat = wire::get_matrix(in);
  f.tmat = wire::get_matrix(in);
  return f;
}

void collect_subtree(const askit::HMatrix& h, index_t id,
                     std::vector<index_t>& out) {
  out.push_back(id);
  const tree::Node& nd = h.tree().node(id);
  if (!nd.is_leaf()) {
    collect_subtree(h, nd.left, out);
    collect_subtree(h, nd.right, out);
  }
}

}  // namespace

// -- Envelope layer ----------------------------------------------------

void write_blob(const std::string& path, const std::string& kind,
                const std::string& payload) {
  obs::ScopedTimer timer("ckpt.save");
  const std::uint64_t checksum = wire::fnv1a(payload.data(), payload.size());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw CheckpointError("checkpoint " + path + ": cannot open " + tmp +
                            " for writing");
    wire::put(out, kMagic);
    wire::put(out, kVersion);
    wire::put_string(out, kind);
    wire::put<std::uint64_t>(out, payload.size());
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    wire::put(out, checksum);
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw CheckpointError("checkpoint " + path + ": write failed on " +
                            tmp);
    }
  }
  // Atomic publish: readers see either the previous checkpoint or this
  // one, never a torn file.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint " + path + ": rename from " + tmp +
                          " failed");
  }
  obs::add("ckpt.saved");
  obs::add("ckpt.bytes_written", static_cast<double>(payload.size()));
  obs::trace::instant("ckpt.save");
}

std::string read_blob(const std::string& path, const std::string& kind) {
  obs::ScopedTimer timer("ckpt.load");
  std::ifstream in(path, std::ios::binary);
  if (!in) reject(path, "cannot open file");
  if (wire::get<std::uint64_t>(in) != kMagic || !in)
    reject(path, "bad magic (not a fdks checkpoint)");
  const auto version = wire::get<std::uint32_t>(in);
  if (version != kVersion)
    reject(path, "unsupported format version " + std::to_string(version) +
                     " (expected " + std::to_string(kVersion) + ")");
  const std::string got_kind = wire::get_string(in);
  if (!in) reject(path, "truncated header");
  if (got_kind != kind)
    reject(path, "kind mismatch: file holds '" + got_kind +
                     "', expected '" + kind + "'");
  const auto declared = wire::get<std::uint64_t>(in);
  std::string payload(declared, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(declared));
  const auto got = static_cast<std::uint64_t>(in.gcount());
  if (got != declared)
    reject(path, "truncated: payload declares " + std::to_string(declared) +
                     " bytes, file holds " + std::to_string(got));
  const auto checksum = wire::get<std::uint64_t>(in);
  if (!in) reject(path, "truncated: checksum trailer missing");
  if (checksum != wire::fnv1a(payload.data(), payload.size()))
    reject(path, "checksum mismatch (file is corrupt)");
  obs::add("ckpt.loaded");
  obs::trace::instant("ckpt.restore");
  return payload;
}

// -- Directory / stage-marker layer ------------------------------------

void ensure_dir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir))
    throw CheckpointError("checkpoint dir " + dir + ": cannot create (" +
                          ec.message() + ")");
}

std::string join(const std::string& dir, const std::string& name) {
  return (fs::path(dir) / name).string();
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec);
}

void mark_stage(const std::string& dir, const std::string& stage,
                const std::string& detail) {
  std::ostringstream payload;
  wire::put_string(payload, stage);
  wire::put_string(payload, detail);
  write_blob(join(dir, "stage_" + stage + ".ok"), kKindStage, payload.str());
}

bool stage_done(const std::string& dir, const std::string& stage,
                std::string* detail, std::string* diagnostic) {
  const std::string path = join(dir, "stage_" + stage + ".ok");
  if (!file_exists(path)) {
    if (diagnostic) *diagnostic = "no marker at " + path;
    return false;
  }
  try {
    std::istringstream payload(read_blob(path, kKindStage));
    const std::string got_stage = wire::get_string(payload);
    if (got_stage != stage)
      throw CheckpointError("checkpoint " + path + ": marker names stage '" +
                            got_stage + "', expected '" + stage + "'");
    const std::string got_detail = wire::get_string(payload);
    if (detail) *detail = got_detail;
    return true;
  } catch (const CheckpointError& e) {
    // A corrupt marker means the stage must re-run; surface why.
    if (diagnostic) *diagnostic = e.what();
    return false;
  }
}

// -- FactorTree checkpoints --------------------------------------------

std::string factor_fingerprint(const core::FactorTree& ft,
                               const std::string& scope) {
  const askit::HMatrix& h = ft.hmatrix();
  const core::SolverOptions& o = ft.options();
  const kernel::Kernel& k = h.kernel();
  const askit::AskitConfig& c = h.config();
  const auto& perm = h.tree().perm();
  std::ostringstream fp;
  fp << std::hexfloat;
  fp << "fdks-factor-fp-v1"
     << "|n=" << h.n() << "|dim=" << h.dim()
     << "|nodes=" << h.tree().nodes().size()
     << "|kernel=" << static_cast<int>(k.type) << ',' << k.bandwidth << ','
     << k.shift << ',' << k.degree
     << "|cfg=" << c.leaf_size << ',' << c.max_rank << ',' << c.tol << ','
     << c.level_restriction << ',' << c.num_neighbors << ','
     << c.sample_oversampling << ',' << c.seed << ','
     << c.adaptive_frontier << ',' << c.approx_neighbors
     << "|perm=" << wire::fnv1a(perm.data(), perm.size() * sizeof(index_t))
     // Factor-affecting solver options only: traversal knobs
     // (parallel_tree, levelwise) and checkpoint_dir produce identical
     // factors and are deliberately excluded.
     << "|opts=" << o.lambda << ',' << static_cast<int>(o.algo) << ','
     << static_cast<int>(o.scheme) << ',' << o.rcond_threshold << ','
     << o.compact_w << ',' << o.spd_leaves << ',' << o.auto_shift << ','
     << o.shift_initial << ',' << o.max_shift_retries
     << "|scope=" << scope;
  return fp.str();
}

void save_factor_tree(const std::string& path, const core::FactorTree& ft,
                      std::span<const index_t> roots,
                      const std::string& scope) {
  std::ostringstream payload;
  wire::put_string(payload, factor_fingerprint(ft, scope));

  std::vector<index_t> root_list(roots.begin(), roots.end());
  wire::put_ids(payload, root_list);
  std::vector<index_t> ids;
  for (index_t r : roots) collect_subtree(ft.hmatrix(), r, ids);
  wire::put_ids(payload, ids);
  for (index_t id : ids) put_node_factor(payload, ft.factor(id));

  const core::FactorAccumulators acc = ft.accumulators();
  wire::put(payload, acc.stab.min_leaf_pivot_ratio);
  wire::put(payload, acc.stab.min_z_rcond);
  wire::put<std::int64_t>(payload, acc.stab.flagged_nodes);
  wire::put(payload, acc.stab.threshold);
  wire::put<std::int64_t>(payload, acc.shifted_nodes);
  wire::put<std::int64_t>(payload, acc.shift_retries);
  wire::put<std::int64_t>(payload, acc.nonfinite_nodes);
  wire::put(payload, acc.max_shift);

  // Content checksum: chained FNV-1a over every factored node's numeric
  // payload, recomputed after the factors are adopted at load time so a
  // checkpoint that rotted on disk (or a serialization bug) is rejected
  // instead of silently serving wrong answers.
  wire::put<std::uint64_t>(payload, ft.content_checksum());

  write_blob(path, kKindFactorTree, payload.str());
}

void load_factor_tree(const std::string& path, core::FactorTree& ft,
                      std::span<const index_t> roots,
                      const std::string& scope) {
  std::istringstream payload(read_blob(path, kKindFactorTree));

  const std::string want_fp = factor_fingerprint(ft, scope);
  const std::string got_fp = wire::get_string(payload);
  if (got_fp != want_fp)
    reject(path,
           "fingerprint mismatch — the checkpoint belongs to a different "
           "(points, kernel, config, solver options, scope); found '" +
               got_fp + "', expected '" + want_fp + "'");

  const std::vector<index_t> got_roots = wire::get_ids(payload);
  if (got_roots != std::vector<index_t>(roots.begin(), roots.end()))
    reject(path, "subtree root set mismatch");

  const std::vector<index_t> ids = wire::get_ids(payload);
  const auto nnodes =
      static_cast<index_t>(ft.hmatrix().tree().nodes().size());
  const kernel::KernelMatrix* km = &ft.hmatrix().km();
  for (index_t id : ids) {
    if (id < 0 || id >= nnodes)
      reject(path, "node id " + std::to_string(id) + " outside [0, " +
                       std::to_string(nnodes) + ")");
    ft.adopt_factor(id, get_node_factor(payload, km));
  }

  core::FactorAccumulators acc;
  acc.stab.min_leaf_pivot_ratio = wire::get<double>(payload);
  acc.stab.min_z_rcond = wire::get<double>(payload);
  acc.stab.flagged_nodes =
      static_cast<index_t>(wire::get<std::int64_t>(payload));
  acc.stab.threshold = wire::get<double>(payload);
  acc.shifted_nodes = static_cast<index_t>(wire::get<std::int64_t>(payload));
  acc.shift_retries = static_cast<index_t>(wire::get<std::int64_t>(payload));
  acc.nonfinite_nodes =
      static_cast<index_t>(wire::get<std::int64_t>(payload));
  acc.max_shift = wire::get<double>(payload);
  if (!payload) reject(path, "payload shorter than its node table");
  ft.adopt_accumulators(acc);

  // Restore-time integrity: the adopted factors must hash to the same
  // content checksum the saver sealed. A mismatch means the factor
  // payload changed between save and load — reject so the caller
  // refactorizes from scratch (self-healing, like a cache-hit failure).
  const std::uint64_t want_sum = wire::get<std::uint64_t>(payload);
  if (!payload) reject(path, "payload missing its content checksum");
  obs::add("verify.integrity_check");
  if (ft.content_checksum() != want_sum) {
    obs::add("verify.integrity_fail");
    reject(path,
           "factor content checksum mismatch — the checkpoint payload "
           "is corrupt");
  }
}

bool try_load_factor_tree(const std::string& path, core::FactorTree& ft,
                          std::span<const index_t> roots,
                          const std::string& scope, std::string* diagnostic) {
  if (!file_exists(path)) {
    if (diagnostic) *diagnostic = "no checkpoint at " + path;
    return false;
  }
  try {
    load_factor_tree(path, ft, roots, scope);
    return true;
  } catch (const CheckpointError& e) {
    if (diagnostic) *diagnostic = e.what();
    return false;
  }
}

}  // namespace fdks::ckpt
