// Checkpoint/restart for the factorization pipeline.
//
// A 3,072-core-scale run of the paper's O(N log N) factorization is
// long enough that transient faults (a killed rank, a torn write) must
// not discard completed work. This module extends the askit/serialize
// format family (shared primitives in askit/wire.hpp) with restartable
// state:
//
//   Envelope — every checkpoint file is a self-validating blob:
//     magic "FDKSCKP1", format version, a kind string naming what the
//     payload is, the payload length, and an FNV-1a payload checksum.
//     Writes are atomic (write to a temp file, then rename), so a crash
//     mid-write leaves either the old file or a temp that is never
//     read. Truncated or corrupted files are *detected and skipped*
//     with a clear diagnostic — never loaded.
//
//   FactorTree checkpoints — the factored per-node state (leaf LU /
//     Cholesky factors, V kernel blocks, reduced-system LUs, P^ / T
//     matrices) of one or more subtrees, plus the factor-status
//     accumulators. A fingerprint of the (HMatrix, SolverOptions,
//     scope) identity is stored and verified on load, so a checkpoint
//     is never restored into a tree it does not belong to.
//
//   Stage markers — tiny witness files recording that a pipeline stage
//     (compress, factorize, solve) completed, so `fdks_tool
//     --checkpoint-dir=DIR` resumes an interrupted pipeline from the
//     last completed stage.
//
// The recovery supervisor (core/recovery.hpp) re-executes failed
// distributed runs; the solvers' SolverOptions::checkpoint_dir hook
// makes the re-execution resume from the state saved here. Checkpoint
// timing and outcomes land in the obs registry ("ckpt.*").
#pragma once

#include <span>
#include <stdexcept>
#include <string>

#include "core/factor_tree.hpp"

namespace fdks::ckpt {

using la::index_t;

/// A checkpoint file could not be read back: missing, wrong magic or
/// version, wrong kind, truncated, checksum mismatch, or a fingerprint
/// that does not match the tree being restored. what() names the file
/// and the reason.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// -- Envelope layer ----------------------------------------------------

/// Atomically write `payload` as a checkpoint blob of the given kind:
/// the envelope is assembled and checksummed in memory, written to
/// `path + ".tmp"`, then renamed over `path`.
void write_blob(const std::string& path, const std::string& kind,
                const std::string& payload);

/// Read and validate a checkpoint blob, returning the payload. Throws
/// CheckpointError (with the file and reason) on any validation
/// failure; a rejected file is counted under "ckpt.rejected".
std::string read_blob(const std::string& path, const std::string& kind);

// -- Directory / stage-marker layer ------------------------------------

/// Create `dir` (and parents) if needed; throws CheckpointError when
/// the path exists but is not a directory or cannot be created.
void ensure_dir(const std::string& dir);

std::string join(const std::string& dir, const std::string& name);

bool file_exists(const std::string& path);

/// Record that pipeline stage `stage` completed (witness file
/// `stage_<stage>.ok` inside `dir`), with an optional free-form detail
/// string (e.g. the artifact path the stage produced).
void mark_stage(const std::string& dir, const std::string& stage,
                const std::string& detail = "");

/// True when a *valid* marker for `stage` exists; fills `detail` when
/// requested. A corrupt/truncated marker counts as absent (the stage
/// re-runs) and the reason is reported through `diagnostic`.
bool stage_done(const std::string& dir, const std::string& stage,
                std::string* detail = nullptr,
                std::string* diagnostic = nullptr);

// -- FactorTree checkpoints --------------------------------------------

/// Identity of the factorization a checkpoint belongs to: the HMatrix
/// (sizes, kernel, config, permutation hash), the factor-affecting
/// SolverOptions, and a caller-chosen scope string (e.g. "seq" or
/// "dist p=4 rank=2 root=5") distinguishing which part of which
/// topology the factors cover.
std::string factor_fingerprint(const core::FactorTree& ft,
                               const std::string& scope);

/// Save the factored state of the subtrees rooted at `roots` (plus the
/// factor-status accumulators) to `path`, atomically.
void save_factor_tree(const std::string& path, const core::FactorTree& ft,
                      std::span<const index_t> roots,
                      const std::string& scope);

/// Restore a factor-tree checkpoint into `ft` (built from the same
/// HMatrix and options; FactorTree is non-movable, so restore mutates
/// in place). `roots` and `scope` must match the save. Throws
/// CheckpointError on any validation or identity mismatch.
void load_factor_tree(const std::string& path, core::FactorTree& ft,
                      std::span<const index_t> roots,
                      const std::string& scope);

/// Non-throwing wrapper around load_factor_tree for the resume path:
/// false (with the reason in `diagnostic`) when the file is missing or
/// invalid — the caller factorizes fresh instead.
bool try_load_factor_tree(const std::string& path, core::FactorTree& ft,
                          std::span<const index_t> roots,
                          const std::string& scope,
                          std::string* diagnostic = nullptr);

}  // namespace fdks::ckpt
