// Hybrid direct/iterative solver (§II-C, Algorithms II.6–II.8).
//
// With level restriction, only the subtrees rooted at the
// skeletonization frontier A are factorized directly (that is the
// block-diagonal D). All couplings above the frontier are collapsed
// into the global factors
//
//   W = blockdiag_{a in A}( P^_a )            (N x S,  S = sum_a s_a)
//   V : row block a = K(a~, X \ a)            (S x N)
//
// and (lambda I + K~)^-1 u = D^-1 u - W (I + V W)^-1 V D^-1 u, where the
// reduced S x S system is solved matrix-free with GMRES. V is applied
// with the fused GSKS summation, so the hybrid solver stores no
// above-frontier kernel blocks at all — the storage win of Table V.
#pragma once

#include "core/factor_tree.hpp"
#include "iterative/gmres.hpp"

#include <vector>

namespace fdks::core {

struct HybridOptions {
  SolverOptions direct;        ///< Frontier-subtree factorization options.
  iter::GmresOptions gmres;    ///< Reduced-system Krylov options.
  /// Auto-escalation guardrail: after a hybrid solve, when the true
  /// residual against (lambda I + K~) exceeds this tolerance (or the
  /// reduced-system GMRES failed outright), demote the factorization to
  /// a preconditioner for an outer GMRES on the full operator. 0
  /// disables the check.
  double escalate_residual_tol = 0.0;
  int escalate_max_iters = 200;  ///< Outer-GMRES iteration budget.
};

class HybridSolver {
 public:
  /// Factorizes the frontier subtrees on construction.
  HybridSolver(const HMatrix& h, HybridOptions opts);

  /// Solve (lambda I + K~) x = u (vectors in original point order).
  /// Records the reduced-system GMRES trace (last_gmres()). `cancel`
  /// (optional) is checked between frontier subtrees and at every
  /// reduced-system GMRES iteration; an expired token aborts with
  /// core::CancelledError.
  std::vector<double> solve(std::span<const double> u,
                            const CancelToken* cancel = nullptr) const;

  /// Block solve for B right-hand sides (columns of u). The linear
  /// stages of Algorithm II.6 are batched — D^-1 as in-place block
  /// subtree solves, V via fused block kernel summation, W as batched
  /// P^ applications — while the reduced-system GMRES (step 3) stays
  /// per column (a Krylov space is per-RHS). last_gmres() reflects the
  /// final column afterwards.
  Matrix solve(const Matrix& u, const CancelToken* cancel = nullptr) const;

  /// Guarded solve with graceful degradation: validates input/output,
  /// measures the true residual, and — when escalate_residual_tol is set
  /// and the direct pass misses it — escalates to an outer GMRES on
  /// (lambda I + K~) right-preconditioned by this solver. Never throws
  /// on numerical trouble; inspect the returned SolveStatus.
  SolveStatus solve_with_status(std::span<const double> u,
                                std::span<double> x) const;

  /// Structured factorization outcome for the frontier subtrees.
  FactorStatus factor_status() const { return ft_.factor_status(); }

  /// Size S of the reduced system (I + VW).
  index_t reduced_size() const { return reduced_size_; }

  const iter::GmresResult& last_gmres() const { return last_; }
  const StabilityReport& stability() const { return ft_.stability(); }
  double factor_seconds() const { return factor_seconds_; }
  size_t factor_bytes() const;

  // -- Exposed for tests and the distributed driver --------------------

  /// z = V q (Algorithm II.8): q length N (permuted order), z length S.
  void matvec_v(std::span<const double> q, std::span<double> z) const;

  /// q = W z (Algorithm II.7): z length S, q length N (permuted order).
  void matvec_w(std::span<const double> z, std::span<double> q) const;

  /// y = (I + V W) z, the reduced operator handed to GMRES.
  void reduced_apply(std::span<const double> z, std::span<double> y) const;

 private:
  const HMatrix* h_;
  HybridOptions opts_;
  FactorTree ft_;
  std::vector<index_t> frontier_;
  std::vector<index_t> offsets_;   ///< Prefix offsets of each a's block in S.
  std::vector<index_t> all_ids_;   ///< 0..N-1, the V column index set.
  index_t reduced_size_ = 0;
  double factor_seconds_ = 0.0;
  mutable iter::GmresResult last_;
};

}  // namespace fdks::core
