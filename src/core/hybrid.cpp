#include "core/hybrid.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "kernel/gsks.hpp"
#include "la/gemm.hpp"
#include "obs/obs.hpp"

namespace fdks::core {

namespace {

/// Checkpoint-aware frontier factorization (scope "hybrid"): resume all
/// subtree factors from one file when a valid checkpoint matches,
/// otherwise factorize and persist. See SolverOptions::checkpoint_dir.
void factorize_roots_ckpt(FactorTree& ft, std::span<const index_t> roots,
                          bool compute_phat) {
  const SolverOptions& opts = ft.options();
  if (opts.checkpoint_dir.empty()) {
    for (index_t a : roots) ft.factorize_subtree(a, compute_phat);
    return;
  }
  ckpt::ensure_dir(opts.checkpoint_dir);
  const std::string path =
      ckpt::join(opts.checkpoint_dir, "factors_hybrid.ckpt");
  std::string diag;
  if (ckpt::try_load_factor_tree(path, ft, roots, "hybrid", &diag)) return;
  for (index_t a : roots) ft.factorize_subtree(a, compute_phat);
  ckpt::save_factor_tree(path, ft, roots, "hybrid");
}

}  // namespace

HybridSolver::HybridSolver(const HMatrix& h, HybridOptions opts)
    : h_(&h), opts_(opts), ft_(h, opts.direct) {
  frontier_ = h.frontier();
  obs::ScopedTimer t_factor("factorize");

  if (frontier_.empty()) {
    // Degenerate single-leaf tree: the "frontier" is the root itself and
    // the solver is a plain dense factorization.
    const index_t roots[] = {h.tree().root()};
    factorize_roots_ckpt(ft_, roots, /*compute_phat=*/false);
  } else {
    offsets_.reserve(frontier_.size() + 1);
    offsets_.push_back(0);
    for (index_t a : frontier_)
      offsets_.push_back(offsets_.back() +
                         static_cast<index_t>(h.skeleton(a).skel.size()));
    reduced_size_ = offsets_.back();
    // Each frontier root needs its own P^ (it is a W block).
    factorize_roots_ckpt(ft_, frontier_, /*compute_phat=*/true);
  }
  factor_seconds_ = t_factor.stop();
  obs::add("hybrid.reduced_size", static_cast<double>(reduced_size_));

  all_ids_.resize(static_cast<size_t>(h.n()));
  std::iota(all_ids_.begin(), all_ids_.end(), index_t{0});
}

void HybridSolver::matvec_v(std::span<const double> q,
                            std::span<double> z) const {
  if (static_cast<index_t>(z.size()) != reduced_size_ ||
      static_cast<index_t>(q.size()) != h_->n())
    throw std::invalid_argument("matvec_v: size mismatch");
  std::fill(z.begin(), z.end(), 0.0);
  for (size_t ai = 0; ai < frontier_.size(); ++ai) {
    const index_t a = frontier_[ai];
    const tree::Node& nd = h_->tree().node(a);
    const auto& skel = h_->skeleton(a).skel;
    auto za = z.subspan(static_cast<size_t>(offsets_[ai]), skel.size());
    // K(a~, X \ a) q = K(a~, X) q - K(a~, X_a) q_a: two fused sweeps,
    // nothing materialized (matrix-free V, the paper's storage saving).
    kernel::gsks_apply(h_->km(), skel, all_ids_, q, za, 1.0);
    std::vector<index_t> own(static_cast<size_t>(nd.size()));
    std::iota(own.begin(), own.end(), nd.begin);
    kernel::gsks_apply(h_->km(), skel, own,
                       q.subspan(static_cast<size_t>(nd.begin),
                                 static_cast<size_t>(nd.size())),
                       za, -1.0);
  }
}

void HybridSolver::matvec_w(std::span<const double> z,
                            std::span<double> q) const {
  if (static_cast<index_t>(z.size()) != reduced_size_ ||
      static_cast<index_t>(q.size()) != h_->n())
    throw std::invalid_argument("matvec_w: size mismatch");
  std::fill(q.begin(), q.end(), 0.0);
  for (size_t ai = 0; ai < frontier_.size(); ++ai) {
    const index_t a = frontier_[ai];
    const tree::Node& nd = h_->tree().node(a);
    const size_t sa = h_->skeleton(a).skel.size();
    ft_.apply_phat(a, z.subspan(static_cast<size_t>(offsets_[ai]), sa),
                   q.subspan(static_cast<size_t>(nd.begin),
                             static_cast<size_t>(nd.size())));
  }
}

void HybridSolver::reduced_apply(std::span<const double> z,
                                 std::span<double> y) const {
  std::vector<double> q(static_cast<size_t>(h_->n()), 0.0);
  matvec_w(z, q);
  matvec_v(q, y);
  for (size_t i = 0; i < z.size(); ++i) y[i] += z[i];
}

std::vector<double> HybridSolver::solve(std::span<const double> u,
                                        const CancelToken* cancel) const {
  if (static_cast<index_t>(u.size()) != h_->n())
    throw std::invalid_argument("HybridSolver::solve: size mismatch");
  obs::ScopedTimer t_solve("solve");

  std::vector<double> ut = h_->to_tree_order(u);

  if (frontier_.empty()) {  // Single-leaf degenerate case.
    ft_.solve_subtree(h_->tree().root(), std::span<double>(ut), cancel);
    return h_->from_tree_order(ut);
  }

  // Algorithm II.6. Step 1: w = D^-1 u on every frontier subtree.
  std::vector<double> w = ut;
  for (index_t a : frontier_) {
    if (cancel) cancel->check("HybridSolver::solve");
    const tree::Node& nd = h_->tree().node(a);
    ft_.solve_subtree(a,
                      std::span<double>(w.data() + nd.begin,
                                        static_cast<size_t>(nd.size())),
                      cancel);
  }

  if (reduced_size_ == 0) return h_->from_tree_order(w);

  // Step 2: rhs = V w; step 3: solve (I + VW) z = rhs with GMRES. The
  // token rides into the Krylov loop through GmresOptions.
  std::vector<double> rhs(static_cast<size_t>(reduced_size_), 0.0);
  matvec_v(w, rhs);
  iter::GmresOptions gopts = opts_.gmres;
  if (cancel) gopts.cancel = cancel;
  last_ = iter::gmres(
      reduced_size_,
      [this](std::span<const double> z, std::span<double> y) {
        reduced_apply(z, y);
      },
      rhs, gopts);

  // Step 4: x = w - W z.
  std::vector<double> wz(static_cast<size_t>(h_->n()), 0.0);
  matvec_w(last_.x, wz);
  for (size_t i = 0; i < w.size(); ++i) w[i] -= wz[i];
  return h_->from_tree_order(w);
}

Matrix HybridSolver::solve(const Matrix& u,
                           const CancelToken* cancel) const {
  const index_t n = h_->n();
  if (u.rows() != n)
    throw std::invalid_argument("HybridSolver::solve: block shape mismatch");
  obs::ScopedTimer t_solve("solve");
  const index_t nrhs = u.cols();

  Matrix w(n, nrhs);
  for (index_t j = 0; j < nrhs; ++j) {
    std::vector<double> ut = h_->to_tree_order(
        std::span<const double>(u.col(j), static_cast<size_t>(n)));
    std::copy(ut.begin(), ut.end(), w.col(j));
  }
  la::MatrixView wv(w);

  if (frontier_.empty()) {  // Single-leaf degenerate case.
    ft_.solve_subtree(h_->tree().root(), w, cancel);
  } else {
    // Step 1: W = D^-1 U, one in-place block solve per frontier subtree.
    for (index_t a : frontier_) {
      if (cancel) cancel->check("HybridSolver::solve");
      const tree::Node& nd = h_->tree().node(a);
      ft_.solve_subtree(a, wv.block(nd.begin, 0, nd.size(), nrhs), cancel);
    }

    if (reduced_size_ > 0) {
      // Step 2: RHS = V W, fused block sweeps (each kernel tile is
      // evaluated once for all B columns).
      Matrix rhs(reduced_size_, nrhs);
      la::MatrixView rhsv(rhs);
      for (size_t ai = 0; ai < frontier_.size(); ++ai) {
        const index_t a = frontier_[ai];
        const tree::Node& nd = h_->tree().node(a);
        const auto& skel = h_->skeleton(a).skel;
        const index_t sa = static_cast<index_t>(skel.size());
        la::MatrixView za = rhsv.block(offsets_[ai], 0, sa, nrhs);
        kernel::gsks_apply_block(h_->km(), skel, all_ids_,
                                 la::ConstMatrixView(wv), za, 1.0);
        std::vector<index_t> own(static_cast<size_t>(nd.size()));
        std::iota(own.begin(), own.end(), nd.begin);
        kernel::gsks_apply_block(
            h_->km(), skel, own,
            la::ConstMatrixView(wv.block(nd.begin, 0, nd.size(), nrhs)), za,
            -1.0);
      }

      // Step 3: (I + VW) z = rhs, one GMRES per column (Krylov spaces
      // are per-RHS; everything around them is batched).
      iter::GmresOptions gopts = opts_.gmres;
      if (cancel) gopts.cancel = cancel;
      Matrix z(reduced_size_, nrhs);
      for (index_t j = 0; j < nrhs; ++j) {
        last_ = iter::gmres(
            reduced_size_,
            [this](std::span<const double> zc, std::span<double> y) {
              reduced_apply(zc, y);
            },
            std::span<const double>(rhs.col(j),
                                    static_cast<size_t>(reduced_size_)),
            gopts);
        std::copy(last_.x.begin(), last_.x.end(), z.col(j));
      }

      // Step 4: X = W - W_mat Z, batched P^ applications with alpha=-1
      // accumulating straight into w.
      const la::ConstMatrixView zv(z);
      for (size_t ai = 0; ai < frontier_.size(); ++ai) {
        const index_t a = frontier_[ai];
        const tree::Node& nd = h_->tree().node(a);
        const index_t sa =
            static_cast<index_t>(h_->skeleton(a).skel.size());
        ft_.apply_phat(a, zv.block(offsets_[ai], 0, sa, nrhs),
                       wv.block(nd.begin, 0, nd.size(), nrhs), -1.0);
      }
    }
  }

  Matrix x(n, nrhs);
  for (index_t j = 0; j < nrhs; ++j) {
    std::vector<double> xo = h_->from_tree_order(
        std::span<const double>(w.col(j), static_cast<size_t>(n)));
    std::copy(xo.begin(), xo.end(), x.col(j));
  }
  return x;
}

SolveStatus HybridSolver::solve_with_status(std::span<const double> u,
                                            std::span<double> x) const {
  SolveStatus st;
  const FactorStatus fs = ft_.factor_status();
  st.lambda_effective = fs.lambda_effective;
  st.shifted_nodes = fs.shifted_nodes;
  if (!all_finite(u)) {
    st.code = SolveCode::NonFinite;
    st.detail = "right-hand side contains NaN/Inf";
    obs::add("guardrail.nonfinite_rhs");
    return st;
  }

  std::vector<double> x0 = solve(u);
  st.gmres_iterations = last_.iterations;
  const double lambda = opts_.direct.lambda;
  const bool x0_finite =
      all_finite(std::span<const double>(x0.data(), x0.size()));
  double res0 = std::numeric_limits<double>::infinity();
  if (x0_finite) res0 = h_->relative_residual(x0, u, lambda);
  st.residual = res0;

  const bool reduced_failed = reduced_size_ > 0 &&
                              (!last_.converged || last_.nonfinite ||
                               last_.breakdown || last_.stagnated);
  const bool want_escalate =
      opts_.escalate_residual_tol > 0.0 &&
      (!x0_finite || !std::isfinite(res0) ||
       res0 > opts_.escalate_residual_tol || reduced_failed);

  if (want_escalate) {
    // Certification-ladder rung 1 (core/verify.hpp): cheap fixed-point
    // refinement x += M^-1(u − A x) before demoting the factor to a
    // preconditioner. When the hybrid answer is close, a step or two
    // reaches the tolerance at a fraction of the outer-Krylov cost.
    // Skipped when the reduced GMRES failed outright — refinement
    // through a broken reduced solve would reuse the broken operator.
    if (x0_finite && std::isfinite(res0) && !reduced_failed) {
      const VerifyPolicy& vp = opts_.direct.verify;
      std::vector<double> ax(u.size());
      double rel = res0;
      for (int step = 0; step < vp.max_refine_steps; ++step) {
        h_->apply(x0, ax, lambda);
        for (size_t i = 0; i < ax.size(); ++i) ax[i] = u[i] - ax[i];
        std::vector<double> dx = solve(ax);
        if (!all_finite(std::span<const double>(dx.data(), dx.size())))
          break;
        for (size_t i = 0; i < x0.size(); ++i) x0[i] += dx[i];
        const double prev = rel;
        rel = h_->relative_residual(x0, u, lambda);
        obs::add("refine.steps");
        if (std::isfinite(rel) && rel <= opts_.escalate_residual_tol)
          break;
        if (!std::isfinite(rel) || rel >= vp.min_step_improvement * prev) {
          if (!std::isfinite(rel) || rel > prev) {
            // The step made things worse: roll it back.
            for (size_t i = 0; i < x0.size(); ++i) x0[i] -= dx[i];
            rel = prev;
          }
          break;  // Stagnated: fall through to the GMRES rung.
        }
      }
      if (rel < res0) {
        res0 = rel;
        st.residual = rel;
      }
    }
  }

  const bool want_outer_gmres =
      want_escalate && !(std::isfinite(res0) && x0_finite &&
                         res0 <= opts_.escalate_residual_tol &&
                         !reduced_failed);
  if (want_outer_gmres) {
    // Graceful degradation (§II-C discussion): the direct pass becomes a
    // right preconditioner M^-1 for an outer GMRES on A = lambda I + K~,
    // i.e. solve (A M^-1) y = u, then x = M^-1 y.
    obs::add("guardrail.escalations");
    obs::add("refine.escalations");
    ++st.escalations;
    iter::GmresOptions og;
    og.max_iters = opts_.escalate_max_iters;
    og.restart = std::min(opts_.escalate_max_iters, 60);
    og.rtol = opts_.escalate_residual_tol;
    og.record_history = false;
    std::vector<double> scratch(u.size());
    auto op = [this, lambda, &scratch](std::span<const double> y,
                                       std::span<double> out) {
      std::vector<double> q = solve(y);  // q = M^-1 y.
      std::copy(q.begin(), q.end(), scratch.begin());
      h_->apply(scratch, out, lambda);   // out = A q.
    };
    iter::GmresResult outer =
        iter::gmres(h_->n(), op, u, og);
    st.gmres_iterations += outer.iterations;
    if (all_finite(std::span<const double>(outer.x.data(),
                                           outer.x.size()))) {
      std::vector<double> xe = solve(outer.x);
      if (all_finite(std::span<const double>(xe.data(), xe.size()))) {
        const double rese = h_->relative_residual(xe, u, lambda);
        if (std::isfinite(rese) && (!std::isfinite(res0) || rese < res0)) {
          x0 = std::move(xe);
          st.residual = rese;
        }
      }
    }
  }

  if (!all_finite(std::span<const double>(x0.data(), x0.size()))) {
    st.code = SolveCode::NonFinite;
    st.detail = "solution contains NaN/Inf";
    return st;
  }
  std::copy(x0.begin(), x0.end(), x.begin());

  // Outcome priority: worst condition wins, repaired states still ok().
  if (want_escalate) {
    if (opts_.escalate_residual_tol > 0.0 &&
        st.residual > opts_.escalate_residual_tol) {
      st.code = SolveCode::NotConverged;
      st.detail = "escalated solve still misses escalate_residual_tol";
    } else {
      st.code = SolveCode::Escalated;
    }
  } else if (reduced_failed) {
    if (last_.breakdown) {
      st.code = SolveCode::Breakdown;
    } else if (last_.stagnated) {
      st.code = SolveCode::Stagnated;
    } else {
      st.code = SolveCode::NotConverged;
    }
    st.detail = "reduced-system GMRES did not converge";
  } else if (fs.code == FactorCode::ShiftedDiagonal) {
    st.code = SolveCode::ShiftedDiagonal;
  }
  return st;
}

size_t HybridSolver::factor_bytes() const {
  if (frontier_.empty()) return ft_.subtree_bytes(h_->tree().root());
  size_t b = 0;
  for (index_t a : frontier_) b += ft_.subtree_bytes(a);
  return b;
}

}  // namespace fdks::core
