// Cooperative cancellation and deadlines for long-running solves.
//
// A CancelToken carries an optional wall-clock deadline and an optional
// shared cancel flag. Compute loops accept a `const CancelToken*`
// (nullptr = never cancel, the default for every existing caller) and
// call check() at natural boundaries — internal tree nodes in the
// telescoping solve, frontier subtrees in the hybrid solver, Arnoldi
// iterations in GMRES. check() throws CancelledError, which unwinds the
// solve; the serving layer catches it and fails the affected requests
// with ServeCode::DeadlineExceeded instead of letting dead work occupy
// the worker.
//
// Tokens are cheap value types: copies share the same cancel flag, so a
// token handed to a worker can be cancelled from the submitting thread.
// Deadline is the alias callers use when the token only encodes time.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

namespace fdks::core {

/// Thrown by CancelToken::check() when the deadline has passed or the
/// token was cancelled. Derives from runtime_error so generic handlers
/// still work, but callers that care catch it specifically.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class CancelToken {
 public:
  using clock = std::chrono::steady_clock;

  /// Default token: never expires, never cancelled. Equivalent to
  /// passing nullptr; exists so a token member can mean "no limit".
  CancelToken() = default;

  /// Token that expires at an absolute steady_clock time point.
  static CancelToken at(clock::time_point deadline) {
    CancelToken t;
    t.deadline_ = deadline;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Token that expires `budget` from now.
  static CancelToken after(clock::duration budget) {
    return at(clock::now() + budget);
  }

  /// Token with no deadline that can only be cancelled manually.
  static CancelToken manual() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// Trip the shared cancel flag; every copy of this token observes it.
  /// No-op on a default-constructed (non-cancellable) token.
  void cancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool has_deadline() const { return deadline_ != clock::time_point::max(); }
  clock::time_point deadline() const { return deadline_; }

  /// True once cancelled or past the deadline. Reads the clock, so call
  /// at work-item granularity (tree nodes, Krylov iterations), not in
  /// inner arithmetic loops.
  bool expired() const {
    if (flag_ && flag_->load(std::memory_order_relaxed)) return true;
    return has_deadline() && clock::now() >= deadline_;
  }

  /// Time left before the deadline (clamped at zero); duration::max()
  /// when there is no deadline.
  clock::duration remaining() const {
    if (!has_deadline()) return clock::duration::max();
    const clock::time_point now = clock::now();
    return now >= deadline_ ? clock::duration::zero() : deadline_ - now;
  }

  /// Throw CancelledError("<context>: ...") if expired. `context`
  /// names the checking site, matching the project's error-message
  /// convention.
  void check(const char* context) const {
    if (!expired()) return;
    const bool flagged = flag_ && flag_->load(std::memory_order_relaxed);
    throw CancelledError(std::string(context) +
                         (flagged && !has_deadline()
                              ? ": cancelled"
                              : ": deadline exceeded"));
  }

 private:
  clock::time_point deadline_ = clock::time_point::max();
  std::shared_ptr<std::atomic<bool>> flag_;  ///< Shared across copies.
};

/// Naming alias for the common case where the token only encodes a
/// time budget.
using Deadline = CancelToken;

}  // namespace fdks::core
