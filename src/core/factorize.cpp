// Telescoped O(N log N) factorization (Algorithm II.2) and the shared
// per-node factorization kernel.
#include <algorithm>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/factor_tree.hpp"
#include "la/gemm.hpp"
#include "obs/obs.hpp"

namespace fdks::core {

namespace {

std::vector<index_t> range_ids(index_t begin, index_t end) {
  std::vector<index_t> v(static_cast<size_t>(end - begin));
  std::iota(v.begin(), v.end(), begin);
  return v;
}

bool matrix_finite(const Matrix& m) {
  return all_finite(std::span<const double>(
      m.data(), static_cast<size_t>(m.size())));
}

}  // namespace

void FactorTree::factorize_subtree(index_t id, bool compute_phat) {
  if (opts_.compact_w && opts_.algo == FactorizationAlgo::Subtree)
    throw std::invalid_argument(
        "FactorTree::factorize_subtree: compact_w requires the "
        "telescoped algorithm");
  const tree::Node& nd = h_->tree().node(id);
  if (!nd.is_leaf()) {
    if (opts_.parallel_tree && nd.size() >= 4 * h_->config().leaf_size) {
      // Independent children factorizations as OpenMP tasks — the
      // paper's future-work tree task parallelism. Without an enclosing
      // parallel region the tasks execute immediately (still correct).
      const index_t left = nd.left;
      const index_t right = nd.right;
#pragma omp task firstprivate(left)
      factorize_subtree(left, /*compute_phat=*/true);
      factorize_subtree(right, /*compute_phat=*/true);
#pragma omp taskwait
    } else {
      factorize_subtree(nd.left, /*compute_phat=*/true);
      factorize_subtree(nd.right, /*compute_phat=*/true);
    }
  }
  factorize_node(id, compute_phat);
}

void FactorTree::factorize_subtree_levelwise(index_t id, bool compute_phat) {
  if (opts_.compact_w && opts_.algo == FactorizationAlgo::Subtree)
    throw std::invalid_argument(
        "FactorTree::factorize_subtree_levelwise: compact_w requires "
        "the telescoped algorithm");
  // Gather the subtree's nodes grouped by level with one pass (children
  // have larger ids than parents, so a forward sweep visits parents
  // first and a per-level bucket sort falls out).
  std::vector<std::vector<index_t>> by_level;
  std::vector<index_t> stack = {id};
  while (!stack.empty()) {
    const index_t cur = stack.back();
    stack.pop_back();
    const tree::Node& nd = h_->tree().node(cur);
    const size_t lvl = static_cast<size_t>(nd.level);
    if (by_level.size() <= lvl) by_level.resize(lvl + 1);
    by_level[lvl].push_back(cur);
    if (!nd.is_leaf()) {
      stack.push_back(nd.left);
      stack.push_back(nd.right);
    }
  }
  for (size_t lvl = by_level.size(); lvl-- > 0;) {
    auto& nodes = by_level[lvl];
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
    for (index_t i = 0; i < static_cast<index_t>(nodes.size()); ++i) {
      const index_t nid = nodes[static_cast<size_t>(i)];
      factorize_node(nid, nid == id ? compute_phat : true);
    }
  }
}

void FactorTree::factorize_node(index_t id, bool compute_phat) {
  const tree::Node& nd = h_->tree().node(id);
  const askit::NodeSkeleton& sk = h_->skeleton(id);
  NodeFactor& f = nf_[static_cast<size_t>(id)];

  if (nd.is_leaf()) {
    // Phase timings flow through the shared obs registry (the bench JSON
    // and --profile tree) while stop() also feeds this instance's
    // FactorProfile view, which stays correct when several solvers
    // coexist in one process.
    obs::ScopedTimer t_leaf("leaf");
    // lambda I + K_aa: SPD Cholesky when requested (with LU fallback on
    // a non-positive pivot), else GETRF-equivalent partial-pivot LU.
    Matrix a = h_->km().block_range(nd.begin, nd.end, nd.begin, nd.end);
    for (index_t i = 0; i < nd.size(); ++i) a(i, i) += opts_.lambda;
    if (!matrix_finite(a)) {
      // Phase-boundary guard: non-finite kernel entries cannot be
      // repaired here; record for FactorStatus and proceed (the factors
      // will carry the NaN, which the guarded solves detect).
      obs::add("guardrail.nonfinite_nodes");
      std::lock_guard<std::mutex> lock(stab_mu_);
      ++nonfinite_nodes_;
    }
    const double anorm = la::norm1(a);
    f.diag_shift = 0.0;
    index_t retries = 0;
    for (;;) {
      f.leaf_uses_chol = false;
      if (opts_.spd_leaves) {
        f.leaf_chol = la::chol_factor(a);
        if (f.leaf_chol.spd) {
          f.leaf_uses_chol = true;
        } else {
          f.leaf_chol = la::CholFactor{};  // Not SPD: discard, use LU.
        }
      }
      if (!f.leaf_uses_chol) f.leaf_lu = la::lu_factor(a);
      if (!opts_.auto_shift || retries >= opts_.max_shift_retries ||
          !leaf_near_singular(f, opts_.rcond_threshold))
        break;
      // Graceful degradation: bump the effective lambda on this node
      // and re-factorize (the §III small-lambda repair). Shift grows
      // geometrically until the block is numerically invertible.
      const double base = opts_.shift_initial * std::max(1.0, anorm);
      const double target = f.diag_shift == 0.0 ? base : f.diag_shift * 1e2;
      for (index_t i = 0; i < nd.size(); ++i)
        a(i, i) += target - f.diag_shift;
      f.diag_shift = target;
      ++retries;
      obs::add("guardrail.shift_retries");
    }
    if (f.diag_shift > 0.0) {
      obs::add("guardrail.shifted_nodes");
      std::lock_guard<std::mutex> lock(stab_mu_);
      ++shifted_nodes_;
      shift_retries_ += retries;
      max_shift_ = std::max(max_shift_, f.diag_shift);
    }
    if (compute_phat) {
      // P^_a = (lambda I + K_aa)^-1 P_{a~,a}^T; for an unskeletonized
      // root-leaf the projection is the identity.
      Matrix e = sk.skeletonized ? sk.proj.transposed()
                                 : Matrix::identity(nd.size());
      if (f.leaf_uses_chol)
        la::chol_solve(f.leaf_chol, e);
      else
        la::lu_solve(f.leaf_lu, e);
      f.phat = std::move(e);
    }
    f.factored = true;
    {
      const double dt = t_leaf.stop();
      obs::hist("factor.leaf_seconds", dt);
      std::lock_guard<std::mutex> lock(stab_mu_);
      profile_.leaf_seconds += dt;
      ++profile_.leaves;
    }
    record_stability(id);
    return;
  }

  const NodeFactor& fl = nf_[static_cast<size_t>(nd.left)];
  const NodeFactor& fr = nf_[static_cast<size_t>(nd.right)];
  if (!fl.factored || !fr.factored)
    throw std::logic_error("factorize_node: children not factorized");

  const tree::Node& l = h_->tree().node(nd.left);
  const tree::Node& r = h_->tree().node(nd.right);
  const auto& leff = h_->effective_skeleton(nd.left);
  const auto& reff = h_->effective_skeleton(nd.right);
  const index_t sl = static_cast<index_t>(leff.size());
  const index_t sr = static_cast<index_t>(reff.size());

  obs::ScopedTimer t_v("v_assembly");
  // V_α blocks (eq. 6): rows are the children's (effective) skeletons,
  // columns the sibling's full point range. Reused across lambda
  // re-factorizations (set_lambda), since they do not depend on lambda.
  if (f.v_lr.rows() == 0) {
    f.v_lr = kernel::KernelBlockOp(&h_->km(), leff,
                                   range_ids(r.begin, r.end), opts_.scheme);
    f.v_rl = kernel::KernelBlockOp(&h_->km(), reff,
                                   range_ids(l.begin, l.end), opts_.scheme);
  }

  // Reduced system Z = I + V W (eq. 8):
  //   [ I            K(l~,r) P^_r ]
  //   [ K(r~,l) P^_l I            ]
  // In compact_w mode the children's dense P^ is reconstructed
  // transiently for the block product and discarded.
  Matrix b12 = f.v_lr.apply_block(fr.phat.size() > 0 ? fr.phat
                                                     : dense_phat(nd.right));
  Matrix b21 = f.v_rl.apply_block(fl.phat.size() > 0 ? fl.phat
                                                     : dense_phat(nd.left));
  const double dt_v = t_v.stop();
  if (!matrix_finite(b12) || !matrix_finite(b21)) {
    // Phase boundary V-assembly -> Z-factorization: NaN/Inf here means
    // upstream factors or kernel evaluations were already poisoned.
    obs::add("guardrail.nonfinite_nodes");
    std::lock_guard<std::mutex> lock(stab_mu_);
    ++nonfinite_nodes_;
  }

  obs::ScopedTimer t_z("z_factor");
  Matrix z(sl + sr, sl + sr);
  for (index_t i = 0; i < sl + sr; ++i) z(i, i) = 1.0;
  z.set_block(0, sl, b12);
  z.set_block(sl, 0, b21);
  f.z_norm1 = la::norm1(z);
  f.z_lu = la::lu_factor(z);
  const double dt_z = t_z.stop();

  obs::ScopedTimer t_tel("telescope");
  if (compute_phat) {
    // P'_α: skeleton projection for skeletonized nodes, identity above
    // the frontier (the expanded level-restricted factorization).
    Matrix t;  // (sl+sr) x s_α, will hold Z^-1 P'.
    if (sk.skeletonized) {
      t = sk.proj.transposed();
    } else {
      t = Matrix::identity(sl + sr);
    }
    if (opts_.algo == FactorizationAlgo::Telescoped) {
      // Eq. (10) via the push-through identity:
      //   P^_α = (I + W V)^-1 W P' = W Z^-1 P'.
      la::lu_solve(f.z_lu, t);
      if (opts_.compact_w) {
        // §III storage reduction: keep only the (s_l+s_r) x s_α stencil;
        // W actions telescope through the children on demand.
        f.phat = Matrix();
        f.tmat = std::move(t);
      } else if (fl.phat.size() > 0 && fr.phat.size() > 0) {
        f.phat.resize(nd.size(), t.cols());
        Matrix top = la::matmul(fl.phat, t.block(0, 0, sl, t.cols()));
        Matrix bot = la::matmul(fr.phat, t.block(sl, 0, sr, t.cols()));
        f.phat.set_block(0, 0, top);
        f.phat.set_block(l.size(), 0, bot);
      } else {
        throw std::logic_error("factorize_node: children P^ missing");
      }
    } else {
      // [36] baseline: P^_α = K~_αα^-1 E_α by a full recursive solve
      // over the subtree — the extra traversal that costs the log factor.
      Matrix e = expand_projection(id);
      f.factored = true;  // Z is ready; solve_subtree may use this node.
      solve_subtree(id, e);
      f.phat = std::move(e);
    }
  }
  f.factored = true;
  {
    const double dt_tel = t_tel.stop();
    std::lock_guard<std::mutex> lock(stab_mu_);
    profile_.v_assembly_seconds += dt_v;
    profile_.z_factor_seconds += dt_z;
    profile_.telescope_seconds += dt_tel;
    ++profile_.internals;
  }
  record_stability(id);
}

}  // namespace fdks::core
