// Shared factorization state for the fast direct solver (§II-B).
//
// FactorTree holds, per tree node, the pieces of the recursive
// Sherman-Morrison-Woodbury factorization of (lambda I + K~):
//
//   leaf a      : LU of (lambda I + K_aa), and P^_a = (lambda I+K_aa)^-1 E_a
//   internal α  : V_α = [K(l~, X_r); K(r~, X_l)] as kernel-block operators,
//                 LU of the reduced system Z_α = I + V_α W_α  (eq. 8),
//                 and the telescoped P^_α = W_α Z_α^-1 P'_α   (eq. 10),
//
// where W_α = blockdiag(P^_l, P^_r) is never materialized (the children's
// P^ factors play that role) and P'_α is the child-to-parent skeleton
// projection (identity for unskeletonized nodes above the frontier, which
// yields the expanded level-restricted direct factorization of Table V).
//
// Two algorithms produce the same factors:
//   Telescoped — Algorithm II.2, O(N log N): P^ via eq. (10).
//   Subtree    — the [36] baseline, O(N log^2 N): P^ via a recursive
//                solve of K~_αα P^ = E_α over the whole subtree.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "askit/hmatrix.hpp"
#include "core/cancel.hpp"
#include "core/status.hpp"
#include "kernel/summation.hpp"
#include "la/chol.hpp"
#include "la/lu.hpp"

namespace fdks::core {

using askit::HMatrix;
using la::Matrix;
using la::index_t;

enum class FactorizationAlgo {
  Telescoped,  ///< This paper: O(N log N), eq. (10).
  Subtree,     ///< INV-ASKIT [36]: O(N log^2 N), recursive subtree solves.
};

struct SolverOptions {
  double lambda = 0.0;
  FactorizationAlgo algo = FactorizationAlgo::Telescoped;
  kernel::Scheme scheme = kernel::Scheme::StoredGemv;  ///< V-block scheme.
  double rcond_threshold = 1e-12;  ///< Stability flag threshold (§III).
  /// §III storage reduction ("recomputing W with (10)"): store only the
  /// small T = Z^-1 P' per internal node (s x s) instead of the dense
  /// P^ (|alpha| x s); W actions are recomputed by telescoping through
  /// the children at solve time. Cuts the O(sN log(N/m)) P^ storage to
  /// O(sN + s^2 log(N/m)) at a modest time cost. Telescoped algo only.
  bool compact_w = false;
  /// Factorize independent subtrees as OpenMP tasks (the paper's
  /// future-work task parallelism for load balancing).
  bool parallel_tree = false;
  /// Use the paper's level-synchronous traversal (bottom-up, all nodes
  /// of a level factorized in a parallel-for) instead of recursion.
  bool levelwise = false;
  /// Factor leaf blocks with Cholesky instead of LU — valid because
  /// lambda I + K_aa is SPD for PSD kernels with lambda > 0, at half
  /// the factorization flops. Falls back to LU per leaf whenever a
  /// non-positive pivot shows the block is not numerically SPD.
  bool spd_leaves = false;
  /// Guardrail (graceful degradation): when a leaf block factors
  /// near-singular (pivot ratio below rcond_threshold, the small-lambda
  /// regime of §III), re-factorize with a bumped diagonal shift —
  /// effectively raising lambda on that node — instead of keeping
  /// garbage factors. The bump is recorded in FactorStatus and the node
  /// stays flagged in StabilityReport (the raw detector).
  bool auto_shift = true;
  /// First shift, relative to ||lambda I + K_aa||_1; grows 100x per
  /// retry up to max_shift_retries attempts.
  double shift_initial = 1e-12;
  int max_shift_retries = 6;
  /// Checkpoint/restart (src/ckpt): when non-empty, solvers persist
  /// their factored state into this directory (atomic, checksummed
  /// files) and resume from the newest valid checkpoint instead of
  /// re-factorizing — the restart path for the recovery supervisor
  /// (core/recovery.hpp) and `fdks_tool --checkpoint-dir`.
  std::string checkpoint_dir;
  /// A posteriori certification + escalation ladder (core/verify.hpp).
  /// Like the traversal knobs, deliberately excluded from the factor
  /// fingerprint: it changes how answers are checked, not the factors.
  VerifyPolicy verify;
};

/// Where factorization time goes (accumulated across nodes; thread-safe
/// under the parallel traversals). Feeds the GFLOPS breakdowns of the
/// Table IV bench and performance debugging.
struct FactorProfile {
  double leaf_seconds = 0.0;       ///< Leaf LU/Cholesky + leaf P^.
  double v_assembly_seconds = 0.0; ///< Kernel-block V construction + VW.
  double z_factor_seconds = 0.0;   ///< Reduced-system LU.
  double telescope_seconds = 0.0;  ///< Eq. (10) P^ updates.
  index_t leaves = 0;
  index_t internals = 0;

  double total() const {
    return leaf_seconds + v_assembly_seconds + z_factor_seconds +
           telescope_seconds;
  }
};

/// Aggregated conditioning diagnostics (§III stability detection).
struct StabilityReport {
  double min_leaf_pivot_ratio = 1.0;  ///< min over leaves of |p_min/p_max|.
  double min_z_rcond = 1.0;           ///< min over reduced systems Z.
  index_t flagged_nodes = 0;          ///< Nodes below the threshold.
  double threshold = 1e-12;

  bool stable() const { return flagged_nodes == 0; }
};

struct NodeFactor {
  bool factored = false;
  double diag_shift = 0.0;  ///< Guardrail shift added to the leaf diagonal.
  // Leaf only (exactly one of the two factorizations is populated):
  la::LuFactor leaf_lu;
  la::CholFactor leaf_chol;
  bool leaf_uses_chol = false;
  // Internal only:
  kernel::KernelBlockOp v_lr;  ///< K(l~eff, X_r).
  kernel::KernelBlockOp v_rl;  ///< K(r~eff, X_l).
  la::LuFactor z_lu;           ///< LU of Z_α (eq. 8).
  double z_norm1 = 0.0;        ///< ||Z_α||_1 before factorization.
  // All non-root nodes:
  Matrix phat;  ///< |α| x s_eff(α): P^_{α,α~} (already D^-1-applied).
                ///< Empty for internal nodes in compact_w mode.
  Matrix tmat;  ///< compact_w only: T = Z^-1 P' ((s_l+s_r) x s_α), the
                ///< telescoping stencil P^_α = blockdiag(P^_l,P^_r) T.

  size_t bytes() const;
};

/// Raw accumulator snapshot for checkpoint save/restore (src/ckpt):
/// everything factor_status() derives its report from, minus timings
/// (a restored tree restarts its profile at zero).
struct FactorAccumulators {
  StabilityReport stab;
  index_t shifted_nodes = 0;
  index_t shift_retries = 0;
  index_t nonfinite_nodes = 0;
  double max_shift = 0.0;
};

/// Conditioning ratio of a factored leaf on a common scale: LU pivot
/// ratio, or the squared Cholesky diagonal ratio (Cholesky pivots are
/// sqrt-scaled relative to LU pivots).
double leaf_pivot_ratio(const NodeFactor& f);

/// Shared detector for the §III small-lambda regime: true when the leaf
/// factorization is singular, non-SPD (Cholesky path), or its pivot
/// ratio falls below `threshold`.
bool leaf_near_singular(const NodeFactor& f, double threshold);

/// Per-node factor storage plus the factorize/solve kernels, operating
/// in *permuted* (tree) coordinates on contiguous subranges.
class FactorTree {
 public:
  FactorTree(const HMatrix& h, SolverOptions opts);

  const HMatrix& hmatrix() const { return *h_; }
  const SolverOptions& options() const { return opts_; }
  const StabilityReport& stability() const { return stab_; }
  const FactorProfile& profile() const { return profile_; }
  /// Structured factorization outcome (shift retries, NaN detection,
  /// conditioning). Snapshot of the state accumulated so far.
  FactorStatus factor_status() const;
  const NodeFactor& factor(index_t id) const {
    return nf_[static_cast<size_t>(id)];
  }

  /// Factorize the subtree rooted at `id` bottom-up. compute_phat
  /// controls whether the root of this subtree gets its own P^ (needed
  /// when the subtree hangs below a larger factorization or frontier).
  void factorize_subtree(index_t id, bool compute_phat);

  /// Level-synchronous variant (§II-B "level-by-level traversals
  /// combined with shared ... memory parallelism across nodes in the
  /// same level"): all nodes of each level are factorized in a
  /// parallel-for, deepest level first. Produces the same factors.
  void factorize_subtree_levelwise(index_t id, bool compute_phat);

  /// In-place solve (lambda I + K~_αα)^-1 on u (|α| entries, permuted
  /// order, offset relative to node begin). `cancel` (optional) is
  /// checked at every internal node on the way down — the level
  /// boundaries of Algorithm II.3 — and aborts by throwing
  /// CancelledError, leaving u partially overwritten.
  void solve_subtree(index_t id, std::span<double> u,
                     const CancelToken* cancel = nullptr) const;

  /// Block right-hand-side variant, fully in place on a strided
  /// [node-size x B] column view: recursion descends through row
  /// sub-views (no copies), skeleton corrections are single GEMMs over
  /// the batch. This is the n_rhs dimension of the serving path — every
  /// factor matrix is streamed once per batch instead of once per RHS.
  void solve_subtree(index_t id, la::MatrixView u,
                     const CancelToken* cancel = nullptr) const;

  /// Convenience overload: whole-matrix block solve.
  void solve_subtree(index_t id, Matrix& u,
                     const CancelToken* cancel = nullptr) const;

  /// Dense |α| x s_eff(α) unfactored basis E_α = P_{α,α~}^T expanded to
  /// point level by telescoping the projections (used by the Subtree
  /// baseline and by tests).
  Matrix expand_projection(index_t id) const;

  /// y += alpha * P^_id * z, independent of storage mode: a GEMV on the
  /// dense factor, or a recursive descent through the T stencils when
  /// compact_w is on. |y| = node size, |z| = s_eff(id).
  void apply_phat(index_t id, std::span<const double> z,
                  std::span<double> y, double alpha = 1.0) const;

  /// Block variant: Y += alpha * P^_id * Z with Z an s_eff(id) x B view
  /// and Y a node-size x B view. Dense factors apply as a single GEMM
  /// across the batch; in compact_w mode each T stencil is telescoped
  /// once for all B columns (instead of once per column), which is where
  /// the multi-RHS solve's factor-traffic saving comes from.
  void apply_phat(index_t id, la::ConstMatrixView z, la::MatrixView y,
                  double alpha = 1.0) const;

  /// Materialize P^_id (|id| x s_eff) regardless of storage mode.
  Matrix dense_phat(index_t id) const;

  /// Total bytes held by factors in the subtree at `id`.
  size_t subtree_bytes(index_t id) const;

  /// Total bytes held by every factored node in the tree, regardless of
  /// topology (full-tree, frontier-subtree, or partial factorizations
  /// all report what is actually resident). This is the figure the
  /// serving cache budgets against (serve.cache_bytes).
  size_t memory_bytes() const;

  // Checkpoint hooks (src/ckpt). FactorTree is non-movable (it guards
  // its accumulators with a mutex), so restore mutates an existing tree
  // built from the same HMatrix/options in place.
  /// Adopt a previously factored per-node state wholesale.
  void adopt_factor(index_t id, NodeFactor f);
  /// Snapshot / restore the factor-status accumulators.
  FactorAccumulators accumulators() const;
  void adopt_accumulators(const FactorAccumulators& acc);

  /// Content checksum over every factored node's numerical payload
  /// (chained FNV-1a across LU/Cholesky blocks, stored V data, Z
  /// factors, P^/T matrices, shifts and node ids). Two trees with
  /// identical factors hash identically; a single flipped bit anywhere
  /// changes the hash. Used for lazy integrity verification on
  /// FactorCache hits and on checkpoint restore (self-healing: a
  /// mismatch invalidates and refactorizes instead of serving garbage).
  std::uint64_t content_checksum() const;

  /// Deterministic fault injection for integrity tests: flip one
  /// mantissa bit in one stored factor double, chosen by `seed` over
  /// all resident factor entries. Returns false when the tree holds no
  /// factored payload to corrupt.
  bool corrupt_factor_bit(std::uint64_t seed);

  /// Change lambda and invalidate the lambda-dependent factors; the next
  /// factorize_subtree() reuses the stored V kernel blocks (the dominant
  /// kernel-evaluation cost) and rebuilds only leaf LUs, Z and P^ — the
  /// fast path for the cross-validation lambda sweeps of §I.
  void set_lambda(double lambda);

 private:
  void factorize_node(index_t id, bool compute_phat);
  void record_stability(index_t id);

  const HMatrix* h_;
  SolverOptions opts_;
  std::vector<NodeFactor> nf_;
  StabilityReport stab_;
  FactorProfile profile_;
  // FactorStatus accumulators (finalized by factor_status()).
  index_t shifted_nodes_ = 0;
  index_t shift_retries_ = 0;
  index_t nonfinite_nodes_ = 0;
  double max_shift_ = 0.0;
  mutable std::mutex stab_mu_;  ///< Guards stab_/profile_/status under
                                ///< parallel traversals.
};

}  // namespace fdks::core
