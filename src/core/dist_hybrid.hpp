// Distributed hybrid solver (Algorithms II.6-II.8 over mpisim).
//
// Ownership: with p ranks, each rank owns the frontier subtrees inside
// its level-log2(p) node (level restriction L must be >= log2(p) so no
// frontier node spans ranks). D^-1 is per-rank local; MatVecW is local
// (W rows live with their points); MatVecV follows Algorithm II.8 —
// every rank computes K(a~, {x}_local) q_local for ALL frontier
// skeletons a~ against its own points, and an AllReduce assembles the
// full reduced vector on every rank. GMRES on (I + VW) then runs
// replicated, with the collective matvec keeping all ranks in lockstep.
#pragma once

#include "core/dist_solver.hpp"
#include "core/hybrid.hpp"
#include "mpisim/runtime.hpp"

#include <vector>

namespace fdks::core {

class DistributedHybridSolver {
 public:
  /// Collective over comm; factorizes the local frontier subtrees.
  /// Requires p a power of two, a complete tree level log2(p), and
  /// every frontier node at level >= log2(p).
  DistributedHybridSolver(const HMatrix& h, HybridOptions opts,
                          mpisim::Comm comm);

  /// Collective solve; u identical on all ranks (original order);
  /// returns the full solution on every rank. When
  /// HybridOptions::direct.verify is enabled, the certification /
  /// refinement ladder (core/verify.hpp) runs collectively afterwards:
  /// u and x are replicated, so every rank reaches the identical
  /// per-step decision and each correction pass stays a collective
  /// Algorithm II.6 solve.
  std::vector<double> solve(std::span<const double> u);

  /// Collective block solve for B right-hand sides (columns identical
  /// on all ranks). Local D^-1 runs as in-place block subtree solves,
  /// V as fused block kernel sweeps with one allreduce per [S x B]
  /// panel, W as batched P^ GEMMs; the replicated reduced-system GMRES
  /// (step 3) stays per column. last_gmres() reflects the final column.
  Matrix solve(const Matrix& u);

  index_t reduced_size() const { return reduced_size_; }
  const iter::GmresResult& last_gmres() const { return last_; }
  double factor_seconds() const { return factor_seconds_; }

  /// Globally-agreed factorization outcome (see DistributedSolver).
  const FactorStatus& factor_status() const { return factor_status_; }

  /// Outcome of the most recent solve(), identical on every rank: the
  /// replicated GMRES gives every rank the same convergence flags, and
  /// the solution/residual come from collectively assembled data.
  const SolveStatus& last_status() const { return last_status_; }

 private:
  /// One Algorithm II.6-II.8 pass (local D^-1 + replicated reduced
  /// GMRES + correction), without status/verification bookkeeping.
  /// Updates last_ with the reduced-system GMRES result.
  std::vector<double> solve_impl(std::span<const double> u);
  Matrix solve_impl(const Matrix& u);

  /// z = V q with q the rank-local slice (permuted order); collective.
  void matvec_v_local(std::span<const double> q_local,
                      std::span<double> z) const;
  /// q_local = W z restricted to this rank's points.
  void matvec_w_local(std::span<const double> z,
                      std::span<double> q_local) const;

  const HMatrix* h_;
  HybridOptions opts_;
  FactorTree ft_;
  mpisim::Comm comm_;
  index_t local_root_ = -1;
  index_t local_begin_ = 0, local_end_ = 0;
  std::vector<index_t> frontier_;        ///< Global frontier, all ranks.
  std::vector<index_t> offsets_;         ///< Block offsets into S.
  std::vector<size_t> local_frontier_;   ///< Indices into frontier_ owned
                                         ///< by this rank.
  index_t reduced_size_ = 0;
  double factor_seconds_ = 0.0;
  iter::GmresResult last_;
  index_t block_gmres_iters_ = 0;  ///< Column sum, last Matrix solve_impl.
  FactorStatus factor_status_;
  SolveStatus last_status_;
  std::uint64_t verify_seq_ = 0;  ///< Sampling counter (replicated).
};

}  // namespace fdks::core
