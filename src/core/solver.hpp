// Public entry point of the fast direct solver.
//
// FastDirectSolver factorizes (lambda I + K~) — the hierarchical
// approximation held by an askit::HMatrix — in O(N log N) work
// (Algorithm II.2, or the O(N log^2 N) [36] baseline for comparison)
// and solves linear systems in O(N log N) (Algorithm II.3).
//
// With a level-restricted HMatrix, the factorization continues above the
// frontier with expanded (identity-projection) blocks: correct but
// increasingly expensive, exactly the direct-method columns of Table V.
// Use HybridSolver (hybrid.hpp) for the paper's cheaper alternative.
#pragma once

#include "core/factor_tree.hpp"

#include <vector>

namespace fdks::core {

class FastDirectSolver {
 public:
  /// Factorizes on construction. h must outlive the solver.
  FastDirectSolver(const HMatrix& h, SolverOptions opts);

  /// Re-factorize (lambda I + K~) for a new lambda, reusing the stored
  /// V kernel blocks — the fast path for cross-validation lambda sweeps
  /// (the paper's motivating workload: "the factorization has to be
  /// done for different values of lambda", §I).
  void refactorize(double lambda);

  /// Solve (lambda I + K~) x = u. Vectors are in the caller's original
  /// point order. `cancel` (optional) is checked at the internal-node
  /// boundaries of the telescoping recursion; an expired token aborts
  /// the solve with core::CancelledError (see core/cancel.hpp).
  void solve(std::span<const double> u, std::span<double> x,
             const CancelToken* cancel = nullptr) const;
  std::vector<double> solve(std::span<const double> u,
                            const CancelToken* cancel = nullptr) const;

  /// Block solve for multiple right-hand sides (columns of u).
  Matrix solve(const Matrix& u, const CancelToken* cancel = nullptr) const;

  /// Guarded solve: validates the input, solves, validates the output,
  /// and returns a structured outcome including the true relative
  /// residual against the hierarchical operator and any diagonal-shift
  /// degradation inherited from the factorization. Never throws on
  /// numerical trouble — inspect the returned SolveStatus.
  SolveStatus solve_checked(std::span<const double> u,
                            std::span<double> x) const;

  /// Structured factorization outcome (shift retries, NaN detection).
  FactorStatus factor_status() const { return ft_.factor_status(); }

  /// Verified solve: runs solve(), then the certification + escalation
  /// ladder of `ft_.options().verify` (core/verify.hpp) on the answer.
  /// `solve_index` feeds the sampling policy (caller-maintained solve
  /// counter; 0 is always in-sample). x is refined in place.
  VerifyOutcome solve_verified(std::span<const double> u,
                               std::span<double> x,
                               std::uint64_t solve_index = 0,
                               const CancelToken* cancel = nullptr) const;

  // -- Factor integrity (self-healing cache / checkpoint restore) ------

  /// The content checksum sealed right after the last (re)factorization.
  std::uint64_t sealed_checksum() const { return sealed_checksum_; }

  /// Recompute the factor checksum and compare against the sealed one.
  /// Emits verify.integrity_check, and verify.integrity_fail on
  /// mismatch. False means the resident factors no longer match what
  /// was factorized — the caller should discard and refactorize.
  bool verify_integrity() const;

  /// Deterministic fault injection (tests): flip one factor bit chosen
  /// by `seed`, WITHOUT re-sealing, so the next verify_integrity() must
  /// report the mismatch. Returns false if nothing could be corrupted.
  bool corrupt_factor_bit(std::uint64_t seed) {
    return ft_.corrupt_factor_bit(seed);
  }

  const StabilityReport& stability() const { return ft_.stability(); }
  const FactorTree& factor_tree() const { return ft_; }
  /// Per-phase factorization time breakdown (leaf factors, V assembly,
  /// Z factorization, telescoping).
  const FactorProfile& profile() const { return ft_.profile(); }
  double factor_seconds() const { return factor_seconds_; }
  size_t factor_bytes() const;
  double lambda() const { return ft_.options().lambda; }

 private:
  FactorTree ft_;
  double factor_seconds_ = 0.0;
  std::uint64_t sealed_checksum_ = 0;  ///< content_checksum() at seal time.
};

}  // namespace fdks::core
