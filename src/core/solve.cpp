// Recursive solve (Algorithm II.3): apply (lambda I + K~_αα)^-1 via the
// stored SMW factors.
#include <stdexcept>
#include <vector>

#include "core/factor_tree.hpp"
#include "la/gemm.hpp"

namespace fdks::core {

void FactorTree::solve_subtree(index_t id, std::span<double> u,
                               const CancelToken* cancel) const {
  const tree::Node& nd = h_->tree().node(id);
  const NodeFactor& f = nf_[static_cast<size_t>(id)];
  if (!f.factored) throw std::logic_error("solve_subtree: not factorized");
  if (static_cast<index_t>(u.size()) != nd.size())
    throw std::invalid_argument("solve_subtree: size mismatch");

  if (nd.is_leaf()) {
    if (f.leaf_uses_chol)
      la::chol_solve(f.leaf_chol, u);
    else
      la::lu_solve(f.leaf_lu, u);
    return;
  }

  // Cooperative cancellation at level boundaries: one clock read per
  // internal node, never inside the dense kernels.
  if (cancel) cancel->check("FactorTree::solve_subtree");

  const tree::Node& l = h_->tree().node(nd.left);
  const index_t nl = l.size();
  const index_t sl = f.v_lr.rows();
  const index_t sr = f.v_rl.rows();

  auto ul = u.subspan(0, static_cast<size_t>(nl));
  auto ur = u.subspan(static_cast<size_t>(nl));

  // u' = D^-1 u by recursion on the children.
  solve_subtree(nd.left, ul, cancel);
  solve_subtree(nd.right, ur, cancel);

  // t = V u' = [K(l~, X_r) u'_r ; K(r~, X_l) u'_l], then t = Z^-1 t.
  std::vector<double> t(static_cast<size_t>(sl + sr), 0.0);
  f.v_lr.apply(ur, std::span<double>(t.data(), static_cast<size_t>(sl)));
  f.v_rl.apply(ul, std::span<double>(t.data() + sl, static_cast<size_t>(sr)));
  la::lu_solve(f.z_lu, t);

  // u <- u' - W t with W = blockdiag(P^_l, P^_r); apply_phat dispatches
  // on the storage mode (dense factor or compact telescoping).
  apply_phat(nd.left,
             std::span<const double>(t.data(), static_cast<size_t>(sl)), ul,
             -1.0);
  apply_phat(nd.right,
             std::span<const double>(t.data() + sl, static_cast<size_t>(sr)),
             ur, -1.0);
}

// Block-RHS variant of Algorithm II.3: same recursion as the scalar
// solve above, but every step operates on all B columns at once through
// strided views into the caller's storage. Nothing is copied in or out
// (the old implementation materialized child blocks with u.block()/
// set_block at every internal node — O(N log N · B) extra traffic — and
// silently dropped the children's in-place updates if an exception
// unwound between the copies). Leaf solves stream each factor column
// across all RHS columns (TRSM-style), and the V / Z / W corrections
// are single GEMM-width operations over the batch.
void FactorTree::solve_subtree(index_t id, la::MatrixView u,
                               const CancelToken* cancel) const {
  const tree::Node& nd = h_->tree().node(id);
  const NodeFactor& f = nf_[static_cast<size_t>(id)];
  if (!f.factored) throw std::logic_error("solve_subtree: not factorized");
  if (u.rows() != nd.size())
    throw std::invalid_argument("solve_subtree: block rhs shape mismatch");

  if (nd.is_leaf()) {
    if (f.leaf_uses_chol)
      la::chol_solve(f.leaf_chol, u);
    else
      la::lu_solve(f.leaf_lu, u);
    return;
  }

  if (cancel) cancel->check("FactorTree::solve_subtree");

  const index_t nl = h_->tree().node(nd.left).size();
  const index_t nr = h_->tree().node(nd.right).size();
  const index_t sl = f.v_lr.rows();
  const index_t sr = f.v_rl.rows();
  const index_t nrhs = u.cols();

  la::MatrixView utop = u.block(0, 0, nl, nrhs);
  la::MatrixView ubot = u.block(nl, 0, nr, nrhs);

  // U' = D^-1 U by recursion on the children, in place.
  solve_subtree(nd.left, utop, cancel);
  solve_subtree(nd.right, ubot, cancel);

  // T = V U' = [K(l~, X_r) U'_r ; K(r~, X_l) U'_l], then T = Z^-1 T.
  Matrix t(sl + sr, nrhs);
  la::MatrixView tv(t);
  f.v_lr.apply_block(la::ConstMatrixView(ubot), tv.block(0, 0, sl, nrhs));
  f.v_rl.apply_block(la::ConstMatrixView(utop), tv.block(sl, 0, sr, nrhs));
  la::lu_solve(f.z_lu, tv);

  // U <- U' - W T with W = blockdiag(P^_l, P^_r), one batched
  // apply_phat per child.
  apply_phat(nd.left, la::ConstMatrixView(tv.block(0, 0, sl, nrhs)), utop,
             -1.0);
  apply_phat(nd.right, la::ConstMatrixView(tv.block(sl, 0, sr, nrhs)), ubot,
             -1.0);
}

void FactorTree::solve_subtree(index_t id, Matrix& u,
                               const CancelToken* cancel) const {
  solve_subtree(id, la::MatrixView(u), cancel);
}

}  // namespace fdks::core
