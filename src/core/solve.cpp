// Recursive solve (Algorithm II.3): apply (lambda I + K~_αα)^-1 via the
// stored SMW factors.
#include <stdexcept>
#include <vector>

#include "core/factor_tree.hpp"
#include "la/gemm.hpp"

namespace fdks::core {

void FactorTree::solve_subtree(index_t id, std::span<double> u) const {
  const tree::Node& nd = h_->tree().node(id);
  const NodeFactor& f = nf_[static_cast<size_t>(id)];
  if (!f.factored) throw std::logic_error("solve_subtree: not factorized");
  if (static_cast<index_t>(u.size()) != nd.size())
    throw std::invalid_argument("solve_subtree: size mismatch");

  if (nd.is_leaf()) {
    if (f.leaf_uses_chol)
      la::chol_solve(f.leaf_chol, u);
    else
      la::lu_solve(f.leaf_lu, u);
    return;
  }

  const tree::Node& l = h_->tree().node(nd.left);
  const index_t nl = l.size();
  const index_t sl = f.v_lr.rows();
  const index_t sr = f.v_rl.rows();

  auto ul = u.subspan(0, static_cast<size_t>(nl));
  auto ur = u.subspan(static_cast<size_t>(nl));

  // u' = D^-1 u by recursion on the children.
  solve_subtree(nd.left, ul);
  solve_subtree(nd.right, ur);

  // t = V u' = [K(l~, X_r) u'_r ; K(r~, X_l) u'_l], then t = Z^-1 t.
  std::vector<double> t(static_cast<size_t>(sl + sr), 0.0);
  f.v_lr.apply(ur, std::span<double>(t.data(), static_cast<size_t>(sl)));
  f.v_rl.apply(ul, std::span<double>(t.data() + sl, static_cast<size_t>(sr)));
  la::lu_solve(f.z_lu, t);

  // u <- u' - W t with W = blockdiag(P^_l, P^_r); apply_phat dispatches
  // on the storage mode (dense factor or compact telescoping).
  apply_phat(nd.left,
             std::span<const double>(t.data(), static_cast<size_t>(sl)), ul,
             -1.0);
  apply_phat(nd.right,
             std::span<const double>(t.data() + sl, static_cast<size_t>(sr)),
             ur, -1.0);
}

void FactorTree::solve_subtree(index_t id, Matrix& u) const {
  const tree::Node& nd = h_->tree().node(id);
  const NodeFactor& f = nf_[static_cast<size_t>(id)];
  if (!f.factored) throw std::logic_error("solve_subtree: not factorized");
  if (u.rows() != nd.size())
    throw std::invalid_argument("solve_subtree: block rhs shape mismatch");

  if (nd.is_leaf()) {
    if (f.leaf_uses_chol)
      la::chol_solve(f.leaf_chol, u);
    else
      la::lu_solve(f.leaf_lu, u);
    return;
  }

  const tree::Node& l = h_->tree().node(nd.left);
  const tree::Node& r = h_->tree().node(nd.right);
  const index_t nl = l.size();
  const index_t nr = r.size();
  const index_t sl = f.v_lr.rows();
  const index_t sr = f.v_rl.rows();

  Matrix utop = u.block(0, 0, nl, u.cols());
  Matrix ubot = u.block(nl, 0, nr, u.cols());
  solve_subtree(nd.left, utop);
  solve_subtree(nd.right, ubot);

  Matrix t(sl + sr, u.cols());
  Matrix t_top = f.v_lr.apply_block(ubot);
  Matrix t_bot = f.v_rl.apply_block(utop);
  t.set_block(0, 0, t_top);
  t.set_block(sl, 0, t_bot);
  la::lu_solve(f.z_lu, t);

  for (index_t j = 0; j < u.cols(); ++j) {
    apply_phat(nd.left,
               std::span<const double>(t.col(j), static_cast<size_t>(sl)),
               std::span<double>(utop.col(j), static_cast<size_t>(nl)),
               -1.0);
    apply_phat(nd.right,
               std::span<const double>(t.col(j) + sl,
                                       static_cast<size_t>(sr)),
               std::span<double>(ubot.col(j), static_cast<size_t>(nr)),
               -1.0);
  }

  u.set_block(0, 0, utop);
  u.set_block(nl, 0, ubot);
}

}  // namespace fdks::core
