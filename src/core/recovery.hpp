// Supervised re-execution of distributed runs (recovery layer 3).
//
// Layer 1 (mpisim ReliableTransport) survives message-level faults;
// layer 2 (src/ckpt) persists completed factorization work. This layer
// closes the loop for rank-level faults: run_with_recovery wraps
// mpisim::run, catches the failures the runtime can diagnose but not
// mask (RankKilledError, TimeoutError, MultiRankError), and re-executes
// the whole program under a configurable retry budget with backoff.
// Because the program's solvers resume from their newest valid
// checkpoint (SolverOptions::checkpoint_dir), a re-execution repeats
// only the work lost since the last checkpoint — the classic
// supervisor + checkpoint/restart pattern of production distributed
// solvers.
//
// Retries model *transient* faults (a crashed node is replaced, a
// network partition heals): by default the re-execution clears the
// fault plan's kill/stall entries, matching "the same deterministic
// fault does not recur". The full attempt history is reported in a
// structured RecoveryReport; attempts are also counted in the obs
// registry under "recover.*".
#pragma once

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "mpisim/runtime.hpp"

namespace fdks::core {

struct RecoveryOptions {
  /// Total executions allowed (first try + retries).
  int max_attempts = 3;
  /// Pause before a retry; grows by `backoff_multiplier` per retry,
  /// capped at `max_backoff`.
  std::chrono::milliseconds backoff{50};
  double backoff_multiplier = 2.0;
  std::chrono::milliseconds max_backoff{2000};
  /// Transient-crash model: clear the fault plan's kill/stall faults on
  /// retry (the failed node was "replaced"). Disable to re-run against
  /// a persistent fault and exhaust the budget deterministically.
  bool clear_kill_on_retry = true;
  bool clear_stall_on_retry = true;
};

/// One execution attempt, as observed by the supervisor.
struct RecoveryAttempt {
  int index = 0;          ///< 0-based attempt number.
  bool succeeded = false;
  std::string error;      ///< what() of the failure (empty on success).
  double seconds = 0.0;   ///< Wall-clock duration of the attempt.
};

/// Full outcome of a supervised run: per-attempt history plus the
/// terminal state. When the budget is exhausted, `error` holds the last
/// failure (run_with_recovery does not throw for retryable failures —
/// inspect the report).
struct [[nodiscard]] RecoveryReport {
  std::vector<RecoveryAttempt> attempts;
  bool succeeded = false;
  std::string error;  ///< Last attempt's failure when !succeeded.

  [[nodiscard]] int attempts_used() const {
    return static_cast<int>(attempts.size());
  }
  [[nodiscard]] std::string message() const;
};

/// Execute `fn` on `p` simulated ranks under supervision: failures that
/// a production scheduler would retry (a killed rank, a deadline
/// timeout, multiple rank failures) trigger re-execution with backoff
/// until the attempt budget is spent. Non-retryable exceptions (logic
/// errors, bad options) propagate unchanged on the first attempt.
RecoveryReport run_with_recovery(int p,
                                 const std::function<void(mpisim::Comm&)>& fn,
                                 mpisim::WorldOptions opts,
                                 const RecoveryOptions& ropts = {});

}  // namespace fdks::core
