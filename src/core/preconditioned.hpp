// Exact-system solves with the factorization as a preconditioner.
//
// The direct solver inverts the *compressed* operator lambda I + K~; its
// accuracy against the true kernel matrix is limited by the compression
// tolerance tau. Following the paper's remark (§I "Limitations" and
// [36]) that the factorization can serve as a preconditioner, this
// module runs GMRES on the exact operator lambda I + K — applied
// matrix-free with the fused GSKS summation, never forming K — with the
// hierarchical factorization as a right preconditioner. A handful of
// iterations then delivers dense-accuracy solutions at O(dN^2) per
// iteration, with the iteration count controlled by tau instead of the
// conditioning of K.
#pragma once

#include "core/solver.hpp"
#include "iterative/gmres.hpp"

#include <vector>

namespace fdks::core {

struct ExactSolveResult {
  std::vector<double> x;
  iter::GmresResult gmres;
  double exact_residual = 1.0;  ///< ||u - (lambda I + K) x|| / ||u||.
};

/// y = (lambda I + K) w with the exact (uncompressed) kernel matrix,
/// matrix-free. Vectors in original point order.
void exact_apply(const askit::HMatrix& h, double lambda,
                 std::span<const double> w, std::span<double> y);

/// GMRES on the exact operator, right-preconditioned by the factorized
/// compressed operator (preconditioner and operator must share lambda).
ExactSolveResult solve_exact_preconditioned(const askit::HMatrix& h,
                                            const FastDirectSolver& m,
                                            std::span<const double> u,
                                            iter::GmresOptions opts = {});

/// Unpreconditioned baseline for the same exact operator (ablation).
ExactSolveResult solve_exact_unpreconditioned(const askit::HMatrix& h,
                                              double lambda,
                                              std::span<const double> u,
                                              iter::GmresOptions opts = {});

}  // namespace fdks::core
