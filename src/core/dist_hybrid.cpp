#include "core/dist_hybrid.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/verify.hpp"
#include "kernel/gsks.hpp"
#include "obs/obs.hpp"

namespace fdks::core {

DistributedHybridSolver::DistributedHybridSolver(const HMatrix& h,
                                                 HybridOptions opts,
                                                 mpisim::Comm comm)
    : h_(&h), opts_(opts), ft_(h, opts.direct), comm_(std::move(comm)) {
  const int p = comm_.size();
  if (p <= 0 || (p & (p - 1)) != 0)
    throw std::invalid_argument(
        "DistributedHybridSolver: p must be a power of 2");
  int logp = 0;
  while ((1 << logp) < p) ++logp;

  const auto& t = h.tree();
  if (static_cast<int>(t.levels().size()) <= logp ||
      static_cast<int>(t.levels()[static_cast<size_t>(logp)].size()) != p)
    throw std::invalid_argument(
        "DistributedHybridSolver: tree has no complete level log2(p)");

  // My level-log2(p) node: the p nodes of that level ordered by range.
  std::vector<index_t> owners = t.levels()[static_cast<size_t>(logp)];
  std::sort(owners.begin(), owners.end(), [&](index_t a, index_t b) {
    return t.node(a).begin < t.node(b).begin;
  });
  local_root_ = owners[static_cast<size_t>(comm_.rank())];
  local_begin_ = t.node(local_root_).begin;
  local_end_ = t.node(local_root_).end;

  frontier_ = h.frontier();
  offsets_.reserve(frontier_.size() + 1);
  offsets_.push_back(0);
  for (size_t ai = 0; ai < frontier_.size(); ++ai) {
    const index_t a = frontier_[ai];
    const tree::Node& nd = t.node(a);
    if (nd.level < logp)
      throw std::invalid_argument(
          "DistributedHybridSolver: frontier node spans ranks; use level "
          "restriction L >= log2(p)");
    offsets_.push_back(offsets_.back() +
                       static_cast<index_t>(h.skeleton(a).skel.size()));
    if (nd.begin >= local_begin_ && nd.end <= local_end_)
      local_frontier_.push_back(ai);
  }
  reduced_size_ = offsets_.back();

  obs::ScopedTimer t_factor("dist.factorize");
  const auto t0 = std::chrono::steady_clock::now();
  // Checkpoint/restart (core/recovery.hpp): each rank persists the
  // factors of all its frontier subtrees in one file; a supervised
  // re-execution resumes from it instead of re-factorizing.
  const SolverOptions& dopts = ft_.options();
  std::vector<index_t> local_roots;
  local_roots.reserve(local_frontier_.size());
  for (size_t ai : local_frontier_) local_roots.push_back(frontier_[ai]);
  if (!dopts.checkpoint_dir.empty()) {
    ckpt::ensure_dir(dopts.checkpoint_dir);
    const std::string scope = "dist-hybrid p=" + std::to_string(p) +
                              " rank=" + std::to_string(comm_.rank());
    const std::string path =
        ckpt::join(dopts.checkpoint_dir,
                   "factors_hybrid_p" + std::to_string(p) + "_r" +
                       std::to_string(comm_.rank()) + ".ckpt");
    std::string diag;
    if (!ckpt::try_load_factor_tree(path, ft_, local_roots, scope, &diag)) {
      for (index_t a : local_roots)
        ft_.factorize_subtree(a, /*compute_phat=*/true);
      ckpt::save_factor_tree(path, ft_, local_roots, scope);
    }
  } else {
    for (index_t a : local_roots)
      ft_.factorize_subtree(a, /*compute_phat=*/true);
  }
  factor_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  factor_status_ = allreduce_factor_status(ft_.factor_status(), comm_);
}

void DistributedHybridSolver::matvec_v_local(std::span<const double> q_local,
                                             std::span<double> z) const {
  // Algorithm II.8: contributions K(a~, {x}_i) q_i for EVERY frontier
  // skeleton against the local points, own-diagonal-block subtracted by
  // the owner, then AllReduce so all ranks hold the full V q.
  std::vector<double> partial(static_cast<size_t>(reduced_size_), 0.0);
  std::vector<index_t> local_pts(static_cast<size_t>(local_end_ -
                                                     local_begin_));
  std::iota(local_pts.begin(), local_pts.end(), local_begin_);

  for (size_t ai = 0; ai < frontier_.size(); ++ai) {
    const auto& skel = h_->skeleton(frontier_[ai]).skel;
    auto za = std::span<double>(partial.data() + offsets_[ai], skel.size());
    kernel::gsks_apply(h_->km(), skel, local_pts, q_local, za, 1.0);
  }
  for (size_t ai : local_frontier_) {
    const tree::Node& nd = h_->tree().node(frontier_[ai]);
    const auto& skel = h_->skeleton(frontier_[ai]).skel;
    std::vector<index_t> own(static_cast<size_t>(nd.size()));
    std::iota(own.begin(), own.end(), nd.begin);
    auto za = std::span<double>(partial.data() + offsets_[ai], skel.size());
    kernel::gsks_apply(h_->km(), skel, own,
                       q_local.subspan(static_cast<size_t>(nd.begin -
                                                           local_begin_),
                                       static_cast<size_t>(nd.size())),
                       za, -1.0);
  }
  comm_.allreduce_sum(partial);
  std::copy(partial.begin(), partial.end(), z.begin());
}

void DistributedHybridSolver::matvec_w_local(std::span<const double> z,
                                             std::span<double> q_local)
    const {
  std::fill(q_local.begin(), q_local.end(), 0.0);
  for (size_t ai : local_frontier_) {
    const tree::Node& nd = h_->tree().node(frontier_[ai]);
    const auto& skel = h_->skeleton(frontier_[ai]).skel;
    ft_.apply_phat(frontier_[ai],
                   z.subspan(static_cast<size_t>(offsets_[ai]), skel.size()),
                   q_local.subspan(static_cast<size_t>(nd.begin -
                                                       local_begin_),
                                   static_cast<size_t>(nd.size())));
  }
}

std::vector<double> DistributedHybridSolver::solve_impl(
    std::span<const double> u) {
  obs::ScopedTimer t_solve("dist.solve");
  const std::vector<double> ut = h_->to_tree_order(u);
  std::vector<double> w(ut.begin() + local_begin_, ut.begin() + local_end_);

  // Step 1: w = D^-1 u on the locally owned frontier subtrees.
  for (size_t ai : local_frontier_) {
    const tree::Node& nd = h_->tree().node(frontier_[ai]);
    ft_.solve_subtree(frontier_[ai],
                      std::span<double>(w.data() + (nd.begin - local_begin_),
                                        static_cast<size_t>(nd.size())));
  }

  if (reduced_size_ > 0) {
    // Step 2: rhs = V w (collective). Step 3: replicated GMRES on the
    // reduced system; the matvec's AllReduce keeps ranks in lockstep.
    std::vector<double> rhs(static_cast<size_t>(reduced_size_), 0.0);
    matvec_v_local(w, rhs);
    std::vector<double> q_local(w.size(), 0.0);
    last_ = iter::gmres(
        reduced_size_,
        [&](std::span<const double> z, std::span<double> y) {
          matvec_w_local(z, q_local);
          matvec_v_local(q_local, y);
          for (size_t i = 0; i < z.size(); ++i) y[i] += z[i];
        },
        rhs, opts_.gmres);

    // Step 4: x = w - W z, locally.
    matvec_w_local(last_.x, q_local);
    for (size_t i = 0; i < w.size(); ++i) w[i] -= q_local[i];
  }

  const std::vector<double> full_tree = comm_.allgatherv(w);
  return h_->from_tree_order(full_tree);
}

std::vector<double> DistributedHybridSolver::solve(
    std::span<const double> u) {
  if (static_cast<index_t>(u.size()) != h_->n())
    throw std::invalid_argument("DistributedHybridSolver: size mismatch");
  std::vector<double> x = solve_impl(u);

  // Guardrail summary (no extra collectives: u and the reduced GMRES
  // are replicated, the solution was just allgathered — every rank
  // derives the identical status).
  SolveStatus st;
  st.lambda_effective = factor_status_.lambda_effective;
  st.shifted_nodes = factor_status_.shifted_nodes;
  st.gmres_iterations = last_.iterations;
  if (!all_finite(u)) {
    st.code = SolveCode::NonFinite;
    st.detail = "right-hand side contains NaN/Inf";
  } else if (!all_finite(std::span<const double>(x.data(), x.size()))) {
    st.code = SolveCode::NonFinite;
    st.detail = "solution contains NaN/Inf";
  } else {
    st.residual = h_->relative_residual(x, u, opts_.direct.lambda);
    if (reduced_size_ > 0 && !last_.converged) {
      if (last_.breakdown) {
        st.code = SolveCode::Breakdown;
      } else if (last_.stagnated) {
        st.code = SolveCode::Stagnated;
      } else if (last_.nonfinite) {
        st.code = SolveCode::NonFinite;
      } else {
        st.code = SolveCode::NotConverged;
      }
      st.detail = "reduced-system GMRES did not converge";
    } else if (factor_status_.code == FactorCode::ShiftedDiagonal) {
      st.code = SolveCode::ShiftedDiagonal;
    }
  }

  // Certification / escalation ladder (collective: u and x are
  // replicated, so every rank takes the identical branch and each
  // correction pass through solve_impl stays collective).
  const VerifyPolicy& vp = opts_.direct.verify;
  const bool insample = vp.enabled() && should_verify(vp, verify_seq_++);
  if (insample && st.code != SolveCode::NonFinite) {
    VerifyOps ops;
    ops.emit_obs = comm_.rank() == 0;
    ops.apply = [this, &vp](std::span<const double> in,
                            std::span<double> y) {
      if (vp.op == VerifyPolicy::Operator::Treecode)
        h_->apply_source(in, y, opts_.direct.lambda);
      else
        h_->apply(in, y, opts_.direct.lambda);
    };
    ops.solve = [this](std::span<const double> in, std::span<double> y) {
      const std::vector<double> s = solve_impl(in);
      std::copy(s.begin(), s.end(), y.begin());
    };
    const VerifyOutcome vo = certify_and_refine_ops(ops, u, x, vp);
    st.residual = vo.residual;
    st.escalations += vo.escalations;
    if (!vo.certified) {
      st.code = SolveCode::NotConverged;
      st.detail =
          "certified residual misses the verify target after the "
          "escalation ladder";
    } else if (vo.escalations > 0) {
      st.code = SolveCode::Escalated;
    }
  }
  last_status_ = st;
  return x;
}

Matrix DistributedHybridSolver::solve_impl(const Matrix& u) {
  obs::ScopedTimer t_solve("dist.solve");
  const index_t n = h_->n();
  const index_t nrhs = u.cols();
  const index_t nloc = local_end_ - local_begin_;

  Matrix w(nloc, nrhs);
  for (index_t j = 0; j < nrhs; ++j) {
    const std::vector<double> ut = h_->to_tree_order(
        std::span<const double>(u.col(j), static_cast<size_t>(n)));
    std::copy(ut.begin() + local_begin_, ut.begin() + local_end_, w.col(j));
  }
  la::MatrixView wv(w);

  // Step 1: W = D^-1 U on the locally owned frontier subtrees, in place.
  for (size_t ai : local_frontier_) {
    const tree::Node& nd = h_->tree().node(frontier_[ai]);
    ft_.solve_subtree(frontier_[ai],
                      wv.block(nd.begin - local_begin_, 0, nd.size(), nrhs));
  }

  block_gmres_iters_ = 0;
  if (reduced_size_ > 0) {
    // Step 2: RHS = V W (Algorithm II.8, batched): every rank computes
    // its fused block contribution for ALL frontier skeletons, one
    // allreduce assembles the full [S x B] panel everywhere.
    std::vector<index_t> local_pts(static_cast<size_t>(nloc));
    std::iota(local_pts.begin(), local_pts.end(), local_begin_);
    Matrix partial(reduced_size_, nrhs);
    la::MatrixView pv(partial);
    for (size_t ai = 0; ai < frontier_.size(); ++ai) {
      const auto& skel = h_->skeleton(frontier_[ai]).skel;
      kernel::gsks_apply_block(
          h_->km(), skel, local_pts, la::ConstMatrixView(wv),
          pv.block(offsets_[ai], 0, static_cast<index_t>(skel.size()),
                   nrhs),
          1.0);
    }
    for (size_t ai : local_frontier_) {
      const tree::Node& nd = h_->tree().node(frontier_[ai]);
      const auto& skel = h_->skeleton(frontier_[ai]).skel;
      std::vector<index_t> own(static_cast<size_t>(nd.size()));
      std::iota(own.begin(), own.end(), nd.begin);
      kernel::gsks_apply_block(
          h_->km(), skel, own,
          la::ConstMatrixView(
              wv.block(nd.begin - local_begin_, 0, nd.size(), nrhs)),
          pv.block(offsets_[ai], 0, static_cast<index_t>(skel.size()),
                   nrhs),
          -1.0);
    }
    std::vector<double> pflat(partial.data(),
                              partial.data() + partial.size());
    comm_.allreduce_sum(pflat);
    std::copy(pflat.begin(), pflat.end(), partial.data());

    // Step 3: replicated per-column GMRES on (I + VW); the collective
    // matvec keeps ranks in lockstep column by column.
    Matrix z(reduced_size_, nrhs);
    std::vector<double> q_local(static_cast<size_t>(nloc), 0.0);
    for (index_t j = 0; j < nrhs; ++j) {
      last_ = iter::gmres(
          reduced_size_,
          [&](std::span<const double> zc, std::span<double> y) {
            matvec_w_local(zc, q_local);
            matvec_v_local(q_local, y);
            for (size_t i = 0; i < zc.size(); ++i) y[i] += zc[i];
          },
          std::span<const double>(partial.col(j),
                                  static_cast<size_t>(reduced_size_)),
          opts_.gmres);
      block_gmres_iters_ += last_.iterations;
      std::copy(last_.x.begin(), last_.x.end(), z.col(j));
    }

    // Step 4: X = W - W_mat Z, batched P^ applications.
    const la::ConstMatrixView zv(z);
    for (size_t ai : local_frontier_) {
      const tree::Node& nd = h_->tree().node(frontier_[ai]);
      const index_t sa =
          static_cast<index_t>(h_->skeleton(frontier_[ai]).skel.size());
      ft_.apply_phat(frontier_[ai], zv.block(offsets_[ai], 0, sa, nrhs),
                     wv.block(nd.begin - local_begin_, 0, nd.size(), nrhs),
                     -1.0);
    }
  }

  const std::vector<double> wflat(w.data(), w.data() + w.size());
  const std::vector<double> gathered = comm_.allgatherv(wflat);
  Matrix x = gather_tree_order_block(*h_, comm_.size(), gathered, nrhs);
  for (index_t j = 0; j < nrhs; ++j) {
    const std::vector<double> xo = h_->from_tree_order(
        std::span<const double>(x.col(j), static_cast<size_t>(n)));
    std::copy(xo.begin(), xo.end(), x.col(j));
  }
  return x;
}

Matrix DistributedHybridSolver::solve(const Matrix& u) {
  const index_t n = h_->n();
  if (u.rows() != n)
    throw std::invalid_argument(
        "DistributedHybridSolver: block shape mismatch");
  const index_t nrhs = u.cols();
  Matrix x = solve_impl(u);

  // Guardrail summary over the batch: worst column wins (replicated
  // data, so every rank derives the identical status).
  SolveStatus st;
  st.lambda_effective = factor_status_.lambda_effective;
  st.shifted_nodes = factor_status_.shifted_nodes;
  st.gmres_iterations = static_cast<int>(block_gmres_iters_);
  st.residual = 0.0;
  for (index_t j = 0; j < nrhs && st.code == SolveCode::Ok; ++j) {
    const std::span<const double> uc(u.col(j), static_cast<size_t>(n));
    const std::span<const double> xc(x.col(j), static_cast<size_t>(n));
    if (!all_finite(uc)) {
      st.code = SolveCode::NonFinite;
      st.detail = "right-hand side contains NaN/Inf";
    } else if (!all_finite(xc)) {
      st.code = SolveCode::NonFinite;
      st.detail = "solution contains NaN/Inf";
    } else {
      st.residual = std::max(
          st.residual,
          h_->relative_residual(xc, uc, opts_.direct.lambda));
    }
  }
  if (st.code == SolveCode::Ok) {
    if (reduced_size_ > 0 && !last_.converged) {
      st.code = SolveCode::NotConverged;
      st.detail = "reduced-system GMRES did not converge";
    } else if (factor_status_.code == FactorCode::ShiftedDiagonal) {
      st.code = SolveCode::ShiftedDiagonal;
    }
  }

  // Collective block certification ladder (see the vector overload).
  const VerifyPolicy& vp = opts_.direct.verify;
  const bool insample = vp.enabled() && should_verify(vp, verify_seq_++);
  if (insample && st.code != SolveCode::NonFinite) {
    VerifyOps ops;
    ops.emit_obs = comm_.rank() == 0;
    ops.apply = [this, &vp](std::span<const double> in,
                            std::span<double> y) {
      if (vp.op == VerifyPolicy::Operator::Treecode)
        h_->apply_source(in, y, opts_.direct.lambda);
      else
        h_->apply(in, y, opts_.direct.lambda);
    };
    ops.solve = [this](std::span<const double> in, std::span<double> y) {
      const std::vector<double> s = solve_impl(in);
      std::copy(s.begin(), s.end(), y.begin());
    };
    ops.solve_block = [this](const Matrix& rhs) { return solve_impl(rhs); };
    const std::vector<VerifyOutcome> vos =
        certify_and_refine_block_ops(ops, u, x, vp);
    double worst = 0.0;
    bool uncertified = false;
    for (const VerifyOutcome& vo : vos) {
      worst = std::max(worst, vo.residual);
      uncertified = uncertified || !vo.certified;
      st.escalations += vo.escalations;
    }
    st.residual = worst;
    if (uncertified) {
      st.code = SolveCode::NotConverged;
      st.detail =
          "certified residual misses the verify target after the "
          "escalation ladder";
    } else if (st.escalations > 0) {
      st.code = SolveCode::Escalated;
    }
  }
  last_status_ = st;
  return x;
}

}  // namespace fdks::core
