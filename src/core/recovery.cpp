#include "core/recovery.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace fdks::core {

namespace {

using Clock = std::chrono::steady_clock;

/// A failure the supervisor retries: the categories a production
/// scheduler treats as transient (crashed rank, missed deadline, or a
/// mix of several ranks failing those ways).
bool retryable(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const mpisim::RankKilledError&) {
    return true;
  } catch (const mpisim::TimeoutError&) {
    return true;
  } catch (const mpisim::MultiRankError&) {
    return true;
  } catch (...) {  // fdks-lint: allow(CATCH-RETHROW) classifier only
    return false;
  }
}

std::string describe(const std::exception_ptr& ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {  // fdks-lint: allow(CATCH-RETHROW) classifier only
    return "unknown exception";
  }
}

}  // namespace

std::string RecoveryReport::message() const {
  std::ostringstream os;
  os << (succeeded ? "recovered" : "failed") << " after " << attempts.size()
     << " attempt" << (attempts.size() == 1 ? "" : "s");
  for (const auto& a : attempts) {
    os << "\n  attempt " << a.index << ": "
       << (a.succeeded ? "ok" : a.error) << " (" << a.seconds << " s)";
  }
  return os.str();
}

RecoveryReport run_with_recovery(int p,
                                 const std::function<void(mpisim::Comm&)>& fn,
                                 mpisim::WorldOptions opts,
                                 const RecoveryOptions& ropts) {
  if (ropts.max_attempts < 1)
    throw std::invalid_argument(
        "run_with_recovery: RecoveryOptions.max_attempts must be >= 1 (got " +
        std::to_string(ropts.max_attempts) + ")");

  RecoveryReport report;
  std::chrono::milliseconds pause = ropts.backoff;
  for (int attempt = 0; attempt < ropts.max_attempts; ++attempt) {
    RecoveryAttempt a;
    a.index = attempt;
    obs::add("recover.attempts");
    // Marks where a resumed run's timeline restarts in the event trace.
    obs::trace::instant(attempt == 0 ? "recover.attempt"
                                     : "recover.retry_attempt");
    const Clock::time_point t0 = Clock::now();
    std::exception_ptr failure;
    try {
      mpisim::run(p, fn, opts);
      a.succeeded = true;
    } catch (...) {
      failure = std::current_exception();
    }
    a.seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (failure) a.error = describe(failure);
    report.attempts.push_back(a);

    if (a.succeeded) {
      report.succeeded = true;
      if (attempt > 0) obs::add("recover.recovered_runs");
      return report;
    }
    if (!retryable(failure)) std::rethrow_exception(failure);

    report.error = a.error;
    if (attempt + 1 >= ropts.max_attempts) break;
    obs::add("recover.retries");
    obs::trace::instant("recover.retry");
    // Transient-crash model: the deterministic plan would otherwise
    // kill/stall the same rank again on every retry.
    if (ropts.clear_kill_on_retry) {
      opts.faults.kill_rank = -1;
      opts.faults.kill_after_ops = 0;
    }
    if (ropts.clear_stall_on_retry) {
      opts.faults.stall_rank = -1;
      opts.faults.stall = std::chrono::milliseconds{0};
    }
    if (pause.count() > 0) std::this_thread::sleep_for(pause);
    pause = std::min(
        std::chrono::milliseconds(static_cast<std::int64_t>(
            static_cast<double>(pause.count()) * ropts.backoff_multiplier)),
        ropts.max_backoff);
  }
  obs::add("recover.exhausted_runs");
  return report;
}

}  // namespace fdks::core
