#include "core/status.hpp"

#include <sstream>
#include <string>

namespace fdks::core {

const char* to_string(FactorCode c) {
  switch (c) {
    case FactorCode::Ok: return "ok";
    case FactorCode::ShiftedDiagonal: return "shifted-diagonal";
    case FactorCode::NearSingular: return "near-singular";
    case FactorCode::NonFinite: return "non-finite";
  }
  return "?";
}

const char* to_string(SolveCode c) {
  switch (c) {
    case SolveCode::Ok: return "ok";
    case SolveCode::ShiftedDiagonal: return "shifted-diagonal";
    case SolveCode::Escalated: return "escalated";
    case SolveCode::NotConverged: return "not-converged";
    case SolveCode::Breakdown: return "breakdown";
    case SolveCode::Stagnated: return "stagnated";
    case SolveCode::NonFinite: return "non-finite";
  }
  return "?";
}

std::string FactorStatus::message() const {
  std::ostringstream os;
  os << "factorization " << to_string(code);
  if (shifted_nodes > 0)
    os << ": " << shifted_nodes << " leaf block(s) required a diagonal "
       << "shift (" << shift_retries << " retries, lambda "
       << lambda_requested << " -> " << lambda_effective << " worst-case)";
  if (nonfinite_nodes > 0)
    os << "; " << nonfinite_nodes << " node(s) held NaN/Inf entries";
  if (code == FactorCode::NearSingular)
    os << ": " << flagged_nodes << " node(s) below the rcond threshold";
  return os.str();
}

std::string SolveStatus::message() const {
  std::ostringstream os;
  os << "solve " << to_string(code);
  if (residual >= 0.0) os << ", residual " << residual;
  if (gmres_iterations > 0) os << ", " << gmres_iterations << " iterations";
  if (escalations > 0) os << ", " << escalations << " escalation(s)";
  if (shifted_nodes > 0)
    os << ", " << shifted_nodes
       << " shifted leaf block(s) (effective lambda " << lambda_effective
       << ")";
  if (!detail.empty()) os << " [" << detail << "]";
  return os.str();
}

}  // namespace fdks::core
