#include "core/factor_tree.hpp"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "askit/wire.hpp"
#include "la/gemm.hpp"

namespace fdks::core {

size_t NodeFactor::bytes() const {
  size_t b = 0;
  b += static_cast<size_t>(leaf_chol.l.size()) * sizeof(double);
  b += static_cast<size_t>(leaf_lu.lu.size()) * sizeof(double);
  b += leaf_lu.piv.size() * sizeof(index_t);
  b += static_cast<size_t>(z_lu.lu.size()) * sizeof(double);
  b += z_lu.piv.size() * sizeof(index_t);
  b += static_cast<size_t>(phat.size()) * sizeof(double);
  b += static_cast<size_t>(tmat.size()) * sizeof(double);
  b += v_lr.stored_bytes() + v_rl.stored_bytes();
  return b;
}

double leaf_pivot_ratio(const NodeFactor& f) {
  if (f.leaf_uses_chol) {
    // Cholesky pivots are sqrt-scaled relative to LU pivots; square
    // the diagonal ratio so both paths feed the same threshold.
    const double dmin = f.leaf_chol.min_diag;
    double dmax = 0.0;
    for (index_t i = 0; i < f.leaf_chol.n(); ++i)
      dmax = std::max(dmax, f.leaf_chol.l(i, i));
    return dmax > 0.0 ? (dmin / dmax) * (dmin / dmax) : 0.0;
  }
  return f.leaf_lu.pivot_ratio();
}

bool leaf_near_singular(const NodeFactor& f, double threshold) {
  if (f.leaf_uses_chol)
    return !f.leaf_chol.spd || leaf_pivot_ratio(f) < threshold;
  return f.leaf_lu.singular || leaf_pivot_ratio(f) < threshold;
}

FactorTree::FactorTree(const HMatrix& h, SolverOptions opts)
    : h_(&h), opts_(opts) {
  nf_.resize(h.tree().nodes().size());
  stab_.threshold = opts_.rcond_threshold;
}

Matrix FactorTree::expand_projection(index_t id) const {
  const tree::Node& nd = h_->tree().node(id);
  const askit::NodeSkeleton& sk = h_->skeleton(id);

  if (nd.is_leaf()) {
    if (!sk.skeletonized) return Matrix::identity(nd.size());
    return sk.proj.transposed();  // |a| x s.
  }
  Matrix el = expand_projection(nd.left);
  Matrix er = expand_projection(nd.right);
  const index_t sl = el.cols();
  const index_t sr = er.cols();
  if (!sk.skeletonized) {
    // Effective skeleton: block-diagonal concatenation.
    Matrix e(nd.size(), sl + sr);
    e.set_block(0, 0, el);
    e.set_block(el.rows(), sl, er);
    return e;
  }
  // E_α = blockdiag(E_l, E_r) * proj^T.
  const Matrix pt = sk.proj.transposed();  // (sl+sr) x s_α.
  Matrix e(nd.size(), sk.rank());
  Matrix top = la::matmul(el, pt.block(0, 0, sl, pt.cols()));
  Matrix bot = la::matmul(er, pt.block(sl, 0, sr, pt.cols()));
  e.set_block(0, 0, top);
  e.set_block(el.rows(), 0, bot);
  return e;
}

void FactorTree::apply_phat(index_t id, std::span<const double> z,
                            std::span<double> y, double alpha) const {
  const NodeFactor& f = nf_[static_cast<size_t>(id)];
  const tree::Node& nd = h_->tree().node(id);
  if (f.phat.size() > 0) {  // Dense factor stored (leaf or non-compact).
    la::gemv(la::Trans::No, alpha, f.phat, z, 1.0, y);
    return;
  }
  if (nd.is_leaf())
    throw std::logic_error("apply_phat: leaf without a dense factor");
  // Compact mode: z2 = T z, then descend into the children's W rows.
  std::vector<double> z2(static_cast<size_t>(f.tmat.rows()), 0.0);
  la::gemv(la::Trans::No, 1.0, f.tmat, z, 0.0, z2);
  const index_t sl = static_cast<index_t>(
      h_->effective_skeleton(nd.left).size());
  const index_t nl = h_->tree().node(nd.left).size();
  apply_phat(nd.left, std::span<const double>(z2.data(), sl),
             y.subspan(0, static_cast<size_t>(nl)), alpha);
  apply_phat(nd.right,
             std::span<const double>(z2.data() + sl, z2.size() - sl),
             y.subspan(static_cast<size_t>(nl)), alpha);
}

void FactorTree::apply_phat(index_t id, la::ConstMatrixView z,
                            la::MatrixView y, double alpha) const {
  const NodeFactor& f = nf_[static_cast<size_t>(id)];
  const tree::Node& nd = h_->tree().node(id);
  if (f.phat.size() > 0) {  // Dense factor stored (leaf or non-compact).
    la::gemm(alpha, la::ConstMatrixView(f.phat), z, 1.0, y);
    return;
  }
  if (nd.is_leaf())
    throw std::logic_error("apply_phat: leaf without a dense factor");
  // Compact mode: Z2 = T Z once for the whole batch, then descend into
  // the children's W rows with column-aligned sub-views.
  Matrix z2(f.tmat.rows(), z.cols());
  la::gemm(1.0, la::ConstMatrixView(f.tmat), z, 0.0, la::MatrixView(z2));
  const index_t sl = static_cast<index_t>(
      h_->effective_skeleton(nd.left).size());
  const index_t nl = h_->tree().node(nd.left).size();
  const la::ConstMatrixView z2v(z2);
  apply_phat(nd.left, z2v.block(0, 0, sl, z2.cols()),
             y.block(0, 0, nl, y.cols()), alpha);
  apply_phat(nd.right, z2v.block(sl, 0, z2.rows() - sl, z2.cols()),
             y.block(nl, 0, y.rows() - nl, y.cols()), alpha);
}

Matrix FactorTree::dense_phat(index_t id) const {
  const NodeFactor& f = nf_[static_cast<size_t>(id)];
  if (f.phat.size() > 0) return f.phat;
  const tree::Node& nd = h_->tree().node(id);
  const index_t s = static_cast<index_t>(h_->effective_skeleton(id).size());
  Matrix out(nd.size(), s);
  std::vector<double> e(static_cast<size_t>(s), 0.0);
  for (index_t j = 0; j < s; ++j) {
    e[static_cast<size_t>(j)] = 1.0;
    apply_phat(id, e,
               std::span<double>(out.col(j), static_cast<size_t>(nd.size())));
    e[static_cast<size_t>(j)] = 0.0;
  }
  return out;
}

void FactorTree::set_lambda(double lambda) {
  opts_.lambda = lambda;
  // Invalidate lambda-dependent factors; V kernel blocks stay.
  for (NodeFactor& f : nf_) {
    f.factored = false;
    f.diag_shift = 0.0;
  }
  stab_ = StabilityReport{};
  stab_.threshold = opts_.rcond_threshold;
  profile_ = FactorProfile{};
  shifted_nodes_ = 0;
  shift_retries_ = 0;
  nonfinite_nodes_ = 0;
  max_shift_ = 0.0;
}

FactorStatus FactorTree::factor_status() const {
  std::lock_guard<std::mutex> lock(stab_mu_);
  FactorStatus fs;
  fs.lambda_requested = opts_.lambda;
  fs.lambda_effective = opts_.lambda + max_shift_;
  fs.shifted_nodes = shifted_nodes_;
  fs.shift_retries = shift_retries_;
  fs.nonfinite_nodes = nonfinite_nodes_;
  fs.flagged_nodes = stab_.flagged_nodes;
  if (nonfinite_nodes_ > 0) {
    fs.code = FactorCode::NonFinite;
  } else if (stab_.flagged_nodes > shifted_nodes_) {
    // Flagged nodes beyond the repaired ones: degraded factors remain.
    fs.code = FactorCode::NearSingular;
  } else if (shifted_nodes_ > 0) {
    fs.code = FactorCode::ShiftedDiagonal;
  }
  return fs;
}

void FactorTree::adopt_factor(index_t id, NodeFactor f) {
  if (id < 0 || static_cast<size_t>(id) >= nf_.size())
    throw std::out_of_range("FactorTree::adopt_factor: node id " +
                            std::to_string(id) + " outside [0, " +
                            std::to_string(nf_.size()) + ")");
  nf_[static_cast<size_t>(id)] = std::move(f);
}

FactorAccumulators FactorTree::accumulators() const {
  std::lock_guard<std::mutex> lock(stab_mu_);
  FactorAccumulators acc;
  acc.stab = stab_;
  acc.shifted_nodes = shifted_nodes_;
  acc.shift_retries = shift_retries_;
  acc.nonfinite_nodes = nonfinite_nodes_;
  acc.max_shift = max_shift_;
  return acc;
}

void FactorTree::adopt_accumulators(const FactorAccumulators& acc) {
  std::lock_guard<std::mutex> lock(stab_mu_);
  stab_ = acc.stab;
  shifted_nodes_ = acc.shifted_nodes;
  shift_retries_ = acc.shift_retries;
  nonfinite_nodes_ = acc.nonfinite_nodes;
  max_shift_ = acc.max_shift;
}

size_t FactorTree::subtree_bytes(index_t id) const {
  const tree::Node& nd = h_->tree().node(id);
  size_t b = nf_[static_cast<size_t>(id)].bytes();
  if (!nd.is_leaf())
    b += subtree_bytes(nd.left) + subtree_bytes(nd.right);
  return b;
}

size_t FactorTree::memory_bytes() const {
  // Flat walk over the node table: counts whatever is resident, whether
  // the tree was factorized whole (sequential solver), per frontier
  // subtree (hybrid), or partially (an interrupted factorization).
  size_t b = 0;
  for (const NodeFactor& f : nf_) b += f.bytes();
  return b;
}

namespace {

/// Chain one node factor's numerical payload into an FNV-1a hash.
/// Covers everything a bit flip could land on that would change an
/// answer: leaf LU/Cholesky blocks + pivots, stored V data, the
/// reduced-system LU, P^/T matrices, and the diagonal shift.
std::uint64_t chain_node_factor(const NodeFactor& f, index_t id,
                                std::uint64_t hsh) {
  const auto mix = [&hsh](const void* p, size_t n) {
    hsh = askit::wire::fnv1a(p, n, hsh);
  };
  const auto mix_matrix = [&](const Matrix& m) {
    mix(m.data(), static_cast<size_t>(m.size()) * sizeof(double));
  };
  mix(&id, sizeof id);
  mix(&f.diag_shift, sizeof f.diag_shift);
  mix_matrix(f.leaf_lu.lu);
  if (!f.leaf_lu.piv.empty())
    mix(f.leaf_lu.piv.data(), f.leaf_lu.piv.size() * sizeof(index_t));
  mix_matrix(f.leaf_chol.l);
  mix_matrix(f.v_lr.stored_block());
  mix_matrix(f.v_rl.stored_block());
  mix_matrix(f.z_lu.lu);
  if (!f.z_lu.piv.empty())
    mix(f.z_lu.piv.data(), f.z_lu.piv.size() * sizeof(index_t));
  mix_matrix(f.phat);
  mix_matrix(f.tmat);
  return hsh;
}

}  // namespace

std::uint64_t FactorTree::content_checksum() const {
  // Flat walk in node order (same rationale as memory_bytes: hashes
  // whatever factors are resident, whatever topology produced them).
  std::uint64_t hsh = askit::wire::fnv1a("fdks-factor-content-v1", 22);
  for (size_t i = 0; i < nf_.size(); ++i) {
    if (!nf_[i].factored) continue;
    hsh = chain_node_factor(nf_[i], static_cast<index_t>(i), hsh);
  }
  return hsh;
}

bool FactorTree::corrupt_factor_bit(std::uint64_t seed) {
  // Candidate arrays: every mutable double payload a real bit flip
  // could hit. (V blocks in GSKS mode store no doubles; skip empties.)
  std::vector<std::span<double>> arrays;
  for (NodeFactor& f : nf_) {
    if (!f.factored) continue;
    const auto push = [&arrays](Matrix& m) {
      if (m.size() > 0)
        arrays.emplace_back(m.data(), static_cast<size_t>(m.size()));
    };
    push(f.leaf_lu.lu);
    push(f.leaf_chol.l);
    push(f.z_lu.lu);
    push(f.phat);
    push(f.tmat);
  }
  size_t total = 0;
  for (const auto& a : arrays) total += a.size();
  if (total == 0) return false;
  size_t pick = static_cast<size_t>(seed % total);
  for (auto& a : arrays) {
    if (pick >= a.size()) {
      pick -= a.size();
      continue;
    }
    // Flip a high mantissa bit: large relative perturbation, never a
    // NaN/Inf (sign and exponent stay untouched).
    std::uint64_t bits = 0;
    std::memcpy(&bits, &a[pick], sizeof bits);
    bits ^= (std::uint64_t{1} << 51);
    std::memcpy(&a[pick], &bits, sizeof bits);
    return true;
  }
  return false;
}

void FactorTree::record_stability(index_t id) {
  const NodeFactor& f = nf_[static_cast<size_t>(id)];
  const tree::Node& nd = h_->tree().node(id);
  bool flagged = false;
  double leaf_pr = 1.0, z_rc = 1.0;
  if (nd.is_leaf()) {
    leaf_pr = leaf_pivot_ratio(f);
    // A shifted leaf stays flagged: StabilityReport is the raw §III
    // detector, and a node that needed a shift WAS ill-conditioned —
    // the repaired outcome is reported separately via FactorStatus.
    flagged = leaf_near_singular(f, stab_.threshold) || f.diag_shift > 0.0;
  } else {
    z_rc = la::lu_rcond(f.z_lu, f.z_norm1);
    flagged = f.z_lu.singular || z_rc < stab_.threshold;
  }
  std::lock_guard<std::mutex> lock(stab_mu_);  // parallel_tree tasks.
  stab_.min_leaf_pivot_ratio = std::min(stab_.min_leaf_pivot_ratio, leaf_pr);
  stab_.min_z_rcond = std::min(stab_.min_z_rcond, z_rc);
  if (flagged) ++stab_.flagged_nodes;
}


}  // namespace fdks::core
