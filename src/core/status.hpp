// Structured factorization/solve outcomes (robustness layer).
//
// The paper's §III warns that the direct factorization degrades when
// off-diagonal ranks grow or the regularized diagonal blocks become
// ill-conditioned. Instead of throw-or-garbage, the solvers report a
// structured status:
//
//   FactorStatus — what happened during factorization: clean, completed
//     via the automatic diagonal-shift retry (graceful degradation: the
//     effective lambda was bumped on near-singular leaf blocks),
//     near-singular factors left in place, or non-finite input detected.
//
//   SolveStatus — what happened during a guarded solve: clean, degraded
//     (shifted factors), escalated (the hybrid solver demoted its direct
//     factor to a preconditioner and re-solved iteratively), iterative
//     breakdown/stagnation, non-convergence, or non-finite data.
//
// Statuses with ok() == true mean "a usable solution was produced",
// possibly via a recorded degradation path; callers that need exact
// λI + K~ solves must check degraded() as well.
#pragma once

#include <cmath>
#include <span>
#include <string>

#include "la/matrix.hpp"

namespace fdks::core {

using la::index_t;

enum class FactorCode {
  Ok,               ///< Clean factorization.
  ShiftedDiagonal,  ///< Completed after bumping lambda on >= 1 leaf.
  NearSingular,     ///< Factors kept but conditioning below threshold.
  NonFinite,        ///< NaN/Inf encountered in blocks being factorized.
};

// [[nodiscard]] on the type: any function returning a status by value
// is must-check (lint/strict-build contract; discard explicitly with a
// commented `(void)` cast when a call site genuinely doesn't care).
struct [[nodiscard]] FactorStatus {
  FactorCode code = FactorCode::Ok;
  double lambda_requested = 0.0;
  /// Largest per-node effective lambda actually factorized
  /// (lambda_requested + the biggest diagonal shift applied).
  double lambda_effective = 0.0;
  index_t shifted_nodes = 0;    ///< Leaves factored with a bumped shift.
  index_t shift_retries = 0;    ///< Total re-factorization attempts.
  index_t nonfinite_nodes = 0;  ///< Nodes whose blocks held NaN/Inf.
  index_t flagged_nodes = 0;    ///< StabilityReport detector count.

  [[nodiscard]] bool ok() const {
    return code == FactorCode::Ok || code == FactorCode::ShiftedDiagonal;
  }
  [[nodiscard]] bool degraded() const { return code != FactorCode::Ok; }
  [[nodiscard]] std::string message() const;
};

enum class SolveCode {
  Ok,               ///< Clean solve.
  ShiftedDiagonal,  ///< Solved with diagonal-shifted factors.
  Escalated,        ///< Hybrid auto-escalation (factor as preconditioner).
  NotConverged,     ///< Iterative phase missed its tolerance.
  Breakdown,        ///< GMRES Arnoldi breakdown before convergence.
  Stagnated,        ///< GMRES stagnation detector tripped.
  NonFinite,        ///< NaN/Inf in the right-hand side or the solution.
};

struct [[nodiscard]] SolveStatus {
  SolveCode code = SolveCode::Ok;
  double residual = -1.0;       ///< Relative residual when computed.
  int gmres_iterations = 0;     ///< Krylov iterations spent (all phases).
  int escalations = 0;          ///< Auto-escalation retries used.
  double lambda_effective = 0.0;
  index_t shifted_nodes = 0;
  std::string detail;           ///< Free-form context for diagnostics.

  [[nodiscard]] bool ok() const {
    return code == SolveCode::Ok || code == SolveCode::ShiftedDiagonal ||
           code == SolveCode::Escalated;
  }
  [[nodiscard]] bool degraded() const { return code != SolveCode::Ok; }
  [[nodiscard]] std::string message() const;
};

const char* to_string(FactorCode c);
const char* to_string(SolveCode c);

/// Phase-boundary guard: true iff every entry is finite.
inline bool all_finite(std::span<const double> v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace fdks::core
