// Structured factorization/solve outcomes (robustness layer).
//
// The paper's §III warns that the direct factorization degrades when
// off-diagonal ranks grow or the regularized diagonal blocks become
// ill-conditioned. Instead of throw-or-garbage, the solvers report a
// structured status:
//
//   FactorStatus — what happened during factorization: clean, completed
//     via the automatic diagonal-shift retry (graceful degradation: the
//     effective lambda was bumped on near-singular leaf blocks),
//     near-singular factors left in place, or non-finite input detected.
//
//   SolveStatus — what happened during a guarded solve: clean, degraded
//     (shifted factors), escalated (the hybrid solver demoted its direct
//     factor to a preconditioner and re-solved iteratively), iterative
//     breakdown/stagnation, non-convergence, or non-finite data.
//
// Statuses with ok() == true mean "a usable solution was produced",
// possibly via a recorded degradation path; callers that need exact
// λI + K~ solves must check degraded() as well.
#pragma once

#include <cmath>
#include <span>
#include <string>

#include "la/matrix.hpp"

namespace fdks::core {

using la::index_t;

enum class FactorCode {
  Ok,               ///< Clean factorization.
  ShiftedDiagonal,  ///< Completed after bumping lambda on >= 1 leaf.
  NearSingular,     ///< Factors kept but conditioning below threshold.
  NonFinite,        ///< NaN/Inf encountered in blocks being factorized.
};

// [[nodiscard]] on the type: any function returning a status by value
// is must-check (lint/strict-build contract; discard explicitly with a
// commented `(void)` cast when a call site genuinely doesn't care).
struct [[nodiscard]] FactorStatus {
  FactorCode code = FactorCode::Ok;
  double lambda_requested = 0.0;
  /// Largest per-node effective lambda actually factorized
  /// (lambda_requested + the biggest diagonal shift applied).
  double lambda_effective = 0.0;
  index_t shifted_nodes = 0;    ///< Leaves factored with a bumped shift.
  index_t shift_retries = 0;    ///< Total re-factorization attempts.
  index_t nonfinite_nodes = 0;  ///< Nodes whose blocks held NaN/Inf.
  index_t flagged_nodes = 0;    ///< StabilityReport detector count.

  [[nodiscard]] bool ok() const {
    return code == FactorCode::Ok || code == FactorCode::ShiftedDiagonal;
  }
  [[nodiscard]] bool degraded() const { return code != FactorCode::Ok; }
  [[nodiscard]] std::string message() const;
};

enum class SolveCode {
  Ok,               ///< Clean solve.
  ShiftedDiagonal,  ///< Solved with diagonal-shifted factors.
  Escalated,        ///< Hybrid auto-escalation (factor as preconditioner).
  NotConverged,     ///< Iterative phase missed its tolerance.
  Breakdown,        ///< GMRES Arnoldi breakdown before convergence.
  Stagnated,        ///< GMRES stagnation detector tripped.
  NonFinite,        ///< NaN/Inf in the right-hand side or the solution.
};

struct [[nodiscard]] SolveStatus {
  SolveCode code = SolveCode::Ok;
  double residual = -1.0;       ///< Relative residual when computed.
  int gmres_iterations = 0;     ///< Krylov iterations spent (all phases).
  int escalations = 0;          ///< Auto-escalation retries used.
  double lambda_effective = 0.0;
  index_t shifted_nodes = 0;
  std::string detail;           ///< Free-form context for diagnostics.

  [[nodiscard]] bool ok() const {
    return code == SolveCode::Ok || code == SolveCode::ShiftedDiagonal ||
           code == SolveCode::Escalated;
  }
  [[nodiscard]] bool degraded() const { return code != SolveCode::Ok; }
  [[nodiscard]] std::string message() const;
};

const char* to_string(FactorCode c);
const char* to_string(SolveCode c);

// ---------------------------------------------------------------------
// A posteriori certification policy (PR 8).
//
// A direct factor is only as good as the blocks it was built from: a
// loose skeleton tolerance, an aggressive auto-shift, or silent bit rot
// in a long-lived cache all produce answers that LOOK clean. The
// VerifyPolicy makes the solver measure the relative residual
// ‖(λI+K)x − b‖ / ‖b‖ after the fact and walk an escalation ladder
// (iterative refinement, then factor-preconditioned GMRES) until the
// answer is certified or declared failed.

enum class VerifyMode {
  Off,     ///< Never verify (legacy behavior; residual = -1).
  Sample,  ///< Verify 1-in-`sample_every` solves (cheap steady-state).
  Always,  ///< Verify every solve.
};

struct VerifyPolicy {
  VerifyMode mode = VerifyMode::Off;
  /// Sampling period for VerifyMode::Sample: solve k is verified iff
  /// k % sample_every == 0 (the first solve is always in-sample).
  int sample_every = 16;
  /// Certification target for the relative residual.
  double target_residual = 1e-6;

  /// Which operator the residual is measured against. Factorized is
  /// the target-interpolation treecode apply() the factorization
  /// inverts — the right check for factor integrity (bit flips,
  /// marginal pivots, stale shifts). Treecode is the classic ASKIT
  /// source-skeleton apply_source(), an evaluation path independent of
  /// the factorization that differs by O(tau) — the right cross-check
  /// when the skeleton approximation itself is in question.
  enum class Operator { Factorized, Treecode };
  Operator op = Operator::Factorized;

  /// Escalation ladder rung 1: fixed-point iterative refinement
  /// x += F⁻¹(b − A·x), at most this many steps.
  int max_refine_steps = 3;
  /// Stagnation detector: a refinement step must shrink the residual
  /// by at least this factor (new < factor * old) to keep going.
  double min_step_improvement = 0.5;

  /// Escalation ladder rung 2: factor-preconditioned GMRES on A when
  /// refinement stagnates above target.
  bool escalate = true;
  int escalate_max_iters = 200;

  [[nodiscard]] bool enabled() const { return mode != VerifyMode::Off; }
};

/// Outcome of one certification pass (per solve, or per column of a
/// batched solve). `measured == false` means the policy skipped this
/// solve (sampling) and residual stays -1.
struct [[nodiscard]] VerifyOutcome {
  bool measured = false;
  bool certified = false;   ///< residual <= policy target (post-ladder).
  double residual = -1.0;   ///< Final certified relative residual.
  int refine_steps = 0;     ///< Refinement iterations spent.
  int escalations = 0;      ///< 1 when the GMRES rung ran.
};

/// Phase-boundary guard: true iff every entry is finite.
inline bool all_finite(std::span<const double> v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace fdks::core
