// Certification + escalation ladder implementation (see verify.hpp).
#include "core/verify.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "la/blas1.hpp"
#include "obs/obs.hpp"

namespace fdks::core {

bool should_verify(const VerifyPolicy& p, std::uint64_t solve_index) {
  switch (p.mode) {
    case VerifyMode::Off:
      return false;
    case VerifyMode::Always:
      return true;
    case VerifyMode::Sample: {
      const std::uint64_t k =
          p.sample_every > 0 ? static_cast<std::uint64_t>(p.sample_every) : 1;
      return solve_index % k == 0;
    }
  }
  return false;
}

void verify_apply(const FastDirectSolver& s, const VerifyPolicy& p,
                  std::span<const double> x, std::span<double> y) {
  const HMatrix& h = s.factor_tree().hmatrix();
  if (p.op == VerifyPolicy::Operator::Treecode)
    h.apply_source(x, y, s.lambda());
  else
    h.apply(x, y, s.lambda());
}

namespace {

double elapsed_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// r = b − A x; returns ‖r‖/‖b‖ (‖r‖ when b = 0).
double residual_into(const VerifyOps& ops, std::span<const double> b,
                     std::span<const double> x, std::span<double> r) {
  ops.apply(x, r);
  for (size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  const double bnorm = la::nrm2(b);
  const double rnorm = la::nrm2(r);
  return bnorm > 0.0 ? rnorm / bnorm : rnorm;
}

bool certified(double rel, const VerifyPolicy& p) {
  return std::isfinite(rel) && rel <= p.target_residual;
}

/// Rung 2: factor-preconditioned GMRES on the full certification
/// operator. The factor accelerates Krylov convergence; the reported
/// residual stays the true residual of A x = b (right preconditioning).
/// Adopts the GMRES iterate into x only when it measures better than
/// what the ladder already has. Returns the (possibly improved) rel.
double escalate_rung(const VerifyOps& ops, const VerifyPolicy& p,
                     std::span<const double> b, std::span<double> x,
                     double rel, const CancelToken* cancel) {
  if (ops.emit_obs) obs::add("refine.escalations");
  iter::GmresOptions go;
  go.max_iters = p.escalate_max_iters;
  go.restart = std::min(60, std::max(1, p.escalate_max_iters));
  go.rtol = p.target_residual;
  go.record_history = false;
  go.cancel = cancel;
  go.right_precond = ops.solve;
  const iter::GmresResult gr =
      iter::gmres(static_cast<index_t>(b.size()), ops.apply, b, go);
  // Trust a measured residual, not the Givens estimate: the candidate
  // only replaces the incumbent when it is verifiably better.
  std::vector<double> scratch(b.size(), 0.0);
  const double cand = residual_into(ops, b, gr.x, scratch);
  if (std::isfinite(cand) && (!std::isfinite(rel) || cand < rel)) {
    std::copy(gr.x.begin(), gr.x.end(), x.begin());
    return cand;
  }
  return rel;
}

}  // namespace

VerifyOutcome certify_and_refine_ops(const VerifyOps& ops,
                                     std::span<const double> b,
                                     std::span<double> x,
                                     const VerifyPolicy& p,
                                     const CancelToken* cancel) {
  VerifyOutcome out;
  const auto t0 = std::chrono::steady_clock::now();
  out.measured = true;
  if (ops.emit_obs) obs::add("verify.checks");

  const size_t n = x.size();
  std::vector<double> r(n, 0.0);
  double rel = residual_into(ops, b, x, r);

  if (!certified(rel, p)) {
    if (ops.emit_obs) obs::add("verify.fail");
    // Rung 1: fixed-point refinement x += F⁻¹(b − A x). Contraction
    // factor ≈ ‖I − F⁻¹A‖, so each step multiplies the error by the
    // factor's approximation quality; stop on target or stagnation.
    std::vector<double> dx(n, 0.0);
    for (int step = 0; step < p.max_refine_steps; ++step) {
      if (!std::isfinite(rel)) break;  // NaN/Inf: refinement can't help.
      if (cancel) cancel->check("core::certify_and_refine");
      ops.solve(r, dx);
      const double prev = rel;
      for (size_t i = 0; i < n; ++i) x[i] += dx[i];
      rel = residual_into(ops, b, x, r);
      if (ops.emit_obs) obs::add("refine.steps");
      ++out.refine_steps;
      if (certified(rel, p)) break;
      if (!std::isfinite(rel) || rel >= p.min_step_improvement * prev) {
        if (!std::isfinite(rel) || rel > prev) {
          // The step made things worse: roll it back.
          for (size_t i = 0; i < n; ++i) x[i] -= dx[i];
          rel = residual_into(ops, b, x, r);
        }
        break;  // Stagnated above target.
      }
    }
    // Rung 2: factor-preconditioned GMRES.
    if (!certified(rel, p) && p.escalate) {
      if (cancel) cancel->check("core::certify_and_refine");
      rel = escalate_rung(ops, p, b, x, rel, cancel);
      ++out.escalations;
    }
  }

  out.residual = rel;
  out.certified = certified(rel, p);
  if (ops.emit_obs) {
    if (std::isfinite(rel)) obs::hist("verify.residual", rel);
    obs::hist("verify.seconds", elapsed_seconds(t0));
  }
  return out;
}

std::vector<VerifyOutcome> certify_and_refine_block_ops(
    const VerifyOps& ops, const Matrix& b, Matrix& x, const VerifyPolicy& p,
    const CancelToken* cancel) {
  const index_t n = b.rows();
  const index_t cols = b.cols();
  std::vector<VerifyOutcome> outs(static_cast<size_t>(cols));
  const auto t0 = std::chrono::steady_clock::now();

  const auto col_span = [n](const Matrix& m, index_t j) {
    return std::span<const double>(m.col(j), static_cast<size_t>(n));
  };
  const auto col_span_mut = [n](Matrix& m, index_t j) {
    return std::span<double>(m.col(j), static_cast<size_t>(n));
  };

  // Measure every column; the failing set is what the ladder works on.
  Matrix r(n, cols);
  std::vector<double> rel(static_cast<size_t>(cols), 0.0);
  std::vector<index_t> failing;
  for (index_t j = 0; j < cols; ++j) {
    outs[static_cast<size_t>(j)].measured = true;
    if (ops.emit_obs) obs::add("verify.checks");
    rel[static_cast<size_t>(j)] = residual_into(
        ops, col_span(b, j), col_span(x, j), col_span_mut(r, j));
    if (!certified(rel[static_cast<size_t>(j)], p)) {
      if (ops.emit_obs) obs::add("verify.fail");
      if (std::isfinite(rel[static_cast<size_t>(j)]))
        failing.push_back(j);  // NaN columns go straight past rung 1.
    }
  }

  // Rung 1, batched: one narrow blocked correction solve per step over
  // the still-failing columns (per-column blame, batched repair).
  std::vector<double> dxcol(static_cast<size_t>(n), 0.0);
  for (int step = 0; step < p.max_refine_steps && !failing.empty();
       ++step) {
    if (cancel) cancel->check("core::certify_and_refine_block");
    Matrix dxf(n, static_cast<index_t>(failing.size()));
    if (ops.solve_block) {
      Matrix rf(n, static_cast<index_t>(failing.size()));
      for (size_t i = 0; i < failing.size(); ++i)
        std::copy(r.col(failing[i]), r.col(failing[i]) + n,
                  rf.col(static_cast<index_t>(i)));
      dxf = ops.solve_block(rf);
    } else {
      for (size_t i = 0; i < failing.size(); ++i) {
        ops.solve(col_span(r, failing[i]), dxcol);
        std::copy(dxcol.begin(), dxcol.end(),
                  dxf.col(static_cast<index_t>(i)));
      }
    }
    std::vector<index_t> still;
    for (size_t i = 0; i < failing.size(); ++i) {
      const index_t j = failing[i];
      const double* dx = dxf.col(static_cast<index_t>(i));
      double* xj = x.col(j);
      for (index_t k = 0; k < n; ++k) xj[k] += dx[k];
      const double prev = rel[static_cast<size_t>(j)];
      rel[static_cast<size_t>(j)] = residual_into(
          ops, col_span(b, j), col_span(x, j), col_span_mut(r, j));
      if (ops.emit_obs) obs::add("refine.steps");
      ++outs[static_cast<size_t>(j)].refine_steps;
      const double now = rel[static_cast<size_t>(j)];
      if (certified(now, p)) continue;
      if (!std::isfinite(now) || now >= p.min_step_improvement * prev) {
        if (!std::isfinite(now) || now > prev) {
          for (index_t k = 0; k < n; ++k) xj[k] -= dx[k];
          rel[static_cast<size_t>(j)] = residual_into(
              ops, col_span(b, j), col_span(x, j), col_span_mut(r, j));
        }
        continue;  // Stagnated: falls through to the GMRES rung below.
      }
      still.push_back(j);
    }
    failing.swap(still);
  }

  // Rung 2, per column: a Krylov space is per-RHS.
  for (index_t j = 0; j < cols; ++j) {
    if (certified(rel[static_cast<size_t>(j)], p) || !p.escalate) continue;
    if (cancel) cancel->check("core::certify_and_refine_block");
    rel[static_cast<size_t>(j)] =
        escalate_rung(ops, p, col_span(b, j), col_span_mut(x, j),
                      rel[static_cast<size_t>(j)], cancel);
    ++outs[static_cast<size_t>(j)].escalations;
  }

  for (index_t j = 0; j < cols; ++j) {
    VerifyOutcome& o = outs[static_cast<size_t>(j)];
    o.residual = rel[static_cast<size_t>(j)];
    o.certified = certified(o.residual, p);
    if (ops.emit_obs && std::isfinite(o.residual))
      obs::hist("verify.residual", o.residual);
  }
  if (ops.emit_obs) obs::hist("verify.seconds", elapsed_seconds(t0));
  return outs;
}

namespace {

VerifyOps solver_ops(const FastDirectSolver& s, const VerifyPolicy& p,
                     const CancelToken* cancel) {
  VerifyOps ops;
  ops.apply = [&s, &p](std::span<const double> in, std::span<double> y) {
    verify_apply(s, p, in, y);
  };
  ops.solve = [&s, cancel](std::span<const double> in, std::span<double> y) {
    s.solve(in, y, cancel);
  };
  ops.solve_block = [&s, cancel](const Matrix& rhs) {
    return s.solve(rhs, cancel);
  };
  return ops;
}

}  // namespace

VerifyOutcome certify_and_refine(const FastDirectSolver& s,
                                 std::span<const double> b,
                                 std::span<double> x, const VerifyPolicy& p,
                                 std::uint64_t solve_index,
                                 const CancelToken* cancel) {
  if (!should_verify(p, solve_index)) return {};
  return certify_and_refine_ops(solver_ops(s, p, cancel), b, x, p, cancel);
}

std::vector<VerifyOutcome> certify_and_refine_block(
    const FastDirectSolver& s, const Matrix& b, Matrix& x,
    const VerifyPolicy& p, std::uint64_t solve_index,
    const CancelToken* cancel) {
  if (!should_verify(p, solve_index))
    return std::vector<VerifyOutcome>(static_cast<size_t>(b.cols()));
  return certify_and_refine_block_ops(solver_ops(s, p, cancel), b, x, p,
                                      cancel);
}

}  // namespace fdks::core
