// A posteriori answer certification and the escalation ladder (PR 8).
//
// A fast direct solver is approximate by construction: the skeletons
// carry an O(tau) error, near-singular leaves may have been repaired
// with a diagonal shift, and a long-lived cached factor can rot. This
// module turns "we hope the factor is good" into "every answer is
// certified or escalated":
//
//   rung 0 — measure: relative residual ‖(λI+K)x − b‖ / ‖b‖ through a
//            treecode matvec (VerifyPolicy::Operator selects the
//            factorized-form apply() or the factorization-independent
//            source-skeleton apply_source()).
//   rung 1 — iterative refinement: x += F⁻¹(b − A·x), the classic
//            approximate-factor refinement loop, until the target is
//            met or the contraction stagnates (refine.steps).
//   rung 2 — factor-preconditioned GMRES on A (refine.escalations),
//            reusing GmresOptions::right_precond.
//
// The ladder is written against a VerifyOps callback pair so every
// solver shares it: the sequential FastDirectSolver wrappers below,
// and the distributed solvers, whose u/x are replicated on every rank —
// each rank reaches the identical refine/stop decision, so the
// correction solves routed through VerifyOps::solve stay collective.
//
// The block variants refine only failing columns (one narrow blocked
// correction solve per step), which is what keeps certification cheap
// for the serving path's batched solves.
#pragma once

#include "core/solver.hpp"
#include "iterative/gmres.hpp"

#include <cstdint>
#include <functional>
#include <vector>

namespace fdks::core {

/// Sampling decision: is solve number `solve_index` in-sample under
/// policy `p`? Index 0 is always in-sample (the first solve after a
/// factorization is the one most worth checking).
bool should_verify(const VerifyPolicy& p, std::uint64_t solve_index);

/// y = (λI+K) x through the operator the policy certifies against.
/// λ is taken from the solver's options.
void verify_apply(const FastDirectSolver& s, const VerifyPolicy& p,
                  std::span<const double> x, std::span<double> y);

/// The two callbacks the ladder is generic over. `apply` is the
/// certification operator y = (λI+K)x; `solve` is the approximate
/// factor y = F⁻¹ b used for refinement corrections and as the GMRES
/// right preconditioner. `solve_block` (optional) batches the rung-1
/// corrections of the block ladder; when empty, columns are corrected
/// one solve() at a time.
struct VerifyOps {
  iter::LinOp apply;
  iter::LinOp solve;
  std::function<Matrix(const Matrix&)> solve_block;
  /// Emit verify.*/refine.* obs keys. Distributed callers set this on
  /// rank 0 only so collective ladders count each event once.
  bool emit_obs = true;
};

/// Certify x (a solution of A x = b already computed by the caller) and
/// walk the escalation ladder in place until certified or exhausted.
/// Emits verify.checks/fail/residual/seconds and refine.steps/
/// escalations (when ops.emit_obs). Honors `cancel` between rungs and
/// inside the GMRES rung (CancelledError propagates). The sampling
/// decision is the caller's (should_verify) — this always measures.
VerifyOutcome certify_and_refine_ops(const VerifyOps& ops,
                                     std::span<const double> b,
                                     std::span<double> x,
                                     const VerifyPolicy& p,
                                     const CancelToken* cancel = nullptr);

/// Batched variant: certify every column of x against b, then refine
/// ONLY the failing columns — each refinement step gathers their
/// residuals into one narrow block, runs a single blocked correction
/// solve, and scatters the updates back (per-column blame, batched
/// repair). Columns that stagnate above target escalate individually
/// through the GMRES rung. Returns one outcome per column.
std::vector<VerifyOutcome> certify_and_refine_block_ops(
    const VerifyOps& ops, const Matrix& b, Matrix& x, const VerifyPolicy& p,
    const CancelToken* cancel = nullptr);

/// FastDirectSolver adapters: build VerifyOps from the solver and run
/// the ladder, with the sampling decision folded in (`solve_index`
/// feeds should_verify; a skipped solve returns measured == false and
/// leaves x untouched).
VerifyOutcome certify_and_refine(const FastDirectSolver& s,
                                 std::span<const double> b,
                                 std::span<double> x, const VerifyPolicy& p,
                                 std::uint64_t solve_index = 0,
                                 const CancelToken* cancel = nullptr);

std::vector<VerifyOutcome> certify_and_refine_block(
    const FastDirectSolver& s, const Matrix& b, Matrix& x,
    const VerifyPolicy& p, std::uint64_t solve_index = 0,
    const CancelToken* cancel = nullptr);

}  // namespace fdks::core
