#include "core/preconditioned.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "kernel/gsks.hpp"
#include "la/blas1.hpp"

namespace fdks::core {

void exact_apply(const askit::HMatrix& h, double lambda,
                 std::span<const double> w, std::span<double> y) {
  if (w.size() != static_cast<size_t>(h.n()) || y.size() != w.size())
    throw std::invalid_argument("exact_apply: size mismatch");
  // The HMatrix's kernel-matrix view lives in tree order; permute in,
  // run one fused full-matrix sweep, permute out.
  const std::vector<double> wt = h.to_tree_order(w);
  std::vector<double> yt(wt.size(), 0.0);
  std::vector<la::index_t> all(static_cast<size_t>(h.n()));
  std::iota(all.begin(), all.end(), la::index_t{0});
  kernel::gsks_apply(h.km(), all, all, wt, yt);
  if (lambda != 0.0)
    for (size_t i = 0; i < yt.size(); ++i) yt[i] += lambda * wt[i];
  const std::vector<double> yo = h.from_tree_order(yt);
  std::copy(yo.begin(), yo.end(), y.begin());
}

namespace {

double residual_of(const askit::HMatrix& h, double lambda,
                   std::span<const double> x, std::span<const double> u) {
  std::vector<double> ax(u.size());
  exact_apply(h, lambda, x, ax);
  for (size_t i = 0; i < ax.size(); ++i) ax[i] = u[i] - ax[i];
  const double un = la::nrm2(u);
  return un > 0.0 ? la::nrm2(ax) / un : 0.0;
}

}  // namespace

ExactSolveResult solve_exact_preconditioned(const askit::HMatrix& h,
                                            const FastDirectSolver& m,
                                            std::span<const double> u,
                                            iter::GmresOptions opts) {
  const la::index_t n = h.n();
  const double lambda = m.lambda();
  ExactSolveResult out;
  // Right preconditioning: solve (A M^-1) y = u, then x = M^-1 y. The
  // GMRES residual is the residual of the original system, so the
  // recorded history is directly meaningful.
  out.gmres = iter::gmres(
      n,
      [&](std::span<const double> z, std::span<double> y) {
        std::vector<double> t(z.size());
        m.solve(z, t);
        exact_apply(h, lambda, t, y);
      },
      u, opts);
  out.x.assign(static_cast<size_t>(n), 0.0);
  m.solve(out.gmres.x, out.x);
  out.exact_residual = residual_of(h, lambda, out.x, u);
  return out;
}

ExactSolveResult solve_exact_unpreconditioned(const askit::HMatrix& h,
                                              double lambda,
                                              std::span<const double> u,
                                              iter::GmresOptions opts) {
  ExactSolveResult out;
  out.gmres = iter::gmres(
      h.n(),
      [&](std::span<const double> w, std::span<double> y) {
        exact_apply(h, lambda, w, y);
      },
      u, opts);
  out.x = out.gmres.x;
  out.exact_residual = residual_of(h, lambda, out.x, u);
  return out;
}

}  // namespace fdks::core
