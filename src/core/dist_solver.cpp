#include "core/dist_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "core/verify.hpp"
#include "kernel/gsks.hpp"
#include "la/gemm.hpp"
#include "obs/obs.hpp"

namespace fdks::core {

namespace {

constexpr int kTagSkel = 11;
constexpr int kTagB12 = 12;
constexpr int kTagTl = 13;
constexpr int kTagZr = 14;

std::vector<double> encode_ids(std::span<const index_t> ids) {
  std::vector<double> out(ids.size());
  for (size_t i = 0; i < ids.size(); ++i)
    out[i] = static_cast<double>(ids[i]);
  return out;
}

std::vector<index_t> decode_ids(std::span<const double> data) {
  std::vector<index_t> out(data.size());
  for (size_t i = 0; i < data.size(); ++i)
    out[i] = static_cast<index_t>(std::llround(data[i]));
  return out;
}

std::vector<double> encode_matrix(const la::Matrix& m) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(m.size()) + 2);
  out.push_back(static_cast<double>(m.rows()));
  out.push_back(static_cast<double>(m.cols()));
  out.insert(out.end(), m.data(), m.data() + m.size());
  return out;
}

la::Matrix decode_matrix(std::span<const double> data) {
  const auto r = static_cast<index_t>(std::llround(data[0]));
  const auto c = static_cast<index_t>(std::llround(data[1]));
  la::Matrix m(r, c);
  std::copy(data.begin() + 2, data.end(), m.data());
  return m;
}

bool is_power_of_two(int p) { return p > 0 && (p & (p - 1)) == 0; }

}  // namespace

FactorStatus allreduce_factor_status(const FactorStatus& local,
                                     const mpisim::Comm& comm) {
  // Counters are summed; the shift magnitude is maxed (allgather of one
  // value — no allreduce_max primitive needed).
  std::vector<double> counts = {
      static_cast<double>(local.shifted_nodes),
      static_cast<double>(local.shift_retries),
      static_cast<double>(local.nonfinite_nodes),
      static_cast<double>(local.flagged_nodes)};
  comm.allreduce_sum(counts);
  const std::vector<double> shifts = comm.allgatherv(
      std::vector<double>{local.lambda_effective - local.lambda_requested});
  double max_shift = 0.0;
  for (double s : shifts) max_shift = std::max(max_shift, s);

  FactorStatus g;
  g.lambda_requested = local.lambda_requested;
  g.lambda_effective = local.lambda_requested + max_shift;
  g.shifted_nodes = static_cast<index_t>(std::llround(counts[0]));
  g.shift_retries = static_cast<index_t>(std::llround(counts[1]));
  g.nonfinite_nodes = static_cast<index_t>(std::llround(counts[2]));
  g.flagged_nodes = static_cast<index_t>(std::llround(counts[3]));
  if (g.nonfinite_nodes > 0) {
    g.code = FactorCode::NonFinite;
  } else if (g.flagged_nodes > g.shifted_nodes) {
    g.code = FactorCode::NearSingular;
  } else if (g.shifted_nodes > 0) {
    g.code = FactorCode::ShiftedDiagonal;
  }
  return g;
}

DistributedSolver::DistributedSolver(const HMatrix& h, SolverOptions opts,
                                     mpisim::Comm comm)
    : h_(&h), ft_(h, opts), comm_(std::move(comm)) {
  const int p = comm_.size();
  if (!is_power_of_two(p))
    throw std::invalid_argument("DistributedSolver: p must be a power of 2");
  logp_ = 0;
  while ((1 << logp_) < p) ++logp_;

  // Walk from the root to my level-log2(p) node, splitting the
  // communicator at every distributed level (Figure 1's nested local
  // communicators).
  const auto& t = h.tree();
  if (static_cast<int>(t.levels().size()) <= logp_ ||
      static_cast<int>(t.levels()[static_cast<size_t>(logp_)].size()) != p)
    throw std::invalid_argument(
        "DistributedSolver: tree has no complete level log2(p); "
        "decrease p or leaf_size");

  index_t node = t.root();
  mpisim::Comm cur = comm_;
  for (int level = 0; level < logp_; ++level) {
    const int q = cur.size();
    const bool is_left = cur.rank() < q / 2;
    mpisim::Comm half = cur.split(is_left ? 0 : 1);
    DistLevel dl{node, cur, half, is_left, {}, {}, 0, 0, {}, {}};
    dist_.push_back(std::move(dl));
    node = is_left ? t.node(node).left : t.node(node).right;
    cur = dist_.back().half_comm;
  }
  local_root_ = node;
  local_begin_ = t.node(node).begin;
  local_end_ = t.node(node).end;

  factorize();
}

void DistributedSolver::factorize() {
  obs::ScopedTimer t_dist("dist.factorize");
  const auto t0 = std::chrono::steady_clock::now();
  const auto& t = h_->tree();

  // Local phase: own subtree, sequential Algorithm II.2, including the
  // local root's P^ (it feeds the first distributed level). With a
  // checkpoint directory configured, each rank persists its local
  // subtree (atomic, checksummed) and a supervised re-execution resumes
  // here instead of re-factorizing — the restart path of
  // core/recovery.hpp. The distributed phase below is communication-
  // bound and cheap relative to the local factorization, so it simply
  // re-runs.
  obs::ScopedTimer t_local("local_factor");
  const SolverOptions& sopts = ft_.options();
  if (!sopts.checkpoint_dir.empty()) {
    ckpt::ensure_dir(sopts.checkpoint_dir);
    const std::string scope = "dist p=" + std::to_string(comm_.size()) +
                              " rank=" + std::to_string(comm_.rank()) +
                              " root=" + std::to_string(local_root_);
    const std::string path = ckpt::join(
        sopts.checkpoint_dir,
        "factors_dist_p" + std::to_string(comm_.size()) + "_r" +
            std::to_string(comm_.rank()) + ".ckpt");
    const index_t roots[] = {local_root_};
    std::string diag;
    if (!ckpt::try_load_factor_tree(path, ft_, roots, scope, &diag)) {
      ft_.factorize_subtree(local_root_, /*compute_phat=*/logp_ > 0);
      ckpt::save_factor_tree(path, ft_, roots, scope);
    }
  } else {
    ft_.factorize_subtree(local_root_, /*compute_phat=*/logp_ > 0);
  }
  Matrix phat_local =
      logp_ > 0 ? ft_.dense_phat(local_root_) : Matrix();
  t_local.stop();

  // Distributed phase, bottom-up over the recorded ancestors.
  for (int li = logp_ - 1; li >= 0; --li) {
    obs::ScopedTimer t_level("dist.level");
    DistLevel& dl = dist_[static_cast<size_t>(li)];
    const tree::Node& nd = t.node(dl.node);
    const int q = dl.comm.size();
    const bool root_of_half = dl.half_comm.rank() == 0;

    // My child's (effective) skeleton; exchange with the sibling group
    // root, then broadcast inside each half (Algorithm II.4's
    // Send/Recv/Bcast of l~ and r~).
    const index_t my_child = dl.is_left ? nd.left : nd.right;
    dl.own_skel = h_->effective_skeleton(my_child);
    std::vector<double> sib_raw;
    if (root_of_half) {
      const int partner = dl.is_left ? q / 2 : 0;
      sib_raw = dl.comm.sendrecv(partner, kTagSkel, encode_ids(dl.own_skel));
    }
    dl.half_comm.bcast(sib_raw, 0);
    dl.sib_skel = decode_ids(sib_raw);
    dl.s_l = static_cast<index_t>(dl.is_left ? dl.own_skel.size()
                                             : dl.sib_skel.size());
    dl.s_r = static_cast<index_t>(dl.is_left ? dl.sib_skel.size()
                                             : dl.own_skel.size());

    // W rows this rank owns at this node: local rows of P^_child.
    dl.phat_child_local = phat_local;

    // Contribution to the off-diagonal Z block:
    // G_i = K(sibling~, {x}_i) P^_{x_i, child~}  (s_sib x s_child).
    std::vector<index_t> local_pts(
        static_cast<size_t>(local_end_ - local_begin_));
    std::iota(local_pts.begin(), local_pts.end(), local_begin_);
    // Multi-RHS product: honor the configured summation scheme (GSKS
    // re-evaluates the kernel per column, so the stored/GEMM path is the
    // right default for Z assembly, as in the sequential factorization).
    kernel::KernelBlockOp vblock(&h_->km(), dl.sib_skel, local_pts,
                                 ft_.options().scheme);
    Matrix g = vblock.apply_block(phat_local);

    // Reduce within my half to the half root (deterministic rank order).
    // Only the payload is summed; the dimensions are known on both ends.
    std::vector<double> gflat(g.data(), g.data() + g.size());
    dl.half_comm.reduce_sum(gflat, 0);

    // Left half root now holds B21 = K(r~, X_l) P^_l; right half root
    // holds B12 = K(l~, X_r) P^_r and ships it to comm rank 0.
    Matrix tsolve;  // Z^-1 P' broadcast to everyone.
    if (dl.comm.rank() == 0) {
      Matrix b21(dl.s_r, dl.s_l);  // = K(r~, X_l) P^_l.
      std::copy(gflat.begin(), gflat.end(), b21.data());
      Matrix b12 = decode_matrix(dl.comm.recv(q / 2, kTagB12));  // s_l x s_r.
      Matrix z(dl.s_l + dl.s_r, dl.s_l + dl.s_r);
      for (index_t i = 0; i < z.rows(); ++i) z(i, i) = 1.0;
      z.set_block(0, dl.s_l, b12);
      z.set_block(dl.s_l, 0, b21);
      dl.z_lu = la::lu_factor(z);

      if (li > 0) {  // The root itself never feeds a parent coupling.
        const askit::NodeSkeleton& sk = h_->skeleton(dl.node);
        // P'_node: skeleton projection when compressed, identity above
        // an adaptive frontier (expanded factorization).
        Matrix pprime = sk.skeletonized
                            ? sk.proj.transposed()
                            : Matrix::identity(dl.s_l + dl.s_r);
        la::lu_solve(dl.z_lu, pprime);
        tsolve = std::move(pprime);
      }
    } else if (root_of_half && !dl.is_left) {
      Matrix b12(dl.s_l, dl.s_r);  // = K(l~, X_r) P^_r, reduced here.
      std::copy(gflat.begin(), gflat.end(), b12.data());
      dl.comm.send(0, kTagB12, encode_matrix(b12));
    }

    // Telescope P^ for the next level up (skip at the root, which has
    // no parent coupling): every rank updates its local rows with the
    // broadcast T = Z^-1 P'.
    if (li > 0) {
      std::vector<double> traw =
          dl.comm.rank() == 0 ? encode_matrix(tsolve) : std::vector<double>{};
      dl.comm.bcast(traw, 0);
      Matrix tmat = decode_matrix(traw);  // (s_l+s_r) x s_node.
      const index_t off = dl.is_left ? 0 : dl.s_l;
      const index_t rows = dl.is_left ? dl.s_l : dl.s_r;
      Matrix tmine = tmat.block(off, 0, rows, tmat.cols());
      phat_local = la::matmul(dl.phat_child_local, tmine);
    }
  }

  factor_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Agree on the guardrail outcome while we are still collectively in
  // the factorization (a rank whose leaves needed a diagonal shift must
  // be visible to every rank's factor_status()).
  factor_status_ = allreduce_factor_status(ft_.factor_status(), comm_);
}

std::vector<double> DistributedSolver::solve_impl(std::span<const double> u) {
  obs::ScopedTimer t_dist("dist.solve");

  // Local slice in tree order.
  const std::vector<double> ut = h_->to_tree_order(u);
  std::vector<double> w(ut.begin() + local_begin_, ut.begin() + local_end_);

  // Local solve (Algorithm II.3 on the owned subtree).
  {
    obs::ScopedTimer t_local("local_solve");
    ft_.solve_subtree(local_root_, w);
  }

  // Distributed corrections, bottom-up (Algorithm II.5).
  std::vector<index_t> local_pts(static_cast<size_t>(local_end_ -
                                                     local_begin_));
  std::iota(local_pts.begin(), local_pts.end(), local_begin_);

  for (int li = logp_ - 1; li >= 0; --li) {
    obs::ScopedTimer t_level("dist.level");
    const DistLevel& dl = dist_[static_cast<size_t>(li)];
    const int q = dl.comm.size();
    const bool root_of_half = dl.half_comm.rank() == 0;

    // t_sib = K(sibling~, {x}_i) w_i, reduced over my half: the left
    // half produces t_r~ = K(r~, X_l) w_l and vice versa.
    std::vector<double> tpart(dl.sib_skel.size(), 0.0);
    kernel::gsks_apply(h_->km(), dl.sib_skel, local_pts, w, tpart);
    dl.half_comm.reduce_sum(tpart, 0);

    // Assemble [t_l~; t_r~] on comm rank 0, solve with Z, and return the
    // halves: z_l~ broadcast in the left half, z_r~ in the right half.
    std::vector<double> zmine;
    if (dl.comm.rank() == 0) {
      std::vector<double> t_r = tpart;  // Left half reduced t_r~ here.
      std::vector<double> t_l = dl.comm.recv(q / 2, kTagTl);
      std::vector<double> rhs;
      rhs.reserve(t_l.size() + t_r.size());
      rhs.insert(rhs.end(), t_l.begin(), t_l.end());
      rhs.insert(rhs.end(), t_r.begin(), t_r.end());
      la::lu_solve(dl.z_lu, rhs);
      std::vector<double> z_l(rhs.begin(), rhs.begin() + dl.s_l);
      std::vector<double> z_r(rhs.begin() + dl.s_l, rhs.end());
      dl.comm.send(q / 2, kTagZr, z_r);
      zmine = std::move(z_l);
    } else if (root_of_half && !dl.is_left) {
      dl.comm.send(0, kTagTl, tpart);
      zmine = dl.comm.recv(0, kTagZr);
    }
    dl.half_comm.bcast(zmine, 0);

    // w_i -= (local rows of P^_child) z_child~.
    la::gemv(la::Trans::No, -1.0, dl.phat_child_local, zmine, 1.0, w);
  }

  // Assemble the full solution on every rank: ranks are ordered by
  // point range, so a rank-ordered allgather is the tree-order vector.
  std::vector<double> full_tree = comm_.allgatherv(w);
  return h_->from_tree_order(full_tree);
}

std::vector<double> DistributedSolver::solve(std::span<const double> u) {
  if (static_cast<index_t>(u.size()) != h_->n())
    throw std::invalid_argument("DistributedSolver::solve: size mismatch");

  std::vector<double> x = solve_impl(u);

  // Guardrail summary. No extra collectives: u is replicated, the full
  // solution was just allgathered, and factor_status_ was agreed during
  // factorization — every rank derives the identical status.
  SolveStatus st;
  st.lambda_effective = factor_status_.lambda_effective;
  st.shifted_nodes = factor_status_.shifted_nodes;
  if (!all_finite(u)) {
    st.code = SolveCode::NonFinite;
    st.detail = "right-hand side contains NaN/Inf";
  } else if (!all_finite(std::span<const double>(x.data(), x.size()))) {
    st.code = SolveCode::NonFinite;
    st.detail = factor_status_.code == FactorCode::NonFinite
                    ? "solution contains NaN/Inf (factorization was "
                      "already non-finite)"
                    : "solution contains NaN/Inf";
  } else {
    st.residual = h_->relative_residual(x, u, ft_.options().lambda);
    if (factor_status_.code == FactorCode::ShiftedDiagonal)
      st.code = SolveCode::ShiftedDiagonal;
  }

  // Certification ladder (collective): u and x are replicated, so every
  // rank takes the identical refine/escalate decisions and the
  // correction solves below stay collective Algorithm II.5 passes. Only
  // rank 0 emits the verify.*/refine.* keys (one count per event).
  const VerifyPolicy& vp = ft_.options().verify;
  const bool insample = vp.enabled() && should_verify(vp, verify_seq_++);
  if (insample && st.code != SolveCode::NonFinite) {
    VerifyOps ops;
    ops.emit_obs = comm_.rank() == 0;
    const double lambda = ft_.options().lambda;
    const VerifyPolicy::Operator vop = vp.op;
    ops.apply = [this, lambda, vop](std::span<const double> in,
                                    std::span<double> y) {
      if (vop == VerifyPolicy::Operator::Treecode)
        h_->apply_source(in, y, lambda);
      else
        h_->apply(in, y, lambda);
    };
    ops.solve = [this](std::span<const double> in, std::span<double> y) {
      const std::vector<double> q = solve_impl(in);
      std::copy(q.begin(), q.end(), y.begin());
    };
    const VerifyOutcome vo = certify_and_refine_ops(ops, u, x, vp);
    st.residual = vo.residual;
    st.escalations += vo.escalations;
    if (!vo.certified) {
      st.code = SolveCode::NotConverged;
      st.detail = "certified residual misses the verify target after the "
                  "escalation ladder";
    } else if (vo.escalations > 0) {
      st.code = SolveCode::Escalated;
    }
  }
  last_status_ = st;
  return x;
}

Matrix gather_tree_order_block(const HMatrix& h, int p,
                               std::span<const double> gathered,
                               index_t nrhs) {
  const auto& t = h.tree();
  int logp = 0;
  while ((1 << logp) < p) ++logp;
  std::vector<index_t> owners = t.levels()[static_cast<size_t>(logp)];
  std::sort(owners.begin(), owners.end(), [&](index_t a, index_t b) {
    return t.node(a).begin < t.node(b).begin;
  });
  Matrix full(h.n(), nrhs);
  size_t off = 0;
  for (index_t node : owners) {
    const tree::Node& nd = t.node(node);
    const index_t nr = nd.size();
    for (index_t j = 0; j < nrhs; ++j)
      std::copy(gathered.begin() + static_cast<std::ptrdiff_t>(off) + j * nr,
                gathered.begin() + static_cast<std::ptrdiff_t>(off) +
                    (j + 1) * nr,
                full.col(j) + nd.begin);
    off += static_cast<size_t>(nr) * static_cast<size_t>(nrhs);
  }
  return full;
}

Matrix DistributedSolver::solve_impl(const Matrix& u) {
  const index_t n = h_->n();
  obs::ScopedTimer t_dist("dist.solve");
  const index_t nrhs = u.cols();
  const index_t nloc = local_end_ - local_begin_;

  // Local slice of every column, in tree order.
  Matrix w(nloc, nrhs);
  for (index_t j = 0; j < nrhs; ++j) {
    const std::vector<double> ut = h_->to_tree_order(
        std::span<const double>(u.col(j), static_cast<size_t>(n)));
    std::copy(ut.begin() + local_begin_, ut.begin() + local_end_, w.col(j));
  }

  // Local block solve (Algorithm II.3 on the owned subtree, in place).
  {
    obs::ScopedTimer t_local("local_solve");
    ft_.solve_subtree(local_root_, w);
  }

  std::vector<index_t> local_pts(static_cast<size_t>(nloc));
  std::iota(local_pts.begin(), local_pts.end(), local_begin_);

  // Distributed corrections, bottom-up (Algorithm II.5), with every
  // level's messages carrying the whole [s x B] panel at once.
  for (int li = logp_ - 1; li >= 0; --li) {
    obs::ScopedTimer t_level("dist.level");
    const DistLevel& dl = dist_[static_cast<size_t>(li)];
    const int q = dl.comm.size();
    const bool root_of_half = dl.half_comm.rank() == 0;
    const index_t s_sib = static_cast<index_t>(dl.sib_skel.size());

    // T_sib = K(sibling~, {x}_i) W_i, fused over the block, reduced
    // over my half (flattened column-major: ld == rows for Matrix).
    Matrix tpart(s_sib, nrhs);
    kernel::gsks_apply_block(h_->km(), dl.sib_skel, local_pts,
                             la::ConstMatrixView(w), la::MatrixView(tpart),
                             1.0);
    std::vector<double> tflat(tpart.data(), tpart.data() + tpart.size());
    dl.half_comm.reduce_sum(tflat, 0);

    // Assemble [T_l~; T_r~] on comm rank 0, block-solve with Z, ship
    // the halves back.
    std::vector<double> zflat;
    if (dl.comm.rank() == 0) {
      const std::vector<double> t_l = dl.comm.recv(q / 2, kTagTl);
      Matrix rhs(dl.s_l + dl.s_r, nrhs);
      for (index_t j = 0; j < nrhs; ++j) {
        std::copy(t_l.begin() + j * dl.s_l, t_l.begin() + (j + 1) * dl.s_l,
                  rhs.col(j));
        std::copy(tflat.begin() + j * dl.s_r,
                  tflat.begin() + (j + 1) * dl.s_r, rhs.col(j) + dl.s_l);
      }
      la::lu_solve(dl.z_lu, rhs);
      std::vector<double> z_r(static_cast<size_t>(dl.s_r) *
                              static_cast<size_t>(nrhs));
      zflat.resize(static_cast<size_t>(dl.s_l) * static_cast<size_t>(nrhs));
      for (index_t j = 0; j < nrhs; ++j) {
        std::copy(rhs.col(j), rhs.col(j) + dl.s_l,
                  zflat.begin() + j * dl.s_l);
        std::copy(rhs.col(j) + dl.s_l, rhs.col(j) + dl.s_l + dl.s_r,
                  z_r.begin() + j * dl.s_r);
      }
      dl.comm.send(q / 2, kTagZr, z_r);
    } else if (root_of_half && !dl.is_left) {
      dl.comm.send(0, kTagTl, tflat);
      zflat = dl.comm.recv(0, kTagZr);
    }
    dl.half_comm.bcast(zflat, 0);

    // W_i -= (local rows of P^_child) Z_child~: one GEMM per level for
    // the whole batch.
    const index_t smine = static_cast<index_t>(dl.own_skel.size());
    la::gemm(-1.0, la::ConstMatrixView(dl.phat_child_local),
             la::ConstMatrixView(zflat.data(), smine, nrhs, smine), 1.0,
             la::MatrixView(w));
  }

  // Assemble the full solution on every rank and undo the permutation.
  const std::vector<double> wflat(w.data(), w.data() + w.size());
  const std::vector<double> gathered = comm_.allgatherv(wflat);
  Matrix x = gather_tree_order_block(*h_, comm_.size(), gathered, nrhs);
  for (index_t j = 0; j < nrhs; ++j) {
    const std::vector<double> xo = h_->from_tree_order(
        std::span<const double>(x.col(j), static_cast<size_t>(n)));
    std::copy(xo.begin(), xo.end(), x.col(j));
  }
  return x;
}

Matrix DistributedSolver::solve(const Matrix& u) {
  const index_t n = h_->n();
  if (u.rows() != n)
    throw std::invalid_argument(
        "DistributedSolver::solve: block shape mismatch");
  const index_t nrhs = u.cols();
  Matrix x = solve_impl(u);

  // Guardrail summary over the whole batch: worst column wins.
  SolveStatus st;
  st.lambda_effective = factor_status_.lambda_effective;
  st.shifted_nodes = factor_status_.shifted_nodes;
  st.residual = 0.0;
  for (index_t j = 0; j < nrhs && st.code == SolveCode::Ok; ++j) {
    const std::span<const double> uc(u.col(j), static_cast<size_t>(n));
    const std::span<const double> xc(x.col(j), static_cast<size_t>(n));
    if (!all_finite(uc)) {
      st.code = SolveCode::NonFinite;
      st.detail = "right-hand side contains NaN/Inf";
    } else if (!all_finite(xc)) {
      st.code = SolveCode::NonFinite;
      st.detail = "solution contains NaN/Inf";
    } else {
      st.residual = std::max(
          st.residual,
          h_->relative_residual(xc, uc, ft_.options().lambda));
    }
  }
  if (st.code == SolveCode::Ok &&
      factor_status_.code == FactorCode::ShiftedDiagonal)
    st.code = SolveCode::ShiftedDiagonal;

  // Collective certification ladder over the batch: only failing
  // columns are refined (one narrow blocked Algorithm II.5 correction
  // per step), per replicated per-column decisions on every rank.
  const VerifyPolicy& vp = ft_.options().verify;
  const bool insample = vp.enabled() && should_verify(vp, verify_seq_++);
  if (insample && st.code != SolveCode::NonFinite) {
    VerifyOps ops;
    ops.emit_obs = comm_.rank() == 0;
    const double lambda = ft_.options().lambda;
    const VerifyPolicy::Operator vop = vp.op;
    ops.apply = [this, lambda, vop](std::span<const double> in,
                                    std::span<double> y) {
      if (vop == VerifyPolicy::Operator::Treecode)
        h_->apply_source(in, y, lambda);
      else
        h_->apply(in, y, lambda);
    };
    ops.solve = [this](std::span<const double> in, std::span<double> y) {
      const std::vector<double> q = solve_impl(in);
      std::copy(q.begin(), q.end(), y.begin());
    };
    ops.solve_block = [this](const Matrix& rhs) { return solve_impl(rhs); };
    const std::vector<VerifyOutcome> vos =
        certify_and_refine_block_ops(ops, u, x, vp);
    st.residual = 0.0;
    bool uncertified = false;
    int escalations = 0;
    for (const VerifyOutcome& vo : vos) {
      st.residual = std::max(st.residual, vo.residual);
      uncertified = uncertified || !vo.certified;
      escalations += vo.escalations;
    }
    st.escalations += escalations;
    if (uncertified) {
      st.code = SolveCode::NotConverged;
      st.detail = "certified residual misses the verify target after the "
                  "escalation ladder";
    } else if (escalations > 0) {
      st.code = SolveCode::Escalated;
    }
  }
  last_status_ = st;
  return x;
}

}  // namespace fdks::core
