// Distributed-memory factorization and solve (Algorithms II.4 / II.5)
// over the mpisim message-passing runtime.
//
// Ownership follows the paper (Figure 1): with p ranks (a power of two),
// the top log2(p) tree levels are "distributed" nodes shared by ranks;
// each rank exclusively owns the subtree rooted at its level-log2(p)
// node and factorizes it locally with the sequential Algorithm II.2.
// For each distributed ancestor, ranks exchange child skeletons between
// the group roots {0} and {q/2}, reduce their local contributions
// K(sibling~, {x}_i) P^_{x_i} to assemble the reduced system Z on {0},
// LU-factorize it there, and broadcast the telescoping solve so every
// rank updates its local rows of P^ — point data {x}_i never leaves its
// owner.
//
// Setup note (documented in DESIGN.md): the tree and skeletons are built
// deterministically and replicated on every rank; the *factorization*
// and *solve* state is fully distributed and all cross-rank data flow
// goes through mpisim messages, which is the part Algorithms II.4/II.5
// specify.
#pragma once

#include "core/factor_tree.hpp"
#include "mpisim/runtime.hpp"

#include <vector>

namespace fdks::core {

class DistributedSolver {
 public:
  /// Construct inside a rank; collective over comm (factorizes).
  /// comm.size() must be a power of two and the tree must have a
  /// complete level log2(p).
  DistributedSolver(const HMatrix& h, SolverOptions opts, mpisim::Comm comm);

  /// Collective solve of (lambda I + K~) x = u. u must be identical on
  /// all ranks (original point order); returns the full solution on
  /// every rank. When SolverOptions::verify is enabled, the certified
  /// residual is checked afterwards and the refinement/escalation
  /// ladder (core/verify.hpp) runs collectively: u and x are replicated,
  /// so every rank reaches the identical per-step decision and the
  /// correction solves remain collective Algorithm II.5 passes.
  std::vector<double> solve(std::span<const double> u);

  /// Collective block solve for B right-hand sides (columns of u,
  /// identical on all ranks). One batched pass of Algorithm II.5:
  /// local block subtree solves, per-level corrections as fused block
  /// kernel sweeps and batched P^ GEMMs, and level messages carrying
  /// [s x B] panels instead of B separate vectors — B-fold fewer
  /// messages and factor sweeps than B scalar solves.
  Matrix solve(const Matrix& u);

  index_t local_root() const { return local_root_; }
  double factor_seconds() const { return factor_seconds_; }
  const StabilityReport& local_stability() const { return ft_.stability(); }

  /// Globally-agreed factorization outcome: every rank's local guardrail
  /// counters (shift retries, NaN detections) are combined during the
  /// collective factorization, so all ranks return the same status.
  const FactorStatus& factor_status() const { return factor_status_; }

  /// Outcome of the most recent solve() (identical on every rank: the
  /// degradation summary is exchanged collectively and the residual is
  /// computed from replicated data).
  const SolveStatus& last_status() const { return last_status_; }

 private:
  struct DistLevel {
    index_t node = -1;            ///< Distributed ancestor node id.
    mpisim::Comm comm;            ///< Communicator spanning the node.
    mpisim::Comm half_comm;       ///< My child's half of comm.
    bool is_left = false;         ///< Which child my rank belongs to.
    std::vector<index_t> own_skel;  ///< My child's effective skeleton.
    std::vector<index_t> sib_skel;  ///< Sibling skeleton (via messages).
    index_t s_l = 0, s_r = 0;     ///< Child skeleton sizes.
    la::LuFactor z_lu;            ///< Reduced system; rank 0 of comm only.
    Matrix phat_child_local;      ///< Local rows of P^_child (the W rows
                                  ///< this rank owns at this node).
  };

  void factorize();
  /// One Algorithm II.5 pass (local subtree solve + per-level
  /// corrections + allgather), without status/verification bookkeeping.
  std::vector<double> solve_impl(std::span<const double> u);
  Matrix solve_impl(const Matrix& u);

  const HMatrix* h_;
  FactorTree ft_;
  mpisim::Comm comm_;
  int logp_ = 0;
  index_t local_root_ = -1;
  index_t local_begin_ = 0, local_end_ = 0;
  /// Distributed ancestors from the root (index 0, level 0) downward.
  std::vector<DistLevel> dist_;
  double factor_seconds_ = 0.0;
  FactorStatus factor_status_;
  SolveStatus last_status_;
  std::uint64_t verify_seq_ = 0;  ///< Sampling counter (replicated).
};

/// Combine per-rank FactorStatus snapshots into one global status every
/// rank agrees on (sums the node counters, maxes the shift). Collective
/// over comm; shared by DistributedSolver and DistributedHybridSolver.
FactorStatus allreduce_factor_status(const FactorStatus& local,
                                     const mpisim::Comm& comm);

/// Reassemble a full tree-order [n x B] block from an allgatherv of
/// per-rank flattened column-major local blocks (rank r contributes its
/// level-log2(p) node's rows). Shared by both distributed solvers'
/// block solves.
Matrix gather_tree_order_block(const HMatrix& h, int p,
                               std::span<const double> gathered,
                               index_t nrhs);

}  // namespace fdks::core
