// FastDirectSolver driver: full-tree factorization (telescoped or the
// [36] subtree baseline, selected by SolverOptions::algo) plus the
// original-order solve wrappers.
#include "core/solver.hpp"

#include "ckpt/checkpoint.hpp"
#include "core/verify.hpp"
#include "obs/obs.hpp"

#include <algorithm>
#include <string>
#include <vector>

namespace fdks::core {

namespace {

// The root needs no P^ of its own (it has no parent coupling). When
// task parallelism is requested, open the parallel region here so the
// factorization's OpenMP tasks have a team to run on.
void run_factorize(FactorTree& ft, index_t root, bool parallel_tree) {
  if (ft.options().levelwise) {
    ft.factorize_subtree_levelwise(root, /*compute_phat=*/false);
  } else if (parallel_tree) {
#ifdef _OPENMP
#pragma omp parallel
#pragma omp single
#endif
    ft.factorize_subtree(root, /*compute_phat=*/false);
  } else {
    ft.factorize_subtree(root, /*compute_phat=*/false);
  }
}

/// Checkpoint-aware factorization: resume from a valid checkpoint when
/// one matches (same points/kernel/config/options/lambda — the
/// fingerprint guards all of it), otherwise factorize and persist. The
/// sequential full-tree factorization uses scope "seq".
void run_factorize_ckpt(FactorTree& ft, index_t root, bool parallel_tree) {
  const SolverOptions& opts = ft.options();
  if (opts.checkpoint_dir.empty()) {
    run_factorize(ft, root, parallel_tree);
    return;
  }
  ckpt::ensure_dir(opts.checkpoint_dir);
  const std::string path =
      ckpt::join(opts.checkpoint_dir, "factors_seq.ckpt");
  const index_t roots[] = {root};
  std::string diag;
  if (ckpt::try_load_factor_tree(path, ft, roots, "seq", &diag)) return;
  run_factorize(ft, root, parallel_tree);
  ckpt::save_factor_tree(path, ft, roots, "seq");
}

}  // namespace

FastDirectSolver::FastDirectSolver(const HMatrix& h, SolverOptions opts)
    : ft_(h, opts) {
  obs::ScopedTimer t("factorize");
  run_factorize_ckpt(ft_, h.tree().root(), opts.parallel_tree);
  factor_seconds_ = t.stop();
  sealed_checksum_ = ft_.content_checksum();
}

void FastDirectSolver::refactorize(double lambda) {
  obs::ScopedTimer t("factorize");
  ft_.set_lambda(lambda);
  run_factorize_ckpt(ft_, ft_.hmatrix().tree().root(),
                     ft_.options().parallel_tree);
  factor_seconds_ = t.stop();
  sealed_checksum_ = ft_.content_checksum();
}

bool FastDirectSolver::verify_integrity() const {
  obs::add("verify.integrity_check");
  if (ft_.content_checksum() == sealed_checksum_) return true;
  obs::add("verify.integrity_fail");
  return false;
}

VerifyOutcome FastDirectSolver::solve_verified(std::span<const double> u,
                                               std::span<double> x,
                                               std::uint64_t solve_index,
                                               const CancelToken* cancel)
    const {
  solve(u, x, cancel);
  return certify_and_refine(*this, u, x, ft_.options().verify, solve_index,
                            cancel);
}

void FastDirectSolver::solve(std::span<const double> u, std::span<double> x,
                             const CancelToken* cancel) const {
  obs::ScopedTimer t("solve");
  const HMatrix& h = ft_.hmatrix();
  std::vector<double> ut = h.to_tree_order(u);
  ft_.solve_subtree(h.tree().root(), std::span<double>(ut), cancel);
  std::vector<double> xo = h.from_tree_order(ut);
  std::copy(xo.begin(), xo.end(), x.begin());
}

std::vector<double> FastDirectSolver::solve(std::span<const double> u,
                                            const CancelToken* cancel) const {
  std::vector<double> x(u.size());
  solve(u, x, cancel);
  return x;
}

Matrix FastDirectSolver::solve(const Matrix& u,
                               const CancelToken* cancel) const {
  // One batched telescoping solve over all B columns: permute the block
  // into tree order, run the in-place block solve_subtree (factors are
  // streamed once for the whole batch), permute back. Only the O(N B)
  // permutations stay per-column.
  obs::ScopedTimer t("solve");
  const HMatrix& h = ft_.hmatrix();
  const index_t n = u.rows();
  Matrix x(n, u.cols());
  for (index_t j = 0; j < u.cols(); ++j) {
    std::vector<double> ut = h.to_tree_order(
        std::span<const double>(u.col(j), static_cast<size_t>(n)));
    std::copy(ut.begin(), ut.end(), x.col(j));
  }
  ft_.solve_subtree(h.tree().root(), x, cancel);
  for (index_t j = 0; j < x.cols(); ++j) {
    std::vector<double> xo = h.from_tree_order(
        std::span<const double>(x.col(j), static_cast<size_t>(n)));
    std::copy(xo.begin(), xo.end(), x.col(j));
  }
  return x;
}

SolveStatus FastDirectSolver::solve_checked(std::span<const double> u,
                                            std::span<double> x) const {
  SolveStatus st;
  const FactorStatus fs = ft_.factor_status();
  st.lambda_effective = fs.lambda_effective;
  st.shifted_nodes = fs.shifted_nodes;
  if (!all_finite(u)) {
    st.code = SolveCode::NonFinite;
    st.detail = "right-hand side contains NaN/Inf";
    obs::add("guardrail.nonfinite_rhs");
    return st;
  }
  solve(u, x);
  if (!all_finite(x)) {
    st.code = SolveCode::NonFinite;
    st.detail = fs.code == FactorCode::NonFinite
                    ? "solution contains NaN/Inf (factorization was "
                      "already non-finite)"
                    : "solution contains NaN/Inf";
    return st;
  }
  st.residual =
      ft_.hmatrix().relative_residual(x, u, ft_.options().lambda);
  if (fs.code == FactorCode::ShiftedDiagonal) {
    st.code = SolveCode::ShiftedDiagonal;
  }
  return st;
}

size_t FastDirectSolver::factor_bytes() const {
  return ft_.subtree_bytes(ft_.hmatrix().tree().root());
}

}  // namespace fdks::core
