// Ball tree over a point set (Omohundro-style), the geometric partitioner
// behind the hierarchical matrix ordering (§II-A).
//
// The tree recursively splits each node's points into two equal halves by
// the median of their projections onto the axis through an approximate
// farthest pair. The induced permutation makes every tree node a
// contiguous index range, so diagonal blocks of the (permuted) kernel
// matrix correspond exactly to nodes — the property the factorization
// relies on.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"

namespace fdks::tree {

using la::Matrix;
using la::index_t;

struct Node {
  index_t begin = 0;   ///< First position (in permuted order).
  index_t end = 0;     ///< One past the last position.
  index_t left = -1;   ///< Child node id, -1 for leaves.
  index_t right = -1;
  index_t parent = -1;
  int level = 0;       ///< Root is level 0.

  bool is_leaf() const { return left < 0; }
  index_t size() const { return end - begin; }
};

struct BallTreeConfig {
  index_t leaf_size = 64;  ///< m: split while size() > leaf_size.
  uint64_t seed = 1234;    ///< Seed for the farthest-pair start point.
};

class BallTree {
 public:
  /// Build from points (d-by-N, one point per column, original order).
  BallTree(const Matrix& points, BallTreeConfig cfg);

  /// Reconstruct a tree from its serialized parts (nodes + permutation);
  /// derived indexes (inverse permutation, level lists, depth) are
  /// rebuilt. Used by the HMatrix load path.
  BallTree(BallTreeConfig cfg, std::vector<Node> nodes,
           std::vector<index_t> perm);

  index_t n() const { return static_cast<index_t>(perm_.size()); }
  index_t root() const { return 0; }
  int depth() const { return depth_; }
  const BallTreeConfig& config() const { return cfg_; }

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(index_t id) const { return nodes_[static_cast<size_t>(id)]; }

  /// perm()[p] = original index of the point at permuted position p.
  const std::vector<index_t>& perm() const { return perm_; }
  /// inverse_perm()[orig] = permuted position of original point orig.
  const std::vector<index_t>& inverse_perm() const { return iperm_; }

  /// Node ids grouped by level (levels()[l] lists every node at level l);
  /// the level-by-level parallel traversals iterate these.
  const std::vector<std::vector<index_t>>& levels() const { return levels_; }

  /// Gather the points into permuted order (d-by-N).
  Matrix permuted_points(const Matrix& points_original) const;

  /// Id of the leaf containing permuted position p.
  index_t leaf_of(index_t p) const;

 private:
  void build(const Matrix& points);

  BallTreeConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<index_t> perm_;
  std::vector<index_t> iperm_;
  std::vector<std::vector<index_t>> levels_;
  int depth_ = 0;
};

}  // namespace fdks::tree
