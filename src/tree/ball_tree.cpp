#include "tree/ball_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace fdks::tree {

namespace {

double sq_dist(const Matrix& x, index_t a, index_t b) {
  const index_t d = x.rows();
  const double* xa = x.col(a);
  const double* xb = x.col(b);
  double s = 0.0;
  for (index_t k = 0; k < d; ++k) {
    const double t = xa[k] - xb[k];
    s += t * t;
  }
  return s;
}

// Farthest point in idx[lo, hi) from the point with original index from.
index_t farthest_from(const Matrix& x, const std::vector<index_t>& idx,
                      index_t lo, index_t hi, index_t from) {
  index_t best = idx[static_cast<size_t>(lo)];
  double bestd = -1.0;
  for (index_t p = lo; p < hi; ++p) {
    const double dd = sq_dist(x, idx[static_cast<size_t>(p)], from);
    if (dd > bestd) {
      bestd = dd;
      best = idx[static_cast<size_t>(p)];
    }
  }
  return best;
}

}  // namespace

BallTree::BallTree(const Matrix& points, BallTreeConfig cfg) : cfg_(cfg) {
  if (cfg_.leaf_size < 1)
    throw std::invalid_argument("BallTree: leaf_size must be >= 1");
  if (points.cols() == 0)
    throw std::invalid_argument("BallTree: empty point set");
  obs::ScopedTimer t("tree");
  build(points);
}

BallTree::BallTree(BallTreeConfig cfg, std::vector<Node> nodes,
                   std::vector<index_t> perm)
    : cfg_(cfg), nodes_(std::move(nodes)), perm_(std::move(perm)) {
  if (nodes_.empty() || perm_.empty())
    throw std::invalid_argument("BallTree: empty serialized parts");
  const index_t n = static_cast<index_t>(perm_.size());
  if (nodes_.front().begin != 0 || nodes_.front().end != n)
    throw std::invalid_argument("BallTree: root range mismatch");
  iperm_.resize(static_cast<size_t>(n));
  for (index_t p = 0; p < n; ++p)
    iperm_[static_cast<size_t>(perm_[static_cast<size_t>(p)])] = p;
  depth_ = 0;
  for (const Node& nd : nodes_) depth_ = std::max(depth_, nd.level);
  levels_.assign(static_cast<size_t>(depth_ + 1), {});
  for (index_t id = 0; id < static_cast<index_t>(nodes_.size()); ++id)
    levels_[static_cast<size_t>(nodes_[static_cast<size_t>(id)].level)]
        .push_back(id);
}

void BallTree::build(const Matrix& x) {
  const index_t n = x.cols();
  const index_t d = x.rows();
  perm_.resize(static_cast<size_t>(n));
  std::iota(perm_.begin(), perm_.end(), index_t{0});

  std::mt19937_64 rng(cfg_.seed);

  // Iterative splitting with an explicit work stack; nodes are appended
  // in creation order so children always have larger ids than parents.
  nodes_.clear();
  nodes_.push_back(Node{0, n, -1, -1, -1, 0});
  std::vector<index_t> stack = {0};
  std::vector<double> proj(static_cast<size_t>(n));

  while (!stack.empty()) {
    const index_t id = stack.back();
    stack.pop_back();
    Node nd = nodes_[static_cast<size_t>(id)];
    if (nd.size() <= cfg_.leaf_size) continue;

    // Approximate farthest pair: random anchor -> farthest p1 -> farthest
    // p2 from p1. The splitting hyperplane is normal to x(p2) - x(p1).
    std::uniform_int_distribution<index_t> pick(nd.begin, nd.end - 1);
    const index_t anchor = perm_[static_cast<size_t>(pick(rng))];
    const index_t p1 = farthest_from(x, perm_, nd.begin, nd.end, anchor);
    const index_t p2 = farthest_from(x, perm_, nd.begin, nd.end, p1);

    std::vector<double> w(static_cast<size_t>(d));
    double wnorm = 0.0;
    for (index_t k = 0; k < d; ++k) {
      w[static_cast<size_t>(k)] = x(k, p2) - x(k, p1);
      wnorm += w[static_cast<size_t>(k)] * w[static_cast<size_t>(k)];
    }
    if (wnorm == 0.0) {
      // All points coincide along the found pair (e.g. duplicates):
      // fall back to an arbitrary but deterministic direction.
      std::normal_distribution<double> g(0.0, 1.0);
      for (auto& v : w) v = g(rng);
    }

    for (index_t p = nd.begin; p < nd.end; ++p) {
      const double* xp = x.col(perm_[static_cast<size_t>(p)]);
      double s = 0.0;
      for (index_t k = 0; k < d; ++k) s += w[static_cast<size_t>(k)] * xp[k];
      proj[static_cast<size_t>(p)] = s;
    }

    // Median split into equal halves (paper: children hold an equal
    // number of points). nth_element on the projection values, permuting
    // perm_ in lockstep via an index sort of the subrange.
    const index_t mid = nd.begin + nd.size() / 2;
    std::vector<index_t> order(static_cast<size_t>(nd.size()));
    std::iota(order.begin(), order.end(), nd.begin);
    std::nth_element(order.begin(), order.begin() + (mid - nd.begin),
                     order.end(), [&](index_t a, index_t b) {
                       return proj[static_cast<size_t>(a)] <
                              proj[static_cast<size_t>(b)];
                     });
    std::vector<index_t> newperm(static_cast<size_t>(nd.size()));
    for (index_t p = 0; p < nd.size(); ++p)
      newperm[static_cast<size_t>(p)] =
          perm_[static_cast<size_t>(order[static_cast<size_t>(p)])];
    std::copy(newperm.begin(), newperm.end(),
              perm_.begin() + nd.begin);

    const index_t lid = static_cast<index_t>(nodes_.size());
    nodes_.push_back(Node{nd.begin, mid, -1, -1, id, nd.level + 1});
    const index_t rid = static_cast<index_t>(nodes_.size());
    nodes_.push_back(Node{mid, nd.end, -1, -1, id, nd.level + 1});
    nodes_[static_cast<size_t>(id)].left = lid;
    nodes_[static_cast<size_t>(id)].right = rid;
    stack.push_back(lid);
    stack.push_back(rid);
  }

  // Inverse permutation and level index.
  iperm_.resize(static_cast<size_t>(n));
  for (index_t p = 0; p < n; ++p)
    iperm_[static_cast<size_t>(perm_[static_cast<size_t>(p)])] = p;

  depth_ = 0;
  for (const Node& nd : nodes_) depth_ = std::max(depth_, nd.level);
  levels_.assign(static_cast<size_t>(depth_ + 1), {});
  for (index_t id = 0; id < static_cast<index_t>(nodes_.size()); ++id)
    levels_[static_cast<size_t>(nodes_[static_cast<size_t>(id)].level)]
        .push_back(id);
}

Matrix BallTree::permuted_points(const Matrix& x) const {
  if (x.cols() != n())
    throw std::invalid_argument("permuted_points: point count mismatch");
  Matrix out(x.rows(), x.cols());
  for (index_t p = 0; p < n(); ++p) {
    const double* src = x.col(perm_[static_cast<size_t>(p)]);
    double* dst = out.col(p);
    for (index_t k = 0; k < x.rows(); ++k) dst[k] = src[k];
  }
  return out;
}

index_t BallTree::leaf_of(index_t p) const {
  index_t id = root();
  while (!nodes_[static_cast<size_t>(id)].is_leaf()) {
    const Node& nd = nodes_[static_cast<size_t>(id)];
    const Node& l = nodes_[static_cast<size_t>(nd.left)];
    id = (p < l.end) ? nd.left : nd.right;
  }
  return id;
}

}  // namespace fdks::tree
