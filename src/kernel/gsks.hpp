// GSKS-style fused kernel summation (§II-D).
//
// Computes y += alpha * K(rows, cols) * u without ever materializing the
// |rows|-by-|cols| kernel block: the block is produced tile-by-tile from
// a rank-d update (Gram tile), the kernel function is applied while the
// tile is hot in cache, and the tile is immediately reduced against u.
// Memory traffic is O(|rows| d + |cols| d) instead of O(|rows||cols|),
// which is the entire point of GSKS — the paper implements the same
// fusion with AVX2/AVX-512 micro-kernels; here the tile loops are plain
// C++ left to the auto-vectorizer, preserving the traffic asymmetry that
// Table I and Table IV measure.
#pragma once

#include <span>

#include "kernel/kernel_matrix.hpp"

namespace fdks::kernel {

/// y += alpha * K(rows, cols) * u. Sizes: |y| = |rows|, |u| = |cols|.
void gsks_apply(const KernelMatrix& km, std::span<const index_t> rows,
                std::span<const index_t> cols, std::span<const double> u,
                std::span<double> y, double alpha = 1.0);

/// y += alpha * K(rows, cols)^T * u. Sizes: |y| = |cols|, |u| = |rows|.
void gsks_apply_trans(const KernelMatrix& km, std::span<const index_t> rows,
                      std::span<const index_t> cols,
                      std::span<const double> u, std::span<double> y,
                      double alpha = 1.0);

/// Y += alpha * K(rows, cols) * U for a block of right-hand sides,
/// fused over the whole block: each kernel tile is evaluated ONCE and
/// multiplied against all B columns as a GEMM, so the per-apply kernel
/// evaluation cost is amortized B-fold relative to B vector applies
/// (the batching win of the multi-RHS serving path). Shapes:
/// U = |cols| x B, Y = |rows| x B.
void gsks_apply_block(const KernelMatrix& km, std::span<const index_t> rows,
                      std::span<const index_t> cols, la::ConstMatrixView u,
                      la::MatrixView y, double alpha = 1.0);

}  // namespace fdks::kernel
