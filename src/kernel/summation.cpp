#include "kernel/summation.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "la/gemm.hpp"

namespace fdks::kernel {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::StoredGemv:
      return "GEMV";
    case Scheme::ReevalGemm:
      return "GEMM";
    case Scheme::Gsks:
      return "GSKS";
  }
  return "?";
}

KernelBlockOp::KernelBlockOp(const KernelMatrix* km,
                             std::vector<index_t> rows,
                             std::vector<index_t> cols, Scheme scheme)
    : km_(km), rows_(std::move(rows)), cols_(std::move(cols)),
      scheme_(scheme) {
  if (scheme_ == Scheme::StoredGemv) stored_ = km_->block(rows_, cols_);
}

KernelBlockOp::KernelBlockOp(const KernelMatrix* km,
                             std::vector<index_t> rows,
                             std::vector<index_t> cols, Scheme scheme,
                             Matrix stored)
    : km_(km), rows_(std::move(rows)), cols_(std::move(cols)),
      scheme_(scheme), stored_(std::move(stored)) {
  if (scheme_ == Scheme::StoredGemv &&
      (stored_.rows() != this->rows() || stored_.cols() != this->cols()))
    stored_ = km_->block(rows_, cols_);
}

void KernelBlockOp::apply(std::span<const double> u, std::span<double> y,
                          double alpha, double beta) const {
  if (static_cast<index_t>(u.size()) != cols() ||
      static_cast<index_t>(y.size()) != rows())
    throw std::invalid_argument("KernelBlockOp::apply: size mismatch");
  switch (scheme_) {
    case Scheme::StoredGemv:
      la::gemv(la::Trans::No, alpha, stored_, u, beta, y);
      return;
    case Scheme::ReevalGemm: {
      const Matrix block = km_->block(rows_, cols_);
      la::gemv(la::Trans::No, alpha, block, u, beta, y);
      return;
    }
    case Scheme::Gsks: {
      if (beta != 1.0)
        for (auto& v : y) v = (beta == 0.0) ? 0.0 : beta * v;
      gsks_apply(*km_, rows_, cols_, u, y, alpha);
      return;
    }
  }
}

void KernelBlockOp::apply_trans(std::span<const double> u,
                                std::span<double> y, double alpha,
                                double beta) const {
  if (static_cast<index_t>(u.size()) != rows() ||
      static_cast<index_t>(y.size()) != cols())
    throw std::invalid_argument("KernelBlockOp::apply_trans: size mismatch");
  switch (scheme_) {
    case Scheme::StoredGemv:
      la::gemv(la::Trans::Yes, alpha, stored_, u, beta, y);
      return;
    case Scheme::ReevalGemm: {
      const Matrix block = km_->block(rows_, cols_);
      la::gemv(la::Trans::Yes, alpha, block, u, beta, y);
      return;
    }
    case Scheme::Gsks: {
      if (beta != 1.0)
        for (auto& v : y) v = (beta == 0.0) ? 0.0 : beta * v;
      gsks_apply_trans(*km_, rows_, cols_, u, y, alpha);
      return;
    }
  }
}

void KernelBlockOp::apply_block(la::ConstMatrixView u, la::MatrixView y,
                                double alpha, double beta) const {
  if (u.rows() != cols() || y.rows() != rows() || u.cols() != y.cols())
    throw std::invalid_argument("KernelBlockOp::apply_block: size mismatch");
  switch (scheme_) {
    case Scheme::StoredGemv:
      la::gemm(alpha, la::ConstMatrixView(stored_), u, beta, y);
      return;
    case Scheme::ReevalGemm: {
      // Materialize the block ONCE for the whole batch (the per-column
      // apply() path would re-evaluate it B times).
      const Matrix block = km_->block(rows_, cols_);
      la::gemm(alpha, la::ConstMatrixView(block), u, beta, y);
      return;
    }
    case Scheme::Gsks: {
      if (beta != 1.0)
        for (index_t j = 0; j < y.cols(); ++j) {
          double* yc = y.col(j);
          for (index_t i = 0; i < y.rows(); ++i)
            yc[i] = (beta == 0.0) ? 0.0 : beta * yc[i];
        }
      gsks_apply_block(*km_, rows_, cols_, u, y, alpha);
      return;
    }
  }
}

Matrix KernelBlockOp::apply_block(const Matrix& u) const {
  if (u.rows() != cols())
    throw std::invalid_argument("KernelBlockOp::apply_block: size mismatch");
  Matrix y(rows(), u.cols());
  apply_block(la::ConstMatrixView(u), la::MatrixView(y), 1.0, 0.0);
  return y;
}

Matrix KernelBlockOp::to_dense() const { return km_->block(rows_, cols_); }

size_t KernelBlockOp::stored_bytes() const {
  return static_cast<size_t>(stored_.size()) * sizeof(double);
}

}  // namespace fdks::kernel
