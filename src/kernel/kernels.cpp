#include "kernel/kernels.hpp"

#include <string>

namespace fdks::kernel {

std::string Kernel::name() const {
  switch (type) {
    case KernelType::Gaussian:
      return "gaussian(h=" + std::to_string(bandwidth) + ")";
    case KernelType::Laplacian:
      return "laplacian(h=" + std::to_string(bandwidth) + ")";
    case KernelType::Matern32:
      return "matern32(h=" + std::to_string(bandwidth) + ")";
    case KernelType::Polynomial:
      return "polynomial(p=" + std::to_string(degree) + ")";
  }
  return "unknown";
}

}  // namespace fdks::kernel
