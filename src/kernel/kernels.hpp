// Kernel functions K(x, y) on R^d.
//
// The paper's experiments use the Gaussian kernel; ASKIT itself has been
// applied to polynomial, Matern, and Laplacian kernels, so all four are
// provided. Every kernel is evaluated from the pair (x·y, |x|^2, |y|^2)
// so the tiled kernel-summation can produce a whole tile from one rank-d
// update (the GSKS trick of §II-D).
#pragma once

#include <algorithm>
#include <cmath>
#include <string>

namespace fdks::kernel {

enum class KernelType { Gaussian, Laplacian, Matern32, Polynomial };

/// Value-type kernel descriptor. Cheap to copy; everything downstream
/// takes it by value.
struct Kernel {
  KernelType type = KernelType::Gaussian;
  double bandwidth = 1.0;  ///< h for the radial kernels, scale for poly.
  double shift = 1.0;      ///< c in (x.y/h^2 + c)^p.
  int degree = 2;          ///< p for the polynomial kernel.

  /// Evaluate from the Gram triple. dist2 = |x|^2 + |y|^2 - 2 x.y is
  /// clamped at zero to absorb roundoff.
  double eval_gram(double xdoty, double xnorm2, double ynorm2) const {
    switch (type) {
      case KernelType::Gaussian: {
        const double d2 = std::max(0.0, xnorm2 + ynorm2 - 2.0 * xdoty);
        return std::exp(-0.5 * d2 / (bandwidth * bandwidth));
      }
      case KernelType::Laplacian: {
        const double d2 = std::max(0.0, xnorm2 + ynorm2 - 2.0 * xdoty);
        return std::exp(-std::sqrt(d2) / bandwidth);
      }
      case KernelType::Matern32: {
        const double d2 = std::max(0.0, xnorm2 + ynorm2 - 2.0 * xdoty);
        const double r = std::sqrt(3.0 * d2) / bandwidth;
        return (1.0 + r) * std::exp(-r);
      }
      case KernelType::Polynomial: {
        const double base = xdoty / (bandwidth * bandwidth) + shift;
        double acc = 1.0;
        for (int k = 0; k < degree; ++k) acc *= base;
        return acc;
      }
    }
    return 0.0;  // Unreachable.
  }

  /// Direct evaluation on two points of dimension d.
  double eval(const double* x, const double* y, long d) const {
    double xy = 0.0, xx = 0.0, yy = 0.0;
    for (long i = 0; i < d; ++i) {
      xy += x[i] * y[i];
      xx += x[i] * x[i];
      yy += y[i] * y[i];
    }
    return eval_gram(xy, xx, yy);
  }

  std::string name() const;

  // Named constructors for the common cases.
  static Kernel gaussian(double h) {
    return Kernel{KernelType::Gaussian, h, 0.0, 0};
  }
  static Kernel laplacian(double h) {
    return Kernel{KernelType::Laplacian, h, 0.0, 0};
  }
  static Kernel matern32(double h) {
    return Kernel{KernelType::Matern32, h, 0.0, 0};
  }
  static Kernel polynomial(double scale, double c, int p) {
    return Kernel{KernelType::Polynomial, scale, c, p};
  }
};

}  // namespace fdks::kernel
