#include "kernel/gsks.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "la/gemm.hpp"
#include "obs/obs.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fdks::kernel {

namespace {

// Tile sizes: the Gram tile (kTm x kTn doubles = 32 KiB) plus the two
// packed point panels stay L2-resident for the dimensions the paper
// sweeps (d <= 260).
constexpr index_t kTm = 64;
constexpr index_t kTn = 64;

// Pack points X(:, idx[i0..i0+m)) as an m-by-d row-panel so the Gram
// tile is one plain gemm_raw (no transposes).
void pack_points_rowmajor(const Matrix& x, std::span<const index_t> idx,
                          index_t i0, index_t m, double* dst) {
  const index_t d = x.rows();
  for (index_t k = 0; k < d; ++k)
    for (index_t i = 0; i < m; ++i)
      dst[i + k * m] = x(k, idx[i0 + i]);
}

// Pack points X(:, idx[j0..j0+n)) as a d-by-n column panel.
void pack_points_colmajor(const Matrix& x, std::span<const index_t> idx,
                          index_t j0, index_t n, double* dst) {
  const index_t d = x.rows();
  for (index_t j = 0; j < n; ++j) {
    const double* src = x.col(idx[j0 + j]);
    for (index_t k = 0; k < d; ++k) dst[k + j * d] = src[k];
  }
}

// One fused row-stripe: for rows [i0, i0+mi) of the logical block,
// sweep all column tiles, evaluate the kernel on the Gram tile, and
// reduce into y (and never store the block).
void fused_row_stripe(const KernelMatrix& km, std::span<const index_t> rows,
                      std::span<const index_t> cols,
                      std::span<const double> u, std::span<double> y,
                      double alpha, index_t i0, index_t mi) {
  const Matrix& x = km.points();
  const index_t d = x.rows();
  const index_t n = static_cast<index_t>(cols.size());
  const Kernel& k = km.kernel();

  std::vector<double> arow(static_cast<size_t>(kTm * d));
  std::vector<double> bcol(static_cast<size_t>(d * kTn));
  std::vector<double> gram(static_cast<size_t>(kTm * kTn));
  std::vector<double> acc(static_cast<size_t>(kTm));

  pack_points_rowmajor(x, rows, i0, mi, arow.data());
  for (index_t i = 0; i < mi; ++i) acc[static_cast<size_t>(i)] = 0.0;

  for (index_t j0 = 0; j0 < n; j0 += kTn) {
    const index_t nj = std::min(kTn, n - j0);
    pack_points_colmajor(x, cols, j0, nj, bcol.data());
    // Gram tile G = Xr^T Xc (mi x nj, rank-d update).
    la::gemm_raw(mi, nj, d, 1.0, arow.data(), mi, bcol.data(), d, 0.0,
                 gram.data(), kTm);
    // Fused kernel evaluation + reduction against u, tile still hot.
    for (index_t j = 0; j < nj; ++j) {
      const double uj = u[j0 + j];
      if (uj == 0.0) continue;
      const double nj2 = km.sqnorm(cols[j0 + j]);
      const double* gcol = gram.data() + j * kTm;
      for (index_t i = 0; i < mi; ++i) {
        const double kij = k.eval_gram(gcol[i], km.sqnorm(rows[i0 + i]), nj2);
        acc[static_cast<size_t>(i)] += kij * uj;
      }
    }
  }
  for (index_t i = 0; i < mi; ++i) y[i0 + i] += alpha * acc[static_cast<size_t>(i)];
}

}  // namespace

void gsks_apply(const KernelMatrix& km, std::span<const index_t> rows,
                std::span<const index_t> cols, std::span<const double> u,
                std::span<double> y, double alpha) {
  const index_t m = static_cast<index_t>(rows.size());
  obs::add("gsks.calls");
  // Gram-tile GEMM flops are counted by gemm_raw; this is the fused
  // kernel-evaluation volume on top of them. The histogram exposes the
  // call-size distribution (skeleton sizes drive it).
  obs::add("gsks.kernel_evals", double(m) * double(cols.size()));
  obs::hist("gsks.evals_per_call", double(m) * double(cols.size()));
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (index_t i0 = 0; i0 < m; i0 += kTm) {
    const index_t mi = std::min(kTm, m - i0);
    fused_row_stripe(km, rows, cols, u, y, alpha, i0, mi);
  }
}

void gsks_apply_trans(const KernelMatrix& km, std::span<const index_t> rows,
                      std::span<const index_t> cols,
                      std::span<const double> u, std::span<double> y,
                      double alpha) {
  // K(rows, cols)^T = K(cols, rows) by kernel symmetry.
  gsks_apply(km, cols, rows, u, y, alpha);
}

namespace {

// Block-RHS row-stripe: evaluate each kernel tile once, then reduce it
// against ALL B columns of U with one GEMM while the tile is hot. The
// per-column variant above re-evaluates every kernel entry B times; here
// the evaluation cost is amortized across the block.
void fused_row_stripe_block(const KernelMatrix& km,
                            std::span<const index_t> rows,
                            std::span<const index_t> cols,
                            la::ConstMatrixView u, la::MatrixView y,
                            double alpha, index_t i0, index_t mi) {
  const Matrix& x = km.points();
  const index_t d = x.rows();
  const index_t n = static_cast<index_t>(cols.size());
  const Kernel& k = km.kernel();

  std::vector<double> arow(static_cast<size_t>(kTm * d));
  std::vector<double> bcol(static_cast<size_t>(d * kTn));
  std::vector<double> gram(static_cast<size_t>(kTm * kTn));

  pack_points_rowmajor(x, rows, i0, mi, arow.data());

  for (index_t j0 = 0; j0 < n; j0 += kTn) {
    const index_t nj = std::min(kTn, n - j0);
    pack_points_colmajor(x, cols, j0, nj, bcol.data());
    // Gram tile G = Xr^T Xc (mi x nj, rank-d update).
    la::gemm_raw(mi, nj, d, 1.0, arow.data(), mi, bcol.data(), d, 0.0,
                 gram.data(), kTm);
    // Transform the Gram tile into kernel values in place (one
    // evaluation per entry, independent of B)...
    for (index_t j = 0; j < nj; ++j) {
      const double nj2 = km.sqnorm(cols[j0 + j]);
      double* gcol = gram.data() + j * kTm;
      for (index_t i = 0; i < mi; ++i)
        gcol[i] = k.eval_gram(gcol[i], km.sqnorm(rows[i0 + i]), nj2);
    }
    // ...then one GEMM against all B columns of U while the tile is hot:
    // Y[i0:i0+mi, :] += alpha * Ktile * U[j0:j0+nj, :].
    la::gemm_raw(mi, u.cols(), nj, alpha, gram.data(), kTm, u.col(0) + j0,
                 u.ld(), 1.0, y.col(0) + i0, y.ld());
  }
}

}  // namespace

void gsks_apply_block(const KernelMatrix& km, std::span<const index_t> rows,
                      std::span<const index_t> cols, la::ConstMatrixView u,
                      la::MatrixView y, double alpha) {
  const index_t m = static_cast<index_t>(rows.size());
  if (u.rows() != static_cast<index_t>(cols.size()) || y.rows() != m ||
      u.cols() != y.cols())
    throw std::invalid_argument("gsks_apply_block: shape mismatch");
  if (u.cols() == 1) {  // Single column: the vector kernel's fused
    gsks_apply(km, rows, cols, u.col_span(0), y.col_span(0), alpha);
    return;  // reduction avoids the in-place tile transform.
  }
  obs::add("gsks.calls");
  // One evaluation per block entry regardless of B — the whole point of
  // the fused block apply (B vector applies would pay this B times).
  obs::add("gsks.kernel_evals", double(m) * double(cols.size()));
  obs::hist("gsks.evals_per_call", double(m) * double(cols.size()));
#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic)
#endif
  for (index_t i0 = 0; i0 < m; i0 += kTm) {
    const index_t mi = std::min(kTm, m - i0);
    fused_row_stripe_block(km, rows, cols, u, y, alpha, i0, mi);
  }
}

}  // namespace fdks::kernel
