// The three kernel-summation schemes of §II-D / Table IV, behind one
// operator interface.
//
//   StoredGemv — materialize K(rows, cols) once at construction; every
//                apply is a GEMV. Fastest apply, O(mn) storage.
//   ReevalGemm — materialize the block on every apply, then GEMV.
//                O(1) persistent storage but pays O(mnd) work and O(mn)
//                traffic per apply (the "best-known" baseline GSKS beats).
//   Gsks       — fused matrix-free apply; O(1) persistent storage,
//                O(mnd) FLOPs but only O(md + nd) traffic per apply.
//
// The factorization stores one of these per off-diagonal factor V; the
// scheme choice is the storage/time trade the paper studies.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "kernel/gsks.hpp"
#include "kernel/kernel_matrix.hpp"

namespace fdks::kernel {

enum class Scheme { StoredGemv, ReevalGemm, Gsks };

const char* scheme_name(Scheme s);

/// Linear operator for a kernel sub-block B = K(rows, cols).
class KernelBlockOp {
 public:
  KernelBlockOp() = default;

  /// km must outlive the operator. Index lists are copied.
  KernelBlockOp(const KernelMatrix* km, std::vector<index_t> rows,
                std::vector<index_t> cols, Scheme scheme);

  /// Checkpoint-restore constructor (src/ckpt): adopt a previously
  /// materialized stored block instead of re-evaluating the kernel. If
  /// the scheme requires a stored block and `stored` does not match the
  /// index-list dimensions, the block is re-materialized from km.
  KernelBlockOp(const KernelMatrix* km, std::vector<index_t> rows,
                std::vector<index_t> cols, Scheme scheme, Matrix stored);

  index_t rows() const { return static_cast<index_t>(rows_.size()); }
  index_t cols() const { return static_cast<index_t>(cols_.size()); }
  Scheme scheme() const { return scheme_; }
  // Checkpoint-save access to the operator's persistent state.
  const std::vector<index_t>& row_ids() const { return rows_; }
  const std::vector<index_t>& col_ids() const { return cols_; }
  const Matrix& stored_block() const { return stored_; }

  /// y = beta*y + alpha * B * u.
  void apply(std::span<const double> u, std::span<double> y,
             double alpha = 1.0, double beta = 0.0) const;

  /// y = beta*y + alpha * B^T * u.
  void apply_trans(std::span<const double> u, std::span<double> y,
                   double alpha = 1.0, double beta = 0.0) const;

  /// Y = beta*Y + alpha * B * U for a block of right-hand sides, in
  /// place on views. One GEMM (stored / re-evaluated block) or one fused
  /// GSKS block apply — the operator's matrices are streamed once for
  /// the whole batch instead of once per column.
  void apply_block(la::ConstMatrixView u, la::MatrixView y,
                   double alpha = 1.0, double beta = 0.0) const;

  /// Y = B * U for a block of right-hand sides.
  Matrix apply_block(const Matrix& u) const;

  /// Materialize the block (tests, Z assembly).
  Matrix to_dense() const;

  /// Bytes of persistent storage this operator holds (the Table IV
  /// storage axis).
  size_t stored_bytes() const;

 private:
  const KernelMatrix* km_ = nullptr;
  std::vector<index_t> rows_;
  std::vector<index_t> cols_;
  Scheme scheme_ = Scheme::StoredGemv;
  Matrix stored_;  ///< Only populated for StoredGemv.
};

}  // namespace fdks::kernel
