#include "kernel/kernel_matrix.hpp"

#include <numeric>
#include <utility>
#include <vector>

namespace fdks::kernel {

KernelMatrix::KernelMatrix(Matrix points, Kernel k)
    : points_(std::move(points)), kernel_(k) {
  const index_t n = points_.cols();
  const index_t d = points_.rows();
  sqnorms_.resize(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const double* col = points_.col(j);
    double s = 0.0;
    for (index_t i = 0; i < d; ++i) s += col[i] * col[i];
    sqnorms_[static_cast<size_t>(j)] = s;
  }
}

double KernelMatrix::entry(index_t i, index_t j) const {
  const index_t d = points_.rows();
  const double* xi = points_.col(i);
  const double* xj = points_.col(j);
  double xy = 0.0;
  for (index_t k = 0; k < d; ++k) xy += xi[k] * xj[k];
  return kernel_.eval_gram(xy, sqnorm(i), sqnorm(j));
}

Matrix KernelMatrix::block(std::span<const index_t> rows,
                           std::span<const index_t> cols) const {
  const index_t m = static_cast<index_t>(rows.size());
  const index_t n = static_cast<index_t>(cols.size());
  Matrix out(m, n);
  const index_t d = points_.rows();
  for (index_t j = 0; j < n; ++j) {
    const double* xj = points_.col(cols[j]);
    const double nj = sqnorm(cols[j]);
    for (index_t i = 0; i < m; ++i) {
      const double* xi = points_.col(rows[i]);
      double xy = 0.0;
      for (index_t k = 0; k < d; ++k) xy += xi[k] * xj[k];
      out(i, j) = kernel_.eval_gram(xy, sqnorm(rows[i]), nj);
    }
  }
  return out;
}

Matrix KernelMatrix::block_range(index_t r0, index_t r1, index_t c0,
                                 index_t c1) const {
  std::vector<index_t> rows(static_cast<size_t>(r1 - r0));
  std::iota(rows.begin(), rows.end(), r0);
  std::vector<index_t> cols(static_cast<size_t>(c1 - c0));
  std::iota(cols.begin(), cols.end(), c0);
  return block(rows, cols);
}

Matrix KernelMatrix::full() const { return block_range(0, n(), 0, n()); }

}  // namespace fdks::kernel
