// Lazy kernel-matrix view over a point set.
//
// Points are stored d-by-N column-major (one column per point, the
// layout ASKIT uses), so a block K(I, J) is produced from the point
// columns X(:,I) and X(:,J). Squared norms are cached once — every
// kernel evaluation then needs only the inner product.
#pragma once

#include <span>
#include <vector>

#include "kernel/kernels.hpp"
#include "la/matrix.hpp"

namespace fdks::kernel {

using la::Matrix;
using la::index_t;

class KernelMatrix {
 public:
  /// points: d-by-N, one point per column. The matrix is copied; the
  /// view must outlive nothing.
  KernelMatrix(Matrix points, Kernel k);

  index_t n() const { return points_.cols(); }
  index_t dim() const { return points_.rows(); }
  const Kernel& kernel() const { return kernel_; }
  const Matrix& points() const { return points_; }
  double sqnorm(index_t i) const { return sqnorms_[static_cast<size_t>(i)]; }

  /// Single entry K(i, j).
  double entry(index_t i, index_t j) const;

  /// Materialize K(rows, cols) as a dense |rows|-by-|cols| block.
  Matrix block(std::span<const index_t> rows,
               std::span<const index_t> cols) const;

  /// Materialize the contiguous block K([r0,r1), [c0,c1)) — index ranges
  /// into the point ordering, the common case after tree permutation.
  Matrix block_range(index_t r0, index_t r1, index_t c0, index_t c1) const;

  /// Full N-by-N matrix; only sensible for small N (tests).
  Matrix full() const;

 private:
  Matrix points_;
  Kernel kernel_;
  std::vector<double> sqnorms_;
};

}  // namespace fdks::kernel
