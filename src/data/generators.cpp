#include "data/generators.hpp"

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "data/preprocess.hpp"

namespace fdks::data {

namespace {

// Draw points on k-dimensional cluster manifolds embedded in R^d:
// x = A_c z + mu_c + noise, z ~ N(0, I_k), one random embedding A_c and
// mean mu_c per cluster. Returns the cluster assignment per point.
std::vector<int> embed_clusters(Matrix& points, index_t d, index_t k,
                                int nclusters, double cluster_spread,
                                double noise, std::mt19937_64& rng) {
  const index_t n = points.cols();
  std::normal_distribution<double> g(0.0, 1.0);
  std::uniform_int_distribution<int> pick(0, nclusters - 1);

  std::vector<Matrix> embed(static_cast<size_t>(nclusters));
  Matrix centers(d, nclusters);
  for (int c = 0; c < nclusters; ++c) {
    embed[static_cast<size_t>(c)] = Matrix(d, k);
    for (index_t j = 0; j < k; ++j)
      for (index_t i = 0; i < d; ++i)
        embed[static_cast<size_t>(c)](i, j) = g(rng) / std::sqrt(double(k));
    for (index_t i = 0; i < d; ++i)
      centers(i, c) = cluster_spread * g(rng);
  }

  std::vector<int> assign(static_cast<size_t>(n));
  std::vector<double> z(static_cast<size_t>(k));
  for (index_t j = 0; j < n; ++j) {
    const int c = pick(rng);
    assign[static_cast<size_t>(j)] = c;
    for (auto& v : z) v = g(rng);
    for (index_t i = 0; i < d; ++i) {
      double s = centers(i, c);
      for (index_t t = 0; t < k; ++t)
        s += embed[static_cast<size_t>(c)](i, t) * z[static_cast<size_t>(t)];
      points(i, j) = s + noise * g(rng);
    }
  }
  return assign;
}

Dataset covtype_like(index_t n, uint64_t seed) {
  Dataset ds;
  ds.name = "covtype-like";
  ds.intrinsic_dim = 8;
  const index_t d = 54;
  ds.points.resize(d, n);
  std::mt19937_64 rng(seed);
  // Seven forest cover classes with mild overlap: the real COVTYPE task
  // saturates near 96%, so the clusters must not be fully separable.
  auto assign = embed_clusters(ds.points, d, ds.intrinsic_dim, 7, 0.9, 0.75,
                               rng);
  ds.labels.resize(static_cast<size_t>(n));
  // ~4% Bayes error: the real COVTYPE task saturates near 96% accuracy.
  std::uniform_real_distribution<double> flip(0.0, 1.0);
  for (index_t j = 0; j < n; ++j) {
    double lab = (assign[static_cast<size_t>(j)] < 2) ? +1.0 : -1.0;
    if (flip(rng) < 0.04) lab = -lab;
    ds.labels[static_cast<size_t>(j)] = lab;
  }
  return ds;
}

Dataset susy_like(index_t n, uint64_t seed) {
  // Two overlapping event classes in 8 kinematic features: the label
  // depends nonlinearly on the latent variables so a linear model fails
  // but a Gaussian-kernel model succeeds, like the real SUSY task.
  Dataset ds;
  ds.name = "susy-like";
  ds.intrinsic_dim = 4;
  const index_t d = 8;
  ds.points.resize(d, n);
  ds.labels.resize(static_cast<size_t>(n));
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  Matrix embed(d, ds.intrinsic_dim);
  for (index_t j = 0; j < ds.intrinsic_dim; ++j)
    for (index_t i = 0; i < d; ++i) embed(i, j) = g(rng);
  std::vector<double> z(static_cast<size_t>(ds.intrinsic_dim));
  for (index_t j = 0; j < n; ++j) {
    for (auto& v : z) v = g(rng);
    // Irreducible class overlap (the real SUSY task tops out near 78%).
    const double radius2 = z[0] * z[0] + z[1] * z[1];
    const double score = radius2 + 0.5 * z[2] + 1.6 * g(rng) - 1.8;
    ds.labels[static_cast<size_t>(j)] = (score > 0.0) ? +1.0 : -1.0;
    for (index_t i = 0; i < d; ++i) {
      double s = 0.0;
      for (index_t t = 0; t < ds.intrinsic_dim; ++t)
        s += embed(i, t) * z[static_cast<size_t>(t)];
      ds.points(i, j) = s + 0.1 * g(rng);
    }
  }
  return ds;
}

Dataset mnist_like(index_t n, uint64_t seed) {
  Dataset ds;
  ds.name = "mnist-like";
  ds.intrinsic_dim = 10;
  const index_t d = 784;
  ds.points.resize(d, n);
  std::mt19937_64 rng(seed);
  // Ten digit clusters; one-vs-all labeling for digit '3' (paper
  // Table II footnote). The digit ids are kept for multi-class use.
  auto assign = embed_clusters(ds.points, d, ds.intrinsic_dim, 10, 1.5, 0.05,
                               rng);
  ds.labels.resize(static_cast<size_t>(n));
  ds.classes.resize(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    ds.classes[static_cast<size_t>(j)] = assign[static_cast<size_t>(j)];
    ds.labels[static_cast<size_t>(j)] =
        (assign[static_cast<size_t>(j)] == 3) ? +1.0 : -1.0;
  }
  return ds;
}

Dataset higgs_like(index_t n, uint64_t seed) {
  Dataset ds;
  ds.name = "higgs-like";
  ds.intrinsic_dim = 6;
  const index_t d = 28;
  ds.points.resize(d, n);
  ds.labels.resize(static_cast<size_t>(n));
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  Matrix embed(d, ds.intrinsic_dim);
  for (index_t j = 0; j < ds.intrinsic_dim; ++j)
    for (index_t i = 0; i < d; ++i) embed(i, j) = g(rng);
  std::vector<double> z(static_cast<size_t>(ds.intrinsic_dim));
  for (index_t j = 0; j < n; ++j) {
    for (auto& v : z) v = g(rng);
    // Signal region: a curved decision surface with heavy class overlap
    // (the real HIGGS task tops out near 73-75% accuracy; so does this).
    const double score =
        std::sin(z[0]) + z[1] * z[2] - 0.5 * z[3] + 0.8 * g(rng);
    ds.labels[static_cast<size_t>(j)] = (score > 0.0) ? +1.0 : -1.0;
    for (index_t i = 0; i < d; ++i) {
      double s = 0.0;
      for (index_t t = 0; t < ds.intrinsic_dim; ++t)
        s += embed(i, t) * z[static_cast<size_t>(t)];
      ds.points(i, j) = s + 0.15 * g(rng);
    }
  }
  return ds;
}

Dataset mri_like(index_t n, uint64_t seed) {
  // Brain-MRI patches live near a smooth low-dimensional manifold;
  // model: a 4-D torus-like surface embedded smoothly in 128-D.
  Dataset ds;
  ds.name = "mri-like";
  ds.intrinsic_dim = 4;
  const index_t d = 128;
  ds.points.resize(d, n);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::uniform_real_distribution<double> u(0.0, 2.0 * M_PI);
  Matrix freq(d, ds.intrinsic_dim);
  Matrix phase(d, 1);
  for (index_t i = 0; i < d; ++i) {
    phase(i, 0) = u(rng);
    for (index_t t = 0; t < ds.intrinsic_dim; ++t)
      freq(i, t) = std::round(3.0 * g(rng));
  }
  std::vector<double> theta(static_cast<size_t>(ds.intrinsic_dim));
  for (index_t j = 0; j < n; ++j) {
    for (auto& v : theta) v = u(rng);
    for (index_t i = 0; i < d; ++i) {
      double arg = phase(i, 0);
      for (index_t t = 0; t < ds.intrinsic_dim; ++t)
        arg += freq(i, t) * theta[static_cast<size_t>(t)];
      ds.points(i, j) = std::cos(arg) + 0.05 * g(rng);
    }
  }
  return ds;
}

Dataset normal_embedded(index_t n, uint64_t seed) {
  // The paper's NORMAL set: "drawn from a 6D Normal distribution and
  // embedded in 64D with additional noise" (§IV).
  Dataset ds;
  ds.name = "normal64";
  ds.intrinsic_dim = 6;
  const index_t d = 64;
  ds.points.resize(d, n);
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  Matrix embed(d, 6);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < d; ++i) embed(i, j) = g(rng) / std::sqrt(6.0);
  std::vector<double> z(6);
  ds.targets.resize(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    for (auto& v : z) v = g(rng);
    // A smooth nonlinear response on the latent coordinates, for the
    // kernel *regression* (continuous target) code path.
    ds.targets[static_cast<size_t>(j)] =
        std::sin(z[0]) + 0.5 * z[1] * z[2] + 0.2 * std::cos(2.0 * z[3]);
    for (index_t i = 0; i < d; ++i) {
      double s = 0.0;
      for (index_t t = 0; t < 6; ++t)
        s += embed(i, t) * z[static_cast<size_t>(t)];
      ds.points(i, j) = s + 0.1 * g(rng);
    }
  }
  return ds;
}

}  // namespace

index_t ambient_dim(SyntheticKind kind) {
  switch (kind) {
    case SyntheticKind::CovtypeLike:
      return 54;
    case SyntheticKind::SusyLike:
      return 8;
    case SyntheticKind::MnistLike:
      return 784;
    case SyntheticKind::HiggsLike:
      return 28;
    case SyntheticKind::MriLike:
      return 128;
    case SyntheticKind::Normal:
      return 64;
  }
  return 0;
}

const char* kind_name(SyntheticKind kind) {
  switch (kind) {
    case SyntheticKind::CovtypeLike:
      return "COVTYPE-like";
    case SyntheticKind::SusyLike:
      return "SUSY-like";
    case SyntheticKind::MnistLike:
      return "MNIST-like";
    case SyntheticKind::HiggsLike:
      return "HIGGS-like";
    case SyntheticKind::MriLike:
      return "MRI-like";
    case SyntheticKind::Normal:
      return "NORMAL";
  }
  return "?";
}

Dataset make_synthetic(SyntheticKind kind, index_t n, uint64_t seed) {
  if (n < 1) throw std::invalid_argument("make_synthetic: n must be >= 1");
  Dataset ds;
  switch (kind) {
    case SyntheticKind::CovtypeLike:
      ds = covtype_like(n, seed);
      break;
    case SyntheticKind::SusyLike:
      ds = susy_like(n, seed);
      break;
    case SyntheticKind::MnistLike:
      ds = mnist_like(n, seed);
      break;
    case SyntheticKind::HiggsLike:
      ds = higgs_like(n, seed);
      break;
    case SyntheticKind::MriLike:
      ds = mri_like(n, seed);
      break;
    case SyntheticKind::Normal:
      ds = normal_embedded(n, seed);
      break;
  }
  // Paper: "All coordinates are normalized to have zero mean and unit
  // variance."
  zscore_normalize(ds.points);
  return ds;
}

}  // namespace fdks::data
