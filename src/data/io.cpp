#include "data/io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace fdks::data {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + ": " + path);
}

[[noreturn]] void fail_at(const std::string& what, const std::string& path,
                          long line) {
  throw std::runtime_error(what + " at " + path + ":" +
                           std::to_string(line));
}

/// Parse a full numeric cell; rejects trailing garbage ("1.5x") that
/// std::stod alone would silently accept, and reports the offending
/// file:line instead of std::invalid_argument's bare "stod".
double parse_number(const std::string& cell, const std::string& what,
                    const std::string& path, long line) {
  size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(cell, &pos);
  } catch (const std::exception&) {
    fail_at(what + ": bad numeric value '" + cell + "'", path, line);
  }
  while (pos < cell.size() &&
         std::isspace(static_cast<unsigned char>(cell[pos])))
    ++pos;
  if (pos != cell.size())
    fail_at(what + ": bad numeric value '" + cell + "'", path, line);
  return v;
}

/// Guard against absurd 1-based feature indices (a corrupt token like
/// "999999999999:1" would otherwise allocate a dim-that-large matrix).
constexpr index_t kMaxFeatureIndex = 100'000'000;

}  // namespace

Dataset read_libsvm(const std::string& path, index_t dim) {
  std::ifstream in(path);
  if (!in) fail("read_libsvm: cannot open", path);

  std::vector<double> labels;
  std::vector<std::vector<std::pair<index_t, double>>> rows;
  index_t maxdim = dim;
  std::string line;
  long lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) fail_at("read_libsvm: bad label line", path, lineno);
    const double label =
        parse_number(first, "read_libsvm: label", path, lineno);
    if (!std::isfinite(label))
      fail_at("read_libsvm: non-finite label", path, lineno);
    labels.push_back(label);
    rows.emplace_back();
    std::string tok;
    while (ls >> tok) {
      const size_t colon = tok.find(':');
      if (colon == std::string::npos)
        fail_at("read_libsvm: expected idx:value, got '" + tok + "'", path,
                lineno);
      const index_t idx = static_cast<index_t>(parse_number(
          tok.substr(0, colon), "read_libsvm: feature index", path, lineno));
      const double val = parse_number(
          tok.substr(colon + 1), "read_libsvm: feature value", path, lineno);
      if (idx < 1)
        fail_at("read_libsvm: indices are 1-based (got " +
                    std::to_string(idx) + ")",
                path, lineno);
      if (idx > kMaxFeatureIndex)
        fail_at("read_libsvm: implausible feature index " +
                    std::to_string(idx),
                path, lineno);
      if (!std::isfinite(val))
        fail_at("read_libsvm: non-finite value for feature " +
                    std::to_string(idx),
                path, lineno);
      maxdim = std::max(maxdim, idx);
      rows.back().emplace_back(idx - 1, val);
    }
  }
  if (rows.empty()) fail("read_libsvm: empty file", path);
  if (dim > 0 && maxdim > dim)
    fail("read_libsvm: feature index exceeds requested dim in", path);

  Dataset ds;
  ds.name = path;
  ds.points.resize(maxdim, static_cast<index_t>(rows.size()));
  for (size_t j = 0; j < rows.size(); ++j)
    for (const auto& [idx, val] : rows[j])
      ds.points(idx, static_cast<index_t>(j)) = val;

  ds.targets = labels;
  // Map binary label sets onto {-1, +1} (LIBSVM files use 0/1, 1/2,
  // -1/+1... conventions interchangeably).
  const std::set<double> distinct(labels.begin(), labels.end());
  if (distinct.size() == 2) {
    const double lo = *distinct.begin();
    ds.labels.resize(labels.size());
    for (size_t j = 0; j < labels.size(); ++j)
      ds.labels[j] = labels[j] == lo ? -1.0 : 1.0;
  } else {
    ds.labels = labels;
  }
  return ds;
}

void write_libsvm(const std::string& path, const Dataset& ds) {
  std::ofstream out(path);
  if (!out) fail("write_libsvm: cannot open", path);
  out.precision(17);
  for (index_t j = 0; j < ds.n(); ++j) {
    out << (ds.labeled() ? ds.labels[static_cast<size_t>(j)] : 0.0);
    for (index_t i = 0; i < ds.dim(); ++i)
      out << ' ' << (i + 1) << ':' << ds.points(i, j);
    out << '\n';
  }
  if (!out) fail("write_libsvm: write failed", path);
}

void write_csv(const std::string& path, const Dataset& ds) {
  std::ofstream out(path);
  if (!out) fail("write_csv: cannot open", path);
  out.precision(17);
  for (index_t j = 0; j < ds.n(); ++j) {
    for (index_t i = 0; i < ds.dim(); ++i) {
      if (i) out << ',';
      out << ds.points(i, j);
    }
    if (ds.labeled()) out << ',' << ds.labels[static_cast<size_t>(j)];
    out << '\n';
  }
  if (!out) fail("write_csv: write failed", path);
}

Dataset read_csv(const std::string& path, bool labeled) {
  std::ifstream in(path);
  if (!in) fail("read_csv: cannot open", path);
  std::vector<std::vector<double>> rows;
  std::string line;
  long lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    rows.emplace_back();
    std::istringstream ls(line);
    std::string cell;
    size_t col = 0;
    while (std::getline(ls, cell, ',')) {
      ++col;
      const double v = parse_number(cell, "read_csv", path, lineno);
      if (!std::isfinite(v))
        fail_at("read_csv: non-finite value in column " +
                    std::to_string(col),
                path, lineno);
      rows.back().push_back(v);
    }
    if (rows.back().size() != rows.front().size())
      fail_at("read_csv: ragged row (" +
                  std::to_string(rows.back().size()) + " columns, expected " +
                  std::to_string(rows.front().size()) + ")",
              path, lineno);
  }
  if (rows.empty()) fail("read_csv: empty file", path);
  const index_t ncols = static_cast<index_t>(rows.front().size());
  const index_t d = labeled ? ncols - 1 : ncols;
  if (d < 1) fail("read_csv: no feature columns in", path);

  Dataset ds;
  ds.name = path;
  ds.points.resize(d, static_cast<index_t>(rows.size()));
  if (labeled) ds.labels.resize(rows.size());
  for (size_t j = 0; j < rows.size(); ++j) {
    for (index_t i = 0; i < d; ++i)
      ds.points(i, static_cast<index_t>(j)) = rows[j][static_cast<size_t>(i)];
    if (labeled) ds.labels[j] = rows[j][static_cast<size_t>(d)];
  }
  return ds;
}

namespace {

constexpr uint64_t kMagic = 0x46444b5344415431ull;  // "FDKSDAT1".

template <class T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::ifstream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

void put_vec_d(std::ofstream& out, const std::vector<double>& v) {
  put<uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::vector<double> get_vec_d(std::ifstream& in) {
  const auto nv = get<uint64_t>(in);
  std::vector<double> v(nv);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(nv * sizeof(double)));
  return v;
}

void put_vec_i(std::ofstream& out, const std::vector<int>& v) {
  put<uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(int)));
}

std::vector<int> get_vec_i(std::ifstream& in) {
  const auto nv = get<uint64_t>(in);
  std::vector<int> v(nv);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(nv * sizeof(int)));
  return v;
}

}  // namespace

void write_binary(const std::string& path, const Dataset& ds) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail("write_binary: cannot open", path);
  put(out, kMagic);
  put<int64_t>(out, ds.dim());
  put<int64_t>(out, ds.n());
  put<int64_t>(out, ds.intrinsic_dim);
  out.write(reinterpret_cast<const char*>(ds.points.data()),
            static_cast<std::streamsize>(ds.points.size() *
                                         sizeof(double)));
  put_vec_d(out, ds.labels);
  put_vec_i(out, ds.classes);
  put_vec_d(out, ds.targets);
  const uint64_t name_len = ds.name.size();
  put(out, name_len);
  out.write(ds.name.data(), static_cast<std::streamsize>(name_len));
  if (!out) fail("write_binary: write failed", path);
}

Dataset read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("read_binary: cannot open", path);
  if (get<uint64_t>(in) != kMagic) fail("read_binary: bad magic in", path);
  Dataset ds;
  const auto d = get<int64_t>(in);
  const auto n = get<int64_t>(in);
  ds.intrinsic_dim = static_cast<index_t>(get<int64_t>(in));
  if (!in) fail("read_binary: truncated header in", path);
  // Header sanity before the allocation: a corrupt header must produce
  // a diagnostic, not a multi-terabyte resize or a negative-size crash.
  if (d < 1 || n < 1)
    fail("read_binary: corrupt header (dim " + std::to_string(d) + ", n " +
             std::to_string(n) + ") in",
         path);
  constexpr int64_t kMaxElems = int64_t{1} << 40;  // 8 TiB of doubles.
  if (d > kMaxElems || n > kMaxElems || d * n > kMaxElems)
    fail("read_binary: implausible header (dim " + std::to_string(d) +
             ", n " + std::to_string(n) + ") in",
         path);
  ds.points.resize(static_cast<index_t>(d), static_cast<index_t>(n));
  in.read(reinterpret_cast<char*>(ds.points.data()),
          static_cast<std::streamsize>(ds.points.size() * sizeof(double)));
  if (!in) fail("read_binary: truncated point data in", path);
  ds.labels = get_vec_d(in);
  ds.classes = get_vec_i(in);
  ds.targets = get_vec_d(in);
  const auto name_len = get<uint64_t>(in);
  ds.name.resize(name_len);
  in.read(ds.name.data(), static_cast<std::streamsize>(name_len));
  if (!in) fail("read_binary: truncated file", path);
  for (index_t j = 0; j < ds.n(); ++j)
    for (index_t i = 0; i < ds.dim(); ++i)
      if (!std::isfinite(ds.points(i, j)))
        fail("read_binary: non-finite coordinate (point " +
                 std::to_string(j) + ", dim " + std::to_string(i) + ") in",
             path);
  return ds;
}

}  // namespace fdks::data
