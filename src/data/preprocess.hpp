// Dataset preprocessing: normalization and train/test splitting.
#pragma once

#include <cstdint>
#include <utility>

#include "data/generators.hpp"

namespace fdks::data {

/// In-place per-coordinate z-score normalization (zero mean, unit
/// variance; coordinates with zero variance are left centered).
void zscore_normalize(Matrix& points);

/// Split a dataset into train/test by a random permutation. test_fraction
/// in (0, 1); deterministic in seed.
std::pair<Dataset, Dataset> train_test_split(const Dataset& ds,
                                             double test_fraction,
                                             uint64_t seed);

/// Classification accuracy of predictions (sign agreement with labels).
double accuracy(std::span<const double> predictions,
                std::span<const double> labels);

}  // namespace fdks::data
