#include "data/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

namespace fdks::data {

void zscore_normalize(Matrix& points) {
  const index_t d = points.rows();
  const index_t n = points.cols();
  if (n == 0) return;
  for (index_t i = 0; i < d; ++i) {
    double mean = 0.0;
    for (index_t j = 0; j < n; ++j) mean += points(i, j);
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (index_t j = 0; j < n; ++j) {
      const double t = points(i, j) - mean;
      var += t * t;
    }
    var /= static_cast<double>(n);
    const double scale = var > 0.0 ? 1.0 / std::sqrt(var) : 1.0;
    for (index_t j = 0; j < n; ++j)
      points(i, j) = (points(i, j) - mean) * scale;
  }
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& ds,
                                             double test_fraction,
                                             uint64_t seed) {
  if (test_fraction <= 0.0 || test_fraction >= 1.0)
    throw std::invalid_argument("train_test_split: fraction in (0,1)");
  const index_t n = ds.n();
  const index_t ntest = std::max<index_t>(
      1, static_cast<index_t>(std::floor(test_fraction * double(n))));
  const index_t ntrain = n - ntest;
  if (ntrain < 1)
    throw std::invalid_argument("train_test_split: no training points left");

  std::vector<index_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);

  auto take = [&](index_t from, index_t count, const char* suffix) {
    Dataset out;
    out.name = ds.name + suffix;
    out.intrinsic_dim = ds.intrinsic_dim;
    out.points.resize(ds.dim(), count);
    if (ds.labeled()) out.labels.resize(static_cast<size_t>(count));
    if (ds.multiclass()) out.classes.resize(static_cast<size_t>(count));
    if (ds.has_targets()) out.targets.resize(static_cast<size_t>(count));
    for (index_t j = 0; j < count; ++j) {
      const index_t src = order[static_cast<size_t>(from + j)];
      for (index_t i = 0; i < ds.dim(); ++i)
        out.points(i, j) = ds.points(i, src);
      if (ds.labeled())
        out.labels[static_cast<size_t>(j)] =
            ds.labels[static_cast<size_t>(src)];
      if (ds.multiclass())
        out.classes[static_cast<size_t>(j)] =
            ds.classes[static_cast<size_t>(src)];
      if (ds.has_targets())
        out.targets[static_cast<size_t>(j)] =
            ds.targets[static_cast<size_t>(src)];
    }
    return out;
  };
  return {take(0, ntrain, "/train"), take(ntrain, ntest, "/test")};
}

double accuracy(std::span<const double> predictions,
                std::span<const double> labels) {
  if (predictions.size() != labels.size() || predictions.empty())
    throw std::invalid_argument("accuracy: size mismatch or empty");
  size_t correct = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double sign = predictions[i] >= 0.0 ? 1.0 : -1.0;
    if (sign == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

}  // namespace fdks::data
