// Dataset I/O: LIBSVM text format (the distribution format of the
// paper's real datasets — COVTYPE/SUSY/HIGGS/MNIST all ship as LIBSVM
// files), a simple CSV reader/writer, and a fast binary container.
// With these, the synthetic stand-ins can be swapped for the real data
// whenever it is available, without touching any solver code.
//
// All readers validate as they parse — malformed numbers, NaN/Inf
// coordinates, ragged rows, implausible feature indices, and corrupt
// binary headers raise std::runtime_error naming the file plus the
// line (text formats) or point/dimension index (binary), so bad input
// is rejected at the door instead of surfacing as solver NaNs later.
#pragma once

#include <string>

#include "data/generators.hpp"

namespace fdks::data {

/// Read a LIBSVM file: one sample per line, "label idx:value ..." with
/// 1-based feature indices. dim 0 = infer from the maximum index.
/// Labels are stored in .labels (mapped to +-1 when exactly two distinct
/// values occur, kept verbatim otherwise) and also in .targets verbatim.
Dataset read_libsvm(const std::string& path, index_t dim = 0);

/// Write a dataset in LIBSVM format (dense: every feature emitted with
/// its 1-based index). Labels come from .labels when present, else 0.
void write_libsvm(const std::string& path, const Dataset& ds);

/// Write points (and labels, when present) as CSV: one point per line,
/// label last when labeled.
void write_csv(const std::string& path, const Dataset& ds);

/// Read CSV written by write_csv (or any numeric CSV); when
/// `labeled` is true the last column is the +-1 label.
Dataset read_csv(const std::string& path, bool labeled);

/// Binary container (magic + dims + raw doubles), lossless round-trip
/// of points/labels/classes/targets.
void write_binary(const std::string& path, const Dataset& ds);
Dataset read_binary(const std::string& path);

}  // namespace fdks::data
