// Synthetic dataset generators standing in for the paper's real-world
// datasets (Table II).
//
// The proprietary/large datasets (COVTYPE, SUSY, MNIST, HIGGS, MRI) are
// not available offline, so each is replaced by a generator that matches
// the property that matters for hierarchical compressibility and for
// kernel ridge regression: the ambient dimension d, a low intrinsic
// dimension (points on clustered low-dimensional manifolds embedded in
// R^d with noise), and a binary labeling that is learnable but not
// linearly separable. NORMAL follows the paper's own recipe exactly:
// a 6-D normal embedded in 64-D with additive noise. See DESIGN.md §1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace fdks::data {

using la::Matrix;
using la::index_t;

enum class SyntheticKind {
  CovtypeLike,  ///< d=54, 7 cartographic-class clusters.
  SusyLike,     ///< d=8, signal/background overlapping mixtures.
  MnistLike,    ///< d=784, 10 digit clusters, one-vs-all label for '3'.
  HiggsLike,    ///< d=28, two nonlinearly mixed classes.
  MriLike,      ///< d=128, smooth 4-D manifold, unlabeled.
  Normal,       ///< d=64, 6-D normal embedded with noise (paper §IV).
};

struct Dataset {
  std::string name;
  Matrix points;               ///< d-by-N, z-score normalized.
  std::vector<double> labels;  ///< +-1 per point; empty when unlabeled.
  std::vector<int> classes;    ///< Multi-class labels (e.g. digit ids for
                               ///< the MNIST-like set); empty if N/A.
  std::vector<double> targets; ///< Continuous regression targets; empty
                               ///< if N/A.
  index_t intrinsic_dim = 0;   ///< Latent dimension used by the generator.

  index_t n() const { return points.cols(); }
  index_t dim() const { return points.rows(); }
  bool labeled() const { return !labels.empty(); }
  bool multiclass() const { return !classes.empty(); }
  bool has_targets() const { return !targets.empty(); }
};

/// Generate n points of the given kind. Deterministic in (kind, n, seed).
Dataset make_synthetic(SyntheticKind kind, index_t n, uint64_t seed);

/// Ambient dimension the generator will produce for a kind.
index_t ambient_dim(SyntheticKind kind);

const char* kind_name(SyntheticKind kind);

}  // namespace fdks::data
