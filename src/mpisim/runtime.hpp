// In-process message-passing runtime (MPI substitute).
//
// The paper's distributed algorithms (II.4/II.5) are written against the
// message-passing interface: point-to-point Send/Recv plus Bcast/Reduce
// collectives over split communicators. This runtime provides exactly
// that surface with ranks backed by std::thread and mailboxes backed by
// mutex/condition-variable queues, so the distributed factorization and
// solve run — with their real communication pattern and data ownership —
// inside one process. Swapping in real MPI is a transport change only.
//
// Robustness (fault.hpp): every blocking wait carries a deadline and
// throws a descriptive TimeoutError instead of hanging, and a seeded
// FaultPlan can deterministically drop/delay/duplicate/corrupt messages
// or stall/kill a rank — the test harness for the solvers' failure
// paths. With WorldOptions::reliable enabled, sends run a stop-and-wait
// ARQ (sequence numbers, payload checksums, delivery acks, bounded
// exponential-backoff retransmission) that survives the injected
// message faults instead of surfacing them; see ReliableTransport.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "mpisim/fault.hpp"

namespace fdks::mpisim {

/// Payload of one message: a tagged vector of doubles. Structured data
/// (index lists, matrices with header dims) is serialized by the caller.
struct Message {
  int src_world = -1;
  std::uint64_t context = 0;
  int tag = 0;
  std::vector<double> data;
  /// Injected-delay delivery time; default (epoch) = deliverable now.
  std::chrono::steady_clock::time_point deliver_at{};

  // Reliable-transport framing (set by World::send_reliable): the
  // per-directed-link sequence number, the FNV-1a payload checksum
  // verified at delivery, and the flag routing the message through the
  // dedup/ack path. Plain sends and acks leave `reliable` false.
  bool reliable = false;
  std::uint64_t rel_seq = 0;
  std::uint64_t checksum = 0;

  /// World-unique id linking this send to its recv in the event trace
  /// (obs/trace.hpp flow arrows and critical-path edges). 0 = untracked
  /// (transport-internal frames such as acks). ARQ retransmits reuse the
  /// original id — dedup delivers exactly one copy.
  std::uint64_t flow_id = 0;
};

class Comm;

/// Shared world state: one mailbox per world rank.
class World {
 public:
  explicit World(int size, WorldOptions opts = {});
  int size() const { return size_; }
  const WorldOptions& options() const { return opts_; }

  void post(int dst_world, Message msg);
  std::vector<double> wait(int dst_world, std::uint64_t context,
                           int src_world, int tag);
  std::uint64_t next_context();
  std::uint64_t next_flow_id();

  /// Reliable point-to-point send (stop-and-wait ARQ per directed
  /// link): frames the message with a sequence number and checksum,
  /// posts it, and blocks for the delivery acknowledgment,
  /// retransmitting with bounded exponential backoff per the
  /// ReliableTransport policy. Throws TimeoutError once the retry
  /// budget is exhausted. Used by Comm::send when
  /// options().reliable.enabled.
  void send_reliable(int src_world, int dst_world, Message msg);

  /// Rank-level fault hook, called by Comm on every send/recv: applies
  /// the plan's stall (sleeps once) and kill (throws RankKilledError)
  /// faults for `world_rank`.
  void comm_op(int world_rank);

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Message> queue;
    /// Reliable-transport dedup: next expected sequence number per
    /// source world rank (guarded by mu). A retransmitted copy whose
    /// rel_seq is below the expected value was already delivered and is
    /// suppressed (and re-acked, since its original ack was lost).
    std::vector<std::uint64_t> rel_next_seq;
  };

  /// Delivery half of the reliable path: checksum-verify, dedup by
  /// sequence, enqueue, and acknowledge. `duplicate` delivers an
  /// injected second copy (which the dedup then suppresses).
  void deliver_reliable(int dst_world, Message msg, bool duplicate);
  /// Await the ack for `expect_seq` from `from_world` in `src_world`'s
  /// mailbox until `attempt_deadline`; consumes stale/corrupted acks.
  bool wait_ack(int src_world, int from_world, std::uint64_t expect_seq,
                std::chrono::steady_clock::time_point attempt_deadline);

  int size_;
  WorldOptions opts_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<std::uint64_t> context_counter_{1};
  std::atomic<std::uint64_t> flow_counter_{1};
  // Per-link and per-rank fault bookkeeping. Each cell is written only
  // by the owning source rank's thread, so plain integers suffice.
  // (Acks on link dst->src are posted by the data sender src's thread —
  // the in-process analogue of the network — so ack_seq_ needs its own
  // array to keep the single-writer invariant.)
  std::vector<std::uint64_t> link_seq_;  ///< [src * size + dst] messages.
  std::vector<std::uint64_t> ack_seq_;   ///< [src * size + dst] acks.
  std::vector<std::uint64_t> rel_seq_;   ///< [src * size + dst] reliable seq.
  std::vector<std::uint64_t> rank_ops_;  ///< Comm ops issued per rank.
  std::vector<char> stalled_;            ///< Stall already applied.
};

/// A communicator: an ordered group of world ranks plus a context id
/// that isolates its traffic (the analogue of an MPI communicator).
class Comm {
 public:
  Comm(World* world, std::uint64_t context, std::vector<int> members,
       int my_index);

  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(members_.size()); }
  World& world() const { return *world_; }

  /// Blocking point-to-point send/recv by communicator rank. recv
  /// throws TimeoutError when the world's deadline expires first.
  void send(int dest, int tag, std::span<const double> data) const;
  std::vector<double> recv(int src, int tag) const;

  /// Simultaneous exchange with a partner (deadlock-free SendRecv).
  std::vector<double> sendrecv(int partner, int tag,
                               std::span<const double> data) const;

  /// Split into sub-communicators by color; ranks with the same color
  /// form a new communicator ordered by current rank. Collective: every
  /// member must call with its own color.
  Comm split(int color) const;

  // Collectives (implemented in collectives.cpp); all are blocking and
  // must be entered by every member. Built on send/recv, so they
  // inherit the deadline and fault-injection behavior.
  void bcast(std::vector<double>& data, int root) const;
  void reduce_sum(std::vector<double>& data, int root) const;
  void allreduce_sum(std::vector<double>& data) const;
  /// Concatenate each rank's chunk in rank order on every member.
  std::vector<double> allgatherv(std::span<const double> mine) const;
  void barrier() const;

 private:
  World* world_;
  std::uint64_t context_;
  std::vector<int> members_;  ///< members_[comm rank] = world rank.
  int my_index_;
};

/// Launch fn on p ranks (threads) over a fresh world; joins all threads.
/// When exactly one rank fails its exception is rethrown unchanged;
/// when several fail, a MultiRankError carrying every rank's error (with
/// rank ids) is thrown instead.
void run(int p, const std::function<void(Comm&)>& fn);

/// As above with explicit runtime options (wait deadline, fault plan).
void run(int p, const std::function<void(Comm&)>& fn,
         const WorldOptions& opts);

}  // namespace fdks::mpisim
