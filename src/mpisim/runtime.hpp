// In-process message-passing runtime (MPI substitute).
//
// The paper's distributed algorithms (II.4/II.5) are written against the
// message-passing interface: point-to-point Send/Recv plus Bcast/Reduce
// collectives over split communicators. This runtime provides exactly
// that surface with ranks backed by std::thread and mailboxes backed by
// mutex/condition-variable queues, so the distributed factorization and
// solve run — with their real communication pattern and data ownership —
// inside one process. Swapping in real MPI is a transport change only.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace fdks::mpisim {

/// Payload of one message: a tagged vector of doubles. Structured data
/// (index lists, matrices with header dims) is serialized by the caller.
struct Message {
  int src_world = -1;
  std::uint64_t context = 0;
  int tag = 0;
  std::vector<double> data;
};

class Comm;

/// Shared world state: one mailbox per world rank.
class World {
 public:
  explicit World(int size);
  int size() const { return size_; }

  void post(int dst_world, Message msg);
  std::vector<double> wait(int dst_world, std::uint64_t context,
                           int src_world, int tag);
  std::uint64_t next_context();

 private:
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Message> queue;
  };
  int size_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  std::atomic<std::uint64_t> context_counter_{1};
};

/// A communicator: an ordered group of world ranks plus a context id
/// that isolates its traffic (the analogue of an MPI communicator).
class Comm {
 public:
  Comm(World* world, std::uint64_t context, std::vector<int> members,
       int my_index);

  int rank() const { return my_index_; }
  int size() const { return static_cast<int>(members_.size()); }
  World& world() const { return *world_; }

  /// Blocking point-to-point send/recv by communicator rank.
  void send(int dest, int tag, std::span<const double> data) const;
  std::vector<double> recv(int src, int tag) const;

  /// Simultaneous exchange with a partner (deadlock-free SendRecv).
  std::vector<double> sendrecv(int partner, int tag,
                               std::span<const double> data) const;

  /// Split into sub-communicators by color; ranks with the same color
  /// form a new communicator ordered by current rank. Collective: every
  /// member must call with its own color.
  Comm split(int color) const;

  // Collectives (implemented in collectives.cpp); all are blocking and
  // must be entered by every member.
  void bcast(std::vector<double>& data, int root) const;
  void reduce_sum(std::vector<double>& data, int root) const;
  void allreduce_sum(std::vector<double>& data) const;
  /// Concatenate each rank's chunk in rank order on every member.
  std::vector<double> allgatherv(std::span<const double> mine) const;
  void barrier() const;

 private:
  World* world_;
  std::uint64_t context_;
  std::vector<int> members_;  ///< members_[comm rank] = world rank.
  int my_index_;
};

/// Launch fn on p ranks (threads) over a fresh world; joins all threads.
/// Exceptions thrown by any rank are rethrown (first one wins).
void run(int p, const std::function<void(Comm&)>& fn);

}  // namespace fdks::mpisim
