// Fault model for the message-passing runtime: deadline errors and a
// deterministic seeded fault-injection plan.
//
// A production message-passing layer fails in bounded, diagnosable ways;
// an in-process simulator should too. Two pieces:
//
//   TimeoutError / RankKilledError — every blocking wait in the runtime
//     carries a deadline (WorldOptions::timeout). A mismatched send/recv
//     or a dead peer surfaces as a TimeoutError naming the waiting rank,
//     the awaited source rank, the tag, and the communicator context —
//     instead of an infinite hang.
//
//   FaultPlan — a seeded, fully deterministic injection plan applied at
//     message-delivery time (drop / delay / duplicate / payload-corrupt
//     a chosen fraction of messages) plus per-rank stall/kill faults
//     applied at send/recv call time. The decision for a message is a
//     pure hash of (seed, src, dst, tag, per-link sequence number), so a
//     plan replays identically across runs regardless of thread
//     scheduling. Injection counters land in the obs registry
//     ("mpisim.fault.*") so tests and benches can assert on them.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fdks::mpisim {

/// A blocking wait exceeded its deadline. Ranks and tags identify the
/// stuck edge: `waiting_rank` (world rank) was waiting for a message
/// from `src_rank` with `tag` on communicator context `context`. Both
/// the configured deadline and the wait actually elapsed are carried
/// (and printed), so logs distinguish a near-miss from a hard hang.
/// `waited_for` names what the wait was for: a data message for recv
/// deadlines, an acknowledgment for reliable-transport retry
/// exhaustion.
class TimeoutError : public std::runtime_error {
 public:
  TimeoutError(int waiting_rank, int src_rank, int tag,
               std::uint64_t context, std::chrono::milliseconds deadline,
               std::chrono::milliseconds elapsed,
               const char* waited_for = "a message");

  int waiting_rank() const { return waiting_rank_; }
  int src_rank() const { return src_rank_; }
  int tag() const { return tag_; }
  std::uint64_t context() const { return context_; }
  /// Configured wait deadline (per blocking wait, or the reliable
  /// transport's final per-attempt ack deadline).
  std::chrono::milliseconds deadline() const { return deadline_; }
  /// Wall-clock time actually spent waiting before giving up.
  std::chrono::milliseconds elapsed() const { return elapsed_; }

 private:
  int waiting_rank_;
  int src_rank_;
  int tag_;
  std::uint64_t context_;
  std::chrono::milliseconds deadline_;
  std::chrono::milliseconds elapsed_;
};

/// Thrown inside a rank that a FaultPlan kills: the rank's communication
/// operations abort from `kill_after_ops` onward, simulating a crashed
/// process. Peers observe the death as TimeoutErrors.
class RankKilledError : public std::runtime_error {
 public:
  RankKilledError(int rank, std::uint64_t op_index);
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// Several ranks failed under mpisim::run. Collects every rank's error
/// (rank id + what()) so multi-rank failures are diagnosable; the
/// what() string lists them all.
class MultiRankError : public std::runtime_error {
 public:
  struct RankError {
    int rank;
    std::string what;
  };

  MultiRankError(int world_size, std::vector<RankError> errors);
  const std::vector<RankError>& errors() const { return errors_; }

 private:
  std::vector<RankError> errors_;
};

/// What the plan decided for one message.
enum class FaultAction { None, Drop, Delay, Duplicate, Corrupt };

/// Deterministic seeded injection plan. Fractions are per-message
/// probabilities drawn from a hash of the message coordinates; they are
/// evaluated cumulatively (drop first, then delay, duplicate, corrupt),
/// so at most one action applies per message.
struct FaultPlan {
  std::uint64_t seed = 0;
  double drop_fraction = 0.0;       ///< Message silently discarded.
  double delay_fraction = 0.0;      ///< Delivery deferred by `delay`.
  double duplicate_fraction = 0.0;  ///< Message delivered twice.
  double corrupt_fraction = 0.0;    ///< One payload entry replaced by NaN.
  std::chrono::milliseconds delay{20};

  /// Rank-level faults (world ranks; -1 = none).
  int stall_rank = -1;                       ///< Sleeps `stall` once, at
  std::chrono::milliseconds stall{0};        ///< its next comm operation.
  int kill_rank = -1;                        ///< Comm ops throw
  std::uint64_t kill_after_ops = 0;          ///< RankKilledError from the
                                             ///< kill_after_ops-th on.

  bool message_faults() const {
    return drop_fraction > 0.0 || delay_fraction > 0.0 ||
           duplicate_fraction > 0.0 || corrupt_fraction > 0.0;
  }
  bool enabled() const {
    return message_faults() || stall_rank >= 0 || kill_rank >= 0;
  }
};

/// The plan's decision for message number `sequence` on the directed
/// link src_world -> dst_world with `tag`. Pure function: identical
/// inputs give identical decisions on every run.
FaultAction fault_decide(const FaultPlan& plan, int src_world, int dst_world,
                         int tag, std::uint64_t sequence);

/// Opt-in reliable delivery policy: stop-and-wait ARQ per directed
/// link. Every data message is framed with a per-link sequence number
/// and a payload checksum; delivery into the destination mailbox is
/// acknowledged; an unacknowledged send retransmits with bounded
/// exponential backoff. The combination *survives* injected message
/// faults instead of surfacing them: dropped messages (and dropped
/// acks) are retried, corrupt payloads are checksum-rejected and
/// retransmitted, duplicates are suppressed by sequence number, delays
/// are waited out. Recovery actions land in the obs registry under
/// "mpisim.recover.*". Rank stall/kill faults are NOT survivable at
/// this layer — that is the checkpoint/restart + supervisor layer
/// (src/ckpt, core/recovery.hpp).
struct ReliableTransport {
  bool enabled = false;
  /// Ack wait for the first attempt of a message; grows by `backoff`
  /// per retransmission, capped at `max_backoff`.
  std::chrono::milliseconds ack_timeout{50};
  int max_retries = 8;          ///< Retransmissions per message.
  double backoff = 2.0;         ///< Per-retry ack-wait multiplier.
  std::chrono::milliseconds max_backoff{1000};
};

/// Per-world runtime knobs.
struct WorldOptions {
  /// Deadline for every blocking wait (recvs and, through them, all
  /// collectives). <= 0 waits forever (the legacy hang-on-bug mode).
  /// Overridable with the FDKS_MPISIM_TIMEOUT_MS environment variable.
  std::chrono::milliseconds timeout{60000};
  FaultPlan faults;
  ReliableTransport reliable;
};

/// Arming-time validation (called by the World constructor): fractions
/// outside [0,1], negative delay/stall durations, stall/kill ranks
/// outside [-1, world_size), or a nonsensical reliable-transport policy
/// raise std::invalid_argument naming the offending field — instead of
/// the plan silently misbehaving mid-run.
void validate_options(const WorldOptions& opts, int world_size);

}  // namespace fdks::mpisim
