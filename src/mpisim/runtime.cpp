#include "mpisim/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <functional>
#include <limits>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace fdks::mpisim {

namespace {

using Clock = std::chrono::steady_clock;

// Acknowledgment frames live on a reserved context/tag pair that no
// communicator traffic can collide with: context ids handed to user
// comms start at 1, and the collectives/split tags sit in -101..-204.
constexpr std::uint64_t kAckContext = 0;
constexpr int kTagAck = -301;

/// FNV-1a over the payload bytes. Cheap, stable across platforms, and
/// sensitive to the single-entry NaN corruption the fault plan injects.
std::uint64_t payload_checksum(const std::vector<double>& data) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  const size_t n = data.size() * sizeof(double);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Modeled wire size of one message frame: a 24-byte header (source
/// rank, tag, context, payload length) plus the raw payload; reliable
/// framing adds sequence number + checksum + flag (17 bytes). This is
/// what a byte-exact MPI transport would move, as opposed to the old
/// payload-only estimate.
double wire_bytes(std::size_t n_doubles, bool reliable) {
  return 24.0 + 8.0 * static_cast<double>(n_doubles) +
         (reliable ? 17.0 : 0.0);
}

/// Per-rank / per-rank-per-tag byte accounting. `dir` is "sent" or
/// "recv"; `rank` is the owning world rank (the sender for "sent", the
/// receiver for "recv").
void add_comm_bytes(bool sent, int rank, int tag, double bytes) {
  if (!obs::enabled()) return;
  // Full-literal formats so the lint can tie these runtime-built names
  // to the registered mpisim.bytes.{sent,recv}. Prefix families.
  const char* fmt_rank =
      sent ? "mpisim.bytes.sent.r%d" : "mpisim.bytes.recv.r%d";
  const char* fmt_rank_tag =
      sent ? "mpisim.bytes.sent.r%d.t%d" : "mpisim.bytes.recv.r%d.t%d";
  char name[64];
  std::snprintf(name, sizeof(name), fmt_rank, rank);
  obs::add(name, bytes);  // fdks-lint: allow(OBS-KEY) dynamic: mpisim.bytes.*
  std::snprintf(name, sizeof(name), fmt_rank_tag, rank, tag);
  obs::add(name, bytes);  // fdks-lint: allow(OBS-KEY) dynamic: mpisim.bytes.*
}

/// FDKS_MPISIM_TIMEOUT_MS overrides the configured wait deadline
/// (<= 0 disables the deadline entirely).
std::chrono::milliseconds env_timeout_override(
    std::chrono::milliseconds fallback) {
  const char* s = std::getenv("FDKS_MPISIM_TIMEOUT_MS");
  if (!s || !*s) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') return fallback;
  return std::chrono::milliseconds(v);
}

}  // namespace

World::World(int size, WorldOptions opts) : size_(size), opts_(opts) {
  if (size < 1) throw std::invalid_argument("World: size must be >= 1");
  validate_options(opts_, size);
  opts_.timeout = env_timeout_override(opts_.timeout);
  boxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
    boxes_.back()->rel_next_seq.assign(static_cast<size_t>(size), 0);
  }
  const size_t links = static_cast<size_t>(size) * static_cast<size_t>(size);
  link_seq_.assign(links, 0);
  ack_seq_.assign(links, 0);
  rel_seq_.assign(links, 0);
  rank_ops_.assign(static_cast<size_t>(size), 0);
  stalled_.assign(static_cast<size_t>(size), 0);
}

std::uint64_t World::next_context() {
  return context_counter_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t World::next_flow_id() {
  return flow_counter_.fetch_add(1, std::memory_order_relaxed);
}

void World::comm_op(int world_rank) {
  const FaultPlan& fp = opts_.faults;
  if (!fp.enabled()) return;
  const auto r = static_cast<size_t>(world_rank);
  const std::uint64_t op = rank_ops_[r]++;
  if (fp.stall_rank == world_rank && !stalled_[r] && fp.stall.count() > 0) {
    stalled_[r] = 1;
    obs::add("mpisim.fault.stall");
    std::this_thread::sleep_for(fp.stall);
  }
  if (fp.kill_rank == world_rank && op >= fp.kill_after_ops) {
    obs::add("mpisim.fault.kill");
    throw RankKilledError(world_rank, op);
  }
}

void World::post(int dst_world, Message msg) {
  const FaultPlan& fp = opts_.faults;
  bool duplicate = false;
  if (fp.message_faults()) {
    const size_t link = static_cast<size_t>(msg.src_world) *
                            static_cast<size_t>(size_) +
                        static_cast<size_t>(dst_world);
    // Acks keep their own fault-sequence array: an ack on link dst->src
    // is posted by the *data sender's* thread, while dst's own thread
    // advances link_seq_ for its data sends on the same link — sharing
    // the cell would break the single-writer invariant.
    const std::uint64_t seq =
        msg.tag == kTagAck ? ack_seq_[link]++ : link_seq_[link]++;
    switch (fault_decide(fp, msg.src_world, dst_world, msg.tag, seq)) {
      case FaultAction::Drop:
        obs::add("mpisim.fault.injected");
        obs::add("mpisim.fault.drop");
        return;  // Silently discarded: the receiver's deadline reports it.
      case FaultAction::Delay:
        obs::add("mpisim.fault.injected");
        obs::add("mpisim.fault.delay");
        msg.deliver_at = Clock::now() + fp.delay;
        break;
      case FaultAction::Duplicate:
        obs::add("mpisim.fault.injected");
        obs::add("mpisim.fault.duplicate");
        duplicate = true;
        break;
      case FaultAction::Corrupt:
        obs::add("mpisim.fault.injected");
        obs::add("mpisim.fault.corrupt");
        if (!msg.data.empty())
          msg.data[static_cast<size_t>(seq) % msg.data.size()] =
              std::numeric_limits<double>::quiet_NaN();
        break;
      case FaultAction::None:
        break;
    }
  }
  if (msg.reliable) {
    deliver_reliable(dst_world, std::move(msg), duplicate);
    return;
  }
  Mailbox& box = *boxes_[static_cast<size_t>(dst_world)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(msg);
    if (duplicate) box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

void World::deliver_reliable(int dst_world, Message msg, bool duplicate) {
  // A corrupted payload is rejected outright: no enqueue, no ack — the
  // sender's retransmission repairs it.
  if (payload_checksum(msg.data) != msg.checksum) {
    obs::add("mpisim.recover.checksum_reject");
    return;
  }
  const int src = msg.src_world;
  const std::uint64_t seq = msg.rel_seq;
  Mailbox& box = *boxes_[static_cast<size_t>(dst_world)];
  const int copies = duplicate ? 2 : 1;
  for (int c = 0; c < copies; ++c) {
    bool accept = false;
    {
      std::lock_guard<std::mutex> lock(box.mu);
      std::uint64_t& next = box.rel_next_seq[static_cast<size_t>(src)];
      // Stop-and-wait serializes each link, so a fresh message always
      // carries exactly the expected sequence number; anything below it
      // is a retransmitted or injected duplicate.
      if (seq >= next) {
        next = seq + 1;
        accept = true;
        box.queue.push_back(msg);
      }
    }
    if (accept) {
      box.cv.notify_all();
    } else {
      obs::add("mpisim.recover.duplicate_suppressed");
    }
    // Ack after releasing the mailbox lock: two ranks posting to each
    // other must never hold crossed mailbox locks. Suppressed
    // duplicates are re-acked — a retransmit means the original ack
    // was lost or rejected. The ack flows through post() and is itself
    // subject to fault injection (via ack_seq_).
    Message ack;
    ack.src_world = dst_world;
    ack.context = kAckContext;
    ack.tag = kTagAck;
    ack.data.assign(1, static_cast<double>(seq));
    obs::add("mpisim.recover.bytes", wire_bytes(ack.data.size(), false));
    post(src, std::move(ack));
  }
}

void World::send_reliable(int src_world, int dst_world, Message msg) {
  const ReliableTransport& rt = opts_.reliable;
  const size_t link = static_cast<size_t>(src_world) *
                          static_cast<size_t>(size_) +
                      static_cast<size_t>(dst_world);
  msg.reliable = true;
  msg.rel_seq = rel_seq_[link]++;
  msg.checksum = payload_checksum(msg.data);
  std::chrono::milliseconds ack_wait = rt.ack_timeout;
  const Clock::time_point start = Clock::now();
  for (int attempt = 0;; ++attempt) {
    post(dst_world, msg);  // Copy: retransmits repost the pristine payload.
    if (wait_ack(src_world, dst_world, msg.rel_seq, Clock::now() + ack_wait)) {
      if (attempt > 0) obs::add("mpisim.recover.recovered");
      return;
    }
    if (attempt >= rt.max_retries) break;
    obs::add("mpisim.recover.retransmit");
    // Retransmitted frames are recovery traffic, not payload traffic.
    obs::add("mpisim.recover.bytes", wire_bytes(msg.data.size(), true));
    ack_wait = std::min(
        std::chrono::milliseconds(static_cast<std::int64_t>(
            static_cast<double>(ack_wait.count()) * rt.backoff)),
        rt.max_backoff);
  }
  obs::add("mpisim.recover.exhausted");
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start);
  throw TimeoutError(src_world, dst_world, msg.tag, msg.context, ack_wait,
                     elapsed, "an acknowledgment (retries exhausted)");
}

bool World::wait_ack(int src_world, int from_world, std::uint64_t expect_seq,
                     std::chrono::steady_clock::time_point attempt_deadline) {
  Mailbox& box = *boxes_[static_cast<size_t>(src_world)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    const Clock::time_point now = Clock::now();
    bool have_delayed = false;
    Clock::time_point next_delivery{};
    bool found = false;
    for (auto it = box.queue.begin(); it != box.queue.end();) {
      if (it->context != kAckContext || it->src_world != from_world ||
          it->tag != kTagAck) {
        ++it;
        continue;
      }
      if (it->deliver_at > now) {  // Injected-delay ack: wait it out.
        if (!have_delayed || it->deliver_at < next_delivery) {
          have_delayed = true;
          next_delivery = it->deliver_at;
        }
        ++it;
        continue;
      }
      // Deliverable ack. Corrupted (non-finite) and stale (already
      // superseded) acks are consumed and discarded; the expected one
      // completes the wait.
      const double v = it->data.empty()
                           ? std::numeric_limits<double>::quiet_NaN()
                           : it->data[0];
      it = box.queue.erase(it);
      if (std::isfinite(v) && v >= 0.0 &&
          static_cast<std::uint64_t>(v) == expect_seq) {
        found = true;
        break;
      }
    }
    if (found) return true;
    if (now >= attempt_deadline) return false;
    if (have_delayed && next_delivery < attempt_deadline) {
      box.cv.wait_until(lock, next_delivery);
    } else {
      box.cv.wait_until(lock, attempt_deadline);
    }
  }
}

std::vector<double> World::wait(int dst_world, std::uint64_t context,
                                int src_world, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(dst_world)];
  const bool has_deadline = opts_.timeout.count() > 0;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      has_deadline ? start + opts_.timeout : Clock::time_point{};
  // The recv span closes via RAII on every exit (including timeout
  // throws); critical_path() reads these spans as blocking waits.
  obs::ScopedTimer t_recv("mpisim.recv");
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    const Clock::time_point now = Clock::now();
    // Earliest pending delivery time among matching-but-delayed
    // messages; also detects an immediately deliverable match.
    bool have_delayed = false;
    Clock::time_point next_delivery{};
    auto match = box.queue.end();
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->context != context || it->src_world != src_world ||
          it->tag != tag)
        continue;
      if (it->deliver_at <= now) {
        match = it;
        break;
      }
      if (!have_delayed || it->deliver_at < next_delivery) {
        have_delayed = true;
        next_delivery = it->deliver_at;
      }
    }
    if (match != box.queue.end()) {
      std::vector<double> data = std::move(match->data);
      const std::uint64_t flow = match->flow_id;
      const bool reliable = match->reliable;
      box.queue.erase(match);
      if (flow != 0) obs::trace::flow_recv(flow, src_world, tag);
      add_comm_bytes(/*sent=*/false, dst_world, tag,
                     wire_bytes(data.size(), reliable));
      obs::hist("mpisim.wait_seconds", t_recv.stop());
      return data;
    }
    if (has_deadline && now >= deadline) {
      obs::add("mpisim.timeouts");
      throw TimeoutError(
          dst_world, src_world, tag, context, opts_.timeout,
          std::chrono::duration_cast<std::chrono::milliseconds>(now - start));
    }
    if (have_delayed && (!has_deadline || next_delivery < deadline)) {
      box.cv.wait_until(lock, next_delivery);
    } else if (has_deadline) {
      box.cv.wait_until(lock, deadline);
    } else {
      // no_deadline: timeouts disabled by request (opts_.timeout <= 0).
      box.cv.wait(lock);
    }
  }
}

Comm::Comm(World* world, std::uint64_t context, std::vector<int> members,
           int my_index)
    : world_(world), context_(context), members_(std::move(members)),
      my_index_(my_index) {}

void Comm::send(int dest, int tag, std::span<const double> data) const {
  world_->comm_op(members_[static_cast<size_t>(my_index_)]);
  const int src = members_[static_cast<size_t>(my_index_)];
  const int dst = members_[static_cast<size_t>(dest)];
  const bool reliable = world_->options().reliable.enabled;
  // The span encloses the flow-start event so Perfetto has a slice to
  // anchor the arrow; under ARQ it also covers the ack wait.
  obs::ScopedTimer t_send("mpisim.send");
  // Per-rank-thread counters; the snapshot sums them into total traffic.
  obs::add("mpisim.messages");
  obs::add("mpisim.bytes", wire_bytes(data.size(), reliable));
  add_comm_bytes(/*sent=*/true, src, tag, wire_bytes(data.size(), reliable));
  Message m;
  m.src_world = src;
  m.context = context_;
  m.tag = tag;
  m.data.assign(data.begin(), data.end());
  m.flow_id = world_->next_flow_id();
  obs::trace::flow_send(m.flow_id, dst, tag);
  if (reliable) {
    world_->send_reliable(m.src_world, dst, std::move(m));
  } else {
    world_->post(dst, std::move(m));
  }
}

std::vector<double> Comm::recv(int src, int tag) const {
  world_->comm_op(members_[static_cast<size_t>(my_index_)]);
  return world_->wait(members_[static_cast<size_t>(my_index_)], context_,
                      members_[static_cast<size_t>(src)], tag);
}

std::vector<double> Comm::sendrecv(int partner, int tag,
                                   std::span<const double> data) const {
  // Posting is non-blocking, so send-then-recv cannot deadlock here.
  send(partner, tag, data);
  return recv(partner, tag);
}

Comm Comm::split(int color) const {
  // Exchange (color) values through rank 0 of the current communicator:
  // everyone sends its color to 0; 0 computes the partition and new
  // context ids and scatters them back. Deterministic and collective.
  constexpr int kTagColor = -101;
  constexpr int kTagPlan = -102;

  std::vector<int> colors(static_cast<size_t>(size()), 0);
  if (rank() == 0) {
    colors[0] = color;
    for (int r = 1; r < size(); ++r) {
      auto msg = recv(r, kTagColor);
      colors[static_cast<size_t>(r)] = static_cast<int>(msg.at(0));
    }
    // Assign one fresh context per distinct color, in first-seen order.
    std::map<int, std::uint64_t> ctx_of_color;
    for (int r = 0; r < size(); ++r) {
      const int c = colors[static_cast<size_t>(r)];
      if (!ctx_of_color.count(c)) ctx_of_color[c] = world_->next_context();
    }
    // Plan sent to each rank: [context, nmembers, world ranks...].
    for (int r = size() - 1; r >= 0; --r) {
      const int c = colors[static_cast<size_t>(r)];
      std::vector<double> plan;
      plan.push_back(static_cast<double>(ctx_of_color[c]));
      std::vector<int> group;
      for (int q = 0; q < size(); ++q)
        if (colors[static_cast<size_t>(q)] == c)
          group.push_back(members_[static_cast<size_t>(q)]);
      plan.push_back(static_cast<double>(group.size()));
      for (int w : group) plan.push_back(static_cast<double>(w));
      if (r == 0) {
        // Construct own comm directly below.
        const int me = members_[static_cast<size_t>(my_index_)];
        int idx = static_cast<int>(std::find(group.begin(), group.end(), me) -
                                   group.begin());
        return Comm(world_, ctx_of_color[c], group, idx);
      }
      send(r, kTagPlan, plan);
    }
    throw std::logic_error("Comm::split: unreachable");
  }

  send(0, kTagColor, std::vector<double>{static_cast<double>(color)});
  auto plan = recv(0, kTagPlan);
  const auto ctx = static_cast<std::uint64_t>(plan.at(0));
  const int nmem = static_cast<int>(plan.at(1));
  std::vector<int> group(static_cast<size_t>(nmem));
  for (int i = 0; i < nmem; ++i)
    group[static_cast<size_t>(i)] = static_cast<int>(plan.at(2 + i));
  const int me = members_[static_cast<size_t>(my_index_)];
  int idx = static_cast<int>(std::find(group.begin(), group.end(), me) -
                             group.begin());
  return Comm(world_, ctx, group, idx);
}

void run(int p, const std::function<void(Comm&)>& fn,
         const WorldOptions& opts) {
  World world(p, opts);
  const std::uint64_t ctx = world.next_context();
  std::vector<int> members(static_cast<size_t>(p));
  std::iota(members.begin(), members.end(), 0);

  std::vector<std::thread> threads;
  std::vector<std::pair<int, std::exception_ptr>> errors;
  std::mutex err_mu;
  threads.reserve(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r]() {
      try {
        // One trace track per rank: the export shows a "rank r" row and
        // critical_path() treats this thread as rank r's timeline.
        obs::trace::set_thread_track(r);
        Comm comm(&world, ctx, members, r);
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        errors.emplace_back(r, std::current_exception());
      }
    });
  }
  for (auto& t : threads) t.join();
  if (errors.empty()) return;
  if (errors.size() == 1) std::rethrow_exception(errors.front().second);
  // Several ranks failed: aggregate every rank's message so the caller
  // sees which ranks broke and how (deterministic rank order).
  std::sort(errors.begin(), errors.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<MultiRankError::RankError> what;
  what.reserve(errors.size());
  for (const auto& [r, ep] : errors) {
    try {
      std::rethrow_exception(ep);
    } catch (const std::exception& e) {
      what.push_back({r, e.what()});
    } catch (...) {  // fdks-lint: allow(CATCH-RETHROW) classifier only
      what.push_back({r, "unknown exception"});
    }
  }
  throw MultiRankError(p, std::move(what));
}

void run(int p, const std::function<void(Comm&)>& fn) {
  run(p, fn, WorldOptions{});
}

}  // namespace fdks::mpisim
