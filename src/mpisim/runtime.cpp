#include "mpisim/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "obs/obs.hpp"

namespace fdks::mpisim {

World::World(int size) : size_(size) {
  if (size < 1) throw std::invalid_argument("World: size must be >= 1");
  boxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) boxes_.push_back(std::make_unique<Mailbox>());
}

std::uint64_t World::next_context() {
  return context_counter_.fetch_add(1, std::memory_order_relaxed);
}

void World::post(int dst_world, Message msg) {
  Mailbox& box = *boxes_[static_cast<size_t>(dst_world)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(std::move(msg));
  }
  box.cv.notify_all();
}

std::vector<double> World::wait(int dst_world, std::uint64_t context,
                                int src_world, int tag) {
  Mailbox& box = *boxes_[static_cast<size_t>(dst_world)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (;;) {
    auto it = std::find_if(box.queue.begin(), box.queue.end(),
                           [&](const Message& m) {
                             return m.context == context &&
                                    m.src_world == src_world && m.tag == tag;
                           });
    if (it != box.queue.end()) {
      std::vector<double> data = std::move(it->data);
      box.queue.erase(it);
      return data;
    }
    box.cv.wait(lock);
  }
}

Comm::Comm(World* world, std::uint64_t context, std::vector<int> members,
           int my_index)
    : world_(world), context_(context), members_(std::move(members)),
      my_index_(my_index) {}

void Comm::send(int dest, int tag, std::span<const double> data) const {
  // Per-rank-thread counters; the snapshot sums them into total traffic.
  obs::add("mpisim.messages");
  obs::add("mpisim.bytes", double(data.size()) * double(sizeof(double)));
  Message m;
  m.src_world = members_[static_cast<size_t>(my_index_)];
  m.context = context_;
  m.tag = tag;
  m.data.assign(data.begin(), data.end());
  world_->post(members_[static_cast<size_t>(dest)], std::move(m));
}

std::vector<double> Comm::recv(int src, int tag) const {
  return world_->wait(members_[static_cast<size_t>(my_index_)], context_,
                      members_[static_cast<size_t>(src)], tag);
}

std::vector<double> Comm::sendrecv(int partner, int tag,
                                   std::span<const double> data) const {
  // Posting is non-blocking, so send-then-recv cannot deadlock here.
  send(partner, tag, data);
  return recv(partner, tag);
}

Comm Comm::split(int color) const {
  // Exchange (color) values through rank 0 of the current communicator:
  // everyone sends its color to 0; 0 computes the partition and new
  // context ids and scatters them back. Deterministic and collective.
  constexpr int kTagColor = -101;
  constexpr int kTagPlan = -102;

  std::vector<int> colors(static_cast<size_t>(size()), 0);
  if (rank() == 0) {
    colors[0] = color;
    for (int r = 1; r < size(); ++r) {
      auto msg = recv(r, kTagColor);
      colors[static_cast<size_t>(r)] = static_cast<int>(msg.at(0));
    }
    // Assign one fresh context per distinct color, in first-seen order.
    std::map<int, std::uint64_t> ctx_of_color;
    for (int r = 0; r < size(); ++r) {
      const int c = colors[static_cast<size_t>(r)];
      if (!ctx_of_color.count(c)) ctx_of_color[c] = world_->next_context();
    }
    // Plan sent to each rank: [context, nmembers, world ranks...].
    for (int r = size() - 1; r >= 0; --r) {
      const int c = colors[static_cast<size_t>(r)];
      std::vector<double> plan;
      plan.push_back(static_cast<double>(ctx_of_color[c]));
      std::vector<int> group;
      for (int q = 0; q < size(); ++q)
        if (colors[static_cast<size_t>(q)] == c)
          group.push_back(members_[static_cast<size_t>(q)]);
      plan.push_back(static_cast<double>(group.size()));
      for (int w : group) plan.push_back(static_cast<double>(w));
      if (r == 0) {
        // Construct own comm directly below.
        const int me = members_[static_cast<size_t>(my_index_)];
        int idx = static_cast<int>(std::find(group.begin(), group.end(), me) -
                                   group.begin());
        return Comm(world_, ctx_of_color[c], group, idx);
      }
      send(r, kTagPlan, plan);
    }
    throw std::logic_error("Comm::split: unreachable");
  }

  send(0, kTagColor, std::vector<double>{static_cast<double>(color)});
  auto plan = recv(0, kTagPlan);
  const auto ctx = static_cast<std::uint64_t>(plan.at(0));
  const int nmem = static_cast<int>(plan.at(1));
  std::vector<int> group(static_cast<size_t>(nmem));
  for (int i = 0; i < nmem; ++i)
    group[static_cast<size_t>(i)] = static_cast<int>(plan.at(2 + i));
  const int me = members_[static_cast<size_t>(my_index_)];
  int idx = static_cast<int>(std::find(group.begin(), group.end(), me) -
                             group.begin());
  return Comm(world_, ctx, group, idx);
}

void run(int p, const std::function<void(Comm&)>& fn) {
  World world(p);
  const std::uint64_t ctx = world.next_context();
  std::vector<int> members(static_cast<size_t>(p));
  std::iota(members.begin(), members.end(), 0);

  std::vector<std::thread> threads;
  std::exception_ptr first_error = nullptr;
  std::mutex err_mu;
  threads.reserve(static_cast<size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r]() {
      try {
        Comm comm(&world, ctx, members, r);
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace fdks::mpisim
