#include "mpisim/fault.hpp"

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fdks::mpisim {

namespace {

std::string timeout_message(int waiting_rank, int src_rank, int tag,
                            std::uint64_t context,
                            std::chrono::milliseconds deadline,
                            std::chrono::milliseconds elapsed,
                            const char* waited_for) {
  std::ostringstream os;
  os << "mpisim timeout: rank " << waiting_rank << " waited "
     << elapsed.count() << " ms for " << waited_for << " from rank "
     << src_rank << " (tag " << tag << ", context " << context
     << ", deadline " << deadline.count() << " ms)";
  return os.str();
}

std::string killed_message(int rank, std::uint64_t op_index) {
  std::ostringstream os;
  os << "mpisim fault: rank " << rank
     << " killed by the fault plan at communication op " << op_index;
  return os.str();
}

std::string multi_message(int world_size,
                          const std::vector<MultiRankError::RankError>& errs) {
  std::ostringstream os;
  os << "mpisim::run: " << errs.size() << " of " << world_size
     << " ranks failed:";
  for (const auto& e : errs) os << "\n  rank " << e.rank << ": " << e.what;
  return os.str();
}

/// splitmix64: small, well-mixed, and stable across platforms.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

TimeoutError::TimeoutError(int waiting_rank, int src_rank, int tag,
                           std::uint64_t context,
                           std::chrono::milliseconds deadline,
                           std::chrono::milliseconds elapsed,
                           const char* waited_for)
    : std::runtime_error(timeout_message(waiting_rank, src_rank, tag, context,
                                         deadline, elapsed, waited_for)),
      waiting_rank_(waiting_rank), src_rank_(src_rank), tag_(tag),
      context_(context), deadline_(deadline), elapsed_(elapsed) {}

RankKilledError::RankKilledError(int rank, std::uint64_t op_index)
    : std::runtime_error(killed_message(rank, op_index)), rank_(rank) {}

MultiRankError::MultiRankError(int world_size, std::vector<RankError> errors)
    : std::runtime_error(multi_message(world_size, errors)),
      errors_(std::move(errors)) {}

void validate_options(const WorldOptions& opts, int world_size) {
  const FaultPlan& fp = opts.faults;
  const auto bad = [](const std::string& what) {
    throw std::invalid_argument("mpisim::WorldOptions: " + what);
  };
  const auto check_fraction = [&](const char* field, double v) {
    if (!(v >= 0.0 && v <= 1.0))
      bad("FaultPlan." + std::string(field) + " must be in [0, 1] (got " +
          std::to_string(v) + ")");
  };
  check_fraction("drop_fraction", fp.drop_fraction);
  check_fraction("delay_fraction", fp.delay_fraction);
  check_fraction("duplicate_fraction", fp.duplicate_fraction);
  check_fraction("corrupt_fraction", fp.corrupt_fraction);
  if (fp.delay.count() < 0)
    bad("FaultPlan.delay must be >= 0 ms (got " +
        std::to_string(fp.delay.count()) + ")");
  if (fp.stall.count() < 0)
    bad("FaultPlan.stall must be >= 0 ms (got " +
        std::to_string(fp.stall.count()) + ")");
  const auto check_rank = [&](const char* field, int r) {
    if (r < -1 || r >= world_size)
      bad("FaultPlan." + std::string(field) + " must be -1 or a world rank " +
          "in [0, " + std::to_string(world_size) + ") (got " +
          std::to_string(r) + ")");
  };
  check_rank("stall_rank", fp.stall_rank);
  check_rank("kill_rank", fp.kill_rank);
  const ReliableTransport& rt = opts.reliable;
  if (rt.enabled) {
    if (rt.ack_timeout.count() <= 0)
      bad("ReliableTransport.ack_timeout must be > 0 ms (got " +
          std::to_string(rt.ack_timeout.count()) + ")");
    if (rt.max_retries < 0)
      bad("ReliableTransport.max_retries must be >= 0 (got " +
          std::to_string(rt.max_retries) + ")");
    if (!(rt.backoff >= 1.0))
      bad("ReliableTransport.backoff must be >= 1 (got " +
          std::to_string(rt.backoff) + ")");
    if (rt.max_backoff < rt.ack_timeout)
      bad("ReliableTransport.max_backoff must be >= ack_timeout (got " +
          std::to_string(rt.max_backoff.count()) + " ms)");
  }
}

FaultAction fault_decide(const FaultPlan& plan, int src_world, int dst_world,
                         int tag, std::uint64_t sequence) {
  if (!plan.message_faults()) return FaultAction::None;
  std::uint64_t h = mix64(plan.seed ^ 0x66646b73ull);  // "fdks".
  h = mix64(h ^ static_cast<std::uint64_t>(src_world));
  h = mix64(h ^ static_cast<std::uint64_t>(dst_world));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  h = mix64(h ^ sequence);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double acc = plan.drop_fraction;
  if (u < acc) return FaultAction::Drop;
  acc += plan.delay_fraction;
  if (u < acc) return FaultAction::Delay;
  acc += plan.duplicate_fraction;
  if (u < acc) return FaultAction::Duplicate;
  acc += plan.corrupt_fraction;
  if (u < acc) return FaultAction::Corrupt;
  return FaultAction::None;
}

}  // namespace fdks::mpisim
