// Collectives built on the point-to-point layer. Linear (through-root)
// algorithms: the rank counts here are small, and determinism of the
// reduction order (ascending rank) matters more than log-depth fan-in
// for reproducible numerics.
#include <stdexcept>
#include <vector>

#include "mpisim/runtime.hpp"

namespace fdks::mpisim {

namespace {
constexpr int kTagBcast = -201;
constexpr int kTagReduce = -202;
constexpr int kTagGather = -203;
constexpr int kTagBarrier = -204;
}  // namespace

void Comm::bcast(std::vector<double>& data, int root) const {
  if (size() == 1) return;
  if (rank() == root) {
    for (int r = 0; r < size(); ++r)
      if (r != root) send(r, kTagBcast, data);
  } else {
    data = recv(root, kTagBcast);
  }
}

void Comm::reduce_sum(std::vector<double>& data, int root) const {
  if (size() == 1) return;
  if (rank() == root) {
    // Deterministic order: accumulate contributions by ascending rank.
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      auto part = recv(r, kTagReduce);
      if (part.size() != data.size())
        throw std::invalid_argument("reduce_sum: length mismatch");
      for (size_t i = 0; i < data.size(); ++i) data[i] += part[i];
    }
  } else {
    send(root, kTagReduce, data);
  }
}

void Comm::allreduce_sum(std::vector<double>& data) const {
  reduce_sum(data, 0);
  bcast(data, 0);
}

std::vector<double> Comm::allgatherv(std::span<const double> mine) const {
  if (size() == 1) return std::vector<double>(mine.begin(), mine.end());
  std::vector<double> all;
  if (rank() == 0) {
    all.assign(mine.begin(), mine.end());
    for (int r = 1; r < size(); ++r) {
      auto part = recv(r, kTagGather);
      all.insert(all.end(), part.begin(), part.end());
    }
  } else {
    send(0, kTagGather, mine);
  }
  bcast(all, 0);
  return all;
}

void Comm::barrier() const {
  std::vector<double> token(1, 0.0);
  if (size() == 1) return;
  if (rank() == 0) {
    for (int r = 1; r < size(); ++r) (void)recv(r, kTagBarrier);
    for (int r = 1; r < size(); ++r) send(r, kTagBarrier, token);
  } else {
    send(0, kTagBarrier, token);
    (void)recv(0, kTagBarrier);
  }
}

}  // namespace fdks::mpisim
