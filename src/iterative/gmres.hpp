// Restarted GMRES with modified Gram-Schmidt and optional CGS
// re-orthogonalization refinement.
//
// Substitute for the PETSc KSP the paper uses ("modified Gram-Schmidt
// for re-orthogonalization and GMRES CGS refinement"). The solver is
// operator-based: the hybrid method hands it the reduced system
// (I + VW), and the Figure 5 baseline hands it the ASKIT treecode
// matvec for (lambda I + K~). Residual and wall-clock histories are
// recorded so convergence traces can be reproduced.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/cancel.hpp"
#include "la/matrix.hpp"

namespace fdks::iter {

using la::index_t;

/// y = A x. The operator owns its own scratch; y is fully overwritten.
using LinOp =
    std::function<void(std::span<const double>, std::span<double>)>;

struct GmresOptions {
  int max_iters = 500;       ///< Total Krylov iterations across restarts.
  int restart = 60;          ///< Arnoldi basis size per cycle.
  double rtol = 1e-10;       ///< Stop when ||r|| <= rtol * ||b||.
  double atol = 0.0;         ///< Stop when ||r|| <= atol.
  bool cgs_refine = true;    ///< Second orthogonalization pass (CGS2).
  bool record_history = true;
  /// Stagnation guardrail: stop (with .stagnated set) when the residual
  /// norm improves by less than a factor of stagnation_rtol over
  /// stagnation_window consecutive iterations. 0 disables.
  int stagnation_window = 0;
  double stagnation_rtol = 0.99;
  /// Cooperative cancellation: checked at every Arnoldi iteration and
  /// restart boundary; an expired token aborts the solve by throwing
  /// core::CancelledError (the serving layer's deadline path). The
  /// token must outlive the gmres() call. nullptr = never cancel.
  const core::CancelToken* cancel = nullptr;
  /// Right preconditioner M⁻¹: when set, GMRES iterates on (A M⁻¹) y = b
  /// and returns x = M⁻¹ y. Because ‖b − (A M⁻¹) y‖ = ‖b − A x‖, the
  /// reported relative_residual is the TRUE residual of A x = b — which
  /// is what makes this the escalation rung of the certification ladder
  /// (core/verify.hpp): an approximate factorization plugged in here
  /// accelerates convergence without distorting the stopping test.
  /// Empty = identity (unpreconditioned).
  LinOp right_precond;
};

struct GmresResult {
  std::vector<double> x;
  bool converged = false;
  int iterations = 0;
  double relative_residual = 1.0;          ///< Final ||r|| / ||b||.
  std::vector<double> residual_history;    ///< Per-iteration ||r||/||b||.
  std::vector<double> time_history;        ///< Seconds since solve start.
  // Guardrail outcomes (§III robustness): why the iteration stopped
  // when it did not converge.
  bool breakdown = false;   ///< Arnoldi produced a zero vector while the
                            ///< residual was still above tolerance.
  bool stagnated = false;   ///< Stagnation detector tripped.
  bool nonfinite = false;   ///< NaN/Inf appeared; iteration aborted and
                            ///< x holds the last finite iterate.
};

/// Solve A x = b with x0 = 0. n is the system size.
GmresResult gmres(index_t n, const LinOp& a, std::span<const double> b,
                  const GmresOptions& opts = {});

}  // namespace fdks::iter
