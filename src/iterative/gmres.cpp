#include "iterative/gmres.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <vector>

#include "la/blas1.hpp"
#include "obs/obs.hpp"

namespace fdks::iter {

namespace {

using la::axpy;
using la::dot;
using la::nrm2;
using la::scal;

double elapsed(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Feeds the gmres.iter_seconds histogram from every exit of the Arnoldi
// loop body (normal step, breakdown, stagnation, tolerance break). The
// clock is only read while the registry is on.
struct IterClock {
  bool on = obs::enabled();
  std::chrono::steady_clock::time_point t0 =
      on ? std::chrono::steady_clock::now()
         : std::chrono::steady_clock::time_point{};
  ~IterClock() {
    if (on) obs::hist("gmres.iter_seconds", elapsed(t0));
  }
};

}  // namespace

GmresResult gmres(index_t n, const LinOp& a, std::span<const double> b,
                  const GmresOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::ScopedTimer t_gmres("gmres");
  obs::add("gmres.solves");
  GmresResult out;
  out.x.assign(static_cast<size_t>(n), 0.0);

  // Right preconditioning: iterate on (A M⁻¹) y = b, then map the
  // Krylov solution back through x = M⁻¹ y before returning. out.x
  // holds y inside the loop; every residual below is the true residual
  // of A x = b, so tolerances and histories need no adjustment.
  std::vector<double> precond_scratch;
  LinOp aop;
  if (opts.right_precond) {
    precond_scratch.assign(static_cast<size_t>(n), 0.0);
    aop = [&a, &opts, &precond_scratch](std::span<const double> in,
                                        std::span<double> y) {
      opts.right_precond(in, precond_scratch);
      a(precond_scratch, y);
    };
  } else {
    aop = a;
  }

  const double bnorm = nrm2(b);
  if (!std::isfinite(bnorm)) {
    // Guardrail: a poisoned right-hand side cannot be iterated on.
    out.nonfinite = true;
    out.relative_residual = bnorm;
    obs::add("guardrail.gmres_nonfinite");
    return out;
  }
  if (bnorm == 0.0) {
    out.converged = true;
    out.relative_residual = 0.0;
    return out;
  }
  const double target = std::max(opts.rtol * bnorm, opts.atol);
  // Residual norms per global iteration, kept for the stagnation
  // detector independently of record_history.
  std::vector<double> rnorms;
  if (opts.stagnation_window > 0)
    rnorms.reserve(static_cast<size_t>(opts.max_iters));

  const int m = std::max(1, opts.restart);
  // Arnoldi basis (m+1 vectors) and Hessenberg in compact storage.
  std::vector<std::vector<double>> v(
      static_cast<size_t>(m + 1),
      std::vector<double>(static_cast<size_t>(n), 0.0));
  std::vector<double> h(static_cast<size_t>((m + 1) * m), 0.0);
  std::vector<double> cs(static_cast<size_t>(m), 0.0);
  std::vector<double> sn(static_cast<size_t>(m), 0.0);
  std::vector<double> g(static_cast<size_t>(m + 1), 0.0);
  std::vector<double> w(static_cast<size_t>(n), 0.0);

  auto H = [&](int i, int j) -> double& {
    return h[static_cast<size_t>(i + j * (m + 1))];
  };

  int total_it = 0;
  double rnorm = bnorm;

  while (total_it < opts.max_iters) {
    if (opts.cancel) opts.cancel->check("iter::gmres");
    // Residual r = b - A x (x = 0 on the first cycle keeps this exact).
    aop(out.x, w);
    for (index_t i = 0; i < n; ++i)
      v[0][static_cast<size_t>(i)] = b[static_cast<size_t>(i)] -
                                     w[static_cast<size_t>(i)];
    rnorm = nrm2(v[0]);
    if (!std::isfinite(rnorm)) {
      out.nonfinite = true;
      obs::add("guardrail.gmres_nonfinite");
      break;
    }
    if (rnorm <= target) {
      out.converged = true;
      break;
    }
    scal(1.0 / rnorm, v[0]);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = rnorm;

    int k = 0;
    for (; k < m && total_it < opts.max_iters; ++k, ++total_it) {
      if (opts.cancel) opts.cancel->check("iter::gmres");
      IterClock iter_clock;
      // Arnoldi step: w = A v_k, orthogonalize against the basis with
      // MGS, then (optionally) run a second CGS-style refinement pass.
      aop(v[static_cast<size_t>(k)], w);
      for (int i = 0; i <= k; ++i) {
        const double hik = dot(v[static_cast<size_t>(i)], w);
        H(i, k) = hik;
        axpy(-hik, v[static_cast<size_t>(i)], w);
      }
      if (opts.cgs_refine) {
        for (int i = 0; i <= k; ++i) {
          const double corr = dot(v[static_cast<size_t>(i)], w);
          H(i, k) += corr;
          axpy(-corr, v[static_cast<size_t>(i)], w);
        }
      }
      const double hk1 = nrm2(w);
      H(k + 1, k) = hk1;
      if (hk1 > 0.0) {
        v[static_cast<size_t>(k + 1)] = w;
        scal(1.0 / hk1, v[static_cast<size_t>(k + 1)]);
      }

      // Apply stored Givens rotations to the new column, then create the
      // rotation eliminating H(k+1, k).
      for (int i = 0; i < k; ++i) {
        const double t1 = cs[static_cast<size_t>(i)] * H(i, k) +
                          sn[static_cast<size_t>(i)] * H(i + 1, k);
        const double t2 = -sn[static_cast<size_t>(i)] * H(i, k) +
                          cs[static_cast<size_t>(i)] * H(i + 1, k);
        H(i, k) = t1;
        H(i + 1, k) = t2;
      }
      const double denom = std::hypot(H(k, k), H(k + 1, k));
      if (denom == 0.0) {
        cs[static_cast<size_t>(k)] = 1.0;
        sn[static_cast<size_t>(k)] = 0.0;
      } else {
        cs[static_cast<size_t>(k)] = H(k, k) / denom;
        sn[static_cast<size_t>(k)] = H(k + 1, k) / denom;
      }
      H(k, k) = denom;
      H(k + 1, k) = 0.0;
      const double gk = g[static_cast<size_t>(k)];
      g[static_cast<size_t>(k)] = cs[static_cast<size_t>(k)] * gk;
      g[static_cast<size_t>(k + 1)] = -sn[static_cast<size_t>(k)] * gk;

      rnorm = std::abs(g[static_cast<size_t>(k + 1)]);
      if (opts.record_history) {
        out.residual_history.push_back(rnorm / bnorm);
        out.time_history.push_back(elapsed(t0));
      }
      if (!std::isfinite(rnorm) || !std::isfinite(hk1)) {
        // Guardrail: NaN/Inf in the Arnoldi process — abort rather
        // than iterate on garbage. x keeps the last finite update.
        out.nonfinite = true;
        obs::add("guardrail.gmres_nonfinite");
        ++k;
        ++total_it;
        break;
      }
      if (opts.stagnation_window > 0) {
        rnorms.push_back(rnorm);
        const size_t wnd = static_cast<size_t>(opts.stagnation_window);
        if (rnorms.size() > wnd &&
            rnorm > opts.stagnation_rtol * rnorms[rnorms.size() - 1 - wnd]) {
          out.stagnated = true;
          obs::add("guardrail.gmres_stagnation");
          ++k;
          ++total_it;
          break;
        }
      }
      if (rnorm <= target || hk1 == 0.0) {
        if (hk1 == 0.0 && rnorm > target) {
          // True breakdown: invariant subspace reached without hitting
          // the tolerance (lucky breakdown would have rnorm <= target).
          out.breakdown = true;
          obs::add("guardrail.gmres_breakdown");
        }
        ++k;
        ++total_it;
        break;
      }
    }

    // Back-substitute y from the triangular H and update x += V y.
    std::vector<double> y(static_cast<size_t>(k), 0.0);
    bool singular_h = false;
    for (int i = k - 1; i >= 0; --i) {
      if (H(i, i) == 0.0) {
        // Zero pivot: this Krylov direction carries no information (the
        // operator is singular along it). Skip it instead of dividing by
        // zero — the Givens residual estimate is fictitious here.
        singular_h = true;
        continue;
      }
      double s = g[static_cast<size_t>(i)];
      for (int j = i + 1; j < k; ++j) s -= H(i, j) * y[static_cast<size_t>(j)];
      y[static_cast<size_t>(i)] = s / H(i, i);
    }
    for (int i = 0; i < k; ++i)
      axpy(y[static_cast<size_t>(i)], v[static_cast<size_t>(i)], out.x);

    if (singular_h && !out.breakdown) {
      out.breakdown = true;
      obs::add("guardrail.gmres_breakdown");
    }
    if (out.breakdown || out.stagnated || out.nonfinite) break;
    if (rnorm <= target) {
      out.converged = true;
      break;
    }
  }

  if (opts.right_precond) {
    // Map the preconditioned-space iterate back: x = M⁻¹ y.
    opts.right_precond(out.x, precond_scratch);
    out.x = precond_scratch;
  }
  out.iterations = total_it;
  out.relative_residual = rnorm / bnorm;
  if (!out.breakdown && !out.nonfinite && rnorm <= target)
    out.converged = true;
  obs::add("gmres.iterations", static_cast<double>(total_it));
  return out;
}

}  // namespace fdks::iter
