#include "serve/factor_cache.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "obs/obs.hpp"

namespace fdks::serve {

FactorCache::FactorCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)) {}

std::string FactorCache::fingerprint(const HMatrix& h,
                                     const SolverOptions& opts) {
  // FactorTree construction only sizes the per-node factor table — no
  // numerical work — so building a throwaway tree for its identity
  // string is cheap relative to any request.
  return ckpt::factor_fingerprint(core::FactorTree(h, opts), "serve");
}

void FactorCache::evict_locked() {
  // Evict ready entries beyond capacity, least recently used first.
  // In-flight entries are never evicted: a waiter holds a pointer to
  // them and the factorizing thread will mark them ready.
  for (auto it = lru_.rbegin();
       it != lru_.rend() && entries_.size() > capacity_;) {
    auto e = entries_.find(*it);
    if (e != entries_.end() && e->second->ready) {
      entries_.erase(e);
      ++stats_.evictions;
      obs::add("serve.cache_evict");
      it = std::reverse_iterator(lru_.erase(std::next(it).base()));
    } else {
      ++it;
    }
  }
}

std::shared_ptr<const core::FastDirectSolver> FactorCache::get(
    const HMatrix& h, const SolverOptions& opts) {
  const std::string key = fingerprint(h, opts);
  std::unique_lock<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    std::shared_ptr<Entry> e = it->second;
    lru_.remove(key);
    lru_.push_front(key);
    ++stats_.hits;
    obs::add("serve.cache_hit");
    // Coalesce onto an in-flight factorization: wait (with a deadline
    // so a crashed factorizer cannot park us forever) until ready.
    while (!e->ready && !e->failed)
      cv_.wait_for(lk, std::chrono::milliseconds(100));
    if (e->failed)
      throw std::runtime_error("FactorCache::get: " + e->error);
    return e->solver;
  }

  ++stats_.misses;
  obs::add("serve.cache_miss");
  auto e = std::make_shared<Entry>();
  entries_[key] = e;
  lru_.push_front(key);
  evict_locked();
  lk.unlock();

  std::shared_ptr<const core::FastDirectSolver> solver;
  std::string error;
  try {
    solver = std::make_shared<core::FastDirectSolver>(h, opts);
  } catch (const std::exception& ex) {
    error = ex.what();
  }

  lk.lock();
  if (solver) {
    e->solver = solver;
    e->ready = true;
  } else {
    e->failed = true;
    e->error = error;
    entries_.erase(key);  // Poisoned entry: let a later call retry.
    lru_.remove(key);
  }
  lk.unlock();
  cv_.notify_all();
  if (!solver)
    throw std::runtime_error("FactorCache::get: " + error);
  return solver;
}

size_t FactorCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

FactorCache::Stats FactorCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace fdks::serve
