#include "serve/factor_cache.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "ckpt/checkpoint.hpp"
#include "obs/obs.hpp"

namespace fdks::serve {

namespace {

FactorCacheOptions options_for_capacity(size_t capacity) {
  FactorCacheOptions o;
  o.capacity = std::max<size_t>(1, capacity);
  return o;
}

FactorCacheOptions sanitize(FactorCacheOptions o) {
  o.capacity = std::max<size_t>(1, o.capacity);
  return o;
}

}  // namespace

FactorCache::FactorCache(size_t capacity)
    : opts_(options_for_capacity(capacity)) {}

FactorCache::FactorCache(FactorCacheOptions opts)
    : opts_(sanitize(std::move(opts))) {}

std::string FactorCache::fingerprint(const HMatrix& h,
                                     const SolverOptions& opts) {
  // FactorTree construction only sizes the per-node factor table — no
  // numerical work — so building a throwaway tree for its identity
  // string is cheap relative to any request.
  return ckpt::factor_fingerprint(core::FactorTree(h, opts), "serve");
}

void FactorCache::evict_locked() {
  // Evict ready entries beyond the entry-count capacity or the byte
  // budget, least recently used first. In-flight entries are never
  // evicted: a waiter holds a pointer to them and the factorizing
  // thread will mark them ready (their bytes are accounted, and the
  // budget re-checked, at that point).
  for (auto it = lru_.rbegin(); it != lru_.rend();) {
    const bool over = entries_.size() > opts_.capacity ||
                      (opts_.max_bytes > 0 && bytes_ > opts_.max_bytes);
    if (!over) break;
    auto e = entries_.find(*it);
    if (e != entries_.end() && e->second->ready) {
      bytes_ -= e->second->bytes;
      obs::gauge("serve.cache_bytes", static_cast<double>(bytes_));
      entries_.erase(e);
      ++stats_.evictions;
      obs::add("serve.cache_evict");
      it = std::reverse_iterator(lru_.erase(std::next(it).base()));
    } else {
      ++it;
    }
  }
}

bool FactorCache::breaker_open(const HMatrix& h,
                               const SolverOptions& opts) const {
  const std::string key = fingerprint(h, opts);
  std::lock_guard<std::mutex> lk(mu_);
  auto b = breakers_.find(key);
  return b != breakers_.end() &&
         b->second.open_until > std::chrono::steady_clock::now();
}

std::shared_ptr<const core::FastDirectSolver> FactorCache::get(
    const HMatrix& h, const SolverOptions& opts) {
  const std::string key = fingerprint(h, opts);
  std::unique_lock<std::mutex> lk(mu_);

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    std::shared_ptr<Entry> e = it->second;
    lru_.remove(key);
    lru_.push_front(key);
    ++stats_.hits;
    obs::add("serve.cache_hit");
    // Coalesce onto an in-flight factorization: wait (with a deadline
    // so a crashed factorizer cannot park us forever) until ready.
    while (!e->ready && !e->failed)
      cv_.wait_for(lk, std::chrono::milliseconds(100));
    if (e->failed)
      throw std::runtime_error("FactorCache::get: " + e->error);
    // Lazy integrity cadence: first hit, then every Nth. The checksum
    // walk is lock-free — factors are immutable once sealed, and other
    // readers may keep solving off this entry meanwhile.
    const bool check_integrity =
        opts_.integrity_check_every > 0 &&
        e->hits % static_cast<std::uint64_t>(opts_.integrity_check_every) ==
            0;
    ++e->hits;
    std::shared_ptr<const core::FastDirectSolver> solver = e->solver;
    if (!check_integrity) return solver;
    lk.unlock();
    const bool intact = solver->verify_integrity();
    if (intact) return solver;
    // Self-heal: drop the corrupted entry (if it is still the resident
    // one) and fall through to a fresh factorization via get().
    lk.lock();
    ++stats_.integrity_failures;
    auto cur = entries_.find(key);
    if (cur != entries_.end() && cur->second == e) {
      bytes_ -= e->bytes;
      obs::gauge("serve.cache_bytes", static_cast<double>(bytes_));
      entries_.erase(cur);
      lru_.remove(key);
    }
    lk.unlock();
    return get(h, opts);
  }

  // Circuit breaker: a key that keeps failing to factorize fast-fails
  // during its cooldown instead of re-burning the factorization cost.
  // Callers fall back to the degraded GMRES-only path meanwhile.
  if (opts_.breaker_threshold > 0) {
    auto b = breakers_.find(key);
    if (b != breakers_.end() &&
        b->second.open_until > std::chrono::steady_clock::now()) {
      ++stats_.breaker_rejects;
      throw ServeError(ServeCode::BreakerOpen,
                       "FactorCache::get: circuit breaker open after "
                       "repeated factorization failures for this key");
    }
  }

  ++stats_.misses;
  obs::add("serve.cache_miss");
  auto e = std::make_shared<Entry>();
  entries_[key] = e;
  lru_.push_front(key);
  evict_locked();
  lk.unlock();

  std::shared_ptr<const core::FastDirectSolver> solver;
  std::string error;
  try {
    solver = opts_.factory
                 ? opts_.factory(h, opts)
                 : std::make_shared<core::FastDirectSolver>(h, opts);
    if (!solver) error = "factory returned null";
  } catch (const std::exception& ex) {
    error = ex.what();
  }

  lk.lock();
  if (solver) {
    e->solver = solver;
    e->ready = true;
    e->bytes = solver->factor_tree().memory_bytes();
    bytes_ += e->bytes;
    obs::gauge("serve.cache_bytes", static_cast<double>(bytes_));
    breakers_.erase(key);  // Success closes/clears the breaker.
    evict_locked();        // Byte budget is only known now.
  } else {
    e->failed = true;
    e->error = error;
    entries_.erase(key);  // Poisoned entry: let a later call retry.
    lru_.remove(key);
    ++stats_.failures;
    if (opts_.breaker_threshold > 0) {
      Breaker& b = breakers_[key];
      ++b.consecutive_failures;
      if (b.consecutive_failures >= opts_.breaker_threshold) {
        b.open_until =
            std::chrono::steady_clock::now() + opts_.breaker_cooldown;
        ++stats_.breaker_trips;
        obs::add("serve.breaker_open");
      }
    }
  }
  lk.unlock();
  cv_.notify_all();
  if (!solver)
    throw std::runtime_error("FactorCache::get: " + error);
  return solver;
}

size_t FactorCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

size_t FactorCache::bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bytes_;
}

FactorCache::Stats FactorCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace fdks::serve
