// Tail-based request trace sampling.
//
// Head sampling (flip a coin at admission) misses exactly the requests
// worth debugging: the p99 stragglers and the errors. Tail sampling
// decides *after* the outcome is known — cheap here because the trace
// ring buffers (obs/trace.hpp) already hold every span; all this class
// adds is a keep/drop decision at batch completion and a bounded store
// of kept slices.
//
// Policy, for a budget of `keep` traces:
//   - error outcomes are always kept, evicting the fastest non-error
//     entry when full (errors never evict errors for a slow request);
//   - successful requests are kept while the store has room, then only
//     when slower than the current slowest — so at any instant the
//     store holds the latency tail of the run so far;
//   - requests faster than `min_latency_seconds` are never kept.
//
// A kept entry snapshots trace::collect() filtered to the request's
// [enqueue, batch-done] window plus every flow event stamped with its
// request_id — ServeEngine emits flow_send at submit and flow_recv at
// batch pack, so the exported Perfetto JSON shows an arrow from the
// submitting thread into the worker's solve span. write_all() renders
// one Chrome-trace JSON per kept request.
//
// Thread safety: observe() and the accessors lock one mutex; the
// trace::collect() snapshot happens only for kept requests (at most
// `keep` live copies), so the common fast-request path is a mutex and
// a compare.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace fdks::serve {

struct TailTraceOptions {
  std::size_t keep = 4;              ///< Kept-trace budget (0 disables).
  double min_latency_seconds = 0.0;  ///< Floor for non-error keeps.
};

class TailTraceSampler {
 public:
  explicit TailTraceSampler(TailTraceOptions opts = {});

  struct KeptTrace {
    std::uint64_t request_id = 0;
    double latency_seconds = 0.0;
    bool error = false;
    obs::trace::TraceData data;  ///< Filtered slice, ready to export.
  };

  /// Keep/drop decision for one completed request. `window_t0_ns` /
  /// `window_t1_ns` bound the request's life on the steady_clock epoch
  /// the trace buffers use (enqueue to batch completion). Returns true
  /// when the request's trace was kept. Bumps serve.trace_kept on keep.
  bool observe(std::uint64_t request_id, double latency_seconds, bool error,
               std::uint64_t window_t0_ns, std::uint64_t window_t1_ns);

  std::size_t kept_count() const;
  std::vector<KeptTrace> kept() const;  ///< Copies, slowest-first.

  /// Write each kept trace to "<prefix>req<id>.json" (Chrome trace
  /// JSON, Perfetto-loadable). Returns the number of files written.
  std::size_t write_all(const std::string& prefix) const;

  const TailTraceOptions& options() const { return opts_; }

 private:
  TailTraceOptions opts_;
  mutable std::mutex mu_;
  std::vector<KeptTrace> kept_;  ///< Sorted slowest-first, <= keep.
};

}  // namespace fdks::serve
