// Admission queue + batched execution for the serving front end.
//
// ServeEngine turns independent single-RHS solve requests into blocked
// multi-RHS solves: submit() enqueues a right-hand side and returns a
// future; a worker thread drains the queue, packs up to `batch_max`
// pending requests into one [n x B] block, and runs a single batched
// solve through the factor tree (FastDirectSolver::solve(Matrix)) —
// every factor matrix is streamed once per batch instead of once per
// request, which is the multi-RHS throughput win bench_serving
// measures.
//
// The request lifecycle is hardened end to end (serve/status.hpp holds
// the outcome vocabulary):
//   - Admission control: queue_max bounds the queue; submissions past
//     it are shed with ServeError(Overloaded). validate_rhs rejects
//     non-finite right-hand sides at the door (InvalidRhs).
//   - Deadlines: per-request (submit overload) or engine-wide
//     (default_deadline). Expired requests are shed before packing;
//     a batch whose every member is expired aborts mid-solve through
//     the core::CancelToken threaded into the telescoping recursion,
//     and requests that finish past their deadline still fail with
//     DeadlineExceeded.
//   - Poison isolation: block solve columns are arithmetically
//     independent, so a NaN that survives admission fails only its own
//     request (PoisonRhs); a solve that throws is bisected until the
//     offending request(s) fail alone (SolveFailed).
//   - Degraded mode: when the queue reaches degrade_watermark of
//     queue_max, batches are served by the GMRES-only treecode path at
//     relaxed tolerance and marked ServeResult::Degraded — graceful
//     degradation instead of unbounded queueing.
//   - Certification: under ServeOptions::verify, in-sample batches have
//     their Ok answers' residuals measured a posteriori through the
//     treecode matvec; failing columns walk the refinement/escalation
//     ladder (core/verify.hpp) and an uncertifiable answer fails with
//     SolveFailed rather than being returned silently wrong.
//
// pause()/resume() gate the worker: submissions made while paused are
// coalesced into maximal batches on resume. This is how tests and the
// bench's deterministic smoke mode pin down batch composition —
// without it, batch sizes depend on scheduler timing.
//
// Observability (obs/keys.hpp): serve.requests / serve.batches /
// serve.shed / serve.expired / serve.degraded / serve.poison counters,
// serve.batch_size / serve.batch_seconds / serve.request_seconds
// histograms, and a serve.batch timer scope. Live telemetry hooks
// (all optional, attached through ServeOptions):
//   - event_log: every submit() mints a monotonic request_id
//     (obs::next_request_id) and the engine narrates the request's
//     lifecycle — admitted / shed / batched / solved / expired /
//     degraded / failed — one JSON line each, exactly one terminal
//     event per request (obs/eventlog.hpp).
//   - slo: completed requests feed a rolling-window SLO tracker whose
//     exhausted error budget is a second trigger (besides the queue
//     watermark) for degraded batches; the engine publishes
//     serve.slo_budget / serve.slo_p99_seconds gauges per batch and
//     counts serve.slo_breach when the SLO alone forces degradation.
//   - tail_trace: at batch completion each request's latency/outcome is
//     offered to a tail sampler that retroactively keeps the trace
//     slice of the slowest (and all failed) requests, with request_id
//     stamped as a trace flow from submit() into the worker's batch
//     (serve/tail_trace.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "core/solver.hpp"
#include "iterative/gmres.hpp"
#include "obs/eventlog.hpp"
#include "serve/slo.hpp"
#include "serve/status.hpp"
#include "serve/tail_trace.hpp"

namespace fdks::serve {

using core::index_t;

/// Relaxed-tolerance GMRES settings for the degraded fallback: enough
/// accuracy to be useful (1e-4 on the treecode operator), cheap enough
/// to burn down a backlog.
inline iter::GmresOptions degraded_gmres_defaults() {
  iter::GmresOptions g;
  g.rtol = 1e-4;
  g.max_iters = 200;
  g.restart = 60;
  g.record_history = false;
  return g;
}

/// Solve (lambda I + K~) x = rhs with GMRES on the treecode matvec
/// alone — no factorization involved, which is exactly why it serves
/// as the fallback when the queue saturates or the FactorCache breaker
/// is open (a tripped breaker means no factorization exists, but the
/// HMatrix still applies). The result is marked ServeCode::Degraded
/// and carries the achieved relative residual. Throws
/// core::CancelledError if `cancel` expires and
/// ServeError(SolveFailed) if the iteration goes non-finite.
ServeResult degraded_gmres_solve(const core::HMatrix& h, double lambda,
                                 std::span<const double> rhs,
                                 const iter::GmresOptions& gopts,
                                 const core::CancelToken* cancel = nullptr);

struct ServeOptions {
  index_t batch_max = 64;  ///< Largest block width one batch may use.
  bool start_paused = false;  ///< Begin with the admission gate closed.
  /// Admission bound: submissions beyond this many queued requests are
  /// shed with ServeError(Overloaded). 0 = unbounded (no shedding).
  size_t queue_max = 0;
  /// Engine-wide deadline applied to submissions that do not carry
  /// their own (the two-argument submit overload). Zero = none.
  std::chrono::milliseconds default_deadline{0};
  /// Reject non-finite right-hand sides at submit (InvalidRhs) instead
  /// of letting them poison a batch. Tests disable this to exercise
  /// in-batch poison isolation.
  bool validate_rhs = true;
  /// Degraded-mode watermark: when queue_max > 0 and the queue holds at
  /// least degrade_watermark * queue_max requests at packing time, the
  /// batch is served by the GMRES-only path (degraded_gmres options)
  /// and every result is marked Degraded. 0 disables.
  double degrade_watermark = 0.0;
  iter::GmresOptions degraded_gmres = degraded_gmres_defaults();
  /// Answer certification (core/verify.hpp): when enabled, each direct
  /// batch in-sample under the policy has its Ok columns certified —
  /// the measured residual lands in ServeResult::residual, failing
  /// columns walk the refinement/escalation ladder (only they are
  /// re-solved, batched), and a column the ladder cannot certify fails
  /// with ServeError(SolveFailed) instead of returning silently wrong.
  core::VerifyPolicy verify;
  /// Request-lifecycle event log (obs/eventlog.hpp). Null = no logging.
  /// Shared so several engines (one per lambda in fdks_serve) can feed
  /// one stream; request_ids are process-global, so lines never clash.
  std::shared_ptr<obs::EventLog> event_log;
  /// Rolling-window SLO tracker. When its error budget runs out the
  /// engine serves degraded batches exactly as if the queue had crossed
  /// degrade_watermark. Null = no SLO input.
  std::shared_ptr<SloTracker> slo;
  /// Tail-based trace sampler consulted at batch completion. Null = no
  /// tail sampling. Only useful while obs::trace is enabled.
  std::shared_ptr<TailTraceSampler> tail_trace;
};

class ServeEngine {
 public:
  /// solver must remain valid for the engine's lifetime (pair with
  /// FactorCache, whose shared_ptr keeps it alive).
  ServeEngine(std::shared_ptr<const core::FastDirectSolver> solver,
              ServeOptions opts = {});
  ~ServeEngine();
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueue one right-hand side (length n, original point order) under
  /// the engine-wide default_deadline (if any). The future yields a
  /// ServeResult (Ok or Degraded) or rethrows a ServeError whose code()
  /// says how the request ended (DeadlineExceeded, PoisonRhs,
  /// SolveFailed, ShuttingDown). Admission failures throw ServeError
  /// synchronously: Overloaded (queue_max reached), InvalidRhs (wrong
  /// length or non-finite), ShuttingDown.
  std::future<ServeResult> submit(std::vector<double> rhs);

  /// Same, with an explicit per-request deadline. A request whose
  /// deadline passes while queued is shed before ever occupying a batch
  /// slot; one that expires mid-solve is cancelled cooperatively.
  std::future<ServeResult> submit(
      std::vector<double> rhs,
      std::chrono::steady_clock::time_point deadline);

  /// Close the admission gate: queued and future submissions are held.
  void pause();
  /// Reopen the gate and wake the worker; held requests are drained in
  /// maximal batches (up to batch_max each).
  void resume();

  /// Wait for in-flight work: blocks until no batch is being solved
  /// AND the queue cannot make progress without outside help — i.e.
  /// the queue is empty, or the engine is paused/stopping. On a paused
  /// engine with queued requests this returns once the current batch
  /// (if any) finishes; it does NOT wait for a resume() that may never
  /// come.
  void drain();

  /// drain() with a timeout; returns false if the wait timed out. The
  /// graceful-shutdown pattern: drain_for(budget), then shutdown() —
  /// whatever is still queued fails with ShuttingDown.
  bool drain_for(std::chrono::milliseconds timeout);

  /// Stop the worker and fail every request still queued with
  /// ServeError(ShuttingDown). Idempotent; called by the destructor.
  /// Concurrent submit() calls are safe against shutdown() (they either
  /// enqueue before the cut and get ShuttingDown through the future, or
  /// throw it synchronously) — but callers must not destroy the engine
  /// while other threads still hold a reference to it.
  void shutdown();

  index_t n() const;

  struct Stats {
    std::uint64_t requests = 0;   ///< Accepted into the queue.
    std::uint64_t batches = 0;
    std::uint64_t shed = 0;       ///< Rejected at admission (Overloaded).
    std::uint64_t expired = 0;    ///< Failed with DeadlineExceeded.
    std::uint64_t degraded = 0;   ///< Served by the GMRES-only fallback.
    std::uint64_t poisoned = 0;   ///< InvalidRhs (non-finite) + PoisonRhs.
    std::uint64_t failed = 0;     ///< SolveFailed (bisection or an
                                  ///< uncertifiable residual).
    std::uint64_t verified = 0;   ///< Answers carrying a certified
                                  ///< (measured) residual.
    std::uint64_t refined = 0;    ///< Answers that took >= 1 refinement
                                  ///< step before certifying.
    std::uint64_t escalated = 0;  ///< Answers that reached the GMRES
                                  ///< escalation rung.
    index_t max_batch = 0;
  };
  Stats stats() const;

 private:
  struct Request {
    std::uint64_t id = 0;  ///< Process-unique (obs::next_request_id).
    std::vector<double> rhs;
    std::promise<ServeResult> promise;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;  ///< max() = none.
  };

  /// Per-request outcome of one batch execution, staged before the
  /// promises are fulfilled.
  struct Outcome {
    ServeCode code = ServeCode::Ok;
    std::vector<double> x;
    double residual = -1.0;
    std::string detail;
  };

  /// Local tallies merged into stats_ once per batch (the obs counters
  /// are emitted at the point of occurrence).
  struct BatchTally {
    std::uint64_t expired = 0;
    std::uint64_t degraded = 0;
    std::uint64_t poisoned = 0;
    std::uint64_t failed = 0;
    std::uint64_t verified = 0;
    std::uint64_t refined = 0;
    std::uint64_t escalated = 0;
  };

  void worker_loop();
  void run_direct_batch(std::vector<Request>& reqs,
                        const core::CancelToken& tok,
                        std::vector<Outcome>& out, BatchTally& tally);
  /// Certify the batch's Ok columns under opts_.verify (no-op when the
  /// batch is out of sample): measured residuals land in the outcomes,
  /// failing columns are refined/escalated in place, and a column the
  /// ladder cannot certify flips to SolveFailed.
  void certify_batch(std::vector<Request>& reqs,
                     const core::CancelToken& tok, std::vector<Outcome>& out,
                     BatchTally& tally);
  void solve_range(std::vector<Request>& reqs, size_t lo, size_t hi,
                   const core::CancelToken& tok, std::vector<Outcome>& out,
                   BatchTally& tally);
  void run_degraded_batch(std::vector<Request>& reqs,
                          const core::CancelToken& tok,
                          std::vector<Outcome>& out, BatchTally& tally);

  std::shared_ptr<const core::FastDirectSolver> solver_;
  ServeOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool paused_ = false;
  bool stop_ = false;
  bool busy_ = false;  ///< A batch is being solved right now.
  Stats stats_;
  std::uint64_t verify_seq_ = 0;  ///< Batch sampling counter (worker only).
  std::uint64_t batch_seq_ = 0;   ///< batch_id minting (worker only).
  std::thread worker_;
};

}  // namespace fdks::serve
