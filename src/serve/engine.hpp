// Admission queue + batched execution for the serving front end.
//
// ServeEngine turns independent single-RHS solve requests into blocked
// multi-RHS solves: submit() enqueues a right-hand side and returns a
// future; a worker thread drains the queue, packs up to `batch_max`
// pending requests into one [n x B] block, and runs a single batched
// solve through the factor tree (FastDirectSolver::solve(Matrix)) —
// every factor matrix is streamed once per batch instead of once per
// request, which is the multi-RHS throughput win bench_serving
// measures.
//
// pause()/resume() gate the worker: submissions made while paused are
// coalesced into maximal batches on resume. This is how tests and the
// bench's deterministic smoke mode pin down batch composition —
// without it, batch sizes depend on scheduler timing.
//
// Observability (obs/keys.hpp): serve.requests / serve.batches
// counters, serve.batch_size / serve.batch_seconds /
// serve.request_seconds histograms, and a serve.batch timer scope.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/solver.hpp"

namespace fdks::serve {

using core::index_t;

struct ServeOptions {
  index_t batch_max = 64;  ///< Largest block width one batch may use.
  bool start_paused = false;  ///< Begin with the admission gate closed.
};

class ServeEngine {
 public:
  /// solver must remain valid for the engine's lifetime (pair with
  /// FactorCache, whose shared_ptr keeps it alive).
  ServeEngine(std::shared_ptr<const core::FastDirectSolver> solver,
              ServeOptions opts = {});
  ~ServeEngine();
  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueue one right-hand side (length n, original point order).
  /// The future yields the solution, or rethrows the solve's error.
  std::future<std::vector<double>> submit(std::vector<double> rhs);

  /// Close the admission gate: queued and future submissions are held.
  void pause();
  /// Reopen the gate and wake the worker; held requests are drained in
  /// maximal batches (up to batch_max each).
  void resume();
  /// Block until the queue is empty and no batch is in flight.
  void drain();

  index_t n() const;

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    index_t max_batch = 0;
  };
  Stats stats() const;

 private:
  struct Request {
    std::vector<double> rhs;
    std::promise<std::vector<double>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::shared_ptr<const core::FastDirectSolver> solver_;
  ServeOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  bool paused_ = false;
  bool stop_ = false;
  bool busy_ = false;  ///< A batch is being solved right now.
  Stats stats_;
  std::thread worker_;
};

}  // namespace fdks::serve
