#include "serve/tail_trace.hpp"

#include <algorithm>

#include "obs/keys.hpp"
#include "obs/obs.hpp"

namespace fdks::serve {

namespace {

/// Slice `d` down to events inside the request's window, plus every
/// flow event carrying its request_id (the submit-side flow_send
/// predates the window start by however long the request queued).
obs::trace::TraceData filter_window(const obs::trace::TraceData& d,
                                    std::uint64_t request_id,
                                    std::uint64_t t0_ns,
                                    std::uint64_t t1_ns) {
  obs::trace::TraceData out;
  for (const obs::trace::ThreadTrace& t : d.threads) {
    obs::trace::ThreadTrace ft;
    ft.rank = t.rank;
    ft.tid = t.tid;
    ft.dropped = t.dropped;
    for (const obs::trace::Event& e : t.events) {
      const bool is_flow = e.type == obs::trace::Event::kFlowSend ||
                           e.type == obs::trace::Event::kFlowRecv;
      if (is_flow && e.id == request_id) {
        ft.events.push_back(e);
        continue;
      }
      if (e.ts_ns >= t0_ns && e.ts_ns <= t1_ns && !is_flow) {
        ft.events.push_back(e);
      }
    }
    if (!ft.events.empty()) out.threads.push_back(ft);
  }
  return out;
}

}  // namespace

TailTraceSampler::TailTraceSampler(TailTraceOptions opts) : opts_(opts) {}

bool TailTraceSampler::observe(std::uint64_t request_id,
                               double latency_seconds, bool error,
                               std::uint64_t window_t0_ns,
                               std::uint64_t window_t1_ns) {
  if (opts_.keep == 0) return false;
  if (!error && latency_seconds < opts_.min_latency_seconds) return false;

  std::lock_guard<std::mutex> lock(mu_);
  std::size_t evict = kept_.size();  // size() = no eviction needed.
  if (kept_.size() >= opts_.keep) {
    if (error) {
      // Evict the fastest non-error entry; an all-error store only
      // yields to a slower error.
      std::size_t best = kept_.size();
      for (std::size_t i = 0; i < kept_.size(); ++i) {
        const bool worse =
            best == kept_.size() ||
            kept_[i].latency_seconds < kept_[best].latency_seconds;
        if (!kept_[i].error && worse) best = i;
      }
      if (best == kept_.size()) {
        // All kept entries are errors: keep the slowest `keep` errors.
        std::size_t fastest = 0;
        for (std::size_t i = 1; i < kept_.size(); ++i) {
          if (kept_[i].latency_seconds < kept_[fastest].latency_seconds) {
            fastest = i;
          }
        }
        if (latency_seconds <= kept_[fastest].latency_seconds) return false;
        best = fastest;
      }
      evict = best;
    } else {
      // Non-error: must beat the fastest non-error entry.
      std::size_t fastest = kept_.size();
      for (std::size_t i = 0; i < kept_.size(); ++i) {
        if (kept_[i].error) continue;
        if (fastest == kept_.size() ||
            kept_[i].latency_seconds < kept_[fastest].latency_seconds) {
          fastest = i;
        }
      }
      if (fastest == kept_.size()) return false;  // Full of errors.
      if (latency_seconds <= kept_[fastest].latency_seconds) return false;
      evict = fastest;
    }
  }

  KeptTrace entry;
  entry.request_id = request_id;
  entry.latency_seconds = latency_seconds;
  entry.error = error;
  entry.data = filter_window(obs::trace::collect(), request_id, window_t0_ns,
                             window_t1_ns);
  if (evict < kept_.size()) {
    kept_[evict] = std::move(entry);
  } else {
    kept_.push_back(std::move(entry));
  }
  std::sort(kept_.begin(), kept_.end(),
            [](const KeptTrace& a, const KeptTrace& b) {
              return a.latency_seconds > b.latency_seconds;
            });
  obs::add(obs::keys::kServeTraceKept);
  return true;
}

std::size_t TailTraceSampler::kept_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kept_.size();
}

std::vector<TailTraceSampler::KeptTrace> TailTraceSampler::kept() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kept_;
}

std::size_t TailTraceSampler::write_all(const std::string& prefix) const {
  const std::vector<KeptTrace> entries = kept();
  std::size_t written = 0;
  for (const KeptTrace& e : entries) {
    const std::string path =
        prefix + "req" + std::to_string(e.request_id) + ".json";
    if (obs::trace::write_chrome_trace(path, e.data)) ++written;
  }
  return written;
}

}  // namespace fdks::serve
