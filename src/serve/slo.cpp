#include "serve/slo.hpp"

#include <algorithm>
#include <cmath>

namespace fdks::serve {

SloTracker::SloTracker(SloOptions opts) : opts_(opts) {
  if (opts_.window == 0) opts_.window = 1;
  if (opts_.min_samples == 0) opts_.min_samples = 1;
  latency_ring_.resize(opts_.window, 0.0);
  error_ring_.resize(opts_.window, false);
}

void SloTracker::record(double latency_seconds, bool error) {
  if (!(latency_seconds >= 0.0)) latency_seconds = 0.0;  // NaN-safe.
  std::lock_guard<std::mutex> lock(mu_);
  latency_ring_[next_] = latency_seconds;
  error_ring_[next_] = error;
  next_ = (next_ + 1) % opts_.window;
  if (count_ < opts_.window) ++count_;
  ++total_;
}

SloTracker::Status SloTracker::status() const {
  Status st;
  std::vector<double> lat;
  std::size_t errors = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    st.samples = count_;
    if (count_ < opts_.min_samples) return st;  // Abstain: full budget.
    lat.assign(latency_ring_.begin(),
               latency_ring_.begin() + static_cast<std::ptrdiff_t>(count_));
    for (std::size_t i = 0; i < count_; ++i) {
      if (error_ring_[i]) ++errors;
    }
  }
  // Nearest-rank p99 over the window.
  const std::size_t rank = std::min(
      lat.size() - 1,
      static_cast<std::size_t>(
          std::ceil(0.99 * static_cast<double>(lat.size())) - 1.0));
  std::nth_element(lat.begin(),
                   lat.begin() + static_cast<std::ptrdiff_t>(rank), lat.end());
  st.p99_seconds = lat[rank];
  st.error_rate = static_cast<double>(errors) / static_cast<double>(st.samples);

  double budget = 1.0;
  if (opts_.p99_target_seconds > 0.0) {
    budget = std::min(budget, 1.0 - st.p99_seconds / opts_.p99_target_seconds);
    if (st.p99_seconds > opts_.p99_target_seconds) st.breached = true;
  }
  if (opts_.max_error_rate > 0.0) {
    budget = std::min(budget, 1.0 - st.error_rate / opts_.max_error_rate);
    if (st.error_rate > opts_.max_error_rate) st.breached = true;
  }
  st.budget_remaining = std::clamp(budget, 0.0, 1.0);
  return st;
}

}  // namespace fdks::serve
