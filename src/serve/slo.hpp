// Rolling-window SLO tracking for the serving engine.
//
// An objective is a pair of limits — p99 latency and error rate — over
// the most recent `window` completed requests. The tracker maintains
// both observations in a ring, reports an error-budget gauge in [0, 1]
// (1 = untouched budget, 0 = objective breached), and recommends
// degrading when the budget runs out. ServeEngine consults it as an
// additional input to the queue-depth `degrade_watermark` decision:
// queue depth reacts to load *now*, the SLO reacts to latency the
// clients already experienced — together they cover both edges of an
// overload.
//
// Budget definition (per enabled limit, then combined by min):
//   latency : 1 - p99/target, clamped to [0, 1]
//   errors  : 1 - error_rate/max_error_rate, clamped to [0, 1]
// A limit set to 0 is disabled. With fewer than `min_samples`
// observations the tracker abstains (full budget, no breach) so a cold
// start never degrades.
//
// Thread safety: all methods lock one mutex; record() is O(1), Status
// computation is O(window) (nth_element on a copy) and intended for
// per-batch cadence, not per-request.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace fdks::serve {

struct SloOptions {
  double p99_target_seconds = 0.0;  ///< 0 = latency objective disabled.
  double max_error_rate = 0.0;      ///< 0 = error-rate objective disabled.
  std::size_t window = 512;         ///< Completed requests considered.
  std::size_t min_samples = 32;     ///< Abstain below this many.
};

class SloTracker {
 public:
  explicit SloTracker(SloOptions opts = {});

  /// One completed request: observed latency plus whether it ended in
  /// an error outcome (shed / expired / poison / solver failure).
  void record(double latency_seconds, bool error);

  struct Status {
    std::size_t samples = 0;       ///< Observations in the window.
    double p99_seconds = 0.0;      ///< 0 while abstaining.
    double error_rate = 0.0;
    double budget_remaining = 1.0; ///< min over enabled limits, [0, 1].
    bool breached = false;         ///< Some enabled limit is exceeded.
  };
  Status status() const;

  /// True when the error budget is exhausted — the engine treats this
  /// like a queue past its degrade watermark.
  bool degrade_recommended() const { return status().breached; }

  const SloOptions& options() const { return opts_; }

 private:
  SloOptions opts_;
  mutable std::mutex mu_;
  std::vector<double> latency_ring_;
  std::vector<bool> error_ring_;
  std::size_t next_ = 0;
  std::size_t count_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace fdks::serve
