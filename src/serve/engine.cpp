#include "serve/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace fdks::serve {

ServeEngine::ServeEngine(
    std::shared_ptr<const core::FastDirectSolver> solver, ServeOptions opts)
    : solver_(std::move(solver)), opts_(opts) {
  if (!solver_)
    throw std::invalid_argument("ServeEngine: null solver");
  if (opts_.batch_max < 1)
    throw std::invalid_argument("ServeEngine: batch_max must be >= 1");
  paused_ = opts_.start_paused;
  worker_ = std::thread([this] { worker_loop(); });
}

ServeEngine::~ServeEngine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    paused_ = false;  // A paused engine must still shut down cleanly.
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Fail any requests the worker never picked up.
  for (Request& r : queue_)
    r.promise.set_exception(std::make_exception_ptr(
        std::runtime_error("ServeEngine: engine destroyed before solve")));
}

index_t ServeEngine::n() const {
  return solver_->factor_tree().hmatrix().n();
}

std::future<std::vector<double>> ServeEngine::submit(
    std::vector<double> rhs) {
  if (static_cast<index_t>(rhs.size()) != n())
    throw std::invalid_argument("ServeEngine::submit: rhs size mismatch");
  Request r;
  r.rhs = std::move(rhs);
  r.enqueued = std::chrono::steady_clock::now();
  std::future<std::vector<double>> fut = r.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_)
      throw std::logic_error("ServeEngine::submit: engine is stopping");
    queue_.push_back(std::move(r));
    ++stats_.requests;
  }
  obs::add("serve.requests");
  cv_.notify_all();
  return fut;
}

void ServeEngine::pause() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void ServeEngine::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!queue_.empty() || busy_)
    cv_.wait_for(lk, std::chrono::milliseconds(10));
}

ServeEngine::Stats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ServeEngine::worker_loop() {
  const index_t nn = n();
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    while (!stop_ && (paused_ || queue_.empty()))
      cv_.wait_for(lk, std::chrono::milliseconds(50));
    if (stop_) return;

    // Take up to batch_max pending requests as one block.
    const index_t batch = std::min<index_t>(
        opts_.batch_max, static_cast<index_t>(queue_.size()));
    std::vector<Request> reqs;
    reqs.reserve(static_cast<size_t>(batch));
    for (index_t i = 0; i < batch; ++i) {
      reqs.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    busy_ = true;
    lk.unlock();

    la::Matrix u(nn, batch);
    for (index_t j = 0; j < batch; ++j)
      std::copy(reqs[static_cast<size_t>(j)].rhs.begin(),
                reqs[static_cast<size_t>(j)].rhs.end(), u.col(j));

    obs::add("serve.batches");
    obs::hist("serve.batch_size", static_cast<double>(batch));
    obs::ScopedTimer t_batch("serve.batch");
    bool ok = true;
    la::Matrix x;
    std::exception_ptr err;
    try {
      x = solver_->solve(u);
    } catch (...) {
      ok = false;
      err = std::current_exception();
    }
    obs::hist("serve.batch_seconds", t_batch.stop());

    const auto done = std::chrono::steady_clock::now();
    for (index_t j = 0; j < batch; ++j) {
      Request& r = reqs[static_cast<size_t>(j)];
      obs::hist("serve.request_seconds",
                std::chrono::duration<double>(done - r.enqueued).count());
      if (ok) {
        r.promise.set_value(
            std::vector<double>(x.col(j), x.col(j) + nn));
      } else {
        r.promise.set_exception(err);
      }
    }

    lk.lock();
    busy_ = false;
    stats_.batches += 1;
    stats_.max_batch = std::max(stats_.max_batch, batch);
    cv_.notify_all();  // Wake drain() waiters.
  }
}

}  // namespace fdks::serve
