#include "serve/engine.hpp"

#include <algorithm>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/verify.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace fdks::serve {

namespace {

using steady_clock = std::chrono::steady_clock;

constexpr steady_clock::time_point kNoDeadline =
    steady_clock::time_point::max();

/// Trace events timestamp on the steady_clock-since-epoch ns scale
/// (obs/trace.cpp); request windows handed to the tail sampler must
/// live on the same scale.
std::uint64_t ns_since_epoch(steady_clock::time_point tp) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

}  // namespace

ServeResult degraded_gmres_solve(const core::HMatrix& h, double lambda,
                                 std::span<const double> rhs,
                                 const iter::GmresOptions& gopts,
                                 const core::CancelToken* cancel) {
  iter::GmresOptions g = gopts;
  if (cancel) g.cancel = cancel;
  iter::GmresResult r = iter::gmres(
      h.n(),
      [&h, lambda](std::span<const double> in, std::span<double> out) {
        h.apply(in, out, lambda);
      },
      rhs, g);
  if (r.nonfinite)
    throw ServeError(ServeCode::SolveFailed,
                     "degraded_gmres_solve: non-finite iteration");
  ServeResult res;
  res.code = ServeCode::Degraded;
  res.x = std::move(r.x);
  res.residual = r.relative_residual;
  res.detail = r.converged
                   ? "gmres-only fallback at relaxed tolerance"
                   : "gmres-only fallback (tolerance not reached)";
  return res;
}

ServeEngine::ServeEngine(
    std::shared_ptr<const core::FastDirectSolver> solver, ServeOptions opts)
    : solver_(std::move(solver)), opts_(opts) {
  if (!solver_)
    throw std::invalid_argument("ServeEngine: null solver");
  if (opts_.batch_max < 1)
    throw std::invalid_argument("ServeEngine: batch_max must be >= 1");
  if (opts_.degrade_watermark < 0.0 || opts_.degrade_watermark > 1.0)
    throw std::invalid_argument(
        "ServeEngine: degrade_watermark must be in [0, 1]");
  paused_ = opts_.start_paused;
  worker_ = std::thread([this] { worker_loop(); });
}

ServeEngine::~ServeEngine() { shutdown(); }

void ServeEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    paused_ = false;  // A paused engine must still shut down cleanly.
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Fail any requests the worker never picked up. The queue is swapped
  // out under the lock so a submit() that lost the race to stop_ (it
  // throws ShuttingDown without enqueueing) can never be dropped.
  std::deque<Request> leftover;
  {
    std::lock_guard<std::mutex> lk(mu_);
    leftover.swap(queue_);
  }
  for (Request& r : leftover) {
    if (opts_.event_log) {
      opts_.event_log->emit(r.id, obs::events::kEvFailed,
                            {{"code", "shutting_down"}});
    }
    r.promise.set_exception(std::make_exception_ptr(ServeError(
        ServeCode::ShuttingDown,
        "ServeEngine: engine shut down before solve")));
  }
}

index_t ServeEngine::n() const {
  return solver_->factor_tree().hmatrix().n();
}

std::future<ServeResult> ServeEngine::submit(std::vector<double> rhs) {
  const steady_clock::time_point deadline =
      opts_.default_deadline.count() > 0
          ? steady_clock::now() + opts_.default_deadline
          : kNoDeadline;
  return submit(std::move(rhs), deadline);
}

std::future<ServeResult> ServeEngine::submit(
    std::vector<double> rhs, std::chrono::steady_clock::time_point deadline) {
  // Every submission gets an id, even ones about to be rejected: the
  // event log's contract is that each submitted request shows up with
  // exactly one terminal event.
  const std::uint64_t id = obs::next_request_id();
  // Validate before counting (the src/la convention): a rejected
  // request must not perturb serve.requests or Stats::requests.
  if (static_cast<index_t>(rhs.size()) != n()) {
    if (opts_.event_log) {
      opts_.event_log->emit(id, obs::events::kEvFailed,
                            {{"code", "invalid_rhs"},
                             {"reason", "size_mismatch"}});
    }
    throw ServeError(ServeCode::InvalidRhs,
                     "ServeEngine::submit: rhs size mismatch");
  }
  if (opts_.validate_rhs &&
      !core::all_finite(std::span<const double>(rhs.data(), rhs.size()))) {
    obs::add("serve.poison");
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.poisoned;
    }
    if (opts_.event_log) {
      opts_.event_log->emit(id, obs::events::kEvFailed,
                            {{"code", "invalid_rhs"},
                             {"reason", "nonfinite_rhs"}});
    }
    throw ServeError(ServeCode::InvalidRhs,
                     "ServeEngine::submit: rhs contains NaN/Inf");
  }
  Request r;
  r.id = id;
  r.rhs = std::move(rhs);
  r.enqueued = steady_clock::now();
  r.deadline = deadline;
  std::future<ServeResult> fut = r.promise.get_future();
  ServeCode reject = ServeCode::Ok;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      reject = ServeCode::ShuttingDown;
    } else if (opts_.queue_max > 0 && queue_.size() >= opts_.queue_max) {
      ++stats_.shed;
      obs::add("serve.shed");
      reject = ServeCode::Overloaded;
    } else {
      queue_.push_back(std::move(r));
      // Counter and stats field are bumped in the same critical section,
      // after every rejection path, so they cannot diverge.
      ++stats_.requests;
      obs::add("serve.requests");
      // "admitted" is emitted while still holding mu_: the worker can
      // only pop this request under the same lock, so admitted always
      // precedes the batched/terminal events. The submit-side half of
      // the request's trace flow is stamped here too.
      if (obs::trace::enabled()) {
        obs::trace::flow_send(id, /*peer=*/0, /*tag=*/0);
      }
      if (opts_.event_log) {
        opts_.event_log->emit(id, obs::events::kEvAdmitted);
      }
    }
  }
  if (reject == ServeCode::Overloaded) {
    if (opts_.event_log) {
      opts_.event_log->emit(id, obs::events::kEvShed);
    }
    throw ServeError(ServeCode::Overloaded,
                     "ServeEngine::submit: queue full, request shed");
  }
  if (reject == ServeCode::ShuttingDown) {
    if (opts_.event_log) {
      opts_.event_log->emit(id, obs::events::kEvFailed,
                            {{"code", "shutting_down"}});
    }
    throw ServeError(ServeCode::ShuttingDown,
                     "ServeEngine::submit: engine is stopping");
  }
  cv_.notify_all();
  return fut;
}

void ServeEngine::pause() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void ServeEngine::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void ServeEngine::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] {
    return !busy_ && (queue_.empty() || paused_ || stop_);
  });
}

bool ServeEngine::drain_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  return cv_.wait_for(lk, timeout, [this] {
    return !busy_ && (queue_.empty() || paused_ || stop_);
  });
}

ServeEngine::Stats ServeEngine::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ServeEngine::solve_range(std::vector<Request>& reqs, size_t lo,
                              size_t hi, const core::CancelToken& tok,
                              std::vector<Outcome>& out, BatchTally& tally) {
  const index_t nn = n();
  const index_t width = static_cast<index_t>(hi - lo);
  la::Matrix u(nn, width);
  for (size_t j = lo; j < hi; ++j)
    std::copy(reqs[j].rhs.begin(), reqs[j].rhs.end(),
              u.col(static_cast<index_t>(j - lo)));

  la::Matrix x;
  try {
    x = solver_->solve(u, &tok);
  } catch (const core::CancelledError& e) {
    for (size_t j = lo; j < hi; ++j) {
      out[j].code = ServeCode::DeadlineExceeded;
      out[j].detail = e.what();
      obs::add("serve.expired");
      ++tally.expired;
    }
    return;
  } catch (const std::exception& e) {
    if (width == 1) {
      // Bisection bottomed out: this request alone made the solve
      // throw — fail it, leaving every batchmate untouched.
      out[lo].code = ServeCode::SolveFailed;
      out[lo].detail =
          std::string("batched solve failed for this request: ") + e.what();
      obs::add("serve.poison");
      ++tally.failed;
      return;
    }
    const size_t mid = lo + (hi - lo) / 2;
    solve_range(reqs, lo, mid, tok, out, tally);
    solve_range(reqs, mid, hi, tok, out, tally);
    return;
  }

  for (size_t j = lo; j < hi; ++j) {
    const double* col = x.col(static_cast<index_t>(j - lo));
    if (!core::all_finite(
            std::span<const double>(col, static_cast<size_t>(nn)))) {
      // Block solve columns are arithmetically independent, so NaN/Inf
      // here indicts exactly this request's right-hand side.
      out[j].code = ServeCode::PoisonRhs;
      out[j].detail = "solution column contains NaN/Inf";
      obs::add("serve.poison");
      ++tally.poisoned;
    } else {
      out[j].code = ServeCode::Ok;
      out[j].x.assign(col, col + nn);
    }
  }
}

void ServeEngine::run_direct_batch(std::vector<Request>& reqs,
                                   const core::CancelToken& tok,
                                   std::vector<Outcome>& out,
                                   BatchTally& tally) {
  obs::add("serve.batches");
  obs::hist("serve.batch_size", static_cast<double>(reqs.size()));
  obs::ScopedTimer t_batch("serve.batch");
  solve_range(reqs, 0, reqs.size(), tok, out, tally);
  certify_batch(reqs, tok, out, tally);
  obs::hist("serve.batch_seconds", t_batch.stop());
}

void ServeEngine::certify_batch(std::vector<Request>& reqs,
                                const core::CancelToken& tok,
                                std::vector<Outcome>& out,
                                BatchTally& tally) {
  const core::VerifyPolicy& vp = opts_.verify;
  if (!vp.enabled()) return;
  if (!core::should_verify(vp, verify_seq_++)) return;

  // Certification covers the answers about to be returned as successes;
  // columns the solve already failed (poison, bisection) stay failed.
  std::vector<size_t> idx;
  for (size_t j = 0; j < out.size(); ++j)
    if (out[j].code == ServeCode::Ok) idx.push_back(j);
  if (idx.empty()) return;

  const index_t nn = n();
  la::Matrix b(nn, static_cast<index_t>(idx.size()));
  la::Matrix x(nn, static_cast<index_t>(idx.size()));
  for (size_t i = 0; i < idx.size(); ++i) {
    const index_t c = static_cast<index_t>(i);
    std::copy(reqs[idx[i]].rhs.begin(), reqs[idx[i]].rhs.end(), b.col(c));
    std::copy(out[idx[i]].x.begin(), out[idx[i]].x.end(), x.col(c));
  }

  std::vector<core::VerifyOutcome> vos;
  try {
    // solve_index 0: this batch is already in-sample (decided above).
    vos = core::certify_and_refine_block(*solver_, b, x, vp, 0, &tok);
  } catch (const core::CancelledError&) {
    // Every member deadline has passed (the token runs under the
    // latest); the late-finish check in worker_loop fails these.
    return;
  }

  for (size_t i = 0; i < idx.size(); ++i) {
    Outcome& o = out[idx[i]];
    const core::VerifyOutcome& vo = vos[i];
    o.residual = vo.residual;
    ++tally.verified;
    if (vo.refine_steps > 0) ++tally.refined;
    if (vo.escalations > 0) ++tally.escalated;
    if (vo.certified) {
      // The ladder may have improved the column in place.
      const double* col = x.col(static_cast<index_t>(i));
      o.x.assign(col, col + nn);
    } else {
      std::ostringstream msg;
      msg << "certified residual " << vo.residual
          << " misses the verify target " << vp.target_residual
          << " after the escalation ladder";
      o.code = ServeCode::SolveFailed;
      o.detail = msg.str();
      ++tally.failed;
    }
  }
}

void ServeEngine::run_degraded_batch(std::vector<Request>& reqs,
                                     const core::CancelToken& tok,
                                     std::vector<Outcome>& out,
                                     BatchTally& tally) {
  obs::add("serve.batches");
  obs::hist("serve.batch_size", static_cast<double>(reqs.size()));
  obs::ScopedTimer t_batch("serve.batch");
  const core::HMatrix& h = solver_->factor_tree().hmatrix();
  const double lambda = solver_->lambda();
  for (size_t j = 0; j < reqs.size(); ++j) {
    if (!core::all_finite(std::span<const double>(reqs[j].rhs.data(),
                                                  reqs[j].rhs.size()))) {
      out[j].code = ServeCode::PoisonRhs;
      out[j].detail = "rhs contains NaN/Inf";
      obs::add("serve.poison");
      ++tally.poisoned;
      continue;
    }
    try {
      ServeResult res =
          degraded_gmres_solve(h, lambda, reqs[j].rhs,
                               opts_.degraded_gmres, &tok);
      out[j].code = res.code;
      out[j].x = std::move(res.x);
      out[j].residual = res.residual;
      out[j].detail = std::move(res.detail);
      obs::add("serve.degraded");
      ++tally.degraded;
    } catch (const core::CancelledError& e) {
      out[j].code = ServeCode::DeadlineExceeded;
      out[j].detail = e.what();
      obs::add("serve.expired");
      ++tally.expired;
    } catch (const ServeError& e) {
      out[j].code = e.code();
      out[j].detail = e.what();
      obs::add("serve.poison");
      ++tally.failed;
    }
  }
  obs::hist("serve.batch_seconds", t_batch.stop());
}

void ServeEngine::worker_loop() {
  // Pre-fault this thread's trace buffer (multi-MB zero-fill at
  // default capacity) at startup rather than inside the first
  // request's solve window.
  obs::trace::warm();
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    // Predicate wait (no polling): progress is possible exactly when
    // we are stopping or unpaused work is queued.
    cv_.wait(lk, [this] {
      return stop_ || (!paused_ && !queue_.empty());
    });
    if (stop_) return;

    const steady_clock::time_point now = steady_clock::now();

    // Shed already-expired requests first: dead work must never occupy
    // a batch slot (their promises are failed outside the lock below).
    std::vector<Request> dead;
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->deadline <= now) {
        dead.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }

    // Saturation watermark: with the queue nearly full, serve this
    // batch through the relaxed-tolerance GMRES-only path to burn down
    // the backlog (results are marked Degraded).
    const bool watermark_degrade =
        opts_.queue_max > 0 && opts_.degrade_watermark > 0.0 &&
        static_cast<double>(queue_.size()) >=
            opts_.degrade_watermark * static_cast<double>(opts_.queue_max);
    // Second trigger: an exhausted SLO error budget. The watermark sees
    // load building up *now*; the SLO sees latency clients already ate.
    const bool slo_degrade =
        opts_.slo != nullptr && opts_.slo->degrade_recommended();
    if (slo_degrade && !watermark_degrade) obs::add("serve.slo_breach");
    const bool degraded_batch = watermark_degrade || slo_degrade;

    const index_t batch = std::min<index_t>(
        opts_.batch_max, static_cast<index_t>(queue_.size()));
    std::vector<Request> reqs;
    reqs.reserve(static_cast<size_t>(batch));
    for (index_t i = 0; i < batch; ++i) {
      reqs.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    busy_ = true;
    lk.unlock();

    BatchTally tally;
    for (Request& r : dead) {
      obs::add("serve.expired");
      ++tally.expired;
      const double lat =
          std::chrono::duration<double>(now - r.enqueued).count();
      obs::hist("serve.request_seconds", lat);
      if (opts_.event_log) {
        opts_.event_log->emit(r.id, obs::events::kEvExpired,
                              {{"reason", "expired_in_queue"}});
      }
      if (opts_.slo) opts_.slo->record(lat, /*error=*/true);
      if (opts_.tail_trace) {
        opts_.tail_trace->observe(r.id, lat, /*error=*/true,
                                  ns_since_epoch(r.enqueued),
                                  ns_since_epoch(now));
      }
      r.promise.set_exception(std::make_exception_ptr(ServeError(
          ServeCode::DeadlineExceeded,
          "ServeEngine: deadline expired before the request reached a "
          "batch")));
    }

    const std::uint64_t batch_id = reqs.empty() ? 0 : ++batch_seq_;
    std::vector<Outcome> out(reqs.size());
    if (!reqs.empty()) {
      for (const Request& r : reqs) {
        // Close the request's trace flow on the worker side, then
        // narrate which batch it rode in.
        if (obs::trace::enabled()) {
          obs::trace::flow_recv(r.id, /*peer=*/0, /*tag=*/0);
        }
        if (opts_.event_log) {
          opts_.event_log->emit(
              r.id, obs::events::kEvBatched,
              {{"batch_id", batch_id},
               {"width", static_cast<std::uint64_t>(reqs.size())}});
        }
      }
      // The batch runs under the latest deadline of its members: work
      // keeps going as long as any member could still use the result,
      // and aborts cooperatively once none can.
      steady_clock::time_point latest = steady_clock::time_point::min();
      for (const Request& r : reqs) latest = std::max(latest, r.deadline);
      const core::CancelToken tok = latest == kNoDeadline
                                        ? core::CancelToken()
                                        : core::CancelToken::at(latest);
      if (degraded_batch)
        run_degraded_batch(reqs, tok, out, tally);
      else
        run_direct_batch(reqs, tok, out, tally);
    }

    const steady_clock::time_point done = steady_clock::now();
    for (size_t j = 0; j < reqs.size(); ++j) {
      Request& r = reqs[j];
      Outcome& o = out[j];
      const double lat =
          std::chrono::duration<double>(done - r.enqueued).count();
      obs::hist("serve.request_seconds", lat);
      // A request whose own deadline passed during the solve fails even
      // if the batch (run under the *latest* member deadline) produced
      // a value for it.
      const bool late = r.deadline <= done;
      if (late &&
          (o.code == ServeCode::Ok || o.code == ServeCode::Degraded)) {
        if (o.code == ServeCode::Degraded) --tally.degraded;
        o.code = ServeCode::DeadlineExceeded;
        o.detail = "solve finished after the request deadline";
        obs::add("serve.expired");
        ++tally.expired;
      }
      // Exactly one terminal event per request, before the promise is
      // fulfilled, so an event-log reader that reacts to the future
      // never races a missing line.
      if (opts_.event_log) {
        switch (o.code) {
          case ServeCode::Ok:
            opts_.event_log->emit(r.id, obs::events::kEvSolved,
                                  {{"residual", o.residual},
                                   {"verified", o.residual >= 0.0},
                                   {"batch_id", batch_id}});
            break;
          case ServeCode::Degraded:
            opts_.event_log->emit(r.id, obs::events::kEvDegraded,
                                  {{"residual", o.residual},
                                   {"batch_id", batch_id}});
            break;
          case ServeCode::DeadlineExceeded:
            opts_.event_log->emit(r.id, obs::events::kEvExpired,
                                  {{"batch_id", batch_id}});
            break;
          default:
            opts_.event_log->emit(r.id, obs::events::kEvFailed,
                                  {{"code", to_string(o.code)},
                                   {"batch_id", batch_id}});
            break;
        }
      }
      const bool error_outcome =
          o.code != ServeCode::Ok && o.code != ServeCode::Degraded;
      if (opts_.slo) opts_.slo->record(lat, error_outcome);
      if (opts_.tail_trace) {
        opts_.tail_trace->observe(r.id, lat, error_outcome,
                                  ns_since_epoch(r.enqueued),
                                  ns_since_epoch(done));
      }
      if (o.code == ServeCode::Ok || o.code == ServeCode::Degraded) {
        ServeResult res;
        res.code = o.code;
        res.x = std::move(o.x);
        res.residual = o.residual;
        res.detail = std::move(o.detail);
        r.promise.set_value(std::move(res));
      } else {
        r.promise.set_exception(std::make_exception_ptr(
            ServeError(o.code, "ServeEngine: " + o.detail)));
      }
    }
    // Publish the SLO view once per batch: cheap enough to gauge every
    // time, fresh enough for a scraper.
    if (opts_.slo && (!reqs.empty() || !dead.empty())) {
      const SloTracker::Status slo_st = opts_.slo->status();
      obs::gauge("serve.slo_budget", slo_st.budget_remaining);
      obs::gauge("serve.slo_p99_seconds", slo_st.p99_seconds);
    }

    lk.lock();
    busy_ = false;
    if (!reqs.empty()) {
      stats_.batches += 1;
      stats_.max_batch = std::max(stats_.max_batch, batch);
    }
    stats_.expired += tally.expired;
    stats_.degraded += tally.degraded;
    stats_.poisoned += tally.poisoned;
    stats_.failed += tally.failed;
    stats_.verified += tally.verified;
    stats_.refined += tally.refined;
    stats_.escalated += tally.escalated;
    cv_.notify_all();  // Wake drain()/drain_for() waiters.
  }
}

}  // namespace fdks::serve
