// Structured request outcomes for the serving front end.
//
// Every request submitted to ServeEngine resolves to exactly one of the
// states below — either synchronously (submit() throws a ServeError for
// admission failures: Overloaded, InvalidRhs, ShuttingDown) or through
// the returned future (a ServeResult for successful/degraded solves, a
// ServeError for per-request failures: DeadlineExceeded, PoisonRhs,
// SolveFailed). Nothing in the serving path surfaces an unstructured
// exception for a per-request condition; a caller that switches on
// ServeError::code() sees every way a request can end. The request
// state machine (queued → shed | expired | solved | degraded | failed)
// is documented in DESIGN.md §5.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fdks::serve {

enum class ServeCode {
  Ok,                ///< Solved by the direct (factor-tree) path.
  Degraded,          ///< Solved by the GMRES-only fallback at relaxed
                     ///< tolerance (queue saturation or tripped breaker).
  Overloaded,        ///< Shed at admission: queue_max reached.
  InvalidRhs,        ///< Rejected at admission: wrong length or
                     ///< non-finite entries (validate_rhs).
  ShuttingDown,      ///< Engine stopping/destroyed before the solve.
  DeadlineExceeded,  ///< Deadline passed (shed from the queue, solve
                     ///< cancelled mid-flight, or finished too late).
  PoisonRhs,         ///< This request's column produced NaN/Inf while
                     ///< batchmates solved cleanly.
  SolveFailed,       ///< The solve threw for this request alone (batch
                     ///< bisection isolated it).
  BreakerOpen,       ///< FactorCache circuit breaker is in cooldown for
                     ///< this factorization key.
};

inline const char* to_string(ServeCode c) {
  switch (c) {
    case ServeCode::Ok: return "ok";
    case ServeCode::Degraded: return "degraded";
    case ServeCode::Overloaded: return "overloaded";
    case ServeCode::InvalidRhs: return "invalid_rhs";
    case ServeCode::ShuttingDown: return "shutting_down";
    case ServeCode::DeadlineExceeded: return "deadline_exceeded";
    case ServeCode::PoisonRhs: return "poison_rhs";
    case ServeCode::SolveFailed: return "solve_failed";
    case ServeCode::BreakerOpen: return "breaker_open";
  }
  return "unknown";
}

/// The structured serving error: what() carries the human-readable
/// context ("Function: what" convention), code() the machine-readable
/// outcome.
class ServeError : public std::runtime_error {
 public:
  ServeError(ServeCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  ServeCode code() const { return code_; }

 private:
  ServeCode code_;
};

/// Successful request payload. code is Ok or Degraded; x is the
/// solution in the caller's original point order. residual is the
/// measured relative residual ‖(λI+K)x − b‖/‖b‖ when one was computed:
/// always for Degraded results (the fallback GMRES reports its own),
/// and for Ok results whose batch was certified under
/// ServeOptions::verify (every batch when VerifyMode::Always). detail
/// says why a request was degraded.
struct ServeResult {
  ServeCode code = ServeCode::Ok;
  std::vector<double> x;
  double residual = -1.0;  ///< -1 = not measured (unverified Ok path).
  std::string detail;

  bool degraded() const { return code == ServeCode::Degraded; }
};

}  // namespace fdks::serve
