// Factorization cache for the serving front end (fdks_serve).
//
// A factorization is minutes of work; a solve is milliseconds. A
// long-lived serving process therefore keys factored solvers by the
// same identity fingerprint the checkpoint layer uses (points, kernel,
// tree config, factor-affecting options, lambda — see
// ckpt::factor_fingerprint) and reuses them across requests. The cache
// is LRU-bounded, thread-safe, and coalesces concurrent requests for
// the same key into ONE factorization: the first caller factorizes,
// the rest block on the in-flight entry and share the result.
//
// Observability: serve.cache_hit / serve.cache_miss / serve.cache_evict
// counters (registered in obs/keys.hpp).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/solver.hpp"

namespace fdks::serve {

using core::HMatrix;
using core::SolverOptions;

class FactorCache {
 public:
  /// capacity = maximum number of resident factorizations; the least
  /// recently used ready entry is evicted beyond it.
  explicit FactorCache(size_t capacity = 4);

  /// Return the factored solver for (h, opts), factorizing on a miss.
  /// h must outlive every solver handed out for it. Concurrent calls
  /// with the same fingerprint share one factorization. Throws (with
  /// the factorization error) if the underlying factorization throws;
  /// a failed entry is removed so a later call can retry.
  std::shared_ptr<const core::FastDirectSolver> get(const HMatrix& h,
                                                    const SolverOptions& opts);

  /// The cache key: the checkpoint identity fingerprint of a factor
  /// tree built from (h, opts), under scope "serve".
  static std::string fingerprint(const HMatrix& h, const SolverOptions& opts);

  size_t size() const;
  size_t capacity() const { return capacity_; }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const core::FastDirectSolver> solver;
    bool ready = false;
    bool failed = false;
    std::string error;
  };

  void evict_locked();

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< Signals in-flight entries turning ready.
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::list<std::string> lru_;  ///< Most recent first.
  Stats stats_;
};

}  // namespace fdks::serve
