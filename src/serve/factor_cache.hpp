// Factorization cache for the serving front end (fdks_serve).
//
// A factorization is minutes of work; a solve is milliseconds. A
// long-lived serving process therefore keys factored solvers by the
// same identity fingerprint the checkpoint layer uses (points, kernel,
// tree config, factor-affecting options, lambda — see
// ckpt::factor_fingerprint) and reuses them across requests. The cache
// is thread-safe and coalesces concurrent requests for the same key
// into ONE factorization: the first caller factorizes, the rest block
// on the in-flight entry and share the result.
//
// Eviction is *memory-budgeted*: every ready entry accounts its factor
// bytes (FactorTree::memory_bytes()), and the least recently used
// ready entries are evicted while the cache exceeds max_bytes (and/or
// the entry-count capacity). The resident total is published as the
// serve.cache_bytes gauge (obs::gauge, last-value semantics): every
// insert/evict/heal sets it to the bytes held right now.
//
// Resident factors are integrity-checked lazily: every FastDirectSolver
// seals a content checksum (FNV-1a over the factor payload) at
// factorization, and the cache re-verifies it on the first hit and
// every integrity_check_every-th hit thereafter. A mismatch — cosmic
// ray, bad DIMM, stray write — is self-healing: the corrupted entry is
// dropped (verify.integrity_fail) and the same get() refactorizes from
// scratch, so the caller still receives a sound factor and never sees
// the corruption.
//
// Repeated factorization failures trip a per-key circuit breaker:
// after breaker_threshold consecutive failures, get() for that key
// fast-fails with ServeError(BreakerOpen) for breaker_cooldown instead
// of burning minutes re-failing the same factorization. After the
// cooldown one probe attempt is allowed (half-open); success resets
// the breaker, failure re-trips it. Callers can fall back to the
// factorization-free degraded path (serve::degraded_gmres_solve).
//
// Observability: serve.cache_hit / serve.cache_miss / serve.cache_evict
// / serve.breaker_open counters and the serve.cache_bytes gauge
// (registered in obs/keys.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/solver.hpp"
#include "serve/status.hpp"

namespace fdks::serve {

using core::HMatrix;
using core::SolverOptions;

struct FactorCacheOptions {
  /// Maximum number of resident factorizations (entry-count bound).
  size_t capacity = 4;
  /// Byte budget over all resident factors (FactorTree::memory_bytes());
  /// LRU ready entries are evicted while the total exceeds it. 0 = no
  /// byte budget (entry count alone bounds the cache).
  size_t max_bytes = 0;
  /// Circuit breaker: consecutive factorization failures for one key
  /// before get() fast-fails with ServeError(BreakerOpen). 0 disables.
  int breaker_threshold = 3;
  /// How long a tripped breaker rejects before allowing a probe.
  std::chrono::milliseconds breaker_cooldown{1000};
  /// Lazy factor-integrity cadence: verify the sealed content checksum
  /// on an entry's first hit and then every Nth hit. A mismatch drops
  /// the entry and refactorizes within the same get() (self-healing).
  /// 0 disables integrity checking.
  int integrity_check_every = 64;
  /// Factorization hook — tests inject failing/instrumented factories;
  /// null means construct a FastDirectSolver(h, opts) directly.
  std::function<std::shared_ptr<const core::FastDirectSolver>(
      const HMatrix&, const SolverOptions&)>
      factory;
};

class FactorCache {
 public:
  /// Entry-count-only construction (back-compatible shorthand).
  explicit FactorCache(size_t capacity = 4);
  explicit FactorCache(FactorCacheOptions opts);

  /// Return the factored solver for (h, opts), factorizing on a miss.
  /// h must outlive every solver handed out for it. Concurrent calls
  /// with the same fingerprint share one factorization. Throws (with
  /// the factorization error) if the underlying factorization throws —
  /// a failed entry is removed so a later call can retry — and
  /// ServeError(BreakerOpen) while the key's breaker is in cooldown.
  /// Hits on the integrity cadence re-verify the solver's sealed
  /// checksum first; a corrupted entry is dropped and refactorized
  /// before returning (the caller never sees the corruption).
  std::shared_ptr<const core::FastDirectSolver> get(const HMatrix& h,
                                                    const SolverOptions& opts);

  /// The cache key: the checkpoint identity fingerprint of a factor
  /// tree built from (h, opts), under scope "serve".
  static std::string fingerprint(const HMatrix& h, const SolverOptions& opts);

  size_t size() const;
  size_t capacity() const { return opts_.capacity; }
  /// Bytes held by ready entries right now (the serve.cache_bytes gauge).
  size_t bytes() const;

  /// True while the breaker for (h, opts) would fast-fail a get().
  bool breaker_open(const HMatrix& h, const SolverOptions& opts) const;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t failures = 0;         ///< Factorizations that threw.
    std::uint64_t breaker_trips = 0;    ///< Closed -> open transitions.
    std::uint64_t breaker_rejects = 0;  ///< get() fast-fails while open.
    std::uint64_t integrity_failures = 0;  ///< Checksum mismatches healed
                                           ///< by refactorization.
  };
  Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const core::FastDirectSolver> solver;
    bool ready = false;
    bool failed = false;
    std::string error;
    size_t bytes = 0;  ///< memory_bytes() once ready; 0 in flight.
    std::uint64_t hits = 0;  ///< Hits served; drives the integrity cadence.
  };

  struct Breaker {
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point open_until{};
  };

  void evict_locked();

  const FactorCacheOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< Signals in-flight entries turning ready.
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_;
  std::unordered_map<std::string, Breaker> breakers_;
  std::list<std::string> lru_;  ///< Most recent first.
  size_t bytes_ = 0;            ///< Sum over ready entries.
  Stats stats_;
};

}  // namespace fdks::serve
