// Householder QR, with and without column pivoting (GEQRF / GEQP3
// substitutes).
//
// The column-pivoted variant is the rank-revealing engine behind the
// interpolative decomposition (skeletonization): pivots order the columns
// by residual norm, and the diagonal of R estimates the singular-value
// decay used for the adaptive-rank criterion sigma_{s+1}/sigma_1 < tau.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace fdks::la {

/// Compact Householder QR factors: A*Pi = Q*R with Q stored as
/// reflectors in the lower trapezoid of qr and tau coefficients.
struct QrFactor {
  Matrix qr;                  ///< Reflectors below diag, R on/above diag.
  std::vector<double> tau;    ///< Householder coefficients.
  std::vector<index_t> jpvt;  ///< Column permutation: column k of A*Pi is
                              ///< original column jpvt[k]. Identity when
                              ///< pivoting is off.
  index_t rank = 0;           ///< Columns processed (min(m,n) or the
                              ///< truncation point for pivoted QR).

  index_t m() const { return qr.rows(); }
  index_t n() const { return qr.cols(); }

  /// |R(k,k)| values, the singular-value estimates of the paper's
  /// adaptive-rank test.
  std::vector<double> rdiag() const;
};

/// Unpivoted Householder QR of (a copy of) A.
QrFactor qr_factor(const Matrix& a);

/// Column-pivoted Householder QR with optional early termination:
/// stops after step k when |R(k,k)| <= tol * |R(0,0)| or k == max_rank.
/// tol <= 0 and max_rank <= 0 disable the respective criteria.
QrFactor qr_factor_pivoted(const Matrix& a, double tol = 0.0,
                           index_t max_rank = 0);

/// Apply Q^T to a block: b <- Q^T b (b has m rows).
void qr_apply_qt(const QrFactor& f, Matrix& b);

/// Apply Q to a block: b <- Q b.
void qr_apply_q(const QrFactor& f, Matrix& b);

/// Explicit m-by-k thin Q (k = f.rank).
Matrix qr_form_q(const QrFactor& f);

/// Upper-triangular k-by-n R (k = f.rank) in the pivoted column order.
Matrix qr_form_r(const QrFactor& f);

/// Solve R(0:k,0:k) X = B in place on B (back substitution on the leading
/// triangle of the factor).
void qr_solve_r(const QrFactor& f, Matrix& b);

/// Least-squares solve min ||A x - b||_2 via unpivoted QR (m >= n).
std::vector<double> qr_least_squares(const Matrix& a,
                                     std::span<const double> b);

}  // namespace fdks::la
