#include "la/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fdks::la {

Matrix::Matrix(index_t m, index_t n)
    : rows_(m), cols_(n), data_(static_cast<size_t>(m * n), 0.0) {
  assert(m >= 0 && n >= 0);
}

Matrix::Matrix(index_t m, index_t n, double fill_value)
    : rows_(m), cols_(n), data_(static_cast<size_t>(m * n), fill_value) {
  assert(m >= 0 && n >= 0);
}

void Matrix::fill(double v) {
  for (auto& x : data_) x = v;
}

void Matrix::resize(index_t m, index_t n) {
  rows_ = m;
  cols_ = n;
  data_.assign(static_cast<size_t>(m * n), 0.0);
}

Matrix Matrix::block(index_t r0, index_t c0, index_t mr, index_t nc) const {
  assert(r0 >= 0 && c0 >= 0 && r0 + mr <= rows_ && c0 + nc <= cols_);
  Matrix out(mr, nc);
  for (index_t j = 0; j < nc; ++j)
    for (index_t i = 0; i < mr; ++i) out(i, j) = (*this)(r0 + i, c0 + j);
  return out;
}

void Matrix::set_block(index_t r0, index_t c0, const Matrix& src) {
  assert(r0 + src.rows() <= rows_ && c0 + src.cols() <= cols_);
  for (index_t j = 0; j < src.cols(); ++j)
    for (index_t i = 0; i < src.rows(); ++i)
      (*this)(r0 + i, c0 + j) = src(i, j);
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (index_t j = 0; j < cols_; ++j)
    for (index_t i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::select_cols(std::span<const index_t> idx) const {
  Matrix out(rows_, static_cast<index_t>(idx.size()));
  for (index_t j = 0; j < out.cols(); ++j) {
    assert(idx[j] >= 0 && idx[j] < cols_);
    for (index_t i = 0; i < rows_; ++i) out(i, j) = (*this)(i, idx[j]);
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const index_t> idx) const {
  Matrix out(static_cast<index_t>(idx.size()), cols_);
  for (index_t j = 0; j < cols_; ++j)
    for (index_t i = 0; i < out.rows(); ++i) {
      assert(idx[i] >= 0 && idx[i] < rows_);
      out(i, j) = (*this)(idx[i], j);
    }
  return out;
}

Matrix Matrix::identity(index_t n) {
  Matrix out(n, n);
  for (index_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::random_uniform(index_t m, index_t n, std::mt19937_64& rng,
                              double lo, double hi) {
  Matrix out(m, n);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) out(i, j) = dist(rng);
  return out;
}

Matrix Matrix::random_gaussian(index_t m, index_t n, std::mt19937_64& rng) {
  Matrix out(m, n);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) out(i, j) = dist(rng);
  return out;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << rows_ << "x" << cols_ << " [\n";
  for (index_t i = 0; i < rows_; ++i) {
    os << "  ";
    for (index_t j = 0; j < cols_; ++j) os << (*this)(i, j) << " ";
    os << "\n";
  }
  os << "]";
  return os.str();
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("max_abs_diff: shape mismatch");
  double m = 0.0;
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
  return m;
}

Matrix add_scaled(const Matrix& a, double alpha, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("add_scaled: shape mismatch");
  Matrix out(a.rows(), a.cols());
  for (index_t j = 0; j < a.cols(); ++j)
    for (index_t i = 0; i < a.rows(); ++i)
      out(i, j) = a(i, j) + alpha * b(i, j);
  return out;
}

}  // namespace fdks::la
