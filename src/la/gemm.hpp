// Level-2/3 BLAS-style matrix kernels: GEMV and a blocked, packed GEMM.
//
// This file substitutes for the MKL DGEMM/DGEMV calls in the paper. The
// GEMM is cache-blocked with operand packing (a miniature BLIS-style
// loop nest) and parallelized across column panels with OpenMP; the goal
// is to keep the factorization compute-bound, not to chase peak FLOPS.
//
// Observability counting convention (enforced across la/): a routine
// bumps its `*.calls` counter exactly once per invocation, AFTER its
// argument validation — a call that throws on a shape mismatch must not
// inflate the work counters the bench regression gate compares against.
// Raw-pointer routines (gemm_raw) have no validation by contract and
// count at entry, so even a beta-scale-only call (m/n/k zero or
// alpha == 0 with beta != 1, which still mutates C) is visible to
// profiling. `flops.*` accumulates only the multiply-add work actually
// executed (2mnk for GEMM, 2mn for GEMV); scale-only and empty calls
// therefore contribute a call with zero flops.
#pragma once

#include <span>

#include "la/matrix.hpp"

namespace fdks::la {

enum class Trans { No, Yes };

/// y = beta*y + alpha * op(A) * x, with op controlled by trans.
void gemv(Trans trans, double alpha, const Matrix& a,
          std::span<const double> x, double beta, std::span<double> y);

/// Raw-pointer GEMV on a column-major block: y = beta*y + alpha*A*x with
/// A m-by-n, leading dimension lda. Used by the kernel-summation tiles.
void gemv_raw(index_t m, index_t n, double alpha, const double* a,
              index_t lda, const double* x, double beta, double* y);

/// C = beta*C + alpha * op(A) * op(B). Shapes are validated.
void gemm(Trans ta, Trans tb, double alpha, const Matrix& a, const Matrix& b,
          double beta, Matrix& c);

/// C = beta*C + alpha * A * B on strided column-major views (no
/// transposes). Shapes are validated. This is the workhorse of the
/// block (multi-RHS) solve path: skeleton applications on an [n x B]
/// view become one GEMM instead of B GEMVs.
void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c);

/// Convenience: C = op(A)*op(B).
Matrix matmul(Trans ta, Trans tb, const Matrix& a, const Matrix& b);

/// Convenience: C = A*B.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Triple-loop reference GEMM for correctness tests; same semantics as
/// gemm() but with no blocking or parallelism.
void gemm_ref(Trans ta, Trans tb, double alpha, const Matrix& a,
              const Matrix& b, double beta, Matrix& c);

/// Raw-pointer GEMM on column-major blocks (no transposes):
/// C(m,n) = beta*C + alpha*A(m,k)*B(k,n). Used inside tiled kernels.
void gemm_raw(index_t m, index_t n, index_t k, double alpha, const double* a,
              index_t lda, const double* b, index_t ldb, double beta,
              double* c, index_t ldc);

}  // namespace fdks::la
