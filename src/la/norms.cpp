#include "la/norms.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "la/blas1.hpp"
#include "la/gemm.hpp"

namespace fdks::la {

double norm_fro(const Matrix& a) {
  double s = 0.0;
  const double* d = a.data();
  for (index_t i = 0; i < a.size(); ++i) s += d[i] * d[i];
  return std::sqrt(s);
}

double norm_inf(const Matrix& a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (index_t j = 0; j < a.cols(); ++j) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

double norm2_estimate(const Matrix& a, int iters, uint64_t seed) {
  if (a.rows() == 0 || a.cols() == 0) return 0.0;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(static_cast<size_t>(a.cols()));
  for (auto& v : x) v = dist(rng);
  std::vector<double> y(static_cast<size_t>(a.rows()));
  double sigma = 0.0;
  for (int it = 0; it < iters; ++it) {
    const double xn = nrm2(x);
    if (xn == 0.0) return 0.0;
    scal(1.0 / xn, x);
    gemv(Trans::No, 1.0, a, x, 0.0, y);
    gemv(Trans::Yes, 1.0, a, y, 0.0, x);
    sigma = std::sqrt(nrm2(x));
  }
  return sigma;
}

double norm2_estimate_op(index_t n,
                         const std::function<void(std::span<const double>,
                                                  std::span<double>)>& apply,
                         int iters, uint64_t seed) {
  if (n == 0) return 0.0;
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  std::vector<double> x(static_cast<size_t>(n));
  for (auto& v : x) v = dist(rng);
  std::vector<double> y(static_cast<size_t>(n));
  double lambda = 0.0;
  for (int it = 0; it < iters; ++it) {
    const double xn = nrm2(x);
    if (xn == 0.0) return 0.0;
    scal(1.0 / xn, x);
    apply(x, y);
    lambda = dot(x, y);
    std::swap(x, y);
  }
  return std::abs(lambda);
}

}  // namespace fdks::la
