#include "la/chol.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "la/gemm.hpp"

namespace fdks::la {

namespace {

constexpr index_t kCholBlock = 64;

// Unblocked right-looking Cholesky on the window [k0, k1) of l, with
// column updates running down to row `rows_end`. Assumes the window has
// already received all trailing updates from earlier panels.
void chol_panel(Matrix& l, CholFactor& f, index_t k0, index_t k1,
                index_t rows_end) {
  for (index_t j = k0; j < k1; ++j) {
    double d = l(j, j);
    for (index_t k = k0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0) {
      f.spd = false;
      f.min_diag = std::min(f.min_diag, d);
      d = std::numeric_limits<double>::min();  // Keep going, diagnostics.
    }
    const double ljj = std::sqrt(d);
    f.min_diag = std::min(f.min_diag, ljj);
    l(j, j) = ljj;
    for (index_t i = j + 1; i < rows_end; ++i) {
      double s = l(i, j);
      for (index_t k = k0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
}

}  // namespace

CholFactor chol_factor(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("chol_factor: matrix must be square");
  const index_t n = a.rows();
  CholFactor f;
  f.l = a;
  f.min_diag = std::numeric_limits<double>::infinity();
  Matrix& l = f.l;

  // Blocked right-looking Cholesky: factor an nb-wide panel (diagonal
  // block + the column below it), then push the symmetric rank-nb
  // trailing update through the cache-blocked GEMM.
  for (index_t k0 = 0; k0 < n; k0 += kCholBlock) {
    const index_t k1 = std::min(n, k0 + kCholBlock);
    chol_panel(l, f, k0, k1, n);
    if (k1 == n) break;
    // A22 -= L21 L21^T with L21 = l(k1:n, k0:k1). Only the lower
    // trapezoid is needed (and read) downstream, so the update runs
    // block-column by block-column over rows at/below the diagonal —
    // this is where Cholesky's 2x flop saving over LU lives.
    const index_t m = n - k1;
    const index_t nb = k1 - k0;
    Matrix l21t(nb, m);  // Staged L21^T for gemm_raw's column-major B.
    for (index_t j = 0; j < nb; ++j)
      for (index_t i = 0; i < m; ++i) l21t(j, i) = l(k1 + i, k0 + j);
    for (index_t c0 = k1; c0 < n; c0 += kCholBlock) {
      const index_t c1 = std::min(n, c0 + kCholBlock);
      gemm_raw(n - c0, c1 - c0, nb, -1.0, l.col(k0) + c0, l.ld(),
               l21t.col(c0 - k1), l21t.ld(), 1.0, l.col(c0) + c0, l.ld());
    }
  }

  // Zero the strict upper triangle (the factor contract).
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < j; ++i) l(i, j) = 0.0;
  if (n == 0) f.min_diag = 0.0;
  return f;
}

void chol_solve(const CholFactor& f, std::span<double> b) {
  const index_t n = f.n();
  if (static_cast<index_t>(b.size()) != n)
    throw std::invalid_argument("chol_solve: rhs size mismatch");
  const Matrix& l = f.l;
  // Both sweeps stream down columns of the (column-major) factor.
  // Forward: L y = b, column-oriented saxpy updates.
  for (index_t k = 0; k < n; ++k) {
    const double* col = l.col(k);
    b[k] /= col[k];
    const double bk = b[k];
    if (bk == 0.0) continue;
    for (index_t i = k + 1; i < n; ++i) b[i] -= col[i] * bk;
  }
  // Backward: L^T x = y, column-k dot products below the diagonal.
  for (index_t k = n - 1; k >= 0; --k) {
    const double* col = l.col(k);
    double s = b[k];
    for (index_t i = k + 1; i < n; ++i) s -= col[i] * b[i];
    b[k] = s / col[k];
  }
}

void chol_solve(const CholFactor& f, MatrixView b) {
  const index_t n = f.n();
  if (b.rows() != n)
    throw std::invalid_argument("chol_solve: block rhs shape mismatch");
  const index_t nrhs = b.cols();
  if (nrhs == 1) {
    chol_solve(f, b.col_span(0));
    return;
  }
  const Matrix& l = f.l;
  // Forward: L Y = B, each factor column applied to every rhs column.
  for (index_t k = 0; k < n; ++k) {
    const double* col = l.col(k);
    const double inv = 1.0 / col[k];
    for (index_t j = 0; j < nrhs; ++j) {
      b(k, j) *= inv;
      const double bk = b(k, j);
      if (bk == 0.0) continue;
      double* bj = b.col(j);
      for (index_t i = k + 1; i < n; ++i) bj[i] -= col[i] * bk;
    }
  }
  // Backward: L^T X = Y, column-k dot products below the diagonal.
  for (index_t k = n - 1; k >= 0; --k) {
    const double* col = l.col(k);
    for (index_t j = 0; j < nrhs; ++j) {
      double* bj = b.col(j);
      double s = bj[k];
      for (index_t i = k + 1; i < n; ++i) s -= col[i] * bj[i];
      bj[k] = s / col[k];
    }
  }
}

void chol_solve(const CholFactor& f, Matrix& b) {
  chol_solve(f, MatrixView(b));
}

}  // namespace fdks::la
