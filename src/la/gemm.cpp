#include "la/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fdks::la {

namespace {

// Cache-blocking parameters. Tuned for a generic x86 with 32 KiB L1 /
// 1 MiB L2; micro-tile MR x NR is what the innermost register kernel
// accumulates.
constexpr index_t kMc = 128;  // rows of A packed per block
constexpr index_t kKc = 256;  // depth per block
constexpr index_t kNc = 512;  // cols of B per panel
constexpr index_t kMr = 4;
constexpr index_t kNr = 8;

// Pack an mc-by-kc block of A (column-major, lda) into row-panels of
// height kMr so the micro-kernel streams it contiguously.
void pack_a(const double* a, index_t lda, index_t mc, index_t kc,
            double* dst) {
  for (index_t i0 = 0; i0 < mc; i0 += kMr) {
    const index_t mr = std::min(kMr, mc - i0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t i = 0; i < mr; ++i) *dst++ = a[(i0 + i) + p * lda];
      for (index_t i = mr; i < kMr; ++i) *dst++ = 0.0;
    }
  }
}

// Pack a kc-by-nc block of B into column-panels of width kNr.
void pack_b(const double* b, index_t ldb, index_t kc, index_t nc,
            double* dst) {
  for (index_t j0 = 0; j0 < nc; j0 += kNr) {
    const index_t nr = std::min(kNr, nc - j0);
    for (index_t p = 0; p < kc; ++p) {
      for (index_t j = 0; j < nr; ++j) *dst++ = b[p + (j0 + j) * ldb];
      for (index_t j = nr; j < kNr; ++j) *dst++ = 0.0;
    }
  }
}

// kMr x kNr micro-kernel: C += Apanel * Bpanel over kc, then merge the
// accumulator into C with the (possibly partial) tile bounds.
void micro_kernel(index_t kc, const double* ap, const double* bp, double* c,
                  index_t ldc, index_t mr, index_t nr, double alpha) {
  double acc[kMr * kNr] = {0.0};
  for (index_t p = 0; p < kc; ++p) {
    const double* arow = ap + p * kMr;
    const double* brow = bp + p * kNr;
    for (index_t j = 0; j < kNr; ++j) {
      const double bj = brow[j];
      for (index_t i = 0; i < kMr; ++i) acc[i + j * kMr] += arow[i] * bj;
    }
  }
  for (index_t j = 0; j < nr; ++j)
    for (index_t i = 0; i < mr; ++i)
      c[i + j * ldc] += alpha * acc[i + j * kMr];
}

}  // namespace

void gemm_raw(index_t m, index_t n, index_t k, double alpha, const double* a,
              index_t lda, const double* b, index_t ldb, double beta,
              double* c, index_t ldc) {
  // Counting convention (see gemm.hpp): raw routines count the call at
  // entry — the beta-scale below mutates C even when the multiply is
  // skipped, and a scale-only call must not be invisible to profiling.
  obs::add("gemm.calls");
  if (beta != 1.0) {
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < m; ++i)
        c[i + j * ldc] = (beta == 0.0) ? 0.0 : beta * c[i + j * ldc];
  }
  if (m == 0 || n == 0 || k == 0 || alpha == 0.0) return;
  obs::add("flops.gemm", 2.0 * double(m) * double(n) * double(k));

  // Small problems: skip the packing machinery entirely.
  if (m * n * k <= 32 * 32 * 32) {
    for (index_t j = 0; j < n; ++j)
      for (index_t p = 0; p < k; ++p) {
        const double bpj = alpha * b[p + j * ldb];
        if (bpj == 0.0) continue;
        const double* acol = a + p * lda;
        double* ccol = c + j * ldc;
        for (index_t i = 0; i < m; ++i) ccol[i] += acol[i] * bpj;
      }
    return;
  }

  // Pack buffers are fixed-size (kMc*kKc and kKc*kNc) and reused across
  // calls per thread: with the OpenMP column split in gemm() each thread
  // issues one gemm_raw per chunk per call, and fresh allocations here
  // were measurable churn on the factorization hot path.
  static thread_local std::vector<double> apack(
      static_cast<size_t>(kMc * kKc));
  static thread_local std::vector<double> bpack(
      static_cast<size_t>(kKc * kNc));

  for (index_t jc = 0; jc < n; jc += kNc) {
    const index_t nc = std::min(kNc, n - jc);
    for (index_t pc = 0; pc < k; pc += kKc) {
      const index_t kc = std::min(kKc, k - pc);
      pack_b(b + pc + jc * ldb, ldb, kc, nc, bpack.data());
      for (index_t ic = 0; ic < m; ic += kMc) {
        const index_t mc = std::min(kMc, m - ic);
        pack_a(a + ic + pc * lda, lda, mc, kc, apack.data());
        for (index_t jr = 0; jr < nc; jr += kNr) {
          const index_t nr = std::min(kNr, nc - jr);
          const double* bp = bpack.data() + (jr / kNr) * kc * kNr;
          for (index_t ir = 0; ir < mc; ir += kMr) {
            const index_t mr = std::min(kMr, mc - ir);
            const double* ap = apack.data() + (ir / kMr) * kc * kMr;
            micro_kernel(kc, ap, bp, c + (ic + ir) + (jc + jr) * ldc, ldc,
                         mr, nr, alpha);
          }
        }
      }
    }
  }
}

void gemv(Trans trans, double alpha, const Matrix& a,
          std::span<const double> x, double beta, std::span<double> y) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  // Validate before counting (see gemm.hpp): a throwing call must not
  // inflate gemv.calls / flops.gemv — those feed the bench regression
  // gate's flop accounting.
  if (trans == Trans::No) {
    if (static_cast<index_t>(x.size()) != n ||
        static_cast<index_t>(y.size()) != m)
      throw std::invalid_argument("gemv: shape mismatch");
    obs::add("gemv.calls");
    obs::add("flops.gemv", 2.0 * double(m) * double(n));
    for (index_t i = 0; i < m; ++i) y[i] = (beta == 0.0) ? 0.0 : beta * y[i];
    for (index_t j = 0; j < n; ++j) {
      const double xj = alpha * x[j];
      if (xj == 0.0) continue;
      const double* col = a.col(j);
      for (index_t i = 0; i < m; ++i) y[i] += col[i] * xj;
    }
  } else {
    if (static_cast<index_t>(x.size()) != m ||
        static_cast<index_t>(y.size()) != n)
      throw std::invalid_argument("gemv^T: shape mismatch");
    obs::add("gemv.calls");
    obs::add("flops.gemv", 2.0 * double(m) * double(n));
    for (index_t j = 0; j < n; ++j) {
      const double* col = a.col(j);
      double s = 0.0;
      for (index_t i = 0; i < m; ++i) s += col[i] * x[i];
      y[j] = ((beta == 0.0) ? 0.0 : beta * y[j]) + alpha * s;
    }
  }
}

void gemv_raw(index_t m, index_t n, double alpha, const double* a,
              index_t lda, const double* x, double beta, double* y) {
  for (index_t i = 0; i < m; ++i) y[i] = (beta == 0.0) ? 0.0 : beta * y[i];
  for (index_t j = 0; j < n; ++j) {
    const double xj = alpha * x[j];
    if (xj == 0.0) continue;
    const double* col = a + j * lda;
    for (index_t i = 0; i < m; ++i) y[i] += col[i] * xj;
  }
}

void gemm(Trans ta, Trans tb, double alpha, const Matrix& a, const Matrix& b,
          double beta, Matrix& c) {
  // Materialize op(A)/op(B) when a transpose is requested; the solver's
  // hot paths are all non-transposed, so the copy is acceptable here.
  Matrix atmp, btmp;
  const Matrix* ap = &a;
  const Matrix* bp = &b;
  if (ta == Trans::Yes) {
    atmp = a.transposed();
    ap = &atmp;
  }
  if (tb == Trans::Yes) {
    btmp = b.transposed();
    bp = &btmp;
  }
  const index_t m = ap->rows();
  const index_t k = ap->cols();
  const index_t n = bp->cols();
  if (bp->rows() != k || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm: shape mismatch");

#ifdef _OPENMP
  // Split the C panel across threads by column blocks when the problem is
  // big enough to amortize; each thread runs an independent gemm_raw.
  const bool parallel = (m * n * k > 64LL * 64 * 64) && omp_get_max_threads() > 1;
  if (parallel) {
    const index_t nthreads = omp_get_max_threads();
    const index_t chunk = std::max<index_t>(kNr, (n + nthreads - 1) / nthreads);
#pragma omp parallel for schedule(static)
    for (index_t j0 = 0; j0 < n; j0 += chunk) {
      const index_t nc = std::min(chunk, n - j0);
      gemm_raw(m, nc, k, alpha, ap->data(), ap->ld(),
               bp->col(j0), bp->ld(), beta, c.col(j0), c.ld());
    }
    return;
  }
#endif
  gemm_raw(m, n, k, alpha, ap->data(), ap->ld(), bp->data(), bp->ld(), beta,
           c.data(), c.ld());
}

void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c) {
  if (b.rows() != a.cols() || c.rows() != a.rows() || c.cols() != b.cols())
    throw std::invalid_argument("gemm: view shape mismatch");
  const index_t m = a.rows();
  const index_t k = a.cols();
  const index_t n = b.cols();
#ifdef _OPENMP
  // Same column-block split as the Matrix overload above: the batched
  // multi-RHS solve path funnels its big [n x B] panels through this
  // overload, and a serial gemm here forfeits the batching win.
  const bool parallel =
      (m * n * k > 64LL * 64 * 64) && omp_get_max_threads() > 1;
  if (parallel) {
    const index_t nthreads = omp_get_max_threads();
    const index_t chunk = std::max<index_t>(kNr, (n + nthreads - 1) / nthreads);
#pragma omp parallel for schedule(static)
    for (index_t j0 = 0; j0 < n; j0 += chunk) {
      const index_t nc = std::min(chunk, n - j0);
      gemm_raw(m, nc, k, alpha, a.data(), a.ld(), b.col(j0), b.ld(), beta,
               c.col(j0), c.ld());
    }
    return;
  }
#endif
  gemm_raw(m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(), beta, c.data(),
           c.ld());
}

Matrix matmul(Trans ta, Trans tb, const Matrix& a, const Matrix& b) {
  const index_t m = (ta == Trans::No) ? a.rows() : a.cols();
  const index_t n = (tb == Trans::No) ? b.cols() : b.rows();
  Matrix c(m, n);
  gemm(ta, tb, 1.0, a, b, 0.0, c);
  return c;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  return matmul(Trans::No, Trans::No, a, b);
}

void gemm_ref(Trans ta, Trans tb, double alpha, const Matrix& a,
              const Matrix& b, double beta, Matrix& c) {
  const index_t m = (ta == Trans::No) ? a.rows() : a.cols();
  const index_t k = (ta == Trans::No) ? a.cols() : a.rows();
  const index_t n = (tb == Trans::No) ? b.cols() : b.rows();
  const index_t kb = (tb == Trans::No) ? b.rows() : b.cols();
  if (k != kb || c.rows() != m || c.cols() != n)
    throw std::invalid_argument("gemm_ref: shape mismatch");
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double av = (ta == Trans::No) ? a(i, p) : a(p, i);
        const double bv = (tb == Trans::No) ? b(p, j) : b(j, p);
        s += av * bv;
      }
      c(i, j) = ((beta == 0.0) ? 0.0 : beta * c(i, j)) + alpha * s;
    }
}

}  // namespace fdks::la
