// Cholesky factorization (POTRF/POTRS substitutes) for symmetric positive
// definite systems. Used by tests (regularized kernel blocks are SPD for
// lambda large enough) and as an alternative leaf factorization.
#pragma once

#include "la/matrix.hpp"

namespace fdks::la {

struct CholFactor {
  Matrix l;          ///< Lower-triangular factor, upper part zeroed.
  bool spd = true;   ///< False when a non-positive pivot was encountered.
  double min_diag = 0.0;

  index_t n() const { return l.rows(); }
};

/// Factor A = L L^T (lower). A must be square and symmetric; only the
/// lower triangle is read.
CholFactor chol_factor(const Matrix& a);

/// Solve A x = b in place on b.
void chol_solve(const CholFactor& f, std::span<double> b);

/// Solve A X = B in place on a (possibly strided) view; each factor
/// column streams once across all right-hand sides (TRSM-style).
void chol_solve(const CholFactor& f, MatrixView b);

/// Solve A X = B in place on B.
void chol_solve(const CholFactor& f, Matrix& b);

}  // namespace fdks::la
