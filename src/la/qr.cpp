#include "la/qr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "la/blas1.hpp"

namespace fdks::la {

namespace {

// Generate the Householder reflector for column k of qr (rows k..m-1):
// v = [1; x(k+1:)/scale], H = I - tau v v^T zeroes x below the diagonal.
// Returns tau; the reflector tail is stored in place below the diagonal.
double make_reflector(Matrix& qr, index_t k) {
  const index_t m = qr.rows();
  double* col = qr.col(k);
  double alpha = col[k];
  double xnorm = 0.0;
  for (index_t i = k + 1; i < m; ++i) xnorm += col[i] * col[i];
  xnorm = std::sqrt(xnorm);
  if (xnorm == 0.0 && alpha >= 0.0) return 0.0;  // Already triangular.
  double beta = -std::copysign(std::hypot(alpha, xnorm), alpha);
  const double tau = (beta - alpha) / beta;
  const double scale = 1.0 / (alpha - beta);
  for (index_t i = k + 1; i < m; ++i) col[i] *= scale;
  col[k] = beta;
  return tau;
}

// Apply reflector k (stored in qr) to columns [j0, n) of qr.
void apply_reflector(Matrix& qr, index_t k, double tau, index_t j0) {
  if (tau == 0.0) return;
  const index_t m = qr.rows();
  const index_t n = qr.cols();
  const double* v = qr.col(k);
  for (index_t j = j0; j < n; ++j) {
    double* col = qr.col(j);
    double s = col[k];
    for (index_t i = k + 1; i < m; ++i) s += v[i] * col[i];
    s *= tau;
    col[k] -= s;
    for (index_t i = k + 1; i < m; ++i) col[i] -= s * v[i];
  }
}

// Apply reflector k of f to one external column (length m), optionally
// for Q instead of Q^T (reflectors are symmetric, order differs).
void apply_reflector_to(const QrFactor& f, index_t k, double* col) {
  const double tau = f.tau[static_cast<size_t>(k)];
  if (tau == 0.0) return;
  const index_t m = f.m();
  const double* v = f.qr.col(k);
  double s = col[k];
  for (index_t i = k + 1; i < m; ++i) s += v[i] * col[i];
  s *= tau;
  col[k] -= s;
  for (index_t i = k + 1; i < m; ++i) col[i] -= s * v[i];
}

}  // namespace

std::vector<double> QrFactor::rdiag() const {
  std::vector<double> d(static_cast<size_t>(rank));
  for (index_t k = 0; k < rank; ++k)
    d[static_cast<size_t>(k)] = std::abs(qr(k, k));
  return d;
}

QrFactor qr_factor(const Matrix& a) {
  QrFactor f;
  f.qr = a;
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t kmax = std::min(m, n);
  f.tau.assign(static_cast<size_t>(kmax), 0.0);
  f.jpvt.resize(static_cast<size_t>(n));
  std::iota(f.jpvt.begin(), f.jpvt.end(), index_t{0});
  for (index_t k = 0; k < kmax; ++k) {
    f.tau[static_cast<size_t>(k)] = make_reflector(f.qr, k);
    apply_reflector(f.qr, k, f.tau[static_cast<size_t>(k)], k + 1);
  }
  f.rank = kmax;
  return f;
}

QrFactor qr_factor_pivoted(const Matrix& a, double tol, index_t max_rank) {
  QrFactor f;
  f.qr = a;
  const index_t m = a.rows();
  const index_t n = a.cols();
  index_t kmax = std::min(m, n);
  if (max_rank > 0) kmax = std::min(kmax, max_rank);
  f.tau.assign(static_cast<size_t>(std::min(m, n)), 0.0);
  f.jpvt.resize(static_cast<size_t>(n));
  std::iota(f.jpvt.begin(), f.jpvt.end(), index_t{0});

  // Running squared column norms of the trailing submatrix, downdated
  // after each reflector (the classic GEQP3 strategy) with periodic
  // recomputation to fight cancellation.
  std::vector<double> cnorm2(static_cast<size_t>(n));
  std::vector<double> cnorm2_exact(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    double s = 0.0;
    const double* col = f.qr.col(j);
    for (index_t i = 0; i < m; ++i) s += col[i] * col[i];
    cnorm2[static_cast<size_t>(j)] = s;
    cnorm2_exact[static_cast<size_t>(j)] = s;
  }

  double r00 = 0.0;
  index_t k = 0;
  for (; k < kmax; ++k) {
    // Pick the trailing column with the largest residual norm.
    index_t p = k;
    double best = cnorm2[static_cast<size_t>(k)];
    for (index_t j = k + 1; j < n; ++j) {
      if (cnorm2[static_cast<size_t>(j)] > best) {
        best = cnorm2[static_cast<size_t>(j)];
        p = j;
      }
    }
    if (p != k) {
      for (index_t i = 0; i < m; ++i) std::swap(f.qr(i, k), f.qr(i, p));
      std::swap(f.jpvt[static_cast<size_t>(k)], f.jpvt[static_cast<size_t>(p)]);
      std::swap(cnorm2[static_cast<size_t>(k)], cnorm2[static_cast<size_t>(p)]);
      std::swap(cnorm2_exact[static_cast<size_t>(k)],
                cnorm2_exact[static_cast<size_t>(p)]);
    }

    f.tau[static_cast<size_t>(k)] = make_reflector(f.qr, k);
    apply_reflector(f.qr, k, f.tau[static_cast<size_t>(k)], k + 1);

    const double rkk = std::abs(f.qr(k, k));
    if (k == 0) r00 = rkk;
    // Adaptive-rank stop: the R diagonal estimates singular values
    // (paper §II-A: sigma_{s+1}/sigma_1 < tau).
    if (tol > 0.0 && r00 > 0.0 && rkk <= tol * r00) {
      // This step's pivot is already below tolerance; do not count it.
      break;
    }

    // Downdate trailing column norms by the new row k of R.
    for (index_t j = k + 1; j < n; ++j) {
      const double rkj = f.qr(k, j);
      double& c2 = cnorm2[static_cast<size_t>(j)];
      c2 -= rkj * rkj;
      // Recompute when cancellation ate most of the value.
      if (c2 <= 1e-12 * cnorm2_exact[static_cast<size_t>(j)]) {
        double s = 0.0;
        const double* col = f.qr.col(j);
        for (index_t i = k + 1; i < m; ++i) s += col[i] * col[i];
        c2 = s;
        cnorm2_exact[static_cast<size_t>(j)] = s;
      }
      if (c2 < 0.0) c2 = 0.0;
    }
  }
  f.rank = k;
  if (f.rank == 0 && kmax > 0) f.rank = 1;  // Always keep one column.
  return f;
}

void qr_apply_qt(const QrFactor& f, Matrix& b) {
  if (b.rows() != f.m())
    throw std::invalid_argument("qr_apply_qt: row mismatch");
  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t k = 0; k < f.rank; ++k) apply_reflector_to(f, k, b.col(j));
}

void qr_apply_q(const QrFactor& f, Matrix& b) {
  if (b.rows() != f.m())
    throw std::invalid_argument("qr_apply_q: row mismatch");
  for (index_t j = 0; j < b.cols(); ++j)
    for (index_t k = f.rank - 1; k >= 0; --k)
      apply_reflector_to(f, k, b.col(j));
}

Matrix qr_form_q(const QrFactor& f) {
  Matrix q(f.m(), f.rank);
  for (index_t k = 0; k < f.rank; ++k) q(k, k) = 1.0;
  qr_apply_q(f, q);
  return q;
}

Matrix qr_form_r(const QrFactor& f) {
  Matrix r(f.rank, f.n());
  for (index_t j = 0; j < f.n(); ++j)
    for (index_t i = 0; i <= std::min(j, f.rank - 1); ++i)
      r(i, j) = f.qr(i, j);
  return r;
}

void qr_solve_r(const QrFactor& f, Matrix& b) {
  const index_t k = f.rank;
  if (b.rows() != k)
    throw std::invalid_argument("qr_solve_r: rhs rows must equal rank");
  for (index_t j = 0; j < b.cols(); ++j) {
    double* col = b.col(j);
    for (index_t i = k - 1; i >= 0; --i) {
      double s = col[i];
      for (index_t p = i + 1; p < k; ++p) s -= f.qr(i, p) * col[p];
      col[i] = s / f.qr(i, i);
    }
  }
}

std::vector<double> qr_least_squares(const Matrix& a,
                                     std::span<const double> b) {
  if (a.rows() < a.cols())
    throw std::invalid_argument("qr_least_squares: need m >= n");
  if (static_cast<index_t>(b.size()) != a.rows())
    throw std::invalid_argument("qr_least_squares: rhs size mismatch");
  QrFactor f = qr_factor(a);
  Matrix rhs(a.rows(), 1);
  for (index_t i = 0; i < a.rows(); ++i) rhs(i, 0) = b[i];
  qr_apply_qt(f, rhs);
  Matrix top = rhs.block(0, 0, f.rank, 1);
  qr_solve_r(f, top);
  std::vector<double> x(static_cast<size_t>(a.cols()), 0.0);
  for (index_t i = 0; i < f.rank; ++i) x[static_cast<size_t>(i)] = top(i, 0);
  return x;
}

}  // namespace fdks::la
