// Interpolative decomposition (ID) built on column-pivoted QR.
//
// Given A (m-by-n), the ID selects s columns J ("skeleton") and an
// interpolation matrix P (s-by-n) with A ≈ A(:,J) * P and P(:,J) = I.
// This is exactly the skeletonization primitive of ASKIT (paper eq. (4)):
// K_{S,alpha} ≈ K_{S,alpha~} P_{alpha~,alpha}.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace fdks::la {

struct IdResult {
  std::vector<index_t> skeleton;  ///< Selected column indices into A.
  Matrix p;                       ///< s-by-n interpolation matrix.
  index_t rank = 0;               ///< s = skeleton.size().
  std::vector<double> rdiag;      ///< |R(k,k)| decay, for diagnostics.
  bool compressed = false;        ///< rank < n (some reduction happened).
};

/// Compute an ID of A with the paper's adaptive-rank criterion:
/// rank s is the smallest k with |R(k,k)|/|R(0,0)| <= tol, capped at
/// max_rank (0 = no cap). tol <= 0 forces the cap (fixed-rank ID).
IdResult interpolative_decomposition(const Matrix& a, double tol,
                                     index_t max_rank = 0);

/// Reconstruction error ||A - A(:,J) P||_F / ||A||_F, for tests.
double id_relative_error(const Matrix& a, const IdResult& id);

}  // namespace fdks::la
