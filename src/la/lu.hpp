// LU factorization with partial pivoting (GETRF/GETRS substitutes) and a
// 1-norm reciprocal-condition estimator.
//
// The paper factorizes every leaf block (λI + K_aa) and every SMW reduced
// system Z with LAPACK GETRF and solves with GETRS. These routines also
// feed the stability detection of §III: the factorization reports the
// smallest pivot magnitude so the solver can flag numerically
// ill-conditioned diagonal blocks (the small-λ regime the paper warns
// about).
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace fdks::la {

/// LU factorization of a square matrix with partial (row) pivoting.
/// Holds the packed factors, the pivot sequence, and pivot diagnostics.
struct LuFactor {
  Matrix lu;                   ///< Packed L (unit lower) and U.
  std::vector<index_t> piv;    ///< piv[k]: row swapped with row k at step k.
  double min_pivot = 0.0;      ///< Smallest |U(k,k)| seen.
  double max_pivot = 0.0;      ///< Largest |U(k,k)| seen.
  bool singular = false;       ///< An exactly-zero pivot was hit.

  index_t n() const { return lu.rows(); }

  /// Ratio min|pivot| / max|pivot|; a cheap stability indicator
  /// (0 when singular, near 1 for well-scaled well-conditioned blocks).
  double pivot_ratio() const {
    return max_pivot > 0.0 ? min_pivot / max_pivot : 0.0;
  }
};

/// Factorize a copy of A (A must be square). Never throws on singularity;
/// check .singular / .min_pivot instead, mirroring LAPACK's info flag.
LuFactor lu_factor(const Matrix& a);

/// Solve A x = b in place on b (single right-hand side).
void lu_solve(const LuFactor& f, std::span<double> b);

/// Solve A X = B for a block of right-hand sides, in place on a
/// (possibly strided) view. Unlike a per-column loop, the substitution
/// sweeps stream each factor column once across ALL right-hand sides
/// (TRSM-style), so the factor's memory traffic is paid once per solve
/// instead of once per column.
void lu_solve(const LuFactor& f, MatrixView b);

/// Solve A X = B for a block of right-hand sides, in place on B.
void lu_solve(const LuFactor& f, Matrix& b);

/// Estimate 1/cond_1(A) = 1/(||A||_1 ||A^-1||_1) using Hager-Higham style
/// iteration on the factor (a GECON substitute). anorm1 is ||A||_1 of the
/// original matrix.
double lu_rcond(const LuFactor& f, double anorm1);

/// ||A||_1 (maximum absolute column sum).
double norm1(const Matrix& a);

}  // namespace fdks::la
