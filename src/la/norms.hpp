// Matrix norms and spectral estimates.
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <span>

#include "la/matrix.hpp"

namespace fdks::la {

/// Frobenius norm.
double norm_fro(const Matrix& a);

/// Max absolute row sum (infinity norm).
double norm_inf(const Matrix& a);

/// Largest singular value estimate by power iteration on A^T A.
/// Deterministic given the seed; `iters` steps of normalized iteration.
double norm2_estimate(const Matrix& a, int iters = 30, uint64_t seed = 7);

/// Largest singular value estimate for an implicitly defined operator
/// y = A x with A n-by-n symmetric positive (semi-)definite, via power
/// iteration. Used to scale lambda = c * sigma_1(K~) as in Figure 5.
double norm2_estimate_op(index_t n,
                         const std::function<void(std::span<const double>,
                                                  std::span<double>)>& apply,
                         int iters = 30, uint64_t seed = 7);

}  // namespace fdks::la
