#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "la/gemm.hpp"

namespace fdks::la {

SvdResult svd_jacobi(const Matrix& a, bool want_vectors, int max_sweeps,
                     double tol) {
  // Work on W = A when m >= n, else on A^T, so columns are the "short"
  // side; one-sided Jacobi orthogonalizes the columns of W.
  const bool transposed = a.rows() < a.cols();
  Matrix w = transposed ? a.transposed() : a;
  const index_t m = w.rows();
  const index_t n = w.cols();

  Matrix v;  // Accumulates right rotations when vectors are wanted.
  if (want_vectors) v = Matrix::identity(n);

  SvdResult out;
  if (n == 0) return out;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        double app = 0.0, aqq = 0.0, apq = 0.0;
        const double* cp = w.col(p);
        const double* cq = w.col(q);
        for (index_t i = 0; i < m; ++i) {
          app += cp[i] * cp[i];
          aqq += cq[i] * cq[i];
          apq += cp[i] * cq[i];
        }
        if (std::abs(apq) <= tol * std::sqrt(app * aqq)) continue;
        converged = false;
        // Jacobi rotation zeroing the (p,q) entry of W^T W.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = std::copysign(
            1.0 / (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta)), zeta);
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        double* wp = w.col(p);
        double* wq = w.col(q);
        for (index_t i = 0; i < m; ++i) {
          const double vp = wp[i];
          const double vq = wq[i];
          wp[i] = c * vp - s * vq;
          wq[i] = s * vp + c * vq;
        }
        if (want_vectors) {
          double* vp2 = v.col(p);
          double* vq2 = v.col(q);
          for (index_t i = 0; i < n; ++i) {
            const double t1 = vp2[i];
            const double t2 = vq2[i];
            vp2[i] = c * t1 - s * t2;
            vq2[i] = s * t1 + c * t2;
          }
        }
      }
    }
    out.sweeps = sweep + 1;
    if (converged) break;
  }

  // Column norms of W are the singular values; sort descending.
  std::vector<double> sig(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    double s2 = 0.0;
    const double* col = w.col(j);
    for (index_t i = 0; i < m; ++i) s2 += col[i] * col[i];
    sig[static_cast<size_t>(j)] = std::sqrt(s2);
  }
  std::vector<index_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return sig[static_cast<size_t>(x)] > sig[static_cast<size_t>(y)];
  });

  out.sigma.resize(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j)
    out.sigma[static_cast<size_t>(j)] = sig[static_cast<size_t>(order[j])];

  if (want_vectors) {
    Matrix uu(m, n), vv(n, n);
    for (index_t j = 0; j < n; ++j) {
      const index_t src = order[static_cast<size_t>(j)];
      const double sj = sig[static_cast<size_t>(src)];
      for (index_t i = 0; i < m; ++i)
        uu(i, j) = (sj > 0.0) ? w(i, src) / sj : 0.0;
      for (index_t i = 0; i < n; ++i) vv(i, j) = v(i, src);
    }
    if (!transposed) {
      out.u = std::move(uu);
      out.v = std::move(vv);
    } else {
      // A = (W)^T = V S U^T, so roles swap.
      out.u = std::move(vv);
      out.v = std::move(uu);
    }
  }
  return out;
}

double cond2(const Matrix& a) {
  const SvdResult s = svd_jacobi(a);
  if (s.sigma.empty()) return 0.0;
  const double smin = s.sigma.back();
  if (smin == 0.0) return std::numeric_limits<double>::infinity();
  return s.sigma.front() / smin;
}

}  // namespace fdks::la
