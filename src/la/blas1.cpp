#include "la/blas1.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace fdks::la {

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double nrm2(std::span<const double> x) {
  // Two-pass scaled norm: cheap and immune to overflow/underflow for the
  // magnitudes seen in kernel methods. NaN/Inf entries must propagate:
  // std::max(0.0, NaN) would silently drop NaN and report norm zero,
  // which upstream convergence checks would read as "converged".
  double amax = 0.0;
  for (double v : x) {
    const double a = std::abs(v);
    if (a > amax || std::isnan(a)) amax = a;
  }
  if (!std::isfinite(amax)) return amax;  // NaN -> NaN, Inf -> Inf.
  if (amax == 0.0) return 0.0;
  double s = 0.0;
  for (double v : x) {
    const double t = v / amax;
    s += t * t;
  }
  return amax * std::sqrt(s);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

index_t iamax(std::span<const double> x) {
  if (x.empty()) return -1;
  index_t best = 0;
  double bestval = std::abs(x[0]);
  for (size_t i = 1; i < x.size(); ++i) {
    const double v = std::abs(x[i]);
    if (v > bestval) {
      bestval = v;
      best = static_cast<index_t>(i);
    }
  }
  return best;
}

std::vector<double> vsub(const std::vector<double>& a,
                         const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vsub: size mismatch");
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

std::vector<double> vadd(const std::vector<double>& a,
                         const std::vector<double>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("vadd: size mismatch");
  std::vector<double> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

}  // namespace fdks::la
