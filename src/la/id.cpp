#include "la/id.hpp"

#include <cmath>
#include <stdexcept>

#include "la/gemm.hpp"
#include "la/norms.hpp"
#include "la/qr.hpp"

namespace fdks::la {

IdResult interpolative_decomposition(const Matrix& a, double tol,
                                     index_t max_rank) {
  IdResult out;
  const index_t n = a.cols();
  if (n == 0) return out;

  QrFactor f = qr_factor_pivoted(a, tol, max_rank);
  const index_t s = f.rank;
  out.rank = s;
  out.rdiag = f.rdiag();
  out.compressed = s < n;

  out.skeleton.resize(static_cast<size_t>(s));
  for (index_t k = 0; k < s; ++k)
    out.skeleton[static_cast<size_t>(k)] = f.jpvt[static_cast<size_t>(k)];

  // P in pivoted order is [I, R11^{-1} R12]; scatter back to the original
  // column order via jpvt.
  Matrix r12(s, n - s);
  for (index_t j = 0; j < n - s; ++j)
    for (index_t i = 0; i < s; ++i) r12(i, j) = f.qr(i, s + j);
  if (r12.cols() > 0) qr_solve_r(f, r12);

  out.p.resize(s, n);
  for (index_t k = 0; k < s; ++k)
    out.p(k, f.jpvt[static_cast<size_t>(k)]) = 1.0;
  for (index_t j = 0; j < n - s; ++j) {
    const index_t orig = f.jpvt[static_cast<size_t>(s + j)];
    for (index_t i = 0; i < s; ++i) out.p(i, orig) = r12(i, j);
  }
  return out;
}

double id_relative_error(const Matrix& a, const IdResult& id) {
  const double denom = norm_fro(a);
  if (denom == 0.0) return 0.0;
  Matrix askel = a.select_cols(id.skeleton);
  Matrix approx = matmul(askel, id.p);
  Matrix diff = add_scaled(a, -1.0, approx);
  return norm_fro(diff) / denom;
}

}  // namespace fdks::la
