// Level-1 BLAS-style vector kernels.
//
// Vectors are std::vector<double> or (pointer, n) spans; these are the
// primitives the iterative solvers and orthogonalization loops build on.
#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace fdks::la {

/// Dot product sum_i x[i]*y[i].
double dot(std::span<const double> x, std::span<const double> y);

/// Euclidean norm ||x||_2 (with scaling to avoid spurious overflow).
double nrm2(std::span<const double> x);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scal(double alpha, std::span<double> x);

/// Index of the entry with the largest absolute value; -1 when empty.
index_t iamax(std::span<const double> x);

/// out = a - b elementwise.
std::vector<double> vsub(const std::vector<double>& a,
                         const std::vector<double>& b);

/// out = a + b elementwise.
std::vector<double> vadd(const std::vector<double>& a,
                         const std::vector<double>& b);

}  // namespace fdks::la
