// One-sided Jacobi SVD.
//
// Small and robust rather than fast: the library uses it for condition
// numbers (stability study of §III), spectral-decay diagnostics in tests,
// and validating the rank-revealing behaviour of the pivoted QR.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace fdks::la {

struct SvdResult {
  std::vector<double> sigma;  ///< Singular values, descending.
  Matrix u;                   ///< m-by-k left vectors (if requested).
  Matrix v;                   ///< n-by-k right vectors (if requested).
  int sweeps = 0;             ///< Jacobi sweeps used.
};

/// Compute the SVD of A (any shape). When want_vectors is false, u/v are
/// left empty and only singular values are returned.
SvdResult svd_jacobi(const Matrix& a, bool want_vectors = false,
                     int max_sweeps = 60, double tol = 1e-13);

/// 2-norm condition number sigma_max / sigma_min (inf when singular).
double cond2(const Matrix& a);

}  // namespace fdks::la
