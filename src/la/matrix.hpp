// Dense column-major matrix container and lightweight views.
//
// This is the storage substrate for the whole library. The layout is
// LAPACK-convention column-major: element (i,j) of an m-by-n matrix with
// leading dimension ld lives at data[i + j*ld]. All factorization and
// kernel-summation routines in fdks::la operate on this type or on raw
// (pointer, ld) views of it.
#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace fdks::la {

using index_t = std::ptrdiff_t;

/// Dense column-major matrix of doubles.
///
/// Invariants: rows() >= 0, cols() >= 0, ld() >= max(1, rows()),
/// data owns rows()*cols() contiguous doubles (ld == rows for owned
/// storage; strided views are expressed with raw pointers instead).
class Matrix {
 public:
  Matrix() = default;

  /// Uninitialized m-by-n matrix (values are zero-initialized; dense
  /// numerical code is too easy to get wrong with garbage init).
  Matrix(index_t m, index_t n);

  /// m-by-n matrix filled with a constant.
  Matrix(index_t m, index_t n, double fill);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t ld() const noexcept { return rows_; }
  index_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }

  double& operator()(index_t i, index_t j) noexcept {
    return data_[static_cast<size_t>(i + j * rows_)];
  }
  double operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<size_t>(i + j * rows_)];
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Pointer to the top of column j.
  double* col(index_t j) noexcept { return data() + j * rows_; }
  const double* col(index_t j) const noexcept { return data() + j * rows_; }

  /// Set every entry to a constant.
  void fill(double v);

  /// Reshape to m-by-n, discarding contents (zero-filled).
  void resize(index_t m, index_t n);

  /// Copy of the [r0, r0+mr) x [c0, c0+nc) submatrix.
  Matrix block(index_t r0, index_t c0, index_t mr, index_t nc) const;

  /// Write a matrix into the [r0, ...) x [c0, ...) submatrix.
  void set_block(index_t r0, index_t c0, const Matrix& src);

  /// Transposed copy.
  Matrix transposed() const;

  /// Copy of selected columns, in the given order.
  Matrix select_cols(std::span<const index_t> idx) const;

  /// Copy of selected rows, in the given order.
  Matrix select_rows(std::span<const index_t> idx) const;

  // Named constructors -------------------------------------------------

  static Matrix identity(index_t n);

  /// Entries i.i.d. uniform on [lo, hi) from the given engine.
  static Matrix random_uniform(index_t m, index_t n, std::mt19937_64& rng,
                               double lo = -1.0, double hi = 1.0);

  /// Entries i.i.d. standard normal from the given engine.
  static Matrix random_gaussian(index_t m, index_t n, std::mt19937_64& rng);

  /// Human-readable dump, for debugging and test failure messages.
  std::string to_string(int precision = 4) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

/// Max |a(i,j) - b(i,j)|; matrices must have identical shape.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Elementwise a + alpha*b, shapes must match.
Matrix add_scaled(const Matrix& a, double alpha, const Matrix& b);

}  // namespace fdks::la
