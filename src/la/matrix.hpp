// Dense column-major matrix container and lightweight views.
//
// This is the storage substrate for the whole library. The layout is
// LAPACK-convention column-major: element (i,j) of an m-by-n matrix with
// leading dimension ld lives at data[i + j*ld]. All factorization and
// kernel-summation routines in fdks::la operate on this type or on raw
// (pointer, ld) views of it.
#pragma once

#include <cstddef>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace fdks::la {

using index_t = std::ptrdiff_t;

/// Dense column-major matrix of doubles.
///
/// Invariants: rows() >= 0, cols() >= 0, ld() >= max(1, rows()),
/// data owns rows()*cols() contiguous doubles (ld == rows for owned
/// storage; strided views are expressed with raw pointers instead).
class Matrix {
 public:
  Matrix() = default;

  /// Uninitialized m-by-n matrix (values are zero-initialized; dense
  /// numerical code is too easy to get wrong with garbage init).
  Matrix(index_t m, index_t n);

  /// m-by-n matrix filled with a constant.
  Matrix(index_t m, index_t n, double fill);

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t ld() const noexcept { return rows_; }
  index_t size() const noexcept { return rows_ * cols_; }
  bool empty() const noexcept { return size() == 0; }

  double& operator()(index_t i, index_t j) noexcept {
    return data_[static_cast<size_t>(i + j * rows_)];
  }
  double operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<size_t>(i + j * rows_)];
  }

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Pointer to the top of column j.
  double* col(index_t j) noexcept { return data() + j * rows_; }
  const double* col(index_t j) const noexcept { return data() + j * rows_; }

  /// Set every entry to a constant.
  void fill(double v);

  /// Reshape to m-by-n, discarding contents (zero-filled).
  void resize(index_t m, index_t n);

  /// Copy of the [r0, r0+mr) x [c0, c0+nc) submatrix.
  Matrix block(index_t r0, index_t c0, index_t mr, index_t nc) const;

  /// Write a matrix into the [r0, ...) x [c0, ...) submatrix.
  void set_block(index_t r0, index_t c0, const Matrix& src);

  /// Transposed copy.
  Matrix transposed() const;

  /// Copy of selected columns, in the given order.
  Matrix select_cols(std::span<const index_t> idx) const;

  /// Copy of selected rows, in the given order.
  Matrix select_rows(std::span<const index_t> idx) const;

  // Named constructors -------------------------------------------------

  static Matrix identity(index_t n);

  /// Entries i.i.d. uniform on [lo, hi) from the given engine.
  static Matrix random_uniform(index_t m, index_t n, std::mt19937_64& rng,
                               double lo = -1.0, double hi = 1.0);

  /// Entries i.i.d. standard normal from the given engine.
  static Matrix random_gaussian(index_t m, index_t n, std::mt19937_64& rng);

  /// Human-readable dump, for debugging and test failure messages.
  std::string to_string(int precision = 4) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<double> data_;
};

/// Mutable strided view of a column-major block: element (i,j) lives at
/// data[i + j*ld]. Views are how the solver threads an n_rhs dimension
/// through the telescoping recursion without copying row-ranges in and
/// out of owned Matrix storage — a view of rows [r0, r0+m) of a parent
/// keeps the parent's leading dimension, so every level of the solve
/// operates in place on the same [N x B] block. A view never owns; the
/// viewed storage must outlive it.
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(double* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}
  /// Whole-matrix view (implicit: a Matrix is usable wherever a view is).
  MatrixView(Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), ld_(m.ld()) {}

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t ld() const noexcept { return ld_; }

  double* data() const noexcept { return data_; }
  double* col(index_t j) const noexcept { return data_ + j * ld_; }
  double& operator()(index_t i, index_t j) const noexcept {
    return data_[i + j * ld_];
  }

  /// Sub-view of the [r0, r0+mr) x [c0, c0+nc) block (no copy).
  MatrixView block(index_t r0, index_t c0, index_t mr, index_t nc) const {
    return MatrixView(data_ + r0 + c0 * ld_, mr, nc, ld_);
  }

  /// Column j as a contiguous span (views are column-contiguous).
  std::span<double> col_span(index_t j) const {
    return std::span<double>(col(j), static_cast<size_t>(rows_));
  }

 private:
  double* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Read-only counterpart of MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const double* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {}
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), ld_(m.ld()) {}
  ConstMatrixView(MatrixView v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), ld_(v.ld()) {}

  index_t rows() const noexcept { return rows_; }
  index_t cols() const noexcept { return cols_; }
  index_t ld() const noexcept { return ld_; }

  const double* data() const noexcept { return data_; }
  const double* col(index_t j) const noexcept { return data_ + j * ld_; }
  double operator()(index_t i, index_t j) const noexcept {
    return data_[i + j * ld_];
  }

  ConstMatrixView block(index_t r0, index_t c0, index_t mr,
                        index_t nc) const {
    return ConstMatrixView(data_ + r0 + c0 * ld_, mr, nc, ld_);
  }

  std::span<const double> col_span(index_t j) const {
    return std::span<const double>(col(j), static_cast<size_t>(rows_));
  }

 private:
  const double* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Max |a(i,j) - b(i,j)|; matrices must have identical shape.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Elementwise a + alpha*b, shapes must match.
Matrix add_scaled(const Matrix& a, double alpha, const Matrix& b);

}  // namespace fdks::la
