#include "la/lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "la/blas1.hpp"
#include "la/gemm.hpp"

namespace fdks::la {

namespace {

// Unblocked right-looking LU on the trailing window [k0, n) x [k0, k1)
// of lu, with row swaps applied across the FULL matrix width and the
// rank-1 updates confined to columns [k0, k1). This is the panel kernel
// of the blocked factorization (and the whole factorization when the
// matrix is small).
void lu_panel(Matrix& lu, LuFactor& f, index_t k0, index_t k1) {
  const index_t n = lu.rows();
  for (index_t k = k0; k < k1; ++k) {
    index_t p = k;
    double pmax = std::abs(lu(k, k));
    for (index_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    f.piv[static_cast<size_t>(k)] = p;
    if (p != k)
      for (index_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(p, j));

    const double pivot = lu(k, k);
    f.min_pivot = std::min(f.min_pivot, std::abs(pivot));
    f.max_pivot = std::max(f.max_pivot, std::abs(pivot));
    if (pivot == 0.0) {
      f.singular = true;
      continue;  // Leave the zero column; solves will see the flag.
    }
    const double inv = 1.0 / pivot;
    for (index_t i = k + 1; i < n; ++i) lu(i, k) *= inv;
    for (index_t j = k + 1; j < k1; ++j) {
      const double ukj = lu(k, j);
      if (ukj == 0.0) continue;
      double* col = lu.col(j);
      const double* lcol = lu.col(k);
      for (index_t i = k + 1; i < n; ++i) col[i] -= lcol[i] * ukj;
    }
  }
}

// Solve the unit-lower triangular system L11 X = B in place, where L11
// is the [k0, k1) diagonal block of lu (unit diagonal) and B is the
// [k0, k1) x [j0, j1) block.
void trsm_unit_lower(Matrix& lu, index_t k0, index_t k1, index_t j0,
                     index_t j1) {
  for (index_t j = j0; j < j1; ++j) {
    double* col = lu.col(j);
    for (index_t k = k0; k < k1; ++k) {
      const double bk = col[k];
      if (bk == 0.0) continue;
      const double* lcol = lu.col(k);
      for (index_t i = k + 1; i < k1; ++i) col[i] -= lcol[i] * bk;
    }
  }
}

constexpr index_t kLuBlock = 64;

}  // namespace

LuFactor lu_factor(const Matrix& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("lu_factor: matrix must be square");
  const index_t n = a.rows();
  LuFactor f;
  f.lu = a;
  f.piv.resize(static_cast<size_t>(n));
  f.min_pivot = std::numeric_limits<double>::infinity();
  f.max_pivot = 0.0;
  Matrix& lu = f.lu;

  if (n <= 2 * kLuBlock) {
    lu_panel(lu, f, 0, n);
  } else {
    // Blocked right-looking LU: factor a panel, triangular-solve the
    // row block, GEMM-update the trailing matrix. The GEMM carries the
    // O(n^3) work through the cache-blocked kernel.
    for (index_t k0 = 0; k0 < n; k0 += kLuBlock) {
      const index_t k1 = std::min(n, k0 + kLuBlock);
      lu_panel(lu, f, k0, k1);
      if (k1 == n) break;
      trsm_unit_lower(lu, k0, k1, k1, n);
      // Trailing update: A22 -= L21 * U12.
      gemm_raw(n - k1, n - k1, k1 - k0, -1.0, lu.col(k0) + k1, lu.ld(),
               lu.col(k1) + k0, lu.ld(), 1.0, lu.col(k1) + k1, lu.ld());
    }
  }
  if (n == 0) f.min_pivot = 0.0;
  return f;
}

void lu_solve(const LuFactor& f, std::span<double> b) {
  const index_t n = f.n();
  if (static_cast<index_t>(b.size()) != n)
    throw std::invalid_argument("lu_solve: rhs size mismatch");
  const Matrix& lu = f.lu;
  // Apply row interchanges.
  for (index_t k = 0; k < n; ++k) {
    const index_t p = f.piv[static_cast<size_t>(k)];
    if (p != k) std::swap(b[k], b[p]);
  }
  // Forward substitution with unit lower triangle.
  for (index_t k = 0; k < n; ++k) {
    const double bk = b[k];
    if (bk == 0.0) continue;
    const double* col = lu.col(k);
    for (index_t i = k + 1; i < n; ++i) b[i] -= col[i] * bk;
  }
  // Back substitution with upper triangle.
  for (index_t k = n - 1; k >= 0; --k) {
    b[k] /= lu(k, k);
    const double bk = b[k];
    if (bk == 0.0) continue;
    const double* col = lu.col(k);
    for (index_t i = 0; i < k; ++i) b[i] -= col[i] * bk;
  }
}

void lu_solve(const LuFactor& f, MatrixView b) {
  const index_t n = f.n();
  if (b.rows() != n)
    throw std::invalid_argument("lu_solve: block rhs shape mismatch");
  const index_t nrhs = b.cols();
  if (nrhs == 1) {  // Single column: the vector kernel already streams well.
    lu_solve(f, b.col_span(0));
    return;
  }
  const Matrix& lu = f.lu;
  // Row interchanges across all right-hand sides.
  for (index_t k = 0; k < n; ++k) {
    const index_t p = f.piv[static_cast<size_t>(k)];
    if (p == k) continue;
    for (index_t j = 0; j < nrhs; ++j) std::swap(b(k, j), b(p, j));
  }
  // Forward substitution with the unit lower triangle: each factor
  // column is loaded once and applied to every rhs column.
  for (index_t k = 0; k < n; ++k) {
    const double* col = lu.col(k);
    for (index_t j = 0; j < nrhs; ++j) {
      const double bk = b(k, j);
      if (bk == 0.0) continue;
      double* bj = b.col(j);
      for (index_t i = k + 1; i < n; ++i) bj[i] -= col[i] * bk;
    }
  }
  // Back substitution with the upper triangle.
  for (index_t k = n - 1; k >= 0; --k) {
    const double* col = lu.col(k);
    const double inv = 1.0 / lu(k, k);
    for (index_t j = 0; j < nrhs; ++j) {
      b(k, j) *= inv;
      const double bk = b(k, j);
      if (bk == 0.0) continue;
      double* bj = b.col(j);
      for (index_t i = 0; i < k; ++i) bj[i] -= col[i] * bk;
    }
  }
}

void lu_solve(const LuFactor& f, Matrix& b) { lu_solve(f, MatrixView(b)); }

double norm1(const Matrix& a) {
  double best = 0.0;
  for (index_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    const double* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) s += std::abs(col[i]);
    best = std::max(best, s);
  }
  return best;
}

namespace {

// Solve A^T x = b using the packed LU factor: A = P L U, so
// A^T = U^T L^T P^T; solve U^T y = b, L^T z = y, then x = P z.
void lu_solve_trans(const LuFactor& f, std::span<double> b) {
  const index_t n = f.n();
  const Matrix& lu = f.lu;
  // U^T is lower triangular: forward substitution.
  for (index_t k = 0; k < n; ++k) {
    double s = b[k];
    const double* col = lu.col(k);
    for (index_t i = 0; i < k; ++i) s -= col[i] * b[i];
    b[k] = s / lu(k, k);
  }
  // L^T is unit upper triangular: back substitution.
  for (index_t k = n - 1; k >= 0; --k) {
    double s = b[k];
    const double* col = lu.col(k);
    for (index_t i = k + 1; i < n; ++i) s -= col[i] * b[i];
    b[k] = s;
  }
  // Undo the pivoting (apply swaps in reverse).
  for (index_t k = n - 1; k >= 0; --k) {
    const index_t p = f.piv[static_cast<size_t>(k)];
    if (p != k) std::swap(b[k], b[p]);
  }
}

}  // namespace

double lu_rcond(const LuFactor& f, double anorm1) {
  const index_t n = f.n();
  if (n == 0 || f.singular || anorm1 == 0.0) return 0.0;
  // Hager's 1-norm estimator for ||A^-1||_1: power-like iteration on the
  // pair (A^-1, A^-T) with sign vectors. A handful of iterations is the
  // standard LAPACK budget.
  std::vector<double> x(static_cast<size_t>(n), 1.0 / static_cast<double>(n));
  double est = 0.0;
  for (int iter = 0; iter < 5; ++iter) {
    std::vector<double> y = x;
    lu_solve(f, y);
    double ynorm = 0.0;
    for (double v : y) ynorm += std::abs(v);
    est = std::max(est, ynorm);
    std::vector<double> xi(static_cast<size_t>(n));
    for (index_t i = 0; i < n; ++i) xi[i] = (y[i] >= 0.0) ? 1.0 : -1.0;
    lu_solve_trans(f, xi);
    const index_t j = iamax(xi);
    if (j < 0 || std::abs(xi[j]) <= dot(xi, x)) break;
    std::fill(x.begin(), x.end(), 0.0);
    x[static_cast<size_t>(j)] = 1.0;
  }
  if (est == 0.0) return 0.0;
  return 1.0 / (anorm1 * est);
}

}  // namespace fdks::la
