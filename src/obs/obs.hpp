// Lightweight observability: hierarchical scoped timers, named counters,
// and a JSON reporter.
//
// The paper's headline results are wall-clock breakdowns (Tables I-V,
// Figs 4-5: setup / factorize / solve per phase and per level), so the
// library instruments its hot layers with this registry and every bench
// binary emits a machine-readable BENCH_<name>.json next to its stdout
// table. Design:
//
//   ScopedTimer  — RAII scope. Each thread keeps a stack of open scopes;
//                  nested timers form a per-thread trace tree keyed by
//                  name. The clock is always read (two steady_clock
//                  calls per scope, ~tens of ns) so stop() can feed
//                  per-instance views like core::FactorProfile, but the
//                  registry is only touched when enabled(). When event
//                  tracing is on (obs/trace.hpp) each scope also emits
//                  begin/end events into the calling thread's trace.
//   add()        — named counter accumulation (flops, GEMM calls,
//                  skeleton ranks, mpisim traffic). Per-thread storage
//                  behind a per-thread mutex that is uncontended on the
//                  hot path; a disabled check up front makes the off
//                  path one relaxed load.
//   gauge()      — last-value metrics (current cache residency, error
//                  budget). Each thread stores its last set; the merge
//                  takes the most recent set across threads (a global
//                  sequence stamp decides "most recent").
//   snapshot()   — thread-safe merge of every thread's tree, counters,
//                  gauges, and histograms into one Snapshot (trees
//                  merged by name, counters summed).
//
// Threading contract: timers on one thread must close in LIFO order
// (automatic with RAII). Scopes opened on different threads (e.g. OpenMP
// workers inside a parallel factorization, mpisim rank threads) root at
// that thread's top level and merge into the snapshot at top level.
// snapshot() is safe concurrently with emission — each thread's state
// sits behind its own mutex, taken briefly by both sides — which is
// what lets the live exporter (obs/export.hpp) scrape a serving process
// mid-flight. reset() still requires quiescence (it destroys the
// per-thread states that open ScopedTimers point into). The registry
// owns all per-thread state, so threads may exit freely — their
// measurements survive until the next reset().
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fdks::obs {

/// Global on/off switch (default off). When off, timers still measure
/// (stop() stays usable) but nothing is recorded in the registry and
/// counters are a single relaxed load.
bool enabled();
void set_enabled(bool on);

/// Drop all recorded trees and counters from every thread. Call only at
/// a quiescent point; live threads re-register on their next use.
void reset();

/// Accumulate `v` into the named counter of the calling thread.
void add(std::string_view counter, double v = 1.0);

/// Add `seconds` to the named child of the calling thread's current
/// scope without opening one — for durations measured externally.
void record(std::string_view name, double seconds);

/// Record one sample into the named log-bucketed histogram (per-thread
/// storage, merged by snapshot()). Buckets are powers of two, so any
/// positive scale works: seconds, bytes, iteration counts. Quantiles
/// from merged buckets are within one bucket (a factor of 2) of exact
/// and exact for constant distributions.
void hist(std::string_view name, double v);

/// Set the named gauge to `v` (a level, not an accumulation: cache
/// residency, error budget). Each thread keeps its last set value with
/// a global sequence stamp; snapshot() reports the most recent set
/// across all threads, so a gauge updated under an external lock (the
/// FactorCache pattern) reads back exactly its latest value.
void gauge(std::string_view name, double v);

class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Close the scope now and return its elapsed seconds. Elapsed time is
  /// returned even when the registry is disabled. Idempotent.
  double stop();

 private:
  void* node_ = nullptr;       ///< TimerNode* when recording, else null.
  void* state_ = nullptr;      ///< Owning ThreadState* when recording.
  std::uint64_t t0_ns_ = 0;
  bool open_ = true;
  bool traced_ = false;        ///< Emitted a trace::begin() to close.
};

/// One merged trace-tree node. Children are ordered by first-open order
/// of the merged threads (deterministic for single-threaded phases).
struct TraceNode {
  std::string name;
  double seconds = 0.0;
  std::uint64_t count = 0;
  std::vector<TraceNode> children;

  /// First child with the given name, or nullptr.
  const TraceNode* child(std::string_view child_name) const;
};

/// Number of histogram buckets: bucket 0 holds non-positive samples,
/// bucket i (1..95) holds [2^(i-49), 2^(i-48)) — i.e. 2^-48 .. 2^46.
inline constexpr std::size_t kHistBuckets = 96;

/// Merged histogram. min/max/sum/count are exact; quantiles interpolate
/// within the hit bucket and clamp to [min, max].
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kHistBuckets> buckets{};

  /// q in [0, 1]; returns 0 for an empty histogram.
  double quantile(double q) const;
  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

struct Snapshot {
  TraceNode root;  ///< Synthetic root (empty name); top phases are its
                   ///< children. root.seconds is the sum of top scopes.
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;  ///< Most recent set per name.
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Merge every thread's trace tree, counters, gauges, and histograms.
/// Safe concurrently with emission on other threads.
Snapshot snapshot();

// ---- Process memory --------------------------------------------------

/// Current / peak resident set size in bytes, from /proc/self/status
/// (VmRSS / VmHWM). Returns 0 where /proc is unavailable.
std::uint64_t current_rss_bytes();
std::uint64_t peak_rss_bytes();

// ---- Reporting -------------------------------------------------------

/// JSON string escaping for user-supplied names.
std::string json_escape(std::string_view s);

/// Config entries are (key, pre-rendered JSON value). Use the kv()
/// helpers to format values.
using ConfigKV = std::pair<std::string, std::string>;
ConfigKV kv(std::string key, double v);
ConfigKV kv(std::string key, long long v);
ConfigKV kv(std::string key, int v);
ConfigKV kv(std::string key, bool v);
ConfigKV kv(std::string key, std::string_view v);
/// String literals would otherwise prefer the bool overload.
ConfigKV kv(std::string key, const char* v);

/// Serialize as {"name":..., "schema":"fdks-bench-v3", "config":{...},
/// "timers":[...], "counters":{...}, "gauges":{...},
/// "histograms":{...}}. Timer nodes carry name / seconds / count /
/// children; histogram entries carry count / sum / min / max / p50 /
/// p90 / p99. (v3 = v2 plus the "gauges" section; serve.cache_bytes
/// moved there from "counters".)
std::string to_json(const Snapshot& s, std::string_view name,
                    const std::vector<ConfigKV>& config = {});

/// Write to_json() to `path`. Returns false (and prints to stderr) on
/// I/O failure.
bool write_json(const std::string& path, std::string_view name,
                const std::vector<ConfigKV>& config, const Snapshot& s);

/// Human-readable indented tree plus counter totals.
void print_tree(std::FILE* out, const Snapshot& s);

}  // namespace fdks::obs
