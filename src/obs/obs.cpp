#include "obs/obs.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace fdks::obs {

namespace {

std::atomic<bool> g_enabled{false};
// Bumped by reset(); threads holding a cached state from an older
// generation re-register on their next instrumentation call.
std::atomic<std::uint64_t> g_generation{1};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Raw (unmerged) per-thread timer node. Children are owned vectors in
// first-open order; per-scope child counts are small, so a linear name
// scan beats a hash map here.
struct TimerNode {
  std::string name;
  TimerNode* parent = nullptr;
  std::uint64_t ns = 0;
  std::uint64_t count = 0;
  std::vector<std::unique_ptr<TimerNode>> children;

  TimerNode* child(std::string_view child_name) {
    for (auto& c : children)
      if (c->name == child_name) return c.get();
    children.push_back(std::make_unique<TimerNode>());
    children.back()->name = std::string(child_name);
    children.back()->parent = this;
    return children.back().get();
  }
};

struct ThreadState {
  TimerNode root;        ///< name "": synthetic per-thread root.
  TimerNode* current = &root;
  std::unordered_map<std::string, double> counters;
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadState>> states;
};

Registry& registry() {
  static Registry* r = new Registry();  // Leaked: usable at exit.
  return *r;
}

ThreadState& thread_state() {
  thread_local ThreadState* cached = nullptr;
  thread_local std::uint64_t cached_gen = 0;
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (cached == nullptr || cached_gen != gen) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.states.push_back(std::make_unique<ThreadState>());
    cached = r.states.back().get();
    cached_gen = gen;
  }
  return *cached;
}

void merge_into(TraceNode& dst, const TimerNode& src) {
  dst.seconds += static_cast<double>(src.ns) * 1e-9;
  dst.count += src.count;
  for (const auto& sc : src.children) {
    TraceNode* target = nullptr;
    for (auto& dc : dst.children)
      if (dc.name == sc->name) {
        target = &dc;
        break;
      }
    if (target == nullptr) {
      dst.children.emplace_back();
      target = &dst.children.back();
      target->name = sc->name;
    }
    merge_into(*target, *sc);
  }
}

void append_json_tree(std::string& out, const TraceNode& n) {
  char buf[64];
  out += "{\"name\":\"";
  out += json_escape(n.name);
  std::snprintf(buf, sizeof(buf), "\",\"seconds\":%.9f,\"count\":%llu",
                n.seconds, static_cast<unsigned long long>(n.count));
  out += buf;
  out += ",\"children\":[";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (i > 0) out += ',';
    append_json_tree(out, n.children[i]);
  }
  out += "]}";
}

void print_node(std::FILE* out, const TraceNode& n, int depth,
                double parent_seconds) {
  const double pct =
      parent_seconds > 0.0 ? 100.0 * n.seconds / parent_seconds : 100.0;
  std::fprintf(out, "  %*s%-*s %10.4fs  x%-8llu %5.1f%%\n", 2 * depth, "",
               std::max(1, 28 - 2 * depth), n.name.c_str(), n.seconds,
               static_cast<unsigned long long>(n.count), pct);
  for (const TraceNode& c : n.children)
    print_node(out, c, depth + 1, n.seconds);
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.states.clear();
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

void add(std::string_view counter, double v) {
  if (!enabled()) return;
  ThreadState& st = thread_state();
  auto it = st.counters.find(std::string(counter));
  if (it == st.counters.end())
    st.counters.emplace(std::string(counter), v);
  else
    it->second += v;
}

void record(std::string_view name, double seconds) {
  if (!enabled()) return;
  ThreadState& st = thread_state();
  TimerNode* n = st.current->child(name);
  n->ns += static_cast<std::uint64_t>(seconds * 1e9);
  ++n->count;
}

ScopedTimer::ScopedTimer(std::string_view name) : t0_ns_(now_ns()) {
  if (!enabled()) return;
  ThreadState& st = thread_state();
  TimerNode* n = st.current->child(name);
  st.current = n;
  node_ = n;
  state_ = &st;
}

double ScopedTimer::stop() {
  if (!open_) return 0.0;
  open_ = false;
  const std::uint64_t dns = now_ns() - t0_ns_;
  if (node_ != nullptr) {
    TimerNode* n = static_cast<TimerNode*>(node_);
    n->ns += dns;
    ++n->count;
    static_cast<ThreadState*>(state_)->current = n->parent;
    node_ = nullptr;
  }
  return static_cast<double>(dns) * 1e-9;
}

ScopedTimer::~ScopedTimer() { stop(); }

const TraceNode* TraceNode::child(std::string_view child_name) const {
  for (const TraceNode& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

Snapshot snapshot() {
  Snapshot s;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& st : r.states) {
    merge_into(s.root, st->root);
    for (const auto& [name, v] : st->counters) s.counters[name] += v;
  }
  // The synthetic per-thread roots carry no timing of their own; expose
  // the sum of top-level scopes as the root total.
  s.root.seconds = 0.0;
  s.root.count = 0;
  for (const TraceNode& c : s.root.children) s.root.seconds += c.seconds;
  return s;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

ConfigKV kv(std::string key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return {std::move(key), buf};
}

ConfigKV kv(std::string key, long long v) {
  return {std::move(key), std::to_string(v)};
}

ConfigKV kv(std::string key, int v) {
  return {std::move(key), std::to_string(v)};
}

ConfigKV kv(std::string key, bool v) {
  return {std::move(key), v ? "true" : "false"};
}

ConfigKV kv(std::string key, std::string_view v) {
  return {std::move(key), "\"" + json_escape(v) + "\""};
}

ConfigKV kv(std::string key, const char* v) {
  return kv(std::move(key), std::string_view(v));
}

std::string to_json(const Snapshot& s, std::string_view name,
                    const std::vector<ConfigKV>& config) {
  std::string out;
  out += "{\"name\":\"";
  out += json_escape(name);
  out += "\",\"schema\":\"fdks-bench-v1\",\"config\":{";
  for (size_t i = 0; i < config.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(config[i].first);
    out += "\":";
    out += config[i].second;
  }
  out += "},\"timers\":[";
  for (size_t i = 0; i < s.root.children.size(); ++i) {
    if (i > 0) out += ',';
    append_json_tree(out, s.root.children[i]);
  }
  out += "],\"counters\":{";
  size_t i = 0;
  for (const auto& [cname, v] : s.counters) {
    if (i++ > 0) out += ',';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += '"';
    out += json_escape(cname);
    out += "\":";
    out += buf;
  }
  out += "}}\n";
  return out;
}

bool write_json(const std::string& path, std::string_view name,
                const std::vector<ConfigKV>& config, const Snapshot& s) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = to_json(s, name, config);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

void print_tree(std::FILE* out, const Snapshot& s) {
  std::fprintf(out, "-- profile (%.4fs total) --\n", s.root.seconds);
  for (const TraceNode& c : s.root.children)
    print_node(out, c, 0, s.root.seconds);
  if (!s.counters.empty()) {
    std::fprintf(out, "-- counters --\n");
    for (const auto& [name, v] : s.counters)
      std::fprintf(out, "  %-28s %.6g\n", name.c_str(), v);
  }
}

}  // namespace fdks::obs
