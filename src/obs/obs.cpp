#include "obs/obs.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace fdks::obs {

namespace {

std::atomic<bool> g_enabled{false};
// Bumped by reset(); threads holding a cached state from an older
// generation re-register on their next instrumentation call.
std::atomic<std::uint64_t> g_generation{1};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Raw (unmerged) per-thread timer node. Children are owned vectors in
// first-open order; per-scope child counts are small, so a linear name
// scan beats a hash map here.
struct TimerNode {
  std::string name;
  TimerNode* parent = nullptr;
  std::uint64_t ns = 0;
  std::uint64_t count = 0;
  std::vector<std::unique_ptr<TimerNode>> children;

  TimerNode* child(std::string_view child_name) {
    for (auto& c : children)
      if (c->name == child_name) return c.get();
    children.push_back(std::make_unique<TimerNode>());
    children.back()->name = std::string(child_name);
    children.back()->parent = this;
    return children.back().get();
  }
};

/// Last value a thread set for a gauge, plus the global sequence stamp
/// of that set (snapshot() keeps the largest stamp across threads).
struct GaugeCell {
  double value = 0.0;
  std::uint64_t seq = 0;
};

struct ThreadState {
  /// Taken by every emission on this thread and by snapshot() while it
  /// merges this state. Emission is the only contender on its own
  /// mutex, so the hot path is an uncontended lock (~tens of ns) —
  /// cheap enough for per-call counters, and what makes live scraping
  /// (obs/export.hpp) race-free against in-flight instrumentation.
  std::mutex mu;
  TimerNode root;        ///< name "": synthetic per-thread root.
  TimerNode* current = &root;
  std::unordered_map<std::string, double> counters;
  std::unordered_map<std::string, GaugeCell> gauges;
  std::unordered_map<std::string, HistogramSnapshot> hists;
};

/// Orders concurrent gauge sets across threads ("most recent wins").
std::atomic<std::uint64_t> g_gauge_seq{0};

/// Bucket 0: non-positive. Bucket i in 1..95: [2^(i-49), 2^(i-48)).
std::size_t hist_bucket(double v) {
  if (!(v > 0.0)) return 0;
  const int e = static_cast<int>(std::floor(std::log2(v)));
  return static_cast<std::size_t>(
      std::clamp(e + 49, 1, static_cast<int>(kHistBuckets) - 1));
}

std::uint64_t proc_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  const std::size_t klen = std::strlen(key);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, klen) == 0) {
      char* end = nullptr;
      kb = std::strtoull(line + klen, &end, 10);
      if (end == line + klen) kb = 0;  // "VmRSS:" with no digits.
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadState>> states;
};

Registry& registry() {
  static Registry* r = new Registry();  // Leaked: usable at exit.
  return *r;
}

ThreadState& thread_state() {
  thread_local ThreadState* cached = nullptr;
  thread_local std::uint64_t cached_gen = 0;
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (cached == nullptr || cached_gen != gen) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.states.push_back(std::make_unique<ThreadState>());
    cached = r.states.back().get();
    cached_gen = gen;
  }
  return *cached;
}

void merge_into(TraceNode& dst, const TimerNode& src) {
  dst.seconds += static_cast<double>(src.ns) * 1e-9;
  dst.count += src.count;
  for (const auto& sc : src.children) {
    TraceNode* target = nullptr;
    for (auto& dc : dst.children)
      if (dc.name == sc->name) {
        target = &dc;
        break;
      }
    if (target == nullptr) {
      dst.children.emplace_back();
      target = &dst.children.back();
      target->name = sc->name;
    }
    merge_into(*target, *sc);
  }
}

void append_json_tree(std::string& out, const TraceNode& n) {
  char buf[64];
  out += "{\"name\":\"";
  out += json_escape(n.name);
  std::snprintf(buf, sizeof(buf), "\",\"seconds\":%.9f,\"count\":%llu",
                n.seconds, static_cast<unsigned long long>(n.count));
  out += buf;
  out += ",\"children\":[";
  for (size_t i = 0; i < n.children.size(); ++i) {
    if (i > 0) out += ',';
    append_json_tree(out, n.children[i]);
  }
  out += "]}";
}

void print_node(std::FILE* out, const TraceNode& n, int depth,
                double parent_seconds) {
  const double pct =
      parent_seconds > 0.0 ? 100.0 * n.seconds / parent_seconds : 100.0;
  std::fprintf(out, "  %*s%-*s %10.4fs  x%-8llu %5.1f%%\n", 2 * depth, "",
               std::max(1, 28 - 2 * depth), n.name.c_str(), n.seconds,
               static_cast<unsigned long long>(n.count), pct);
  for (const TraceNode& c : n.children)
    print_node(out, c, depth + 1, n.seconds);
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.states.clear();
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

void add(std::string_view counter, double v) {
  if (!enabled()) return;
  ThreadState& st = thread_state();
  std::lock_guard<std::mutex> lock(st.mu);
  auto it = st.counters.find(std::string(counter));
  if (it == st.counters.end())
    st.counters.emplace(std::string(counter), v);
  else
    it->second += v;
}

void gauge(std::string_view name, double v) {
  if (!enabled()) return;
  ThreadState& st = thread_state();
  const std::uint64_t seq =
      g_gauge_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  std::lock_guard<std::mutex> lock(st.mu);
  GaugeCell& c = st.gauges[std::string(name)];
  c.value = v;
  c.seq = seq;
}

void record(std::string_view name, double seconds) {
  if (!enabled()) return;
  ThreadState& st = thread_state();
  std::lock_guard<std::mutex> lock(st.mu);
  TimerNode* n = st.current->child(name);
  n->ns += static_cast<std::uint64_t>(seconds * 1e9);
  ++n->count;
}

void hist(std::string_view name, double v) {
  if (!enabled()) return;
  ThreadState& st = thread_state();
  std::lock_guard<std::mutex> lock(st.mu);
  HistogramSnapshot& h = st.hists[std::string(name)];
  if (h.count == 0) {
    h.min = v;
    h.max = v;
  } else {
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
  }
  ++h.count;
  h.sum += v;
  ++h.buckets[hist_bucket(v)];
}

ScopedTimer::ScopedTimer(std::string_view name) : t0_ns_(now_ns()) {
  if (trace::enabled()) {
    trace::begin(name);
    traced_ = true;
  }
  if (!enabled()) return;
  ThreadState& st = thread_state();
  std::lock_guard<std::mutex> lock(st.mu);
  TimerNode* n = st.current->child(name);
  st.current = n;
  node_ = n;
  state_ = &st;
}

double ScopedTimer::stop() {
  if (!open_) return 0.0;
  open_ = false;
  if (traced_) {
    trace::end();
    traced_ = false;
  }
  const std::uint64_t dns = now_ns() - t0_ns_;
  if (node_ != nullptr) {
    ThreadState* st = static_cast<ThreadState*>(state_);
    std::lock_guard<std::mutex> lock(st->mu);
    TimerNode* n = static_cast<TimerNode*>(node_);
    n->ns += dns;
    ++n->count;
    st->current = n->parent;
    node_ = nullptr;
  }
  return static_cast<double>(dns) * 1e-9;
}

ScopedTimer::~ScopedTimer() { stop(); }

const TraceNode* TraceNode::child(std::string_view child_name) const {
  for (const TraceNode& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double prev = static_cast<double>(cum);
    cum += buckets[i];
    if (static_cast<double>(cum) >= target) {
      if (i == 0) return std::min(min, 0.0);  // Non-positive samples.
      const double lo = std::ldexp(1.0, static_cast<int>(i) - 49);
      const double hi = std::ldexp(1.0, static_cast<int>(i) - 48);
      const double frac = std::clamp(
          (target - prev) / static_cast<double>(buckets[i]), 0.0, 1.0);
      return std::clamp(lo + (hi - lo) * frac, min, max);
    }
  }
  return max;
}

Snapshot snapshot() {
  Snapshot s;
  // Gauges merge by "most recent set wins" via the per-cell sequence
  // stamp; the winning stamp per name lives only for this merge.
  std::map<std::string, std::uint64_t> gauge_seq;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& st : r.states) {
    // Lock order is registry -> thread state everywhere; emission takes
    // only its own state mutex, so snapshot() can run mid-flight.
    std::lock_guard<std::mutex> state_lock(st->mu);
    merge_into(s.root, st->root);
    for (const auto& [name, v] : st->counters) s.counters[name] += v;
    for (const auto& [name, c] : st->gauges) {
      auto it = gauge_seq.find(name);
      if (it == gauge_seq.end() || c.seq > it->second) {
        gauge_seq[name] = c.seq;
        s.gauges[name] = c.value;
      }
    }
    for (const auto& [name, h] : st->hists) {
      HistogramSnapshot& dst = s.histograms[name];
      if (dst.count == 0) {
        dst.min = h.min;
        dst.max = h.max;
      } else if (h.count > 0) {
        dst.min = std::min(dst.min, h.min);
        dst.max = std::max(dst.max, h.max);
      }
      dst.count += h.count;
      dst.sum += h.sum;
      for (std::size_t i = 0; i < kHistBuckets; ++i)
        dst.buckets[i] += h.buckets[i];
    }
  }
  // The synthetic per-thread roots carry no timing of their own; expose
  // the sum of top-level scopes as the root total.
  s.root.seconds = 0.0;
  s.root.count = 0;
  for (const TraceNode& c : s.root.children) s.root.seconds += c.seconds;
  return s;
}

std::uint64_t current_rss_bytes() { return proc_status_kb("VmRSS:") * 1024; }

std::uint64_t peak_rss_bytes() { return proc_status_kb("VmHWM:") * 1024; }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

ConfigKV kv(std::string key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return {std::move(key), buf};
}

ConfigKV kv(std::string key, long long v) {
  return {std::move(key), std::to_string(v)};
}

ConfigKV kv(std::string key, int v) {
  return {std::move(key), std::to_string(v)};
}

ConfigKV kv(std::string key, bool v) {
  return {std::move(key), v ? "true" : "false"};
}

ConfigKV kv(std::string key, std::string_view v) {
  // Appends instead of `"\"" + s + "\""`: GCC 12's -Wrestrict issues a
  // false positive on const char* + std::string&& in Release (PR105651).
  std::string quoted;
  std::string escaped = json_escape(v);
  quoted.reserve(escaped.size() + 2);
  quoted += '"';
  quoted += escaped;
  quoted += '"';
  return {std::move(key), std::move(quoted)};
}

ConfigKV kv(std::string key, const char* v) {
  return kv(std::move(key), std::string_view(v));
}

std::string to_json(const Snapshot& s, std::string_view name,
                    const std::vector<ConfigKV>& config) {
  std::string out;
  out += "{\"name\":\"";
  out += json_escape(name);
  out += "\",\"schema\":\"fdks-bench-v3\",\"config\":{";
  for (size_t i = 0; i < config.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    out += json_escape(config[i].first);
    out += "\":";
    out += config[i].second;
  }
  out += "},\"timers\":[";
  for (size_t i = 0; i < s.root.children.size(); ++i) {
    if (i > 0) out += ',';
    append_json_tree(out, s.root.children[i]);
  }
  out += "],\"counters\":{";
  size_t i = 0;
  for (const auto& [cname, v] : s.counters) {
    if (i++ > 0) out += ',';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += '"';
    out += json_escape(cname);
    out += "\":";
    out += buf;
  }
  out += "},\"gauges\":{";
  i = 0;
  for (const auto& [gname, v] : s.gauges) {
    if (i++ > 0) out += ',';
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += '"';
    out += json_escape(gname);
    out += "\":";
    out += buf;
  }
  out += "},\"histograms\":{";
  i = 0;
  for (const auto& [hname, h] : s.histograms) {
    if (i++ > 0) out += ',';
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\":%llu,\"sum\":%.17g,\"min\":%.17g,"
                  "\"max\":%.17g,\"p50\":%.9g,\"p90\":%.9g,\"p99\":%.9g}",
                  static_cast<unsigned long long>(h.count), h.sum, h.min,
                  h.max, h.quantile(0.50), h.quantile(0.90),
                  h.quantile(0.99));
    out += '"';
    out += json_escape(hname);
    out += "\":";
    out += buf;
  }
  out += "}}\n";
  return out;
}

bool write_json(const std::string& path, std::string_view name,
                const std::vector<ConfigKV>& config, const Snapshot& s) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = to_json(s, name, config);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "obs: short write to %s\n", path.c_str());
  return ok;
}

void print_tree(std::FILE* out, const Snapshot& s) {
  std::fprintf(out, "-- profile (%.4fs total) --\n", s.root.seconds);
  for (const TraceNode& c : s.root.children)
    print_node(out, c, 0, s.root.seconds);
  if (!s.counters.empty()) {
    std::fprintf(out, "-- counters --\n");
    for (const auto& [name, v] : s.counters)
      std::fprintf(out, "  %-28s %.6g\n", name.c_str(), v);
  }
  if (!s.gauges.empty()) {
    std::fprintf(out, "-- gauges --\n");
    for (const auto& [name, v] : s.gauges)
      std::fprintf(out, "  %-28s %.6g\n", name.c_str(), v);
  }
  if (!s.histograms.empty()) {
    std::fprintf(out, "-- histograms --\n");
    for (const auto& [name, h] : s.histograms)
      std::fprintf(out,
                   "  %-28s n=%-8llu p50=%.3g p90=%.3g p99=%.3g max=%.3g\n",
                   name.c_str(), static_cast<unsigned long long>(h.count),
                   h.quantile(0.50), h.quantile(0.90), h.quantile(0.99),
                   h.max);
  }
}

}  // namespace fdks::obs
