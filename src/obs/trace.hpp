// Event-level distributed tracing on top of the obs registry.
//
// The registry's merged timer trees answer "where did the time go in
// aggregate"; this layer answers the per-rank questions behind the
// paper's scaling claims (Figs. 4-5): what was each rank doing at each
// instant, which send fed which recv, and which dependency chain set
// the wall clock. Design:
//
//   Per-thread ring buffers — every emitting thread owns a fixed-size
//     event buffer it alone writes; publication is a single release
//     store of the buffer length, so emission is lock-free and safe to
//     read concurrently (collect() takes an acquire load and reads only
//     the published prefix). When a buffer fills, new events are
//     DROPPED (never overwritten): early events — setup, factorization
//     — survive, and the drop count is reported per thread.
//
//   Spans — obs::ScopedTimer automatically emits Begin/End events when
//     tracing is enabled, so the existing instrumentation becomes a
//     per-thread timeline for free. Export pairs Begin/End on a stack
//     into Chrome "X" complete events; events orphaned by drops or
//     exceptions are discarded (counted in the export's metadata).
//
//   Flow events — mpisim stamps every message with a unique flow id;
//     the sender emits FlowSend (with destination rank and tag), the
//     receiver FlowRecv on delivery. Exported as Chrome "s"/"f" flow
//     arrows, and consumed by critical_path().
//
//   Tracks — mpisim::run tags each rank thread via set_thread_track(),
//     so the export groups events into one Perfetto process row per
//     rank ("rank 0", "rank 1", ...); untagged threads (main, OpenMP
//     workers) land under a shared "host" row.
//
// The export is the Chrome trace-event JSON array format, loadable in
// Perfetto (https://ui.perfetto.dev) and chrome://tracing.
//
// Threading contract: begin/end/instant/flow* and set_thread_track are
// per-thread and wait-free. collect() and the exporters may run
// concurrently with emission (they see a consistent prefix). reset()
// and set_capacity() require quiescence like obs::reset().
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fdks::obs::trace {

/// Tracing on/off (default off; independent of obs::enabled()). All
/// emission is a single relaxed load when off.
bool enabled();
void set_enabled(bool on);

/// Drop every thread's buffer. Quiescent points only.
void reset();

/// Per-thread buffer capacity in events for buffers registered from now
/// on (default 65536). Call before enabling; existing buffers keep
/// their capacity.
void set_capacity(std::size_t events_per_thread);

/// Tag the calling thread as mpisim world rank `rank` (>= 0); the
/// export groups its events under a "rank <r>" process row and
/// critical_path() treats it as one rank timeline. Untagged threads
/// export under the shared "host" row.
void set_thread_track(int rank);

/// Pre-register the calling thread's event buffer (no-op while
/// disabled). A thread's buffer is otherwise allocated and zero-filled
/// lazily at its first emit — a multi-MB page-fault burst at default
/// capacity. Long-lived worker threads (e.g. the serving engine's)
/// call this at startup so the cost lands at thread creation, not
/// inside the first request they serve.
void warm();

// ---- Emission (no-ops while disabled) --------------------------------

void begin(std::string_view name);
void end();
void instant(std::string_view name);
/// Message flow endpoints: `id` must be unique per logical message and
/// identical on both ends; `peer` is the other world rank, `tag` the
/// message tag.
void flow_send(std::uint64_t id, int peer, int tag);
void flow_recv(std::uint64_t id, int peer, int tag);

// ---- Collection ------------------------------------------------------

struct Event {
  enum Type : std::uint8_t { kBegin, kEnd, kInstant, kFlowSend, kFlowRecv };
  static constexpr std::size_t kNameCap = 31;

  std::uint64_t ts_ns = 0;  ///< steady_clock, same epoch across threads.
  std::uint64_t id = 0;     ///< Flow id (flow events only).
  std::int32_t a = 0;       ///< Flow: peer world rank.
  std::int32_t b = 0;       ///< Flow: message tag.
  Type type = kInstant;
  char name[kNameCap + 1] = {};  ///< Truncated to kNameCap chars.
};

struct ThreadTrace {
  int rank = -1;            ///< set_thread_track value, -1 = host.
  std::uint64_t tid = 0;    ///< Stable per-buffer id.
  std::uint64_t dropped = 0;
  std::vector<Event> events;  ///< Published prefix, emission order.
};

struct TraceData {
  std::vector<ThreadTrace> threads;
};

/// Snapshot every thread's published events. Safe concurrently with
/// emission.
TraceData collect();

// ---- Export ----------------------------------------------------------

/// Chrome trace-event JSON ({"traceEvents":[...]}): per-(pid,tid)
/// "X" complete events from paired Begin/End, "i" instants, "s"/"f"
/// flow arrows, plus process/thread name metadata. pid = world rank for
/// tagged threads.
std::string chrome_trace_json(const TraceData& d);

/// collect() + chrome_trace_json() -> path. False (stderr diagnostic)
/// on I/O failure.
bool write_chrome_trace(const std::string& path);
bool write_chrome_trace(const std::string& path, const TraceData& d);

// ---- Critical-path analysis ------------------------------------------

/// One link of the longest dependency chain: either local work on
/// `rank` over [t0_ns, t1_ns], or a message hop (via_message = true)
/// that entered `rank` from `from_rank`.
struct CriticalPath {
  struct Segment {
    int rank = -1;
    std::uint64_t t0_ns = 0, t1_ns = 0;
    bool via_message = false;
    int from_rank = -1;  ///< Sender rank when via_message.
    int tag = 0;         ///< Message tag when via_message.
    double seconds() const {
      return static_cast<double>(t1_ns - t0_ns) * 1e-9;
    }
  };

  double total_seconds = 0.0;   ///< Length of the longest chain.
  double wall_seconds = 0.0;    ///< Span of the ranked timelines.
  std::vector<Segment> segments;  ///< Chronological chain.
  std::map<int, double> rank_busy_seconds;  ///< Non-blocked time per rank.

  /// total_seconds <= wall_seconds and >= every rank's busy time, by
  /// construction (see trace.cpp); callers may assert this.
  double max_busy_seconds() const;
};

/// Longest dependency chain through the per-rank timelines (threads
/// with rank >= 0) and the send->recv flow edges: within a rank time
/// flows forward; a recv that actually blocked hands the chain to the
/// matching sender. Returns a zero CriticalPath when no ranked events
/// exist.
CriticalPath critical_path(const TraceData& d);

/// Human-readable multi-line report (totals, per-rank busy time, chain
/// tail).
std::string critical_path_report(const CriticalPath& cp);

}  // namespace fdks::obs::trace
