// Live metrics exposition for a running process: Prometheus text
// rendering of the obs registry, a minimal embedded HTTP listener that
// serves it, and a background sampler that turns lifetime totals into
// interval deltas (rates).
//
// The registry (obs/obs.hpp) was built batch-shaped — counters
// materialize as BENCH_*.json when the process exits. A serving process
// (serve/engine.hpp, examples/fdks_serve) needs the same numbers while
// it runs:
//
//   prometheus_render() — the merged Snapshot in Prometheus text
//     exposition format v0.0.4: counters and gauges as scalar samples,
//     histograms as cumulative `le` bucket series (+Inf, _sum, _count)
//     with interpolated p50/p90/p99 alongside as a gauge family, and
//     the flattened timer tree as two labeled counter families
//     (fdks_timer_seconds_total / fdks_timer_calls_total by scope
//     path). Every registered Counter/Gauge/Histogram key renders even
//     before its first emission (value 0), so a scrape's key set is
//     stable from the first request to the last.
//
//   MetricsExporter — a blocking-accept TCP listener on 127.0.0.1
//     (port 0 = ephemeral, see port()) serving every request one
//     render; one scrape thread, connection-per-request, no HTTP
//     parsing beyond draining the request. Depends on snapshot() being
//     safe concurrently with emission, which obs.cpp guarantees via
//     the per-thread-state mutexes.
//
//   Sampler — a background thread that snapshots every `interval`,
//     diffs counters against the previous tick, and keeps the last
//     `capacity` delta samples in a ring. Rates, not lifetime totals:
//     at minute 40 of a serving run, "serve.requests = 1.2M" says
//     nothing — "+450/s over the last 2s" does. The exporter renders
//     the newest sample as a fdks_counter_rate gauge family when one
//     is attached.
//
// Threading: MetricsExporter and Sampler each own one std::thread,
// joined by stop()/destructor. http_get_metrics() is a test/bench
// convenience client, not production plumbing.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>

#include <condition_variable>
#include <deque>
#include <mutex>

#include "obs/obs.hpp"

namespace fdks::obs {

/// One interval-delta observation produced by the Sampler.
struct Sample {
  double t_seconds = 0.0;         ///< Since the sampler started.
  double interval_seconds = 0.0;  ///< Measured, not configured.
  /// Counter increments over this interval (absent = no change).
  std::map<std::string, double> counter_deltas;
  std::map<std::string, double> gauges;  ///< Levels at sample time.
  std::uint64_t rss_bytes = 0;
  std::uint64_t peak_rss_bytes = 0;
};

struct SamplerOptions {
  std::chrono::milliseconds interval{1000};
  std::size_t capacity = 128;  ///< Ring depth (oldest samples dropped).
  /// Optional per-tick hook (runs on the sampler thread): print a
  /// status line, push to a collector, etc.
  std::function<void(const Sample&)> on_sample;
};

/// Background delta-snapshot thread. Construction starts it; stop()
/// (or the destructor) joins it. One final sample is taken at stop so
/// short runs still observe their tail.
class Sampler {
 public:
  explicit Sampler(SamplerOptions opts = {});
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void stop();

  /// Ring contents, oldest first.
  std::vector<Sample> samples() const;
  /// Copy of the newest sample; false when none have been taken yet.
  bool latest(Sample& out) const;
  /// Per-second rates from the newest sample (empty before the first
  /// tick or when its interval was degenerate).
  std::map<std::string, double> latest_rates() const;
  std::uint64_t ticks() const;

 private:
  void run();
  void take_sample(std::chrono::steady_clock::time_point now);

  SamplerOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point prev_time_;
  std::map<std::string, double> prev_counters_;
  std::deque<Sample> ring_;
  std::uint64_t ticks_ = 0;
  std::thread thread_;
};

struct PrometheusOptions {
  /// Render every registered Counter/Gauge/Histogram key (obs/keys.hpp)
  /// even when the snapshot has not seen it yet, so scrapers get a
  /// stable key set. Off for ad-hoc snapshots in tests.
  bool registry_defaults = true;
  /// When set, the newest sample's counter deltas render as a
  /// fdks_counter_rate{key="..."} gauge family (per second).
  const Sampler* sampler = nullptr;
};

/// Prometheus text exposition format v0.0.4 of the snapshot. Metric
/// names are "fdks_" + the obs key with every non-[a-zA-Z0-9_] mapped
/// to '_'; HELP/TYPE lines precede each family exactly once.
std::string prometheus_render(const Snapshot& s,
                              const PrometheusOptions& opts = {});

/// "serve.request_seconds" -> "fdks_serve_request_seconds".
std::string prometheus_metric_name(std::string_view key);
/// Label-value escaping: backslash, double quote, newline.
std::string prometheus_escape_label(std::string_view v);
/// HELP-text escaping: backslash, newline.
std::string prometheus_escape_help(std::string_view v);

struct MetricsExporterOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via port()).
  PrometheusOptions render;
};

/// Embedded scrape endpoint: binds 127.0.0.1:<port>, then serves each
/// accepted connection one prometheus_render() of a fresh snapshot
/// (HTTP/1.1 200, Content-Type text/plain; version=0.0.4) and closes.
/// Blocking accept on a dedicated thread; stop() shuts the listener
/// down to unblock it. Throws std::runtime_error when the port cannot
/// be bound. Each scrape bumps the obs.scrapes counter.
class MetricsExporter {
 public:
  explicit MetricsExporter(MetricsExporterOptions opts = {});
  ~MetricsExporter();
  MetricsExporter(const MetricsExporter&) = delete;
  MetricsExporter& operator=(const MetricsExporter&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint64_t scrapes() const;
  void stop();

 private:
  void serve_loop();

  MetricsExporterOptions opts_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  mutable std::mutex mu_;
  bool stopped_ = false;
  std::uint64_t scrapes_ = 0;
  std::thread thread_;
};

/// Minimal HTTP GET of http://127.0.0.1:<port>/metrics; returns the
/// response body, or an empty string on any failure. A test/bench
/// client (the real consumer is curl/Prometheus).
std::string http_get_metrics(std::uint16_t port);

}  // namespace fdks::obs
