#include "obs/export.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/keys.hpp"

namespace fdks::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Upper bound of histogram bucket `i` (see obs.hpp): bucket 0 holds
/// non-positive samples (le="0"), bucket i in 1..95 holds
/// [2^(i-49), 2^(i-48)) so its inclusive upper edge is 2^(i-48).
double bucket_upper(std::size_t i) {
  if (i == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(i) - 48);
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double v) {
  out += name;
  out += labels;
  out += ' ';
  out += fmt_double(v);
  out += '\n';
}

void append_family_header(std::string& out, const std::string& name,
                          std::string_view help, std::string_view type) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += prometheus_escape_help(help);
  out += '\n';
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

/// Flatten the merged timer tree into "a/b/c" scope paths.
void flatten_timers(const TraceNode& node, const std::string& prefix,
                    std::vector<std::pair<std::string, const TraceNode*>>& out) {
  for (const TraceNode& child : node.children) {
    std::string path = prefix.empty() ? child.name : prefix + "/" + child.name;
    out.emplace_back(path, &child);
    flatten_timers(child, path, out);
  }
}

void collect_node_names(const TraceNode& node, std::set<std::string>& names) {
  for (const TraceNode& child : node.children) {
    names.insert(child.name);
    collect_node_names(child, names);
  }
}

}  // namespace

std::string prometheus_metric_name(std::string_view key) {
  std::string name = "fdks_";
  for (char c : key) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    name += ok ? c : '_';
  }
  return name;
}

std::string prometheus_escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_escape_help(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_render(const Snapshot& s,
                              const PrometheusOptions& opts) {
  std::string out;
  out.reserve(1 << 14);

  // Counters and gauges: start from registry defaults (stable key set
  // across the process lifetime) and overlay observed values, which may
  // include dynamic Prefix-family keys the registry only knows by stem.
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  if (opts.registry_defaults) {
    for (const keys::KeyInfo& k : keys::kAll) {
      switch (k.kind) {
        case keys::Kind::Counter: counters[std::string(k.key)] = 0.0; break;
        case keys::Kind::Gauge: gauges[std::string(k.key)] = 0.0; break;
        case keys::Kind::Histogram:
          histograms.emplace(std::string(k.key), HistogramSnapshot{});
          break;
        default: break;
      }
    }
  }
  for (const auto& [key, v] : s.counters) counters[key] = v;
  for (const auto& [key, v] : s.gauges) gauges[key] = v;
  for (const auto& [key, h] : s.histograms) histograms[key] = h;

  for (const auto& [key, v] : counters) {
    const std::string name = prometheus_metric_name(key);
    append_family_header(out, name, "obs counter " + key, "counter");
    append_sample(out, name, "", v);
  }

  for (const auto& [key, v] : gauges) {
    const std::string name = prometheus_metric_name(key);
    append_family_header(out, name, "obs gauge " + key, "gauge");
    append_sample(out, name, "", v);
  }

  for (const auto& [key, h] : histograms) {
    const std::string name = prometheus_metric_name(key);
    append_family_header(out, name, "obs histogram " + key, "histogram");
    // Cumulative `le` series. Boundaries with no samples are omitted
    // (Prometheus does not require every edge), except +Inf which is
    // mandatory and must equal _count.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kHistBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      cum += h.buckets[i];
      const std::string le =
          i == 0 ? std::string("0") : fmt_double(bucket_upper(i));
      append_sample(out, name, "_bucket{le=\"" + le + "\"}",
                    static_cast<double>(cum));
    }
    append_sample(out, name, "_bucket{le=\"+Inf\"}",
                  static_cast<double>(h.count));
    append_sample(out, name, "_sum", h.sum);
    append_sample(out, name, "_count", static_cast<double>(h.count));
    // Interpolated quantiles alongside, as a gauge family — scrapers
    // get tail latency without re-deriving it from the buckets.
    const std::string qname = name + "_quantile";
    append_family_header(out, qname, "interpolated quantiles of " + key,
                         "gauge");
    for (const char* q : {"0.5", "0.9", "0.99"}) {
      append_sample(out, qname, std::string("{quantile=\"") + q + "\"}",
                    h.quantile(std::stod(q)));
    }
  }

  // Timer tree, flattened to scope paths. Registered Timer keys that
  // have not opened yet render as zero-valued top-level scopes so the
  // exposition's key set is stable.
  std::vector<std::pair<std::string, const TraceNode*>> timers;
  flatten_timers(s.root, "", timers);
  const std::string tsec = "fdks_timer_seconds_total";
  const std::string tcalls = "fdks_timer_calls_total";
  append_family_header(out, tsec, "cumulative seconds per timer scope path",
                       "counter");
  for (const auto& [path, node] : timers) {
    append_sample(out, tsec, "{scope=\"" + prometheus_escape_label(path) + "\"}",
                  node->seconds);
  }
  std::set<std::string> seen_names;
  if (opts.registry_defaults) {
    collect_node_names(s.root, seen_names);
    for (const keys::KeyInfo& k : keys::kAll) {
      if (k.kind != keys::Kind::Timer) continue;
      if (seen_names.count(std::string(k.key)) != 0) continue;
      append_sample(out, tsec,
                    "{scope=\"" + prometheus_escape_label(k.key) + "\"}", 0.0);
    }
  }
  append_family_header(out, tcalls, "cumulative calls per timer scope path",
                       "counter");
  for (const auto& [path, node] : timers) {
    append_sample(out, tcalls,
                  "{scope=\"" + prometheus_escape_label(path) + "\"}",
                  static_cast<double>(node->count));
  }
  if (opts.registry_defaults) {
    for (const keys::KeyInfo& k : keys::kAll) {
      if (k.kind != keys::Kind::Timer) continue;
      if (seen_names.count(std::string(k.key)) != 0) continue;
      append_sample(out, tcalls,
                    "{scope=\"" + prometheus_escape_label(k.key) + "\"}", 0.0);
    }
  }

  if (opts.sampler != nullptr) {
    const std::map<std::string, double> rates = opts.sampler->latest_rates();
    const std::string rname = "fdks_counter_rate";
    append_family_header(
        out, rname, "per-second counter increments over the last interval",
        "gauge");
    for (const auto& [key, r] : rates) {
      append_sample(out, rname,
                    "{key=\"" + prometheus_escape_label(key) + "\"}", r);
    }
  }

  return out;
}

// ---- Sampler ---------------------------------------------------------

Sampler::Sampler(SamplerOptions opts) : opts_(std::move(opts)) {
  if (opts_.capacity == 0) opts_.capacity = 1;
  start_ = std::chrono::steady_clock::now();
  prev_time_ = start_;
  prev_counters_ = obs::snapshot().counters;
  thread_ = std::thread([this] { run(); });
}

Sampler::~Sampler() { stop(); }

void Sampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
}

void Sampler::run() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, opts_.interval, [this] { return stop_; });
      if (stop_) break;
    }
    take_sample(std::chrono::steady_clock::now());
  }
  // Final sample at stop so a run shorter than one interval is still
  // observed.
  take_sample(std::chrono::steady_clock::now());
}

void Sampler::take_sample(std::chrono::steady_clock::time_point now) {
  const Snapshot snap = obs::snapshot();
  Sample sample;
  sample.t_seconds = std::chrono::duration<double>(now - start_).count();
  sample.interval_seconds =
      std::chrono::duration<double>(now - prev_time_).count();
  for (const auto& [key, v] : snap.counters) {
    const auto it = prev_counters_.find(key);
    const double d = v - (it == prev_counters_.end() ? 0.0 : it->second);
    if (d != 0.0) sample.counter_deltas[key] = d;
  }
  sample.gauges = snap.gauges;
  sample.rss_bytes = current_rss_bytes();
  sample.peak_rss_bytes = peak_rss_bytes();
  prev_counters_ = snap.counters;
  prev_time_ = now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_.push_back(sample);
    while (ring_.size() > opts_.capacity) ring_.pop_front();
    ++ticks_;
  }
  if (opts_.on_sample) opts_.on_sample(sample);
}

std::vector<Sample> Sampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Sample>(ring_.begin(), ring_.end());
}

bool Sampler::latest(Sample& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) return false;
  out = ring_.back();
  return true;
}

std::map<std::string, double> Sampler::latest_rates() const {
  Sample s;
  if (!latest(s) || s.interval_seconds <= 0.0) return {};
  std::map<std::string, double> rates;
  for (const auto& [key, d] : s.counter_deltas) {
    rates[key] = d / s.interval_seconds;
  }
  return rates;
}

std::uint64_t Sampler::ticks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ticks_;
}

// ---- MetricsExporter -------------------------------------------------

MetricsExporter::MetricsExporter(MetricsExporterOptions opts)
    : opts_(std::move(opts)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("obs::MetricsExporter: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(
        std::string("obs::MetricsExporter: cannot bind 127.0.0.1:") +
        std::to_string(opts_.port) + ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = opts_.port;
  }
  thread_ = std::thread([this] { serve_loop(); });
}

MetricsExporter::~MetricsExporter() { stop(); }

void MetricsExporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Unblock the accept() so the serve thread can observe stopped_.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

std::uint64_t MetricsExporter::scrapes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return scrapes_;
}

void MetricsExporter::serve_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) {
        if (fd >= 0) ::close(fd);
        return;
      }
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener broken some other way; give up quietly.
    }
    // Drain (one read of) the request; we serve the same document for
    // any path, so the contents only matter as a liveness signal.
    char req[1024];
    (void)::recv(fd, req, sizeof(req), 0);
    // Count the scrape BEFORE rendering: the scrape observes itself,
    // and the counter is committed before the client sees any byte of
    // the response (a snapshot taken after a scrape returns can never
    // miss its count).
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++scrapes_;
    }
    obs::add(keys::kObsScrapes);
    const std::string body = prometheus_render(obs::snapshot(), opts_.render);
    char header[256];
    const int hlen = std::snprintf(
        header, sizeof(header),
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n\r\n",
        body.size());
    if (hlen > 0) {
      (void)::send(fd, header, static_cast<std::size_t>(hlen), MSG_NOSIGNAL);
      std::size_t sent = 0;
      while (sent < body.size()) {
        const ssize_t n = ::send(fd, body.data() + sent, body.size() - sent,
                                 MSG_NOSIGNAL);
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
      }
    }
    ::close(fd);
  }
}

// ---- http_get_metrics ------------------------------------------------

std::string http_get_metrics(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {};
  }
  const char req[] =
      "GET /metrics HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
  if (::send(fd, req, sizeof(req) - 1, MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof(req) - 1)) {
    ::close(fd);
    return {};
  }
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = resp.find("\r\n\r\n");
  if (split == std::string::npos) return {};
  return resp.substr(split + 4);
}

}  // namespace fdks::obs
