// Structured request-lifecycle event log: one JSON object per line to
// a pluggable sink.
//
// Metrics (obs/obs.hpp) answer "how many / how fast in aggregate";
// the event log answers "what happened to request 4217". The serving
// engine (serve/engine.hpp) mints a monotonic request_id at submit()
// and emits lifecycle events against it:
//
//   admitted                     — passed validation, queued
//   shed                         — rejected at admission (queue full)
//   batched{batch_id,width}      — packed into a solve batch
//   solved{residual,verified}    — answer delivered (terminal)
//   expired                      — deadline passed (terminal)
//   degraded                     — answered via the degraded path
//                                  (terminal)
//   failed{code}                 — any other terminal error: poison
//                                  RHS, solver failure, shutdown
//
// Every submitted request gets exactly one terminal event
// (solved / expired / degraded / failed / shed) — tested in
// tests/telemetry_test.cpp.
//
// Event names are registered in the FDKS_EVENT_NAMES table below —
// the same discipline as obs/keys.hpp for metric keys, enforced both
// at runtime (emit() throws on an unregistered name) and statically
// (lint rule OBS-EVENT in scripts/lint/fdks_lint.py).
//
// Line format (one line per emit, lexical field order after the fixed
// prefix):
//
//   {"ts":1754659200.123456,"request_id":17,"event":"solved",
//    "residual":3.1e-09,"verified":true}
//
// ts is wall-clock seconds (system_clock) so lines can be joined
// against external logs; request_id is process-unique, never reused.
#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

// clang-format off
#define FDKS_EVENT_NAMES(X) \
  X(kEvAdmitted, "admitted")  \
  X(kEvShed,     "shed")      \
  X(kEvBatched,  "batched")   \
  X(kEvSolved,   "solved")    \
  X(kEvExpired,  "expired")   \
  X(kEvDegraded, "degraded")  \
  X(kEvFailed,   "failed")
// clang-format on

namespace fdks::obs {

namespace events {
#define FDKS_EVENT_NAME_CONSTANT(name, literal) \
  inline constexpr std::string_view name{literal};
FDKS_EVENT_NAMES(FDKS_EVENT_NAME_CONSTANT)
#undef FDKS_EVENT_NAME_CONSTANT
}  // namespace events

/// True iff `name` appears in the FDKS_EVENT_NAMES table.
bool is_registered_event(std::string_view name);

/// Process-global monotonic id, starting at 1. Minted once per
/// submitted request (ServeEngine::submit) and stamped into every
/// event and trace flow for that request.
std::uint64_t next_request_id();

/// One typed key/value attached to an event line.
struct Field {
  enum class Type { Num, Str, Bool };

  Field(std::string_view k, double v) : key(k), type(Type::Num), num(v) {}
  Field(std::string_view k, std::uint64_t v)
      : key(k), type(Type::Num), num(static_cast<double>(v)) {}
  Field(std::string_view k, int v)
      : key(k), type(Type::Num), num(static_cast<double>(v)) {}
  Field(std::string_view k, std::string_view v)
      : key(k), type(Type::Str), str(v) {}
  /// Without this, string literals would prefer the bool overload.
  Field(std::string_view k, const char* v)
      : key(k), type(Type::Str), str(v) {}
  Field(std::string_view k, bool v) : key(k), type(Type::Bool), flag(v) {}

  std::string_view key;
  Type type;
  double num = 0.0;
  std::string_view str;
  bool flag = false;
};

/// Thread-safe newline-delimited JSON writer. The sink is any
/// line consumer — a file (to_file), a test vector, a pipe to a log
/// shipper. Lines are formatted outside the sink lock; the sink call
/// itself is serialized. A default-constructed EventLog counts lines
/// but writes nowhere (cheap no-op sink for tests and benches that
/// only assert counts).
class EventLog {
 public:
  /// Receives each complete line including its trailing '\n', ready to
  /// write verbatim to a JSONL stream.
  using Sink = std::function<void(std::string_view line)>;

  EventLog() = default;
  explicit EventLog(Sink sink) : sink_(std::move(sink)) {}
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Open `path` for appending and return an EventLog that writes
  /// (and flushes) each line to it; the file closes with the log.
  /// Throws std::runtime_error when the file cannot be opened.
  static std::shared_ptr<EventLog> to_file(const std::string& path);

  /// Emit one event line. `event` must be a registered name
  /// (FDKS_EVENT_NAMES) — throws std::invalid_argument otherwise, so
  /// unregistered names fail loudly in tests rather than polluting
  /// production logs. Bumps the obs.eventlog_lines counter.
  void emit(std::uint64_t request_id, std::string_view event,
            std::initializer_list<Field> fields = {});

  /// Lines emitted through this log (independent of the sink).
  std::uint64_t lines() const;

 private:
  Sink sink_;
  mutable std::mutex mu_;
  std::uint64_t lines_ = 0;
};

}  // namespace fdks::obs
