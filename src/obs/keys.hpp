// Single source of truth for every observability key the tree emits.
//
// Every string handed to obs::add / obs::hist / obs::record /
// obs::ScopedTimer / obs::trace::instant — and every counter name a
// bench stamps into a Snapshot — must appear in the FDKS_OBS_KEYS
// table below, and every table entry must be emitted somewhere in
// src/, bench/, or examples/ (or be explicitly marked Reserved).
// scripts/lint/fdks_lint.py parses this table (rules OBS-KEY /
// OBS-DEAD) and proves both directions on every `scripts/check.sh`
// run, so the fdks-bench-v3 schema the regression gate
// (scripts/bench_compare.py) compares against cannot silently drift
// from what the code emits.
//
// Table format (one entry per line, parsed by regex — keep it rigid):
//
//   X(kConstantName, "key.literal", Kind)
//
// Kinds:
//   Counter   — obs::add() accumulation.
//   Gauge     — obs::gauge() last-value level (cache residency, error
//               budget); exported under the Prometheus `gauge` type.
//   Histogram — obs::hist() log-bucketed samples.
//   Timer     — obs::ScopedTimer / obs::record scope name.
//   Instant   — obs::trace::instant event name.
//   Prefix    — a dynamic key family (per-rank / per-tag names built
//               with snprintf). The literal is the family prefix; the
//               lint checks the prefix appears in a format string and
//               exempts runtime-built names at sites tagged
//               `fdks-lint: allow(OBS-KEY)`.
//   Reserved  — registered for a future emitter or for keys written
//               by external tooling; exempt from the OBS-DEAD
//               "must be emitted" check.
//
// Adding a key: add the X(...) line here first, then emit it; the
// linter fails the build if either half is missing. Renaming or
// deleting a key is a bench-schema change — refresh
// bench/baselines/ via scripts/update_baselines.sh in the same PR.
#pragma once

#include <string_view>

// clang-format off
#define FDKS_OBS_KEYS(X)                                                   \
  /* checkpoint/restart (src/ckpt) */                                      \
  X(kCkptBytesWritten,        "ckpt.bytes_written",          Counter)      \
  X(kCkptLoaded,              "ckpt.loaded",                 Counter)      \
  X(kCkptRejected,            "ckpt.rejected",               Counter)      \
  X(kCkptSaved,               "ckpt.saved",                  Counter)      \
  X(kCkptLoadScope,           "ckpt.load",                   Timer)        \
  X(kCkptSaveScope,           "ckpt.save",                   Timer)        \
  X(kCkptRestoreEvent,        "ckpt.restore",                Instant)      \
  /* dense kernels (src/la) */                                             \
  X(kFlopsGemm,               "flops.gemm",                  Counter)      \
  X(kFlopsGemv,               "flops.gemv",                  Counter)      \
  X(kGemmCalls,               "gemm.calls",                  Counter)      \
  X(kGemvCalls,               "gemv.calls",                  Counter)      \
  /* iterative solver (src/iterative) */                                   \
  X(kGmresIterations,         "gmres.iterations",            Counter)      \
  X(kGmresSolves,             "gmres.solves",                Counter)      \
  X(kGmresIterSeconds,        "gmres.iter_seconds",          Histogram)    \
  X(kGmresScope,              "gmres",                       Timer)        \
  /* kernel summation (src/kernel) */                                      \
  X(kGsksCalls,               "gsks.calls",                  Counter)      \
  X(kGsksKernelEvals,         "gsks.kernel_evals",           Counter)      \
  X(kGsksEvalsPerCall,        "gsks.evals_per_call",         Histogram)    \
  X(kGsksScope,               "gsks",                        Timer)        \
  /* numerical guardrails (PR 2) */                                        \
  X(kGuardEscalations,        "guardrail.escalations",       Counter)      \
  X(kGuardGmresBreakdown,     "guardrail.gmres_breakdown",   Counter)      \
  X(kGuardGmresNonfinite,     "guardrail.gmres_nonfinite",   Counter)      \
  X(kGuardGmresStagnation,    "guardrail.gmres_stagnation",  Counter)      \
  X(kGuardNonfiniteNodes,     "guardrail.nonfinite_nodes",   Counter)      \
  X(kGuardNonfiniteRhs,       "guardrail.nonfinite_rhs",     Counter)      \
  X(kGuardShiftRetries,       "guardrail.shift_retries",     Counter)      \
  X(kGuardShiftedNodes,       "guardrail.shifted_nodes",     Counter)      \
  /* solver phases (src/core, src/askit, src/tree, src/knn) */             \
  X(kFactorLeafSeconds,       "factor.leaf_seconds",         Histogram)    \
  X(kHybridReducedSize,       "hybrid.reduced_size",         Counter)      \
  X(kScopeDistFactorize,      "dist.factorize",              Timer)        \
  X(kScopeDistLevel,          "dist.level",                  Timer)        \
  X(kScopeDistSolve,          "dist.solve",                  Timer)        \
  X(kScopeFactorize,          "factorize",                   Timer)        \
  X(kScopeKnn,                "knn",                         Timer)        \
  X(kScopeLeaf,               "leaf",                        Timer)        \
  X(kScopeLocalFactor,        "local_factor",                Timer)        \
  X(kScopeLocalSolve,         "local_solve",                 Timer)        \
  X(kScopeSkeletonize,        "skeletonize",                 Timer)        \
  X(kScopeSolve,              "solve",                       Timer)        \
  X(kScopeTelescope,          "telescope",                   Timer)        \
  X(kScopeTree,               "tree",                        Timer)        \
  X(kScopeVAssembly,          "v_assembly",                  Timer)        \
  X(kScopeZFactor,            "z_factor",                    Timer)        \
  X(kSkeletonNodes,           "skeleton.nodes",              Counter)      \
  X(kSkeletonRankSum,         "skeleton.rank_sum",           Counter)      \
  /* message-passing runtime (src/mpisim) */                               \
  X(kMpisimBytes,             "mpisim.bytes",                Counter)      \
  X(kMpisimBytesRecvPrefix,   "mpisim.bytes.recv.",          Prefix)       \
  X(kMpisimBytesSentPrefix,   "mpisim.bytes.sent.",          Prefix)       \
  X(kMpisimFaultCorrupt,      "mpisim.fault.corrupt",        Counter)      \
  X(kMpisimFaultDelay,        "mpisim.fault.delay",          Counter)      \
  X(kMpisimFaultDrop,         "mpisim.fault.drop",           Counter)      \
  X(kMpisimFaultDuplicate,    "mpisim.fault.duplicate",      Counter)      \
  X(kMpisimFaultInjected,     "mpisim.fault.injected",       Counter)      \
  X(kMpisimFaultKill,         "mpisim.fault.kill",           Counter)      \
  X(kMpisimFaultStall,        "mpisim.fault.stall",          Counter)      \
  X(kMpisimMessages,          "mpisim.messages",             Counter)      \
  X(kMpisimRecoverBytes,      "mpisim.recover.bytes",        Counter)      \
  X(kMpisimRecoverChecksum,   "mpisim.recover.checksum_reject", Counter)   \
  X(kMpisimRecoverDupSupp,    "mpisim.recover.duplicate_suppressed", Counter) \
  X(kMpisimRecoverExhausted,  "mpisim.recover.exhausted",    Counter)      \
  X(kMpisimRecoverRecovered,  "mpisim.recover.recovered",    Counter)      \
  X(kMpisimRecoverRetransmit, "mpisim.recover.retransmit",   Counter)      \
  X(kMpisimTimeouts,          "mpisim.timeouts",             Counter)      \
  X(kMpisimWaitSeconds,       "mpisim.wait_seconds",         Histogram)    \
  X(kScopeMpisimRecv,         "mpisim.recv",                 Timer)        \
  X(kScopeMpisimSend,         "mpisim.send",                 Timer)        \
  /* live telemetry plumbing (src/obs/export, src/obs/eventlog) */         \
  X(kObsEventlogLines,        "obs.eventlog_lines",          Counter)      \
  X(kObsScrapes,              "obs.scrapes",                 Counter)      \
  /* process memory (stamped by bench_util / fdks_tool) */                 \
  X(kMemPeakRssBytes,         "mem.peak_rss_bytes",          Counter)      \
  X(kMemCurrentRssBytes,      "mem.current_rss_bytes",       Reserved)     \
  /* supervised re-execution (src/core/recovery) */                        \
  X(kRecoverAttempts,         "recover.attempts",            Counter)      \
  X(kRecoverExhaustedRuns,    "recover.exhausted_runs",      Counter)      \
  X(kRecoverRecoveredRuns,    "recover.recovered_runs",      Counter)      \
  X(kRecoverRetries,          "recover.retries",             Counter)      \
  X(kRecoverAttemptEvent,     "recover.attempt",             Instant)      \
  X(kRecoverRetryEvent,       "recover.retry",               Instant)      \
  X(kRecoverRetryAttemptEvent,"recover.retry_attempt",       Instant)      \
  /* serving front end (src/serve, bench/bench_serving) */                 \
  X(kServeBatches,            "serve.batches",               Counter)      \
  X(kServeBatchSeconds,       "serve.batch_seconds",         Histogram)    \
  X(kServeBatchSize,          "serve.batch_size",            Histogram)    \
  X(kServeBatchSpeedup,       "serve.batch_speedup",         Counter)      \
  X(kServeBreakerOpen,        "serve.breaker_open",          Counter)      \
  X(kServeCacheBytes,         "serve.cache_bytes",           Gauge)        \
  X(kServeCacheEvict,         "serve.cache_evict",           Counter)      \
  X(kServeCacheHit,           "serve.cache_hit",             Counter)      \
  X(kServeCacheMiss,          "serve.cache_miss",            Counter)      \
  X(kServeDegraded,           "serve.degraded",              Counter)      \
  X(kServeExpired,            "serve.expired",               Counter)      \
  X(kServePoison,             "serve.poison",                Counter)      \
  X(kServeRequests,           "serve.requests",              Counter)      \
  X(kServeRequestSeconds,     "serve.request_seconds",       Histogram)    \
  X(kServeShed,               "serve.shed",                  Counter)      \
  X(kServeSloBreach,          "serve.slo_breach",            Counter)      \
  X(kServeSloBudget,          "serve.slo_budget",            Gauge)        \
  X(kServeSloP99Seconds,      "serve.slo_p99_seconds",       Gauge)        \
  X(kServeTelemetryOverheadPct, "serve.telemetry_overhead_pct", Counter)   \
  X(kServeTraceKept,          "serve.trace_kept",            Counter)      \
  X(kScopeServeBatch,         "serve.batch",                 Timer)        \
  /* answer certification & escalation (src/core/verify, PR 8) */         \
  X(kRefineEscalations,       "refine.escalations",          Counter)      \
  X(kRefineSteps,             "refine.steps",                Counter)      \
  X(kVerifyChecks,            "verify.checks",               Counter)      \
  X(kVerifyFail,              "verify.fail",                 Counter)      \
  X(kVerifyIntegrityCheck,    "verify.integrity_check",      Counter)      \
  X(kVerifyIntegrityFail,     "verify.integrity_fail",       Counter)      \
  X(kVerifyResidual,          "verify.residual",             Histogram)    \
  X(kVerifySeconds,           "verify.seconds",              Histogram)    \
  /* bench / tool top-level scopes (bench/, examples/) */                  \
  X(kGflopsRate,              "GFLOPS",                      Counter)      \
  X(kScopeReference,          "reference",                   Timer)        \
  X(kScopeSetup,              "setup",                       Timer)        \
  X(kScopeTrain,              "train",                       Timer)
// clang-format on

namespace fdks::obs::keys {

enum class Kind { Counter, Gauge, Histogram, Timer, Instant, Prefix, Reserved };

/// Named constants: obs::keys::kGmresSolves == "gmres.solves".
#define FDKS_OBS_KEY_CONSTANT(name, literal, kind) \
  inline constexpr std::string_view name{literal};
FDKS_OBS_KEYS(FDKS_OBS_KEY_CONSTANT)
#undef FDKS_OBS_KEY_CONSTANT

struct KeyInfo {
  std::string_view key;
  Kind kind;
};

/// The whole registry, in table order.
inline constexpr KeyInfo kAll[] = {
#define FDKS_OBS_KEY_INFO(name, literal, kind) \
  KeyInfo{literal, Kind::kind},
    FDKS_OBS_KEYS(FDKS_OBS_KEY_INFO)
#undef FDKS_OBS_KEY_INFO
};

/// True iff `key` is a registered literal or extends a registered
/// dynamic Prefix family (e.g. "mpisim.bytes.sent.r3.t11").
constexpr bool is_registered(std::string_view key) {
  for (const KeyInfo& k : kAll) {
    if (k.kind == Kind::Prefix) {
      if (key.size() > k.key.size() &&
          key.substr(0, k.key.size()) == k.key) {
        return true;
      }
    } else if (key == k.key) {
      return true;
    }
  }
  return false;
}

static_assert(is_registered("gmres.solves"));
static_assert(is_registered("mpisim.bytes.sent.r0.t11"));
static_assert(!is_registered("no.such.key"));

}  // namespace fdks::obs::keys
