#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/obs.hpp"

namespace fdks::obs::trace {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_generation{1};
std::atomic<std::size_t> g_capacity{1 << 16};
std::atomic<std::uint64_t> g_tid_counter{1};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Single-writer ring with drop-newest overflow: the owning thread is
// the only writer; readers see the prefix published by the release
// store of size_. Slots below the published size are never mutated
// again, so concurrent collect() is race-free.
struct TraceBuffer {
  explicit TraceBuffer(std::size_t cap) : slots(cap) {}

  std::vector<Event> slots;
  std::atomic<std::size_t> size{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<int> rank{-1};
  std::uint64_t tid = 0;

  void emit(const Event& ev) {
    const std::size_t n = size.load(std::memory_order_relaxed);
    if (n >= slots.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    slots[n] = ev;
    size.store(n + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

Registry& registry() {
  static Registry* r = new Registry();  // Leaked: usable at exit.
  return *r;
}

TraceBuffer& thread_buffer() {
  thread_local TraceBuffer* cached = nullptr;
  thread_local std::uint64_t cached_gen = 0;
  const std::uint64_t gen = g_generation.load(std::memory_order_acquire);
  if (cached == nullptr || cached_gen != gen) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.buffers.push_back(std::make_unique<TraceBuffer>(
        g_capacity.load(std::memory_order_relaxed)));
    cached = r.buffers.back().get();
    cached->tid = g_tid_counter.fetch_add(1, std::memory_order_relaxed);
    cached_gen = gen;
  }
  return *cached;
}

void emit_named(Event::Type type, std::string_view name, std::uint64_t id,
                std::int32_t a, std::int32_t b) {
  Event ev;
  ev.ts_ns = now_ns();
  ev.type = type;
  ev.id = id;
  ev.a = a;
  ev.b = b;
  const std::size_t n = std::min(name.size(), Event::kNameCap);
  std::memcpy(ev.name, name.data(), n);
  ev.name[n] = '\0';
  thread_buffer().emit(ev);
}

void append_json_number(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.buffers.clear();
  g_generation.fetch_add(1, std::memory_order_acq_rel);
}

void set_capacity(std::size_t events_per_thread) {
  g_capacity.store(std::max<std::size_t>(events_per_thread, 16),
                   std::memory_order_relaxed);
}

void set_thread_track(int rank) {
  // Register the buffer even while disabled so a later enable exports
  // the rank row; the store itself is cheap.
  thread_buffer().rank.store(rank, std::memory_order_relaxed);
}

void warm() {
  // Gated on enabled(): a process that never traces should not pay a
  // capacity-sized allocation per worker thread.
  if (enabled()) (void)thread_buffer();
}

void begin(std::string_view name) {
  if (!enabled()) return;
  emit_named(Event::kBegin, name, 0, 0, 0);
}

void end() {
  if (!enabled()) return;
  emit_named(Event::kEnd, {}, 0, 0, 0);
}

void instant(std::string_view name) {
  if (!enabled()) return;
  emit_named(Event::kInstant, name, 0, 0, 0);
}

void flow_send(std::uint64_t id, int peer, int tag) {
  if (!enabled()) return;
  emit_named(Event::kFlowSend, "msg", id, peer, tag);
}

void flow_recv(std::uint64_t id, int peer, int tag) {
  if (!enabled()) return;
  emit_named(Event::kFlowRecv, "msg", id, peer, tag);
}

TraceData collect() {
  TraceData d;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  d.threads.reserve(r.buffers.size());
  for (const auto& b : r.buffers) {
    ThreadTrace t;
    t.rank = b->rank.load(std::memory_order_relaxed);
    t.tid = b->tid;
    t.dropped = b->dropped.load(std::memory_order_relaxed);
    const std::size_t n = b->size.load(std::memory_order_acquire);
    t.events.assign(b->slots.begin(),
                    b->slots.begin() + static_cast<std::ptrdiff_t>(n));
    if (!t.events.empty() || t.rank >= 0) d.threads.push_back(std::move(t));
  }
  return d;
}

// ---- Chrome trace-event export ---------------------------------------

std::string chrome_trace_json(const TraceData& d) {
  constexpr int kHostPid = 99999;

  std::uint64_t t0 = UINT64_MAX;
  for (const ThreadTrace& t : d.threads)
    for (const Event& e : t.events) t0 = std::min(t0, e.ts_ns);
  if (t0 == UINT64_MAX) t0 = 0;

  std::string out;
  out.reserve(1 << 16);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
    out += '\n';
  };
  auto us = [&](std::uint64_t ts_ns) {
    return static_cast<double>(ts_ns - t0) * 1e-3;
  };

  // Process/thread name metadata (one process row per rank).
  std::vector<int> pids_named;
  std::uint64_t orphans = 0;
  for (const ThreadTrace& t : d.threads) {
    const int pid = t.rank >= 0 ? t.rank : kHostPid;
    if (std::find(pids_named.begin(), pids_named.end(), pid) ==
        pids_named.end()) {
      pids_named.push_back(pid);
      comma();
      out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
             (t.rank >= 0 ? "rank " + std::to_string(t.rank)
                          : std::string("host")) +
             "\"}}";
      // Sort rank rows ascending in the Perfetto UI.
      comma();
      out += "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":0,\"args\":{\"sort_index\":" +
             std::to_string(pid) + "}}";
    }
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(t.tid) +
           ",\"args\":{\"name\":\"" +
           (t.rank >= 0 ? "rank " + std::to_string(t.rank)
                        : "thread " + std::to_string(t.tid)) +
           "\"}}";
  }

  for (const ThreadTrace& t : d.threads) {
    const int pid = t.rank >= 0 ? t.rank : kHostPid;
    const std::string pidtid = "\"pid\":" + std::to_string(pid) +
                               ",\"tid\":" + std::to_string(t.tid);
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < t.events.size(); ++i) {
      const Event& e = t.events[i];
      switch (e.type) {
        case Event::kBegin:
          stack.push_back(i);
          break;
        case Event::kEnd: {
          if (stack.empty()) {
            ++orphans;
            break;
          }
          const Event& b = t.events[stack.back()];
          stack.pop_back();
          comma();
          out += "{\"name\":\"" + json_escape(b.name) +
                 "\",\"ph\":\"X\",\"ts\":";
          append_json_number(out, us(b.ts_ns));
          out += ",\"dur\":";
          append_json_number(out,
                             static_cast<double>(e.ts_ns - b.ts_ns) * 1e-3);
          out += "," + pidtid + "}";
          break;
        }
        case Event::kInstant:
          comma();
          out += "{\"name\":\"" + json_escape(e.name) +
                 "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
          append_json_number(out, us(e.ts_ns));
          out += "," + pidtid + "}";
          break;
        case Event::kFlowSend:
        case Event::kFlowRecv: {
          const bool is_send = e.type == Event::kFlowSend;
          char idbuf[32];
          std::snprintf(idbuf, sizeof(idbuf), "0x%llx",
                        static_cast<unsigned long long>(e.id));
          comma();
          out += std::string("{\"name\":\"msg\",\"cat\":\"comm\",\"ph\":\"") +
                 (is_send ? "s" : "f") +
                 (is_send ? "" : "\",\"bp\":\"e") + "\",\"id\":\"" + idbuf +
                 "\",\"ts\":";
          append_json_number(out, us(e.ts_ns));
          out += "," + pidtid + ",\"args\":{\"" +
                 (is_send ? "to" : "from") + "\":" + std::to_string(e.a) +
                 ",\"tag\":" + std::to_string(e.b) + "}}";
          break;
        }
      }
    }
    orphans += stack.size();  // Begins still open at collection time.
  }

  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  std::uint64_t dropped = 0;
  for (const ThreadTrace& t : d.threads) dropped += t.dropped;
  out += "\"schema\":\"fdks-trace-v1\",\"dropped_events\":" +
         std::to_string(dropped) +
         ",\"orphaned_span_events\":" + std::to_string(orphans) + "}}\n";
  return out;
}

bool write_chrome_trace(const std::string& path, const TraceData& d) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "trace: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const std::string body = chrome_trace_json(d);
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "trace: short write to %s\n", path.c_str());
  return ok;
}

bool write_chrome_trace(const std::string& path) {
  return write_chrome_trace(path, collect());
}

// ---- Critical-path analysis ------------------------------------------

namespace {

struct SendOp {
  int rank = -1;
  std::uint64_t ts = 0;
  std::uint64_t flow = 0;
  std::int32_t tag = 0;
};

struct RecvOp {
  int rank = -1;
  std::uint64_t wb = 0, we = 0;  ///< Wait begin / completion.
  std::uint64_t flow = 0;        ///< 0 when the send event was lost.
  std::int32_t tag = 0;
};

struct ChainNode {
  CriticalPath::Segment seg;
  std::ptrdiff_t parent = -1;
};

constexpr std::string_view kRecvSpan = "mpisim.recv";

}  // namespace

double CriticalPath::max_busy_seconds() const {
  double m = 0.0;
  for (const auto& [rank, busy] : rank_busy_seconds)
    m = std::max(m, busy);
  return m;
}

CriticalPath critical_path(const TraceData& d) {
  CriticalPath cp;

  // Per-rank op lists and timeline extents, pairing recv spans within
  // each thread (a rank is normally one mpisim thread; extra threads
  // tagged with the same rank merge by time).
  std::vector<SendOp> sends;
  std::vector<RecvOp> recvs;
  std::map<int, std::uint64_t> first_ts, last_ts;
  for (const ThreadTrace& t : d.threads) {
    if (t.rank < 0 || t.events.empty()) continue;
    auto& ft = first_ts
                   .try_emplace(t.rank, t.events.front().ts_ns)
                   .first->second;
    auto& lt = last_ts.try_emplace(t.rank, t.events.back().ts_ns)
                   .first->second;
    ft = std::min(ft, t.events.front().ts_ns);
    lt = std::max(lt, t.events.back().ts_ns);

    struct OpenSpan {
      std::uint64_t ts;
      bool is_recv;
      RecvOp op;
    };
    std::vector<OpenSpan> stack;
    for (const Event& e : t.events) {
      switch (e.type) {
        case Event::kBegin:
          stack.push_back({e.ts_ns, kRecvSpan == e.name, {}});
          break;
        case Event::kEnd:
          if (!stack.empty()) {
            OpenSpan s = std::move(stack.back());
            stack.pop_back();
            if (s.is_recv) {
              s.op.rank = t.rank;
              s.op.wb = s.ts;
              s.op.we = e.ts_ns;
              recvs.push_back(s.op);
            }
          }
          break;
        case Event::kFlowSend:
          sends.push_back({t.rank, e.ts_ns, e.id, e.b});
          break;
        case Event::kFlowRecv:
          // Attach to the innermost open recv span.
          for (auto it = stack.rbegin(); it != stack.rend(); ++it)
            if (it->is_recv) {
              it->op.flow = e.id;
              it->op.tag = e.b;
              break;
            }
          break;
        case Event::kInstant:
          break;
      }
    }
  }
  if (first_ts.empty()) return cp;

  // Busy time: timeline span minus time blocked inside recv waits.
  std::map<int, std::uint64_t> blocked;
  for (const RecvOp& r : recvs) blocked[r.rank] += r.we - r.wb;
  std::uint64_t wall_lo = UINT64_MAX, wall_hi = 0;
  for (const auto& [rank, ft] : first_ts) {
    const std::uint64_t span = last_ts[rank] - ft;
    const std::uint64_t blk = std::min(blocked[rank], span);
    cp.rank_busy_seconds[rank] = static_cast<double>(span - blk) * 1e-9;
    wall_lo = std::min(wall_lo, ft);
    wall_hi = std::max(wall_hi, last_ts[rank]);
  }
  cp.wall_seconds = static_cast<double>(wall_hi - wall_lo) * 1e-9;

  // Longest-chain DP over ops in global time order. Per rank: cp_ns is
  // the longest chain ending "now"; work intervals extend it, a recv
  // that waited may switch the chain to sender_cp + message latency.
  struct Op {
    std::uint64_t time;
    bool is_recv;
    std::size_t idx;
  };
  std::vector<Op> ops;
  ops.reserve(sends.size() + recvs.size());
  for (std::size_t i = 0; i < sends.size(); ++i)
    ops.push_back({sends[i].ts, false, i});
  for (std::size_t i = 0; i < recvs.size(); ++i)
    ops.push_back({recvs[i].we, true, i});
  std::sort(ops.begin(), ops.end(), [](const Op& a, const Op& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.is_recv < b.is_recv;  // Sends first at equal timestamps.
  });

  std::vector<ChainNode> arena;
  struct RankState {
    std::uint64_t last_t = 0;
    std::uint64_t cp_ns = 0;
    std::ptrdiff_t head = -1;
  };
  std::map<int, RankState> st;
  for (const auto& [rank, ft] : first_ts) st[rank].last_t = ft;

  auto advance = [&](int rank, std::uint64_t t) {
    RankState& s = st[rank];
    if (t <= s.last_t) return;
    // Coalesce consecutive work on the same rank into one segment.
    if (s.head >= 0 && !arena[static_cast<std::size_t>(s.head)].seg.via_message &&
        arena[static_cast<std::size_t>(s.head)].seg.rank == rank &&
        arena[static_cast<std::size_t>(s.head)].seg.t1_ns == s.last_t) {
      arena[static_cast<std::size_t>(s.head)].seg.t1_ns = t;
    } else {
      ChainNode n;
      n.seg.rank = rank;
      n.seg.t0_ns = s.last_t;
      n.seg.t1_ns = t;
      n.parent = s.head;
      arena.push_back(n);
      s.head = static_cast<std::ptrdiff_t>(arena.size()) - 1;
    }
    s.cp_ns += t - s.last_t;
    s.last_t = t;
  };

  struct SendRecord {
    std::uint64_t cp_ns;
    std::ptrdiff_t head;
    int rank;
    std::uint64_t ts;
  };
  std::unordered_map<std::uint64_t, SendRecord> sent;

  for (const Op& op : ops) {
    if (!op.is_recv) {
      const SendOp& s = sends[op.idx];
      advance(s.rank, s.ts);
      const RankState& rs = st[s.rank];
      sent[s.flow] = {rs.cp_ns, rs.head, s.rank, s.ts};
    } else {
      const RecvOp& r = recvs[op.idx];
      advance(r.rank, r.wb);
      auto it = r.flow != 0 ? sent.find(r.flow) : sent.end();
      if (it == sent.end()) {
        // Unknown sender (dropped event): count the wait as local work
        // — conservative, keeps the chain within real time.
        advance(r.rank, r.we);
      } else {
        RankState& rs = st[r.rank];
        const std::uint64_t cand = it->second.cp_ns + (r.we - it->second.ts);
        if (cand > rs.cp_ns) {
          ChainNode n;
          n.seg.rank = r.rank;
          n.seg.t0_ns = it->second.ts;
          n.seg.t1_ns = r.we;
          n.seg.via_message = true;
          n.seg.from_rank = it->second.rank;
          n.seg.tag = r.tag;
          n.parent = it->second.head;
          arena.push_back(n);
          rs.head = static_cast<std::ptrdiff_t>(arena.size()) - 1;
          rs.cp_ns = cand;
        }
        rs.last_t = std::max(rs.last_t, r.we);
      }
    }
  }
  for (const auto& [rank, lt] : last_ts) advance(rank, lt);

  int best_rank = -1;
  std::uint64_t best_cp = 0;
  for (const auto& [rank, s] : st)
    if (best_rank < 0 || s.cp_ns > best_cp) {
      best_rank = rank;
      best_cp = s.cp_ns;
    }
  cp.total_seconds = static_cast<double>(best_cp) * 1e-9;
  for (std::ptrdiff_t i = st[best_rank].head; i >= 0;
       i = arena[static_cast<std::size_t>(i)].parent)
    cp.segments.push_back(arena[static_cast<std::size_t>(i)].seg);
  std::reverse(cp.segments.begin(), cp.segments.end());
  return cp;
}

std::string critical_path_report(const CriticalPath& cp) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "critical path: %.6f s over wall %.6f s (%.1f%%), %zu "
                "segments\n",
                cp.total_seconds, cp.wall_seconds,
                cp.wall_seconds > 0.0
                    ? 100.0 * cp.total_seconds / cp.wall_seconds
                    : 0.0,
                cp.segments.size());
  out += buf;
  out += "  per-rank busy:";
  for (const auto& [rank, busy] : cp.rank_busy_seconds) {
    std::snprintf(buf, sizeof(buf), " r%d %.6f s", rank, busy);
    out += buf;
  }
  out += '\n';
  const std::size_t tail = 12;
  const std::size_t start =
      cp.segments.size() > tail ? cp.segments.size() - tail : 0;
  if (start > 0) {
    std::snprintf(buf, sizeof(buf), "  ... %zu earlier segments ...\n",
                  start);
    out += buf;
  }
  for (std::size_t i = start; i < cp.segments.size(); ++i) {
    const CriticalPath::Segment& s = cp.segments[i];
    if (s.via_message) {
      std::snprintf(buf, sizeof(buf),
                    "  [rank %d <- rank %d tag %d] message+wake %.6f s\n",
                    s.rank, s.from_rank, s.tag, s.seconds());
    } else {
      std::snprintf(buf, sizeof(buf), "  [rank %d] work %.6f s\n", s.rank,
                    s.seconds());
    }
    out += buf;
  }
  return out;
}

}  // namespace fdks::obs::trace
