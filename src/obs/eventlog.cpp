#include "obs/eventlog.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "obs/keys.hpp"
#include "obs/obs.hpp"

namespace fdks::obs {

bool is_registered_event(std::string_view name) {
#define FDKS_EVENT_NAME_CHECK(cname, literal) \
  if (name == std::string_view{literal}) return true;
  FDKS_EVENT_NAMES(FDKS_EVENT_NAME_CHECK)
#undef FDKS_EVENT_NAME_CHECK
  return false;
}

std::uint64_t next_request_id() {
  static std::atomic<std::uint64_t> g_next{1};
  return g_next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

void append_json_field(std::string& line, const Field& f) {
  line += ",\"";
  line += json_escape(f.key);
  line += "\":";
  switch (f.type) {
    case Field::Type::Num: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", f.num);
      line += buf;
      break;
    }
    case Field::Type::Str:
      line += '"';
      line += json_escape(f.str);
      line += '"';
      break;
    case Field::Type::Bool:
      line += f.flag ? "true" : "false";
      break;
  }
}

}  // namespace

void EventLog::emit(std::uint64_t request_id, std::string_view event,
                    std::initializer_list<Field> fields) {
  if (!is_registered_event(event)) {
    throw std::invalid_argument("obs::EventLog: unregistered event name \"" +
                                std::string(event) + "\"");
  }
  // Format outside the lock; only the sink call is serialized.
  const double ts = std::chrono::duration<double>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  std::string line;
  line.reserve(128);
  char head[96];
  std::snprintf(head, sizeof(head), "{\"ts\":%.6f,\"request_id\":%llu",
                ts, static_cast<unsigned long long>(request_id));
  line += head;
  line += ",\"event\":\"";
  line += event;
  line += '"';
  for (const Field& f : fields) append_json_field(line, f);
  line += "}\n";

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++lines_;
    if (sink_) sink_(line);
  }
  obs::add(keys::kObsEventlogLines);
}

std::uint64_t EventLog::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

std::shared_ptr<EventLog> EventLog::to_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    throw std::runtime_error("obs::EventLog: cannot open " + path);
  }
  // The file handle rides in the sink closure; closing happens when the
  // EventLog (and with it the sink) is destroyed.
  auto file = std::shared_ptr<std::FILE>(f, [](std::FILE* fp) {
    if (fp != nullptr) std::fclose(fp);
  });
  return std::make_shared<EventLog>([file](std::string_view line) {
    std::fwrite(line.data(), 1, line.size(), file.get());
    std::fflush(file.get());
  });
}

}  // namespace fdks::obs
