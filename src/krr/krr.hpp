// Kernel ridge regression for binary classification (the paper's §IV
// learning task).
//
// Training solves w = (lambda I + K~)^-1 u with the fast direct solver
// (or the hybrid solver when the HMatrix is level-restricted); prediction
// for a point x not in X is sign(K(x, X) w). Holdout cross-validation
// over (h, lambda) reproduces the parameter-selection loop whose cost
// motivates fast refactorization.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "askit/hmatrix.hpp"
#include "core/hybrid.hpp"
#include "core/solver.hpp"
#include "data/generators.hpp"

namespace fdks::krr {

using data::Dataset;
using la::Matrix;
using la::index_t;

struct KrrConfig {
  double bandwidth = 1.0;  ///< Gaussian kernel h.
  double lambda = 1.0;     ///< Ridge regularization.
  askit::AskitConfig askit;
  bool use_hybrid = false;  ///< Solve with HybridSolver instead of the
                            ///< full direct factorization.
  iter::GmresOptions gmres;  ///< Hybrid-only.
};

class KernelRidge {
 public:
  /// Train on a labeled dataset. Builds the hierarchical representation
  /// and factorizes once; the model owns everything it needs to predict.
  KernelRidge(const Dataset& train, KrrConfig cfg);

  /// Decision value K(x, X) w for one point (column vector, dim() rows).
  double decision(const double* x) const;

  /// Decision values for a batch of test points (d-by-M).
  std::vector<double> decision(const Matrix& test_points) const;

  /// Classification accuracy against +-1 labels.
  double accuracy(const Dataset& test) const;

  const std::vector<double>& weights() const { return weights_; }
  const KrrConfig& config() const { return cfg_; }
  double train_residual() const { return train_residual_; }
  double factor_seconds() const { return factor_seconds_; }
  bool stable() const { return stable_; }

 private:
  KrrConfig cfg_;
  Matrix train_points_;  ///< d-by-N copy (original order).
  std::vector<double> weights_;
  double train_residual_ = 0.0;
  double factor_seconds_ = 0.0;
  bool stable_ = true;
};

/// One-vs-all multi-class kernel ridge classifier (the paper performs
/// one-vs-all on MNIST digits). All C binary problems share a single
/// hierarchical factorization: training is ONE factorize plus a C-column
/// block solve, which is exactly the amortization the fast direct solver
/// buys over iterative methods.
class KernelRidgeMulticlass {
 public:
  /// train.classes() must hold labels in [0, num_classes).
  KernelRidgeMulticlass(const Dataset& train, int num_classes,
                        KrrConfig cfg);

  int num_classes() const { return num_classes_; }

  /// argmax_c K(x, X) w_c for one point.
  int predict_class(const double* x) const;

  /// Predicted class per column of test_points.
  std::vector<int> predict(const Matrix& test_points) const;

  /// Multi-class accuracy against test.classes.
  double accuracy(const Dataset& test) const;

  double factor_seconds() const { return factor_seconds_; }

 private:
  KrrConfig cfg_;
  int num_classes_ = 0;
  Matrix train_points_;
  Matrix weights_;  ///< N x C, one one-vs-all weight vector per class.
  double factor_seconds_ = 0.0;
};

/// Kernel ridge *regression* on continuous targets (the same linear
/// algebra; predictions are the decision values themselves).
class KernelRidgeRegressor {
 public:
  /// train.targets() must be non-empty.
  KernelRidgeRegressor(const Dataset& train, KrrConfig cfg);

  std::vector<double> predict(const Matrix& test_points) const;

  /// Root-mean-square error on a test set with targets.
  double rmse(const Dataset& test) const;

  const std::vector<double>& weights() const { return model_.weights(); }
  double train_residual() const { return model_.train_residual(); }

 private:
  KernelRidge model_;

  static Dataset as_labeled(const Dataset& train);
};

/// One cross-validation cell: parameters and holdout accuracy.
struct CvCell {
  double bandwidth = 0.0;
  double lambda = 0.0;
  double accuracy = 0.0;
  double train_residual = 0.0;
  double factor_seconds = 0.0;
};

struct CvResult {
  std::vector<CvCell> cells;  ///< Every grid point evaluated.
  CvCell best;                ///< Highest holdout accuracy.
};

/// Grid cross-validation over (bandwidths x lambdas) with a holdout
/// split: the parameter-sweep workload of the paper's training phase.
CvResult cross_validate(const Dataset& ds, std::span<const double> bandwidths,
                        std::span<const double> lambdas, KrrConfig base,
                        double holdout_fraction = 0.2, uint64_t seed = 99);

}  // namespace fdks::krr
