#include "krr/krr.hpp"

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "data/preprocess.hpp"

namespace fdks::krr {

KernelRidge::KernelRidge(const Dataset& train, KrrConfig cfg)
    : cfg_(cfg), train_points_(train.points) {
  if (!train.labeled())
    throw std::invalid_argument("KernelRidge: training set has no labels");

  const kernel::Kernel k = kernel::Kernel::gaussian(cfg_.bandwidth);
  askit::HMatrix h(train_points_, k, cfg_.askit);

  if (cfg_.use_hybrid) {
    core::HybridOptions ho;
    ho.direct.lambda = cfg_.lambda;
    ho.gmres = cfg_.gmres;
    core::HybridSolver solver(h, ho);
    weights_ = solver.solve(train.labels);
    stable_ = solver.stability().stable();
    factor_seconds_ = solver.factor_seconds();
  } else {
    core::SolverOptions so;
    so.lambda = cfg_.lambda;
    core::FastDirectSolver solver(h, so);
    weights_ = solver.solve(train.labels);
    stable_ = solver.stability().stable();
    factor_seconds_ = solver.factor_seconds();
  }
  train_residual_ = h.relative_residual(weights_, train.labels, cfg_.lambda);
}

double KernelRidge::decision(const double* x) const {
  const kernel::Kernel k = kernel::Kernel::gaussian(cfg_.bandwidth);
  const index_t n = train_points_.cols();
  const index_t d = train_points_.rows();
  double s = 0.0;
  for (index_t j = 0; j < n; ++j)
    s += k.eval(x, train_points_.col(j), d) *
         weights_[static_cast<size_t>(j)];
  return s;
}

std::vector<double> KernelRidge::decision(const Matrix& test_points) const {
  if (test_points.rows() != train_points_.rows())
    throw std::invalid_argument("KernelRidge::decision: dimension mismatch");
  std::vector<double> out(static_cast<size_t>(test_points.cols()));
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (index_t j = 0; j < test_points.cols(); ++j)
    out[static_cast<size_t>(j)] = decision(test_points.col(j));
  return out;
}

double KernelRidge::accuracy(const Dataset& test) const {
  if (!test.labeled())
    throw std::invalid_argument("KernelRidge::accuracy: no labels");
  const std::vector<double> dec = decision(test.points);
  return data::accuracy(dec, test.labels);
}

KernelRidgeMulticlass::KernelRidgeMulticlass(const Dataset& train,
                                             int num_classes, KrrConfig cfg)
    : cfg_(cfg), num_classes_(num_classes), train_points_(train.points) {
  if (!train.multiclass())
    throw std::invalid_argument(
        "KernelRidgeMulticlass: training set has no class labels");
  const index_t n = train.n();
  for (int c : train.classes)
    if (c < 0 || c >= num_classes)
      throw std::invalid_argument(
          "KernelRidgeMulticlass: class id out of range");

  const kernel::Kernel k = kernel::Kernel::gaussian(cfg_.bandwidth);
  askit::HMatrix h(train_points_, k, cfg_.askit);
  core::SolverOptions so;
  so.lambda = cfg_.lambda;
  core::FastDirectSolver solver(h, so);
  factor_seconds_ = solver.factor_seconds();

  // One-vs-all right-hand sides, solved as a single block through the
  // shared factorization.
  Matrix rhs(n, num_classes);
  for (index_t j = 0; j < n; ++j)
    for (int c = 0; c < num_classes; ++c)
      rhs(j, c) = (train.classes[static_cast<size_t>(j)] == c) ? 1.0 : -1.0;
  weights_ = solver.solve(rhs);
}

int KernelRidgeMulticlass::predict_class(const double* x) const {
  const kernel::Kernel k = kernel::Kernel::gaussian(cfg_.bandwidth);
  const index_t n = train_points_.cols();
  const index_t d = train_points_.rows();
  std::vector<double> score(static_cast<size_t>(num_classes_), 0.0);
  for (index_t j = 0; j < n; ++j) {
    const double kij = k.eval(x, train_points_.col(j), d);
    for (int c = 0; c < num_classes_; ++c)
      score[static_cast<size_t>(c)] += kij * weights_(j, c);
  }
  int best = 0;
  for (int c = 1; c < num_classes_; ++c)
    if (score[static_cast<size_t>(c)] > score[static_cast<size_t>(best)])
      best = c;
  return best;
}

std::vector<int> KernelRidgeMulticlass::predict(
    const Matrix& test_points) const {
  if (test_points.rows() != train_points_.rows())
    throw std::invalid_argument(
        "KernelRidgeMulticlass::predict: dimension mismatch");
  std::vector<int> out(static_cast<size_t>(test_points.cols()));
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (index_t j = 0; j < test_points.cols(); ++j)
    out[static_cast<size_t>(j)] = predict_class(test_points.col(j));
  return out;
}

double KernelRidgeMulticlass::accuracy(const Dataset& test) const {
  if (!test.multiclass())
    throw std::invalid_argument(
        "KernelRidgeMulticlass::accuracy: no class labels");
  const std::vector<int> pred = predict(test.points);
  size_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == test.classes[i]) ++correct;
  return double(correct) / double(pred.size());
}

Dataset KernelRidgeRegressor::as_labeled(const Dataset& train) {
  if (!train.has_targets())
    throw std::invalid_argument(
        "KernelRidgeRegressor: training set has no targets");
  Dataset out = train;
  out.labels = train.targets;  // KernelRidge solves against any RHS.
  return out;
}

KernelRidgeRegressor::KernelRidgeRegressor(const Dataset& train,
                                           KrrConfig cfg)
    : model_(as_labeled(train), cfg) {}

std::vector<double> KernelRidgeRegressor::predict(
    const Matrix& test_points) const {
  return model_.decision(test_points);
}

double KernelRidgeRegressor::rmse(const Dataset& test) const {
  if (!test.has_targets())
    throw std::invalid_argument("KernelRidgeRegressor::rmse: no targets");
  const std::vector<double> pred = predict(test.points);
  double s = 0.0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const double e = pred[i] - test.targets[i];
    s += e * e;
  }
  return std::sqrt(s / double(pred.size()));
}

CvResult cross_validate(const Dataset& ds, std::span<const double> bandwidths,
                        std::span<const double> lambdas, KrrConfig base,
                        double holdout_fraction, uint64_t seed) {
  auto [train, holdout] = data::train_test_split(ds, holdout_fraction, seed);
  CvResult out;
  out.best.accuracy = -1.0;
  for (double h : bandwidths) {
    for (double lam : lambdas) {
      KrrConfig cfg = base;
      cfg.bandwidth = h;
      cfg.lambda = lam;
      KernelRidge model(train, cfg);
      CvCell cell;
      cell.bandwidth = h;
      cell.lambda = lam;
      cell.accuracy = model.accuracy(holdout);
      cell.train_residual = model.train_residual();
      cell.factor_seconds = model.factor_seconds();
      out.cells.push_back(cell);
      if (cell.accuracy > out.best.accuracy) out.best = cell;
    }
  }
  return out;
}

}  // namespace fdks::krr
