// Binary serialization of the hierarchical representation.
//
// Building an HMatrix costs O(dN log N) (tree + kNN + skeletonization);
// saving it lets a production pipeline compress once and re-factorize
// for many (kernel-fixed) lambda values across runs, which is the
// paper's cross-validation workload. The format stores the original
// points, kernel, config, tree (nodes + permutation), and all node
// skeletons; everything derived is rebuilt on load.
#pragma once

#include <string>

#include "askit/hmatrix.hpp"

namespace fdks::askit {

void save_hmatrix(const std::string& path, const HMatrix& h);

HMatrix load_hmatrix(const std::string& path);

}  // namespace fdks::askit
