// Treecode matvecs and skeleton gather/scatter passes for HMatrix.
#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "askit/hmatrix.hpp"
#include "kernel/gsks.hpp"
#include "la/blas1.hpp"
#include "la/gemm.hpp"

namespace fdks::askit {

std::vector<double> HMatrix::to_tree_order(std::span<const double> v) const {
  const auto& perm = tree_.perm();
  std::vector<double> out(v.size());
  for (size_t p = 0; p < v.size(); ++p)
    out[p] = v[static_cast<size_t>(perm[p])];
  return out;
}

std::vector<double> HMatrix::from_tree_order(std::span<const double> v) const {
  const auto& perm = tree_.perm();
  std::vector<double> out(v.size());
  for (size_t p = 0; p < v.size(); ++p)
    out[static_cast<size_t>(perm[p])] = v[p];
  return out;
}

std::vector<std::vector<double>> HMatrix::gather_skeleton_weights(
    std::span<const double> w_perm) const {
  const index_t nn = static_cast<index_t>(tree_.nodes().size());
  std::vector<std::vector<double>> wt(static_cast<size_t>(nn));
  // Reverse id order is post-order (children first).
  for (index_t id = nn - 1; id >= 0; --id) {
    const tree::Node& nd = tree_.node(id);
    const NodeSkeleton& sk = skeletons_[static_cast<size_t>(id)];
    auto& out = wt[static_cast<size_t>(id)];
    if (nd.is_leaf()) {
      if (!sk.skeletonized) {  // Root-leaf degenerate case.
        out.assign(w_perm.begin() + nd.begin, w_perm.begin() + nd.end);
        continue;
      }
      out.assign(static_cast<size_t>(sk.rank()), 0.0);
      la::gemv(la::Trans::No, 1.0, sk.proj,
               w_perm.subspan(static_cast<size_t>(nd.begin),
                              static_cast<size_t>(nd.size())),
               0.0, out);
    } else {
      const auto& wl = wt[static_cast<size_t>(nd.left)];
      const auto& wr = wt[static_cast<size_t>(nd.right)];
      std::vector<double> cat;
      cat.reserve(wl.size() + wr.size());
      cat.insert(cat.end(), wl.begin(), wl.end());
      cat.insert(cat.end(), wr.begin(), wr.end());
      if (sk.skeletonized) {
        out.assign(static_cast<size_t>(sk.rank()), 0.0);
        la::gemv(la::Trans::No, 1.0, sk.proj, cat, 0.0, out);
      } else {
        out = std::move(cat);  // Effective skeleton: plain concatenation.
      }
    }
  }
  return wt;
}

void HMatrix::scatter_from_skeleton(index_t node, std::span<const double> z,
                                    std::span<double> y_perm) const {
  const tree::Node& nd = tree_.node(node);
  const NodeSkeleton& sk = skeletons_[static_cast<size_t>(node)];
  if (nd.is_leaf()) {
    if (!sk.skeletonized) {  // Root-leaf degenerate case: z is pointwise.
      for (index_t i = 0; i < nd.size(); ++i) y_perm[nd.begin + i] += z[i];
      return;
    }
    // y_leaf += P^T z.
    la::gemv(la::Trans::Yes, 1.0, sk.proj, z, 1.0,
             y_perm.subspan(static_cast<size_t>(nd.begin),
                            static_cast<size_t>(nd.size())));
    return;
  }
  std::vector<double> z2;
  std::span<const double> zc = z;
  if (sk.skeletonized) {
    z2.assign(static_cast<size_t>(sk.proj.cols()), 0.0);
    la::gemv(la::Trans::Yes, 1.0, sk.proj, z, 0.0, z2);
    zc = z2;
  }
  const size_t ls = eff_skel_[static_cast<size_t>(nd.left)].size();
  scatter_from_skeleton(nd.left, zc.subspan(0, ls), y_perm);
  scatter_from_skeleton(nd.right, zc.subspan(ls), y_perm);
}

void HMatrix::apply_impl(std::span<const double> w, std::span<double> y,
                         double lambda, bool source_form) const {
  if (w.size() != static_cast<size_t>(n()) || y.size() != w.size())
    throw std::invalid_argument("HMatrix::apply: size mismatch");
  const std::vector<double> wt = to_tree_order(w);
  std::vector<double> yt(wt.size(), 0.0);

  // Diagonal blocks: exact leaf interactions K_aa w_a.
  for (index_t id = 0; id < static_cast<index_t>(tree_.nodes().size());
       ++id) {
    const tree::Node& nd = tree_.node(id);
    if (!nd.is_leaf()) continue;
    std::vector<index_t> pts(static_cast<size_t>(nd.size()));
    std::iota(pts.begin(), pts.end(), nd.begin);
    kernel::gsks_apply(km_, pts, pts,
                       std::span<const double>(wt.data() + nd.begin,
                                               static_cast<size_t>(nd.size())),
                       std::span<double>(yt.data() + nd.begin,
                                         static_cast<size_t>(nd.size())));
  }

  if (source_form) {
    // Classic ASKIT: y_l += K(X_l, r~eff) w~_r and symmetrically.
    const auto wskel = gather_skeleton_weights(wt);
    for (index_t id = 0; id < static_cast<index_t>(tree_.nodes().size());
         ++id) {
      const tree::Node& nd = tree_.node(id);
      if (nd.is_leaf()) continue;
      const tree::Node& l = tree_.node(nd.left);
      const tree::Node& r = tree_.node(nd.right);
      std::vector<index_t> lpts(static_cast<size_t>(l.size()));
      std::iota(lpts.begin(), lpts.end(), l.begin);
      std::vector<index_t> rpts(static_cast<size_t>(r.size()));
      std::iota(rpts.begin(), rpts.end(), r.begin);
      kernel::gsks_apply(km_, lpts, eff_skel_[static_cast<size_t>(nd.right)],
                         wskel[static_cast<size_t>(nd.right)],
                         std::span<double>(yt.data() + l.begin,
                                           static_cast<size_t>(l.size())));
      kernel::gsks_apply(km_, rpts, eff_skel_[static_cast<size_t>(nd.left)],
                         wskel[static_cast<size_t>(nd.left)],
                         std::span<double>(yt.data() + r.begin,
                                           static_cast<size_t>(r.size())));
    }
  } else {
    // Target-interpolation form (eq. 6): z_l = K(l~eff, X_r) w_r, then
    // scatter z_l through the telescoped projections into y_l.
    for (index_t id = 0; id < static_cast<index_t>(tree_.nodes().size());
         ++id) {
      const tree::Node& nd = tree_.node(id);
      if (nd.is_leaf()) continue;
      const tree::Node& l = tree_.node(nd.left);
      const tree::Node& r = tree_.node(nd.right);
      const auto& leff = eff_skel_[static_cast<size_t>(nd.left)];
      const auto& reff = eff_skel_[static_cast<size_t>(nd.right)];
      std::vector<index_t> lpts(static_cast<size_t>(l.size()));
      std::iota(lpts.begin(), lpts.end(), l.begin);
      std::vector<index_t> rpts(static_cast<size_t>(r.size()));
      std::iota(rpts.begin(), rpts.end(), r.begin);

      std::vector<double> zl(leff.size(), 0.0);
      kernel::gsks_apply(km_, leff, rpts,
                         std::span<const double>(wt.data() + r.begin,
                                                 static_cast<size_t>(r.size())),
                         zl);
      scatter_from_skeleton(nd.left, zl, yt);

      std::vector<double> zr(reff.size(), 0.0);
      kernel::gsks_apply(km_, reff, lpts,
                         std::span<const double>(wt.data() + l.begin,
                                                 static_cast<size_t>(l.size())),
                         zr);
      scatter_from_skeleton(nd.right, zr, yt);
    }
  }

  if (lambda != 0.0)
    for (size_t i = 0; i < yt.size(); ++i) yt[i] += lambda * wt[i];

  const std::vector<double> yo = from_tree_order(yt);
  std::copy(yo.begin(), yo.end(), y.begin());
}

void HMatrix::apply(std::span<const double> w, std::span<double> y,
                    double lambda) const {
  apply_impl(w, y, lambda, /*source_form=*/false);
}

void HMatrix::apply_source(std::span<const double> w, std::span<double> y,
                           double lambda) const {
  apply_impl(w, y, lambda, /*source_form=*/true);
}

double HMatrix::relative_residual(std::span<const double> w,
                                  std::span<const double> u,
                                  double lambda) const {
  std::vector<double> kw(w.size());
  apply(w, kw, lambda);
  const double un = la::nrm2(u);
  if (un == 0.0) return 0.0;
  for (size_t i = 0; i < kw.size(); ++i) kw[i] = u[i] - kw[i];
  return la::nrm2(kw) / un;
}

}  // namespace fdks::askit
