#include "askit/diagnostics.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "kernel/gsks.hpp"
#include "la/norms.hpp"

namespace fdks::askit {

namespace {

// Exact (lambda = 0) kernel matvec in tree order.
void exact_apply_tree_order(const HMatrix& h, std::span<const double> w,
                            std::span<double> y) {
  std::vector<index_t> all(static_cast<size_t>(h.n()));
  std::iota(all.begin(), all.end(), index_t{0});
  std::fill(y.begin(), y.end(), 0.0);
  kernel::gsks_apply(h.km(), all, all, w, y);
}

}  // namespace

CompressionReport compression_report(const HMatrix& h, int power_iters,
                                     uint64_t seed) {
  CompressionReport out;
  const index_t n = h.n();

  out.sigma1 = la::norm2_estimate_op(
      n,
      [&](std::span<const double> w, std::span<double> y) {
        std::vector<double> wt = h.to_tree_order(w);
        std::vector<double> yt(wt.size());
        exact_apply_tree_order(h, wt, yt);
        const std::vector<double> yo = h.from_tree_order(yt);
        std::copy(yo.begin(), yo.end(), y.begin());
      },
      power_iters, seed);

  const double err2 = la::norm2_estimate_op(
      n,
      [&](std::span<const double> w, std::span<double> y) {
        // Power iteration on the difference operator. K is exactly
        // symmetric and K~ is symmetric up to the compression error, so
        // the dominant-eigenvalue estimate is a faithful 2-norm proxy.
        std::vector<double> approx(w.size());
        h.apply(w, approx, 0.0);
        std::vector<double> wt = h.to_tree_order(w);
        std::vector<double> yt(wt.size());
        exact_apply_tree_order(h, wt, yt);
        const std::vector<double> exact = h.from_tree_order(yt);
        for (size_t i = 0; i < w.size(); ++i) y[i] = exact[i] - approx[i];
      },
      power_iters, seed + 1);
  out.rel_error_2norm = out.sigma1 > 0.0 ? err2 / out.sigma1 : 0.0;

  size_t stored = 0;
  for (index_t id = 0; id < static_cast<index_t>(h.tree().nodes().size());
       ++id) {
    if (!h.is_skeletonized(id)) continue;
    out.total_skeleton_size += h.skeleton(id).rank();
    out.max_rank = std::max(out.max_rank, h.skeleton(id).rank());
    stored += static_cast<size_t>(h.skeleton(id).proj.size());
  }
  out.compression_ratio =
      double(stored) / (double(n) * double(n));
  out.frontier_size = static_cast<index_t>(h.frontier().size());
  return out;
}

}  // namespace fdks::askit
