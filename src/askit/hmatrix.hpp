// Hierarchical (ASKIT-style) approximation of a kernel matrix.
//
// HMatrix owns the ball tree, the permuted point set, and the per-node
// skeletons produced by Algorithm II.1. It is the input to the fast
// direct solver (src/core) and provides the two treecode matvecs:
//
//   apply()        — target-interpolation form, eq. (6): the matrix the
//                    factorization inverts. K_lr ≈ P_ll~ K_l~r.
//   apply_source() — classic ASKIT source-skeleton form:
//                    K_lr ≈ K_lr~ P_r~r. Used as the "ASKIT MatVec" of
//                    the unpreconditioned GMRES baseline (Figure 5).
//
// Nodes above the skeletonization frontier (level restriction L, or
// adaptive failure to compress) have no skeleton of their own; their
// "effective skeleton" is the concatenation of their frontier
// descendants' skeletons, exactly the expanded blocks of Figure 2.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "kernel/kernel_matrix.hpp"
#include "kernel/summation.hpp"
#include "knn/knn.hpp"
#include "tree/ball_tree.hpp"

namespace fdks::askit {

using kernel::Kernel;
using kernel::KernelMatrix;
using la::Matrix;
using la::index_t;

struct AskitConfig {
  index_t leaf_size = 128;        ///< m.
  index_t max_rank = 128;         ///< s_max.
  double tol = 1e-5;              ///< tau (adaptive rank); <=0 fixes rank
                                  ///< at max_rank.
  index_t level_restriction = 0;  ///< L: nodes at level < L are never
                                  ///< skeletonized (0 = only the root).
  index_t num_neighbors = 16;     ///< kappa, neighbour rows per point for
                                  ///< skeleton sampling (0 = uniform only).
  bool approx_neighbors = false;  ///< Use randomized-projection-tree kNN
                                  ///< instead of the exact O(N^2 d) pass
                                  ///< (ASKIT's forest scheme; recommended
                                  ///< for N over ~10k).
  index_t sample_oversampling = 32;  ///< Extra uniform sample rows beyond
                                     ///< the candidate count.
  uint64_t seed = 1234;
  bool adaptive_frontier = true;  ///< Stop skeletonizing a branch when the
                                  ///< ID fails to compress (alpha~ = l~r~).
};

struct NodeSkeleton {
  bool skeletonized = false;
  /// Skeleton point ids, in permuted order.
  std::vector<index_t> skel;
  /// Projection P_{alpha~, cand}: rank-by-|cand| where cand is the
  /// node's own points (leaf) or [l~ r~] (internal).
  Matrix proj;
  /// |R(k,k)| decay from the ID, for diagnostics.
  std::vector<double> rdiag;

  index_t rank() const { return static_cast<index_t>(skel.size()); }
};

struct BuildStats {
  double tree_seconds = 0.0;
  double knn_seconds = 0.0;
  double skeleton_seconds = 0.0;
  index_t max_rank_used = 0;
  index_t frontier_size = 0;
  index_t skeletonized_nodes = 0;
};

class HMatrix {
 public:
  /// Build the hierarchical representation: ball tree, neighbour lists,
  /// bottom-up skeletonization. points are d-by-N in the caller's
  /// (original) order.
  HMatrix(Matrix points, Kernel k, AskitConfig cfg);

  /// Reconstruct from serialized parts (deserialization path; see
  /// askit/serialize.hpp). Skips tree building and skeletonization;
  /// derived structures (effective skeletons, frontier) are rebuilt.
  HMatrix(Matrix points_original, Kernel k, AskitConfig cfg,
          tree::BallTree t, std::vector<NodeSkeleton> skeletons);

  index_t n() const { return km_.n(); }
  index_t dim() const { return km_.dim(); }
  const AskitConfig& config() const { return cfg_; }
  const tree::BallTree& tree() const { return tree_; }
  /// Kernel matrix over the *permuted* point order.
  const KernelMatrix& km() const { return km_; }
  const Kernel& kernel() const { return km_.kernel(); }
  const BuildStats& stats() const { return stats_; }

  const NodeSkeleton& skeleton(index_t node) const {
    return skeletons_[static_cast<size_t>(node)];
  }

  /// Maximal skeletonized nodes (the frontier A). Their point ranges
  /// partition [0, N).
  const std::vector<index_t>& frontier() const { return frontier_; }

  /// Is node at or below the frontier (i.e., skeletonized)?
  bool is_skeletonized(index_t node) const {
    return skeletons_[static_cast<size_t>(node)].skeletonized;
  }

  /// Effective skeleton: own skeleton when skeletonized, else the
  /// concatenation of children's effective skeletons (frontier
  /// expansion of Figure 2).
  const std::vector<index_t>& effective_skeleton(index_t node) const {
    return eff_skel_[static_cast<size_t>(node)];
  }

  // -- Treecode matvecs (vectors in ORIGINAL point order) --------------

  /// y = (lambda I + K~) w, target-interpolation form (the factorized
  /// operator).
  void apply(std::span<const double> w, std::span<double> y,
             double lambda = 0.0) const;

  /// y = (lambda I + K~') w, source-skeleton form (classic ASKIT
  /// treecode, the paper's MatVec baseline).
  void apply_source(std::span<const double> w, std::span<double> y,
                    double lambda = 0.0) const;

  /// Relative residual ||u - (lambda I + K~) w|| / ||u|| (paper eq. 15).
  double relative_residual(std::span<const double> w,
                           std::span<const double> u, double lambda) const;

  // -- Internal-order helpers used by the solver ------------------------

  /// Gather pass: skeleton coefficients w~_c = P_{c~,c} w_c for every
  /// node, computed by telescoping (w in permuted order). Returned as a
  /// per-node vector of coefficient vectors.
  std::vector<std::vector<double>> gather_skeleton_weights(
      std::span<const double> w_perm) const;

  /// Scatter pass: y_c += P_{c,c~}^T-style expansion of skeleton
  /// coefficients z at node c (permuted order accumulation).
  void scatter_from_skeleton(index_t node, std::span<const double> z,
                             std::span<double> y_perm) const;

  /// Permute a vector from original to tree order.
  std::vector<double> to_tree_order(std::span<const double> v) const;
  /// Permute a vector from tree order back to original order.
  std::vector<double> from_tree_order(std::span<const double> v) const;

 private:
  void skeletonize_all();
  void skeletonize_node(index_t id, const knn::KnnResult* neighbors,
                        std::mt19937_64& rng);
  void compute_effective_skeletons();
  void compute_frontier();
  void apply_impl(std::span<const double> w, std::span<double> y,
                  double lambda, bool source_form) const;

  AskitConfig cfg_;
  tree::BallTree tree_;
  KernelMatrix km_;
  std::vector<NodeSkeleton> skeletons_;
  std::vector<std::vector<index_t>> eff_skel_;
  std::vector<index_t> frontier_;
  BuildStats stats_;
};

}  // namespace fdks::askit
