// Construction of the hierarchical representation: tree build, neighbour
// sampling, and the bottom-up skeletonization of Algorithm II.1.
#include <algorithm>
#include <numeric>
#include <optional>
#include <random>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "askit/hmatrix.hpp"
#include "knn/rp_tree.hpp"
#include "la/id.hpp"
#include "obs/obs.hpp"

namespace fdks::askit {

HMatrix::HMatrix(Matrix points, Kernel k, AskitConfig cfg)
    : cfg_(cfg),
      tree_(points, tree::BallTreeConfig{cfg.leaf_size, cfg.seed}),
      km_(tree_.permuted_points(points), k) {
  if (cfg_.max_rank < 1)
    throw std::invalid_argument("AskitConfig: max_rank must be >= 1");
  skeletons_.resize(tree_.nodes().size());
  skeletonize_all();
  compute_effective_skeletons();
}

void HMatrix::skeletonize_all() {
  // Timings feed both BuildStats (per-instance view) and the shared obs
  // registry; when the caller opens a "setup" scope around construction
  // these nest under it in the reported trace tree.
  obs::ScopedTimer t_knn("knn");

  // Optional neighbour lists (kappa-NN over the permuted points) used to
  // bias the sampled rows S' toward the near field, as in ASKIT. For
  // num_neighbors == 0 the sampler is purely uniform.
  std::optional<knn::KnnResult> neighbors;
  if (cfg_.num_neighbors > 0 && n() > 1) {
    const index_t k = std::min(cfg_.num_neighbors, n() - 1);
    if (cfg_.approx_neighbors) {
      knn::RpTreeConfig rp;
      rp.seed = cfg_.seed + 3;
      neighbors = knn::approx_knn(km_.points(), k, rp);
    } else {
      neighbors = knn::exact_knn(km_.points(), k);
    }
  }
  stats_.knn_seconds = t_knn.stop();

  obs::ScopedTimer t_skel("skeletonize");
  std::mt19937_64 rng(cfg_.seed + 17);
  // Bottom-up: levels() is indexed by level; walk deepest first. Nodes
  // within a level are independent — this is the paper's level-by-level
  // parallel traversal (we keep it sequential per level here because
  // skeletonization shares the RNG; the factorization is the hot path).
  const auto& levels = tree_.levels();
  for (index_t l = static_cast<index_t>(levels.size()) - 1; l >= 0; --l) {
    for (index_t id : levels[static_cast<size_t>(l)]) {
      skeletonize_node(id, neighbors ? &*neighbors : nullptr, rng);
    }
  }
  stats_.skeleton_seconds = t_skel.stop();

  double rank_sum = 0.0;
  for (const NodeSkeleton& s : skeletons_) {
    if (s.skeletonized) {
      ++stats_.skeletonized_nodes;
      stats_.max_rank_used = std::max(stats_.max_rank_used, s.rank());
      rank_sum += double(s.rank());
    }
  }
  obs::add("skeleton.nodes", double(stats_.skeletonized_nodes));
  obs::add("skeleton.rank_sum", rank_sum);

  compute_frontier();
  stats_.frontier_size = static_cast<index_t>(frontier_.size());
}

void HMatrix::compute_frontier() {
  // Frontier: skeletonized nodes whose parent is not skeletonized (the
  // root is never skeletonized, so children of the root can be frontier
  // nodes). Ordered by point range for deterministic traversals.
  frontier_.clear();
  for (index_t id = 0; id < static_cast<index_t>(tree_.nodes().size());
       ++id) {
    const tree::Node& nd = tree_.node(id);
    if (!is_skeletonized(id)) continue;
    if (nd.parent < 0 || !is_skeletonized(nd.parent)) frontier_.push_back(id);
  }
  std::sort(frontier_.begin(), frontier_.end(), [&](index_t a, index_t b) {
    return tree_.node(a).begin < tree_.node(b).begin;
  });
}

HMatrix::HMatrix(Matrix points_original, Kernel k, AskitConfig cfg,
                 tree::BallTree t, std::vector<NodeSkeleton> skeletons)
    : cfg_(cfg),
      tree_(std::move(t)),
      km_(tree_.permuted_points(points_original), k),
      skeletons_(std::move(skeletons)) {
  if (skeletons_.size() != tree_.nodes().size())
    throw std::invalid_argument("HMatrix: skeleton/node count mismatch");
  for (const NodeSkeleton& s : skeletons_) {
    if (s.skeletonized) {
      ++stats_.skeletonized_nodes;
      stats_.max_rank_used = std::max(stats_.max_rank_used, s.rank());
    }
  }
  compute_frontier();
  stats_.frontier_size = static_cast<index_t>(frontier_.size());
  compute_effective_skeletons();
}

void HMatrix::skeletonize_node(index_t id, const knn::KnnResult* neighbors,
                               std::mt19937_64& rng) {
  const tree::Node& nd = tree_.node(id);
  NodeSkeleton& out = skeletons_[static_cast<size_t>(id)];

  // The root has an empty complement: nothing to skeletonize against.
  if (nd.parent < 0) return;

  // Candidate columns: own points for a leaf, children skeletons for an
  // internal node (Algorithm II.1).
  std::vector<index_t> cand;
  if (nd.is_leaf()) {
    cand.resize(static_cast<size_t>(nd.size()));
    std::iota(cand.begin(), cand.end(), nd.begin);
  } else {
    const NodeSkeleton& ls = skeletons_[static_cast<size_t>(nd.left)];
    const NodeSkeleton& rs = skeletons_[static_cast<size_t>(nd.right)];
    // If a child failed to skeletonize, this node cannot either (the
    // frontier property: unskeletonized branches stay unskeletonized).
    if (!ls.skeletonized || !rs.skeletonized) return;
    // Level restriction: never skeletonize internal nodes above L.
    if (nd.level < std::max<index_t>(1, cfg_.level_restriction)) return;
    cand = ls.skel;
    cand.insert(cand.end(), rs.skel.begin(), rs.skel.end());
  }

  // ---- Row sampling: S' subset of the complement of the node ----------
  const index_t ncomp = n() - nd.size();
  if (ncomp == 0) return;
  const index_t target_rows =
      std::min(ncomp, 2 * static_cast<index_t>(cand.size()) +
                          cfg_.sample_oversampling);

  std::vector<index_t> rows;
  rows.reserve(static_cast<size_t>(target_rows));
  std::unordered_set<index_t> seen;
  auto add_row = [&](index_t p) {
    if (p < 0) return;  // Approximate-kNN padding.
    if (p >= nd.begin && p < nd.end) return;  // Inside the node.
    if (seen.insert(p).second) rows.push_back(p);
  };

  // Near-field bias: neighbours of the candidate points that fall
  // outside the node.
  if (neighbors != nullptr) {
    for (index_t c : cand) {
      for (index_t j = 0; j < neighbors->k; ++j) {
        add_row(neighbors->id(c, j));
        if (static_cast<index_t>(rows.size()) >= target_rows / 2) break;
      }
      if (static_cast<index_t>(rows.size()) >= target_rows / 2) break;
    }
  }

  // Fill with uniform samples from the complement. The complement is
  // [0, begin) u [end, N): draw an offset and skip over the node.
  std::uniform_int_distribution<index_t> pick(0, ncomp - 1);
  index_t guard = 16 * target_rows + 64;
  while (static_cast<index_t>(rows.size()) < target_rows && guard-- > 0) {
    index_t p = pick(rng);
    if (p >= nd.begin) p += nd.size();
    add_row(p);
  }

  // ---- ID on the sampled block K(S', cand) ----------------------------
  const Matrix a = km_.block(rows, cand);
  const index_t cap = std::min<index_t>(cfg_.max_rank,
                                        static_cast<index_t>(cand.size()));
  la::IdResult idr = la::interpolative_decomposition(a, cfg_.tol, cap);

  // Adaptive frontier: an internal node whose ID kept every candidate
  // achieved no compression (alpha~ = l~ u r~); terminate this branch
  // (paper §II-A "level restriction").
  if (cfg_.adaptive_frontier && !nd.is_leaf() && cfg_.tol > 0.0 &&
      idr.rank == static_cast<index_t>(cand.size()) &&
      idr.rank < cfg_.max_rank) {
    return;
  }

  out.skeletonized = true;
  out.skel.resize(static_cast<size_t>(idr.rank));
  for (index_t j = 0; j < idr.rank; ++j)
    out.skel[static_cast<size_t>(j)] =
        cand[static_cast<size_t>(idr.skeleton[static_cast<size_t>(j)])];
  out.proj = std::move(idr.p);
  out.rdiag = std::move(idr.rdiag);
}

void HMatrix::compute_effective_skeletons() {
  const index_t nn = static_cast<index_t>(tree_.nodes().size());
  eff_skel_.assign(static_cast<size_t>(nn), {});
  // Children have larger ids than parents (creation order), so a reverse
  // sweep is a valid post-order.
  for (index_t id = nn - 1; id >= 0; --id) {
    const tree::Node& nd = tree_.node(id);
    auto& eff = eff_skel_[static_cast<size_t>(id)];
    if (is_skeletonized(id)) {
      eff = skeletons_[static_cast<size_t>(id)].skel;
    } else if (!nd.is_leaf()) {
      eff = eff_skel_[static_cast<size_t>(nd.left)];
      const auto& r = eff_skel_[static_cast<size_t>(nd.right)];
      eff.insert(eff.end(), r.begin(), r.end());
    } else {
      // An unskeletonized leaf can only be the root of a one-node tree;
      // its "skeleton" is all of its points.
      eff.resize(static_cast<size_t>(nd.size()));
      std::iota(eff.begin(), eff.end(), nd.begin);
    }
  }
}

}  // namespace fdks::askit
