#include "askit/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "askit/wire.hpp"

namespace fdks::askit {

namespace {

using wire::get;
using wire::get_doubles;
using wire::get_ids;
using wire::get_matrix;
using wire::put;
using wire::put_doubles;
using wire::put_ids;
using wire::put_matrix;

constexpr uint64_t kMagic = 0x46444b53484d4131ull;  // "FDKSHMA1".

}  // namespace

void save_hmatrix(const std::string& path, const HMatrix& h) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_hmatrix: cannot open " + path);
  put(out, kMagic);

  // Kernel.
  const Kernel& k = h.kernel();
  put<int32_t>(out, static_cast<int32_t>(k.type));
  put(out, k.bandwidth);
  put(out, k.shift);
  put<int32_t>(out, k.degree);

  // Config (fields individually, stable across struct changes guarded by
  // the magic/version byte baked into kMagic).
  const AskitConfig& cfg = h.config();
  put<int64_t>(out, cfg.leaf_size);
  put<int64_t>(out, cfg.max_rank);
  put(out, cfg.tol);
  put<int64_t>(out, cfg.level_restriction);
  put<int64_t>(out, cfg.num_neighbors);
  put<int64_t>(out, cfg.sample_oversampling);
  put<uint64_t>(out, cfg.seed);
  put<uint8_t>(out, cfg.adaptive_frontier ? 1 : 0);
  put<uint8_t>(out, cfg.approx_neighbors ? 1 : 0);

  // Points in ORIGINAL order (reconstructed from the permuted copy).
  const auto& perm = h.tree().perm();
  const la::Matrix& pp = h.km().points();
  la::Matrix orig(pp.rows(), pp.cols());
  for (index_t p = 0; p < pp.cols(); ++p)
    for (index_t i = 0; i < pp.rows(); ++i)
      orig(i, perm[static_cast<size_t>(p)]) = pp(i, p);
  put_matrix(out, orig);

  // Tree: nodes + permutation.
  const auto& nodes = h.tree().nodes();
  put<uint64_t>(out, nodes.size());
  for (const tree::Node& nd : nodes) {
    put<int64_t>(out, nd.begin);
    put<int64_t>(out, nd.end);
    put<int64_t>(out, nd.left);
    put<int64_t>(out, nd.right);
    put<int64_t>(out, nd.parent);
    put<int32_t>(out, nd.level);
  }
  put_ids(out, perm);

  // Skeletons.
  for (size_t id = 0; id < nodes.size(); ++id) {
    const NodeSkeleton& sk = h.skeleton(static_cast<index_t>(id));
    put<uint8_t>(out, sk.skeletonized ? 1 : 0);
    put_ids(out, sk.skel);
    put_matrix(out, sk.proj);
    put_doubles(out, sk.rdiag);
  }
  if (!out) throw std::runtime_error("save_hmatrix: write failed " + path);
}

HMatrix load_hmatrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_hmatrix: cannot open " + path);
  if (get<uint64_t>(in) != kMagic)
    throw std::runtime_error("load_hmatrix: bad magic in " + path);

  Kernel k;
  k.type = static_cast<kernel::KernelType>(get<int32_t>(in));
  k.bandwidth = get<double>(in);
  k.shift = get<double>(in);
  k.degree = get<int32_t>(in);

  AskitConfig cfg;
  cfg.leaf_size = static_cast<index_t>(get<int64_t>(in));
  cfg.max_rank = static_cast<index_t>(get<int64_t>(in));
  cfg.tol = get<double>(in);
  cfg.level_restriction = static_cast<index_t>(get<int64_t>(in));
  cfg.num_neighbors = static_cast<index_t>(get<int64_t>(in));
  cfg.sample_oversampling = static_cast<index_t>(get<int64_t>(in));
  cfg.seed = get<uint64_t>(in);
  cfg.adaptive_frontier = get<uint8_t>(in) != 0;
  cfg.approx_neighbors = get<uint8_t>(in) != 0;

  la::Matrix points = get_matrix(in);

  const auto nnodes = get<uint64_t>(in);
  std::vector<tree::Node> nodes(nnodes);
  for (auto& nd : nodes) {
    nd.begin = static_cast<index_t>(get<int64_t>(in));
    nd.end = static_cast<index_t>(get<int64_t>(in));
    nd.left = static_cast<index_t>(get<int64_t>(in));
    nd.right = static_cast<index_t>(get<int64_t>(in));
    nd.parent = static_cast<index_t>(get<int64_t>(in));
    nd.level = get<int32_t>(in);
  }
  std::vector<index_t> perm = get_ids(in);
  tree::BallTree t(tree::BallTreeConfig{cfg.leaf_size, cfg.seed},
                   std::move(nodes), std::move(perm));

  std::vector<NodeSkeleton> skeletons(nnodes);
  for (auto& sk : skeletons) {
    sk.skeletonized = get<uint8_t>(in) != 0;
    sk.skel = get_ids(in);
    sk.proj = get_matrix(in);
    sk.rdiag = get_doubles(in);
  }
  if (!in) throw std::runtime_error("load_hmatrix: truncated " + path);

  return HMatrix(std::move(points), k, cfg, std::move(t),
                 std::move(skeletons));
}

}  // namespace fdks::askit
