// Compression-quality diagnostics for the hierarchical representation.
#pragma once

#include "askit/hmatrix.hpp"

#include <cstdint>

namespace fdks::askit {

struct CompressionReport {
  double rel_error_2norm = 0.0;  ///< ||K - K~||_2 / ||K||_2 estimate.
  double sigma1 = 0.0;           ///< ||K||_2 estimate.
  index_t total_skeleton_size = 0;  ///< Sum of skeleton ranks.
  double compression_ratio = 0.0;   ///< Stored factor doubles / N^2.
  index_t frontier_size = 0;
  index_t max_rank = 0;
};

/// Estimate the global compression error with power iteration on the
/// difference operator w -> K w - K~ w (the exact matvec is the fused
/// matrix-free summation, O(dN^2) per probe — diagnostics-scale only).
CompressionReport compression_report(const HMatrix& h, int power_iters = 15,
                                     uint64_t seed = 7);

}  // namespace fdks::askit
