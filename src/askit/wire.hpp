// Binary wire primitives shared by the on-disk format family.
//
// askit/serialize (the HMatrix compress artifact) and ckpt/checkpoint
// (factorization checkpoints) speak the same low-level dialect: raw
// little-endian POD fields, length-prefixed containers, and an FNV-1a
// checksum for detecting torn or corrupted files. Centralizing the
// primitives here keeps the two formats byte-compatible where they
// overlap (matrices, index lists) and gives the checkpoint layer stream
// (not file) based encoding, so payloads can be checksummed in memory
// before they touch disk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace fdks::askit::wire {

using la::index_t;

template <class T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

inline void put_matrix(std::ostream& out, const la::Matrix& m) {
  put<std::int64_t>(out, m.rows());
  put<std::int64_t>(out, m.cols());
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(double)));
}

inline la::Matrix get_matrix(std::istream& in) {
  const auto r = get<std::int64_t>(in);
  const auto c = get<std::int64_t>(in);
  la::Matrix m(static_cast<index_t>(r), static_cast<index_t>(c));
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(double)));
  return m;
}

inline void put_ids(std::ostream& out, const std::vector<index_t>& v) {
  put<std::uint64_t>(out, v.size());
  for (index_t x : v) put<std::int64_t>(out, x);
}

inline std::vector<index_t> get_ids(std::istream& in) {
  const auto nv = get<std::uint64_t>(in);
  std::vector<index_t> v(nv);
  for (auto& x : v) x = static_cast<index_t>(get<std::int64_t>(in));
  return v;
}

inline void put_doubles(std::ostream& out, const std::vector<double>& v) {
  put<std::uint64_t>(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

inline std::vector<double> get_doubles(std::istream& in) {
  const auto nv = get<std::uint64_t>(in);
  std::vector<double> v(nv);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(nv * sizeof(double)));
  return v;
}

inline void put_string(std::ostream& out, const std::string& s) {
  put<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

inline std::string get_string(std::istream& in) {
  const auto n = get<std::uint64_t>(in);
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  return s;
}

/// FNV-1a over a byte range; `seed` chains multi-buffer hashes.
inline std::uint64_t fnv1a(const void* data, std::size_t n,
                           std::uint64_t seed = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace fdks::askit::wire
