#include "knn/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fdks::knn {

namespace {

// A bounded max-heap of (dist2, id) pairs: keeps the k smallest seen.
class NeighborHeap {
 public:
  explicit NeighborHeap(index_t k) : k_(k) { heap_.reserve(static_cast<size_t>(k)); }

  double worst() const {
    return heap_.size() < static_cast<size_t>(k_)
               ? std::numeric_limits<double>::infinity()
               : heap_.front().first;
  }

  void push(double d2, index_t id) {
    if (heap_.size() < static_cast<size_t>(k_)) {
      heap_.emplace_back(d2, id);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (d2 < heap_.front().first) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {d2, id};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  // Extract ascending by (distance, id).
  void extract(index_t* ids, double* d2) {
    std::sort(heap_.begin(), heap_.end());
    for (size_t j = 0; j < heap_.size(); ++j) {
      d2[j] = heap_[j].first;
      ids[j] = heap_[j].second;
    }
  }

 private:
  index_t k_;
  std::vector<std::pair<double, index_t>> heap_;
};

}  // namespace

KnnResult exact_knn_subset(const Matrix& points,
                           std::span<const index_t> queries, index_t k) {
  const index_t n = points.cols();
  const index_t d = points.rows();
  const index_t nq = static_cast<index_t>(queries.size());
  if (n < 2) throw std::invalid_argument("exact_knn: need at least 2 points");
  k = std::min(k, n - 1);

  std::vector<double> sq(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const double* col = points.col(j);
    double s = 0.0;
    for (index_t t = 0; t < d; ++t) s += col[t] * col[t];
    sq[static_cast<size_t>(j)] = s;
  }

  KnnResult out;
  out.k = k;
  out.n = nq;
  out.ids.assign(static_cast<size_t>(k * nq), -1);
  out.dist2.assign(static_cast<size_t>(k * nq),
                   std::numeric_limits<double>::infinity());

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 16)
#endif
  for (index_t qi = 0; qi < nq; ++qi) {
    const index_t q = queries[qi];
    const double* xq = points.col(q);
    NeighborHeap heap(k);
    for (index_t r = 0; r < n; ++r) {
      if (r == q) continue;
      const double* xr = points.col(r);
      double xy = 0.0;
      for (index_t t = 0; t < d; ++t) xy += xq[t] * xr[t];
      const double d2 = std::max(
          0.0, sq[static_cast<size_t>(q)] + sq[static_cast<size_t>(r)] -
                   2.0 * xy);
      if (d2 < heap.worst()) heap.push(d2, r);
    }
    heap.extract(out.ids.data() + qi * k, out.dist2.data() + qi * k);
  }
  return out;
}

KnnResult exact_knn(const Matrix& points, index_t k) {
  std::vector<index_t> all(static_cast<size_t>(points.cols()));
  std::iota(all.begin(), all.end(), index_t{0});
  return exact_knn_subset(points, all, k);
}

}  // namespace fdks::knn
