#include "knn/rp_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <random>
#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fdks::knn {

namespace {

// Recursively split idx[lo, hi) by the median of projections onto a
// random Gaussian direction; record leaf ranges in `leaves`.
void build_rp_tree(const Matrix& x, std::vector<index_t>& idx, index_t lo,
                   index_t hi, index_t leaf_size, std::mt19937_64& rng,
                   std::vector<std::pair<index_t, index_t>>& leaves,
                   std::vector<double>& proj) {
  if (hi - lo <= leaf_size) {
    leaves.emplace_back(lo, hi);
    return;
  }
  const index_t d = x.rows();
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> w(static_cast<size_t>(d));
  for (auto& v : w) v = g(rng);
  for (index_t p = lo; p < hi; ++p) {
    const double* col = x.col(idx[static_cast<size_t>(p)]);
    double s = 0.0;
    for (index_t t = 0; t < d; ++t) s += w[static_cast<size_t>(t)] * col[t];
    proj[static_cast<size_t>(p)] = s;
  }
  const index_t mid = lo + (hi - lo) / 2;
  // Median split: nth_element over an order array keyed by projection
  // (idx itself is permuted afterwards in one gather pass).
  std::vector<index_t> order(static_cast<size_t>(hi - lo));
  std::iota(order.begin(), order.end(), lo);
  std::nth_element(order.begin(), order.begin() + (mid - lo), order.end(),
                   [&](index_t a, index_t b) {
                     return proj[static_cast<size_t>(a)] <
                            proj[static_cast<size_t>(b)];
                   });
  std::vector<index_t> tmp(static_cast<size_t>(hi - lo));
  for (index_t p = 0; p < hi - lo; ++p)
    tmp[static_cast<size_t>(p)] =
        idx[static_cast<size_t>(order[static_cast<size_t>(p)])];
  std::copy(tmp.begin(), tmp.end(), idx.begin() + lo);

  build_rp_tree(x, idx, lo, mid, leaf_size, rng, leaves, proj);
  build_rp_tree(x, idx, mid, hi, leaf_size, rng, leaves, proj);
}

}  // namespace

KnnResult approx_knn(const Matrix& points, index_t k, RpTreeConfig cfg) {
  const index_t n = points.cols();
  const index_t d = points.rows();
  if (n < 2)
    throw std::invalid_argument("approx_knn: need at least 2 points");
  k = std::min(k, n - 1);

  std::vector<double> sq(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const double* col = points.col(j);
    double s = 0.0;
    for (index_t t = 0; t < d; ++t) s += col[t] * col[t];
    sq[static_cast<size_t>(j)] = s;
  }

  // Per-point best-k heaps, merged across trees.
  struct Best {
    std::vector<std::pair<double, index_t>> heap;  // max-heap of (d2, id).
  };
  std::vector<Best> best(static_cast<size_t>(n));

  auto offer = [&](index_t q, index_t r) {
    if (q == r) return;
    const double* xq = points.col(q);
    const double* xr = points.col(r);
    double xy = 0.0;
    for (index_t t = 0; t < d; ++t) xy += xq[t] * xr[t];
    const double d2 = std::max(
        0.0,
        sq[static_cast<size_t>(q)] + sq[static_cast<size_t>(r)] - 2.0 * xy);
    auto& h = best[static_cast<size_t>(q)].heap;
    // Reject duplicates (same id offered by several trees).
    for (const auto& e : h)
      if (e.second == r) return;
    if (static_cast<index_t>(h.size()) < k) {
      h.emplace_back(d2, r);
      std::push_heap(h.begin(), h.end());
    } else if (d2 < h.front().first) {
      std::pop_heap(h.begin(), h.end());
      h.back() = {d2, r};
      std::push_heap(h.begin(), h.end());
    }
  };

  std::mt19937_64 seeder(cfg.seed);
  for (index_t tree = 0; tree < cfg.num_trees; ++tree) {
    std::mt19937_64 rng(seeder());
    std::vector<index_t> idx(static_cast<size_t>(n));
    std::iota(idx.begin(), idx.end(), index_t{0});
    std::vector<std::pair<index_t, index_t>> leaves;
    std::vector<double> proj(static_cast<size_t>(n));
    build_rp_tree(points, idx, 0, n, std::max<index_t>(cfg.leaf_size, k + 1),
                  rng, leaves, proj);
    for (const auto& [lo, hi] : leaves)
      for (index_t a = lo; a < hi; ++a)
        for (index_t b = lo; b < hi; ++b)
          offer(idx[static_cast<size_t>(a)], idx[static_cast<size_t>(b)]);
  }

  KnnResult out;
  out.k = k;
  out.n = n;
  out.ids.assign(static_cast<size_t>(k * n), -1);
  out.dist2.assign(static_cast<size_t>(k * n),
                   std::numeric_limits<double>::infinity());
  for (index_t q = 0; q < n; ++q) {
    auto& h = best[static_cast<size_t>(q)].heap;
    std::sort(h.begin(), h.end());
    for (size_t j = 0; j < h.size(); ++j) {
      out.ids[static_cast<size_t>(q * k) + j] = h[j].second;
      out.dist2[static_cast<size_t>(q * k) + j] = h[j].first;
    }
  }
  return out;
}

double knn_recall(const KnnResult& approx, const KnnResult& exact) {
  if (approx.n != exact.n || approx.k != exact.k)
    throw std::invalid_argument("knn_recall: shape mismatch");
  size_t hits = 0;
  for (index_t q = 0; q < exact.n; ++q) {
    for (index_t j = 0; j < exact.k; ++j) {
      const index_t truth = exact.id(q, j);
      for (index_t jj = 0; jj < approx.k; ++jj) {
        if (approx.id(q, jj) == truth) {
          ++hits;
          break;
        }
      }
    }
  }
  return double(hits) / (double(exact.n) * double(exact.k));
}

}  // namespace fdks::knn
