// Approximate k-nearest-neighbour search with randomized projection
// trees.
//
// Exact all-pairs kNN is O(N^2 d) — fine for validation, too slow for
// the skeleton-sampling pass at bench scale. ASKIT itself uses
// randomized projection forests for its neighbour pass; this module
// implements that scheme: T random-projection trees with leaf size
// `leaf_size`, candidates for a query are its co-leaf members across
// all trees, and exact distances are computed only among candidates.
// Recall improves with more trees; cost is O(T N (d log N + leaf_size d)).
#pragma once

#include "knn/knn.hpp"

#include <cstdint>

namespace fdks::knn {

struct RpTreeConfig {
  index_t num_trees = 4;
  index_t leaf_size = 64;   ///< Candidate pool per tree.
  uint64_t seed = 1234;
};

/// Approximate all-pairs kNN. Same result layout as exact_knn; ids may
/// contain -1 (with +inf distance) if fewer than k candidates were seen
/// (only possible for pathological configs).
KnnResult approx_knn(const Matrix& points, index_t k, RpTreeConfig cfg = {});

/// Fraction of true k-nearest neighbours recovered, averaged over
/// queries (for tests and tuning).
double knn_recall(const KnnResult& approx, const KnnResult& exact);

}  // namespace fdks::knn
