// Exact k-nearest-neighbour search.
//
// ASKIT samples the rows S' used in skeletonization from the kappa
// nearest neighbours of a node's points (plus uniform samples); this
// module provides the blocked exact search that feeds that sampler.
// The blocking follows the same Gram-tile strategy as GSKS so distances
// come from a rank-d update instead of a scalar loop.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace fdks::knn {

using la::Matrix;
using la::index_t;

struct KnnResult {
  index_t k = 0;
  index_t n = 0;
  /// Neighbor ids, k-by-n column-major: neighbor j of point i is
  /// ids[j + i*k], sorted by ascending distance. Self-matches excluded.
  std::vector<index_t> ids;
  /// Squared distances, same layout.
  std::vector<double> dist2;

  index_t id(index_t point, index_t j) const {
    return ids[static_cast<size_t>(j + point * k)];
  }
  double d2(index_t point, index_t j) const {
    return dist2[static_cast<size_t>(j + point * k)];
  }
};

/// All-pairs exact kNN over the columns of points (d-by-N). k is clamped
/// to N-1. Deterministic; ties broken by smaller index.
KnnResult exact_knn(const Matrix& points, index_t k);

/// kNN of a query subset against all points, excluding self matches.
/// queries are column indices into points.
KnnResult exact_knn_subset(const Matrix& points,
                           std::span<const index_t> queries, index_t k);

}  // namespace fdks::knn
