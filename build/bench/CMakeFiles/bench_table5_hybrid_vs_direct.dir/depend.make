# Empty dependencies file for bench_table5_hybrid_vs_direct.
# This may be replaced when dependencies are built.
