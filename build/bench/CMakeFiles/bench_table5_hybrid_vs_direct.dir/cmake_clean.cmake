file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_hybrid_vs_direct.dir/bench_table5_hybrid_vs_direct.cpp.o"
  "CMakeFiles/bench_table5_hybrid_vs_direct.dir/bench_table5_hybrid_vs_direct.cpp.o.d"
  "bench_table5_hybrid_vs_direct"
  "bench_table5_hybrid_vs_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_hybrid_vs_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
