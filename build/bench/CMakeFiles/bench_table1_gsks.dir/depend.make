# Empty dependencies file for bench_table1_gsks.
# This may be replaced when dependencies are built.
