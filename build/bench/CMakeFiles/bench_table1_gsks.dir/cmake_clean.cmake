file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gsks.dir/bench_table1_gsks.cpp.o"
  "CMakeFiles/bench_table1_gsks.dir/bench_table1_gsks.cpp.o.d"
  "bench_table1_gsks"
  "bench_table1_gsks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gsks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
