file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_log2_vs_log.dir/bench_table3_log2_vs_log.cpp.o"
  "CMakeFiles/bench_table3_log2_vs_log.dir/bench_table3_log2_vs_log.cpp.o.d"
  "bench_table3_log2_vs_log"
  "bench_table3_log2_vs_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_log2_vs_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
