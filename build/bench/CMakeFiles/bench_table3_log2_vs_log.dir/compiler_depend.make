# Empty compiler generated dependencies file for bench_table3_log2_vs_log.
# This may be replaced when dependencies are built.
