file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_single_node.dir/bench_table4_single_node.cpp.o"
  "CMakeFiles/bench_table4_single_node.dir/bench_table4_single_node.cpp.o.d"
  "bench_table4_single_node"
  "bench_table4_single_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
