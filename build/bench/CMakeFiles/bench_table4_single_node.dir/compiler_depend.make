# Empty compiler generated dependencies file for bench_table4_single_node.
# This may be replaced when dependencies are built.
