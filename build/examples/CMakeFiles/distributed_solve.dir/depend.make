# Empty dependencies file for distributed_solve.
# This may be replaced when dependencies are built.
