file(REMOVE_RECURSE
  "CMakeFiles/distributed_solve.dir/distributed_solve.cpp.o"
  "CMakeFiles/distributed_solve.dir/distributed_solve.cpp.o.d"
  "distributed_solve"
  "distributed_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
