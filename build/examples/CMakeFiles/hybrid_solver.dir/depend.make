# Empty dependencies file for hybrid_solver.
# This may be replaced when dependencies are built.
