file(REMOVE_RECURSE
  "CMakeFiles/hybrid_solver.dir/hybrid_solver.cpp.o"
  "CMakeFiles/hybrid_solver.dir/hybrid_solver.cpp.o.d"
  "hybrid_solver"
  "hybrid_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
