file(REMOVE_RECURSE
  "CMakeFiles/digit_classification.dir/digit_classification.cpp.o"
  "CMakeFiles/digit_classification.dir/digit_classification.cpp.o.d"
  "digit_classification"
  "digit_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
