# Empty compiler generated dependencies file for digit_classification.
# This may be replaced when dependencies are built.
