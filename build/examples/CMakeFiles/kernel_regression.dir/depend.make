# Empty dependencies file for kernel_regression.
# This may be replaced when dependencies are built.
