file(REMOVE_RECURSE
  "CMakeFiles/kernel_regression.dir/kernel_regression.cpp.o"
  "CMakeFiles/kernel_regression.dir/kernel_regression.cpp.o.d"
  "kernel_regression"
  "kernel_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
