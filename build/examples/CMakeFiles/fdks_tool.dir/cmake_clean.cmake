file(REMOVE_RECURSE
  "CMakeFiles/fdks_tool.dir/fdks_tool.cpp.o"
  "CMakeFiles/fdks_tool.dir/fdks_tool.cpp.o.d"
  "fdks_tool"
  "fdks_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdks_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
