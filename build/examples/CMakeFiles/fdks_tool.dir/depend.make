# Empty dependencies file for fdks_tool.
# This may be replaced when dependencies are built.
