# Empty compiler generated dependencies file for la_matrix_test.
# This may be replaced when dependencies are built.
