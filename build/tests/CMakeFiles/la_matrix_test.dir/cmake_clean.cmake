file(REMOVE_RECURSE
  "CMakeFiles/la_matrix_test.dir/la_matrix_test.cpp.o"
  "CMakeFiles/la_matrix_test.dir/la_matrix_test.cpp.o.d"
  "la_matrix_test"
  "la_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
