# Empty compiler generated dependencies file for gmres_test.
# This may be replaced when dependencies are built.
