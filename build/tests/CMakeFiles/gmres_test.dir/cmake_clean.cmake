file(REMOVE_RECURSE
  "CMakeFiles/gmres_test.dir/gmres_test.cpp.o"
  "CMakeFiles/gmres_test.dir/gmres_test.cpp.o.d"
  "gmres_test"
  "gmres_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
