file(REMOVE_RECURSE
  "CMakeFiles/la_gemm_test.dir/la_gemm_test.cpp.o"
  "CMakeFiles/la_gemm_test.dir/la_gemm_test.cpp.o.d"
  "la_gemm_test"
  "la_gemm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
