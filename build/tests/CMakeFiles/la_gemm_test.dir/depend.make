# Empty dependencies file for la_gemm_test.
# This may be replaced when dependencies are built.
