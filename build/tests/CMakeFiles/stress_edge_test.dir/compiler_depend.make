# Empty compiler generated dependencies file for stress_edge_test.
# This may be replaced when dependencies are built.
