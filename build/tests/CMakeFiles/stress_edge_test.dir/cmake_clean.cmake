file(REMOVE_RECURSE
  "CMakeFiles/stress_edge_test.dir/stress_edge_test.cpp.o"
  "CMakeFiles/stress_edge_test.dir/stress_edge_test.cpp.o.d"
  "stress_edge_test"
  "stress_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stress_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
