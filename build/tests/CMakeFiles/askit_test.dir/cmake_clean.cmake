file(REMOVE_RECURSE
  "CMakeFiles/askit_test.dir/askit_test.cpp.o"
  "CMakeFiles/askit_test.dir/askit_test.cpp.o.d"
  "askit_test"
  "askit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/askit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
