# Empty compiler generated dependencies file for askit_test.
# This may be replaced when dependencies are built.
