file(REMOVE_RECURSE
  "CMakeFiles/krr_extended_test.dir/krr_extended_test.cpp.o"
  "CMakeFiles/krr_extended_test.dir/krr_extended_test.cpp.o.d"
  "krr_extended_test"
  "krr_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krr_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
