# Empty dependencies file for krr_extended_test.
# This may be replaced when dependencies are built.
