# Empty dependencies file for data_krr_test.
# This may be replaced when dependencies are built.
