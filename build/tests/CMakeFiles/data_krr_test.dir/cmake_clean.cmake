file(REMOVE_RECURSE
  "CMakeFiles/data_krr_test.dir/data_krr_test.cpp.o"
  "CMakeFiles/data_krr_test.dir/data_krr_test.cpp.o.d"
  "data_krr_test"
  "data_krr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_krr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
