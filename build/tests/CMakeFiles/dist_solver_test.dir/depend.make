# Empty dependencies file for dist_solver_test.
# This may be replaced when dependencies are built.
