file(REMOVE_RECURSE
  "CMakeFiles/dist_solver_test.dir/dist_solver_test.cpp.o"
  "CMakeFiles/dist_solver_test.dir/dist_solver_test.cpp.o.d"
  "dist_solver_test"
  "dist_solver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
