# Empty dependencies file for mpisim_test.
# This may be replaced when dependencies are built.
