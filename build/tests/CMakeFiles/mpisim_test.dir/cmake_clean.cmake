file(REMOVE_RECURSE
  "CMakeFiles/mpisim_test.dir/mpisim_test.cpp.o"
  "CMakeFiles/mpisim_test.dir/mpisim_test.cpp.o.d"
  "mpisim_test"
  "mpisim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpisim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
