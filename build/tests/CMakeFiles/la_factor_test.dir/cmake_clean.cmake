file(REMOVE_RECURSE
  "CMakeFiles/la_factor_test.dir/la_factor_test.cpp.o"
  "CMakeFiles/la_factor_test.dir/la_factor_test.cpp.o.d"
  "la_factor_test"
  "la_factor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_factor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
