# Empty dependencies file for la_factor_test.
# This may be replaced when dependencies are built.
