file(REMOVE_RECURSE
  "CMakeFiles/la_extras_test.dir/la_extras_test.cpp.o"
  "CMakeFiles/la_extras_test.dir/la_extras_test.cpp.o.d"
  "la_extras_test"
  "la_extras_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/la_extras_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
