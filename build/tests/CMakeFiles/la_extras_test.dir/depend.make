# Empty dependencies file for la_extras_test.
# This may be replaced when dependencies are built.
