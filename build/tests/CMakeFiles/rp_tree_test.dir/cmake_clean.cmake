file(REMOVE_RECURSE
  "CMakeFiles/rp_tree_test.dir/rp_tree_test.cpp.o"
  "CMakeFiles/rp_tree_test.dir/rp_tree_test.cpp.o.d"
  "rp_tree_test"
  "rp_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rp_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
