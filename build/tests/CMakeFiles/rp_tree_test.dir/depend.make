# Empty dependencies file for rp_tree_test.
# This may be replaced when dependencies are built.
