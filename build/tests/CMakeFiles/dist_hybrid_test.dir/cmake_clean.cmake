file(REMOVE_RECURSE
  "CMakeFiles/dist_hybrid_test.dir/dist_hybrid_test.cpp.o"
  "CMakeFiles/dist_hybrid_test.dir/dist_hybrid_test.cpp.o.d"
  "dist_hybrid_test"
  "dist_hybrid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_hybrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
