# Empty dependencies file for dist_hybrid_test.
# This may be replaced when dependencies are built.
