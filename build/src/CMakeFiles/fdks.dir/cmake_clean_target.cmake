file(REMOVE_RECURSE
  "libfdks.a"
)
