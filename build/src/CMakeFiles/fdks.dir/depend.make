# Empty dependencies file for fdks.
# This may be replaced when dependencies are built.
