
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/askit/diagnostics.cpp" "src/CMakeFiles/fdks.dir/askit/diagnostics.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/askit/diagnostics.cpp.o.d"
  "/root/repo/src/askit/hmatrix.cpp" "src/CMakeFiles/fdks.dir/askit/hmatrix.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/askit/hmatrix.cpp.o.d"
  "/root/repo/src/askit/serialize.cpp" "src/CMakeFiles/fdks.dir/askit/serialize.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/askit/serialize.cpp.o.d"
  "/root/repo/src/askit/skeletonization.cpp" "src/CMakeFiles/fdks.dir/askit/skeletonization.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/askit/skeletonization.cpp.o.d"
  "/root/repo/src/core/dist_hybrid.cpp" "src/CMakeFiles/fdks.dir/core/dist_hybrid.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/core/dist_hybrid.cpp.o.d"
  "/root/repo/src/core/dist_solver.cpp" "src/CMakeFiles/fdks.dir/core/dist_solver.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/core/dist_solver.cpp.o.d"
  "/root/repo/src/core/factor_tree.cpp" "src/CMakeFiles/fdks.dir/core/factor_tree.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/core/factor_tree.cpp.o.d"
  "/root/repo/src/core/factorize.cpp" "src/CMakeFiles/fdks.dir/core/factorize.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/core/factorize.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/CMakeFiles/fdks.dir/core/hybrid.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/core/hybrid.cpp.o.d"
  "/root/repo/src/core/preconditioned.cpp" "src/CMakeFiles/fdks.dir/core/preconditioned.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/core/preconditioned.cpp.o.d"
  "/root/repo/src/core/solve.cpp" "src/CMakeFiles/fdks.dir/core/solve.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/core/solve.cpp.o.d"
  "/root/repo/src/core/solver.cpp" "src/CMakeFiles/fdks.dir/core/solver.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/core/solver.cpp.o.d"
  "/root/repo/src/data/generators.cpp" "src/CMakeFiles/fdks.dir/data/generators.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/data/generators.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/CMakeFiles/fdks.dir/data/io.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/data/io.cpp.o.d"
  "/root/repo/src/data/preprocess.cpp" "src/CMakeFiles/fdks.dir/data/preprocess.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/data/preprocess.cpp.o.d"
  "/root/repo/src/iterative/gmres.cpp" "src/CMakeFiles/fdks.dir/iterative/gmres.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/iterative/gmres.cpp.o.d"
  "/root/repo/src/kernel/gsks.cpp" "src/CMakeFiles/fdks.dir/kernel/gsks.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/kernel/gsks.cpp.o.d"
  "/root/repo/src/kernel/kernel_matrix.cpp" "src/CMakeFiles/fdks.dir/kernel/kernel_matrix.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/kernel/kernel_matrix.cpp.o.d"
  "/root/repo/src/kernel/kernels.cpp" "src/CMakeFiles/fdks.dir/kernel/kernels.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/kernel/kernels.cpp.o.d"
  "/root/repo/src/kernel/summation.cpp" "src/CMakeFiles/fdks.dir/kernel/summation.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/kernel/summation.cpp.o.d"
  "/root/repo/src/knn/knn.cpp" "src/CMakeFiles/fdks.dir/knn/knn.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/knn/knn.cpp.o.d"
  "/root/repo/src/knn/rp_tree.cpp" "src/CMakeFiles/fdks.dir/knn/rp_tree.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/knn/rp_tree.cpp.o.d"
  "/root/repo/src/krr/krr.cpp" "src/CMakeFiles/fdks.dir/krr/krr.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/krr/krr.cpp.o.d"
  "/root/repo/src/la/blas1.cpp" "src/CMakeFiles/fdks.dir/la/blas1.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/blas1.cpp.o.d"
  "/root/repo/src/la/chol.cpp" "src/CMakeFiles/fdks.dir/la/chol.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/chol.cpp.o.d"
  "/root/repo/src/la/gemm.cpp" "src/CMakeFiles/fdks.dir/la/gemm.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/gemm.cpp.o.d"
  "/root/repo/src/la/id.cpp" "src/CMakeFiles/fdks.dir/la/id.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/id.cpp.o.d"
  "/root/repo/src/la/lu.cpp" "src/CMakeFiles/fdks.dir/la/lu.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/lu.cpp.o.d"
  "/root/repo/src/la/matrix.cpp" "src/CMakeFiles/fdks.dir/la/matrix.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/matrix.cpp.o.d"
  "/root/repo/src/la/norms.cpp" "src/CMakeFiles/fdks.dir/la/norms.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/norms.cpp.o.d"
  "/root/repo/src/la/qr.cpp" "src/CMakeFiles/fdks.dir/la/qr.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/qr.cpp.o.d"
  "/root/repo/src/la/svd.cpp" "src/CMakeFiles/fdks.dir/la/svd.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/la/svd.cpp.o.d"
  "/root/repo/src/mpisim/collectives.cpp" "src/CMakeFiles/fdks.dir/mpisim/collectives.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/mpisim/collectives.cpp.o.d"
  "/root/repo/src/mpisim/runtime.cpp" "src/CMakeFiles/fdks.dir/mpisim/runtime.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/mpisim/runtime.cpp.o.d"
  "/root/repo/src/tree/ball_tree.cpp" "src/CMakeFiles/fdks.dir/tree/ball_tree.cpp.o" "gcc" "src/CMakeFiles/fdks.dir/tree/ball_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
