// Figure 4 reproduction.
//
// Left (#17): O(N log N) complexity verification — factorization time
// over an N sweep on the NORMAL dataset with fixed rank, against ideal
// N log N and N log^2 N curves.
//
// Right (#18): strong scaling — fixed problem, increasing worker count.
// The paper scales to 3,072 Haswell / 4,352 KNL cores; this container
// exposes a single core, so the rank sweep exercises the distributed
// code path and reports efficiency relative to p=1 (expected ~1 modulo
// messaging overhead, since the physical parallelism is 1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <vector>

#include "bench_util.hpp"
#include "core/dist_solver.hpp"
#include "core/solver.hpp"
#include "data/preprocess.hpp"
#include "mpisim/runtime.hpp"

using namespace fdks;
using la::index_t;

int main(int argc, char** argv) {
  const index_t nmax = bench::arg_n(argc, argv, 32768);
  bench::obs_begin();
  bench::print_header(
      "Figure 4 (#17): O(N log N) verification, NORMAL 64-D, fixed rank "
      "s=64,\nm=256, L=1 equivalent. Ideal columns are normalized to the "
      "first row.");

  double c_nlogn = 0.0, c_nlog2n = 0.0;
  std::printf("%8s %10s %12s %12s %12s\n", "N", "Tf(s)", "ideal NlogN",
              "ideal Nlog2N", "Ts(s)");
  for (index_t n = 2048; n <= nmax; n *= 2) {
    data::Dataset ds = data::make_synthetic(data::SyntheticKind::Normal, n,
                                            501);
    askit::AskitConfig acfg;
    acfg.leaf_size = 256;
    acfg.max_rank = 64;
    acfg.tol = 0.0;  // Fixed rank as #17.
    acfg.num_neighbors = 0;
    acfg.seed = 19;
    auto h = bench::phase("setup", [&] {
      return askit::HMatrix(ds.points, kernel::Kernel::gaussian(0.8), acfg);
    });
    core::SolverOptions so;
    so.lambda = 1.0;
    core::FastDirectSolver solver(h, so);
    const double tf = solver.factor_seconds();
    auto u = bench::random_rhs(n, 7);
    std::vector<double> x(static_cast<size_t>(n));
    bench::Timer ts;
    solver.solve(u, x);
    const double tsolve = ts.seconds();

    const double nd = double(n);
    if (c_nlogn == 0.0) {
      c_nlogn = tf / (nd * std::log2(nd));
      c_nlog2n = tf / (nd * std::pow(std::log2(nd), 2));
    }
    std::printf("%8td %10.3f %12.3f %12.3f %12.4f\n", n, tf,
                c_nlogn * nd * std::log2(nd),
                c_nlog2n * nd * std::pow(std::log2(nd), 2), tsolve);
  }
  std::printf("\nExpected shape: Tf tracks the NlogN column and falls "
              "increasingly below\nthe Nlog2N column (paper: blue curve on "
              "the yellow ideal, below purple).\n");

  // ---- Strong scaling (#18) -------------------------------------------
  const index_t n = std::min<index_t>(nmax, 8192);
  bench::print_header(
      "Figure 4 (#18): strong scaling, fixed N, mpisim rank sweep.\n"
      "Single-core container: the distributed CODE PATH is exercised; "
      "physical\nspeedup requires real cores (paper: 62% at 3,072 Haswell "
      "cores).");
  data::Dataset ds = data::make_synthetic(data::SyntheticKind::Normal, n,
                                          502);
  askit::AskitConfig acfg;
  acfg.leaf_size = 256;
  acfg.max_rank = 64;
  acfg.tol = 0.0;
  acfg.num_neighbors = 0;
  acfg.seed = 23;
  askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.8), acfg);
  core::SolverOptions so;
  so.lambda = 1.0;
  auto u = bench::random_rhs(n, 8);

  std::printf("%6s %10s %12s\n", "p", "Tf(s)", "work-eff(%)");
  double t1 = 0.0;
  for (int p : {1, 2, 4, 8}) {
    double tf = 0.0;
    if (p == 1) {
      core::FastDirectSolver solver(h, so);
      tf = solver.factor_seconds();
    } else {
      std::mutex mu;
      mpisim::run(p, [&](mpisim::Comm& comm) {
        core::DistributedSolver dsv(h, so, comm);
        (void)dsv.solve(u);
        if (comm.rank() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          tf = dsv.factor_seconds();
        }
      });
    }
    if (p == 1) t1 = tf;
    // Work efficiency: serial time / (p * per-rank wall time) on one
    // physical core equals t1/tf when ranks time-share the core.
    std::printf("%6d %10.3f %12.1f\n", p, tf, 100.0 * t1 / tf);
  }
  bench::write_bench_json("fig4_scaling",
                          {obs::kv("nmax", static_cast<long long>(nmax))});
  return 0;
}
