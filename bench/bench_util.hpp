// Shared helpers for the benchmark harnesses: wall-clock timing, random
// right-hand sides, and dataset shortcuts. Every bench binary reproduces
// one table or figure of the paper; absolute numbers differ from the
// paper's cluster hardware, the *shape* (who wins, by what factor, where
// crossovers happen) is the reproduction target (see EXPERIMENTS.md).
#pragma once

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "data/generators.hpp"

namespace fdks::bench {

class Timer {
 public:
  Timer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }
  void reset() { t0_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline std::vector<double> random_rhs(la::index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

/// Parse an optional size-scale argument: benches default to laptop
/// sizes; pass a larger N for longer runs.
inline la::index_t arg_n(int argc, char** argv, la::index_t fallback) {
  return argc > 1 ? static_cast<la::index_t>(std::atol(argv[1])) : fallback;
}

inline void print_header(const char* title) {
  std::printf("==============================================================="
              "=========\n%s\n"
              "==============================================================="
              "=========\n",
              title);
}

}  // namespace fdks::bench
