// Shared helpers for the benchmark harnesses: wall-clock timing, random
// right-hand sides, dataset shortcuts, and the machine-readable report.
// Every bench binary reproduces one table or figure of the paper;
// absolute numbers differ from the paper's cluster hardware, the *shape*
// (who wins, by what factor, where crossovers happen) is the
// reproduction target (see EXPERIMENTS.md). Besides the stdout table,
// each binary writes BENCH_<name>.json (config + merged obs timer tree +
// counters) so the timing trajectory is diffable across PRs.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "data/generators.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace fdks::bench {

class Timer {
 public:
  Timer() : t0_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0_)
        .count();
  }
  void reset() { t0_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point t0_;
};

inline std::vector<double> random_rhs(la::index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

/// Parse an optional size-scale argument: benches default to laptop
/// sizes; pass a larger N for longer runs. Malformed or non-positive
/// sizes are a hard error (atol would silently yield N=0 and make the
/// bench report nonsense timings for an empty problem).
inline la::index_t arg_n(int argc, char** argv, la::index_t fallback) {
  if (argc <= 1) return fallback;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(argv[1], &end, 10);
  if (errno != 0 || end == argv[1] || *end != '\0' || v <= 0) {
    std::fprintf(stderr,
                 "invalid size argument '%s': expected a positive integer\n",
                 argv[1]);
    std::exit(2);
  }
  return static_cast<la::index_t>(v);
}

inline void print_header(const char* title) {
  std::printf("==============================================================="
              "=========\n%s\n"
              "==============================================================="
              "=========\n",
              title);
}

/// Turn the obs registry on (cleared) at bench start; FDKS_TRACE=<file>
/// additionally turns on event tracing (exported by write_bench_json).
inline void obs_begin() {
  obs::set_enabled(true);
  obs::reset();
  if (const char* tr = std::getenv("FDKS_TRACE"); tr && *tr) {
    obs::trace::set_enabled(true);
    obs::trace::reset();
  }
}

/// Run `f` under a named top-level phase scope ("setup", ...). Returns
/// f()'s result with guaranteed copy elision, so phases can wrap
/// non-movable constructions: `auto h = phase("setup", [&]{ return
/// askit::HMatrix(...); });`.
template <class F>
decltype(auto) phase(const char* name, F&& f) {
  // fdks-lint: allow(OBS-KEY) generic wrapper; callers pass registered keys
  obs::ScopedTimer t(name);
  return std::forward<F>(f)();
}

/// Write BENCH_<name>.json in the working directory from the current
/// obs snapshot and announce it on stdout. Peak process memory is
/// stamped in as mem.peak_rss_bytes so the regression gate can watch
/// footprint alongside work counters. With FDKS_TRACE=<file.json> in
/// the environment and tracing enabled, the event trace is exported
/// alongside the metrics.
inline void write_bench_json(const char* name,
                             std::vector<obs::ConfigKV> config = {}) {
  obs::Snapshot snap = obs::snapshot();
  const double peak = static_cast<double>(obs::peak_rss_bytes());
  if (peak > 0.0) snap.counters["mem.peak_rss_bytes"] = peak;
  const std::string path = std::string("BENCH_") + name + ".json";
  if (obs::write_json(path, name, config, snap))
    std::printf("\n[obs] wrote %s\n", path.c_str());
  if (const char* tr = std::getenv("FDKS_TRACE"); tr && *tr)
    if (obs::trace::enabled() && obs::trace::write_chrome_trace(tr))
      std::printf("[obs] wrote trace %s\n", tr);
}

}  // namespace fdks::bench
