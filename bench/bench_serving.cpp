// Serving-path benchmark: batched multi-RHS throughput, request
// latency, and overload behavior through the factor cache + admission
// queue (src/serve).
//
//   ./bench_serving [N] [mode] [arrival_us]
//
// Part 1 (always): the headline batching claim — 64 right-hand sides
// solved as ONE blocked solve versus the same 64 solved sequentially
// through the scalar path. The block path streams every factor matrix
// once per batch instead of once per RHS; the speedup is stamped into
// the report as serve.batch_speedup.
//
// Part 2, mode "smoke" (default): deterministic closed-loop serving —
// the engine starts paused, a fixed burst of requests is enqueued, and
// resume() drains it in maximal batches. Then a deterministic overload
// pass: a paused engine with queue_max = 64 is offered 128 requests,
// so EXACTLY 64 are admitted and 64 shed with ServeError(Overloaded).
// Batch composition and shed counts are exactly reproducible, which is
// what makes the serve.* counters (including serve.shed) gateable by
// scripts/bench_compare.py.
//
// Part 4, mode "smoke" (gated with Part 2/3): certified serving — a
// paused engine with VerifyPolicy::Always certifies one deterministic
// 16-wide batch against the factorization-independent Treecode operator
// at a target (1e-8) far below the skeleton gap (~5e-3 at tol 1e-5), so
// every column walks the FULL ladder: first check fails, the default 3
// refinement steps contract ~12x each (ending ~2e-6, decisively above
// target), and the GMRES rung certifies. verify.checks/fail (16 each),
// refine.steps (48) and refine.escalations (16) become exact, gateable
// counters in BENCH_serving.json.
//
// Part 2, mode "open": open-loop arrival — requests are submitted with
// a fixed inter-arrival gap (arrival_us microseconds, default 500)
// while the engine runs, so batch sizes form from actual queueing.
//
// Part 2, mode "overload": open-loop arrival against a BOUNDED queue
// (queue_max = 16, degrade watermark 0.75) at an aggressive default
// gap (arrival_us default 100), driving the engine past saturation.
// Reports the shed rate and the p99 latency of the requests that were
// admitted — the two numbers that characterize behavior at saturation.
//
// Part 5, mode "smoke" (gated): the telemetry-overhead row. Three
// paused 64-request bursts per arm — telemetry off, then on (event
// log + SLO tracker + tail-trace sampling with tracing live + scrape
// endpoint) — compared by min-of-3 burst wall time. The on/off ratio
// is asserted (<= 1.05, relaxed to 1.5 below a 10 ms floor where the
// clock tick dominates) and stamped, clamped to [0, 10], as
// serve.telemetry_overhead_pct, locking in the cheap-when-idle claim
// under the regression gate. The same part scrapes the live exporter
// and asserts the exposition carries every registered serve.* key,
// that each on-burst request logged exactly its three lifecycle
// events, and that a tail-kept trace renders a request_id flow.
//
// "open" and "overload" are NOT regression-gated (their composition is
// scheduling-dependent); run them by hand for the EXPERIMENTS.md
// serving protocol.
//
// Reported: p50/p99 request latency (serve.request_seconds, v3
// histogram schema), batch-size distribution, shed/degraded tallies,
// the batched-vs-sequential speedup, and the telemetry overhead.
#include "bench_util.hpp"
#include "obs/eventlog.hpp"
#include "obs/export.hpp"
#include "obs/keys.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/factor_cache.hpp"
#include "serve/slo.hpp"
#include "serve/tail_trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace fdks;
using la::index_t;

int main(int argc, char** argv) {
  const index_t n = bench::arg_n(argc, argv, 4096);
  const char* mode = argc > 2 ? argv[2] : "smoke";
  const bool open_loop = std::strcmp(mode, "open") == 0;
  const bool overload = std::strcmp(mode, "overload") == 0;
  long arrival_us = overload ? 100 : 500;
  if (argc > 3) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(argv[3], &end, 10);
    if (errno != 0 || end == argv[3] || *end != '\0' || v < 0) {
      std::fprintf(stderr, "invalid arrival_us '%s'\n", argv[3]);
      return 2;
    }
    arrival_us = v;
  }
  constexpr index_t kBatch = 64;
  constexpr index_t kRequests = 128;

  bench::obs_begin();
  bench::print_header(
      "Serving path: factor cache + batched multi-RHS admission queue.\n"
      "Batched B=64 solve vs 64 sequential solves, then request latency\n"
      "and overload shedding through the ServeEngine.");

  data::Dataset ds =
      data::make_synthetic(data::SyntheticKind::Normal, n, 17);
  askit::AskitConfig acfg;
  acfg.leaf_size = 128;
  acfg.max_rank = 64;
  acfg.tol = 1e-5;
  acfg.num_neighbors = 0;
  acfg.seed = 17;
  auto h = bench::phase("setup", [&] {
    return askit::HMatrix(ds.points, kernel::Kernel::gaussian(0.8), acfg);
  });

  core::SolverOptions so;
  so.lambda = 1.0;
  // Serving configuration: GSKS V-blocks (O(1) persistent storage per
  // operator, Table IV). A long-lived factor cache holds many
  // factorizations, so the memory-lean scheme is the deployed choice —
  // and it is exactly where batching pays most, since the per-apply
  // kernel evaluation is shared by the whole block.
  so.scheme = kernel::Scheme::Gsks;
  serve::FactorCache cache(2);
  auto solver = cache.get(h, so);  // Miss: factorizes.
  cache.get(h, so);                // Hit: reuses the factors.

  // ---- Part 1: batched vs sequential, same 64 right-hand sides. ----
  la::Matrix u(n, kBatch);
  for (index_t j = 0; j < kBatch; ++j) {
    const auto col = bench::random_rhs(n, 100 + static_cast<uint64_t>(j));
    std::copy(col.begin(), col.end(), u.col(j));
  }

  bench::Timer t_seq;
  la::Matrix x_seq(n, kBatch);
  for (index_t j = 0; j < kBatch; ++j)
    solver->solve(
        std::span<const double>(u.col(j), static_cast<size_t>(n)),
        std::span<double>(x_seq.col(j), static_cast<size_t>(n)));
  const double sec_seq = t_seq.seconds();

  bench::Timer t_blk;
  la::Matrix x_blk = solver->solve(u);
  const double sec_blk = t_blk.seconds();

  const double diff = la::max_abs_diff(x_seq, x_blk);
  const double speedup = sec_blk > 0.0 ? sec_seq / sec_blk : 0.0;
  obs::add("serve.batch_speedup", speedup);
  std::printf(
      "B=%td RHS    : sequential %8.4fs   batched %8.4fs   speedup "
      "%5.2fx   max|dx| %.1e\n",
      kBatch, sec_seq, sec_blk, speedup, diff);

  // ---- Part 2: request latency through the admission queue. ----
  serve::ServeOptions sopts;
  sopts.batch_max = kBatch;
  sopts.start_paused = !(open_loop || overload);
  if (overload) {
    sopts.queue_max = 16;
    sopts.degrade_watermark = 0.75;
  }
  serve::ServeEngine engine(solver, sopts);

  std::vector<std::future<serve::ServeResult>> futs;
  futs.reserve(static_cast<size_t>(kRequests));
  index_t shed = 0;
  for (index_t r = 0; r < kRequests; ++r) {
    try {
      futs.push_back(engine.submit(
          bench::random_rhs(n, 500 + static_cast<uint64_t>(r))));
    } catch (const serve::ServeError&) {
      ++shed;  // Overloaded: counted, not retried (open-loop client).
    }
    if (open_loop || overload)
      std::this_thread::sleep_for(std::chrono::microseconds(arrival_us));
  }
  if (sopts.start_paused) engine.resume();
  index_t degraded = 0;
  for (auto& f : futs) {
    try {
      if (f.get().degraded()) ++degraded;
    } catch (const serve::ServeError&) {
      ++shed;  // Expired in queue: also a saturation casualty.
    }
  }
  engine.drain();

  // ---- Part 3 (smoke only): deterministic overload shedding. ----
  // A paused engine with queue_max = 64 offered 128 requests admits
  // exactly 64 and sheds exactly 64 — a closed-loop fixture that makes
  // serve.shed a gateable counter rather than a timing artifact.
  if (!open_loop && !overload) {
    serve::ServeOptions ov;
    ov.batch_max = kBatch;
    ov.queue_max = static_cast<size_t>(kBatch);
    ov.start_paused = true;
    serve::ServeEngine bounded(solver, ov);
    std::vector<std::future<serve::ServeResult>> admitted;
    index_t rejected = 0;
    for (index_t r = 0; r < kRequests; ++r) {
      try {
        admitted.push_back(bounded.submit(
            bench::random_rhs(n, 900 + static_cast<uint64_t>(r))));
      } catch (const serve::ServeError&) {
        ++rejected;
      }
    }
    bounded.resume();
    for (auto& f : admitted) (void)f.get();
    bounded.drain();
    std::printf(
        "overload    : offered %td, admitted %zu, shed %td "
        "(queue_max %td)\n",
        kRequests, admitted.size(), rejected, kBatch);
  }

  // ---- Part 4 (smoke only): certified serving, deterministically. ----
  // One paused 16-wide batch under VerifyPolicy::Always against the
  // Treecode operator. The factor inverts apply() to roundoff but sits
  // ~5e-3 from apply_source() here, and each refinement step contracts
  // the residual by only ~12x — so every column fails the 1e-8 target,
  // exhausts the default 3 refinement steps well above it (~2e-6), and
  // is certified by the GMRES rung. Every rung fires a fixed number of
  // times: the verify.*/refine.* counters are exact, not timing
  // artifacts.
  if (!open_loop && !overload) {
    constexpr index_t kVerifyBatch = 16;
    serve::ServeOptions vo;
    vo.batch_max = kVerifyBatch;
    vo.start_paused = true;
    vo.verify.mode = core::VerifyMode::Always;
    vo.verify.op = core::VerifyPolicy::Operator::Treecode;
    vo.verify.target_residual = 1e-8;
    serve::ServeEngine certified(solver, vo);
    std::vector<std::future<serve::ServeResult>> vfuts;
    for (index_t r = 0; r < kVerifyBatch; ++r)
      vfuts.push_back(certified.submit(
          bench::random_rhs(n, 1300 + static_cast<uint64_t>(r))));
    certified.resume();
    double worst = 0.0;
    for (auto& f : vfuts) {
      const double r = f.get().residual;
      if (r > worst) worst = r;
    }
    certified.drain();
    const serve::ServeEngine::Stats vs = certified.stats();
    std::printf(
        "verify      : %llu certified (worst residual %.1e), %llu "
        "refined, %llu escalated, %llu failed\n",
        static_cast<unsigned long long>(vs.verified), worst,
        static_cast<unsigned long long>(vs.refined),
        static_cast<unsigned long long>(vs.escalated),
        static_cast<unsigned long long>(vs.failed));
  }

  // ---- Part 5 (smoke only): telemetry overhead + live scrape. ----
  // The whole live-telemetry stack (event log, SLO tracker, tail-trace
  // sampling with tracing enabled, scrape endpoint) against the same
  // burst with it all off. Deterministic side effects feed the gate:
  // 3 bursts x 64 requests x 3 lifecycle events = 576 event-log lines,
  // 4 kept traces per fresh sampler (within one batch latency decreases
  // with submission order, so after the budget fills no later request
  // beats the slowest four), and exactly 2 scrapes.
  bool telemetry_ok = true;
  if (!open_loop && !overload) {
    constexpr index_t kBurst = 64;
    constexpr int kRepeats = 3;
    auto run_burst = [&](const serve::ServeOptions& topts,
                         uint64_t seed_base) {
      serve::ServeEngine e2(solver, topts);
      std::vector<std::future<serve::ServeResult>> fs;
      fs.reserve(static_cast<size_t>(kBurst));
      for (index_t r = 0; r < kBurst; ++r)
        fs.push_back(e2.submit(
            bench::random_rhs(n, seed_base + static_cast<uint64_t>(r))));
      bench::Timer t;
      e2.resume();
      for (auto& f : fs) (void)f.get();
      const double sec = t.seconds();
      e2.drain();
      return sec;
    };

    serve::ServeOptions off;
    off.batch_max = kBurst;
    off.start_paused = true;
    double sec_off = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const double s =
          run_burst(off, 1700 + 100 * static_cast<uint64_t>(rep));
      sec_off = rep == 0 ? s : std::min(sec_off, s);
    }

    auto event_log = std::make_shared<obs::EventLog>();  // Counting sink.
    auto slo = std::make_shared<serve::SloTracker>([] {
      serve::SloOptions s;
      s.p99_target_seconds = 60.0;  // Generous: never degrades the arm.
      return s;
    }());
    obs::trace::set_enabled(true);
    obs::trace::reset();
    obs::Sampler sampler([] {
      obs::SamplerOptions s;
      s.interval = std::chrono::milliseconds(200);
      return s;
    }());
    obs::MetricsExporterOptions mo;
    mo.render.sampler = &sampler;
    obs::MetricsExporter exporter(mo);

    double sec_on = 0.0;
    std::shared_ptr<serve::TailTraceSampler> last_tail;
    for (int rep = 0; rep < kRepeats; ++rep) {
      serve::ServeOptions on = off;
      on.event_log = event_log;
      on.slo = slo;
      // Fresh tail budget per repeat: exactly 4 keeps each.
      last_tail = std::make_shared<serve::TailTraceSampler>();
      on.tail_trace = last_tail;
      const double s =
          run_burst(on, 2300 + 100 * static_cast<uint64_t>(rep));
      sec_on = rep == 0 ? s : std::min(sec_on, s);
    }

    // Live scrape while the process serves: every registered serve.*
    // key must be in the exposition, and the timer tree must carry the
    // serve.batch scope.
    const std::string body = obs::http_get_metrics(exporter.port());
    (void)obs::http_get_metrics(exporter.port());  // scrape #2 (gated).
    for (const obs::keys::KeyInfo& k : obs::keys::kAll) {
      if (k.key.substr(0, 6) != "serve.") continue;
      if (k.kind != obs::keys::Kind::Counter &&
          k.kind != obs::keys::Kind::Gauge &&
          k.kind != obs::keys::Kind::Histogram)
        continue;
      if (body.find(obs::prometheus_metric_name(k.key)) == std::string::npos) {
        std::printf("TELEMETRY FAIL: scrape is missing %.*s\n",
                    static_cast<int>(k.key.size()), k.key.data());
        telemetry_ok = false;
      }
    }
    if (body.find("scope=\"serve.batch\"") == std::string::npos) {
      std::printf("TELEMETRY FAIL: scrape is missing the serve.batch scope\n");
      telemetry_ok = false;
    }

    // Every on-arm request logged admitted + batched + solved.
    const std::uint64_t want_lines =
        static_cast<std::uint64_t>(kRepeats) *
        static_cast<std::uint64_t>(kBurst) * 3;
    if (event_log->lines() != want_lines) {
      std::printf("TELEMETRY FAIL: %llu event lines, expected %llu\n",
                  static_cast<unsigned long long>(event_log->lines()),
                  static_cast<unsigned long long>(want_lines));
      telemetry_ok = false;
    }

    // At least one tail-kept trace whose export renders the request_id
    // flow arrow stamped at submit().
    if (last_tail->kept_count() == 0) {
      std::printf("TELEMETRY FAIL: tail sampler kept no traces\n");
      telemetry_ok = false;
    } else {
      const std::string json =
          obs::trace::chrome_trace_json(last_tail->kept().front().data);
      if (json.find("\"ph\":\"s\"") == std::string::npos) {
        std::printf("TELEMETRY FAIL: kept trace has no flow event\n");
        telemetry_ok = false;
      }
    }
    obs::trace::set_enabled(false);

    const double ratio = sec_off > 0.0 ? sec_on / sec_off : 1.0;
    // Below a 10 ms burst the ratio measures the scheduler, not the
    // telemetry; relax the bound there.
    const double bound = sec_off >= 0.010 ? 1.05 : 1.50;
    const double pct =
        std::clamp((ratio - 1.0) * 100.0, 0.0, 10.0);
    obs::add("serve.telemetry_overhead_pct", pct);
    std::printf(
        "telemetry   : off %8.4fs   on %8.4fs   ratio %.3f (bound %.2f)\n",
        sec_off, sec_on, ratio, bound);
    if (ratio > bound) {
      std::printf("TELEMETRY FAIL: overhead ratio %.3f exceeds %.2f\n",
                  ratio, bound);
      telemetry_ok = false;
    }
  }

  const serve::ServeEngine::Stats es = engine.stats();
  const obs::Snapshot snap = obs::snapshot();
  const auto lat = snap.histograms.find("serve.request_seconds");
  const double p50 =
      lat != snap.histograms.end() ? lat->second.quantile(0.50) : 0.0;
  const double p99 =
      lat != snap.histograms.end() ? lat->second.quantile(0.99) : 0.0;
  std::printf(
      "%-12s: %llu requests in %llu batches (max width %td)\n", mode,
      static_cast<unsigned long long>(es.requests),
      static_cast<unsigned long long>(es.batches), es.max_batch);
  std::printf("latency     : p50 %.4fs   p99 %.4fs\n", p50, p99);
  if (overload) {
    std::printf(
        "saturation  : shed rate %.1f%% (%td of %td), degraded %td, "
        "p99 %.4fs at queue_max %zu\n",
        100.0 * static_cast<double>(shed) / static_cast<double>(kRequests),
        shed, kRequests, degraded, p99, sopts.queue_max);
  } else {
    std::printf(
        "\nExpected shape: the batched solve amortizes factor traffic "
        "across the\nblock, so speedup >> 1 (acceptance floor 3x); "
        "closed-loop batches are\nexactly ceil(%td/%td) = %td.\n",
        kRequests, kBatch, (kRequests + kBatch - 1) / kBatch);
  }

  bench::write_bench_json(
      "serving",
      {obs::kv("n", static_cast<long long>(n)),
       obs::kv("batch_max", static_cast<long long>(kBatch)),
       obs::kv("requests", static_cast<long long>(kRequests)),
       obs::kv("mode", mode)});
  return (diff < 1e-10 && telemetry_ok) ? 0 : 1;
}
