// Serving-path benchmark: batched multi-RHS throughput and request
// latency through the factor cache + admission queue (src/serve).
//
//   ./bench_serving [N] [mode] [arrival_us]
//
// Part 1 (always): the headline batching claim — 64 right-hand sides
// solved as ONE blocked solve versus the same 64 solved sequentially
// through the scalar path. The block path streams every factor matrix
// once per batch instead of once per RHS; the speedup is stamped into
// the report as serve.batch_speedup.
//
// Part 2, mode "smoke" (default): deterministic closed-loop serving —
// the engine starts paused, a fixed burst of requests is enqueued, and
// resume() drains it in maximal batches. Batch composition is exactly
// reproducible (ceil(requests/batch_max) batches), which is what makes
// serve.* counters gateable by scripts/bench_compare.py.
//
// Part 2, mode "open": open-loop arrival — requests are submitted with
// a fixed inter-arrival gap (arrival_us microseconds, default 500)
// while the engine runs, so batch sizes form from actual queueing.
// Latency under load, NOT regression-gated (batch composition is
// scheduling-dependent); run it by hand for the EXPERIMENTS.md
// serving protocol.
//
// Reported: p50/p99 request latency (serve.request_seconds, v2
// histogram schema), batch-size distribution, and the batched-vs-
// sequential speedup.
#include "bench_util.hpp"
#include "serve/engine.hpp"
#include "serve/factor_cache.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <vector>

using namespace fdks;
using la::index_t;

int main(int argc, char** argv) {
  const index_t n = bench::arg_n(argc, argv, 4096);
  const bool open_loop = argc > 2 && std::strcmp(argv[2], "open") == 0;
  long arrival_us = 500;
  if (argc > 3) {
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(argv[3], &end, 10);
    if (errno != 0 || end == argv[3] || *end != '\0' || v < 0) {
      std::fprintf(stderr, "invalid arrival_us '%s'\n", argv[3]);
      return 2;
    }
    arrival_us = v;
  }
  constexpr index_t kBatch = 64;
  constexpr index_t kRequests = 128;

  bench::obs_begin();
  bench::print_header(
      "Serving path: factor cache + batched multi-RHS admission queue.\n"
      "Batched B=64 solve vs 64 sequential solves, then request latency\n"
      "through the ServeEngine.");

  data::Dataset ds =
      data::make_synthetic(data::SyntheticKind::Normal, n, 17);
  askit::AskitConfig acfg;
  acfg.leaf_size = 128;
  acfg.max_rank = 64;
  acfg.tol = 1e-5;
  acfg.num_neighbors = 0;
  acfg.seed = 17;
  auto h = bench::phase("setup", [&] {
    return askit::HMatrix(ds.points, kernel::Kernel::gaussian(0.8), acfg);
  });

  core::SolverOptions so;
  so.lambda = 1.0;
  // Serving configuration: GSKS V-blocks (O(1) persistent storage per
  // operator, Table IV). A long-lived factor cache holds many
  // factorizations, so the memory-lean scheme is the deployed choice —
  // and it is exactly where batching pays most, since the per-apply
  // kernel evaluation is shared by the whole block.
  so.scheme = kernel::Scheme::Gsks;
  serve::FactorCache cache(2);
  auto solver = cache.get(h, so);  // Miss: factorizes.
  cache.get(h, so);                // Hit: reuses the factors.

  // ---- Part 1: batched vs sequential, same 64 right-hand sides. ----
  la::Matrix u(n, kBatch);
  for (index_t j = 0; j < kBatch; ++j) {
    const auto col = bench::random_rhs(n, 100 + static_cast<uint64_t>(j));
    std::copy(col.begin(), col.end(), u.col(j));
  }

  bench::Timer t_seq;
  la::Matrix x_seq(n, kBatch);
  for (index_t j = 0; j < kBatch; ++j)
    solver->solve(
        std::span<const double>(u.col(j), static_cast<size_t>(n)),
        std::span<double>(x_seq.col(j), static_cast<size_t>(n)));
  const double sec_seq = t_seq.seconds();

  bench::Timer t_blk;
  la::Matrix x_blk = solver->solve(u);
  const double sec_blk = t_blk.seconds();

  const double diff = la::max_abs_diff(x_seq, x_blk);
  const double speedup = sec_blk > 0.0 ? sec_seq / sec_blk : 0.0;
  obs::add("serve.batch_speedup", speedup);
  std::printf(
      "B=%td RHS    : sequential %8.4fs   batched %8.4fs   speedup "
      "%5.2fx   max|dx| %.1e\n",
      kBatch, sec_seq, sec_blk, speedup, diff);

  // ---- Part 2: request latency through the admission queue. ----
  serve::ServeOptions sopts;
  sopts.batch_max = kBatch;
  sopts.start_paused = !open_loop;
  serve::ServeEngine engine(solver, sopts);

  std::vector<std::future<std::vector<double>>> futs;
  futs.reserve(static_cast<size_t>(kRequests));
  for (index_t r = 0; r < kRequests; ++r) {
    futs.push_back(
        engine.submit(bench::random_rhs(n, 500 + static_cast<uint64_t>(r))));
    if (open_loop)
      std::this_thread::sleep_for(std::chrono::microseconds(arrival_us));
  }
  if (!open_loop) engine.resume();
  for (auto& f : futs) f.get();
  engine.drain();

  const serve::ServeEngine::Stats es = engine.stats();
  const obs::Snapshot snap = obs::snapshot();
  const auto lat = snap.histograms.find("serve.request_seconds");
  const double p50 =
      lat != snap.histograms.end() ? lat->second.quantile(0.50) : 0.0;
  const double p99 =
      lat != snap.histograms.end() ? lat->second.quantile(0.99) : 0.0;
  std::printf(
      "%-12s: %llu requests in %llu batches (max width %td)\n",
      open_loop ? "open-loop" : "closed-loop",
      static_cast<unsigned long long>(es.requests),
      static_cast<unsigned long long>(es.batches), es.max_batch);
  std::printf("latency     : p50 %.4fs   p99 %.4fs\n", p50, p99);
  std::printf(
      "\nExpected shape: the batched solve amortizes factor traffic "
      "across the\nblock, so speedup >> 1 (acceptance floor 3x); "
      "closed-loop batches are\nexactly ceil(%td/%td) = %td.\n",
      kRequests, kBatch, (kRequests + kBatch - 1) / kBatch);

  bench::write_bench_json(
      "serving",
      {obs::kv("n", static_cast<long long>(n)),
       obs::kv("batch_max", static_cast<long long>(kBatch)),
       obs::kv("requests", static_cast<long long>(kRequests)),
       obs::kv("mode", open_loop ? "open" : "smoke")});
  return diff < 1e-10 ? 0 : 1;
}
