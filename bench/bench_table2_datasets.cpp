// Table II reproduction: the dataset inventory with kernel ridge
// regression accuracy at the selected (h, lambda).
//
// The paper trains on the real COVTYPE/SUSY/MNIST/HIGGS sets with up to
// 10.5M points and reports holdout accuracy (96%, 78%, 100%, 73%).
// Here the synthetic stand-ins (matched d and intrinsic dimension, see
// DESIGN.md) are trained at laptop scale; the reproduction target is the
// ordering: covtype-like and mnist-like are near-perfectly learnable,
// susy-like sits in the high 70s-80s, higgs-like near the low 70s.
#include "bench_util.hpp"
#include "data/preprocess.hpp"
#include "krr/krr.hpp"

#include <cstdio>
#include <vector>

using namespace fdks;
using data::SyntheticKind;
using la::index_t;

namespace {

struct Row {
  SyntheticKind kind;
  index_t n;          // Scaled from the paper's N.
  double h;           // Bandwidth after cross-validation (paper Table II).
  double lambda;
  const char* paper_n;
  const char* paper_acc;
};

}  // namespace

int main(int argc, char** argv) {
  const index_t scale = bench::arg_n(argc, argv, 3000);
  bench::obs_begin();
  bench::print_header(
      "Table II: datasets and kernel ridge regression accuracy.\n"
      "Synthetic stand-ins at laptop scale; paper columns quoted for "
      "reference.");

  const std::vector<Row> rows = {
      {SyntheticKind::CovtypeLike, scale, 3.0, 0.3, "0.1-0.5M", "96%"},
      {SyntheticKind::SusyLike, scale, 1.5, 1.0, "4.5M", "78%"},
      {SyntheticKind::MnistLike, scale / 2, 6.0, 0.1, "1.6M", "100%"},
      {SyntheticKind::HiggsLike, scale, 1.5, 0.1, "10.5M", "73%"},
  };

  std::printf("%-14s %8s %5s %6s %8s | %10s %9s | %9s %9s\n", "dataset", "N",
              "d", "h", "lambda", "paper N", "paper Acc", "Acc", "resid");
  for (const Row& r : rows) {
    data::Dataset ds = data::make_synthetic(r.kind, r.n, 101);
    auto [train, test] = data::train_test_split(ds, 0.2, 102);

    krr::KrrConfig cfg;
    cfg.bandwidth = r.h;
    cfg.lambda = r.lambda;
    cfg.askit.leaf_size = 128;
    cfg.askit.max_rank = 96;
    cfg.askit.tol = 1e-5;
    cfg.askit.num_neighbors = 0;
    cfg.askit.seed = 7;
    // Library timers (tree/knn/skeletonize, factorize) nest under this.
    auto model = bench::phase(
        "train", [&] { return krr::KernelRidge(train, cfg); });

    std::printf("%-14s %8td %5td %6.2f %8.3f | %10s %9s | %8.1f%% %9.1e\n",
                data::kind_name(r.kind), train.n(), ds.dim(), r.h, r.lambda,
                r.paper_n, r.paper_acc, 100.0 * model.accuracy(test),
                model.train_residual());
  }

  // The two unlabeled sets from Table II, reported for completeness.
  for (SyntheticKind k : {SyntheticKind::MriLike, SyntheticKind::Normal}) {
    data::Dataset ds = data::make_synthetic(k, scale, 103);
    std::printf("%-14s %8td %5td %6s %8s | %10s %9s | %9s %9s\n",
                data::kind_name(k), ds.n(), ds.dim(), "-", "-",
                k == SyntheticKind::MriLike ? "3.2M" : "1-32M", "-", "-",
                "-");
  }
  bench::write_bench_json("table2_datasets",
                          {obs::kv("scale", static_cast<long long>(scale))});
  return 0;
}
