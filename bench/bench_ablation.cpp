// Ablation studies for the design choices DESIGN.md calls out:
//
//   A. compact-W storage (§III "recomputing W with (10)"): factor memory
//      versus solve-time cost.
//   B. lambda re-factorization: reuse of the stored V kernel blocks
//      across a cross-validation lambda sweep versus fresh factorization.
//   C. factorization-as-preconditioner: GMRES iterations on the EXACT
//      kernel system as a function of the compression tolerance tau,
//      against the unpreconditioned baseline.
//   D. skeleton-sampling neighbours: exact O(N^2 d) kNN versus the
//      randomized-projection forest, build time and downstream solver
//      accuracy.
#include "bench_util.hpp"
#include "core/preconditioned.hpp"
#include "core/solver.hpp"
#include "data/preprocess.hpp"
#include "knn/rp_tree.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace fdks;
using la::index_t;

int main(int argc, char** argv) {
  const index_t n = bench::arg_n(argc, argv, 8192);
  bench::obs_begin();

  // ---- A: compact-W storage --------------------------------------------
  bench::print_header("Ablation A: dense P^ storage vs compact-W "
                      "telescoping stencils (§III)");
  std::printf("%8s %10s %12s %12s %12s %12s\n", "N", "mode", "factor(s)",
              "mem(MB)", "solve(s)", "residual");
  for (index_t nn = n / 4; nn <= n; nn *= 2) {
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::Normal, nn, 701);
    askit::AskitConfig acfg;
    acfg.leaf_size = 256;
    acfg.max_rank = 96;
    acfg.tol = 1e-5;
    acfg.num_neighbors = 0;
    auto h = bench::phase("setup", [&] {
      return askit::HMatrix(ds.points, kernel::Kernel::gaussian(0.8), acfg);
    });
    auto u = bench::random_rhs(nn, 1);
    for (bool compact : {false, true}) {
      core::SolverOptions so;
      so.lambda = 1.0;
      so.compact_w = compact;
      so.scheme = kernel::Scheme::Gsks;  // Matrix-free V isolates P^ mem.
      core::FastDirectSolver solver(h, so);
      std::vector<double> x(static_cast<size_t>(nn));
      solver.solve(u, x);  // Warm.
      bench::Timer t;
      solver.solve(u, x);
      std::printf("%8td %10s %12.3f %12.1f %12.4f %12.2e\n", nn,
                  compact ? "compact" : "dense", solver.factor_seconds(),
                  double(solver.factor_bytes()) / 1048576.0, t.seconds(),
                  h.relative_residual(x, u, 1.0));
    }
  }

  // ---- B: lambda re-factorization --------------------------------------
  bench::print_header("Ablation B: cross-validation lambda sweep — fresh "
                      "factorization vs refactorize()");
  {
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::CovtypeLike, n / 2, 702);
    askit::AskitConfig acfg;
    acfg.leaf_size = 128;
    acfg.max_rank = 96;
    acfg.tol = 1e-5;
    acfg.num_neighbors = 0;
    askit::HMatrix h(ds.points, kernel::Kernel::gaussian(3.0), acfg);
    const std::vector<double> lambdas = {10.0, 1.0, 0.1, 0.01};

    bench::Timer t_fresh;
    for (double lam : lambdas) {
      core::SolverOptions so;
      so.lambda = lam;
      core::FastDirectSolver solver(h, so);
    }
    const double fresh = t_fresh.seconds();

    core::SolverOptions so;
    so.lambda = lambdas[0];
    core::FastDirectSolver solver(h, so);
    bench::Timer t_reuse;
    for (double lam : lambdas) solver.refactorize(lam);
    const double reuse = t_reuse.seconds();
    std::printf("N=%td, %zu lambdas: fresh=%.2fs  refactorize=%.2fs  "
                "speedup=%.2fx\n",
                n / 2, lambdas.size(), fresh, reuse, fresh / reuse);
  }

  // ---- C: preconditioned exact solve vs tau ----------------------------
  bench::print_header("Ablation C: GMRES on the EXACT system, "
                      "factorization as right preconditioner");
  {
    const index_t ne = std::min<index_t>(n / 2, 4096);
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::Normal, ne, 703);
    auto u = bench::random_rhs(ne, 3);
    // Small lambda => ill-conditioned exact system: unpreconditioned
    // GMRES grinds, the preconditioned iteration count stays flat.
    const double lambda = 1e-3;
    std::printf("%10s %8s %12s %14s\n", "tau", "iters", "time(s)",
                "exact resid");
    for (double tau : {1e-2, 1e-4, 1e-6}) {
      askit::AskitConfig acfg;
      acfg.leaf_size = 256;
      acfg.max_rank = 128;
      acfg.tol = tau;
      acfg.num_neighbors = 0;
      askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.8), acfg);
      core::SolverOptions so;
      so.lambda = lambda;
      core::FastDirectSolver m(h, so);
      iter::GmresOptions go;
      go.rtol = 1e-12;
      go.max_iters = 120;
      bench::Timer t;
      auto r = core::solve_exact_preconditioned(h, m, u, go);
      std::printf("%10.0e %8d %12.2f %14.2e\n", tau, r.gmres.iterations,
                  t.seconds(), r.exact_residual);
    }
    {
      askit::AskitConfig acfg;
      acfg.leaf_size = 256;
      acfg.max_rank = 128;
      acfg.tol = 1e-4;
      acfg.num_neighbors = 0;
      askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.8), acfg);
      iter::GmresOptions go;
      go.rtol = 1e-12;
      go.max_iters = 120;
      bench::Timer t;
      auto r = core::solve_exact_unpreconditioned(h, lambda, u, go);
      std::printf("%10s %8d %12.2f %14.2e  (unpreconditioned baseline)\n",
                  "-", r.gmres.iterations, t.seconds(), r.exact_residual);
    }
  }

  // ---- D: exact vs approximate neighbour sampling -----------------------
  bench::print_header("Ablation D: skeleton sampling with exact kNN vs "
                      "randomized-projection forest");
  {
    const index_t nd = std::min<index_t>(n, 8192);
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::CovtypeLike, nd, 704);
    auto u = bench::random_rhs(nd, 5);
    std::printf("%10s %12s %12s %12s\n", "neighbors", "build(s)",
                "factor(s)", "residual");
    struct Mode {
      const char* name;
      index_t kappa;
      bool approx;
    };
    for (Mode mode : {Mode{"none", 0, false}, Mode{"exact", 16, false},
                      Mode{"rp-forest", 16, true}}) {
      askit::AskitConfig acfg;
      acfg.leaf_size = 128;
      acfg.max_rank = 96;
      acfg.tol = 1e-5;
      acfg.num_neighbors = mode.kappa;
      acfg.approx_neighbors = mode.approx;
      bench::Timer tb;
      askit::HMatrix h(ds.points, kernel::Kernel::gaussian(3.0), acfg);
      const double build = tb.seconds();
      core::SolverOptions so;
      so.lambda = 1.0;
      core::FastDirectSolver solver(h, so);
      std::vector<double> x(static_cast<size_t>(nd));
      solver.solve(u, x);
      std::printf("%10s %12.2f %12.2f %12.2e\n", mode.name, build,
                  solver.factor_seconds(), h.relative_residual(x, u, 1.0));
    }
  }

  // ---- E: leaf factorization kernel (LU vs SPD Cholesky) ----------------
  bench::print_header("Ablation E: leaf blocks via partial-pivot LU vs "
                      "SPD Cholesky (lambda > 0 => SPD)");
  {
    const index_t ne = std::min<index_t>(n, 8192);
    data::Dataset ds =
        data::make_synthetic(data::SyntheticKind::Normal, ne, 705);
    askit::AskitConfig acfg;
    acfg.leaf_size = 512;  // Large leaves: the leaf factorization
    acfg.max_rank = 64;    // dominates, exposing the 2x flop gap.
    acfg.tol = 1e-5;
    acfg.num_neighbors = 0;
    askit::HMatrix h(ds.points, kernel::Kernel::gaussian(0.8), acfg);
    auto u = bench::random_rhs(ne, 7);
    std::printf("%10s %12s %12s\n", "leaf", "factor(s)", "residual");
    for (bool spd : {false, true}) {
      core::SolverOptions so;
      so.lambda = 1.0;
      so.spd_leaves = spd;
      core::FastDirectSolver solver(h, so);
      std::vector<double> x(static_cast<size_t>(ne));
      solver.solve(u, x);
      std::printf("%10s %12.2f %12.2e\n", spd ? "cholesky" : "lu",
                  solver.factor_seconds(), h.relative_residual(x, u, 1.0));
    }
  }
  bench::write_bench_json("ablation",
                          {obs::kv("n", static_cast<long long>(n))});
  return 0;
}
