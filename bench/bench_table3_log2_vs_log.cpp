// Table III reproduction: factorization time of the O(N log^2 N)
// INV-ASKIT baseline [36] versus this paper's O(N log N) telescoped
// algorithm, across datasets/bandwidths and adaptive-rank tolerances
// tau in {1e-1, 1e-3, 1e-5}.
//
// Paper (3,072 cores, N up to 32M): speedups of 2-4x, growing with N
// because the gap is the extra log factor. At laptop N the expected gap
// is smaller but must be consistently >= 1 and grow with N (see
// bench_fig4 for the growth trend). Both algorithms build the identical
// factorization, so only time differs.
#include "bench_util.hpp"
#include "core/solver.hpp"
#include "data/preprocess.hpp"

#include <cstdio>
#include <vector>

using namespace fdks;
using data::SyntheticKind;
using la::index_t;

namespace {

struct Row {
  int id;
  SyntheticKind kind;
  double h;
  index_t n;
};

double factor_time(const askit::HMatrix& h, core::FactorizationAlgo algo) {
  core::SolverOptions opts;
  opts.lambda = 1.0;
  opts.algo = algo;
  core::FastDirectSolver solver(h, opts);
  return solver.factor_seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const index_t base = bench::arg_n(argc, argv, 4096);
  bench::obs_begin();
  bench::print_header(
      "Table III: factorization time (s), [36] O(N log^2 N) vs ours "
      "O(N log N),\nadaptive rank via tau. Paper speedup 2-4x at "
      "cluster scale; same-factorization\nguarantee is tested in "
      "tests/solver_test.cpp.");

  // The paper's ten rows, with each dataset replaced by its stand-in at
  // laptop N (MNIST-like capped: d=784 kernel evaluations dominate).
  const std::vector<Row> rows = {
      {1, SyntheticKind::CovtypeLike, 3.0, base},
      {2, SyntheticKind::CovtypeLike, 0.5, base},
      {3, SyntheticKind::SusyLike, 2.0, base},
      {4, SyntheticKind::SusyLike, 0.3, base},
      {5, SyntheticKind::MnistLike, 6.0, base / 4},
      {6, SyntheticKind::MnistLike, 1.0, base / 4},
      {7, SyntheticKind::HiggsLike, 2.0, base},
      {8, SyntheticKind::HiggsLike, 0.9, base},
      {9, SyntheticKind::Normal, 1.0, base},
      {10, SyntheticKind::Normal, 0.2, base},
  };
  const std::vector<double> taus = {1e-1, 1e-3, 1e-5};

  std::printf("%3s %-14s %5s %7s |", "#", "dataset", "h", "N");
  for (double t : taus) std::printf("  tau=%-6.0e log2   log  spdup |", t);
  std::printf("\n");

  for (const Row& r : rows) {
    data::Dataset ds = data::make_synthetic(r.kind, r.n, 201);
    std::printf("%3d %-14s %5.2f %7td |", r.id, data::kind_name(r.kind), r.h,
                r.n);
    for (double tau : taus) {
      askit::AskitConfig acfg;
      acfg.leaf_size = 256;
      acfg.max_rank = 256;
      acfg.tol = tau;
      acfg.num_neighbors = 0;
      acfg.seed = 11;
      auto h = bench::phase("setup", [&] {
        return askit::HMatrix(ds.points, kernel::Kernel::gaussian(r.h), acfg);
      });
      const double t_log2 =
          factor_time(h, core::FactorizationAlgo::Subtree);
      const double t_log =
          factor_time(h, core::FactorizationAlgo::Telescoped);
      std::printf("       %7.2f %6.2f %6.2f |", t_log2, t_log,
                  t_log2 / t_log);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape (paper Table III): log column < log2 column "
              "everywhere;\nruntime grows with rank (smaller tau, smaller h "
              "=> larger s => slower).\n");
  bench::write_bench_json("table3_log2_vs_log",
                          {obs::kv("base_n", static_cast<long long>(base))});
  return 0;
}
