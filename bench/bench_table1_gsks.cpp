// Table I reproduction: Gaussian kernel-summation efficiency, reference
// (materialize the block, then GEMV — the paper's "MKL+VML" scheme)
// versus the fused matrix-free GSKS scheme, across problem sizes and
// dimensions d in {4, 20, 36, 68, 132, 260}.
//
// The paper reports GFLOPS on 16K/8K/4K blocks on Haswell and KNL; here
// sizes are scaled to a single-core container (4K/2K/1K) and the FLOP
// count is the rank-d Gram update 2*m*n*d, the dominant term both
// schemes share. The reproduction target is the *ratio*: GSKS beats the
// materialize+GEMV reference, and the gap grows as d shrinks (the
// reference becomes memory-bound on the O(mn) block, GSKS never
// materializes it).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "kernel/gsks.hpp"
#include "kernel/kernel_matrix.hpp"
#include "la/gemm.hpp"

using namespace fdks;
using la::index_t;

namespace {

// Reference scheme (eq. 11): K = kernel(GEMM(X^T, X)), y = GEMV(K, u).
double run_reference(const kernel::KernelMatrix& km,
                     std::span<const index_t> rows,
                     std::span<const index_t> cols,
                     std::span<const double> u, std::span<double> y) {
  obs::ScopedTimer scope("reference");
  bench::Timer t;
  la::Matrix block = km.block(rows, cols);
  la::gemv(la::Trans::No, 1.0, block, u, 0.0, y);
  return t.seconds();
}

double run_gsks(const kernel::KernelMatrix& km, std::span<const index_t> rows,
                std::span<const index_t> cols, std::span<const double> u,
                std::span<double> y) {
  obs::ScopedTimer scope("gsks");
  bench::Timer t;
  std::fill(y.begin(), y.end(), 0.0);
  kernel::gsks_apply(km, rows, cols, u, y);
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const index_t base = bench::arg_n(argc, argv, 4096);
  bench::obs_begin();
  bench::print_header(
      "Table I: Gaussian kernel summation GFLOPS (reference = materialize"
      "+GEMV,\n         GSKS = fused matrix-free). Paper: Haswell/KNL 16K/8K/"
      "4K;\n         here: single core, scaled sizes.");

  const std::vector<index_t> dims = {4, 20, 36, 68, 132, 260};
  std::printf("%6s %10s %8s %8s %8s %8s %8s %8s\n", "n", "scheme", "d=4",
              "d=20", "d=36", "d=68", "d=132", "d=260");

  for (index_t n = base; n >= base / 4; n /= 2) {
    std::vector<double> ref_gf(dims.size()), gsks_gf(dims.size());
    for (size_t di = 0; di < dims.size(); ++di) {
      const index_t d = dims[di];
      std::mt19937_64 rng(static_cast<uint64_t>(n * 131 + d));
      la::Matrix pts = la::Matrix::random_gaussian(d, 2 * n, rng);
      kernel::KernelMatrix km(pts, kernel::Kernel::gaussian(2.0));
      std::vector<index_t> rows(static_cast<size_t>(n));
      std::iota(rows.begin(), rows.end(), index_t{0});
      std::vector<index_t> cols(static_cast<size_t>(n));
      std::iota(cols.begin(), cols.end(), n);
      auto u = bench::random_rhs(n, 5);
      std::vector<double> y(static_cast<size_t>(n));

      const double flops = 2.0 * double(n) * double(n) * double(d);
      // Best of 2 runs each, warm cache.
      double tr = 1e30, tg = 1e30;
      for (int rep = 0; rep < 2; ++rep) {
        tr = std::min(tr, run_reference(km, rows, cols, u, y));
        tg = std::min(tg, run_gsks(km, rows, cols, u, y));
      }
      ref_gf[di] = flops / tr / 1e9;
      gsks_gf[di] = flops / tg / 1e9;
    }
    std::printf("%6td %10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", n,
                "reference", ref_gf[0], ref_gf[1], ref_gf[2], ref_gf[3],
                ref_gf[4], ref_gf[5]);
    std::printf("%6td %10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", n, "GSKS",
                gsks_gf[0], gsks_gf[1], gsks_gf[2], gsks_gf[3], gsks_gf[4],
                gsks_gf[5]);
  }
  std::printf(
      "\nExpected shape (paper): GSKS >= reference. Where the margin "
      "peaks depends on\nthe memory hierarchy: the paper's KNL peaked at "
      "small d (MCDRAM-bound block\nwrites); on cache-resident scaled "
      "blocks the margin grows with d instead.\nSee EXPERIMENTS.md.\n");
  bench::write_bench_json("table1_gsks",
                          {obs::kv("base_n", static_cast<long long>(base))});
  return 0;
}
