// Figure 5 reproduction (#28-#39): convergence of (a) unpreconditioned
// GMRES on the ASKIT treecode matvec versus (b) the hybrid solver, for
// lambda = {1e-2, 1e-3, 1e-5} * sigma_1(K~) (condition numbers ~1e2,
// 1e3, 1e5), on four datasets with level restriction.
//
// Expected shape (paper): at kappa <= 1e3 both converge, the hybrid
// faster and steeper; at kappa ~ 1e5 unpreconditioned GMRES stalls
// (flat blue lines) while the hybrid keeps decreasing — except in the
// narrow-bandwidth instability regime (#30), where the factorization's
// stability detector trips and both methods fail.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/hybrid.hpp"
#include "data/preprocess.hpp"
#include "iterative/gmres.hpp"
#include "la/norms.hpp"

using namespace fdks;
using data::SyntheticKind;
using la::index_t;

namespace {

const char* trace_verdict(const std::vector<double>& res, bool converged) {
  if (converged) return "converged";
  // Distinguish a flat stall from steady progress (the paper's blue vs
  // orange behaviour at kappa ~ 1e5): compare the last residual with
  // the residual ~30% of the way in.
  if (res.size() >= 4) {
    const double early = res[res.size() / 3];
    if (res.back() < 0.5 * early) return "decreasing";
  }
  return "STALLED";
}

void print_trace(const char* label, const std::vector<double>& res,
                 const std::vector<double>& times, double setup,
                 bool converged) {
  std::printf("  %-8s setup=%6.2fs  trace(iter:time:residual):", label,
              setup);
  const size_t npts = 6;
  const size_t n = res.size();
  if (n == 0) {
    std::printf(" <no iterations>");
  } else {
    for (size_t k = 0; k < npts; ++k) {
      const size_t i = std::min(n - 1, k * std::max<size_t>(1, n / npts));
      std::printf(" %zu:%.2f:%.1e", i + 1, setup + times[i], res[i]);
      if (i == n - 1) break;
    }
  }
  std::printf("  [%s]\n", trace_verdict(res, converged));
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::arg_n(argc, argv, 4096);
  bench::obs_begin();
  bench::print_header(
      "Figure 5 (#28-#39): GMRES on lambda I + K~ — (a) unpreconditioned "
      "treecode\nmatvec vs (b) hybrid solver. lambda = c * sigma1(K~), "
      "c in {1e-2,1e-3,1e-5}\n=> kappa ~ {1e2, 1e3, 1e5}.");

  struct Case {
    SyntheticKind kind;
    double h;
    index_t n;
    index_t level;
  };
  // Bandwidths chosen so lambda I + K~ is in the paper's regimes on the
  // z-scored synthetic stand-ins (see EXPERIMENTS.md on the bandwidth
  // convention): large enough that K is not the identity, small enough
  // that it is not rank-one.
  const std::vector<Case> cases = {
      {SyntheticKind::CovtypeLike, 3.0, n, 3},
      {SyntheticKind::SusyLike, 0.5, n, 3},
      {SyntheticKind::HiggsLike, 2.0, n, 3},
      {SyntheticKind::MnistLike, 8.0, n / 4, 3},
  };
  const std::vector<double> cs = {1e-2, 1e-3, 1e-5};

  int expnum = 28;
  for (const Case& c : cases) {
    data::Dataset ds = data::make_synthetic(c.kind, c.n, 601);
    bench::Timer setup_timer;
    askit::AskitConfig acfg;
    acfg.leaf_size = 128;
    acfg.max_rank = 128;
    acfg.tol = 1e-5;
    acfg.num_neighbors = 0;
    acfg.level_restriction = c.level;
    acfg.seed = 29;
    auto h = bench::phase("setup", [&] {
      return askit::HMatrix(ds.points, kernel::Kernel::gaussian(c.h), acfg);
    });
    const double t_setup = setup_timer.seconds();

    // sigma_1(K~) via power iteration on the treecode matvec.
    const double sigma1 = la::norm2_estimate_op(
        c.n,
        [&](std::span<const double> x, std::span<double> y) {
          h.apply(x, y, 0.0);
        },
        20);

    auto u = bench::random_rhs(c.n, 11);

    for (double cc : cs) {
      const double lambda = cc * sigma1;
      std::printf("\n#%d %s h=%.2f N=%td lambda=%.3e (kappa~%.0e)\n",
                  expnum++, data::kind_name(c.kind), c.h, c.n, lambda,
                  1.0 / cc);

      // (a) Unpreconditioned GMRES on the source-form treecode matvec.
      {
        iter::GmresOptions go;
        go.rtol = 1e-9;
        go.max_iters = 60;
        go.restart = 60;
        bench::Timer t;
        auto r = iter::gmres(
            c.n,
            [&](std::span<const double> x, std::span<double> y) {
              h.apply_source(x, y, lambda);
            },
            u, go);
        (void)t;
        print_trace("gmres", r.residual_history, r.time_history, t_setup,
                    r.converged);
      }

      // (b) Hybrid solver: factor to the frontier + reduced GMRES.
      // Full (non-restarted) GMRES on the small reduced system: at
      // kappa ~ 1e5 a short restart cycle loses the superlinear phase
      // and stalls, hiding the method's actual behaviour.
      {
        core::HybridOptions ho;
        ho.direct.lambda = lambda;
        ho.gmres.rtol = 1e-9;
        ho.gmres.max_iters = 300;
        ho.gmres.restart = 300;
        bench::Timer tf;
        core::HybridSolver hy(h, ho);
        const double t_factor = tf.seconds();
        auto x = hy.solve(u);
        const auto& g = hy.last_gmres();
        print_trace("hybrid", g.residual_history, g.time_history,
                    t_setup + t_factor, g.converged);
        std::printf("  %-8s final residual vs K~: %.2e  stability: %s\n",
                    "hybrid", h.relative_residual(x, u, lambda),
                    hy.stability().stable()
                        ? "ok"
                        : "UNSTABLE DETECTED (paper #30 regime)");
      }
    }
  }
  // ---- Instability probe (#30 regime, §III) --------------------------
  // Near-duplicate points make the leaf blocks K_aa numerically singular;
  // with lambda ~ 0 the factorization's pivots collapse and the stability
  // detector must trip (the paper's #30 is detected the same way).
  std::printf("\n#30-probe: near-duplicate points, lambda -> 0 (stability "
              "detection)\n");
  {
    const index_t np = 1024;
    data::Dataset ds = data::make_synthetic(SyntheticKind::Normal, np / 4,
                                            602);
    la::Matrix pts(ds.dim(), np);
    std::mt19937_64 rng(603);
    std::normal_distribution<double> g(0.0, 1e-13);
    for (index_t j = 0; j < np; ++j)
      for (index_t i = 0; i < ds.dim(); ++i)
        pts(i, j) = ds.points(i, j % (np / 4)) + g(rng);
    askit::AskitConfig acfg;
    acfg.leaf_size = 128;
    acfg.max_rank = 64;
    acfg.tol = 1e-5;
    acfg.num_neighbors = 0;
    acfg.seed = 31;
    askit::HMatrix h(pts, kernel::Kernel::gaussian(1.0), acfg);
    for (double lambda : {1.0, 1e-13}) {
      core::HybridOptions ho;
      ho.direct.lambda = lambda;
      ho.gmres.max_iters = 50;
      core::HybridSolver hy(h, ho);
      auto u = bench::random_rhs(np, 13);
      auto x = hy.solve(u);
      std::printf("  lambda=%8.0e  min leaf pivot ratio=%.1e  flagged "
                  "nodes=%td  -> %s (residual %.1e)\n",
                  lambda, hy.stability().min_leaf_pivot_ratio,
                  hy.stability().flagged_nodes,
                  hy.stability().stable() ? "stable"
                                          : "UNSTABLE DETECTED",
                  h.relative_residual(x, u, lambda));
    }
  }

  std::printf("\nExpected shape (paper Fig. 5): hybrid converges steeply in "
              "all\nwell-conditioned cells; unpreconditioned GMRES stalls "
              "at kappa~1e5;\n10-1000x speedup on the solve phase; the #30 "
              "probe trips the detector\nonly at tiny lambda.\n");
  bench::write_bench_json("fig5_convergence",
                          {obs::kv("n", static_cast<long long>(n))});
  return 0;
}
