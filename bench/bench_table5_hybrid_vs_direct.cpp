// Table V reproduction: hybrid (Algorithm II.6) versus level-restricted
// direct factorization (Algorithm II.2 with expanded blocks), L = 3,
// adaptive ranks tau = 1e-5.
//
// Paper: SUSY / MRI / MNIST2M on Haswell and KNL; the direct
// factorization takes ~2x the hybrid's factorization time, the hybrid's
// solve is ~20x slower per solve (it iterates), but hybrid total time
// and memory win. Reported per method: ASKIT build time, factorization
// time Tf, solve time Ts, relative residual r, Krylov iterations (KSP).
#include "bench_util.hpp"
#include "core/hybrid.hpp"
#include "core/solver.hpp"
#include "data/preprocess.hpp"

#include <cstdio>
#include <vector>

using namespace fdks;
using data::SyntheticKind;
using la::index_t;

int main(int argc, char** argv) {
  const index_t n = bench::arg_n(argc, argv, 4096);
  bench::obs_begin();
  bench::print_header(
      "Table V: hybrid vs direct with level restriction L=3, adaptive "
      "tau=1e-5.\nPaper experiments #19-#27 (SUSY h=0.15, MRI h=3.5, "
      "MNIST2M h=1.0).");

  struct Row {
    SyntheticKind kind;
    double h;
    double lambda;
    index_t n;
  };
  const std::vector<Row> rows = {
      {SyntheticKind::SusyLike, 0.5, 40.0, n},
      {SyntheticKind::MriLike, 3.5, 10.0, n},
      {SyntheticKind::MnistLike, 8.0, 1.0, n / 4},
  };

  std::printf("%-12s %-7s %9s %8s %8s %9s %10s %5s %9s\n", "dataset",
              "method", "askit(s)", "Tf(s)", "Ts(s)", "resid", "mem(MB)",
              "KSP", "total(s)");

  for (const Row& r : rows) {
    data::Dataset ds = data::make_synthetic(r.kind, r.n, 401);
    bench::Timer askit_timer;
    askit::AskitConfig acfg;
    acfg.leaf_size = 128;
    acfg.max_rank = 128;
    acfg.tol = 1e-5;
    acfg.num_neighbors = 0;
    acfg.level_restriction = 3;
    acfg.seed = 17;
    auto h = bench::phase("setup", [&] {
      return askit::HMatrix(ds.points, kernel::Kernel::gaussian(r.h), acfg);
    });
    const double t_askit = askit_timer.seconds();
    auto u = bench::random_rhs(r.n, 5);

    // Direct (level-restricted, expanded above the frontier).
    {
      core::SolverOptions so;
      so.lambda = r.lambda;
      bench::Timer tf;
      core::FastDirectSolver solver(h, so);
      const double t_factor = tf.seconds();
      std::vector<double> x(static_cast<size_t>(r.n));
      bench::Timer tsolve;
      solver.solve(u, x);
      const double t_solve = tsolve.seconds();
      std::printf("%-12s %-7s %9.2f %8.2f %8.3f %9.1e %10.1f %5s %9.2f\n",
                  data::kind_name(r.kind), "direct", t_askit, t_factor,
                  t_solve, h.relative_residual(x, u, r.lambda),
                  double(solver.factor_bytes()) / 1048576.0, "-",
                  t_factor + t_solve);
    }

    // Hybrid (factorize to the frontier, GMRES on the reduced system).
    {
      core::HybridOptions ho;
      ho.direct.lambda = r.lambda;
      ho.gmres.rtol = 1e-4;  // Paper's hybrid rows report r ~ 1e-3..1e-4.
      ho.gmres.max_iters = 400;
      bench::Timer tf;
      core::HybridSolver solver(h, ho);
      const double t_factor = tf.seconds();
      bench::Timer tsolve;
      auto x = solver.solve(u);
      const double t_solve = tsolve.seconds();
      std::printf("%-12s %-7s %9.2f %8.2f %8.3f %9.1e %10.1f %5d %9.2f\n",
                  data::kind_name(r.kind), "hybrid", t_askit, t_factor,
                  t_solve, h.relative_residual(x, u, r.lambda),
                  double(solver.factor_bytes()) / 1048576.0,
                  solver.last_gmres().iterations, t_factor + t_solve);
    }
  }
  std::printf("\nExpected shape (paper Table V): Tf(direct) ~ 2x "
              "Tf(hybrid); Ts(hybrid) >>\nTs(direct); total time and memory "
              "favor the hybrid; direct reaches ~1e-10\nresidual, hybrid "
              "stops at the Krylov tolerance (~1e-3).\n");
  bench::write_bench_json(
      "table5_hybrid_vs_direct",
      {obs::kv("n", static_cast<long long>(n)), obs::kv("tau", 1e-5),
       obs::kv("level_restriction", 3)});
  return 0;
}
