// Recovery-overhead benchmark: the cost of surviving faults.
//
// Three scenarios on the same distributed solve (p=4):
//   clean      — baseline, no faults, plain transport
//   reliable   — drop 5% + corrupt 2% absorbed by the reliable
//                transport (retransmit + dedup + checksum reject)
//   supervised — a rank killed mid-factorization, recovered by
//                run_with_recovery resuming from the factor-tree
//                checkpoints the first attempt persisted
//
// The interesting outputs are the overhead ratios and the recovery
// counters: BENCH_recovery.json carries the merged obs snapshot, so
// mpisim.recover.* (retransmits, dedups, checksum rejects) and ckpt.*
// (saves/loads, bytes, timing) land in the fdks-bench-v1 report and the
// recovery-cost trajectory is diffable across PRs.
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_util.hpp"
#include "core/dist_solver.hpp"
#include "core/recovery.hpp"
#include "mpisim/runtime.hpp"

using namespace fdks;
using la::index_t;

namespace {

double solve_once(const askit::HMatrix& h, const core::SolverOptions& so,
                  const std::vector<double>& u,
                  const mpisim::WorldOptions& wo, double* residual) {
  bench::Timer t;
  mpisim::run(
      4,
      [&](mpisim::Comm& comm) {
        core::DistributedSolver dsv(h, so, comm);
        (void)dsv.solve(u);
        if (comm.rank() == 0 && residual)
          *residual = dsv.last_status().residual;
      },
      wo);
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::arg_n(argc, argv, 2048);
  bench::obs_begin();
  bench::print_header(
      "Recovery overhead: reliable transport and checkpoint/restart on a\n"
      "p=4 distributed solve. Overheads are relative to the clean run;\n"
      "recovery counters land in BENCH_recovery.json.");

  data::Dataset ds =
      data::make_synthetic(data::SyntheticKind::Normal, n, 601);
  askit::AskitConfig acfg;
  acfg.leaf_size = 128;
  acfg.max_rank = 48;
  acfg.tol = 1e-7;
  acfg.num_neighbors = 0;
  acfg.seed = 29;
  auto h = bench::phase("setup", [&] {
    return askit::HMatrix(ds.points, kernel::Kernel::gaussian(0.8), acfg);
  });
  core::SolverOptions so;
  so.lambda = 1.0;
  auto u = bench::random_rhs(n, 9);

  std::printf("%-12s %10s %10s %12s  %s\n", "scenario", "T(s)", "overhead",
              "residual", "notes");

  double res_clean = 0.0;
  const double t_clean = bench::phase("clean", [&] {
    return solve_once(h, so, u, {}, &res_clean);
  });
  std::printf("%-12s %10.3f %10s %12.2e  %s\n", "clean", t_clean, "1.00x",
              res_clean, "no faults");

  mpisim::WorldOptions faulty;
  faulty.faults.seed = 31;
  faulty.faults.drop_fraction = 0.05;
  faulty.faults.corrupt_fraction = 0.02;
  faulty.reliable.enabled = true;
  faulty.reliable.ack_timeout = std::chrono::milliseconds(25);
  double res_rel = 0.0;
  const double t_rel = bench::phase("reliable", [&] {
    return solve_once(h, so, u, faulty, &res_rel);
  });
  std::printf("%-12s %10.3f %9.2fx %12.2e  %s\n", "reliable", t_rel,
              t_rel / t_clean, res_rel, "drop 5% + corrupt 2% absorbed");

  // Supervised re-execution: rank 2 is killed after its local factors
  // are checkpointed; the retry resumes from them.
  namespace fs = std::filesystem;
  const fs::path ckdir =
      fs::temp_directory_path() /
      ("fdks_bench_recovery_" + std::to_string(::getpid()));
  core::SolverOptions sock = so;
  sock.checkpoint_dir = ckdir.string();
  mpisim::WorldOptions killed;
  killed.timeout = std::chrono::milliseconds(2000);
  killed.faults.kill_rank = 2;
  killed.faults.kill_after_ops = 8;
  double res_sup = 0.0;
  core::RecoveryReport report;
  const double t_sup = bench::phase("supervised", [&] {
    bench::Timer t;
    report = core::run_with_recovery(
        4,
        [&](mpisim::Comm& comm) {
          core::DistributedSolver dsv(h, sock, comm);
          (void)dsv.solve(u);
          if (comm.rank() == 0) res_sup = dsv.last_status().residual;
        },
        killed);
    return t.seconds();
  });
  std::printf("%-12s %10.3f %9.2fx %12.2e  %s, %d attempts\n", "supervised",
              t_sup, t_sup / t_clean, res_sup,
              report.succeeded ? "kill_rank recovered" : "NOT recovered",
              report.attempts_used());
  fs::remove_all(ckdir);

  std::printf("\nExpected shape: 'reliable' pays retransmit latency only "
              "on faulted\nmessages; 'supervised' pays one failed attempt "
              "plus a resumed re-run\n(cheaper than 2x clean once "
              "factorization dominates).\n");

  bench::write_bench_json(
      "recovery",
      {obs::kv("n", static_cast<long long>(n)), obs::kv("p", 4),
       obs::kv("drop_fraction", 0.05), obs::kv("corrupt_fraction", 0.02),
       obs::kv("recovered", report.succeeded),
       obs::kv("attempts", report.attempts_used())});
  return 0;
}
