// Google-benchmark microbenchmarks for the dense linear-algebra
// substrate: GEMM, LU, pivoted QR, and the fused kernel summation.
// These are the primitives whose throughput sets GFf/GFs in Tables I/IV.
#include <benchmark/benchmark.h>
#include <vector>

#include <numeric>
#include <random>

#include "bench_util.hpp"
#include "kernel/gsks.hpp"
#include "kernel/kernel_matrix.hpp"
#include "la/gemm.hpp"
#include "la/lu.hpp"
#include "la/qr.hpp"

using namespace fdks;
using la::Matrix;
using la::index_t;

static void BM_Gemm(benchmark::State& state) {
  const index_t n = state.range(0);
  std::mt19937_64 rng(1);
  Matrix a = Matrix::random_gaussian(n, n, rng);
  Matrix b = Matrix::random_gaussian(n, n, rng);
  Matrix c(n, n);
  for (auto _ : state) {
    la::gemm(la::Trans::No, la::Trans::No, 1.0, a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * double(n) * double(n) * double(n) * double(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

static void BM_LuFactor(benchmark::State& state) {
  const index_t n = state.range(0);
  std::mt19937_64 rng(2);
  Matrix a = Matrix::random_gaussian(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += double(n);
  for (auto _ : state) {
    la::LuFactor f = la::lu_factor(a);
    benchmark::DoNotOptimize(f.lu.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      (2.0 / 3.0) * double(n) * double(n) * double(n) *
          double(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_LuFactor)->Arg(128)->Arg(256)->Arg(512);

static void BM_PivotedQr(benchmark::State& state) {
  const index_t n = state.range(0);
  std::mt19937_64 rng(3);
  Matrix a = Matrix::random_gaussian(2 * n, n, rng);
  for (auto _ : state) {
    la::QrFactor f = la::qr_factor_pivoted(a);
    benchmark::DoNotOptimize(f.qr.data());
  }
}
BENCHMARK(BM_PivotedQr)->Arg(64)->Arg(128)->Arg(256);

static void BM_GsksApply(benchmark::State& state) {
  const index_t n = state.range(0);
  const index_t d = state.range(1);
  std::mt19937_64 rng(4);
  Matrix pts = Matrix::random_gaussian(d, 2 * n, rng);
  kernel::KernelMatrix km(pts, kernel::Kernel::gaussian(1.0));
  std::vector<index_t> rows(static_cast<size_t>(n));
  std::iota(rows.begin(), rows.end(), index_t{0});
  std::vector<index_t> cols(static_cast<size_t>(n));
  std::iota(cols.begin(), cols.end(), n);
  std::vector<double> u(static_cast<size_t>(n), 1.0);
  std::vector<double> y(static_cast<size_t>(n), 0.0);
  for (auto _ : state) {
    kernel::gsks_apply(km, rows, cols, u, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * double(n) * double(n) * double(d) * double(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GsksApply)
    ->Args({1024, 8})
    ->Args({1024, 64})
    ->Args({2048, 8})
    ->Args({2048, 64});

// Expanded BENCHMARK_MAIN() so the obs counters accumulated across all
// benchmark iterations (gemm calls/flops, gsks evals) land in a
// machine-readable BENCH_micro_la.json next to the console table.
int main(int argc, char** argv) {
  bench::obs_begin();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::write_bench_json("micro_la");
  return 0;
}
