// Table IV reproduction: single-node factorization performance and the
// three solve schemes (GEMV stored / GEMM re-evaluate / GSKS fused).
//
// Paper setup: COVTYPE100K, m = s = 2048 fixed rank, L = 3, on one
// Haswell node (p MPI ranks x OpenMP threads) and one KNL node in four
// memory configurations. Here: covtype-like points at laptop scale,
// m = s = 128 fixed rank, L = 3; the "configurations" sweep becomes a
// rank-count sweep of the mpisim runtime (the container exposes one
// core, so configuration timing differences are expected to be small —
// what must reproduce is the *solve-scheme* trade-off: GEMV fastest with
// O(sN log N) storage, GEMM slowest, GSKS within ~2x of GEMV at O(1)
// extra storage).
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "core/dist_solver.hpp"
#include "core/solver.hpp"
#include "data/preprocess.hpp"
#include "mpisim/runtime.hpp"

using namespace fdks;
using la::index_t;

namespace {

// Analytic FLOP estimate for the factorization, walking the tree with
// the same dimensions the factorization used (Gram/kernel flops for V
// assembly + LU + telescoping).
double factor_flops(const askit::HMatrix& h) {
  double fl = 0.0;
  const auto& t = h.tree();
  const index_t d = h.dim();
  for (index_t id = 0; id < static_cast<index_t>(t.nodes().size()); ++id) {
    const auto& nd = t.node(id);
    const double s_eff = double(h.effective_skeleton(id).size());
    if (nd.is_leaf()) {
      const double m = double(nd.size());
      fl += (2.0 / 3.0) * m * m * m + 2.0 * m * m * s_eff;
      continue;
    }
    const double nl = double(t.node(nd.left).size());
    const double nr = double(t.node(nd.right).size());
    const double sl = double(h.effective_skeleton(nd.left).size());
    const double sr = double(h.effective_skeleton(nd.right).size());
    const double sz = sl + sr;
    // V blocks (kernel eval, rank-d) + Z assembly + Z LU + telescoping.
    fl += 2.0 * (sl * nr + sr * nl) * double(d);
    fl += 2.0 * (sl * nr * sr + sr * nl * sl);
    fl += (2.0 / 3.0) * sz * sz * sz;
    fl += 2.0 * sz * sz * s_eff + 2.0 * (nl * sl + nr * sr) * s_eff;
  }
  return fl;
}

// FLOPs of one solve through the factorization.
double solve_flops(const askit::HMatrix& h, bool with_kernel_eval) {
  double fl = 0.0;
  const auto& t = h.tree();
  const double d = double(h.dim());
  for (index_t id = 0; id < static_cast<index_t>(t.nodes().size()); ++id) {
    const auto& nd = t.node(id);
    if (nd.is_leaf()) {
      const double m = double(nd.size());
      fl += 2.0 * m * m;
      continue;
    }
    const double nl = double(t.node(nd.left).size());
    const double nr = double(t.node(nd.right).size());
    const double sl = double(h.effective_skeleton(nd.left).size());
    const double sr = double(h.effective_skeleton(nd.right).size());
    const double sz = sl + sr;
    double v = 2.0 * (sl * nr + sr * nl);
    if (with_kernel_eval) v += 2.0 * (sl * nr + sr * nl) * d;
    fl += v + 2.0 * sz * sz + 2.0 * (nl * sl + nr * sr);
  }
  return fl;
}

}  // namespace

int main(int argc, char** argv) {
  const index_t n = bench::arg_n(argc, argv, 4096);
  bench::obs_begin();
  bench::print_header(
      "Table IV: single-node performance, covtype-like, fixed rank "
      "m=s=128, L=3.\nPaper: COVTYPE100K m=s=2048 on Haswell/KNL nodes; "
      "configurations here are\nmpisim rank counts on one core.");

  data::Dataset ds =
      data::make_synthetic(data::SyntheticKind::CovtypeLike, n, 301);
  askit::AskitConfig acfg;
  acfg.leaf_size = 128;
  acfg.max_rank = 128;
  acfg.tol = 0.0;  // Fixed rank, as the paper's Table IV.
  acfg.num_neighbors = 0;
  acfg.level_restriction = 3;
  acfg.seed = 13;
  auto h = bench::phase("setup", [&] {
    return askit::HMatrix(ds.points, kernel::Kernel::gaussian(3.0), acfg);
  });
  auto u = bench::random_rhs(n, 3);

  // ---- Factorization under different rank counts (paper's p) ---------
  std::printf("\n-- factorization (scheme=GEMV) --\n");
  std::printf("%4s %10s %8s\n", "p", "Tf(s)", "GFf");
  const double ff = factor_flops(h);
  for (int p : {1, 2, 4}) {
    double tf = 0.0;
    if (p == 1) {
      core::SolverOptions so;
      so.lambda = 1.0;
      core::FastDirectSolver solver(h, so);
      tf = solver.factor_seconds();
      const core::FactorProfile& pr = solver.profile();
      std::printf("     phase breakdown: leaf %.2fs, V %.2fs, Z %.2fs, "
                  "telescope %.2fs\n",
                  pr.leaf_seconds, pr.v_assembly_seconds,
                  pr.z_factor_seconds, pr.telescope_seconds);
    } else {
      std::mutex mu;
      mpisim::run(p, [&](mpisim::Comm& comm) {
        core::SolverOptions so;
        so.lambda = 1.0;
        core::DistributedSolver dsv(h, so, comm);
        if (comm.rank() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          tf = dsv.factor_seconds();
        }
      });
    }
    std::printf("%4d %10.3f %8.2f\n", p, tf, ff / tf / 1e9);
  }

  // ---- Solve schemes (paper's three storage/time trade-offs) ---------
  std::printf("\n-- solve schemes (p=1) --\n");
  std::printf("%12s %10s %8s %12s %12s\n", "scheme", "Ts(s)", "GFs",
              "factorMB", "residual");
  for (kernel::Scheme scheme :
       {kernel::Scheme::StoredGemv, kernel::Scheme::ReevalGemm,
        kernel::Scheme::Gsks}) {
    core::SolverOptions so;
    so.lambda = 1.0;
    so.scheme = scheme;
    core::FastDirectSolver solver(h, so);
    std::vector<double> x(static_cast<size_t>(n));
    // Warm once, then time best-of-3.
    solver.solve(u, x);
    double ts = 1e30;
    for (int rep = 0; rep < 3; ++rep) {
      bench::Timer t;
      solver.solve(u, x);
      ts = std::min(ts, t.seconds());
    }
    const bool evals = scheme != kernel::Scheme::StoredGemv;
    std::printf("%12s %10.4f %8.2f %12.1f %12.2e\n",
                kernel::scheme_name(scheme), ts,
                solve_flops(h, evals) / ts / 1e9,
                double(solver.factor_bytes()) / 1048576.0,
                h.relative_residual(x, u, 1.0));
  }
  std::printf("\nExpected shape (paper Table IV): Ts(GEMV) < Ts(GSKS) << "
              "Ts(GEMM);\nGSKS trades a small slowdown (1.2-1.6x there) for "
              "O(mn) less storage.\n");
  bench::write_bench_json(
      "table4_single_node",
      {obs::kv("n", static_cast<long long>(n)), obs::kv("leaf_size", 128),
       obs::kv("max_rank", 128), obs::kv("level_restriction", 3),
       obs::kv("lambda", 1.0), obs::kv("dataset", "covtype-like"),
       obs::kv("factor_flops", ff)});
  return 0;
}
