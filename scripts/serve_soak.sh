#!/usr/bin/env bash
# Serving soak: run a loaded ServeEngine (bounded queue, deadlines,
# degraded watermark) while a fault-injected mpisim world churns in the
# same process (tests/serve_soak_test.cpp). Every admitted request must
# resolve structurally — value or ServeError — never hang.
#
# Duration, problem size, and submitter count are environment knobs,
# forwarded to the test binary:
#   FDKS_SERVE_SOAK_SECONDS=30 \
#   FDKS_SERVE_SOAK_N=512 \
#   FDKS_SERVE_SOAK_THREADS=8 scripts/serve_soak.sh
#
# Defaults (2s at n=256 with 3 submitters) finish in seconds; crank
# FDKS_SERVE_SOAK_SECONDS for a real soak.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --test-dir build -R serve_soak_test --output-on-failure "$@"
