#!/usr/bin/env bash
# Chaos soak: sweep drop/corrupt fractions under the reliable transport
# and require in-tolerance cells to complete with fault-free residual
# quality (the "chaos"-labelled ctest, tests/chaos_soak_test.cpp).
#
# The sweep grid and problem size are environment knobs, forwarded to
# the test binary:
#   FDKS_CHAOS_DROPS=0,0.05,0.10,0.20 \
#   FDKS_CHAOS_CORRUPTS=0,0.02,0.05 \
#   FDKS_CHAOS_N=384 scripts/chaos_soak.sh
#
# Defaults (0,0.05,0.10 x 0,0.02 at n=192) finish in a few seconds;
# cells beyond the documented tolerance may fail the solve but must
# fail with a clean structured error.
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j "$(nproc)"
ctest --test-dir build -L chaos --output-on-failure "$@"
