#!/usr/bin/env bash
# Build the tree under ThreadSanitizer and run the fault-tolerance test
# suite (everything labeled "fault": the mpisim runtime, the fault
# injection tests, and both distributed solvers).
#
# Equivalent to:
#   cmake --preset tsan-fault && cmake --build --preset tsan-fault -j
#   ctest --preset tsan-fault -j
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset tsan-fault
cmake --build --preset tsan-fault -j "$(nproc)"
ctest --preset tsan-fault -j "$(nproc)"
