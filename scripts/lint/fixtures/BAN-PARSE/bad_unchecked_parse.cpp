// Fixture: parses that cannot report failure ("12x" -> 12, "x" -> 0).
#include <cstdlib>
double parse(const char* s) {
  int n = std::atoi(s);                     // -> BAN-PARSE
  double h = std::atof(s);                  // -> BAN-PARSE
  long l = std::strtol(s, nullptr, 10);     // -> BAN-PARSE (null endptr)
  return h + double(n) + double(l);
}
