// Fixture: strtol/strtod with a real end pointer that the caller
// checks.
#include <cstdlib>
#include <stdexcept>
long parse(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    throw std::invalid_argument(std::string("parse: not a number: ") + s);
  }
  return v;
}
