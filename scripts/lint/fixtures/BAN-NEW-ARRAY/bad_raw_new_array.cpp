// Fixture: raw owning array allocations.
double* make_buffer(int n) {
  double* buf = new double[n];     // -> BAN-NEW-ARRAY
  return buf;
}
