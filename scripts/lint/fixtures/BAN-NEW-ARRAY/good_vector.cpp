// Fixture: owned containers; subscripting and placement-free new of a
// single object don't trip.
#include <memory>
#include <vector>
std::vector<double> make_buffer(int n) {
  std::vector<double> buf(static_cast<std::size_t>(n), 0.0);
  auto owned = std::make_unique<double[]>(static_cast<std::size_t>(n));
  buf[0] = owned[0];
  return buf;
}
