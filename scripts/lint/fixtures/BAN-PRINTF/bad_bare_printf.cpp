// Fixture: stdout chatter from library code.
#include <cstdio>
void report(double residual) {
  printf("residual = %g\n", residual);       // -> BAN-PRINTF
  std::printf("done\n");                     // -> BAN-PRINTF
}
