// Fixture: diagnostics to stderr and formatted-to-buffer calls are
// fine; only bare printf (stdout) is banned in library code.
#include <cstdio>
void report(double residual) {
  std::fprintf(stderr, "warn: residual = %g\n", residual);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", residual);
}
