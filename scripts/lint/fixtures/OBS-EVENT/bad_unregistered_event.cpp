// Fixture: unregistered event names must be flagged — a literal the
// table does not know, a constant the table does not generate, and an
// unsuppressed dynamic name.
#define FDKS_EVENT_NAMES(X) \
  X(kEvAdmitted, "admitted") \
  X(kEvSolved,   "solved")

void f(EventLog& log, std::string_view chosen) {
  log.emit(1, "solvedd");
  log.emit(2, obs::events::kEvVaporized);
  log.emit(3, chosen);
}
