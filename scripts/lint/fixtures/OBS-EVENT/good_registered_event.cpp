// Fixture: every emitted event name is registered — as a literal, as a
// generated events:: constant, and via a suppressed dynamic site. The
// one-argument trace-buffer emit is out of scope (not an EventLog
// call shape).
#define FDKS_EVENT_NAMES(X) \
  X(kEvAdmitted, "admitted") \
  X(kEvSolved,   "solved")

void f(EventLog& log, TraceBuffer& buf, const Event& ev,
       std::string_view chosen) {
  log.emit(1, "admitted");
  log.emit(2, obs::events::kEvSolved, {{"residual", 1e-9}});
  log.emit(3, events::kEvAdmitted);
  buf.emit(ev);
  // fdks-lint: allow(OBS-EVENT)
  log.emit(4, chosen);
}
