// Fixture: emits a key missing from the embedded registry, plus a
// dynamic key with no literal and no suppression.
#define FDKS_OBS_KEYS(X) \
  X(kGood, "good.key", Counter)

void f(const char* runtime_name) {
  obs::add("good.key");
  obs::add("not.registered");           // -> OBS-KEY
  obs::hist(runtime_name, 1.0);         // -> OBS-KEY (dynamic, untagged)
}
