// Fixture: every emitted key is registered; the dynamic site is
// suppressed and backed by a Prefix family; a keys:: constant passes.
#define FDKS_OBS_KEYS(X) \
  X(kGood, "good.key", Counter) \
  X(kScope, "phase", Timer) \
  X(kBytesPrefix, "bytes.sent.", Prefix)

void f(int rank) {
  obs::add("good.key");
  obs::ScopedTimer t("phase");
  obs::add(keys::kGood, 2.0);
  char name[32];
  std::snprintf(name, sizeof(name), "bytes.sent.r%d", rank);
  // fdks-lint: allow(OBS-KEY) dynamic: bytes.sent.*
  obs::add(name, 1.0);
}
