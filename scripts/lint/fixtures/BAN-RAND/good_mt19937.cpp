// Fixture: seeded engine; identifiers containing "rand" don't trip.
#include <random>
double noise(std::mt19937& gen) {
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  double operand = unif(gen);
  return operand;
}
