// Fixture: C PRNG in numerical code.
#include <cstdlib>
double noise() {
  std::srand(42);                                   // -> BAN-RAND
  return static_cast<double>(std::rand()) / RAND_MAX;  // -> BAN-RAND
}
