// Fixture: every entry is emitted, backs a live format string, or is
// explicitly Reserved.
#define FDKS_OBS_KEYS(X) \
  X(kUsed, "used.key", Counter) \
  X(kStamped, "stamped.key", Counter) \
  X(kBytesPrefix, "bytes.sent.", Prefix) \
  X(kFuture, "future.key", Reserved)

void f(int rank, Snapshot& snap) {
  obs::add("used.key");
  snap.counters["stamped.key"] = 1.0;
  char name[32];
  std::snprintf(name, sizeof(name), "bytes.sent.r%d", rank);
  // fdks-lint: allow(OBS-KEY) dynamic: bytes.sent.*
  obs::add(name, 1.0);
}
