// Fixture: "dead.key" is registered but never emitted, and the
// "unused.prefix." family has no emitting format string.
#define FDKS_OBS_KEYS(X) \
  X(kUsed, "used.key", Counter) \
  X(kDead, "dead.key", Counter) \
  X(kUnusedPrefix, "unused.prefix.", Prefix)

void f() { obs::add("used.key"); }
