// Fixture: catch (...) blocks that rethrow or capture the exception
// for later inspection.
#include <exception>
void run(void (*fn)(), std::exception_ptr& out) {
  try {
    fn();
  } catch (...) {
    out = std::current_exception();
  }
  try {
    fn();
  } catch (...) {
    throw;
  }
}
