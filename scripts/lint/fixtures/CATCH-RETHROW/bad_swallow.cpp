// Fixture: catch (...) that silently swallows.
void run(void (*fn)()) {
  try {
    fn();
  } catch (...) {        // -> CATCH-RETHROW
    // ignore
  }
}
