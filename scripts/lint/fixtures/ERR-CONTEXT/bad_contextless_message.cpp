// Fixture: exception message that names no function/context.
#include <stdexcept>
void check(int n) {
  if (n < 2) {
    throw std::invalid_argument("need at least 2 points");  // -> ERR-CONTEXT
  }
}
