// Fixture: messages follow the "context: what happened" convention;
// computed messages (variable first) are not judged.
#include <stdexcept>
#include <string>
void check(int n, const std::string& what, const std::string& path) {
  if (n < 2) {
    throw std::invalid_argument("approx_knn: need at least 2 points");
  }
  if (n < 3) {
    throw std::invalid_argument("KernelRidge::decision: dimension mismatch");
  }
  if (n < 4) {
    throw std::runtime_error(what + ": " + path);
  }
}
