// Fixture: a condition-variable wait with no deadline and no tag.
void recv_loop(Mailbox& box, std::unique_lock<std::mutex>& lock) {
  while (box.queue.empty()) {
    box.cv.wait(lock);  // -> MPISIM-DEADLINE
  }
}
