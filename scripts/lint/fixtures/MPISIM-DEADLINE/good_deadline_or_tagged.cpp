// Fixture: deadline-carrying waits pass; the deliberate untimed wait
// carries the no_deadline tag with a reason.
void recv_loop(Mailbox& box, std::unique_lock<std::mutex>& lock,
               std::chrono::steady_clock::time_point deadline,
               bool has_deadline) {
  while (box.queue.empty()) {
    if (has_deadline) {
      box.cv.wait_until(lock, deadline);
    } else {
      // no_deadline: user disabled timeouts via FDKS_MPISIM_TIMEOUT_MS<=0.
      box.cv.wait(lock);
    }
  }
}
