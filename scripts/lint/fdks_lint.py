#!/usr/bin/env python3
"""fdks_lint — project-specific static checks for the fdks tree.

Token/regex-based (no libclang): every rule is a textual invariant the
codebase relies on but the compiler cannot see. Run as a whole-tree
gate (scripts/check.sh, ctest label `lint`) or on explicit paths.

Usage:
  fdks_lint.py [--root DIR] [--rules R1,R2] [paths...]   lint the tree
  fdks_lint.py --self-test                               run fixture suite
  fdks_lint.py --list-rules                              print rule table

Exit codes: 0 clean, 1 findings, 2 internal/usage error.

Rules (see DESIGN.md §4e for the full rationale):

  OBS-KEY          every obs::add / obs::hist / obs::record /
                   obs::ScopedTimer / obs::trace::instant key literal
                   (and bench `snap.counters["..."]` stamps) must be
                   registered in src/obs/keys.hpp; dynamic
                   (non-literal) keys need a suppression naming their
                   registered Prefix family.
  OBS-DEAD         every registry entry must be emitted somewhere in
                   src/, bench/, or examples/ — or be marked Reserved.
  OBS-EVENT        every EventLog::emit event-name argument must be a
                   literal registered in the FDKS_EVENT_NAMES table
                   (src/obs/eventlog.hpp) or one of its generated
                   events::kEv* constants — the static twin of the
                   runtime check in EventLog::emit.
  MPISIM-DEADLINE  no deadline-less condition-variable waits
                   (`cv.wait(lock)`): use wait_until/wait_for, or tag
                   the site `no_deadline:` with a reason.
  BAN-RAND         std::rand/srand banned — use a seeded std::mt19937.
  BAN-NEW-ARRAY    raw `new T[n]` banned — use std::vector /
                   std::make_unique<T[]>.
  BAN-PARSE        atof/atoi/atol banned, and strtod/strtol-family
                   calls must pass a real end pointer (not nullptr) —
                   unchecked parses turn bad input into silent zeros.
  BAN-PRINTF       bare printf in src/ banned (library code reports
                   through obs or exceptions; stderr via fprintf).
                   bench/ and examples/ are exempt (they are tools).
  CATCH-RETHROW    `catch (...)` must rethrow or capture
                   std::current_exception() — silently swallowing
                   unknown exceptions hides rank failures.
  ERR-CONTEXT      literal messages thrown via std:: exception types
                   must name their context (`"function: what"` per the
                   PR 2 error-style convention).

Suppressing a finding: append `// fdks-lint: allow(RULE)` (or
`allow(RULE1,RULE2)`) to the offending line or the line above it.
Suppressions are per-line and per-rule by design — there is no
file-level escape hatch.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULE_IDS = [
    "OBS-KEY",
    "OBS-DEAD",
    "OBS-EVENT",
    "MPISIM-DEADLINE",
    "BAN-RAND",
    "BAN-NEW-ARRAY",
    "BAN-PARSE",
    "BAN-PRINTF",
    "CATCH-RETHROW",
    "ERR-CONTEXT",
]

CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".h", ".cxx"}
SCOPE_DIRS = ("src", "bench", "examples")

ALLOW_RE = re.compile(r"fdks-lint:\s*allow\(([A-Z0-9-,\s]+)\)")
NO_DEADLINE_RE = re.compile(r"\bno_deadline\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


# --------------------------------------------------------------------
# Source model: raw lines (for suppression comments) plus a
# comment-stripped copy (for pattern matching) with line structure
# preserved so findings carry real line numbers.
# --------------------------------------------------------------------


def strip_comments(text):
    """Blank out // and /* */ comments, preserving newlines and string
    literals (so quoted '//' does not start a comment)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' or c == "'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                out.append(text[i])
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path, text, display=None):
        self.path = path
        self.display = display if display is not None else str(path)
        self.text = text
        self.raw_lines = text.splitlines()
        self.code = strip_comments(text)
        self.code_lines = self.code.splitlines()
        # Byte offset -> line number (1-based) for the stripped text.
        self._line_starts = [0]
        for i, ch in enumerate(self.code):
            if ch == "\n":
                self._line_starts.append(i + 1)

    def line_of(self, offset):
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def suppressed(self, line, rule):
        """allow(RULE) on this raw line or the one above it."""
        for ln in (line, line - 1):
            if 1 <= ln <= len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[ln - 1])
                if m:
                    allowed = {r.strip() for r in m.group(1).split(",")}
                    if rule in allowed:
                        return True
        return False

    def tagged_no_deadline(self, line):
        for ln in (line, line - 1):
            if 1 <= ln <= len(self.raw_lines):
                if NO_DEADLINE_RE.search(self.raw_lines[ln - 1]):
                    return True
        return False


def balanced_span(code, open_pos, open_ch="(", close_ch=")"):
    """Return (inner_text, end_pos) for the balanced group opening at
    code[open_pos] (which must be open_ch), or (None, open_pos)."""
    if open_pos >= len(code) or code[open_pos] != open_ch:
        return None, open_pos
    depth = 0
    i = open_pos
    n = len(code)
    while i < n:
        c = code[i]
        if c == '"':
            i += 1
            while i < n:
                if code[i] == "\\":
                    i += 2
                    continue
                if code[i] == '"':
                    break
                i += 1
        elif c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return code[open_pos + 1 : i], i
        i += 1
    return None, open_pos


STRING_LIT_RE = re.compile(r'"((?:[^"\\]|\\.)*)"')


def string_literals(expr):
    return [m.group(1) for m in STRING_LIT_RE.finditer(expr)]


# --------------------------------------------------------------------
# Registry (src/obs/keys.hpp) parsing
# --------------------------------------------------------------------

REGISTRY_ENTRY_RE = re.compile(
    r'^\s*X\(\s*(k\w+)\s*,\s*"([^"]+)"\s*,\s*'
    r"(Counter|Gauge|Histogram|Timer|Instant|Prefix|Reserved)\s*\)"
)


class Registry:
    def __init__(self):
        self.entries = []  # (constant, key, kind, line)
        self.exact = {}  # key -> kind
        self.prefixes = []  # [(prefix, line)]
        self.by_constant = {}  # constant -> key

    @staticmethod
    def parse(text, path):
        reg = Registry()
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = REGISTRY_ENTRY_RE.match(line)
            if not m:
                continue
            const, key, kind = m.group(1), m.group(2), m.group(3)
            reg.entries.append((const, key, kind, lineno))
            reg.by_constant[const] = key
            if kind == "Prefix":
                reg.prefixes.append((key, lineno))
            else:
                if key in reg.exact:
                    raise ValueError(
                        f"{path}:{lineno}: duplicate registry key '{key}'"
                    )
                reg.exact[key] = kind
        return reg

    def covers(self, key):
        if key in self.exact:
            return True
        return any(
            key.startswith(p) and len(key) > len(p) for p, _ in self.prefixes
        )


# --------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------

# Emitting call heads. ScopedTimer requires a variable name between the
# type and '(' so class declarations/constructor definitions in
# src/obs do not match.
EMIT_CALL_RE = re.compile(
    r"(?:\bobs::add|\bobs::hist|\bobs::gauge|\bobs::record"
    r"|\b(?:obs::)?trace::instant"
    r"|\b(?:obs::)?ScopedTimer\s+\w+)\s*(\()"
)
COUNTER_STAMP_RE = re.compile(r"\.counters\s*(\[)")
KEY_CONSTANT_RE = re.compile(r"\bkeys::k\w+\b")


def key_argument(args):
    """The key is always the first argument of an emit call."""
    parts = split_args(args)
    return parts[0] if parts else ""


def check_obs_key(src, registry, findings):
    for m in EMIT_CALL_RE.finditer(src.code):
        args, _ = balanced_span(src.code, m.start(1))
        line = src.line_of(m.start())
        if args is None:
            continue
        args = key_argument(args)
        lits = string_literals(args)
        if not lits:
            if KEY_CONSTANT_RE.search(args):
                continue  # obs::keys constant — registered by construction.
            if src.suppressed(line, "OBS-KEY"):
                continue
            findings.append(
                Finding(
                    src.display,
                    line,
                    "OBS-KEY",
                    "dynamic obs key (no string literal); register a "
                    "Prefix family in src/obs/keys.hpp and tag the site "
                    "`// fdks-lint: allow(OBS-KEY) dynamic: <prefix>*`",
                )
            )
            continue
        for lit in lits:
            if "%" in lit:
                fmt_prefix = lit.split("%", 1)[0]
                ok = any(
                    fmt_prefix.startswith(p) for p, _ in registry.prefixes
                )
            else:
                ok = registry.covers(lit)
            if not ok and not src.suppressed(line, "OBS-KEY"):
                findings.append(
                    Finding(
                        src.display,
                        line,
                        "OBS-KEY",
                        f'obs key "{lit}" is not registered in '
                        "src/obs/keys.hpp",
                    )
                )
    for m in COUNTER_STAMP_RE.finditer(src.code):
        idx, _ = balanced_span(src.code, m.start(1), "[", "]")
        if idx is None:
            continue
        line = src.line_of(m.start())
        for lit in string_literals(idx):
            if not registry.covers(lit) and not src.suppressed(
                line, "OBS-KEY"
            ):
                findings.append(
                    Finding(
                        src.display,
                        line,
                        "OBS-KEY",
                        f'counter stamp "{lit}" is not registered in '
                        "src/obs/keys.hpp",
                    )
                )


def collect_emitted(src, registry, emitted, fmt_literals):
    """Gather every key this file emits (for OBS-DEAD): string literals
    plus keys:: registry constants resolved through the table."""
    for m in EMIT_CALL_RE.finditer(src.code):
        args, _ = balanced_span(src.code, m.start(1))
        if args is None:
            continue
        key_arg = key_argument(args)
        for lit in string_literals(key_arg):
            (fmt_literals if "%" in lit else emitted).add(lit)
        for cm in KEY_CONSTANT_RE.finditer(key_arg):
            const = cm.group(0).split("::")[-1]
            if const in registry.by_constant:
                emitted.add(registry.by_constant[const])
    for m in COUNTER_STAMP_RE.finditer(src.code):
        idx, _ = balanced_span(src.code, m.start(1), "[", "]")
        if idx is None:
            continue
        for lit in string_literals(idx):
            (fmt_literals if "%" in lit else emitted).add(lit)
    # Dynamic-key format strings live in snprintf calls next to tagged
    # emit sites; collect every %-bearing literal in the file.
    for lit in string_literals(src.code):
        if "%" in lit:
            fmt_literals.add(lit)


def check_obs_dead(registry, registry_path, emitted, fmt_literals, findings):
    for const, key, kind, line in registry.entries:
        if kind == "Reserved":
            continue
        if kind == "Prefix":
            hit = any(
                lit.split("%", 1)[0].startswith(key) for lit in fmt_literals
            ) or any(e.startswith(key) for e in emitted)
            if not hit:
                findings.append(
                    Finding(
                        registry_path,
                        line,
                        "OBS-DEAD",
                        f'Prefix family "{key}" ({const}) has no '
                        "emitting format string in src/bench/examples",
                    )
                )
        elif key not in emitted:
            findings.append(
                Finding(
                    registry_path,
                    line,
                    "OBS-DEAD",
                    f'registry key "{key}" ({const}) is never emitted; '
                    "emit it or mark it Reserved",
                )
            )


# --------------------------------------------------------------------
# OBS-EVENT: EventLog::emit event names against FDKS_EVENT_NAMES
# --------------------------------------------------------------------

EVENT_TABLE_ENTRY_RE = re.compile(r'^\s*X\(\s*(kEv\w+)\s*,\s*"([a-z_]+)"\s*\)')
# Member calls only (log.emit / log->emit): the EventLog::emit
# definition and trace buffer emits do not look like member calls with
# two or more arguments.
EVENT_EMIT_RE = re.compile(r"(?:\.|->)\s*emit\s*(\()")
EVENT_CONSTANT_RE = re.compile(r"^(?:fdks::)?(?:obs::)?events::(kEv\w+)$")


class EventTable:
    def __init__(self):
        self.names = set()      # registered event-name literals
        self.constants = set()  # generated events::kEv* constants

    @staticmethod
    def parse(text):
        table = EventTable()
        for line in text.splitlines():
            m = EVENT_TABLE_ENTRY_RE.match(line)
            if m:
                table.constants.add(m.group(1))
                table.names.add(m.group(2))
        return table


def check_obs_event(src, events, findings):
    for m in EVENT_EMIT_RE.finditer(src.code):
        args, _ = balanced_span(src.code, m.start(1))
        if args is None:
            continue
        parts = split_args(args)
        if len(parts) < 2:
            continue  # Not EventLog::emit(request_id, event, ...).
        line = src.line_of(m.start())
        name_arg = parts[1]
        lits = string_literals(name_arg)
        if lits:
            if lits[0] not in events.names and not src.suppressed(
                line, "OBS-EVENT"
            ):
                findings.append(
                    Finding(
                        src.display,
                        line,
                        "OBS-EVENT",
                        f'event name "{lits[0]}" is not registered in '
                        "the FDKS_EVENT_NAMES table "
                        "(src/obs/eventlog.hpp)",
                    )
                )
            continue
        cm = EVENT_CONSTANT_RE.match(name_arg)
        if cm:
            if cm.group(1) not in events.constants and not src.suppressed(
                line, "OBS-EVENT"
            ):
                findings.append(
                    Finding(
                        src.display,
                        line,
                        "OBS-EVENT",
                        f"event constant {name_arg} is not generated by "
                        "the FDKS_EVENT_NAMES table "
                        "(src/obs/eventlog.hpp)",
                    )
                )
            continue
        if not src.suppressed(line, "OBS-EVENT"):
            findings.append(
                Finding(
                    src.display,
                    line,
                    "OBS-EVENT",
                    "dynamic event name (neither a literal nor an "
                    "events::kEv* constant); the event registry cannot "
                    "vouch for it — use a registered constant, or tag "
                    "the site `// fdks-lint: allow(OBS-EVENT)`",
                )
            )


CV_WAIT_RE = re.compile(r"\.wait\(\s*(?:lock|lk|ul|guard)\b[^,)]*\)")


def check_mpisim_deadline(src, findings):
    for m in CV_WAIT_RE.finditer(src.code):
        line = src.line_of(m.start())
        if src.tagged_no_deadline(line):
            continue
        if src.suppressed(line, "MPISIM-DEADLINE"):
            continue
        findings.append(
            Finding(
                src.display,
                line,
                "MPISIM-DEADLINE",
                "deadline-less condition-variable wait; use "
                "wait_until/wait_for with the world deadline, or tag "
                "the site `// no_deadline: <reason>`",
            )
        )


BAN_RAND_RE = re.compile(r"\bstd::rand\b|\bsrand\s*\(|(?<![\w:.>])rand\s*\(")


def check_ban_rand(src, findings):
    for m in BAN_RAND_RE.finditer(src.code):
        line = src.line_of(m.start())
        if not src.suppressed(line, "BAN-RAND"):
            findings.append(
                Finding(
                    src.display,
                    line,
                    "BAN-RAND",
                    "std::rand/srand banned; use a seeded std::mt19937",
                )
            )


NEW_ARRAY_RE = re.compile(r"\bnew\s+(?:\([^)]*\)\s*)?[A-Za-z_][\w:<>,\s]*\[")


def check_ban_new_array(src, findings):
    for m in NEW_ARRAY_RE.finditer(src.code):
        line = src.line_of(m.start())
        if not src.suppressed(line, "BAN-NEW-ARRAY"):
            findings.append(
                Finding(
                    src.display,
                    line,
                    "BAN-NEW-ARRAY",
                    "raw array new banned; use std::vector or "
                    "std::make_unique<T[]>",
                )
            )


ATOX_RE = re.compile(r"\b(?:std::)?(atof|atoi|atol|atoll)\s*(\()")
STRTOX_RE = re.compile(
    r"\b(?:std::)?(strtod|strtof|strtold|strtol|strtoll|strtoul|strtoull)"
    r"\s*(\()"
)


def split_args(expr):
    args, depth, start = [], 0, 0
    i, n = 0, len(expr)
    while i < n:
        c = expr[i]
        if c == '"':
            i += 1
            while i < n:
                if expr[i] == "\\":
                    i += 2
                    continue
                if expr[i] == '"':
                    break
                i += 1
        elif c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(expr[start:i].strip())
            start = i + 1
        i += 1
    tail = expr[start:].strip()
    if tail:
        args.append(tail)
    return args


def check_ban_parse(src, findings):
    for m in ATOX_RE.finditer(src.code):
        line = src.line_of(m.start())
        if not src.suppressed(line, "BAN-PARSE"):
            findings.append(
                Finding(
                    src.display,
                    line,
                    "BAN-PARSE",
                    f"{m.group(1)} cannot report parse errors; use "
                    "strtol/strtod with an end-pointer check",
                )
            )
    for m in STRTOX_RE.finditer(src.code):
        args_text, _ = balanced_span(src.code, m.start(2))
        if args_text is None:
            continue
        args = split_args(args_text)
        if len(args) >= 2 and args[1] in ("nullptr", "NULL", "0"):
            line = src.line_of(m.start())
            if not src.suppressed(line, "BAN-PARSE"):
                findings.append(
                    Finding(
                        src.display,
                        line,
                        "BAN-PARSE",
                        f"{m.group(1)} with a null end pointer cannot "
                        "detect trailing garbage; pass a real end "
                        "pointer and check it",
                    )
                )


BARE_PRINTF_RE = re.compile(r"(?<![\w:])(?:std::)?printf\s*\(")


def check_ban_printf(src, findings):
    for m in re.finditer(r"(?<![\w])(?:std::)?printf\s*\(", src.code):
        # Reject fprintf/snprintf/... by looking at the char before the
        # optional std:: qualifier.
        start = m.start()
        if start > 0 and (src.code[start - 1].isalnum()
                          or src.code[start - 1] in "_:"):
            continue
        line = src.line_of(start)
        if not src.suppressed(line, "BAN-PRINTF"):
            findings.append(
                Finding(
                    src.display,
                    line,
                    "BAN-PRINTF",
                    "printf in library code; report via obs, throw, or "
                    "fprintf(stderr, ...) (bench/ and examples/ are "
                    "exempt from this rule)",
                )
            )


CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)\s*(\{)")
RETHROW_RE = re.compile(
    r"\bthrow\s*;|\bstd::rethrow_exception\b|\bstd::current_exception\b"
    r"|\brethrow_exception\b|\bcurrent_exception\b"
)


def check_catch_rethrow(src, findings):
    for m in CATCH_ALL_RE.finditer(src.code):
        body, _ = balanced_span(src.code, m.start(1), "{", "}")
        line = src.line_of(m.start())
        if body is not None and RETHROW_RE.search(body):
            continue
        if src.suppressed(line, "CATCH-RETHROW"):
            continue
        findings.append(
            Finding(
                src.display,
                line,
                "CATCH-RETHROW",
                "catch (...) must rethrow or capture "
                "std::current_exception(); swallowing unknown "
                "exceptions hides failures",
            )
        )


THROW_STD_RE = re.compile(
    r"\bthrow\s+std::(\w+(?:_error|_argument|_cast|_exception)|logic_error"
    r"|runtime_error|out_of_range|overflow_error|underflow_error"
    r"|length_error|domain_error)\s*(\()"
)
CONTEXT_MSG_RE = re.compile(r"^[A-Za-z_][\w:.~<>\[\]^]*(\(\))?\s*:( |$)")


def check_err_context(src, findings):
    for m in THROW_STD_RE.finditer(src.code):
        args, _ = balanced_span(src.code, m.start(2))
        if args is None:
            continue
        stripped = args.strip()
        # Only judge messages that BEGIN with a literal; computed
        # messages (what + ": " + path) are assumed to carry context.
        if not stripped.startswith('"'):
            continue
        lit = string_literals(stripped)[0] if string_literals(stripped) else ""
        line = src.line_of(m.start())
        if CONTEXT_MSG_RE.match(lit):
            continue
        if src.suppressed(line, "ERR-CONTEXT"):
            continue
        findings.append(
            Finding(
                src.display,
                line,
                "ERR-CONTEXT",
                f'exception message "{lit}" does not name its context; '
                'use the "function: what happened" convention (PR 2)',
            )
        )


# --------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------


def subtree(path, root):
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        return None
    return rel.parts[0] if rel.parts else None


def rules_for(src_path, root):
    top = subtree(src_path, root)
    rules = {"OBS-KEY", "OBS-EVENT", "BAN-RAND", "BAN-NEW-ARRAY",
             "BAN-PARSE", "CATCH-RETHROW"}
    if top == "src":
        rules |= {"MPISIM-DEADLINE", "BAN-PRINTF", "ERR-CONTEXT"}
    return rules


RULE_CHECKS = {
    "MPISIM-DEADLINE": check_mpisim_deadline,
    "BAN-RAND": check_ban_rand,
    "BAN-NEW-ARRAY": check_ban_new_array,
    "BAN-PARSE": check_ban_parse,
    "BAN-PRINTF": check_ban_printf,
    "CATCH-RETHROW": check_catch_rethrow,
    "ERR-CONTEXT": check_err_context,
}


def gather_files(root, explicit_paths):
    if explicit_paths:
        files = []
        for p in explicit_paths:
            p = Path(p)
            if p.is_dir():
                files.extend(
                    f for f in sorted(p.rglob("*"))
                    if f.suffix in CXX_EXTENSIONS
                )
            else:
                files.append(p)
        return files
    files = []
    for d in SCOPE_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(
                f for f in sorted(base.rglob("*"))
                if f.suffix in CXX_EXTENSIONS
            )
    return files


def lint_tree(root, explicit_paths=None, enabled_rules=None):
    root = Path(root)
    registry_path = root / "src" / "obs" / "keys.hpp"
    if not registry_path.is_file():
        print(f"fdks_lint: registry not found: {registry_path}",
              file=sys.stderr)
        return 2, []
    registry = Registry.parse(
        registry_path.read_text(encoding="utf-8"), str(registry_path)
    )
    events_path = root / "src" / "obs" / "eventlog.hpp"
    events = EventTable.parse(
        events_path.read_text(encoding="utf-8")
        if events_path.is_file() else ""
    )

    findings = []
    emitted, fmt_literals = set(), set()
    files = gather_files(root, explicit_paths)
    full_tree = not explicit_paths
    for f in files:
        if f.resolve() == registry_path.resolve():
            continue
        try:
            text = f.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            print(f"fdks_lint: cannot read {f}: {e}", file=sys.stderr)
            return 2, []
        try:
            rel = str(f.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(f)
        src = SourceFile(f, text, display=rel)
        active = rules_for(f, root)
        if enabled_rules is not None:
            active &= enabled_rules
        if "OBS-KEY" in active:
            check_obs_key(src, registry, findings)
        if "OBS-EVENT" in active and f.resolve() != events_path.resolve():
            check_obs_event(src, events, findings)
        collect_emitted(src, registry, emitted, fmt_literals)
        for rule in sorted(active):
            check = RULE_CHECKS.get(rule)
            if check:
                check(src, findings)
    # The registry completeness check only makes sense over the whole
    # tree (a single file never emits every key).
    if full_tree and (enabled_rules is None or "OBS-DEAD" in enabled_rules):
        check_obs_dead(
            registry,
            str(registry_path.resolve().relative_to(root.resolve())),
            emitted,
            fmt_literals,
            findings,
        )
    return (1 if findings else 0), findings


# --------------------------------------------------------------------
# Self-test over committed fixtures
# --------------------------------------------------------------------


def self_test(fixtures_dir):
    """Each fixtures/<RULE>/ dir holds bad_*.cpp (must produce >=1
    finding of exactly that rule) and good_*.cpp (must produce none).
    OBS-KEY / OBS-DEAD fixtures embed their own FDKS_OBS_KEYS table,
    which serves as the registry for that fixture."""
    failures = []
    checked = 0
    for rule in RULE_IDS:
        rule_dir = fixtures_dir / rule
        if not rule_dir.is_dir():
            failures.append(f"{rule}: no fixtures directory {rule_dir}")
            continue
        bads = sorted(rule_dir.glob("bad_*"))
        goods = sorted(rule_dir.glob("good_*"))
        if not bads or not goods:
            failures.append(
                f"{rule}: needs at least one bad_* and one good_* fixture"
            )
            continue
        for fx in bads + goods:
            checked += 1
            findings = lint_fixture(fx, rule)
            expect_bad = fx.name.startswith("bad_")
            mine = [f for f in findings if f.rule == rule]
            other = [f for f in findings if f.rule != rule]
            if other:
                failures.append(
                    f"{fx}: unexpected findings from other rules: "
                    + "; ".join(map(str, other))
                )
            if expect_bad and not mine:
                failures.append(f"{fx}: expected a {rule} finding, got none")
            if not expect_bad and mine:
                failures.append(
                    f"{fx}: expected clean, got: " + "; ".join(map(str, mine))
                )
    for line in failures:
        print(f"self-test FAIL: {line}", file=sys.stderr)
    if not failures:
        print(f"fdks_lint --self-test: {checked} fixtures OK "
              f"({len(RULE_IDS)} rules)")
    return 1 if failures else 0


def lint_fixture(path, rule):
    text = path.read_text(encoding="utf-8")
    src = SourceFile(path, text, display=str(path))
    findings = []
    if rule in ("OBS-KEY", "OBS-DEAD"):
        registry = Registry.parse(text, str(path))
        if rule == "OBS-KEY":
            check_obs_key(src, registry, findings)
        else:
            emitted, fmts = set(), set()
            collect_emitted(src, registry, emitted, fmts)
            check_obs_dead(registry, str(path), emitted, fmts, findings)
        return findings
    if rule == "OBS-EVENT":
        # Fixtures embed their own FDKS_EVENT_NAMES table.
        check_obs_event(src, EventTable.parse(text), findings)
        return findings
    RULE_CHECKS[rule](src, findings)
    return findings


def main(argv):
    ap = argparse.ArgumentParser(
        prog="fdks_lint.py",
        description="fdks project linter (see module docstring)",
    )
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule IDs to run (default: all)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the committed fixture suite and exit")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("paths", nargs="*",
                    help="files or directories (default: src bench examples)")
    args = ap.parse_args(argv)

    script_dir = Path(__file__).resolve().parent
    root = Path(args.root) if args.root else script_dir.parent.parent

    if args.list_rules:
        for r in RULE_IDS:
            print(r)
        return 0
    if args.self_test:
        return self_test(script_dir / "fixtures")

    enabled = None
    if args.rules:
        enabled = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = enabled - set(RULE_IDS)
        if unknown:
            print(f"fdks_lint: unknown rules: {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
    rc, findings = lint_tree(root, args.paths or None, enabled)
    for f in findings:
        print(f)
    if findings:
        print(f"fdks_lint: {len(findings)} finding(s)", file=sys.stderr)
    return rc


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
