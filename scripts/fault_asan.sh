#!/usr/bin/env bash
# Build the tree under AddressSanitizer and run the fault-tolerance test
# suite (everything labeled "fault"). The ASan counterpart to
# scripts/fault_tsan.sh: TSan finds the races, ASan finds the
# use-after-frees and overflows in the retransmit/checkpoint paths.
#
# Equivalent to:
#   cmake --preset asan-fault && cmake --build --preset asan-fault -j
#   ctest --preset asan-fault -j
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan-fault
cmake --build --preset asan-fault -j "$(nproc)"
ctest --preset asan-fault -j "$(nproc)"
