#!/usr/bin/env bash
# One-shot static-analysis gate: project linter, warnings-as-errors
# build, clang-tidy summary. Exits 0 only when the tree is clean;
# nonzero on any lint finding or strict-build failure. Run this before
# sending a PR (also registered with ctest as the "lint" label, which
# covers the linter self-test portion).
#
# Stages:
#   1. fdks_lint.py --self-test     linter fixtures (sanity of the tool)
#   2. fdks_lint.py over the tree   project rules (obs keys, deadlines,
#                                   banned constructs, error style)
#   3. strict build                 -Wall -Wextra -Wconversion -Wshadow
#                                   -Werror (CMake preset "strict")
#   4. clang-tidy summary           only when clang-tidy is installed;
#                                   runs through the strict build's
#                                   CXX_CLANG_TIDY hook, so a tidy
#                                   diagnostic fails stage 3 already.
#                                   This stage just reports what ran.
#   5. verify suite                 ctest -L verify against the default
#                                   build/ tree (certification ladder,
#                                   factor-integrity self-healing,
#                                   certified serving); skipped with a
#                                   note when build/ hasn't been
#                                   configured yet.
#   6. telemetry suite              ctest -L telemetry (Prometheus
#                                   exposition conformance, scrape
#                                   endpoint, event-log terminal-event
#                                   invariant, tail tracing, SLO
#                                   tracker); same build/ precondition
#                                   as stage 5.
set -uo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 4)"
failures=0

stage() { printf '\n== check.sh: %s ==\n' "$*"; }

stage "linter self-test"
if ! python3 scripts/lint/fdks_lint.py --self-test; then
  failures=$((failures + 1))
fi

stage "fdks_lint over src/ bench/ examples/"
if ! python3 scripts/lint/fdks_lint.py --root .; then
  failures=$((failures + 1))
fi

stage "strict build (-Werror, preset 'strict')"
if ! cmake --preset strict >/dev/null; then
  failures=$((failures + 1))
elif ! cmake --build --preset strict -j "$jobs"; then
  failures=$((failures + 1))
fi

stage "verify suite (ctest -L verify)"
if [ -f build/CTestTestfile.cmake ]; then
  if ! cmake --build build -j "$jobs" --target verify_test >/dev/null; then
    failures=$((failures + 1))
  elif ! ctest --test-dir build -L verify --output-on-failure; then
    failures=$((failures + 1))
  fi
else
  echo "build/ not configured; skipped (cmake -B build -S . first)."
fi

stage "telemetry suite (ctest -L telemetry)"
if [ -f build/CTestTestfile.cmake ]; then
  if ! cmake --build build -j "$jobs" --target telemetry_test >/dev/null; then
    failures=$((failures + 1))
  elif ! ctest --test-dir build -L telemetry --output-on-failure; then
    failures=$((failures + 1))
  fi
else
  echo "build/ not configured; skipped (cmake -B build -S . first)."
fi

stage "clang-tidy summary"
if tidy_exe="$(command -v clang-tidy 2>/dev/null)"; then
  echo "clang-tidy found at ${tidy_exe}; diagnostics were enforced"
  echo "during the strict build via CXX_CLANG_TIDY (see .clang-tidy)."
else
  echo "clang-tidy not installed; skipped (strict -Werror build still ran)."
fi

echo
if [ "$failures" -ne 0 ]; then
  echo "check.sh: FAILED (${failures} stage(s) reported problems)"
  exit 1
fi
echo "check.sh: OK"
