#!/usr/bin/env bash
# Refresh the bench-regression baselines under bench/baselines/.
#
# Runs the same small-N bench variants as the "bench-smoke" ctest label
# (sizes MUST stay in sync with bench/CMakeLists.txt), copies the fresh
# BENCH_*.json over the committed baselines, and re-runs the gate's
# self-test. Review the diff before committing: a baseline update is a
# statement that the new counter profile is the intended one, not noise.
#
#   scripts/update_baselines.sh            # default build preset
#   FDKS_BUILD_DIR=build-foo scripts/update_baselines.sh
set -euo pipefail

cd "$(dirname "$0")/.."

# Keep in sync with the bench-smoke tests in bench/CMakeLists.txt.
FIG4_SMOKE_N=4096
TABLE5_SMOKE_N=2048
SERVING_SMOKE_N=2048

BUILD_DIR="${FDKS_BUILD_DIR:-build}"
if [[ ! -d "$BUILD_DIR" ]]; then
  cmake --preset default
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target bench_fig4_scaling bench_table5_hybrid_vs_direct bench_serving

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

(cd "$workdir" && "$OLDPWD/$BUILD_DIR/bench/bench_fig4_scaling" "$FIG4_SMOKE_N")
(cd "$workdir" && "$OLDPWD/$BUILD_DIR/bench/bench_table5_hybrid_vs_direct" "$TABLE5_SMOKE_N")
(cd "$workdir" && "$OLDPWD/$BUILD_DIR/bench/bench_serving" "$SERVING_SMOKE_N")

mkdir -p bench/baselines
cp "$workdir"/BENCH_fig4_scaling.json \
   "$workdir"/BENCH_table5_hybrid_vs_direct.json \
   "$workdir"/BENCH_serving.json \
   bench/baselines/

python3 scripts/bench_compare.py --self-test

echo "baselines refreshed:"
git diff --stat bench/baselines || true
