#!/usr/bin/env python3
"""Bench regression gate: diff fresh BENCH_*.json against baselines.

Usage:
  bench_compare.py --check [--baseline-dir DIR] [--observed-dir DIR]
                   [--timing-factor F] [NAME...]
  bench_compare.py --self-test [--baseline-dir DIR]

--check compares every BENCH_<name>.json present in the observed
directory (default: cwd) whose baseline exists under the baseline
directory (default: bench/baselines next to this script's repo). Pass
explicit NAMEs (e.g. fig4_scaling) to restrict the set. Exit status 0 =
within tolerance, 1 = regression (each offense printed as
"FAIL <file> <metric>: baseline=<b> observed=<o> allowed=<threshold>"),
2 = usage/IO error.

What is gated, and how:

  config     must match the baseline exactly — a differently-sized run
             is not comparable, and silently comparing it would let a
             shrunken benchmark masquerade as a speedup.
  counters   deterministic work measures (flops, messages, bytes,
             skeleton ranks, GMRES iterations): observed must stay
             within a relative band of the baseline plus a small
             absolute slack for tiny counts. Counters prefixed "mem."
             get a wider band (allocator noise). Growth AND collapse
             both fail: a counter collapsing to ~0 usually means the
             code path stopped running, which is a bug the gate should
             catch, not a win.
  gauges     last-value levels (cache residency, SLO budget): gated on
             presence plus a 2x magnitude band like "mem." counters —
             levels wobble with timing, but a gauge that vanishes or
             changes order of magnitude means its feeder stopped
             running or broke.
  histograms sample counts gated like counters; quantiles not gated
             (they are timing-shaped).
  timers     presence-only by default — wall-clock on shared CI
             hardware is too noisy for a hard gate. Opt in with
             --timing-factor F to additionally require every baseline
             timer's seconds <= F * baseline.

--self-test exercises the gate against itself: every baseline must pass
unmodified, and must fail (naming the metric) after an in-memory 2x
doctoring of one counter. Guards against the gate silently passing
everything.

Baselines are refreshed with scripts/update_baselines.sh (see
DESIGN.md section 4d for the workflow).
"""

import argparse
import copy
import json
import os
import sys

# Relative band for counters, plus absolute slack so counts of a few
# (e.g. ckpt.saved=2) don't fail on +/-1 jitter.
COUNTER_REL_TOL = 0.25
COUNTER_ABS_SLACK = 16.0
# Memory counters: allocator/map noise is larger than work noise.
MEM_PREFIXES = ("mem.",)
MEM_FACTOR = 2.0


def repo_default_baseline_dir():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.join(os.path.dirname(here), "bench", "baselines")


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def counter_band(name, base):
    """Return (lo, hi) allowed band for a counter."""
    if any(name.startswith(p) for p in MEM_PREFIXES):
        return (base / MEM_FACTOR - COUNTER_ABS_SLACK,
                base * MEM_FACTOR + COUNTER_ABS_SLACK)
    slack = abs(base) * COUNTER_REL_TOL + COUNTER_ABS_SLACK
    return (base - slack, base + slack)


def walk_timers(nodes, prefix=""):
    for n in nodes:
        name = prefix + n.get("name", "?")
        yield name, n
        yield from walk_timers(n.get("children", []), name + "/")


def compare(base, obs, timing_factor=None):
    """Yield failure tuples (metric, baseline, observed, allowed)."""
    bcfg, ocfg = base.get("config", {}), obs.get("config", {})
    if bcfg != ocfg:
        yield ("config", json.dumps(bcfg, sort_keys=True),
               json.dumps(ocfg, sort_keys=True), "exact match")
        return  # Different run shape: numbers below are meaningless.

    bctr, octr = base.get("counters", {}), obs.get("counters", {})
    for name, bval in sorted(bctr.items()):
        if name not in octr:
            yield ("counters." + name, bval, "missing", "present")
            continue
        lo, hi = counter_band(name, bval)
        if not (lo <= octr[name] <= hi):
            yield ("counters." + name, bval, octr[name],
                   "[%g, %g]" % (lo, hi))

    bg, og = base.get("gauges", {}), obs.get("gauges", {})
    for name, bval in sorted(bg.items()):
        if name not in og:
            yield ("gauges." + name, bval, "missing", "present")
            continue
        # Magnitude band, like mem.* counters: levels are timing-shaped,
        # so only order-of-magnitude drift (or disappearance) fails.
        lo = bval / MEM_FACTOR - COUNTER_ABS_SLACK
        hi = bval * MEM_FACTOR + COUNTER_ABS_SLACK
        if not (lo <= og[name] <= hi):
            yield ("gauges." + name, bval, og[name], "[%g, %g]" % (lo, hi))

    bh, oh = base.get("histograms", {}), obs.get("histograms", {})
    for name, bhist in sorted(bh.items()):
        if name not in oh:
            yield ("histograms." + name, bhist.get("count"), "missing",
                   "present")
            continue
        bcount = float(bhist.get("count", 0))
        lo, hi = counter_band(name, bcount)
        ocount = float(oh[name].get("count", 0))
        if not (lo <= ocount <= hi):
            yield ("histograms.%s.count" % name, bcount, ocount,
                   "[%g, %g]" % (lo, hi))

    otimers = dict(walk_timers(obs.get("timers", [])))
    for name, bnode in walk_timers(base.get("timers", [])):
        if name not in otimers:
            yield ("timers." + name, bnode.get("seconds"), "missing",
                   "present")
            continue
        if timing_factor is not None:
            allowed = bnode.get("seconds", 0.0) * timing_factor
            got = otimers[name].get("seconds", 0.0)
            if got > allowed:
                yield ("timers.%s.seconds" % name, bnode.get("seconds"),
                       got, "<= %g (%gx)" % (allowed, timing_factor))


def check_one(fname, base, obs, timing_factor):
    failures = list(compare(base, obs, timing_factor))
    for metric, bval, oval, allowed in failures:
        print("FAIL %s %s: baseline=%s observed=%s allowed=%s"
              % (fname, metric, bval, oval, allowed))
    return not failures


def run_check(args):
    names = args.names
    if not names:
        names = sorted(
            f[len("BENCH_"):-len(".json")]
            for f in os.listdir(args.observed_dir)
            if f.startswith("BENCH_") and f.endswith(".json"))
    if not names:
        print("bench_compare: no BENCH_*.json under %s" % args.observed_dir,
              file=sys.stderr)
        return 2
    rc, compared = 0, 0
    for name in names:
        fname = "BENCH_%s.json" % name
        bpath = os.path.join(args.baseline_dir, fname)
        opath = os.path.join(args.observed_dir, fname)
        if not os.path.exists(bpath):
            print("skip %s: no baseline (add with scripts/"
                  "update_baselines.sh)" % fname)
            continue
        if not os.path.exists(opath):
            print("FAIL %s: baseline exists but no observed run at %s"
                  % (fname, opath))
            rc = 1
            continue
        compared += 1
        if check_one(fname, load(bpath), load(opath), args.timing_factor):
            print("ok   %s" % fname)
        else:
            rc = 1
    if compared == 0 and rc == 0:
        print("bench_compare: nothing compared (no baselines for: %s)"
              % ", ".join(names), file=sys.stderr)
        return 2
    return rc


def run_self_test(args):
    files = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not files:
        print("self-test: no baselines under %s" % args.baseline_dir,
              file=sys.stderr)
        return 2
    for fname in files:
        base = load(os.path.join(args.baseline_dir, fname))
        if list(compare(base, base)):
            print("self-test FAIL: %s does not pass against itself" % fname)
            return 1
        counters = base.get("counters", {})
        if not counters:
            print("self-test FAIL: %s has no counters to gate" % fname)
            return 1
        doctored_name = sorted(counters)[0]
        doctored = copy.deepcopy(base)
        doctored["counters"][doctored_name] = \
            counters[doctored_name] * 2.0 + 10 * COUNTER_ABS_SLACK
        fails = list(compare(base, doctored))
        named = [m for m, _, _, _ in fails]
        if ("counters." + doctored_name) not in named:
            print("self-test FAIL: %s did not flag doctored 2x regression "
                  "on %s (flagged: %s)" % (fname, doctored_name, named))
            return 1
        print("self-test ok: %s (gate names counters.%s on 2x doctoring)"
              % (fname, doctored_name))
    return 0


def main():
    ap = argparse.ArgumentParser(
        description="diff BENCH_*.json against committed baselines")
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="compare observed runs against baselines")
    mode.add_argument("--self-test", action="store_true",
                      help="verify the gate fails on a doctored regression")
    ap.add_argument("--baseline-dir", default=repo_default_baseline_dir())
    ap.add_argument("--observed-dir", default=os.getcwd())
    ap.add_argument("--timing-factor", type=float, default=None,
                    help="also gate timer seconds at F x baseline "
                         "(off by default: wall clock is noisy)")
    ap.add_argument("names", nargs="*",
                    help="bench names (default: all observed)")
    args = ap.parse_args()
    if not os.path.isdir(args.baseline_dir):
        print("bench_compare: baseline dir %s missing" % args.baseline_dir,
              file=sys.stderr)
        return 2
    return run_self_test(args) if args.self_test else run_check(args)


if __name__ == "__main__":
    sys.exit(main())
