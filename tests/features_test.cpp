// Tests for the extended solver features: compact-W storage (§III
// memory reduction), lambda re-factorization (cross-validation fast
// path), task-parallel factorization, and the exact-system
// preconditioned solve.
#include <gtest/gtest.h>

#include <random>

#include "core/hybrid.hpp"
#include "core/preconditioned.hpp"
#include "core/solver.hpp"
#include "la/blas1.hpp"
#include "la/gemm.hpp"
#include "la/lu.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig cfg() {
  AskitConfig c;
  c.leaf_size = 32;
  c.max_rank = 48;
  c.tol = 1e-8;
  c.num_neighbors = 8;
  c.seed = 7;
  return c;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

// ---------------------------------------------------------- compact W --

TEST(CompactW, SolutionMatchesDenseStorage) {
  const index_t n = 300;
  Matrix p = clustered_points(3, n, 1);
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg());
  SolverOptions dense_opts, compact_opts;
  dense_opts.lambda = compact_opts.lambda = 0.5;
  compact_opts.compact_w = true;
  FastDirectSolver dense(h, dense_opts);
  FastDirectSolver compact(h, compact_opts);
  auto u = random_vec(n, 2);
  auto xd = dense.solve(u);
  auto xc = compact.solve(u);
  EXPECT_LT(la::nrm2(la::vsub(xd, xc)) / la::nrm2(xd), 1e-12);
}

TEST(CompactW, UsesLessMemory) {
  const index_t n = 1024;
  Matrix p = clustered_points(3, n, 3);
  AskitConfig c = cfg();
  c.leaf_size = 64;
  askit::HMatrix h(p, Kernel::gaussian(1.0), c);
  SolverOptions dense_opts, compact_opts;
  dense_opts.lambda = compact_opts.lambda = 1.0;
  compact_opts.compact_w = true;
  // Matrix-free V in both, so the comparison isolates the P^ storage.
  dense_opts.scheme = compact_opts.scheme = kernel::Scheme::Gsks;
  FastDirectSolver dense(h, dense_opts);
  FastDirectSolver compact(h, compact_opts);
  EXPECT_LT(compact.factor_bytes(), dense.factor_bytes());
}

TEST(CompactW, DensePhatReconstructionMatches) {
  const index_t n = 256;
  Matrix p = clustered_points(2, n, 4);
  askit::HMatrix h(p, Kernel::gaussian(1.2), cfg());
  SolverOptions dense_opts, compact_opts;
  dense_opts.lambda = compact_opts.lambda = 0.3;
  compact_opts.compact_w = true;
  FastDirectSolver dense(h, dense_opts);
  FastDirectSolver compact(h, compact_opts);
  for (index_t id = 1; id < static_cast<index_t>(h.tree().nodes().size());
       ++id) {
    Matrix a = dense.factor_tree().dense_phat(id);
    Matrix b = compact.factor_tree().dense_phat(id);
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    if (a.size() > 0) {
      EXPECT_LT(la::max_abs_diff(a, b), 1e-11);
    }
  }
}

TEST(CompactW, RejectsSubtreeBaseline) {
  const index_t n = 128;
  Matrix p = clustered_points(2, n, 5);
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg());
  SolverOptions opts;
  opts.compact_w = true;
  opts.algo = FactorizationAlgo::Subtree;
  EXPECT_THROW(FastDirectSolver(h, opts), std::invalid_argument);
}

TEST(CompactW, HybridSolverWorksInCompactMode) {
  const index_t n = 384;
  Matrix p = clustered_points(3, n, 6);
  AskitConfig c = cfg();
  c.level_restriction = 2;
  askit::HMatrix h(p, Kernel::gaussian(1.0), c);
  HybridOptions ho;
  ho.direct.lambda = 0.8;
  ho.direct.compact_w = true;
  ho.gmres.rtol = 1e-11;
  HybridSolver hy(h, ho);
  auto u = random_vec(n, 7);
  auto x = hy.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 0.8), 1e-9);
}

// ------------------------------------------------------- refactorize --

TEST(Refactorize, MatchesFreshFactorization) {
  const index_t n = 300;
  Matrix p = clustered_points(3, n, 8);
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg());
  SolverOptions opts;
  opts.lambda = 1.0;
  FastDirectSolver solver(h, opts);
  auto u = random_vec(n, 9);

  for (double lambda : {0.01, 0.5, 10.0}) {
    solver.refactorize(lambda);
    auto x1 = solver.solve(u);
    SolverOptions fresh;
    fresh.lambda = lambda;
    FastDirectSolver ref(h, fresh);
    auto x2 = ref.solve(u);
    EXPECT_LT(la::nrm2(la::vsub(x1, x2)) / la::nrm2(x2), 1e-12)
        << "lambda=" << lambda;
    // Small lambda amplifies the relative residual (conditioning), so
    // the bound is looser than the x1 == x2 check above.
    EXPECT_LT(h.relative_residual(x1, u, lambda), 1e-7);
  }
}

TEST(Refactorize, ReusesStoredKernelBlocks) {
  // With the stored-GEMV scheme the V blocks dominate setup cost at
  // high d; a re-factorization that reuses them must not be slower than
  // 2x... we assert correctness plus that bytes don't grow.
  const index_t n = 512;
  Matrix p = clustered_points(8, n, 10);
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg());
  SolverOptions opts;
  opts.lambda = 1.0;
  FastDirectSolver solver(h, opts);
  const size_t bytes_before = solver.factor_bytes();
  solver.refactorize(2.0);
  EXPECT_EQ(solver.factor_bytes(), bytes_before);
  auto u = random_vec(n, 11);
  auto x = solver.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 2.0), 1e-10);
}

// ----------------------------------------------------- parallel tasks --

TEST(ParallelTree, SameFactorizationAsSerial) {
  const index_t n = 512;
  Matrix p = clustered_points(3, n, 12);
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg());
  SolverOptions serial_opts, par_opts;
  serial_opts.lambda = par_opts.lambda = 0.7;
  par_opts.parallel_tree = true;
  FastDirectSolver serial(h, serial_opts);
  FastDirectSolver parallel(h, par_opts);
  auto u = random_vec(n, 13);
  auto xs = serial.solve(u);
  auto xp = parallel.solve(u);
  EXPECT_LT(la::nrm2(la::vsub(xs, xp)) / la::nrm2(xs), 1e-13);
  EXPECT_EQ(serial.stability().flagged_nodes,
            parallel.stability().flagged_nodes);
}

// ------------------------------------------- preconditioned exact solve

TEST(ExactApply, MatchesDenseMatrix) {
  const index_t n = 150;
  Matrix p = clustered_points(3, n, 14);
  const Kernel k = Kernel::gaussian(1.0);
  askit::HMatrix h(p, k, cfg());
  kernel::KernelMatrix dense(p, k);
  Matrix kf = dense.full();
  auto w = random_vec(n, 15);
  std::vector<double> y1(static_cast<size_t>(n)), y2(static_cast<size_t>(n));
  exact_apply(h, 0.7, w, y1);
  la::gemv(la::Trans::No, 1.0, kf, w, 0.0, y2);
  la::axpy(0.7, w, y2);
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(y1[static_cast<size_t>(i)], y2[static_cast<size_t>(i)],
                1e-11);
}

TEST(Preconditioned, ReachesDenseAccuracyInFewIterations) {
  const index_t n = 400;
  Matrix p = clustered_points(3, n, 16);
  AskitConfig c = cfg();
  c.tol = 1e-4;  // Coarse compression: direct solve alone is only ~1e-3.
  askit::HMatrix h(p, Kernel::gaussian(0.8), c);
  SolverOptions so;
  so.lambda = 0.5;
  FastDirectSolver m(h, so);
  auto u = random_vec(n, 17);

  iter::GmresOptions go;
  go.rtol = 1e-12;
  go.max_iters = 40;
  ExactSolveResult r = solve_exact_preconditioned(h, m, u, go);
  EXPECT_TRUE(r.gmres.converged);
  EXPECT_LT(r.gmres.iterations, 30);
  EXPECT_LT(r.exact_residual, 1e-10);

  // Verify against a dense LU of the true system.
  kernel::KernelMatrix dense(p, Kernel::gaussian(0.8));
  Matrix a = dense.full();
  for (index_t i = 0; i < n; ++i) a(i, i) += 0.5;
  la::LuFactor f = la::lu_factor(a);
  std::vector<double> xd = u;
  la::lu_solve(f, xd);
  EXPECT_LT(la::nrm2(la::vsub(r.x, xd)) / la::nrm2(xd), 1e-8);
}

// ------------------------------------------------------- SPD leaves ----

TEST(SpdLeaves, MatchesLuPath) {
  const index_t n = 300;
  Matrix p = clustered_points(3, n, 30);
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg());
  SolverOptions lu_opts, ch_opts;
  lu_opts.lambda = ch_opts.lambda = 0.8;
  ch_opts.spd_leaves = true;
  FastDirectSolver lu(h, lu_opts);
  FastDirectSolver ch(h, ch_opts);
  EXPECT_TRUE(ch.stability().stable());
  auto u = random_vec(n, 31);
  auto x1 = lu.solve(u);
  auto x2 = ch.solve(u);
  EXPECT_LT(la::nrm2(la::vsub(x1, x2)) / la::nrm2(x1), 1e-11);
}

TEST(SpdLeaves, FallsBackToLuWhenNotSpd) {
  // A large negative lambda makes lambda I + K_aa indefinite: the
  // Cholesky attempt must fall back to LU and still solve correctly.
  const index_t n = 128;
  Matrix p = clustered_points(2, n, 32);
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg());
  SolverOptions opts;
  opts.lambda = -5.0;
  opts.spd_leaves = true;
  FastDirectSolver solver(h, opts);
  auto u = random_vec(n, 33);
  auto x = solver.solve(u);
  EXPECT_LT(h.relative_residual(x, u, -5.0), 1e-8);
}

TEST(Preconditioned, BeatsUnpreconditionedIterations) {
  const index_t n = 400;
  Matrix p = clustered_points(3, n, 18);
  AskitConfig c = cfg();
  c.tol = 1e-5;
  askit::HMatrix h(p, Kernel::gaussian(0.6), c);
  SolverOptions so;
  so.lambda = 0.05;  // Mildly ill-conditioned exact system.
  FastDirectSolver m(h, so);
  auto u = random_vec(n, 19);
  iter::GmresOptions go;
  go.rtol = 1e-10;
  go.max_iters = 200;
  ExactSolveResult pre = solve_exact_preconditioned(h, m, u, go);
  ExactSolveResult unpre = solve_exact_unpreconditioned(h, 0.05, u, go);
  EXPECT_TRUE(pre.gmres.converged);
  EXPECT_LT(pre.gmres.iterations, unpre.gmres.iterations);
}

}  // namespace
}  // namespace fdks::core
