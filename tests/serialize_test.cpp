// Tests for HMatrix binary serialization: the loaded representation must
// be operationally identical to the saved one (matvecs, frontier,
// solver results). Also covers the checkpoint layer built on the same
// wire format: FactorTree checkpoints must round-trip bit-exactly, and
// damaged files (flipped byte, truncation, wrong identity) must be
// rejected with a diagnostic naming the reason — never loaded.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <random>
#include <unistd.h>

#include "askit/serialize.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/solver.hpp"
#include "data/generators.hpp"
#include "la/blas1.hpp"

namespace fdks::askit {
namespace {

namespace fs = std::filesystem;
using la::Matrix;
using la::index_t;

class SerializeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdks_ser_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string path(const char* name) { return (dir_ / name).string(); }
  fs::path dir_;
};

HMatrix build_sample(index_t n, index_t level_restriction = 0) {
  data::Dataset ds =
      data::make_synthetic(data::SyntheticKind::CovtypeLike, n, 31);
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-6;
  cfg.num_neighbors = 4;
  cfg.level_restriction = level_restriction;
  cfg.seed = 17;
  return HMatrix(ds.points, Kernel::gaussian(3.0), cfg);
}

TEST_F(SerializeTest, RoundTripPreservesStructure) {
  HMatrix h = build_sample(300);
  save_hmatrix(path("h.bin"), h);
  HMatrix back = load_hmatrix(path("h.bin"));

  EXPECT_EQ(back.n(), h.n());
  EXPECT_EQ(back.dim(), h.dim());
  EXPECT_EQ(back.tree().perm(), h.tree().perm());
  EXPECT_EQ(back.tree().nodes().size(), h.tree().nodes().size());
  EXPECT_EQ(back.frontier(), h.frontier());
  EXPECT_EQ(back.stats().skeletonized_nodes, h.stats().skeletonized_nodes);
  for (index_t id = 0; id < static_cast<index_t>(h.tree().nodes().size());
       ++id) {
    EXPECT_EQ(back.is_skeletonized(id), h.is_skeletonized(id));
    EXPECT_EQ(back.skeleton(id).skel, h.skeleton(id).skel);
    if (h.skeleton(id).proj.size() > 0) {
      EXPECT_EQ(la::max_abs_diff(back.skeleton(id).proj,
                                 h.skeleton(id).proj),
                0.0);
    }
  }
}

TEST_F(SerializeTest, MatvecsAreBitIdentical) {
  HMatrix h = build_sample(256);
  save_hmatrix(path("h.bin"), h);
  HMatrix back = load_hmatrix(path("h.bin"));
  std::mt19937_64 rng(5);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> w(256);
  for (auto& v : w) v = g(rng);
  std::vector<double> y1(256), y2(256);
  h.apply(w, y1, 0.3);
  back.apply(w, y2, 0.3);
  for (size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST_F(SerializeTest, SolverOnLoadedMatchesOriginal) {
  HMatrix h = build_sample(320, /*level_restriction=*/2);
  save_hmatrix(path("h.bin"), h);
  HMatrix back = load_hmatrix(path("h.bin"));

  core::SolverOptions so;
  so.lambda = 1.0;
  core::FastDirectSolver s1(h, so);
  core::FastDirectSolver s2(back, so);
  std::mt19937_64 rng(6);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> u(320);
  for (auto& v : u) v = g(rng);
  auto x1 = s1.solve(u);
  auto x2 = s2.solve(u);
  EXPECT_LT(la::nrm2(la::vsub(x1, x2)) / la::nrm2(x1), 1e-14);
}

TEST_F(SerializeTest, RejectsCorruptFiles) {
  EXPECT_THROW(load_hmatrix(path("missing.bin")), std::runtime_error);
  {
    std::ofstream junk(path("junk.bin"), std::ios::binary);
    junk << "garbage";
  }
  EXPECT_THROW(load_hmatrix(path("junk.bin")), std::runtime_error);
}

TEST_F(SerializeTest, KernelParametersSurvive) {
  data::Dataset ds = data::make_synthetic(data::SyntheticKind::SusyLike,
                                          128, 7);
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 32;
  cfg.tol = 1e-5;
  cfg.num_neighbors = 0;
  HMatrix h(ds.points, Kernel::matern32(1.7), cfg);
  save_hmatrix(path("m.bin"), h);
  HMatrix back = load_hmatrix(path("m.bin"));
  EXPECT_EQ(back.kernel().type, kernel::KernelType::Matern32);
  EXPECT_EQ(back.kernel().bandwidth, 1.7);
  EXPECT_EQ(back.config().tol, 1e-5);
  EXPECT_EQ(back.config().leaf_size, 32);
}

// ---- Checkpoint layer (src/ckpt, same wire-format family) ------------

TEST_F(SerializeTest, FactorTreeCheckpointRoundTripsBitExactly) {
  HMatrix h = build_sample(256);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FactorTree ft(h, so);
  const index_t root = h.tree().root();
  ft.factorize_subtree(root, /*compute_phat=*/false);
  const index_t roots[] = {root};
  ckpt::save_factor_tree(path("f.ckpt"), ft, roots, "test");

  core::FactorTree back(h, so);
  ckpt::load_factor_tree(path("f.ckpt"), back, roots, "test");

  std::mt19937_64 rng(9);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> u(256);
  for (auto& v : u) v = g(rng);
  std::vector<double> x1 = h.to_tree_order(u);
  std::vector<double> x2 = x1;
  ft.solve_subtree(root, x1);
  back.solve_subtree(root, x2);
  for (size_t i = 0; i < x1.size(); ++i)
    EXPECT_EQ(x1[i], x2[i]) << "restored factors must be bit-identical";

  // The factor-status accumulators travel with the factors.
  EXPECT_EQ(back.factor_status().code, ft.factor_status().code);
  EXPECT_EQ(back.factor_status().shifted_nodes,
            ft.factor_status().shifted_nodes);
  EXPECT_EQ(back.factor_status().lambda_effective,
            ft.factor_status().lambda_effective);
}

TEST_F(SerializeTest, CheckpointRejectsSingleFlippedByte) {
  HMatrix h = build_sample(200);
  core::SolverOptions so;
  core::FactorTree ft(h, so);
  const index_t roots[] = {h.tree().root()};
  ft.factorize_subtree(roots[0], false);
  ckpt::save_factor_tree(path("c.ckpt"), ft, roots, "test");

  const auto size = fs::file_size(path("c.ckpt"));
  {
    std::fstream f(path("c.ckpt"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&b, 1);
  }

  core::FactorTree back(h, so);
  std::string diag;
  EXPECT_FALSE(ckpt::try_load_factor_tree(path("c.ckpt"), back, roots,
                                          "test", &diag));
  EXPECT_NE(diag.find("checksum mismatch"), std::string::npos) << diag;
  EXPECT_THROW(ckpt::load_factor_tree(path("c.ckpt"), back, roots, "test"),
               ckpt::CheckpointError);
}

TEST_F(SerializeTest, CheckpointRejectsTruncation) {
  HMatrix h = build_sample(200);
  core::SolverOptions so;
  core::FactorTree ft(h, so);
  const index_t roots[] = {h.tree().root()};
  ft.factorize_subtree(roots[0], false);
  ckpt::save_factor_tree(path("t.ckpt"), ft, roots, "test");
  fs::resize_file(path("t.ckpt"), fs::file_size(path("t.ckpt")) / 2);

  core::FactorTree back(h, so);
  std::string diag;
  EXPECT_FALSE(ckpt::try_load_factor_tree(path("t.ckpt"), back, roots,
                                          "test", &diag));
  EXPECT_NE(diag.find("truncated"), std::string::npos) << diag;
}

TEST_F(SerializeTest, CheckpointRejectsWrongIdentity) {
  HMatrix h = build_sample(200);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FactorTree ft(h, so);
  const index_t roots[] = {h.tree().root()};
  ft.factorize_subtree(roots[0], false);
  ckpt::save_factor_tree(path("i.ckpt"), ft, roots, "test");

  // Same HMatrix, different lambda: the fingerprint must not match —
  // restoring these factors would silently solve the wrong system.
  core::SolverOptions other = so;
  other.lambda = 2.0;
  core::FactorTree wrong_opts(h, other);
  std::string diag;
  EXPECT_FALSE(ckpt::try_load_factor_tree(path("i.ckpt"), wrong_opts, roots,
                                          "test", &diag));
  EXPECT_NE(diag.find("fingerprint mismatch"), std::string::npos) << diag;

  // Same tree and options, different scope: also a different identity.
  core::FactorTree wrong_scope(h, so);
  EXPECT_FALSE(ckpt::try_load_factor_tree(path("i.ckpt"), wrong_scope, roots,
                                          "other-scope", &diag));
  EXPECT_NE(diag.find("fingerprint mismatch"), std::string::npos) << diag;

  // Missing file: clean refusal, not an exception, on the try_ path.
  EXPECT_FALSE(ckpt::try_load_factor_tree(path("absent.ckpt"), wrong_scope,
                                          roots, "test", &diag));
  EXPECT_NE(diag.find("no checkpoint"), std::string::npos) << diag;
}

TEST_F(SerializeTest, StageMarkersRoundTripAndSurviveCorruption) {
  const std::string d = (dir_ / "stages").string();
  ckpt::ensure_dir(d);
  EXPECT_FALSE(ckpt::stage_done(d, "compress"));
  ckpt::mark_stage(d, "compress", "hmatrix.bin");
  std::string detail;
  EXPECT_TRUE(ckpt::stage_done(d, "compress", &detail));
  EXPECT_EQ(detail, "hmatrix.bin");

  // A torn marker counts as absent (the stage re-runs) with a reason.
  {
    std::ofstream junk(ckpt::join(d, "stage_factorize.ok"),
                       std::ios::binary);
    junk << "torn";
  }
  std::string diag;
  EXPECT_FALSE(ckpt::stage_done(d, "factorize", nullptr, &diag));
  EXPECT_FALSE(diag.empty());
}

}  // namespace
}  // namespace fdks::askit
