// Tests for the observability registry (src/obs): scope nesting and
// cross-thread merging, counter totals independent of thread count,
// JSON report shape, and the FactorProfile regression guarantee that
// the per-phase seconds still sum after the shared-timer rewrite.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "core/solver.hpp"
#include "obs/obs.hpp"

namespace fdks::obs {
namespace {

using la::Matrix;
using la::index_t;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    reset();
    set_enabled(false);
  }
};

void spin_scopes() {
  ScopedTimer outer("outer");
  {
    ScopedTimer inner("inner");
    add("work.units", 2.0);
  }
  {
    ScopedTimer inner("inner");
    add("work.units", 3.0);
  }
}

TEST_F(ObsTest, NestedScopesFormTree) {
  spin_scopes();
  const Snapshot s = snapshot();

  const TraceNode* outer = s.root.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const TraceNode* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  // Inner time is contained in outer time; root sums top-level scopes.
  EXPECT_LE(inner->seconds, outer->seconds);
  EXPECT_GE(outer->seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.root.seconds, outer->seconds);
  EXPECT_DOUBLE_EQ(s.counters.at("work.units"), 5.0);
}

TEST_F(ObsTest, StopReturnsElapsedAndIsIdempotent) {
  ScopedTimer t("t");
  const double first = t.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(t.stop(), 0.0);  // Second stop is a no-op.

  // Elapsed time must be reported even with the registry disabled —
  // FactorProfile and factor_seconds() depend on it.
  set_enabled(false);
  ScopedTimer u("u");
  EXPECT_GE(u.stop(), 0.0);
  set_enabled(true);
  EXPECT_EQ(snapshot().root.child("u"), nullptr);
}

TEST_F(ObsTest, RecordAddsChildWithoutOpeningScope) {
  record("external", 0.25);
  record("external", 0.5);
  const Snapshot s = snapshot();
  const TraceNode* n = s.root.child("external");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->count, 2u);
  EXPECT_DOUBLE_EQ(n->seconds, 0.75);
}

// The same instrumented work must produce identical counter totals
// whether it runs on one thread or split across several: counters are
// per-thread and summed at snapshot time.
TEST_F(ObsTest, CounterTotalsIndependentOfThreadCount) {
  const int kIters = 1000;

  for (int i = 0; i < kIters; ++i) add("tc.units");
  const double serial = snapshot().counters.at("tc.units");

  reset();
  std::vector<std::thread> ts;
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters / 2; ++i) add("tc.units");
    });
  }
  for (auto& t : ts) t.join();
  const double threaded = snapshot().counters.at("tc.units");
  EXPECT_DOUBLE_EQ(serial, threaded);

#ifdef _OPENMP
  reset();
#pragma omp parallel num_threads(2)
  {
#pragma omp for
    for (int i = 0; i < kIters; ++i) add("tc.units");
  }
  EXPECT_DOUBLE_EQ(snapshot().counters.at("tc.units"), serial);
#endif
}

TEST_F(ObsTest, ScopesOnWorkerThreadsMergeByName) {
  spin_scopes();
  std::thread worker(spin_scopes);
  worker.join();
  const Snapshot s = snapshot();
  // Both threads' trees merge into one "outer" node at top level.
  const TraceNode* outer = s.root.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  ASSERT_NE(outer->child("inner"), nullptr);
  EXPECT_EQ(outer->child("inner")->count, 4u);
  EXPECT_DOUBLE_EQ(s.counters.at("work.units"), 10.0);
}

TEST_F(ObsTest, JsonReportIsWellFormed) {
  spin_scopes();
  const std::string j =
      to_json(snapshot(), "unit \"test\"",
              {kv("n", 42LL), kv("tol", 1e-5), kv("hybrid", true),
               kv("dataset", "normal")});  // Literal: must NOT pick bool.

  // Required schema pieces.
  EXPECT_NE(j.find("\"schema\":\"fdks-bench-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"unit \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(j.find("\"n\":42"), std::string::npos);
  EXPECT_NE(j.find("\"hybrid\":true"), std::string::npos);
  EXPECT_NE(j.find("\"dataset\":\"normal\""), std::string::npos);
  EXPECT_NE(j.find("\"outer\""), std::string::npos);
  EXPECT_NE(j.find("\"inner\""), std::string::npos);
  EXPECT_NE(j.find("\"work.units\":5"), std::string::npos);

  // Balanced braces/brackets and no raw control characters — a cheap
  // structural proxy for parseability without a JSON dependency.
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : j) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
      continue;
    }
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(ObsTest, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// Regression for the FactorProfile rewrite: the per-instance phase
// breakdown must still sum, the node counts must match the tree, and
// the same phases must show up in the shared registry.
TEST_F(ObsTest, FactorProfileStillSumsAndFeedsRegistry) {
  const index_t n = 256;
  std::mt19937_64 rng(11);
  Matrix p = Matrix::random_gaussian(3, n, rng);
  askit::AskitConfig acfg;
  acfg.leaf_size = 32;
  acfg.max_rank = 32;
  acfg.tol = 1e-6;
  acfg.num_neighbors = 0;
  acfg.seed = 5;
  askit::HMatrix h(p, kernel::Kernel::gaussian(1.0), acfg);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FastDirectSolver solver(h, so);

  const core::FactorProfile& prof = solver.profile();
  EXPECT_GT(prof.leaves, 0);
  EXPECT_GT(prof.internals, 0);
  EXPECT_GT(prof.total(), 0.0);
  EXPECT_DOUBLE_EQ(prof.total(),
                   prof.leaf_seconds + prof.v_assembly_seconds +
                       prof.z_factor_seconds + prof.telescope_seconds);
  // The breakdown is contained in the overall factorization wall time.
  EXPECT_LE(prof.total(), solver.factor_seconds() * 1.5 + 1e-3);

  const Snapshot s = snapshot();
  const TraceNode* fac = s.root.child("factorize");
  ASSERT_NE(fac, nullptr);
  const TraceNode* leaf = fac->child("leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, static_cast<uint64_t>(prof.leaves));
  ASSERT_NE(fac->child("z_factor"), nullptr);
  EXPECT_EQ(fac->child("z_factor")->count,
            static_cast<uint64_t>(prof.internals));

  // The hot-path counters fed by the factorization.
  EXPECT_GT(s.counters.at("gemm.calls"), 0.0);
  EXPECT_GT(s.counters.at("flops.gemm"), 0.0);
}

// Disabling the registry must not break library timing side-channels.
TEST(ObsDisabled, SolverStillTimesWithRegistryOff) {
  set_enabled(false);
  reset();
  const index_t n = 128;
  std::mt19937_64 rng(13);
  Matrix p = Matrix::random_gaussian(3, n, rng);
  askit::AskitConfig acfg;
  acfg.leaf_size = 32;
  acfg.max_rank = 32;
  acfg.tol = 1e-6;
  acfg.num_neighbors = 0;
  askit::HMatrix h(p, kernel::Kernel::gaussian(1.0), acfg);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FastDirectSolver solver(h, so);
  EXPECT_GT(solver.factor_seconds(), 0.0);
  EXPECT_GT(solver.profile().total(), 0.0);
  EXPECT_TRUE(snapshot().root.children.empty());
}

}  // namespace
}  // namespace fdks::obs
