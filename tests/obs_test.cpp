// Tests for the observability registry (src/obs): scope nesting and
// cross-thread merging, counter totals independent of thread count,
// log-bucketed histograms, JSON report shape, the event-trace layer
// (ring buffers, Chrome export, critical-path analysis), and the
// FactorProfile regression guarantee that the per-phase seconds still
// sum after the shared-timer rewrite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

// libgomp's futex-based end-of-region barrier is invisible to TSan, so
// correctly synchronized writes from OpenMP workers report as false
// races against reads after the region; skip OpenMP sub-cases there.
#if defined(__SANITIZE_THREAD__)
#define FDKS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FDKS_TSAN 1
#endif
#endif

#include "core/solver.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace fdks::obs {
namespace {

using la::Matrix;
using la::index_t;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    reset();
    set_enabled(false);
  }
};

void spin_scopes() {
  ScopedTimer outer("outer");
  {
    ScopedTimer inner("inner");
    add("work.units", 2.0);
  }
  {
    ScopedTimer inner("inner");
    add("work.units", 3.0);
  }
}

TEST_F(ObsTest, NestedScopesFormTree) {
  spin_scopes();
  const Snapshot s = snapshot();

  const TraceNode* outer = s.root.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  const TraceNode* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 2u);
  // Inner time is contained in outer time; root sums top-level scopes.
  EXPECT_LE(inner->seconds, outer->seconds);
  EXPECT_GE(outer->seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.root.seconds, outer->seconds);
  EXPECT_DOUBLE_EQ(s.counters.at("work.units"), 5.0);
}

TEST_F(ObsTest, StopReturnsElapsedAndIsIdempotent) {
  ScopedTimer t("t");
  const double first = t.stop();
  EXPECT_GE(first, 0.0);
  EXPECT_EQ(t.stop(), 0.0);  // Second stop is a no-op.

  // Elapsed time must be reported even with the registry disabled —
  // FactorProfile and factor_seconds() depend on it.
  set_enabled(false);
  ScopedTimer u("u");
  EXPECT_GE(u.stop(), 0.0);
  set_enabled(true);
  EXPECT_EQ(snapshot().root.child("u"), nullptr);
}

TEST_F(ObsTest, RecordAddsChildWithoutOpeningScope) {
  record("external", 0.25);
  record("external", 0.5);
  const Snapshot s = snapshot();
  const TraceNode* n = s.root.child("external");
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->count, 2u);
  EXPECT_DOUBLE_EQ(n->seconds, 0.75);
}

// The same instrumented work must produce identical counter totals
// whether it runs on one thread or split across several: counters are
// per-thread and summed at snapshot time.
TEST_F(ObsTest, CounterTotalsIndependentOfThreadCount) {
  const int kIters = 1000;

  for (int i = 0; i < kIters; ++i) add("tc.units");
  const double serial = snapshot().counters.at("tc.units");

  reset();
  std::vector<std::thread> ts;
  for (int t = 0; t < 2; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters / 2; ++i) add("tc.units");
    });
  }
  for (auto& t : ts) t.join();
  const double threaded = snapshot().counters.at("tc.units");
  EXPECT_DOUBLE_EQ(serial, threaded);

#if defined(_OPENMP) && !defined(FDKS_TSAN)
  reset();
#pragma omp parallel num_threads(2)
  {
#pragma omp for
    for (int i = 0; i < kIters; ++i) add("tc.units");
  }
  EXPECT_DOUBLE_EQ(snapshot().counters.at("tc.units"), serial);
#endif
}

TEST_F(ObsTest, ScopesOnWorkerThreadsMergeByName) {
  spin_scopes();
  std::thread worker(spin_scopes);
  worker.join();
  const Snapshot s = snapshot();
  // Both threads' trees merge into one "outer" node at top level.
  const TraceNode* outer = s.root.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  ASSERT_NE(outer->child("inner"), nullptr);
  EXPECT_EQ(outer->child("inner")->count, 4u);
  EXPECT_DOUBLE_EQ(s.counters.at("work.units"), 10.0);
}

// Balanced braces/brackets and no raw control characters — a cheap
// structural proxy for parseability without a JSON dependency.
void expect_balanced_json(const std::string& j) {
  int braces = 0, brackets = 0;
  bool in_string = false, escaped = false;
  for (const char c : j) {
    if (escaped) { escaped = false; continue; }
    if (c == '\\') { escaped = true; continue; }
    if (c == '"') { in_string = !in_string; continue; }
    if (in_string) {
      EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
      continue;
    }
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

std::size_t count_occurrences(const std::string& hay, const std::string& pat) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(pat); pos != std::string::npos;
       pos = hay.find(pat, pos + pat.size()))
    ++n;
  return n;
}

TEST_F(ObsTest, JsonReportIsWellFormed) {
  spin_scopes();
  hist("lat.h", 0.5);
  gauge("demo.level", 7.5);
  const std::string j =
      to_json(snapshot(), "unit \"test\"",
              {kv("n", 42LL), kv("tol", 1e-5), kv("hybrid", true),
               kv("dataset", "normal")});  // Literal: must NOT pick bool.

  // Required schema pieces.
  EXPECT_NE(j.find("\"schema\":\"fdks-bench-v3\""), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"unit \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(j.find("\"n\":42"), std::string::npos);
  EXPECT_NE(j.find("\"hybrid\":true"), std::string::npos);
  EXPECT_NE(j.find("\"dataset\":\"normal\""), std::string::npos);
  EXPECT_NE(j.find("\"outer\""), std::string::npos);
  EXPECT_NE(j.find("\"inner\""), std::string::npos);
  EXPECT_NE(j.find("\"work.units\":5"), std::string::npos);
  // v3: gauges render in their own section with last-set values.
  EXPECT_NE(j.find("\"gauges\":{"), std::string::npos);
  EXPECT_NE(j.find("\"demo.level\":7.5"), std::string::npos);
  // Histograms section carries count and quantiles.
  EXPECT_NE(j.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(j.find("\"lat.h\":{\"count\":1"), std::string::npos);
  EXPECT_NE(j.find("\"p99\":"), std::string::npos);

  expect_balanced_json(j);
}

TEST_F(ObsTest, JsonEscapesControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// The log-bucketed histogram: exact quantiles where the bucketing makes
// them exact (identical samples clamp to [min, max]; within one power-
// of-two bucket the estimate interpolates linearly).
TEST_F(ObsTest, HistogramQuantilesAreDeterministic) {
  // Identical samples: every quantile collapses to the value.
  for (int i = 0; i < 100; ++i) hist("h.const", 4.0);
  // 3 samples in bucket [1,2), 1 in [2,4).
  for (int i = 0; i < 3; ++i) hist("h.spread", 1.0);
  hist("h.spread", 3.0);
  // Non-positive samples land in bucket 0.
  hist("h.z", -1.0);
  hist("h.z", 0.0);

  const Snapshot s = snapshot();
  const HistogramSnapshot& c = s.histograms.at("h.const");
  EXPECT_EQ(c.count, 100u);
  EXPECT_DOUBLE_EQ(c.sum, 400.0);
  EXPECT_DOUBLE_EQ(c.min, 4.0);
  EXPECT_DOUBLE_EQ(c.max, 4.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.50), 4.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.99), 4.0);
  EXPECT_DOUBLE_EQ(c.mean(), 4.0);

  const HistogramSnapshot& sp = s.histograms.at("h.spread");
  EXPECT_EQ(sp.count, 4u);
  // p50: target 2 of 3 samples into bucket [1,2) -> 1 + (2/3) * 1.
  EXPECT_NEAR(sp.quantile(0.50), 1.0 + 2.0 / 3.0, 1e-12);
  // p99 lands in bucket [2,4) and clamps to the observed max.
  EXPECT_DOUBLE_EQ(sp.quantile(0.99), 3.0);
  // Quantiles are monotone in q.
  EXPECT_LE(sp.quantile(0.50), sp.quantile(0.90));
  EXPECT_LE(sp.quantile(0.90), sp.quantile(0.99));

  EXPECT_DOUBLE_EQ(s.histograms.at("h.z").quantile(0.5), -1.0);
}

TEST_F(ObsTest, HistogramsMergeAcrossThreads) {
  for (int i = 0; i < 10; ++i) hist("h.m", 1.0);
  std::thread worker([] {
    for (int i = 0; i < 20; ++i) hist("h.m", 2.0);
  });
  worker.join();
  const Snapshot s = snapshot();
  const HistogramSnapshot& h = s.histograms.at("h.m");
  EXPECT_EQ(h.count, 30u);
  EXPECT_DOUBLE_EQ(h.sum, 50.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 2.0);
}

// ---- Event tracing (obs/trace.hpp) -----------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
    trace::set_capacity(1 << 16);
    trace::set_enabled(true);
    trace::reset();
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::set_capacity(1 << 16);
    trace::reset();
    reset();
    set_enabled(false);
  }
};

TEST_F(TraceTest, SpansInstantsAndFlowsExportAsChromeJson) {
  {
    ScopedTimer outer("outer");  // ScopedTimer emits Begin/End itself.
    { ScopedTimer inner("inner"); }
    trace::instant("mark");
    trace::flow_send(42, 1, 7);
  }
  trace::flow_recv(42, 0, 7);

  const trace::TraceData d = trace::collect();
  std::size_t events = 0;
  for (const auto& t : d.threads) events += t.events.size();
  EXPECT_EQ(events, 7u);  // 2 begin + 2 end + 1 instant + 2 flow.

  const std::string j = trace::chrome_trace_json(d);
  expect_balanced_json(j);
  EXPECT_EQ(count_occurrences(j, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(j, "\"ph\":\"i\""), 1u);
  EXPECT_EQ(count_occurrences(j, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_occurrences(j, "\"ph\":\"f\""), 1u);
  // Flow endpoints pair by id (0x2a == 42) and the finish end binds to
  // the enclosing slice.
  EXPECT_EQ(count_occurrences(j, "\"id\":\"0x2a\""), 2u);
  EXPECT_NE(j.find("\"bp\":\"e\""), std::string::npos);
  // Nesting: the inner span closes (and is emitted) before the outer.
  EXPECT_LT(j.find("\"name\":\"inner\""), j.find("\"name\":\"outer\""));
  EXPECT_NE(j.find("\"dropped_events\":0"), std::string::npos);
  EXPECT_NE(j.find("\"orphaned_span_events\":0"), std::string::npos);
}

TEST_F(TraceTest, UnmatchedBeginIsCountedAsOrphanNotExported) {
  trace::begin("open");
  const std::string j = trace::chrome_trace_json(trace::collect());
  expect_balanced_json(j);
  EXPECT_EQ(count_occurrences(j, "\"ph\":\"X\""), 0u);
  EXPECT_NE(j.find("\"orphaned_span_events\":1"), std::string::npos);
  trace::end();  // Close it so TearDown sees a quiescent buffer.
}

TEST_F(TraceTest, OverflowDropsNewestKeepsEarliest) {
  trace::set_capacity(16);
  trace::reset();  // Re-register this thread's buffer at the new size.
  for (int i = 0; i < 40; ++i) {
    // Append (not `"e" + ...`): GCC 12 -Wrestrict false positive on
    // const char* + std::string&& in optimized builds (PR105651).
    std::string name("e");
    name += std::to_string(i);
    trace::instant(name);
  }
  const trace::TraceData d = trace::collect();
  ASSERT_EQ(d.threads.size(), 1u);
  EXPECT_EQ(d.threads[0].events.size(), 16u);
  EXPECT_EQ(d.threads[0].dropped, 24u);
  EXPECT_STREQ(d.threads[0].events.front().name, "e0");
  EXPECT_STREQ(d.threads[0].events.back().name, "e15");
}

// Critical path on a hand-built two-rank trace:
//   rank 0 works 0..100 ms, then sends flow 7 (tag 5) to rank 1;
//   rank 1 blocks in recv 0..120 ms, then works 120..150 ms.
// Longest chain = 100 ms work + 20 ms message + 30 ms work = the wall.
TEST_F(TraceTest, CriticalPathFollowsMessageChain) {
  using trace::Event;
  const auto ms = [](std::uint64_t v) { return v * 1'000'000ull; };
  const auto ev = [](Event::Type ty, std::uint64_t ts, const char* nm,
                     std::uint64_t id = 0, int a = 0, int b = 0) {
    Event e;
    e.type = ty;
    e.ts_ns = ts;
    e.id = id;
    e.a = a;
    e.b = b;
    std::strncpy(e.name, nm, Event::kNameCap);
    return e;
  };

  trace::TraceData d;
  trace::ThreadTrace r0;
  r0.rank = 0;
  r0.tid = 1;
  r0.events = {ev(Event::kBegin, ms(0), "work"),
               ev(Event::kFlowSend, ms(100), "msg", 7, 1, 5),
               ev(Event::kEnd, ms(100), "")};
  trace::ThreadTrace r1;
  r1.rank = 1;
  r1.tid = 2;
  r1.events = {ev(Event::kBegin, ms(0), "mpisim.recv"),
               ev(Event::kFlowRecv, ms(120), "msg", 7, 0, 5),
               ev(Event::kEnd, ms(120), ""),
               ev(Event::kBegin, ms(120), "apply"),
               ev(Event::kEnd, ms(150), "")};
  d.threads = {r0, r1};

  const trace::CriticalPath cp = trace::critical_path(d);
  EXPECT_NEAR(cp.total_seconds, 0.150, 1e-12);
  EXPECT_NEAR(cp.wall_seconds, 0.150, 1e-12);
  EXPECT_NEAR(cp.rank_busy_seconds.at(0), 0.100, 1e-12);
  EXPECT_NEAR(cp.rank_busy_seconds.at(1), 0.030, 1e-12);
  EXPECT_NEAR(cp.max_busy_seconds(), 0.100, 1e-12);
  // The structural guarantees fdks_tool --trace relies on.
  EXPECT_LE(cp.total_seconds, cp.wall_seconds + 1e-12);
  EXPECT_GE(cp.total_seconds, cp.max_busy_seconds() - 1e-12);

  ASSERT_EQ(cp.segments.size(), 3u);
  EXPECT_EQ(cp.segments[0].rank, 0);
  EXPECT_FALSE(cp.segments[0].via_message);
  EXPECT_NEAR(cp.segments[0].seconds(), 0.100, 1e-12);
  EXPECT_TRUE(cp.segments[1].via_message);
  EXPECT_EQ(cp.segments[1].rank, 1);
  EXPECT_EQ(cp.segments[1].from_rank, 0);
  EXPECT_EQ(cp.segments[1].tag, 5);
  EXPECT_NEAR(cp.segments[1].seconds(), 0.020, 1e-12);
  EXPECT_FALSE(cp.segments[2].via_message);
  EXPECT_NEAR(cp.segments[2].seconds(), 0.030, 1e-12);

  const std::string report = trace::critical_path_report(cp);
  EXPECT_NE(report.find("critical path:"), std::string::npos);
  EXPECT_NE(report.find("rank 1 <- rank 0 tag 5"), std::string::npos);
}

TEST_F(TraceTest, CriticalPathOnEmptyTraceIsZero) {
  const trace::CriticalPath cp = trace::critical_path(trace::TraceData{});
  EXPECT_EQ(cp.total_seconds, 0.0);
  EXPECT_EQ(cp.wall_seconds, 0.0);
  EXPECT_TRUE(cp.segments.empty());
}

// Concurrent emitters with a concurrent collector: collect() must only
// ever see the published prefix (clean under ThreadSanitizer — this
// test is the race-detection target of the fault-labeled suite).
TEST_F(TraceTest, ConcurrentEmitAndCollectIsClean) {
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;  // 4 events/iter, well under capacity.
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const trace::TraceData d = trace::collect();
      for (const auto& t : d.threads)
        for (const auto& e : t.events)
          ASSERT_LE(static_cast<int>(e.type),
                    static_cast<int>(trace::Event::kFlowRecv));
    }
  });
  std::vector<std::thread> emitters;
  for (int t = 0; t < kThreads; ++t) {
    emitters.emplace_back([t] {
      trace::set_thread_track(t);
      for (int i = 0; i < kIters; ++i) {
        trace::begin("work");
        trace::instant("tick");
        trace::flow_send(
            static_cast<std::uint64_t>(t) * kIters + static_cast<std::uint64_t>(i) + 1, t ^ 1, 3);
        trace::end();
      }
    });
  }
  for (auto& t : emitters) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  const trace::TraceData d = trace::collect();
  int ranked = 0;
  for (const auto& t : d.threads) {
    if (t.rank < 0) continue;
    ++ranked;
    EXPECT_EQ(t.events.size() + t.dropped,
              static_cast<std::size_t>(4 * kIters));
  }
  EXPECT_EQ(ranked, kThreads);
  expect_balanced_json(trace::chrome_trace_json(d));
}

// Regression for the FactorProfile rewrite: the per-instance phase
// breakdown must still sum, the node counts must match the tree, and
// the same phases must show up in the shared registry.
TEST_F(ObsTest, FactorProfileStillSumsAndFeedsRegistry) {
  const index_t n = 256;
  std::mt19937_64 rng(11);
  Matrix p = Matrix::random_gaussian(3, n, rng);
  askit::AskitConfig acfg;
  acfg.leaf_size = 32;
  acfg.max_rank = 32;
  acfg.tol = 1e-6;
  acfg.num_neighbors = 0;
  acfg.seed = 5;
  askit::HMatrix h(p, kernel::Kernel::gaussian(1.0), acfg);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FastDirectSolver solver(h, so);

  const core::FactorProfile& prof = solver.profile();
  EXPECT_GT(prof.leaves, 0);
  EXPECT_GT(prof.internals, 0);
  EXPECT_GT(prof.total(), 0.0);
  EXPECT_DOUBLE_EQ(prof.total(),
                   prof.leaf_seconds + prof.v_assembly_seconds +
                       prof.z_factor_seconds + prof.telescope_seconds);
  // The breakdown is contained in the overall factorization wall time.
  EXPECT_LE(prof.total(), solver.factor_seconds() * 1.5 + 1e-3);

  const Snapshot s = snapshot();
  const TraceNode* fac = s.root.child("factorize");
  ASSERT_NE(fac, nullptr);
  const TraceNode* leaf = fac->child("leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_EQ(leaf->count, static_cast<uint64_t>(prof.leaves));
  ASSERT_NE(fac->child("z_factor"), nullptr);
  EXPECT_EQ(fac->child("z_factor")->count,
            static_cast<uint64_t>(prof.internals));

  // The hot-path counters fed by the factorization.
  EXPECT_GT(s.counters.at("gemm.calls"), 0.0);
  EXPECT_GT(s.counters.at("flops.gemm"), 0.0);
}

// Disabling the registry must not break library timing side-channels.
TEST(ObsDisabled, SolverStillTimesWithRegistryOff) {
  set_enabled(false);
  reset();
  const index_t n = 128;
  std::mt19937_64 rng(13);
  Matrix p = Matrix::random_gaussian(3, n, rng);
  askit::AskitConfig acfg;
  acfg.leaf_size = 32;
  acfg.max_rank = 32;
  acfg.tol = 1e-6;
  acfg.num_neighbors = 0;
  askit::HMatrix h(p, kernel::Kernel::gaussian(1.0), acfg);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FastDirectSolver solver(h, so);
  EXPECT_GT(solver.factor_seconds(), 0.0);
  EXPECT_GT(solver.profile().total(), 0.0);
  EXPECT_TRUE(snapshot().root.children.empty());
}

}  // namespace
}  // namespace fdks::obs
