// Tests for the hybrid direct/iterative solver (Algorithms II.6-II.8).
#include <gtest/gtest.h>

#include <numeric>
#include <random>

#include "core/hybrid.hpp"
#include "core/solver.hpp"
#include "la/blas1.hpp"
#include "la/gemm.hpp"

namespace fdks::core {
namespace {

using askit::AskitConfig;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig restricted_config(index_t level) {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 77;
  cfg.level_restriction = level;
  return cfg;
}

std::vector<double> random_vec(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> v(static_cast<size_t>(n));
  for (auto& x : v) x = g(rng);
  return v;
}

HybridOptions default_hybrid(double lambda) {
  HybridOptions o;
  o.direct.lambda = lambda;
  o.gmres.rtol = 1e-12;
  o.gmres.max_iters = 300;
  return o;
}

TEST(HybridSolver, ReducedSizeIsSumOfFrontierRanks) {
  const index_t n = 512;
  Matrix p = clustered_points(3, n, 1);
  askit::HMatrix h(p, Kernel::gaussian(1.0), restricted_config(2));
  HybridSolver hy(h, default_hybrid(0.5));
  index_t expect = 0;
  for (index_t a : h.frontier())
    expect += static_cast<index_t>(h.skeleton(a).skel.size());
  EXPECT_EQ(hy.reduced_size(), expect);
  EXPECT_GT(expect, 0);
  EXPECT_LT(expect, n);
}

TEST(HybridSolver, MatvecVMatchesDenseDefinition) {
  // V row block a = K(a~, X \ a): check against explicit kernel blocks.
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 2);
  askit::HMatrix h(p, Kernel::gaussian(1.0), restricted_config(2));
  HybridSolver hy(h, default_hybrid(1.0));

  auto q = random_vec(n, 3);
  std::vector<double> z(static_cast<size_t>(hy.reduced_size()), 0.0);
  hy.matvec_v(q, z);

  index_t off = 0;
  for (index_t a : h.frontier()) {
    const auto& nd = h.tree().node(a);
    const auto& skel = h.skeleton(a).skel;
    // Dense reference: sum over all columns outside [begin, end).
    for (size_t si = 0; si < skel.size(); ++si) {
      double expect = 0.0;
      for (index_t j = 0; j < n; ++j) {
        if (j >= nd.begin && j < nd.end) continue;
        expect += h.km().entry(skel[si], j) * q[static_cast<size_t>(j)];
      }
      EXPECT_NEAR(z[static_cast<size_t>(off) + si], expect, 1e-9);
    }
    off += static_cast<index_t>(skel.size());
  }
}

TEST(HybridSolver, MatvecWIsBlockDiagonalPhat) {
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 4);
  askit::HMatrix h(p, Kernel::gaussian(1.0), restricted_config(2));
  HybridSolver hy(h, default_hybrid(1.0));
  auto z = random_vec(hy.reduced_size(), 5);
  std::vector<double> q(static_cast<size_t>(n), 0.0);
  hy.matvec_w(z, q);
  // Every frontier block range must be touched; the support of q is the
  // union of frontier ranges = everything.
  EXPECT_GT(la::nrm2(q), 0.0);
}

TEST(HybridSolver, SolvesCompressedOperatorExactly) {
  const index_t n = 400;
  Matrix p = clustered_points(3, n, 6);
  askit::HMatrix h(p, Kernel::gaussian(1.0), restricted_config(2));
  HybridSolver hy(h, default_hybrid(0.5));
  auto u = random_vec(n, 7);
  auto x = hy.solve(u);
  EXPECT_TRUE(hy.last_gmres().converged);
  EXPECT_LT(h.relative_residual(x, u, 0.5), 1e-9);
}

TEST(HybridSolver, AgreesWithLevelRestrictedDirectSolver) {
  // Table V's comparison: hybrid and direct on the same level-restricted
  // HMatrix must produce the same solution (both invert the same K~).
  const index_t n = 384;
  Matrix p = clustered_points(3, n, 8);
  askit::HMatrix h(p, Kernel::gaussian(1.0), restricted_config(2));

  SolverOptions direct_opts;
  direct_opts.lambda = 1.0;
  FastDirectSolver direct(h, direct_opts);
  HybridSolver hybrid(h, default_hybrid(1.0));

  auto u = random_vec(n, 9);
  auto xd = direct.solve(u);
  auto xh = hybrid.solve(u);
  EXPECT_LT(la::nrm2(la::vsub(xd, xh)) / la::nrm2(xd), 1e-8);
}

class RestrictionSweep : public ::testing::TestWithParam<int> {};

TEST_P(RestrictionSweep, ConvergesForAllFrontierDepths) {
  const index_t level = GetParam();
  const index_t n = 512;
  Matrix p = clustered_points(3, n, 10);
  askit::HMatrix h(p, Kernel::gaussian(1.0), restricted_config(level));
  HybridSolver hy(h, default_hybrid(1.0));
  auto u = random_vec(n, 11);
  auto x = hy.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 1.0), 1e-8) << "L=" << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, RestrictionSweep,
                         ::testing::Values(1, 2, 3));

TEST(HybridSolver, NoRestrictionStillWorks) {
  // Without level restriction the frontier is the root's children: the
  // reduced system is a single off-diagonal coupling.
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 12);
  askit::HMatrix h(p, Kernel::gaussian(1.0), restricted_config(0));
  HybridSolver hy(h, default_hybrid(0.8));
  auto u = random_vec(n, 13);
  auto x = hy.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 0.8), 1e-9);
}

TEST(HybridSolver, SingleLeafDegenerateCase) {
  const index_t n = 16;
  Matrix p = clustered_points(2, n, 14);
  AskitConfig cfg = restricted_config(0);
  cfg.leaf_size = 64;  // Single leaf.
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg);
  HybridSolver hy(h, default_hybrid(0.2));
  EXPECT_EQ(hy.reduced_size(), 0);
  auto u = random_vec(n, 15);
  auto x = hy.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 0.2), 1e-11);
}

TEST(HybridSolver, GmresIterationCountRecorded) {
  const index_t n = 384;
  Matrix p = clustered_points(3, n, 16);
  askit::HMatrix h(p, Kernel::gaussian(0.8), restricted_config(2));
  HybridSolver hy(h, default_hybrid(1.0));
  auto u = random_vec(n, 17);
  (void)hy.solve(u);
  EXPECT_GT(hy.last_gmres().iterations, 0);
  EXPECT_FALSE(hy.last_gmres().residual_history.empty());
}

TEST(HybridSolver, FactorBytesSmallerThanFullDirect) {
  // The whole point of the hybrid method: factor storage is bounded by
  // the frontier subtrees (Table V storage column).
  const index_t n = 512;
  Matrix p = clustered_points(3, n, 18);
  askit::HMatrix h(p, Kernel::gaussian(1.0), restricted_config(3));
  SolverOptions direct_opts;
  direct_opts.lambda = 1.0;
  FastDirectSolver direct(h, direct_opts);
  HybridSolver hybrid(h, default_hybrid(1.0));
  EXPECT_LT(hybrid.factor_bytes(), direct.factor_bytes());
}

}  // namespace
}  // namespace fdks::core
