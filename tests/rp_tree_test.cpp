// Tests for the randomized-projection-tree approximate kNN.
#include <gtest/gtest.h>

#include <random>

#include "askit/hmatrix.hpp"
#include "knn/rp_tree.hpp"

namespace fdks::knn {
namespace {

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.1);
  std::uniform_int_distribution<int> cl(0, 7);
  Matrix centers = Matrix::random_uniform(d, 8, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

TEST(RpTree, ExcludesSelfAndSortsDistances) {
  Matrix p = clustered_points(4, 200, 1);
  KnnResult r = approx_knn(p, 5);
  for (index_t i = 0; i < 200; ++i) {
    for (index_t j = 0; j < 5; ++j) EXPECT_NE(r.id(i, j), i);
    for (index_t j = 1; j < 5; ++j) EXPECT_LE(r.d2(i, j - 1), r.d2(i, j));
  }
}

TEST(RpTree, HighRecallOnClusteredData) {
  Matrix p = clustered_points(6, 500, 2);
  const index_t k = 8;
  KnnResult exact = exact_knn(p, k);
  RpTreeConfig cfg;
  cfg.num_trees = 6;
  cfg.leaf_size = 48;
  KnnResult approx = approx_knn(p, k, cfg);
  EXPECT_GT(knn_recall(approx, exact), 0.85);
}

TEST(RpTree, RecallImprovesWithMoreTrees) {
  Matrix p = clustered_points(6, 400, 3);
  const index_t k = 6;
  KnnResult exact = exact_knn(p, k);
  RpTreeConfig few, many;
  few.num_trees = 1;
  many.num_trees = 8;
  few.leaf_size = many.leaf_size = 32;
  const double r_few = knn_recall(approx_knn(p, k, few), exact);
  const double r_many = knn_recall(approx_knn(p, k, many), exact);
  EXPECT_GE(r_many, r_few);
  EXPECT_GT(r_many, 0.7);
}

TEST(RpTree, DeterministicGivenSeed) {
  Matrix p = clustered_points(3, 150, 4);
  KnnResult a = approx_knn(p, 4);
  KnnResult b = approx_knn(p, 4);
  EXPECT_EQ(a.ids, b.ids);
}

TEST(RpTree, KClampedAndTinyInputsRejected) {
  Matrix p = clustered_points(2, 4, 5);
  KnnResult r = approx_knn(p, 100);
  EXPECT_EQ(r.k, 3);
  Matrix one(2, 1);
  EXPECT_THROW(approx_knn(one, 1), std::invalid_argument);
}

TEST(RpTree, RecallHelperValidatesShapes) {
  Matrix p = clustered_points(2, 50, 6);
  KnnResult a = approx_knn(p, 3);
  KnnResult b = exact_knn(p, 4);
  EXPECT_THROW(knn_recall(a, b), std::invalid_argument);
  KnnResult c = exact_knn(p, 3);
  EXPECT_NEAR(knn_recall(c, c), 1.0, 1e-15);
}

TEST(RpTree, HMatrixBuildsWithApproximateNeighbors) {
  Matrix p = clustered_points(3, 400, 7);
  askit::AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-6;
  cfg.num_neighbors = 8;
  cfg.approx_neighbors = true;
  askit::HMatrix h(p, kernel::Kernel::gaussian(1.0), cfg);
  EXPECT_GT(h.stats().skeletonized_nodes, 0);
  // Matvec accuracy should be in the same ballpark as with exact kNN.
  std::vector<double> w(400, 1.0), y(400, 0.0);
  h.apply(w, y);
  double norm = 0.0;
  for (double v : y) norm += v * v;
  EXPECT_GT(norm, 0.0);
}

}  // namespace
}  // namespace fdks::knn
