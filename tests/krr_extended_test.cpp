// Tests for multi-class KRR, kernel ridge regression, compression
// diagnostics, and the solver's kernel-type generality.
#include <gtest/gtest.h>

#include <random>

#include "askit/diagnostics.hpp"
#include "core/solver.hpp"
#include "data/preprocess.hpp"
#include "krr/krr.hpp"
#include "la/blas1.hpp"

namespace fdks {
namespace {

using data::Dataset;
using data::SyntheticKind;
using la::Matrix;
using la::index_t;

krr::KrrConfig fast_config() {
  krr::KrrConfig cfg;
  cfg.askit.leaf_size = 64;
  cfg.askit.max_rank = 64;
  cfg.askit.tol = 1e-6;
  cfg.askit.num_neighbors = 0;
  cfg.askit.seed = 13;
  return cfg;
}

TEST(Multiclass, LearnsTenDigitClusters) {
  Dataset ds = data::make_synthetic(SyntheticKind::MnistLike, 1200, 1);
  auto [train, test] = data::train_test_split(ds, 0.2, 2);
  krr::KrrConfig cfg = fast_config();
  cfg.bandwidth = 8.0;
  cfg.lambda = 0.5;
  krr::KernelRidgeMulticlass model(train, 10, cfg);
  EXPECT_EQ(model.num_classes(), 10);
  EXPECT_GT(model.accuracy(test), 0.9);
}

TEST(Multiclass, BeatsBinaryOneVsAllBaselineOnSameData) {
  // The multi-class argmax must at least recover the '3'-vs-rest task
  // as well as the dedicated binary model.
  Dataset ds = data::make_synthetic(SyntheticKind::MnistLike, 800, 3);
  auto [train, test] = data::train_test_split(ds, 0.25, 4);
  krr::KrrConfig cfg = fast_config();
  cfg.bandwidth = 8.0;
  cfg.lambda = 0.5;
  krr::KernelRidgeMulticlass mc(train, 10, cfg);
  auto pred = mc.predict(test.points);
  size_t agree = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    const bool is3 = pred[i] == 3;
    const bool truth3 = test.classes[i] == 3;
    if (is3 == truth3) ++agree;
  }
  EXPECT_GT(double(agree) / double(pred.size()), 0.9);
}

TEST(Multiclass, RejectsBadInputs) {
  Dataset ds = data::make_synthetic(SyntheticKind::SusyLike, 100, 5);
  EXPECT_THROW(krr::KernelRidgeMulticlass(ds, 2, fast_config()),
               std::invalid_argument);
  Dataset m = data::make_synthetic(SyntheticKind::MnistLike, 100, 6);
  EXPECT_THROW(krr::KernelRidgeMulticlass(m, 3, fast_config()),
               std::invalid_argument);  // Classes up to 9 out of range.
}

TEST(Regression, RecoversSmoothFunction) {
  Dataset ds = data::make_synthetic(SyntheticKind::Normal, 1500, 7);
  ASSERT_TRUE(ds.has_targets());
  auto [train, test] = data::train_test_split(ds, 0.2, 8);
  krr::KrrConfig cfg = fast_config();
  cfg.bandwidth = 8.0;
  cfg.lambda = 0.1;
  krr::KernelRidgeRegressor model(train, cfg);
  // Targets have unit-order scale (std ~0.8); a real fit means RMSE
  // well below that.
  EXPECT_LT(model.rmse(test), 0.3);
  EXPECT_LT(model.train_residual(), 1e-6);
}

TEST(Regression, RejectsDatasetWithoutTargets) {
  Dataset ds = data::make_synthetic(SyntheticKind::SusyLike, 100, 9);
  ds.targets.clear();
  EXPECT_THROW(krr::KernelRidgeRegressor(ds, fast_config()),
               std::invalid_argument);
}

TEST(Diagnostics, ErrorTracksTau) {
  Dataset ds = data::make_synthetic(SyntheticKind::Normal, 600, 10);
  double prev = 1.0;
  for (double tau : {1e-2, 1e-5}) {
    askit::AskitConfig cfg;
    cfg.leaf_size = 64;
    cfg.max_rank = 128;  // Never caps (candidates <= 2 * leaf_size).
    cfg.tol = tau;
    cfg.num_neighbors = 8;
    askit::HMatrix h(ds.points, kernel::Kernel::gaussian(1.0), cfg);
    auto rep = askit::compression_report(h);
    EXPECT_GT(rep.sigma1, 0.0);
    // The 2-norm error is a worst-direction measure over sampled IDs:
    // allow generous slack over tau, but require the tau ordering.
    EXPECT_LT(rep.rel_error_2norm, std::max(1e-3, 500.0 * tau));
    EXPECT_LE(rep.rel_error_2norm, prev * 1.5);
    EXPECT_GT(rep.total_skeleton_size, 0);
    EXPECT_LT(rep.compression_ratio, 1.0);
    prev = rep.rel_error_2norm;
  }
}

// Kernel-type generality: the solver is kernel independent; every
// supported kernel must factor and solve its own compressed operator to
// near machine precision.
class KernelTypeSweep : public ::testing::TestWithParam<kernel::Kernel> {};

TEST_P(KernelTypeSweep, SolvesCompressedOperator) {
  const kernel::Kernel k = GetParam();
  const index_t n = 400;
  Dataset ds = data::make_synthetic(SyntheticKind::Normal, n, 11);
  askit::AskitConfig cfg;
  cfg.leaf_size = 64;
  cfg.max_rank = 80;
  cfg.tol = 1e-7;
  cfg.num_neighbors = 0;
  askit::HMatrix h(ds.points, k, cfg);
  core::SolverOptions so;
  so.lambda = 1.0;
  core::FastDirectSolver solver(h, so);
  std::mt19937_64 rng(12);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> u(static_cast<size_t>(n));
  for (auto& v : u) v = g(rng);
  auto x = solver.solve(u);
  EXPECT_LT(h.relative_residual(x, u, 1.0), 1e-9) << k.name();
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, KernelTypeSweep,
    ::testing::Values(kernel::Kernel::gaussian(1.0),
                      kernel::Kernel::gaussian(3.0),
                      kernel::Kernel::laplacian(2.0),
                      kernel::Kernel::matern32(1.5),
                      kernel::Kernel::polynomial(2.0, 1.0, 2)));

TEST(Levelwise, MatchesRecursiveFactorization) {
  Dataset ds = data::make_synthetic(SyntheticKind::Normal, 500, 13);
  askit::AskitConfig cfg;
  cfg.leaf_size = 64;
  cfg.max_rank = 64;
  cfg.tol = 1e-7;
  cfg.num_neighbors = 0;
  askit::HMatrix h(ds.points, kernel::Kernel::gaussian(1.0), cfg);
  core::SolverOptions rec, lvl;
  rec.lambda = lvl.lambda = 0.6;
  lvl.levelwise = true;
  core::FastDirectSolver a(h, rec);
  core::FastDirectSolver b(h, lvl);
  std::mt19937_64 rng(14);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> u(500);
  for (auto& v : u) v = g(rng);
  auto xa = a.solve(u);
  auto xb = b.solve(u);
  EXPECT_LT(la::nrm2(la::vsub(xa, xb)) / la::nrm2(xa), 1e-13);
}

}  // namespace
}  // namespace fdks
