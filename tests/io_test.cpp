// Tests for dataset I/O: LIBSVM, CSV, and binary round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/generators.hpp"
#include "data/io.hpp"

namespace fdks::data {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdks_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(IoTest, LibsvmBasicParse) {
  {
    std::ofstream f(path("a.svm"));
    f << "+1 1:0.5 3:2.0\n";
    f << "-1 2:1.5\n";
    f << "# comment line\n";
    f << "+1 1:1.0 2:1.0 3:1.0\n";
  }
  Dataset ds = read_libsvm(path("a.svm"));
  EXPECT_EQ(ds.n(), 3);
  EXPECT_EQ(ds.dim(), 3);
  EXPECT_EQ(ds.points(0, 0), 0.5);
  EXPECT_EQ(ds.points(2, 0), 2.0);
  EXPECT_EQ(ds.points(1, 0), 0.0);  // Missing features are zero.
  EXPECT_EQ(ds.points(1, 1), 1.5);
  ASSERT_TRUE(ds.labeled());
  EXPECT_EQ(ds.labels[0], 1.0);
  EXPECT_EQ(ds.labels[1], -1.0);
}

TEST_F(IoTest, LibsvmRemapsZeroOneLabels) {
  {
    std::ofstream f(path("b.svm"));
    f << "0 1:1.0\n1 1:2.0\n0 1:3.0\n";
  }
  Dataset ds = read_libsvm(path("b.svm"));
  EXPECT_EQ(ds.labels[0], -1.0);
  EXPECT_EQ(ds.labels[1], 1.0);
  // Original labels preserved as targets.
  EXPECT_EQ(ds.targets[1], 1.0);
}

TEST_F(IoTest, LibsvmErrors) {
  EXPECT_THROW(read_libsvm(path("missing.svm")), std::runtime_error);
  {
    std::ofstream f(path("bad.svm"));
    f << "+1 nocolon\n";
  }
  EXPECT_THROW(read_libsvm(path("bad.svm")), std::runtime_error);
  {
    std::ofstream f(path("zeroidx.svm"));
    f << "+1 0:1.0\n";
  }
  EXPECT_THROW(read_libsvm(path("zeroidx.svm")), std::runtime_error);
}

TEST_F(IoTest, CsvRoundTrip) {
  Dataset ds = make_synthetic(SyntheticKind::SusyLike, 40, 1);
  write_csv(path("c.csv"), ds);
  Dataset back = read_csv(path("c.csv"), /*labeled=*/true);
  EXPECT_EQ(back.n(), ds.n());
  EXPECT_EQ(back.dim(), ds.dim());
  EXPECT_LT(la::max_abs_diff(back.points, ds.points), 1e-14);
  EXPECT_EQ(back.labels, ds.labels);
}

TEST_F(IoTest, CsvUnlabeled) {
  Dataset ds = make_synthetic(SyntheticKind::Normal, 20, 2);
  write_csv(path("d.csv"), ds);
  Dataset back = read_csv(path("d.csv"), /*labeled=*/false);
  EXPECT_EQ(back.dim(), ds.dim());
  EXPECT_FALSE(back.labeled());
}

TEST_F(IoTest, CsvRaggedRowsRejected) {
  {
    std::ofstream f(path("ragged.csv"));
    f << "1,2,3\n1,2\n";
  }
  EXPECT_THROW(read_csv(path("ragged.csv"), false), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripLossless) {
  Dataset ds = make_synthetic(SyntheticKind::MnistLike, 30, 3);
  ASSERT_TRUE(ds.multiclass());
  write_binary(path("e.bin"), ds);
  Dataset back = read_binary(path("e.bin"));
  EXPECT_EQ(back.name, ds.name);
  EXPECT_EQ(back.intrinsic_dim, ds.intrinsic_dim);
  EXPECT_EQ(la::max_abs_diff(back.points, ds.points), 0.0);
  EXPECT_EQ(back.labels, ds.labels);
  EXPECT_EQ(back.classes, ds.classes);
  EXPECT_EQ(back.targets, ds.targets);
}

TEST_F(IoTest, LibsvmWriteReadRoundTrip) {
  Dataset ds = make_synthetic(SyntheticKind::HiggsLike, 25, 8);
  write_libsvm(path("rt.svm"), ds);
  Dataset back = read_libsvm(path("rt.svm"));
  EXPECT_EQ(back.n(), ds.n());
  EXPECT_EQ(back.dim(), ds.dim());
  EXPECT_LT(la::max_abs_diff(back.points, ds.points), 1e-14);
  EXPECT_EQ(back.labels, ds.labels);
}

TEST_F(IoTest, BinaryBadMagicRejected) {
  {
    std::ofstream f(path("junk.bin"), std::ios::binary);
    f << "not a dataset";
  }
  EXPECT_THROW(read_binary(path("junk.bin")), std::runtime_error);
}

// Validation guardrails: corrupt inputs must fail with the file, line,
// and offending record named in the message — not propagate NaN into
// the solver or crash on an absurd allocation.

TEST_F(IoTest, CsvNonFiniteValueNamesLineAndColumn) {
  {
    std::ofstream f(path("nan.csv"));
    f << "1.0,2.0\n3.0,nan\n";
  }
  try {
    read_csv(path("nan.csv"), false);
    FAIL() << "expected rejection of NaN cell";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
    EXPECT_NE(what.find("column 2"), std::string::npos) << what;
    EXPECT_NE(what.find(":2"), std::string::npos) << what;  // line number
  }
}

TEST_F(IoTest, CsvBadTokenNamesLine) {
  {
    std::ofstream f(path("garbage.csv"));
    f << "1.0,2.0\n1.5x,3.0\n";
  }
  try {
    read_csv(path("garbage.csv"), false);
    FAIL() << "expected rejection of trailing garbage in a cell";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1.5x"), std::string::npos) << what;
    EXPECT_NE(what.find(":2"), std::string::npos) << what;
  }
}

TEST_F(IoTest, CsvRaggedRowNamesCountsAndLine) {
  {
    std::ofstream f(path("ragged2.csv"));
    f << "1,2,3\n4,5,6\n7,8\n";
  }
  try {
    read_csv(path("ragged2.csv"), false);
    FAIL() << "expected ragged-row rejection";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 columns, expected 3"), std::string::npos) << what;
    EXPECT_NE(what.find(":3"), std::string::npos) << what;
  }
}

TEST_F(IoTest, LibsvmNonFiniteValueNamesFeatureAndLine) {
  {
    std::ofstream f(path("inf.svm"));
    f << "+1 1:0.5\n-1 1:1.0 2:inf\n";
  }
  try {
    read_libsvm(path("inf.svm"));
    FAIL() << "expected rejection of non-finite feature value";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-finite"), std::string::npos) << what;
    EXPECT_NE(what.find("feature 2"), std::string::npos) << what;
    EXPECT_NE(what.find(":2"), std::string::npos) << what;
  }
}

TEST_F(IoTest, LibsvmImplausibleIndexRejected) {
  {
    std::ofstream f(path("bigidx.svm"));
    f << "+1 999999999999:1.0\n";
  }
  EXPECT_THROW(read_libsvm(path("bigidx.svm")), std::runtime_error);
}

TEST_F(IoTest, BinaryCorruptHeaderRejectedBeforeAllocation) {
  // Write a valid magic followed by a negative dim: the reader must
  // reject the header instead of resizing to garbage.
  {
    std::ofstream f(path("hdr.bin"), std::ios::binary);
    const uint64_t magic = 0x46444b5344415431ull;
    const int64_t d = -4, n = 10, idim = 0;
    f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    f.write(reinterpret_cast<const char*>(&d), sizeof(d));
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(&idim), sizeof(idim));
  }
  try {
    read_binary(path("hdr.bin"));
    FAIL() << "expected corrupt-header rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("corrupt header"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, BinaryImplausibleHeaderRejected) {
  {
    std::ofstream f(path("huge.bin"), std::ios::binary);
    const uint64_t magic = 0x46444b5344415431ull;
    const int64_t d = int64_t{1} << 30, n = int64_t{1} << 30, idim = 0;
    f.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    f.write(reinterpret_cast<const char*>(&d), sizeof(d));
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(&idim), sizeof(idim));
  }
  try {
    read_binary(path("huge.bin"));
    FAIL() << "expected implausible-header rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("implausible header"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(IoTest, BinaryTruncatedPointDataRejected) {
  Dataset ds = make_synthetic(SyntheticKind::Normal, 16, 4);
  write_binary(path("full.bin"), ds);
  // Chop the file mid-way through the point block.
  const auto full = fs::file_size(path("full.bin"));
  fs::resize_file(path("full.bin"), full / 2);
  try {
    read_binary(path("full.bin"));
    FAIL() << "expected truncation rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace fdks::data
