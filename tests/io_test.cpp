// Tests for dataset I/O: LIBSVM, CSV, and binary round trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "data/generators.hpp"
#include "data/io.hpp"

namespace fdks::data {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdks_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const char* name) { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(IoTest, LibsvmBasicParse) {
  {
    std::ofstream f(path("a.svm"));
    f << "+1 1:0.5 3:2.0\n";
    f << "-1 2:1.5\n";
    f << "# comment line\n";
    f << "+1 1:1.0 2:1.0 3:1.0\n";
  }
  Dataset ds = read_libsvm(path("a.svm"));
  EXPECT_EQ(ds.n(), 3);
  EXPECT_EQ(ds.dim(), 3);
  EXPECT_EQ(ds.points(0, 0), 0.5);
  EXPECT_EQ(ds.points(2, 0), 2.0);
  EXPECT_EQ(ds.points(1, 0), 0.0);  // Missing features are zero.
  EXPECT_EQ(ds.points(1, 1), 1.5);
  ASSERT_TRUE(ds.labeled());
  EXPECT_EQ(ds.labels[0], 1.0);
  EXPECT_EQ(ds.labels[1], -1.0);
}

TEST_F(IoTest, LibsvmRemapsZeroOneLabels) {
  {
    std::ofstream f(path("b.svm"));
    f << "0 1:1.0\n1 1:2.0\n0 1:3.0\n";
  }
  Dataset ds = read_libsvm(path("b.svm"));
  EXPECT_EQ(ds.labels[0], -1.0);
  EXPECT_EQ(ds.labels[1], 1.0);
  // Original labels preserved as targets.
  EXPECT_EQ(ds.targets[1], 1.0);
}

TEST_F(IoTest, LibsvmErrors) {
  EXPECT_THROW(read_libsvm(path("missing.svm")), std::runtime_error);
  {
    std::ofstream f(path("bad.svm"));
    f << "+1 nocolon\n";
  }
  EXPECT_THROW(read_libsvm(path("bad.svm")), std::runtime_error);
  {
    std::ofstream f(path("zeroidx.svm"));
    f << "+1 0:1.0\n";
  }
  EXPECT_THROW(read_libsvm(path("zeroidx.svm")), std::runtime_error);
}

TEST_F(IoTest, CsvRoundTrip) {
  Dataset ds = make_synthetic(SyntheticKind::SusyLike, 40, 1);
  write_csv(path("c.csv"), ds);
  Dataset back = read_csv(path("c.csv"), /*labeled=*/true);
  EXPECT_EQ(back.n(), ds.n());
  EXPECT_EQ(back.dim(), ds.dim());
  EXPECT_LT(la::max_abs_diff(back.points, ds.points), 1e-14);
  EXPECT_EQ(back.labels, ds.labels);
}

TEST_F(IoTest, CsvUnlabeled) {
  Dataset ds = make_synthetic(SyntheticKind::Normal, 20, 2);
  write_csv(path("d.csv"), ds);
  Dataset back = read_csv(path("d.csv"), /*labeled=*/false);
  EXPECT_EQ(back.dim(), ds.dim());
  EXPECT_FALSE(back.labeled());
}

TEST_F(IoTest, CsvRaggedRowsRejected) {
  {
    std::ofstream f(path("ragged.csv"));
    f << "1,2,3\n1,2\n";
  }
  EXPECT_THROW(read_csv(path("ragged.csv"), false), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripLossless) {
  Dataset ds = make_synthetic(SyntheticKind::MnistLike, 30, 3);
  ASSERT_TRUE(ds.multiclass());
  write_binary(path("e.bin"), ds);
  Dataset back = read_binary(path("e.bin"));
  EXPECT_EQ(back.name, ds.name);
  EXPECT_EQ(back.intrinsic_dim, ds.intrinsic_dim);
  EXPECT_EQ(la::max_abs_diff(back.points, ds.points), 0.0);
  EXPECT_EQ(back.labels, ds.labels);
  EXPECT_EQ(back.classes, ds.classes);
  EXPECT_EQ(back.targets, ds.targets);
}

TEST_F(IoTest, LibsvmWriteReadRoundTrip) {
  Dataset ds = make_synthetic(SyntheticKind::HiggsLike, 25, 8);
  write_libsvm(path("rt.svm"), ds);
  Dataset back = read_libsvm(path("rt.svm"));
  EXPECT_EQ(back.n(), ds.n());
  EXPECT_EQ(back.dim(), ds.dim());
  EXPECT_LT(la::max_abs_diff(back.points, ds.points), 1e-14);
  EXPECT_EQ(back.labels, ds.labels);
}

TEST_F(IoTest, BinaryBadMagicRejected) {
  {
    std::ofstream f(path("junk.bin"), std::ios::binary);
    f << "not a dataset";
  }
  EXPECT_THROW(read_binary(path("junk.bin")), std::runtime_error);
}

}  // namespace
}  // namespace fdks::data
