// Tests for the synthetic dataset generators, preprocessing, and kernel
// ridge regression.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/generators.hpp"
#include "data/preprocess.hpp"
#include "krr/krr.hpp"

namespace fdks::data {
namespace {

TEST(Generators, AllKindsProduceRequestedShape) {
  for (SyntheticKind k :
       {SyntheticKind::CovtypeLike, SyntheticKind::SusyLike,
        SyntheticKind::MnistLike, SyntheticKind::HiggsLike,
        SyntheticKind::MriLike, SyntheticKind::Normal}) {
    Dataset ds = make_synthetic(k, 100, 1);
    EXPECT_EQ(ds.n(), 100) << kind_name(k);
    EXPECT_EQ(ds.dim(), ambient_dim(k)) << kind_name(k);
    EXPECT_GT(ds.intrinsic_dim, 0);
    EXPECT_LT(ds.intrinsic_dim, ds.dim());
  }
}

TEST(Generators, AmbientDimsMatchPaper) {
  EXPECT_EQ(ambient_dim(SyntheticKind::CovtypeLike), 54);
  EXPECT_EQ(ambient_dim(SyntheticKind::SusyLike), 8);
  EXPECT_EQ(ambient_dim(SyntheticKind::MnistLike), 784);
  EXPECT_EQ(ambient_dim(SyntheticKind::HiggsLike), 28);
  EXPECT_EQ(ambient_dim(SyntheticKind::MriLike), 128);
  EXPECT_EQ(ambient_dim(SyntheticKind::Normal), 64);
}

TEST(Generators, ZScoredCoordinates) {
  Dataset ds = make_synthetic(SyntheticKind::CovtypeLike, 2000, 2);
  for (index_t i = 0; i < ds.dim(); ++i) {
    double mean = 0.0, var = 0.0;
    for (index_t j = 0; j < ds.n(); ++j) mean += ds.points(i, j);
    mean /= double(ds.n());
    for (index_t j = 0; j < ds.n(); ++j) {
      const double t = ds.points(i, j) - mean;
      var += t * t;
    }
    var /= double(ds.n());
    EXPECT_NEAR(mean, 0.0, 1e-10);
    EXPECT_NEAR(var, 1.0, 1e-8);
  }
}

TEST(Generators, LabelsAreBinaryAndBothClassesPresent) {
  for (SyntheticKind k : {SyntheticKind::CovtypeLike, SyntheticKind::SusyLike,
                          SyntheticKind::MnistLike, SyntheticKind::HiggsLike}) {
    Dataset ds = make_synthetic(k, 500, 3);
    ASSERT_TRUE(ds.labeled()) << kind_name(k);
    std::set<double> values(ds.labels.begin(), ds.labels.end());
    EXPECT_EQ(values.size(), 2u) << kind_name(k);
    EXPECT_TRUE(values.count(1.0));
    EXPECT_TRUE(values.count(-1.0));
  }
}

TEST(Generators, UnlabeledKinds) {
  EXPECT_FALSE(make_synthetic(SyntheticKind::MriLike, 50, 4).labeled());
  EXPECT_FALSE(make_synthetic(SyntheticKind::Normal, 50, 4).labeled());
}

TEST(Generators, DeterministicInSeed) {
  Dataset a = make_synthetic(SyntheticKind::SusyLike, 100, 7);
  Dataset b = make_synthetic(SyntheticKind::SusyLike, 100, 7);
  EXPECT_EQ(la::max_abs_diff(a.points, b.points), 0.0);
  EXPECT_EQ(a.labels, b.labels);
  Dataset c = make_synthetic(SyntheticKind::SusyLike, 100, 8);
  EXPECT_GT(la::max_abs_diff(a.points, c.points), 0.0);
}

TEST(Preprocess, TrainTestSplitPartitions) {
  Dataset ds = make_synthetic(SyntheticKind::SusyLike, 200, 5);
  auto [train, test] = train_test_split(ds, 0.25, 11);
  EXPECT_EQ(train.n() + test.n(), 200);
  EXPECT_EQ(test.n(), 50);
  EXPECT_EQ(train.dim(), ds.dim());
  EXPECT_TRUE(train.labeled());
  EXPECT_TRUE(test.labeled());
}

TEST(Preprocess, SplitRejectsBadFraction) {
  Dataset ds = make_synthetic(SyntheticKind::SusyLike, 50, 6);
  EXPECT_THROW(train_test_split(ds, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(train_test_split(ds, 1.0, 1), std::invalid_argument);
}

TEST(Preprocess, AccuracyCountsSignAgreement) {
  std::vector<double> pred = {0.5, -0.2, 0.1, -0.9};
  std::vector<double> lab = {1.0, 1.0, 1.0, -1.0};
  EXPECT_DOUBLE_EQ(accuracy(pred, lab), 0.75);
}

}  // namespace
}  // namespace fdks::data

namespace fdks::krr {
namespace {

using data::Dataset;
using data::SyntheticKind;

KrrConfig fast_config() {
  KrrConfig cfg;
  cfg.askit.leaf_size = 64;
  cfg.askit.max_rank = 64;
  cfg.askit.tol = 1e-6;
  cfg.askit.num_neighbors = 0;  // Uniform sampling: faster to build.
  cfg.askit.seed = 13;
  return cfg;
}

TEST(KernelRidge, LearnsSeparableClusters) {
  // covtype-like clusters are well separated: KRR should beat 90%.
  Dataset ds = data::make_synthetic(SyntheticKind::CovtypeLike, 1200, 21);
  auto [train, test] = data::train_test_split(ds, 0.2, 22);
  KrrConfig cfg = fast_config();
  cfg.bandwidth = 3.0;
  cfg.lambda = 0.1;
  KernelRidge model(train, cfg);
  EXPECT_GT(model.accuracy(test), 0.9);
  EXPECT_LT(model.train_residual(), 1e-6);
}

TEST(KernelRidge, BeatsChanceOnOverlappingClasses) {
  Dataset ds = data::make_synthetic(SyntheticKind::SusyLike, 1500, 23);
  auto [train, test] = data::train_test_split(ds, 0.2, 24);
  KrrConfig cfg = fast_config();
  cfg.bandwidth = 1.0;
  cfg.lambda = 1.0;
  KernelRidge model(train, cfg);
  const double acc = model.accuracy(test);
  EXPECT_GT(acc, 0.65);  // Task has irreducible overlap, like real SUSY.
}

TEST(KernelRidge, HybridAndDirectAgree) {
  Dataset ds = data::make_synthetic(SyntheticKind::CovtypeLike, 800, 25);
  auto [train, test] = data::train_test_split(ds, 0.2, 26);
  KrrConfig direct = fast_config();
  direct.bandwidth = 3.0;
  direct.lambda = 0.5;
  KrrConfig hybrid = direct;
  hybrid.use_hybrid = true;
  hybrid.askit.level_restriction = 2;
  direct.askit.level_restriction = 2;
  hybrid.gmres.rtol = 1e-10;
  KernelRidge m1(train, direct);
  KernelRidge m2(train, hybrid);
  // Same compressed system, so weights agree closely.
  double wdiff = 0.0, wnorm = 0.0;
  for (size_t i = 0; i < m1.weights().size(); ++i) {
    wdiff += std::pow(m1.weights()[i] - m2.weights()[i], 2);
    wnorm += std::pow(m1.weights()[i], 2);
  }
  EXPECT_LT(std::sqrt(wdiff / wnorm), 1e-6);
  EXPECT_NEAR(m1.accuracy(test), m2.accuracy(test), 0.02);
}

TEST(KernelRidge, RejectsUnlabeledData) {
  Dataset ds = data::make_synthetic(SyntheticKind::Normal, 100, 27);
  EXPECT_THROW(KernelRidge(ds, fast_config()), std::invalid_argument);
}

TEST(KernelRidge, DecisionDimensionMismatchThrows) {
  Dataset ds = data::make_synthetic(SyntheticKind::SusyLike, 200, 28);
  KernelRidge model(ds, fast_config());
  la::Matrix wrong(3, 5);
  EXPECT_THROW(model.decision(wrong), std::invalid_argument);
}

TEST(CrossValidate, FindsReasonableCellAndTracksGrid) {
  Dataset ds = data::make_synthetic(SyntheticKind::CovtypeLike, 900, 29);
  std::vector<double> hs = {1.0, 3.0};
  std::vector<double> lams = {0.1, 10.0};
  CvResult cv = cross_validate(ds, hs, lams, fast_config(), 0.25, 30);
  EXPECT_EQ(cv.cells.size(), 4u);
  EXPECT_GE(cv.best.accuracy, 0.8);
  for (const CvCell& c : cv.cells) EXPECT_LE(c.accuracy, cv.best.accuracy);
}

}  // namespace
}  // namespace fdks::krr
