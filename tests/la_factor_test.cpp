// Tests for LU, Cholesky, QR, ID, SVD, and norm estimates.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "la/blas1.hpp"
#include "la/chol.hpp"
#include "la/gemm.hpp"
#include "la/id.hpp"
#include "la/lu.hpp"
#include "la/matrix.hpp"
#include "la/norms.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"

namespace fdks::la {
namespace {

Matrix diag_dominant(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Matrix a = Matrix::random_gaussian(n, n, rng);
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n) + 1.0;
  return a;
}

Matrix spd_matrix(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Matrix g = Matrix::random_gaussian(n, n, rng);
  Matrix a = matmul(Trans::Yes, Trans::No, g, g);
  for (index_t i = 0; i < n; ++i) a(i, i) += 1.0;
  return a;
}

// ---------------------------------------------------------------- LU --

TEST(Lu, SolvesKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 3;
  LuFactor f = lu_factor(a);
  std::vector<double> b = {3.0, 4.0};  // Solution x = (1, 1).
  lu_solve(f, b);
  EXPECT_NEAR(b[0], 1.0, 1e-14);
  EXPECT_NEAR(b[1], 1.0, 1e-14);
}

TEST(Lu, RequiresSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(lu_factor(a), std::invalid_argument);
}

TEST(Lu, DetectsSingular) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 4;
  LuFactor f = lu_factor(a);
  EXPECT_TRUE(f.singular || f.min_pivot < 1e-14);
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 0;
  LuFactor f = lu_factor(a);
  EXPECT_FALSE(f.singular);
  std::vector<double> b = {2.0, 5.0};
  lu_solve(f, b);
  EXPECT_NEAR(b[0], 5.0, 1e-14);
  EXPECT_NEAR(b[1], 2.0, 1e-14);
}

class LuResidual : public ::testing::TestWithParam<int> {};

TEST_P(LuResidual, SmallRelativeResidual) {
  const index_t n = GetParam();
  Matrix a = diag_dominant(n, static_cast<uint64_t>(n));
  LuFactor f = lu_factor(a);
  EXPECT_FALSE(f.singular);
  std::mt19937_64 rng(99);
  Matrix xexact = Matrix::random_gaussian(n, 1, rng);
  Matrix b = matmul(a, xexact);
  std::vector<double> x(b.data(), b.data() + n);
  lu_solve(f, x);
  double err = 0.0;
  for (index_t i = 0; i < n; ++i)
    err = std::max(err, std::abs(x[static_cast<size_t>(i)] - xexact(i, 0)));
  EXPECT_LT(err, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuResidual,
                         ::testing::Values(1, 2, 3, 8, 17, 64, 127, 128, 129,
                                           192, 300, 517));

TEST(Lu, BlockedFactorReconstructsMatrix) {
  // n > 2*block forces the blocked path; P*L*U must reproduce A.
  const index_t n = 200;
  Matrix a = diag_dominant(n, 77);
  LuFactor f = lu_factor(a);
  // Form L and U explicitly.
  Matrix l = Matrix::identity(n);
  Matrix u(n, n);
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      if (i > j)
        l(i, j) = f.lu(i, j);
      else
        u(i, j) = f.lu(i, j);
    }
  Matrix lu = matmul(l, u);
  // Undo pivoting: apply swaps to a copy of A.
  Matrix pa = a;
  for (index_t k = 0; k < n; ++k) {
    const index_t p = f.piv[static_cast<size_t>(k)];
    if (p != k)
      for (index_t j = 0; j < n; ++j) std::swap(pa(k, j), pa(p, j));
  }
  EXPECT_LT(max_abs_diff(pa, lu), 1e-9 * norm_fro(a));
}

TEST(Lu, BlockSolveMatchesVectorSolves) {
  Matrix a = diag_dominant(12, 5);
  LuFactor f = lu_factor(a);
  std::mt19937_64 rng(6);
  Matrix b = Matrix::random_gaussian(12, 4, rng);
  Matrix b2 = b;
  lu_solve(f, b2);
  for (index_t j = 0; j < 4; ++j) {
    std::vector<double> col(b.col(j), b.col(j) + 12);
    lu_solve(f, col);
    for (index_t i = 0; i < 12; ++i)
      EXPECT_NEAR(b2(i, j), col[static_cast<size_t>(i)], 1e-13);
  }
}

TEST(Lu, RcondTracksConditioning) {
  Matrix good = Matrix::identity(10);
  LuFactor fg = lu_factor(good);
  EXPECT_GT(lu_rcond(fg, norm1(good)), 0.5);

  // Graded diagonal: condition 1e8.
  Matrix bad = Matrix::identity(10);
  bad(9, 9) = 1e-8;
  LuFactor fb = lu_factor(bad);
  const double rc = lu_rcond(fb, norm1(bad));
  EXPECT_LT(rc, 1e-6);
  EXPECT_GT(rc, 0.0);
}

// ----------------------------------------------------------- Cholesky --

TEST(Chol, FactorsAndSolvesSpd) {
  Matrix a = spd_matrix(20, 11);
  CholFactor f = chol_factor(a);
  EXPECT_TRUE(f.spd);
  std::mt19937_64 rng(12);
  Matrix xexact = Matrix::random_gaussian(20, 1, rng);
  Matrix b = matmul(a, xexact);
  std::vector<double> x(b.data(), b.data() + 20);
  chol_solve(f, x);
  for (index_t i = 0; i < 20; ++i)
    EXPECT_NEAR(x[static_cast<size_t>(i)], xexact(i, 0), 1e-9);
}

TEST(Chol, FlagsIndefinite) {
  Matrix a = Matrix::identity(3);
  a(2, 2) = -1.0;
  CholFactor f = chol_factor(a);
  EXPECT_FALSE(f.spd);
}

TEST(Chol, ReconstructsMatrix) {
  Matrix a = spd_matrix(8, 21);
  CholFactor f = chol_factor(a);
  Matrix llt = matmul(Trans::No, Trans::Yes, f.l, f.l);
  EXPECT_LT(max_abs_diff(a, llt), 1e-10 * norm_fro(a));
}

// ----------------------------------------------------------------- QR --

TEST(Qr, ReconstructsMatrix) {
  std::mt19937_64 rng(31);
  Matrix a = Matrix::random_gaussian(12, 7, rng);
  QrFactor f = qr_factor(a);
  Matrix q = qr_form_q(f);
  Matrix r = qr_form_r(f);
  Matrix qr = matmul(q, r);
  EXPECT_LT(max_abs_diff(a, qr), 1e-12);
}

TEST(Qr, QHasOrthonormalColumns) {
  std::mt19937_64 rng(32);
  Matrix a = Matrix::random_gaussian(15, 6, rng);
  Matrix q = qr_form_q(qr_factor(a));
  Matrix qtq = matmul(Trans::Yes, Trans::No, q, q);
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(6)), 1e-13);
}

TEST(Qr, LeastSquaresRecoversCoefficients) {
  std::mt19937_64 rng(33);
  Matrix a = Matrix::random_gaussian(30, 4, rng);
  std::vector<double> coef = {1.0, -2.0, 0.5, 4.0};
  std::vector<double> b(30, 0.0);
  gemv(Trans::No, 1.0, a, coef, 0.0, b);
  auto x = qr_least_squares(a, b);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(x[i], coef[i], 1e-10);
}

TEST(QrPivoted, ReconstructsWithPermutation) {
  std::mt19937_64 rng(34);
  Matrix a = Matrix::random_gaussian(10, 8, rng);
  QrFactor f = qr_factor_pivoted(a);
  Matrix q = qr_form_q(f);
  Matrix r = qr_form_r(f);
  Matrix qr = matmul(q, r);  // Equals A(:, jpvt).
  Matrix aperm = a.select_cols(f.jpvt);
  EXPECT_LT(max_abs_diff(aperm, qr), 1e-12);
}

TEST(QrPivoted, RdiagIsNonIncreasing) {
  std::mt19937_64 rng(35);
  Matrix a = Matrix::random_gaussian(20, 12, rng);
  QrFactor f = qr_factor_pivoted(a);
  auto d = f.rdiag();
  for (size_t k = 1; k < d.size(); ++k)
    EXPECT_LE(d[k], d[k - 1] * (1.0 + 1e-12));
}

TEST(QrPivoted, RevealsNumericalRank) {
  // Build an exactly rank-3 matrix; pivoted QR must truncate there.
  std::mt19937_64 rng(36);
  Matrix u = Matrix::random_gaussian(20, 3, rng);
  Matrix v = Matrix::random_gaussian(3, 15, rng);
  Matrix a = matmul(u, v);
  QrFactor f = qr_factor_pivoted(a, 1e-10);
  EXPECT_EQ(f.rank, 3);
}

TEST(QrPivoted, MaxRankCaps) {
  std::mt19937_64 rng(37);
  Matrix a = Matrix::random_gaussian(16, 16, rng);
  QrFactor f = qr_factor_pivoted(a, 0.0, 5);
  EXPECT_EQ(f.rank, 5);
}

// ----------------------------------------------------------------- ID --

TEST(Id, ExactOnLowRank) {
  std::mt19937_64 rng(41);
  Matrix u = Matrix::random_gaussian(30, 4, rng);
  Matrix v = Matrix::random_gaussian(4, 25, rng);
  Matrix a = matmul(u, v);
  IdResult id = interpolative_decomposition(a, 1e-10);
  EXPECT_EQ(id.rank, 4);
  EXPECT_TRUE(id.compressed);
  EXPECT_LT(id_relative_error(a, id), 1e-9);
}

TEST(Id, IdentityOnSkeletonColumns) {
  std::mt19937_64 rng(42);
  Matrix a = Matrix::random_gaussian(10, 6, rng);
  IdResult id = interpolative_decomposition(a, 0.0, 6);
  // P restricted to the skeleton columns must be the identity.
  for (index_t k = 0; k < id.rank; ++k) {
    for (index_t i = 0; i < id.rank; ++i) {
      const double expect = (i == k) ? 1.0 : 0.0;
      EXPECT_NEAR(id.p(i, id.skeleton[static_cast<size_t>(k)]), expect, 1e-12);
    }
  }
}

class IdTolerance : public ::testing::TestWithParam<double> {};

TEST_P(IdTolerance, ErrorTracksTolerance) {
  const double tol = GetParam();
  // Matrix with geometric singular-value decay: sigma_k ~ 2^{-k}.
  const index_t m = 40, n = 30;
  std::mt19937_64 rng(43);
  Matrix g1 = Matrix::random_gaussian(m, n, rng);
  Matrix g2 = Matrix::random_gaussian(n, n, rng);
  QrFactor q1 = qr_factor(g1);
  QrFactor q2 = qr_factor(g2);
  Matrix uu = qr_form_q(q1);
  Matrix vv = qr_form_q(q2);
  Matrix s(n, n);
  for (index_t k = 0; k < n; ++k) s(k, k) = std::pow(2.0, -double(k));
  Matrix a = matmul(matmul(uu, s), vv.transposed());
  IdResult id = interpolative_decomposition(a, tol);
  EXPECT_LT(id.rank, n);
  // ID error can exceed the QR-diag estimate by a modest factor.
  EXPECT_LT(id_relative_error(a, id), 50.0 * tol);
  EXPECT_GT(id.rank, static_cast<index_t>(std::log2(1.0 / tol)) - 4);
}

INSTANTIATE_TEST_SUITE_P(Tolerances, IdTolerance,
                         ::testing::Values(1e-1, 1e-3, 1e-5, 1e-8));

TEST(Id, EmptyMatrix) {
  Matrix a(5, 0);
  IdResult id = interpolative_decomposition(a, 1e-3);
  EXPECT_EQ(id.rank, 0);
  EXPECT_TRUE(id.skeleton.empty());
}

// ---------------------------------------------------------------- SVD --

TEST(Svd, KnownSingularValues) {
  Matrix a(2, 2);
  a(0, 0) = 3; a(1, 1) = 4;  // Diagonal: singular values {4, 3}.
  SvdResult s = svd_jacobi(a);
  ASSERT_EQ(s.sigma.size(), 2u);
  EXPECT_NEAR(s.sigma[0], 4.0, 1e-12);
  EXPECT_NEAR(s.sigma[1], 3.0, 1e-12);
}

TEST(Svd, ReconstructsMatrix) {
  std::mt19937_64 rng(51);
  Matrix a = Matrix::random_gaussian(9, 6, rng);
  SvdResult s = svd_jacobi(a, /*want_vectors=*/true);
  Matrix us(9, 6);
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 9; ++i)
      us(i, j) = s.u(i, j) * s.sigma[static_cast<size_t>(j)];
  Matrix rec = matmul(Trans::No, Trans::Yes, us, s.v);
  EXPECT_LT(max_abs_diff(a, rec), 1e-10);
}

TEST(Svd, WideMatrixHandledByTranspose) {
  std::mt19937_64 rng(52);
  Matrix a = Matrix::random_gaussian(4, 9, rng);
  SvdResult s = svd_jacobi(a, true);
  Matrix us(4, 4);
  for (index_t j = 0; j < 4; ++j)
    for (index_t i = 0; i < 4; ++i)
      us(i, j) = s.u(i, j) * s.sigma[static_cast<size_t>(j)];
  Matrix rec = matmul(Trans::No, Trans::Yes, us, s.v);
  EXPECT_LT(max_abs_diff(a, rec), 1e-10);
}

TEST(Svd, MatchesFrobeniusNorm) {
  std::mt19937_64 rng(53);
  Matrix a = Matrix::random_gaussian(12, 12, rng);
  SvdResult s = svd_jacobi(a);
  double sum2 = 0.0;
  for (double v : s.sigma) sum2 += v * v;
  EXPECT_NEAR(std::sqrt(sum2), norm_fro(a), 1e-10);
}

TEST(Svd, Cond2OfIdentityIsOne) {
  EXPECT_NEAR(cond2(Matrix::identity(6)), 1.0, 1e-12);
}

// -------------------------------------------------------------- Norms --

TEST(Norms, Norm1AndInf) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = -2; a(1, 0) = 3; a(1, 1) = 4;
  EXPECT_DOUBLE_EQ(norm1(a), 6.0);     // Column 1: |-2|+|4| = 6.
  EXPECT_DOUBLE_EQ(norm_inf(a), 7.0);  // Row 1: |3|+|4| = 7.
}

TEST(Norms, Norm2EstimateMatchesSvd) {
  std::mt19937_64 rng(61);
  Matrix a = Matrix::random_gaussian(15, 15, rng);
  const double est = norm2_estimate(a, 60);
  const double exact = svd_jacobi(a).sigma[0];
  EXPECT_NEAR(est / exact, 1.0, 1e-3);
}

TEST(Norms, OperatorEstimateMatchesDense) {
  Matrix a = spd_matrix(10, 62);
  const double exact = svd_jacobi(a).sigma[0];
  const double est = norm2_estimate_op(
      10,
      [&](std::span<const double> x, std::span<double> y) {
        gemv(Trans::No, 1.0, a, x, 0.0, y);
      },
      80);
  EXPECT_NEAR(est / exact, 1.0, 1e-6);
}

}  // namespace
}  // namespace fdks::la
