// Chaos soak: sweep drop/corrupt fractions under reliable transport and
// require every in-tolerance cell to complete with a fault-free-quality
// residual. Cells beyond the documented tolerance (set a larger grid via
// the environment) may fail, but must fail with a clean structured
// error — never a hang, never silent garbage.
//
// Wired as the "chaos"-labelled ctest; scripts/chaos_soak.sh builds and
// runs it. Environment knobs (comma-separated lists / integers):
//   FDKS_CHAOS_DROPS    drop fractions to sweep   (default 0,0.05,0.10)
//   FDKS_CHAOS_CORRUPTS corrupt fractions         (default 0,0.02)
//   FDKS_CHAOS_N        problem size              (default 192)
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "core/dist_solver.hpp"
#include "la/blas1.hpp"
#include "mpisim/runtime.hpp"
#include "obs/obs.hpp"

namespace fdks {
namespace {

using askit::AskitConfig;
using core::DistributedSolver;
using core::SolverOptions;
using kernel::Kernel;
using la::Matrix;
using la::index_t;
using mpisim::Comm;
using mpisim::WorldOptions;

// Fractions the reliable transport is documented to absorb with the
// default retry budget (see README "Recovery"). Beyond this the retry
// budget can plausibly exhaust; the soak then only requires a clean
// structured failure.
constexpr double kDropTolerance = 0.15;
constexpr double kCorruptTolerance = 0.10;

std::vector<double> env_list(const char* name,
                             std::vector<double> fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  std::vector<double> out;
  std::string s(raw);
  size_t pos = 0;
  while (pos <= s.size()) {
    const size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::stod(tok));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out.empty() ? fallback : out;
}

index_t env_n(const char* name, index_t fallback) {
  const char* raw = std::getenv(name);
  if (!raw || !*raw) return fallback;
  const long v = std::strtol(raw, nullptr, 10);
  return v > 0 ? static_cast<index_t>(v) : fallback;
}

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

TEST(ChaosSoak, SweepDropAndCorruptFractionsUnderReliableTransport) {
  const std::vector<double> drops =
      env_list("FDKS_CHAOS_DROPS", {0.0, 0.05, 0.10});
  const std::vector<double> corrupts =
      env_list("FDKS_CHAOS_CORRUPTS", {0.0, 0.02});
  const index_t n = env_n("FDKS_CHAOS_N", 192);

  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 40;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 5;
  Matrix pts = clustered_points(3, n, 21);
  askit::HMatrix h(pts, Kernel::gaussian(1.0), cfg);
  SolverOptions opts;
  opts.lambda = 0.7;
  std::mt19937_64 rng(22);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> u(static_cast<size_t>(n));
  for (auto& v : u) v = g(rng);

  std::vector<double> x_clean;
  double res_clean = 0.0;
  mpisim::run(4, [&](Comm& comm) {
    DistributedSolver ds(h, opts, comm);
    auto x = ds.solve(u);
    if (comm.rank() == 0) {
      x_clean = std::move(x);
      res_clean = ds.last_status().residual;
    }
  });
  const double res_tol = std::max(1e-12, 2.0 * res_clean);

  std::printf("chaos soak: n=%lld p=4 cells=%zu (residual tol %.2e)\n",
              static_cast<long long>(n), drops.size() * corrupts.size(),
              res_tol);
  std::printf("%8s %8s %10s %10s  %s\n", "drop", "corrupt", "residual",
              "seconds", "outcome");

  uint64_t cell_seed = 100;
  for (const double drop : drops) {
    for (const double corrupt : corrupts) {
      WorldOptions wo;
      wo.faults.seed = ++cell_seed;
      wo.faults.drop_fraction = drop;
      wo.faults.corrupt_fraction = corrupt;
      wo.reliable.enabled = true;
      wo.reliable.ack_timeout = std::chrono::milliseconds(25);

      const bool in_tolerance =
          drop <= kDropTolerance && corrupt <= kCorruptTolerance;
      const auto t0 = std::chrono::steady_clock::now();
      double residual = -1.0;
      std::string failure;
      try {
        mpisim::run(
            4,
            [&](Comm& comm) {
              DistributedSolver ds(h, opts, comm);
              auto x = ds.solve(u);
              if (comm.rank() == 0) residual = ds.last_status().residual;
            },
            wo);
      } catch (const std::exception& e) {
        failure = e.what();
      }
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      std::printf("%8.3f %8.3f %10.2e %10.2f  %s\n", drop, corrupt,
                  residual, secs,
                  failure.empty() ? "ok" : failure.c_str());

      if (in_tolerance) {
        EXPECT_TRUE(failure.empty())
            << "drop=" << drop << " corrupt=" << corrupt
            << " must be absorbed: " << failure;
        if (failure.empty()) {
          EXPECT_LE(residual, res_tol)
              << "drop=" << drop << " corrupt=" << corrupt;
        }
      } else if (!failure.empty()) {
        // Out-of-tolerance cells may fail, but only descriptively.
        EXPECT_NE(failure.find("mpisim"), std::string::npos) << failure;
      }
    }
  }
}

}  // namespace
}  // namespace fdks
