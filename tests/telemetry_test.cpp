// Tests for the live-telemetry layer: Prometheus text-format
// conformance of the exporter (escaping, HELP/TYPE lines, cumulative
// `le` buckets), the embedded scrape endpoint under concurrent serving
// load (a TSan target via the `fault` label), the request-lifecycle
// event log's terminal-event invariant across every serving outcome,
// the interval-delta Sampler, gauge last-value merge semantics, the
// tail-trace keep/evict policy, and the SLO tracker's error budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/solver.hpp"
#include "obs/eventlog.hpp"
#include "obs/export.hpp"
#include "obs/keys.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/slo.hpp"
#include "serve/tail_trace.hpp"

namespace fdks {
namespace {

using askit::AskitConfig;
using core::FastDirectSolver;
using kernel::Kernel;
using la::Matrix;
using la::index_t;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---- Shared fixtures -------------------------------------------------

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig tight_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 7;
  return cfg;
}

std::vector<double> random_rhs(index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 1.0);
  std::vector<double> rhs(static_cast<size_t>(n));
  for (auto& v : rhs) v = g(rng);
  return rhs;
}

struct ServeFixture {
  Matrix p;
  askit::HMatrix h;
  std::shared_ptr<const FastDirectSolver> solver;
  explicit ServeFixture(index_t n, uint64_t seed = 31)
      : p(clustered_points(3, n, seed)),
        h(p, Kernel::gaussian(1.0), tight_config()) {
    core::SolverOptions opts;
    opts.lambda = 1.0;
    solver = std::make_shared<const FastDirectSolver>(h, opts);
  }
};

/// An EventLog whose sink collects lines into a vector for assertions.
struct CapturedLog {
  std::shared_ptr<std::mutex> mu = std::make_shared<std::mutex>();
  std::shared_ptr<std::vector<std::string>> lines =
      std::make_shared<std::vector<std::string>>();
  std::shared_ptr<obs::EventLog> log;

  CapturedLog() {
    auto m = mu;
    auto ls = lines;
    log = std::make_shared<obs::EventLog>(
        [m, ls](std::string_view line) {
          std::lock_guard<std::mutex> lock(*m);
          ls->emplace_back(line);
        });
  }

  std::vector<std::string> snapshot() const {
    std::lock_guard<std::mutex> lock(*mu);
    return *lines;
  }
};

/// Pull "field":value (raw JSON token) out of an event line; empty
/// string when absent. Enough JSON parsing for our own writer.
std::string json_field(const std::string& line, const std::string& field) {
  const std::string needle = "\"" + field + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  if (line[begin] == '"') {
    end = line.find('"', begin + 1);
    return line.substr(begin + 1, end - begin - 1);
  }
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(begin, end - begin);
}

bool is_terminal_event(const std::string& ev) {
  return ev == "solved" || ev == "expired" || ev == "degraded" ||
         ev == "failed" || ev == "shed";
}

// ---- Prometheus conformance ------------------------------------------

TEST(PrometheusFormat, MetricNameMapsNonAlnumToUnderscore) {
  EXPECT_EQ(obs::prometheus_metric_name("serve.request_seconds"),
            "fdks_serve_request_seconds");
  EXPECT_EQ(obs::prometheus_metric_name("a.b-c/d"), "fdks_a_b_c_d");
}

TEST(PrometheusFormat, LabelAndHelpEscaping) {
  EXPECT_EQ(obs::prometheus_escape_label("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
  // HELP escapes backslash and newline but NOT double quotes.
  EXPECT_EQ(obs::prometheus_escape_help("a\\b\"c\nd"), "a\\\\b\"c\\nd");
}

TEST(PrometheusFormat, CounterAndGaugeFamiliesHaveHelpAndType) {
  obs::Snapshot s;
  s.counters["demo.requests"] = 42.0;
  s.gauges["demo.level"] = -3.5;
  obs::PrometheusOptions po;
  po.registry_defaults = false;
  const std::string out = obs::prometheus_render(s, po);

  EXPECT_NE(out.find("# HELP fdks_demo_requests obs counter demo.requests\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE fdks_demo_requests counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("\nfdks_demo_requests 42\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE fdks_demo_level gauge\n"), std::string::npos);
  EXPECT_NE(out.find("\nfdks_demo_level -3.5\n"), std::string::npos);
}

TEST(PrometheusFormat, HistogramBucketsCumulativeMonotoneWithInf) {
  obs::Snapshot s;
  obs::HistogramSnapshot h;
  // Three samples in distinct buckets plus one non-positive: bucket 0
  // renders as le="0" and the cumulative series must be monotone.
  h.buckets[0] = 1;   // le="0" (non-positive sample)
  h.buckets[40] = 2;  // le=2^-8
  h.buckets[50] = 3;  // le=4
  h.count = 6;
  h.sum = 12.5;
  h.min = -1.0;
  h.max = 4.0;
  s.histograms["demo.lat"] = h;
  obs::PrometheusOptions po;
  po.registry_defaults = false;
  const std::string out = obs::prometheus_render(s, po);

  // Parse every fdks_demo_lat_bucket sample in order.
  std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
  std::istringstream in(out);
  std::string line;
  double count_value = -1.0;
  while (std::getline(in, line)) {
    if (line.rfind("fdks_demo_lat_bucket{le=\"", 0) == 0) {
      const std::size_t q0 = line.find('"') + 1;
      const std::size_t q1 = line.find('"', q0);
      const std::string le = line.substr(q0, q1 - q0);
      const double v = std::stod(line.substr(line.rfind(' ') + 1));
      const double edge =
          le == "+Inf" ? std::numeric_limits<double>::infinity()
                       : std::stod(le);
      buckets.emplace_back(edge, v);
    } else if (line.rfind("fdks_demo_lat_count ", 0) == 0) {
      count_value = std::stod(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_EQ(buckets.size(), 4u);  // 3 occupied + mandatory +Inf.
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_LT(buckets[i - 1].first, buckets[i].first)
        << "le edges must increase";
    EXPECT_LE(buckets[i - 1].second, buckets[i].second)
        << "cumulative counts must be monotone";
  }
  EXPECT_EQ(buckets.front().first, 0.0);
  EXPECT_EQ(buckets.front().second, 1.0);
  EXPECT_TRUE(std::isinf(buckets.back().first));
  EXPECT_EQ(buckets.back().second, 6.0);  // +Inf == _count.
  EXPECT_EQ(count_value, 6.0);
  EXPECT_NE(out.find("fdks_demo_lat_sum 12.5\n"), std::string::npos);
  // Quantile side-family rendered as a gauge.
  EXPECT_NE(out.find("# TYPE fdks_demo_lat_quantile gauge\n"),
            std::string::npos);
  EXPECT_NE(out.find("fdks_demo_lat_quantile{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST(PrometheusFormat, RegistryDefaultsStabilizeTheKeySet) {
  // An empty snapshot with defaults on still renders every registered
  // Counter/Gauge/Histogram key — a scraper sees the same series before
  // the first request as after the millionth.
  const std::string out = obs::prometheus_render(obs::Snapshot{});
  for (const obs::keys::KeyInfo& k : obs::keys::kAll) {
    if (k.kind != obs::keys::Kind::Counter &&
        k.kind != obs::keys::Kind::Gauge &&
        k.kind != obs::keys::Kind::Histogram)
      continue;
    EXPECT_NE(out.find(obs::prometheus_metric_name(k.key)),
              std::string::npos)
        << "registered key missing from default render: " << k.key;
  }
  // Registered timer scopes render as zero-valued defaults too.
  EXPECT_NE(out.find("fdks_timer_seconds_total{scope=\"serve.batch\"} 0\n"),
            std::string::npos);
}

TEST(PrometheusFormat, HelpAndTypeAppearExactlyOncePerFamily) {
  obs::Snapshot s;
  s.counters["demo.a"] = 1.0;
  s.counters["demo.b"] = 2.0;
  obs::PrometheusOptions po;
  po.registry_defaults = false;
  const std::string out = obs::prometheus_render(s, po);
  auto count_of = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = out.find(needle); at != std::string::npos;
         at = out.find(needle, at + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count_of("# HELP fdks_demo_a "), 1u);
  EXPECT_EQ(count_of("# TYPE fdks_demo_a "), 1u);
  EXPECT_EQ(count_of("# HELP fdks_demo_b "), 1u);
}

// ---- Exporter HTTP endpoint ------------------------------------------

TEST(MetricsExporter, ServesRenderOverHttpAndCountsScrapes) {
  obs::set_enabled(true);
  obs::reset();
  obs::add("serve.requests", 5.0);

  obs::MetricsExporter exporter;  // Ephemeral port.
  ASSERT_GT(exporter.port(), 0);

  const std::string body = obs::http_get_metrics(exporter.port());
  ASSERT_FALSE(body.empty());
  EXPECT_NE(body.find("fdks_serve_requests 5\n"), std::string::npos);
  EXPECT_EQ(exporter.scrapes(), 1u);

  // The scrape observes itself: the obs.scrapes counter committed
  // before the response went out, so the *next* scrape reports >= 1.
  const std::string second = obs::http_get_metrics(exporter.port());
  EXPECT_NE(second.find("fdks_obs_scrapes "), std::string::npos);
  const std::size_t at = second.find("\nfdks_obs_scrapes ");
  ASSERT_NE(at, std::string::npos);
  const double scrapes = std::stod(second.substr(at + 18));
  EXPECT_GE(scrapes, 2.0);
  exporter.stop();
  obs::set_enabled(false);
}

TEST(MetricsExporter, StopUnblocksAcceptPromptly) {
  auto exporter = std::make_unique<obs::MetricsExporter>();
  const auto t0 = steady_clock::now();
  exporter->stop();
  exporter.reset();
  EXPECT_LT(steady_clock::now() - t0, std::chrono::seconds(5));
}

// Scrape the exporter in a tight loop while a ServeEngine works a burst
// and a Sampler ticks — the TSan job (ctest -L fault) races snapshot()
// against emission on the worker, submitter, sampler, and scrape
// threads.
TEST(MetricsExporter, ConcurrentScrapeUnderServingLoad) {
  obs::set_enabled(true);
  obs::reset();
  ServeFixture fx(192);

  obs::Sampler sampler([] {
    obs::SamplerOptions s;
    s.interval = milliseconds(5);
    return s;
  }());
  obs::MetricsExporterOptions mo;
  mo.render.sampler = &sampler;
  obs::MetricsExporter exporter(mo);

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::string body = obs::http_get_metrics(exporter.port());
      EXPECT_NE(body.find("fdks_serve_requests"), std::string::npos);
    }
  });

  {
    serve::ServeOptions so;
    so.batch_max = 4;
    serve::ServeEngine engine(fx.solver, so);
    std::vector<std::future<serve::ServeResult>> futs;
    for (int r = 0; r < 24; ++r)
      futs.push_back(engine.submit(
          random_rhs(fx.h.n(), static_cast<uint64_t>(400 + r))));
    for (auto& f : futs) EXPECT_EQ(f.get().code, serve::ServeCode::Ok);
    engine.drain();
  }

  done.store(true, std::memory_order_relaxed);
  scraper.join();
  EXPECT_GE(exporter.scrapes(), 1u);
  exporter.stop();
  sampler.stop();
  obs::set_enabled(false);
}

// ---- Event log -------------------------------------------------------

TEST(EventLog, RejectsUnregisteredEventNames) {
  obs::EventLog log;
  EXPECT_THROW(log.emit(1, "totally_new_event"), std::invalid_argument);
  EXPECT_TRUE(obs::is_registered_event("solved"));
  EXPECT_TRUE(obs::is_registered_event(obs::events::kEvShed));
  EXPECT_FALSE(obs::is_registered_event("solvedd"));
}

TEST(EventLog, LineCarriesTimestampIdAndTypedFields) {
  CapturedLog cap;
  cap.log->emit(7, obs::events::kEvSolved,
                {{"residual", 3.25e-9},
                 {"verified", true},
                 {"code", "ok"}});
  const auto lines = cap.snapshot();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '\n');  // Sink lines arrive ready for JSONL.
  EXPECT_EQ(line[line.size() - 2], '}');
  EXPECT_EQ(json_field(line, "request_id"), "7");
  EXPECT_EQ(json_field(line, "event"), "solved");
  EXPECT_EQ(json_field(line, "verified"), "true");
  EXPECT_EQ(json_field(line, "code"), "ok");
  EXPECT_GT(std::stod(json_field(line, "ts")), 0.0);
  EXPECT_NEAR(std::stod(json_field(line, "residual")), 3.25e-9, 1e-12);
  EXPECT_EQ(cap.log->lines(), 1u);
}

TEST(EventLog, RequestIdsAreProcessGlobalAndMonotone) {
  const std::uint64_t a = obs::next_request_id();
  const std::uint64_t b = obs::next_request_id();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
}

/// Group lifecycle lines by request id, asserting each id saw exactly
/// one terminal event; returns id -> terminal event name.
std::map<std::uint64_t, std::string> terminal_events(
    const std::vector<std::string>& lines) {
  std::map<std::uint64_t, std::string> terminal;
  for (const std::string& line : lines) {
    const std::string ev = json_field(line, "event");
    const std::uint64_t id = std::stoull(json_field(line, "request_id"));
    EXPECT_TRUE(obs::is_registered_event(ev)) << line;
    if (!is_terminal_event(ev)) continue;
    EXPECT_EQ(terminal.count(id), 0u)
        << "second terminal event for request " << id << ": " << line;
    terminal[id] = ev;
  }
  return terminal;
}

// Every serving outcome — ok, shed, expired, poison, degraded, verified
// — produces exactly one terminal event per submitted request.
TEST(EventLog, EveryLifecyclePathEmitsExactlyOneTerminalEvent) {
  ServeFixture fx(192);

  // -- ok + shed: queue_max 2 on a paused engine, 5 offered. --
  {
    CapturedLog cap;
    serve::ServeOptions so;
    so.start_paused = true;
    so.queue_max = 2;
    so.event_log = cap.log;
    serve::ServeEngine engine(fx.solver, so);
    std::vector<std::future<serve::ServeResult>> futs;
    int shed = 0;
    for (int r = 0; r < 5; ++r) {
      try {
        futs.push_back(engine.submit(
            random_rhs(fx.h.n(), static_cast<uint64_t>(500 + r))));
      } catch (const serve::ServeError&) {
        ++shed;
      }
    }
    engine.resume();
    for (auto& f : futs) (void)f.get();
    engine.drain();
    EXPECT_EQ(shed, 3);
    const auto terminal = terminal_events(cap.snapshot());
    ASSERT_EQ(terminal.size(), 5u);  // One terminal per offered request.
    int solved = 0, shed_ev = 0;
    for (const auto& [id, ev] : terminal) {
      if (ev == "solved") ++solved;
      if (ev == "shed") ++shed_ev;
    }
    EXPECT_EQ(solved, 2);
    EXPECT_EQ(shed_ev, 3);
  }

  // -- expired: already past its deadline at submit. --
  {
    CapturedLog cap;
    serve::ServeOptions so;
    so.start_paused = true;
    so.event_log = cap.log;
    serve::ServeEngine engine(fx.solver, so);
    auto doomed = engine.submit(random_rhs(fx.h.n(), 510),
                                steady_clock::now() - milliseconds(1));
    engine.resume();
    EXPECT_THROW((void)doomed.get(), serve::ServeError);
    engine.drain();
    const auto terminal = terminal_events(cap.snapshot());
    ASSERT_EQ(terminal.size(), 1u);
    EXPECT_EQ(terminal.begin()->second, "expired");
  }

  // -- poison, validating: rejected at submit as failed{invalid_rhs}. --
  // -- poison, non-validating: fails in-batch as failed{poison_rhs}
  //    while batchmates solve. --
  {
    CapturedLog cap;
    serve::ServeOptions so;
    so.event_log = cap.log;
    serve::ServeEngine validating(fx.solver, so);
    std::vector<double> bad = random_rhs(fx.h.n(), 511);
    bad[3] = std::nan("");
    EXPECT_THROW((void)validating.submit(std::vector<double>(bad)),
                 serve::ServeError);
    validating.drain();

    serve::ServeOptions batch_so;
    batch_so.start_paused = true;
    batch_so.validate_rhs = false;
    batch_so.event_log = cap.log;
    serve::ServeEngine engine(fx.solver, batch_so);
    auto poisoned = engine.submit(std::vector<double>(bad));
    auto fine = engine.submit(random_rhs(fx.h.n(), 512));
    engine.resume();
    EXPECT_THROW((void)poisoned.get(), serve::ServeError);
    EXPECT_EQ(fine.get().code, serve::ServeCode::Ok);
    engine.drain();

    const auto terminal = terminal_events(cap.snapshot());
    ASSERT_EQ(terminal.size(), 3u);
    int failed = 0, solved = 0;
    for (const auto& [id, ev] : terminal) {
      if (ev == "failed") ++failed;
      if (ev == "solved") ++solved;
    }
    EXPECT_EQ(failed, 2);  // invalid_rhs reject + in-batch poison.
    EXPECT_EQ(solved, 1);
  }

  // -- degraded: queue past the watermark at packing time. --
  {
    CapturedLog cap;
    serve::ServeOptions so;
    so.start_paused = true;
    so.batch_max = 8;
    so.queue_max = 8;
    so.degrade_watermark = 0.5;
    so.event_log = cap.log;
    serve::ServeEngine engine(fx.solver, so);
    std::vector<std::future<serve::ServeResult>> futs;
    for (int r = 0; r < 6; ++r)
      futs.push_back(engine.submit(
          random_rhs(fx.h.n(), static_cast<uint64_t>(520 + r))));
    engine.resume();
    int degraded = 0;
    for (auto& f : futs)
      if (f.get().code == serve::ServeCode::Degraded) ++degraded;
    engine.drain();
    EXPECT_EQ(degraded, 6);
    const auto terminal = terminal_events(cap.snapshot());
    ASSERT_EQ(terminal.size(), 6u);
    for (const auto& [id, ev] : terminal) EXPECT_EQ(ev, "degraded");
  }

  // -- verified: certification stamps solved{verified:true}. --
  {
    CapturedLog cap;
    serve::ServeOptions so;
    so.event_log = cap.log;
    so.verify.mode = core::VerifyMode::Always;
    so.verify.target_residual = 1e-6;
    serve::ServeEngine engine(fx.solver, so);
    EXPECT_EQ(engine.submit(random_rhs(fx.h.n(), 530)).get().code,
              serve::ServeCode::Ok);
    engine.drain();
    const auto lines = cap.snapshot();
    bool saw_verified = false;
    for (const std::string& line : lines) {
      if (json_field(line, "event") != "solved") continue;
      EXPECT_EQ(json_field(line, "verified"), "true") << line;
      EXPECT_GT(std::stod(json_field(line, "residual")), 0.0) << line;
      saw_verified = true;
    }
    EXPECT_TRUE(saw_verified);
  }
}

// Admitted requests carry admitted -> batched{batch_id,width} -> terminal
// in that order, with a consistent batch width.
TEST(EventLog, AdmittedBatchedTerminalOrderingWithBatchMetadata) {
  ServeFixture fx(192);
  CapturedLog cap;
  serve::ServeOptions so;
  so.start_paused = true;
  so.batch_max = 8;
  so.event_log = cap.log;
  serve::ServeEngine engine(fx.solver, so);
  std::vector<std::future<serve::ServeResult>> futs;
  for (int r = 0; r < 4; ++r)
    futs.push_back(engine.submit(
        random_rhs(fx.h.n(), static_cast<uint64_t>(540 + r))));
  engine.resume();
  for (auto& f : futs) (void)f.get();
  engine.drain();

  const auto lines = cap.snapshot();
  std::map<std::uint64_t, std::vector<std::string>> per_request;
  for (const std::string& line : lines) {
    per_request[std::stoull(json_field(line, "request_id"))].push_back(line);
  }
  ASSERT_EQ(per_request.size(), 4u);
  for (const auto& [id, evs] : per_request) {
    ASSERT_EQ(evs.size(), 3u) << "request " << id;
    EXPECT_EQ(json_field(evs[0], "event"), "admitted");
    EXPECT_EQ(json_field(evs[1], "event"), "batched");
    EXPECT_EQ(json_field(evs[1], "width"), "4");
    EXPECT_EQ(json_field(evs[2], "event"), "solved");
    // The same batch id rides the batched and terminal lines.
    EXPECT_EQ(json_field(evs[1], "batch_id"), json_field(evs[2], "batch_id"));
  }
}

// ---- Sampler ---------------------------------------------------------

TEST(Sampler, DeltasSumToCounterTotalsAndGaugesAreLevels) {
  obs::set_enabled(true);
  obs::reset();
  obs::add("demo.sampled", 5.0);
  obs::gauge("demo.level", 11.0);
  {
    obs::Sampler sampler([] {
      obs::SamplerOptions s;
      s.interval = milliseconds(20);
      return s;
    }());
    std::this_thread::sleep_for(milliseconds(35));
    obs::add("demo.sampled", 3.0);
    obs::gauge("demo.level", 13.0);
    sampler.stop();

    const std::vector<obs::Sample> samples = sampler.samples();
    ASSERT_FALSE(samples.empty());
    double total = 0.0;
    for (const obs::Sample& s : samples) {
      EXPECT_GT(s.interval_seconds, 0.0);
      const auto it = s.counter_deltas.find("demo.sampled");
      if (it != s.counter_deltas.end()) total += it->second;
    }
    // The sampler diffs against the counters at construction, so only
    // the +3 emitted during its life shows up as deltas.
    EXPECT_DOUBLE_EQ(total, 3.0);
    obs::Sample latest;
    ASSERT_TRUE(sampler.latest(latest));
    EXPECT_DOUBLE_EQ(latest.gauges.at("demo.level"), 13.0);
    EXPECT_GT(latest.rss_bytes, 0u);
  }
  obs::set_enabled(false);
}

TEST(Sampler, RingIsBoundedByCapacity) {
  obs::set_enabled(true);
  obs::reset();
  obs::Sampler sampler([] {
    obs::SamplerOptions s;
    s.interval = milliseconds(1);
    s.capacity = 4;
    return s;
  }());
  std::this_thread::sleep_for(milliseconds(40));
  sampler.stop();
  EXPECT_LE(sampler.samples().size(), 4u);
  EXPECT_GT(sampler.ticks(), 4u);
  obs::set_enabled(false);
}

// ---- Gauges ----------------------------------------------------------

TEST(Gauge, LastValueWinsAcrossThreads) {
  obs::set_enabled(true);
  obs::reset();
  obs::gauge("demo.cross", 1.0);
  std::thread([&] { obs::gauge("demo.cross", 2.0); }).join();
  EXPECT_DOUBLE_EQ(obs::snapshot().gauges.at("demo.cross"), 2.0);
  // A later set on the original thread supersedes the other thread's.
  obs::gauge("demo.cross", 3.0);
  EXPECT_DOUBLE_EQ(obs::snapshot().gauges.at("demo.cross"), 3.0);
  obs::set_enabled(false);
}

// ---- Tail-trace sampling ---------------------------------------------

struct TraceGuard {
  TraceGuard() {
    obs::trace::set_enabled(true);
    obs::trace::reset();
  }
  ~TraceGuard() {
    obs::trace::set_enabled(false);
    obs::trace::reset();
  }
};

TEST(TailTrace, KeepsLatencyTailAndAlwaysKeepsErrors) {
  TraceGuard guard;
  const std::uint64_t t1 = 1u << 20;  // Any window; no events needed.
  serve::TailTraceSampler tail([] {
    serve::TailTraceOptions o;
    o.keep = 2;
    return o;
  }());

  EXPECT_TRUE(tail.observe(1, 0.5, false, 0, t1));   // Room.
  EXPECT_TRUE(tail.observe(2, 0.3, false, 0, t1));   // Room.
  EXPECT_FALSE(tail.observe(3, 0.1, false, 0, t1));  // Faster than both.
  EXPECT_TRUE(tail.observe(4, 0.4, false, 0, t1));   // Evicts the 0.3.
  ASSERT_EQ(tail.kept_count(), 2u);
  auto kept = tail.kept();
  EXPECT_EQ(kept[0].request_id, 1u);  // Slowest first.
  EXPECT_EQ(kept[1].request_id, 4u);

  // An error keeps even when fast, evicting the fastest non-error.
  EXPECT_TRUE(tail.observe(5, 0.01, true, 0, t1));
  kept = tail.kept();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].request_id, 1u);
  EXPECT_EQ(kept[1].request_id, 5u);
  EXPECT_TRUE(kept[1].error);
}

TEST(TailTrace, MinLatencyFloorDropsFastSuccesses) {
  TraceGuard guard;
  serve::TailTraceSampler tail([] {
    serve::TailTraceOptions o;
    o.keep = 4;
    o.min_latency_seconds = 0.1;
    return o;
  }());
  EXPECT_FALSE(tail.observe(1, 0.05, false, 0, 1));
  EXPECT_TRUE(tail.observe(2, 0.2, false, 0, 1));
  EXPECT_TRUE(tail.observe(3, 0.01, true, 0, 1));  // Errors bypass it.
  EXPECT_EQ(tail.kept_count(), 2u);
}

TEST(TailTrace, KeptSliceIsWindowFilteredPlusRequestFlows) {
  TraceGuard guard;
  obs::trace::instant("before_window");
  obs::trace::flow_send(77, 0, 0);
  const auto mark = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        steady_clock::now().time_since_epoch())
                        .count();
  obs::trace::instant("inside_window");

  serve::TailTraceSampler tail;
  // Window opens at `mark`: the first instant predates it and must be
  // filtered out, but the flow event — also before the window — is
  // stamped with the request id and stays regardless of its timestamp.
  ASSERT_TRUE(tail.observe(77, 0.25, false,
                           static_cast<std::uint64_t>(mark),
                           static_cast<std::uint64_t>(mark) + (1u << 30)));
  const auto kept = tail.kept();
  ASSERT_EQ(kept.size(), 1u);
  bool saw_inside = false, saw_before = false, saw_flow = false;
  for (const obs::trace::ThreadTrace& t : kept[0].data.threads) {
    for (const obs::trace::Event& e : t.events) {
      if (std::string_view(e.name) == "inside_window") saw_inside = true;
      if (std::string_view(e.name) == "before_window") saw_before = true;
      if (e.type == obs::trace::Event::kFlowSend && e.id == 77) {
        saw_flow = true;
      }
    }
  }
  EXPECT_TRUE(saw_inside);
  EXPECT_FALSE(saw_before);
  EXPECT_TRUE(saw_flow);

  const std::string json = obs::trace::chrome_trace_json(kept[0].data);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
}

// An engine wired with a tail sampler keeps at least one trace whose
// export carries the request_id flow minted at submit().
TEST(TailTrace, EngineKeepsFlowStampedTraces) {
  TraceGuard guard;
  ServeFixture fx(192);
  auto tail = std::make_shared<serve::TailTraceSampler>();
  serve::ServeOptions so;
  so.start_paused = true;
  so.tail_trace = tail;
  serve::ServeEngine engine(fx.solver, so);
  std::vector<std::future<serve::ServeResult>> futs;
  for (int r = 0; r < 4; ++r)
    futs.push_back(engine.submit(
        random_rhs(fx.h.n(), static_cast<uint64_t>(550 + r))));
  engine.resume();
  for (auto& f : futs) (void)f.get();
  engine.drain();

  ASSERT_GT(tail->kept_count(), 0u);
  const auto kept = tail->kept();
  const std::string json = obs::trace::chrome_trace_json(kept[0].data);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos)
      << "kept trace must render the submit->batch flow arrow";
  EXPECT_NE(json.find("serve.batch"), std::string::npos);
}

// ---- SLO tracker -----------------------------------------------------

TEST(SloTracker, AbstainsBelowMinSamples) {
  serve::SloTracker slo([] {
    serve::SloOptions o;
    o.p99_target_seconds = 0.001;
    o.min_samples = 32;
    return o;
  }());
  for (int i = 0; i < 31; ++i) slo.record(10.0, true);  // Terrible...
  const auto st = slo.status();
  EXPECT_EQ(st.samples, 31u);
  EXPECT_DOUBLE_EQ(st.budget_remaining, 1.0);  // ...but below the floor.
  EXPECT_FALSE(st.breached);
  EXPECT_FALSE(slo.degrade_recommended());
}

TEST(SloTracker, P99NearestRankAndLatencyBudget) {
  serve::SloTracker slo([] {
    serve::SloOptions o;
    o.p99_target_seconds = 0.2;
    o.min_samples = 10;
    o.window = 100;
    return o;
  }());
  // 100 samples 0.001..0.100: nearest-rank p99 = 99th value = 0.099.
  for (int i = 1; i <= 100; ++i)
    slo.record(static_cast<double>(i) * 0.001, false);
  const auto st = slo.status();
  EXPECT_EQ(st.samples, 100u);
  EXPECT_NEAR(st.p99_seconds, 0.099, 1e-12);
  EXPECT_NEAR(st.budget_remaining, 1.0 - 0.099 / 0.2, 1e-9);
  EXPECT_FALSE(st.breached);
}

TEST(SloTracker, ErrorRateBreachRecommendsDegrade) {
  serve::SloTracker slo([] {
    serve::SloOptions o;
    o.max_error_rate = 0.1;
    o.min_samples = 10;
    return o;
  }());
  for (int i = 0; i < 40; ++i) slo.record(0.01, i % 2 == 0);  // 50% errors.
  const auto st = slo.status();
  EXPECT_NEAR(st.error_rate, 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(st.budget_remaining, 0.0);
  EXPECT_TRUE(st.breached);
  EXPECT_TRUE(slo.degrade_recommended());
}

TEST(SloTracker, WindowForgetsOldObservations) {
  serve::SloTracker slo([] {
    serve::SloOptions o;
    o.max_error_rate = 0.5;
    o.window = 16;
    o.min_samples = 8;
    return o;
  }());
  for (int i = 0; i < 16; ++i) slo.record(0.01, true);
  EXPECT_TRUE(slo.status().breached);
  // 16 clean observations push every error out of the window.
  for (int i = 0; i < 16; ++i) slo.record(0.01, false);
  const auto st = slo.status();
  EXPECT_DOUBLE_EQ(st.error_rate, 0.0);
  EXPECT_FALSE(st.breached);
}

// An engine whose SLO tracker reports a breach serves degraded batches
// even though the queue never crosses the watermark.
TEST(SloTracker, BreachedSloDegradesTheEngine) {
  ServeFixture fx(192);
  auto slo = std::make_shared<serve::SloTracker>([] {
    serve::SloOptions o;
    o.max_error_rate = 0.1;
    o.min_samples = 4;
    return o;
  }());
  for (int i = 0; i < 8; ++i) slo->record(0.01, true);  // Pre-breached.
  ASSERT_TRUE(slo->degrade_recommended());

  serve::ServeOptions so;
  so.slo = slo;
  serve::ServeEngine engine(fx.solver, so);
  const serve::ServeResult res =
      engine.submit(random_rhs(fx.h.n(), 560)).get();
  EXPECT_EQ(res.code, serve::ServeCode::Degraded);
  engine.drain();
}

}  // namespace
}  // namespace fdks
