// Tests for the in-process message-passing runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "mpisim/runtime.hpp"
#include "obs/obs.hpp"

namespace fdks::mpisim {
namespace {

TEST(Mpisim, SingleRankRuns) {
  std::atomic<int> count{0};
  run(1, [&](Comm& c) {
    EXPECT_EQ(c.rank(), 0);
    EXPECT_EQ(c.size(), 1);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(Mpisim, AllRanksExecute) {
  std::atomic<int> mask{0};
  run(4, [&](Comm& c) { mask.fetch_or(1 << c.rank()); });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(Mpisim, PointToPointRoundTrip) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, std::vector<double>{1.5, 2.5});
      auto back = c.recv(1, 8);
      ASSERT_EQ(back.size(), 2u);
      EXPECT_EQ(back[0], 3.0);
      EXPECT_EQ(back[1], 5.0);
    } else {
      auto msg = c.recv(0, 7);
      for (auto& v : msg) v *= 2.0;
      c.send(0, 8, msg);
    }
  });
}

TEST(Mpisim, TagsAreMatchedNotOrdered) {
  // A message with a different tag must not satisfy a recv.
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<double>{1.0});
      c.send(1, 2, std::vector<double>{2.0});
    } else {
      auto second = c.recv(0, 2);  // Ask for tag 2 first.
      auto first = c.recv(0, 1);
      EXPECT_EQ(second[0], 2.0);
      EXPECT_EQ(first[0], 1.0);
    }
  });
}

TEST(Mpisim, SendRecvExchanges) {
  run(2, [](Comm& c) {
    std::vector<double> mine{static_cast<double>(c.rank() + 10)};
    auto theirs = c.sendrecv(1 - c.rank(), 3, mine);
    ASSERT_EQ(theirs.size(), 1u);
    EXPECT_EQ(theirs[0], static_cast<double>((1 - c.rank()) + 10));
  });
}

TEST(Mpisim, BcastDeliversToAll) {
  run(4, [](Comm& c) {
    std::vector<double> data;
    if (c.rank() == 2) data = {4.0, 5.0, 6.0};
    c.bcast(data, 2);
    ASSERT_EQ(data.size(), 3u);
    EXPECT_EQ(data[0], 4.0);
    EXPECT_EQ(data[2], 6.0);
  });
}

TEST(Mpisim, ReduceSumAccumulates) {
  run(4, [](Comm& c) {
    std::vector<double> data{static_cast<double>(c.rank()), 1.0};
    c.reduce_sum(data, 0);
    if (c.rank() == 0) {
      EXPECT_EQ(data[0], 0.0 + 1 + 2 + 3);
      EXPECT_EQ(data[1], 4.0);
    }
  });
}

TEST(Mpisim, AllreduceGivesSameResultEverywhere) {
  run(4, [](Comm& c) {
    std::vector<double> data{std::pow(2.0, c.rank())};
    c.allreduce_sum(data);
    EXPECT_EQ(data[0], 15.0);
  });
}

TEST(Mpisim, AllgathervConcatenatesInRankOrder) {
  run(3, [](Comm& c) {
    std::vector<double> mine(static_cast<size_t>(c.rank() + 1),
                             static_cast<double>(c.rank()));
    auto all = c.allgatherv(mine);
    ASSERT_EQ(all.size(), 6u);  // 1 + 2 + 3.
    EXPECT_EQ(all[0], 0.0);
    EXPECT_EQ(all[1], 1.0);
    EXPECT_EQ(all[2], 1.0);
    EXPECT_EQ(all[3], 2.0);
    EXPECT_EQ(all[5], 2.0);
  });
}

TEST(Mpisim, SplitFormsIndependentGroups) {
  run(4, [](Comm& c) {
    // Even ranks one group, odd the other.
    Comm sub = c.split(c.rank() % 2);
    EXPECT_EQ(sub.size(), 2);
    EXPECT_EQ(sub.rank(), c.rank() / 2);
    // Traffic in the subgroup must not leak: exchange within sub.
    std::vector<double> mine{static_cast<double>(c.rank())};
    auto theirs = sub.sendrecv(1 - sub.rank(), 5, mine);
    // Groups are {0,2} and {1,3}: my partner's world rank is (r+2) mod 4.
    EXPECT_EQ(theirs[0], static_cast<double>((c.rank() + 2) % 4));
  });
}

TEST(Mpisim, NestedSplitMatchesTreeHalving) {
  // The pattern the distributed solver uses: halve repeatedly.
  run(8, [](Comm& c) {
    Comm half = c.split(c.rank() < 4 ? 0 : 1);
    EXPECT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() < 2 ? 0 : 1);
    EXPECT_EQ(quarter.size(), 2);
    std::vector<double> v{static_cast<double>(c.rank())};
    quarter.allreduce_sum(v);
    // Pairs are (0,1), (2,3), (4,5), (6,7).
    const double expect = static_cast<double>((c.rank() / 2) * 4 + 1);
    EXPECT_EQ(v[0], expect);
  });
}

TEST(Mpisim, BarrierCompletes) {
  std::atomic<int> after{0};
  run(4, [&](Comm& c) {
    c.barrier();
    ++after;
    c.barrier();
    EXPECT_EQ(after.load(), 4);  // Everyone passed the first barrier.
  });
}

TEST(Mpisim, ExceptionPropagatesToCaller) {
  // A single failing rank rethrows the original exception unchanged.
  EXPECT_THROW(run(2,
                   [](Comm& c) {
                     c.barrier();
                     if (c.rank() == 1) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(Mpisim, MultiRankFailuresAggregateWithRankIds) {
  // Two failing ranks: neither error may be swallowed — the aggregate
  // lists both, sorted by rank, with the rank ids in what().
  try {
    run(4, [](Comm& c) {
      c.barrier();
      if (c.rank() == 3) throw std::runtime_error("late failure");
      if (c.rank() == 1) throw std::runtime_error("early failure");
    });
    FAIL() << "expected MultiRankError";
  } catch (const MultiRankError& e) {
    ASSERT_EQ(e.errors().size(), 2u);
    EXPECT_EQ(e.errors()[0].rank, 1);
    EXPECT_EQ(e.errors()[0].what, "early failure");
    EXPECT_EQ(e.errors()[1].rank, 3);
    EXPECT_EQ(e.errors()[1].what, "late failure");
    const std::string what = e.what();
    EXPECT_NE(what.find("2 of 4 ranks failed"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1: early failure"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 3: late failure"), std::string::npos) << what;
  }
}

// ---- Communication accounting (obs counters) -------------------------

class MpisimCounters : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::reset();
  }
  void TearDown() override {
    obs::reset();
    obs::set_enabled(false);
  }
};

TEST_F(MpisimCounters, PerRankPerTagByteCountersUseWireSize) {
  run(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, std::vector<double>{1.0, 2.0, 3.0});
    } else {
      auto m = c.recv(0, 7);
      ASSERT_EQ(m.size(), 3u);
    }
  });
  const obs::Snapshot s = obs::snapshot();
  // One unreliable 3-double frame: 24-byte header + payload.
  const double wire = 24.0 + 8.0 * 3.0;
  EXPECT_DOUBLE_EQ(s.counters.at("mpisim.messages"), 1.0);
  EXPECT_DOUBLE_EQ(s.counters.at("mpisim.bytes"), wire);
  EXPECT_DOUBLE_EQ(s.counters.at("mpisim.bytes.sent.r0"), wire);
  EXPECT_DOUBLE_EQ(s.counters.at("mpisim.bytes.sent.r0.t7"), wire);
  EXPECT_DOUBLE_EQ(s.counters.at("mpisim.bytes.recv.r1"), wire);
  EXPECT_DOUBLE_EQ(s.counters.at("mpisim.bytes.recv.r1.t7"), wire);
  // Rank 1 sent nothing; rank 0 received nothing.
  EXPECT_EQ(s.counters.count("mpisim.bytes.sent.r1"), 0u);
  EXPECT_EQ(s.counters.count("mpisim.bytes.recv.r0"), 0u);
  // The blocking recv records its wait time in the histogram.
  ASSERT_EQ(s.histograms.count("mpisim.wait_seconds"), 1u);
  EXPECT_EQ(s.histograms.at("mpisim.wait_seconds").count, 1u);
}

TEST_F(MpisimCounters, ReliableTransportCountsRecoveryTraffic) {
  WorldOptions opts;
  opts.reliable.enabled = true;
  opts.faults.seed = 42;
  opts.faults.drop_fraction = 0.5;
  run(
      2,
      [](Comm& c) {
        if (c.rank() == 0) {
          for (int i = 0; i < 8; ++i)
            c.send(1, i, std::vector<double>{static_cast<double>(i)});
        } else {
          for (int i = 0; i < 8; ++i) {
            auto m = c.recv(0, i);
            ASSERT_EQ(m.size(), 1u);
            EXPECT_EQ(m[0], static_cast<double>(i));
          }
        }
      },
      opts);
  const obs::Snapshot s = obs::snapshot();
  // Payload accounting covers each logical send once, with reliable
  // framing (24 header + 8 payload + 17 ARQ overhead); retransmits and
  // acks are recovery traffic, kept out of the payload counters.
  const double wire = 24.0 + 8.0 + 17.0;
  EXPECT_DOUBLE_EQ(s.counters.at("mpisim.bytes.sent.r0"), 8.0 * wire);
  EXPECT_DOUBLE_EQ(s.counters.at("mpisim.bytes.recv.r1"), 8.0 * wire);
  // Every delivery acks (8 x 32-byte ack frames at minimum), and with a
  // 50% drop plan some data frames retransmit on top of that.
  EXPECT_GE(s.counters.at("mpisim.recover.bytes"), 8.0 * 32.0);
}

}  // namespace
}  // namespace fdks::mpisim
