// Tests for the serving path: block-solve equivalence against the
// scalar telescoping solve, the factor cache (hit/miss/fingerprint/
// eviction/coalescing), and the admission queue under concurrent
// submitters. The concurrency tests run under the `fault` ctest label
// so the TSan job exercises them.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "core/hybrid.hpp"
#include "core/solver.hpp"
#include "la/gemm.hpp"
#include "serve/engine.hpp"
#include "serve/factor_cache.hpp"

namespace fdks::serve {
namespace {

using askit::AskitConfig;
using core::FastDirectSolver;
using kernel::Kernel;
using la::Matrix;
using la::index_t;

Matrix clustered_points(index_t d, index_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> g(0.0, 0.15);
  std::uniform_int_distribution<int> cl(0, 3);
  Matrix centers = Matrix::random_uniform(d, 4, rng, -2.0, 2.0);
  Matrix p(d, n);
  for (index_t j = 0; j < n; ++j) {
    const int c = cl(rng);
    for (index_t k = 0; k < d; ++k) p(k, j) = centers(k, c) + g(rng);
  }
  return p;
}

AskitConfig tight_config() {
  AskitConfig cfg;
  cfg.leaf_size = 32;
  cfg.max_rank = 48;
  cfg.tol = 1e-8;
  cfg.num_neighbors = 8;
  cfg.seed = 7;
  return cfg;
}

Matrix random_block(index_t n, index_t b, uint64_t seed) {
  std::mt19937_64 rng(seed);
  return Matrix::random_gaussian(n, b, rng);
}

// Max |x_blk(:,j) - scalar_solve(u(:,j))| over all columns: the block
// path must reproduce B independent scalar solves bit-for-bit up to
// summation-order roundoff.
double block_vs_scalar(const FastDirectSolver& s, const Matrix& u) {
  const Matrix x_blk = s.solve(u);
  double worst = 0.0;
  for (index_t j = 0; j < u.cols(); ++j) {
    const std::vector<double> xj = s.solve(std::span<const double>(
        u.col(j), static_cast<size_t>(u.rows())));
    for (index_t i = 0; i < u.rows(); ++i)
      worst = std::max(worst, std::abs(x_blk(i, j) - xj[static_cast<size_t>(i)]));
  }
  return worst;
}

// ---- Block-solve equivalence ----------------------------------------

class BlockSolveEquivalence : public ::testing::TestWithParam<index_t> {};

TEST_P(BlockSolveEquivalence, MatchesScalarSolves) {
  const index_t n = 384;
  const index_t b = GetParam();
  Matrix p = clustered_points(3, n, 11);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  core::SolverOptions opts;
  opts.lambda = 0.7;
  FastDirectSolver s(h, opts);
  EXPECT_LT(block_vs_scalar(s, random_block(n, b, 21)), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Widths, BlockSolveEquivalence,
                         ::testing::Values<index_t>(1, 3, 64));

TEST(BlockSolve, MatchesScalarWithCompactW) {
  const index_t n = 384;
  Matrix p = clustered_points(3, n, 12);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  core::SolverOptions opts;
  opts.lambda = 0.7;
  opts.compact_w = true;  // P^ applied by telescoping T stencils.
  FastDirectSolver s(h, opts);
  EXPECT_LT(block_vs_scalar(s, random_block(n, 7, 22)), 1e-12);
}

TEST(BlockSolve, MatchesScalarWithGsksScheme) {
  const index_t n = 384;
  Matrix p = clustered_points(3, n, 13);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  core::SolverOptions opts;
  opts.lambda = 0.7;
  opts.scheme = kernel::Scheme::Gsks;  // Fused block kernel summation.
  FastDirectSolver s(h, opts);
  EXPECT_LT(block_vs_scalar(s, random_block(n, 5, 23)), 1e-12);
}

// Near-singular regime (§III small lambda): the auto-shift guardrail
// re-factorizes flagged leaves with a bumped diagonal. The block solve
// must match the scalar path on the shifted factors too. The raised
// rcond threshold makes the detector fire on these leaves AND leaves
// the post-shift factors conditioned well enough that the two
// summation orders (GEMV vs blocked GEMM) can agree to 1e-12 —
// with garbage factors both paths amplify roundoff past any tolerance.
TEST(BlockSolve, MatchesScalarOnDiagonalShiftPath) {
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 14);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  core::SolverOptions opts;
  opts.lambda = 1e-10;  // Small-lambda regime.
  opts.auto_shift = true;
  opts.rcond_threshold = 1e-2;
  opts.shift_initial = 1e-4;
  FastDirectSolver s(h, opts);
  // The guardrail must actually have fired, or this test exercises
  // nothing.
  EXPECT_GT(s.factor_status().shifted_nodes, 0);
  EXPECT_LT(block_vs_scalar(s, random_block(n, 4, 24)), 1e-12);
}

TEST(BlockSolve, HybridMatchesScalarSolves) {
  const index_t n = 512;
  Matrix p = clustered_points(3, n, 15);
  AskitConfig cfg = tight_config();
  cfg.seed = 77;
  cfg.level_restriction = 2;
  askit::HMatrix h(p, Kernel::gaussian(1.0), cfg);
  core::HybridOptions opts;
  opts.direct.lambda = 0.5;
  opts.gmres.rtol = 1e-12;
  opts.gmres.max_iters = 300;
  core::HybridSolver hy(h, opts);

  const Matrix u = random_block(n, 5, 25);
  const Matrix x_blk = hy.solve(u);
  double worst = 0.0;
  for (index_t j = 0; j < u.cols(); ++j) {
    const std::vector<double> xj = hy.solve(std::span<const double>(
        u.col(j), static_cast<size_t>(n)));
    for (index_t i = 0; i < n; ++i)
      worst = std::max(worst,
                       std::abs(x_blk(i, j) - xj[static_cast<size_t>(i)]));
  }
  // Each column runs its own GMRES inside the block solve, so the match
  // is exact up to roundoff in the shared direct sweeps.
  EXPECT_LT(worst, 1e-12);
}

TEST(BlockSolve, ShapeMismatchThrows) {
  const index_t n = 256;
  Matrix p = clustered_points(3, n, 16);
  askit::HMatrix h(p, Kernel::gaussian(1.0), tight_config());
  core::SolverOptions opts;
  opts.lambda = 0.7;
  FastDirectSolver s(h, opts);
  Matrix bad(n - 1, 2);
  EXPECT_THROW(s.solve(bad), std::invalid_argument);
}

// ---- Factor cache ----------------------------------------------------

struct ServeFixture {
  Matrix p;
  askit::HMatrix h;
  explicit ServeFixture(index_t n, uint64_t seed = 31)
      : p(clustered_points(3, n, seed)),
        h(p, Kernel::gaussian(1.0), tight_config()) {}
};

TEST(FactorCache, MissThenHitSharesOneSolver) {
  ServeFixture fx(256);
  core::SolverOptions opts;
  opts.lambda = 1.0;
  FactorCache cache(2);
  auto a = cache.get(fx.h, opts);
  auto b = cache.get(fx.h, opts);
  EXPECT_EQ(a.get(), b.get());
  const FactorCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FactorCache, FingerprintSeparatesLambdas) {
  ServeFixture fx(256);
  core::SolverOptions o1, o2;
  o1.lambda = 1.0;
  o2.lambda = 2.0;
  EXPECT_NE(FactorCache::fingerprint(fx.h, o1),
            FactorCache::fingerprint(fx.h, o2));

  FactorCache cache(2);
  auto a = cache.get(fx.h, o1);
  auto b = cache.get(fx.h, o2);
  EXPECT_NE(a.get(), b.get());
  EXPECT_DOUBLE_EQ(a->lambda(), 1.0);
  EXPECT_DOUBLE_EQ(b->lambda(), 2.0);
  const FactorCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.hits, 0u);
}

TEST(FactorCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  ServeFixture fx(256);
  core::SolverOptions o1, o2;
  o1.lambda = 1.0;
  o2.lambda = 2.0;
  FactorCache cache(1);
  cache.get(fx.h, o1);
  cache.get(fx.h, o2);  // Evicts lambda=1.
  cache.get(fx.h, o1);  // Must re-factorize: a third miss.
  const FactorCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 3u);
  EXPECT_EQ(st.hits, 0u);
  EXPECT_EQ(st.evictions, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

// Concurrent gets with one fingerprint must coalesce into a single
// factorization (fault label: a TSan race-detection target).
TEST(FactorCache, ConcurrentSameKeyCoalescesToOneFactorization) {
  ServeFixture fx(384);
  core::SolverOptions opts;
  opts.lambda = 1.0;
  FactorCache cache(2);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const FastDirectSolver>> got(kThreads);
  {
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t)
      ts.emplace_back([&, t] { got[static_cast<size_t>(t)] =
                                   cache.get(fx.h, opts); });
    for (auto& th : ts) th.join();
  }
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(got[0].get(), got[static_cast<size_t>(t)].get());
  const FactorCache::Stats st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, static_cast<std::uint64_t>(kThreads - 1));
}

// ---- Admission queue -------------------------------------------------

TEST(ServeEngine, PausedBurstCoalescesIntoMaximalBatches) {
  ServeFixture fx(256);
  core::SolverOptions opts;
  opts.lambda = 1.0;
  FactorCache cache(1);
  auto solver = cache.get(fx.h, opts);

  ServeOptions so;
  so.batch_max = 4;
  so.start_paused = true;
  ServeEngine engine(solver, so);

  constexpr index_t kReqs = 10;
  const Matrix u = random_block(fx.h.n(), kReqs, 41);
  std::vector<std::future<ServeResult>> futs;
  for (index_t r = 0; r < kReqs; ++r)
    futs.push_back(engine.submit(std::vector<double>(
        u.col(r), u.col(r) + fx.h.n())));
  engine.resume();

  const Matrix x_blk = solver->solve(u);
  for (index_t r = 0; r < kReqs; ++r) {
    const ServeResult res = futs[static_cast<size_t>(r)].get();
    EXPECT_EQ(res.code, ServeCode::Ok);
    for (index_t i = 0; i < fx.h.n(); ++i)
      EXPECT_NEAR(res.x[static_cast<size_t>(i)], x_blk(i, r), 1e-12);
  }
  engine.drain();
  const ServeEngine::Stats st = engine.stats();
  EXPECT_EQ(st.requests, static_cast<std::uint64_t>(kReqs));
  EXPECT_EQ(st.batches, 3u);  // ceil(10 / 4).
  EXPECT_EQ(st.max_batch, 4);
}

TEST(ServeEngine, RejectsWrongLengthRhs) {
  ServeFixture fx(256);
  core::SolverOptions opts;
  opts.lambda = 1.0;
  FactorCache cache(1);
  ServeEngine engine(cache.get(fx.h, opts));
  try {
    engine.submit(std::vector<double>(
        static_cast<size_t>(fx.h.n()) - 1, 0.0));
    FAIL() << "expected ServeError(InvalidRhs)";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), ServeCode::InvalidRhs);
  }
  // A rejected request must not perturb the accepted-request stats
  // (validate-before-count).
  EXPECT_EQ(engine.stats().requests, 0u);
}

// Concurrent submitters against a running (unpaused) engine: every
// future must resolve to the right answer regardless of how the worker
// slices the queue into batches (fault label: TSan target).
TEST(ServeEngine, ConcurrentSubmittersAllGetCorrectAnswers) {
  ServeFixture fx(384);
  core::SolverOptions opts;
  opts.lambda = 1.0;
  FactorCache cache(1);
  auto solver = cache.get(fx.h, opts);

  ServeOptions so;
  so.batch_max = 8;
  ServeEngine engine(solver, so);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> mismatches{0};
  {
    std::vector<std::thread> ts;
    ts.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      ts.emplace_back([&, t] {
        for (int r = 0; r < kPerThread; ++r) {
          std::mt19937_64 rng(static_cast<uint64_t>(1000 + t * 100 + r));
          std::normal_distribution<double> g(0.0, 1.0);
          std::vector<double> rhs(static_cast<size_t>(fx.h.n()));
          for (auto& v : rhs) v = g(rng);
          std::future<ServeResult> fut =
              engine.submit(std::vector<double>(rhs));
          const std::vector<double> got = fut.get().x;
          const std::vector<double> want =
              solver->solve(std::span<const double>(rhs));
          for (size_t i = 0; i < rhs.size(); ++i)
            if (std::abs(got[i] - want[i]) > 1e-12) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
              break;
            }
        }
      });
    }
    for (auto& th : ts) th.join();
  }
  engine.drain();
  EXPECT_EQ(mismatches.load(), 0);
  const ServeEngine::Stats st = engine.stats();
  EXPECT_EQ(st.requests,
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.max_batch, 8);
}

}  // namespace
}  // namespace fdks::serve
