// Tests for GEMV and the blocked GEMM against the triple-loop reference.
#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "la/gemm.hpp"
#include "la/matrix.hpp"
#include "obs/obs.hpp"

namespace fdks::la {
namespace {

TEST(Gemv, NoTransMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  std::vector<double> x = {1.0, 1.0, 1.0};
  std::vector<double> y = {100.0, 100.0};
  gemv(Trans::No, 1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(Gemv, TransMatchesManual) {
  Matrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  std::vector<double> x = {1.0, -1.0};
  std::vector<double> y(3, 0.0);
  gemv(Trans::Yes, 1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], -3.0);
  EXPECT_DOUBLE_EQ(y[1], -3.0);
  EXPECT_DOUBLE_EQ(y[2], -3.0);
}

TEST(Gemv, BetaAccumulates) {
  Matrix a = Matrix::identity(2);
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {10.0, 10.0};
  gemv(Trans::No, 2.0, a, x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
}

TEST(Gemv, ShapeMismatchThrows) {
  Matrix a(2, 3);
  std::vector<double> x(2), y(2);
  EXPECT_THROW(gemv(Trans::No, 1.0, a, x, 0.0, y), std::invalid_argument);
}

TEST(Gemm, IdentityIsNoop) {
  std::mt19937_64 rng(1);
  Matrix a = Matrix::random_gaussian(7, 7, rng);
  Matrix c = matmul(a, Matrix::identity(7));
  EXPECT_LT(max_abs_diff(a, c), 1e-15);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3), c(2, 3);
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c),
               std::invalid_argument);
}

TEST(Gemm, BetaZeroOverwritesNanSafe) {
  // beta = 0 must overwrite even when C holds NaN (BLAS semantics).
  Matrix a = Matrix::identity(2);
  Matrix b = Matrix::identity(2);
  Matrix c(2, 2, std::numeric_limits<double>::quiet_NaN());
  gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
}

// Property sweep: blocked GEMM (all transpose combinations, alpha/beta
// variations) must match the reference implementation on odd shapes that
// straddle the blocking boundaries.
class GemmParity
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(GemmParity, MatchesReference) {
  const auto [m, n, k, mode] = GetParam();
  std::mt19937_64 rng(static_cast<uint64_t>(m * 73 + n * 31 + k * 7 + mode));
  const Trans ta = (mode & 1) ? Trans::Yes : Trans::No;
  const Trans tb = (mode & 2) ? Trans::Yes : Trans::No;
  Matrix a = (ta == Trans::No) ? Matrix::random_gaussian(m, k, rng)
                               : Matrix::random_gaussian(k, m, rng);
  Matrix b = (tb == Trans::No) ? Matrix::random_gaussian(k, n, rng)
                               : Matrix::random_gaussian(n, k, rng);
  Matrix c0 = Matrix::random_gaussian(m, n, rng);
  Matrix c1 = c0;
  const double alpha = 1.25, beta = -0.5;
  gemm(ta, tb, alpha, a, b, beta, c0);
  gemm_ref(ta, tb, alpha, a, b, beta, c1);
  EXPECT_LT(max_abs_diff(c0, c1), 1e-10 * std::max<index_t>(1, k))
      << "m=" << m << " n=" << n << " k=" << k << " mode=" << mode;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParity,
    ::testing::Values(
        std::make_tuple(1, 1, 1, 0), std::make_tuple(5, 3, 4, 0),
        std::make_tuple(5, 3, 4, 1), std::make_tuple(5, 3, 4, 2),
        std::make_tuple(5, 3, 4, 3), std::make_tuple(33, 17, 65, 0),
        std::make_tuple(129, 130, 257, 0), std::make_tuple(64, 512, 8, 0),
        std::make_tuple(200, 1, 200, 0), std::make_tuple(1, 200, 200, 0),
        std::make_tuple(127, 129, 5, 3), std::make_tuple(96, 96, 96, 0)));

TEST(GemmRaw, StridedSubBlock) {
  // gemm_raw must honor leading dimensions when writing into a window of
  // a larger matrix.
  std::mt19937_64 rng(3);
  Matrix big(10, 10);
  Matrix a = Matrix::random_gaussian(4, 3, rng);
  Matrix b = Matrix::random_gaussian(3, 5, rng);
  gemm_raw(4, 5, 3, 1.0, a.data(), a.ld(), b.data(), b.ld(), 0.0,
           big.data() + 2 + 1 * big.ld(), big.ld());
  Matrix exact = matmul(a, b);
  for (index_t j = 0; j < 5; ++j)
    for (index_t i = 0; i < 4; ++i)
      EXPECT_NEAR(big(2 + i, 1 + j), exact(i, j), 1e-12);
  EXPECT_EQ(big(0, 0), 0.0);  // Outside the window untouched.
  EXPECT_EQ(big(9, 9), 0.0);
}

// ---- Counting convention (see gemm.hpp) -----------------------------
//
// Validating routines (gemv, gemm, gsks) count AFTER validation: a
// throwing call must not inflate the flop accounting the bench
// regression gate compares. Raw-pointer routines (gemm_raw) count the
// call at entry because the beta-scale mutates C even when the multiply
// is skipped; flops.* still only counts executed multiply work.

double counter_of(const char* name) {
  const obs::Snapshot s = obs::snapshot();
  const auto it = s.counters.find(name);
  return it != s.counters.end() ? it->second : 0.0;
}

// Counters are globally gated; flip them on for the duration of a test.
struct ObsOn {
  bool was = obs::enabled();
  ObsOn() { obs::set_enabled(true); }
  ~ObsOn() { obs::set_enabled(was); }
};

TEST(Counters, ThrowingGemvDoesNotCount) {
  ObsOn obs_on;
  Matrix a(2, 3);
  std::vector<double> x(2), y(2);  // Wrong x length for NoTrans.
  const double calls0 = counter_of("gemv.calls");
  const double flops0 = counter_of("flops.gemv");
  EXPECT_THROW(gemv(Trans::No, 1.0, a, x, 0.0, y), std::invalid_argument);
  std::vector<double> yt(2);  // Wrong y length for Trans (needs n = 3).
  EXPECT_THROW(gemv(Trans::Yes, 1.0, a, x, 0.0, yt),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(counter_of("gemv.calls"), calls0);
  EXPECT_DOUBLE_EQ(counter_of("flops.gemv"), flops0);
}

TEST(Counters, ThrowingGemmDoesNotCount) {
  ObsOn obs_on;
  Matrix a(2, 3), b(2, 3), c(2, 3);
  const double calls0 = counter_of("gemm.calls");
  const double flops0 = counter_of("flops.gemm");
  EXPECT_THROW(gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c),
               std::invalid_argument);
  EXPECT_DOUBLE_EQ(counter_of("gemm.calls"), calls0);
  EXPECT_DOUBLE_EQ(counter_of("flops.gemm"), flops0);
}

TEST(Counters, GemmRawScaleOnlyCountsCallNotFlops) {
  ObsOn obs_on;
  // k == 0: no multiply work, but the beta-scale still runs — the call
  // is visible in gemm.calls while flops.gemm stays put.
  Matrix c(3, 2);
  for (index_t j = 0; j < 2; ++j)
    for (index_t i = 0; i < 3; ++i) c(i, j) = 4.0;
  const double calls0 = counter_of("gemm.calls");
  const double flops0 = counter_of("flops.gemm");
  gemm_raw(3, 2, 0, 1.0, nullptr, 1, nullptr, 1, 0.5, c.data(), c.ld());
  EXPECT_DOUBLE_EQ(counter_of("gemm.calls"), calls0 + 1.0);
  EXPECT_DOUBLE_EQ(counter_of("flops.gemm"), flops0);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);  // The scale was applied.
  EXPECT_DOUBLE_EQ(c(2, 1), 2.0);

  // alpha == 0 with beta == 0: a pure clear, same convention.
  gemm_raw(3, 2, 5, 0.0, nullptr, 1, nullptr, 1, 0.0, c.data(), c.ld());
  EXPECT_DOUBLE_EQ(counter_of("gemm.calls"), calls0 + 2.0);
  EXPECT_DOUBLE_EQ(counter_of("flops.gemm"), flops0);
  EXPECT_DOUBLE_EQ(c(1, 1), 0.0);
}

TEST(Counters, ExecutedGemmCountsFlops) {
  ObsOn obs_on;
  std::mt19937_64 rng(9);
  Matrix a = Matrix::random_gaussian(4, 5, rng);
  Matrix b = Matrix::random_gaussian(5, 3, rng);
  Matrix c(4, 3);
  const double calls0 = counter_of("gemm.calls");
  const double flops0 = counter_of("flops.gemm");
  gemm(Trans::No, Trans::No, 1.0, a, b, 0.0, c);
  EXPECT_GE(counter_of("gemm.calls"), calls0 + 1.0);
  EXPECT_DOUBLE_EQ(counter_of("flops.gemm"),
                   flops0 + 2.0 * 4.0 * 5.0 * 3.0);
}

TEST(GemvRaw, MatchesGemv) {
  std::mt19937_64 rng(4);
  Matrix a = Matrix::random_gaussian(6, 4, rng);
  std::vector<double> x = {1.0, -2.0, 0.5, 3.0};
  std::vector<double> y1(6, 1.0), y2(6, 1.0);
  gemv(Trans::No, 2.0, a, x, 3.0, y1);
  gemv_raw(6, 4, 2.0, a.data(), a.ld(), x.data(), 3.0, y2.data());
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

}  // namespace
}  // namespace fdks::la
